package repro

import (
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/pctt"
	"repro/internal/workload"
)

// allEngines builds one instance of each evaluated system, plus the
// natively-parallel P-CTT engine (which executes for real rather than
// modeling; it must satisfy the same state-convergence contract).
func allEngines(cfg engine.Config) map[string]engine.Engine {
	return map[string]engine.Engine{
		"ART":     baseline.NewART(cfg),
		"Heart":   baseline.NewHeart(cfg),
		"SMART":   baseline.NewSMART(cfg),
		"CuART":   cuart.New(cuart.Config{Config: cfg}),
		"DCART-C": ctt.New(ctt.Config{Config: cfg}),
		"DCART":   accel.New(accel.Config{CollectReads: cfg.CollectReads}),
		"P-CTT":   pctt.New(pctt.Config{Workers: 4, CollectReads: cfg.CollectReads}),
	}
}

// closeEngines stops any engine that owns background goroutines.
func closeEngines(engines map[string]engine.Engine) {
	for _, e := range engines {
		if c, ok := e.(interface{ Close() error }); ok {
			c.Close()
		}
	}
}

// TestCrossEngineStateConvergence is the repository's central integration
// invariant: every engine — three CPU disciplines, the GPU model, the
// software CTT, and the accelerator simulator — executes the same
// operation stream, and all six final index states must be identical
// (coalescing and reordering may change *when* work happens, but per-key
// last-write-wins semantics fix the final state).
func TestCrossEngineStateConvergence(t *testing.T) {
	for _, wname := range workload.All {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			w := workload.MustGenerate(workload.Spec{
				Name: wname, NumKeys: 3000, NumOps: 15000,
				ReadRatio: 0.4, InsertFraction: 0.3, Seed: 91,
			})
			// Reference: sequential replay.
			ref := map[string]uint64{}
			for i, k := range w.Keys {
				ref[string(k)] = uint64(i)
			}
			for _, op := range w.Ops {
				switch op.Kind {
				case workload.Write:
					ref[string(op.Key)] = op.Value
				case workload.Delete:
					delete(ref, string(op.Key))
				}
			}

			engines := allEngines(engine.Config{Threads: 32})
			defer closeEngines(engines)
			for name, e := range engines {
				e.Load(w.Keys, nil)
				e.Run(w.Ops)
				tree := treeOf(t, name, e)
				if tree.Len() != len(ref) {
					t.Fatalf("%s: %d keys, reference %d", name, tree.Len(), len(ref))
				}
				for ks, want := range ref {
					got, ok := tree.Get([]byte(ks))
					if !ok || got != want {
						t.Fatalf("%s: key %x = (%d,%v), want %d", name, ks, got, ok, want)
					}
				}
			}
		})
	}
}

// treeOf extracts the underlying index from any engine type.
func treeOf(t *testing.T, name string, e engine.Engine) interface {
	Get([]byte) (uint64, bool)
	Len() int
} {
	t.Helper()
	switch v := e.(type) {
	case *baseline.Engine:
		return v.Tree()
	case *cuart.Engine:
		return v.Tree()
	case *ctt.Engine:
		return v.Tree()
	case *accel.Engine:
		return v.Tree()
	case *pctt.Engine:
		return v.Tree()
	default:
		t.Fatalf("unknown engine type for %s", name)
		return nil
	}
}

// TestCrossEngineCounterSanity checks cross-engine relationships the
// paper's figures rely on, on a reuse-heavy stream: the data-centric
// engines (DCART-C, DCART) must beat every operation-centric engine on
// partial-key matches and lock contention.
func TestCrossEngineCounterSanity(t *testing.T) {
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 2000, NumOps: 40000,
		ReadRatio: 0.5, InsertFraction: 0.05, ZipfS: 1.25, Seed: 92,
	})
	matches := map[string]int64{}
	contention := map[string]int64{}
	engines := allEngines(engine.Config{Threads: 96})
	defer closeEngines(engines)
	for name, e := range engines {
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		matches[name] = res.Metrics.Get("key_matches")
		contention[name] = res.Metrics.Get("lock_contention")
	}
	for _, dc := range []string{"DCART-C", "DCART"} {
		for _, base := range []string{"ART", "Heart", "SMART", "CuART"} {
			if matches[dc] >= matches[base] {
				t.Errorf("%s key matches (%d) not below %s (%d)",
					dc, matches[dc], base, matches[base])
			}
			if contention[dc] > contention[base] {
				t.Errorf("%s contention (%d) above %s (%d)",
					dc, contention[dc], base, contention[base])
			}
		}
	}
}

// TestParallelEngineStress is the repository's -race stress for the
// parallel CTT engine: a generated mixed read/write workload is
// partitioned by key across concurrent producer goroutines issuing
// blocking Batcher calls, and the final tree state must equal a sequential
// map replay (the partition preserves per-key operation order, so per-key
// last-write-wins fixes the final state even under real concurrency).
func TestParallelEngineStress(t *testing.T) {
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 2000, NumOps: 30000,
		ReadRatio: 0.5, InsertFraction: 0.3, Seed: 94,
	})
	ref := map[string]uint64{}
	for i, k := range w.Keys {
		ref[string(k)] = uint64(i)
	}
	for _, op := range w.Ops {
		if op.Kind == workload.Write {
			ref[string(op.Key)] = op.Value
		}
	}

	e := pctt.New(pctt.Config{Workers: 4, BatchSize: 128})
	defer e.Close()
	e.Load(w.Keys, nil)

	const producers = 8
	parts := make([][]workload.Op, producers)
	for _, op := range w.Ops {
		p := 0
		for _, b := range op.Key {
			p = (p*131 + int(b)) % producers
		}
		parts[p] = append(parts[p], op)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(ops []workload.Op) {
			defer wg.Done()
			for _, op := range ops {
				if op.Kind == workload.Read {
					e.Get(op.Key)
				} else {
					e.Put(op.Key, op.Value)
				}
			}
		}(parts[p])
	}
	wg.Wait()

	if e.Tree().Len() != len(ref) {
		t.Fatalf("tree has %d keys, reference %d", e.Tree().Len(), len(ref))
	}
	for ks, want := range ref {
		if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
			t.Fatalf("key %x = (%d,%v), want %d", ks, got, ok, want)
		}
	}
}

// TestDeterministicAcrossRuns: the whole pipeline (generation, execution,
// counting) is bit-for-bit reproducible.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() map[string]map[string]int64 {
		w := workload.MustGenerate(workload.Spec{
			Name: workload.EA, NumKeys: 1500, NumOps: 8000, Seed: 93,
		})
		out := map[string]map[string]int64{}
		engines := allEngines(engine.Config{Threads: 16})
		defer closeEngines(engines)
		for name, e := range engines {
			e.Load(w.Keys, nil)
			e.Run(w.Ops)
			switch v := e.(type) {
			case *baseline.Engine:
				out[name] = v.Metrics().Snapshot()
			case *cuart.Engine:
				out[name] = v.Metrics().Snapshot()
			case *ctt.Engine:
				out[name] = v.Metrics().Snapshot()
			case *accel.Engine:
				out[name] = v.Metrics().Snapshot()
			}
		}
		return out
	}
	a, b := run(), run()
	for name, am := range a {
		for k, v := range am {
			if b[name][k] != v {
				t.Fatalf("%s counter %s differs across runs: %d vs %d", name, k, v, b[name][k])
			}
		}
	}
}
