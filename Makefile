# Developer entry points. `make check` is the gate CI (and reviewers)
# run: vet + build + full test suite + the race detector over every
# package that spawns goroutines (the lock-coupling tree, the parallel
# CTT engine, the KV server, and the root-level integration tests).

GO ?= go

RACE_PKGS = ./internal/olc ./internal/pctt ./internal/kvserver .

.PHONY: check vet build test race bench bench-native clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Go-native microbenchmarks (testing.B): parallel CTT vs direct tree.
bench:
	$(GO) test -bench 'Mixed' -benchmem -run '^$$' .

# The native experiment: real wall-clock P-CTT vs direct-olc comparison,
# machine-readable results in BENCH_native.json.
bench-native:
	$(GO) run ./cmd/dcart-bench -exp native -json

clean:
	rm -f repro.test BENCH_native.json
