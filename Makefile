# Developer entry points. `make check` is the gate CI (and reviewers)
# run: vet + build + full test suite + the race detector over every
# package that spawns goroutines (the lock-coupling tree, the parallel
# CTT engine, the KV server, and the root-level integration tests).

GO ?= go

RACE_PKGS = ./internal/olc ./internal/pctt ./internal/kvserver .

.PHONY: check vet build test race bench bench-native smoke-native clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Go-native microbenchmarks (testing.B): parallel CTT vs direct tree.
bench:
	$(GO) test -bench 'Mixed' -benchmem -run '^$$' .

# The native experiment: real wall-clock P-CTT vs direct-olc comparison,
# machine-readable results in BENCH_native.json.
bench-native:
	$(GO) run ./cmd/dcart-bench -exp native -json

# Scaled-down native run for CI: exercises the whole measured pipeline
# (dispatch, combine windows, stealing, latency split) end to end in a few
# seconds without pretending the numbers are stable on shared runners. No
# -json: CI must never overwrite the recorded BENCH_native.json.
smoke-native:
	$(GO) run ./cmd/dcart-bench -exp native -keys 20000 -ops 100000

clean:
	rm -f repro.test BENCH_native.json
