# Developer entry points. `make check` is the gate CI (and reviewers)
# run: vet + staticcheck (when installed) + build + full test suite + the
# race detector over every package that spawns goroutines or is scraped
# concurrently (the lock-coupling tree, the parallel CTT engine, the KV
# server, the metrics/observability layer, and the root-level integration
# tests).

GO ?= go

RACE_PKGS = ./internal/olc ./internal/pctt ./internal/store ./internal/kvserver ./internal/metrics ./internal/obs .

.PHONY: check vet staticcheck build test race bench bench-batch bench-native bench-server benchdiff smoke-native smoke-diag smoke-shards smoke-pipeline smoke-health clean

check: vet staticcheck build test race

vet:
	$(GO) vet ./...

# staticcheck is optional locally (skipped with a note when the binary is
# missing); CI installs it and runs the full analysis.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Go-native microbenchmarks (testing.B): parallel CTT vs direct tree.
bench:
	$(GO) test -bench 'Mixed' -benchmem -run '^$$' .

# Batch-shared descent microbenchmarks: one shared lock-coupled traversal
# serving a sorted key batch vs per-op root descents, plus the anchored
# (hot-node residency) variant. -benchtime=100x keeps it a functional
# exercise in CI rather than a timing claim.
bench-batch:
	$(GO) test -bench 'BenchmarkBatchDescent' -benchmem -benchtime=100x -run '^$$' ./internal/olc

# The native experiment: real wall-clock P-CTT vs direct-olc comparison,
# machine-readable results in BENCH_native.json. SEED picks the workload
# seed (default 1), so `make bench-native SEED=7` measures a different
# key/op stream without touching the recorded default-seed report flow.
SEED ?= 1

bench-native:
	$(GO) run ./cmd/dcart-bench -exp native -seed $(SEED) -json

# The server experiment: pipelined vs lockstep wire over loopback TCP,
# all three store topologies, machine-readable results in
# BENCH_server.json. Honors SEED like bench-native.
bench-server:
	$(GO) run ./cmd/dcart-bench -exp server -seed $(SEED) -json

# Diff two benchmark reports (ops/sec and p99 movement per row):
# make benchdiff A=BENCH_server.json B=/tmp/BENCH_server.json
benchdiff:
	$(GO) run ./scripts/benchdiff.go $(A) $(B)

# Scaled-down native run for CI: exercises the whole measured pipeline
# (dispatch, combine windows, stealing, latency split) end to end in a few
# seconds without pretending the numbers are stable on shared runners. No
# -json: CI must never overwrite the recorded BENCH_native.json.
smoke-native:
	$(GO) run ./cmd/dcart-bench -exp native -keys 20000 -ops 100000

# Diagnostics smoke: run the native benchmark with the observability
# endpoint enabled and scrape /metrics mid-run, checking the P-CTT series
# are live (gauges, latency histograms, trace spans).
smoke-diag:
	./scripts/smoke_diag.sh

# Sharded-server smoke: boot dcart-kv with -shards 4 (one batching engine
# per shard), run a TCP protocol round-trip including a cross-shard
# ordered merge, scrape the per-shard /metrics groups, and verify the
# per-shard snapshot files on graceful shutdown.
smoke-shards:
	./scripts/smoke_shards.sh

# Pipelined-wire smoke: boot dcart-kv at pipeline depth 64, blind-write a
# deep command burst over raw TCP, and verify the responses come back in
# exact command order with the /metrics pipeline series live.
smoke-pipeline:
	./scripts/smoke_pipeline.sh

# Health/flight-recorder smoke: boot dcart-kv with the health engine and a
# flight-recorder directory, verify the /healthz JSON verdict settles on
# ok, trigger a bundle dump over HTTP, and validate its contents and the
# rate limit.
smoke-health:
	./scripts/smoke_health.sh

clean:
	rm -f repro.test BENCH_native.json
