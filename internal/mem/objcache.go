package mem

// ObjectCache models a cache of variable-size objects (ART nodes in the
// DCART Tree_buffer): capacity is tracked in bytes and an access touches
// one object regardless of its size, matching hardware that transfers
// whole nodes in a burst. Replacement is delegated to a Policy; with the
// value-aware policy, an object is admitted only if its value exceeds the
// victim's (§III-E), otherwise the access bypasses the cache.
type ObjectCache struct {
	name     string
	capacity int // bytes
	used     int
	policy   Policy
	resident map[uint64]int // addr -> size
	stats    CacheStats
}

// NewObjectCache builds an object cache of capacityBytes.
func NewObjectCache(name string, capacityBytes int, policy Policy) *ObjectCache {
	if capacityBytes < 1 {
		capacityBytes = 1
	}
	return &ObjectCache{
		name:     name,
		capacity: capacityBytes,
		policy:   policy,
		resident: make(map[uint64]int),
	}
}

// Name returns the buffer name.
func (c *ObjectCache) Name() string { return c.name }

// Stats returns a snapshot of the counters.
func (c *ObjectCache) Stats() CacheStats { return c.stats }

// UsedBytes returns the bytes currently resident.
func (c *ObjectCache) UsedBytes() int { return c.used }

// Len returns the number of resident objects.
func (c *ObjectCache) Len() int { return len(c.resident) }

// Resident reports whether the object at addr is cached.
func (c *ObjectCache) Resident(addr uint64) bool {
	_, ok := c.resident[addr]
	return ok
}

// Access touches the object at addr with the given size and replacement
// value, returning whether it hit. On a miss the object is fetched
// (BytesIn += size) and inserted subject to capacity and the policy's
// admission rule.
func (c *ObjectCache) Access(addr uint64, size int, value int64) bool {
	if size < 1 {
		size = 1
	}
	if _, ok := c.resident[addr]; ok {
		c.stats.Hits++
		c.policy.OnAccess(addr, value)
		return true
	}
	c.stats.Misses++
	c.stats.BytesIn += int64(size)
	if size > c.capacity {
		c.stats.Bypasses++
		return false
	}
	for c.used+size > c.capacity {
		if !c.policy.Admit(value) {
			c.stats.Bypasses++
			return false
		}
		victim := c.policy.Victim()
		vsize := c.resident[victim]
		c.policy.OnEvict(victim)
		delete(c.resident, victim)
		c.used -= vsize
		c.stats.Evictions++
	}
	c.resident[addr] = size
	c.used += size
	c.policy.OnInsert(addr, value)
	return false
}

// Invalidate drops the object at addr if resident (e.g. the node was
// replaced by a grow).
func (c *ObjectCache) Invalidate(addr uint64) {
	if size, ok := c.resident[addr]; ok {
		c.policy.OnEvict(addr)
		delete(c.resident, addr)
		c.used -= size
	}
}

// Reset empties the cache and zeroes statistics.
func (c *ObjectCache) Reset() {
	c.resident = make(map[uint64]int)
	c.policy.Reset()
	c.used = 0
	c.stats = CacheStats{}
}
