package mem

// CacheStats aggregates cache activity.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bypasses  int64 // misses the policy declined to cache (value-aware)
	BytesIn   int64 // bytes fetched from the backing level (line granular)
}

// HitRatio returns hits / (hits + misses).
func (s CacheStats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache models a fully-associative cache of fixed-size lines over the
// synthetic address space, with a pluggable replacement policy. It tracks
// residency and statistics only — data contents live in the functional
// tree; the cache decides whether an access would have been on-chip.
type Cache struct {
	name     string
	lineSize int
	capacity int // in lines
	policy   Policy
	resident map[uint64]struct{} // line-addr set
	stats    CacheStats
}

// NewCache builds a cache of capacityBytes with the given line size and
// policy. Capacities below one line hold a single line.
func NewCache(name string, capacityBytes, lineSize int, policy Policy) *Cache {
	lines := capacityBytes / lineSize
	if lines < 1 {
		lines = 1
	}
	return &Cache{
		name:     name,
		lineSize: lineSize,
		capacity: lines,
		policy:   policy,
		resident: make(map[uint64]struct{}, lines),
	}
}

// Name returns the buffer's name (e.g. "Tree_buffer").
func (c *Cache) Name() string { return c.name }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// CapacityLines returns the capacity in lines.
func (c *Cache) CapacityLines() int { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Resident reports whether the line containing addr is cached.
func (c *Cache) Resident(addr uint64) bool {
	_, ok := c.resident[c.lineAddr(addr)]
	return ok
}

// Len returns the number of resident lines.
func (c *Cache) Len() int { return len(c.resident) }

func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr / uint64(c.lineSize)
}

// Access touches the byte range [addr, addr+size) with the given
// replacement value, returning the number of line hits and misses. Missed
// lines are fetched from the backing level (BytesIn) and inserted subject
// to the policy's admission decision.
func (c *Cache) Access(addr uint64, size int, value int64) (hits, misses int) {
	if size <= 0 {
		size = 1
	}
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint64(size) - 1)
	for line := first; line <= last; line++ {
		if _, ok := c.resident[line]; ok {
			c.stats.Hits++
			c.policy.OnAccess(line, value)
			hits++
			continue
		}
		c.stats.Misses++
		c.stats.BytesIn += int64(c.lineSize)
		misses++
		c.insert(line, value)
	}
	return hits, misses
}

func (c *Cache) insert(line uint64, value int64) {
	if len(c.resident) < c.capacity {
		c.resident[line] = struct{}{}
		c.policy.OnInsert(line, value)
		return
	}
	if !c.policy.Admit(value) {
		c.stats.Bypasses++
		return
	}
	victim := c.policy.Victim()
	c.policy.OnEvict(victim)
	delete(c.resident, victim)
	c.stats.Evictions++
	c.resident[line] = struct{}{}
	c.policy.OnInsert(line, value)
}

// Invalidate drops the lines covering [addr, addr+size), e.g. when the
// node they cached was freed or replaced.
func (c *Cache) Invalidate(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint64(size) - 1)
	for line := first; line <= last; line++ {
		if _, ok := c.resident[line]; ok {
			c.policy.OnEvict(line)
			delete(c.resident, line)
		}
	}
}

// Reset empties the cache and zeroes statistics.
func (c *Cache) Reset() {
	c.resident = make(map[uint64]struct{}, c.capacity)
	c.policy.Reset()
	c.stats = CacheStats{}
}
