// Package mem provides the memory-hierarchy models used by the simulators:
// fully-associative caches over synthetic addresses with pluggable
// replacement (LRU and the DCART paper's value-aware policy, §III-E), a
// DRAM/HBM channel model with latency and bandwidth accounting, and a
// cache-line utilization tracker for the Fig 2(c) experiment.
package mem

import "container/heap"

// Policy decides victims for a full cache. Implementations are not safe
// for concurrent use; each simulated buffer owns one policy instance.
type Policy interface {
	// OnInsert records that addr entered the cache with the given value.
	OnInsert(addr uint64, value int64)
	// OnAccess records a hit on addr (value may refresh the line's value).
	OnAccess(addr uint64, value int64)
	// Victim returns the line to evict. Called only when at least one
	// line is resident.
	Victim() uint64
	// OnEvict records that addr left the cache.
	OnEvict(addr uint64)
	// Admit reports whether a line of the given value should displace the
	// current victim. LRU always admits; the value-aware policy admits
	// only lines more valuable than the cheapest resident line.
	Admit(value int64) bool
	// Reset drops all state.
	Reset()
}

// lruPolicy is a textbook least-recently-used policy over an intrusive
// doubly-linked list.
type lruPolicy struct {
	elems map[uint64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	addr       uint64
	prev, next *lruNode
}

// NewLRU returns an LRU replacement policy.
func NewLRU() Policy {
	return &lruPolicy{elems: make(map[uint64]*lruNode)}
}

func (p *lruPolicy) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (p *lruPolicy) pushFront(n *lruNode) {
	n.next = p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *lruPolicy) OnInsert(addr uint64, _ int64) {
	n := &lruNode{addr: addr}
	p.elems[addr] = n
	p.pushFront(n)
}

func (p *lruPolicy) OnAccess(addr uint64, _ int64) {
	n, ok := p.elems[addr]
	if !ok {
		return
	}
	p.unlink(n)
	p.pushFront(n)
}

func (p *lruPolicy) Victim() uint64 { return p.tail.addr }

func (p *lruPolicy) OnEvict(addr uint64) {
	if n, ok := p.elems[addr]; ok {
		p.unlink(n)
		delete(p.elems, addr)
	}
}

func (p *lruPolicy) Admit(int64) bool { return true }

func (p *lruPolicy) Reset() {
	p.elems = make(map[uint64]*lruNode)
	p.head, p.tail = nil, nil
}

// valuePolicy implements DCART's value-aware management: every line
// carries a value (the population of the bucket whose node it caches); the
// victim is the lowest-valued resident line, and a new line is admitted
// only if its value exceeds the victim's. This protects high-value
// (frequently traversed) nodes from thrashing.
//
// Victim selection uses a lazy min-heap: value refreshes push a new heap
// entry, and stale entries are discarded when popped.
type valuePolicy struct {
	values map[uint64]int64
	h      valueHeap
}

type valueEntry struct {
	addr  uint64
	value int64
}

type valueHeap []valueEntry

func (h valueHeap) Len() int            { return len(h) }
func (h valueHeap) Less(i, j int) bool  { return h[i].value < h[j].value }
func (h valueHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *valueHeap) Push(x interface{}) { *h = append(*h, x.(valueEntry)) }
func (h *valueHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewValueAware returns the DCART value-aware replacement policy.
func NewValueAware() Policy {
	return &valuePolicy{values: make(map[uint64]int64)}
}

func (p *valuePolicy) OnInsert(addr uint64, value int64) {
	p.values[addr] = value
	heap.Push(&p.h, valueEntry{addr, value})
}

func (p *valuePolicy) OnAccess(addr uint64, value int64) {
	cur, ok := p.values[addr]
	if !ok {
		return
	}
	// Values only refresh when they change; pushing a higher value leaves
	// a stale low entry behind, discarded lazily by minResident.
	if value != cur {
		p.values[addr] = value
		heap.Push(&p.h, valueEntry{addr, value})
	}
}

// minResident pops stale heap entries until the top reflects a live line,
// then returns it without removing it.
func (p *valuePolicy) minResident() valueEntry {
	for len(p.h) > 0 {
		top := p.h[0]
		if cur, ok := p.values[top.addr]; ok && cur == top.value {
			return top
		}
		heap.Pop(&p.h)
	}
	// Unreachable when the cache is non-empty and bookkeeping is intact.
	panic("mem: value policy heap empty with resident lines")
}

func (p *valuePolicy) Victim() uint64 { return p.minResident().addr }

func (p *valuePolicy) OnEvict(addr uint64) { delete(p.values, addr) }

func (p *valuePolicy) Admit(value int64) bool {
	if len(p.values) == 0 {
		return true
	}
	return value > p.minResident().value
}

func (p *valuePolicy) Reset() {
	p.values = make(map[uint64]int64)
	p.h = p.h[:0]
}
