package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 4*64, 64, NewLRU()) // 4 lines
	if h, m := c.Access(0, 8, 0); h != 0 || m != 1 {
		t.Fatalf("cold access = (%d,%d)", h, m)
	}
	if h, m := c.Access(8, 8, 0); h != 1 || m != 0 {
		t.Fatalf("same-line access = (%d,%d)", h, m)
	}
	// Spanning two lines: addr 60..68.
	if h, m := c.Access(60, 9, 0); h != 1 || m != 1 {
		t.Fatalf("spanning access = (%d,%d)", h, m)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.BytesIn != 128 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 2*64, 64, NewLRU()) // 2 lines
	c.Access(0*64, 1, 0)
	c.Access(1*64, 1, 0)
	c.Access(0*64, 1, 0) // line 0 now MRU
	c.Access(2*64, 1, 0) // evicts line 1 (LRU)
	if !c.Resident(0 * 64) {
		t.Fatal("MRU line evicted")
	}
	if c.Resident(1 * 64) {
		t.Fatal("LRU line survived")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestCacheAccounting(t *testing.T) {
	// hits + misses == total line touches, always.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("t", 8*64, 64, NewLRU())
		touches := 0
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64 * 64))
			size := 1 + rng.Intn(100)
			h, m := c.Access(addr, size, 0)
			touches += h + m
		}
		st := c.Stats()
		return st.Hits+st.Misses == int64(touches) &&
			st.BytesIn == st.Misses*64 && c.Len() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValueAwareProtectsHotLines(t *testing.T) {
	c := NewCache("t", 2*64, 64, NewValueAware())
	c.Access(0*64, 1, 100) // high value
	c.Access(1*64, 1, 90)  // medium value
	// A low-value line must be bypassed, leaving both hot lines resident.
	c.Access(2*64, 1, 5)
	if !c.Resident(0*64) || !c.Resident(1*64) {
		t.Fatal("high-value lines evicted by low-value line")
	}
	if c.Resident(2 * 64) {
		t.Fatal("low-value line admitted over hotter lines")
	}
	if c.Stats().Bypasses != 1 {
		t.Fatalf("bypasses = %d", c.Stats().Bypasses)
	}
	// A higher-value line evicts the cheapest resident (value 90).
	c.Access(3*64, 1, 95)
	if c.Resident(1 * 64) {
		t.Fatal("cheapest line survived higher-value admission")
	}
	if !c.Resident(0*64) || !c.Resident(3*64) {
		t.Fatal("wrong victim selected")
	}
}

func TestValueAwareValueRefresh(t *testing.T) {
	c := NewCache("t", 2*64, 64, NewValueAware())
	c.Access(0*64, 1, 10)
	c.Access(1*64, 1, 20)
	// Refresh line 0 to a high value via a hit.
	c.Access(0*64, 1, 99)
	// Now value 30 should displace line 1 (value 20), not line 0.
	c.Access(2*64, 1, 30)
	if !c.Resident(0 * 64) {
		t.Fatal("refreshed line evicted")
	}
	if c.Resident(1 * 64) {
		t.Fatal("stale-valued line survived")
	}
}

func TestValueAwareVsLRUThrashing(t *testing.T) {
	// The scenario §III-E motivates: a small hot set plus a scan stream.
	// Value-aware must keep the hot set resident; LRU thrashes.
	run := func(p Policy) float64 {
		c := NewCache("t", 8*64, 64, p)
		rng := rand.New(rand.NewSource(1))
		hot := []uint64{0, 64, 128, 192} // 4 hot lines, values high
		hits, total := 0, 0
		for i := 0; i < 4000; i++ {
			if rng.Intn(2) == 0 {
				h, _ := c.Access(hot[rng.Intn(len(hot))], 1, 1000)
				hits += h
			} else {
				// Cold scan: unique lines, low value.
				h, _ := c.Access(uint64(1000+i)*64, 1, 1)
				hits += h
			}
			total++
		}
		return float64(hits) / float64(total)
	}
	va, lru := run(NewValueAware()), run(NewLRU())
	if va <= lru {
		t.Fatalf("value-aware hit ratio %.3f not better than LRU %.3f", va, lru)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", 4*64, 64, NewLRU())
	c.Access(0, 128, 0) // lines 0,1
	c.Invalidate(0, 128)
	if c.Resident(0) || c.Resident(64) {
		t.Fatal("lines survived invalidation")
	}
	if _, m := c.Access(0, 1, 0); m != 1 {
		t.Fatal("invalidated line hit")
	}
	// Invalidating absent lines is a no-op.
	c.Invalidate(10*64, 64)
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 4*64, 64, NewValueAware())
	c.Access(0, 1, 5)
	c.Reset()
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("reset incomplete")
	}
	if _, m := c.Access(0, 1, 5); m != 1 {
		t.Fatal("line survived reset")
	}
}

func TestCacheTinyCapacity(t *testing.T) {
	c := NewCache("t", 1, 64, NewLRU()) // rounds up to one line
	if c.CapacityLines() != 1 {
		t.Fatalf("capacity = %d", c.CapacityLines())
	}
	c.Access(0, 1, 0)
	c.Access(64, 1, 0)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestDRAMAccounting(t *testing.T) {
	d := HBM2()
	lat := d.Access(64)
	if lat != d.LatencyCycles {
		t.Fatalf("latency = %d", lat)
	}
	d.Access(64)
	if d.Accesses() != 2 || d.Bytes() != 128 {
		t.Fatalf("accesses=%d bytes=%d", d.Accesses(), d.Bytes())
	}
	floor := d.BandwidthFloorCycles()
	if floor != int64(float64(128)/d.BytesPerCycle) {
		t.Fatalf("floor = %d", floor)
	}
	d.Reset()
	if d.Accesses() != 0 || d.Bytes() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDRAMPresets(t *testing.T) {
	// Sanity: GPU memory has higher bandwidth than CPU DDR; FPGA HBM has
	// the lowest latency in its own (slow) clock domain.
	if GDDRA100().BytesPerCycle <= DDR4().BytesPerCycle {
		t.Fatal("A100 bandwidth should exceed DDR4")
	}
	if HBM2().LatencyCycles >= DDR4().LatencyCycles {
		t.Fatal("HBM at 230MHz should have fewer latency cycles than DDR at 2.1GHz")
	}
}

func TestLineUseTracker(t *testing.T) {
	tr := NewLineUseTracker(1024*64, 64)
	// 8 useful bytes out of a 64-byte line.
	tr.Access(0, 8)
	if u := tr.Utilization(); u != 8.0/64.0 {
		t.Fatalf("utilization = %v", u)
	}
	// A hit must not add fetched bytes.
	tr.Access(0, 8)
	if tr.FetchedBytes() != 64 {
		t.Fatalf("fetched = %d", tr.FetchedBytes())
	}
	// Full-line use.
	tr.Access(128, 64)
	if u := tr.Utilization(); u != (8.0+64.0)/128.0 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLineUseUtilizationBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewLineUseTracker(64*64, 64)
		for i := 0; i < 300; i++ {
			tr.Access(uint64(rng.Intn(10000)), 1+rng.Intn(200))
		}
		u := tr.Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
