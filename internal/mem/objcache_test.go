package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObjectCacheBasics(t *testing.T) {
	c := NewObjectCache("t", 1000, NewLRU())
	if c.Access(1, 100, 0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1, 100, 0) {
		t.Fatal("warm access missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesIn != 100 {
		t.Fatalf("stats %+v", st)
	}
	if c.UsedBytes() != 100 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.UsedBytes(), c.Len())
	}
}

func TestObjectCacheEvictsBySize(t *testing.T) {
	c := NewObjectCache("t", 250, NewLRU())
	c.Access(1, 100, 0)
	c.Access(2, 100, 0)
	// Object 3 (100B) needs one eviction (LRU = object 1).
	c.Access(3, 100, 0)
	if c.Resident(1) {
		t.Fatal("LRU object survived")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Fatal("wrong victim")
	}
	// A 240B object evicts both residents.
	c.Access(4, 240, 0)
	if c.Resident(2) || c.Resident(3) || !c.Resident(4) {
		t.Fatal("multi-eviction broken")
	}
	if c.UsedBytes() != 240 {
		t.Fatalf("used=%d", c.UsedBytes())
	}
}

func TestObjectCacheOversizedBypass(t *testing.T) {
	c := NewObjectCache("t", 100, NewLRU())
	if c.Access(1, 500, 0) {
		t.Fatal("oversized object hit")
	}
	if c.Len() != 0 || c.Stats().Bypasses != 1 {
		t.Fatalf("oversized object cached: %+v", c.Stats())
	}
}

func TestObjectCacheValueAwareAdmission(t *testing.T) {
	c := NewObjectCache("t", 200, NewValueAware())
	c.Access(1, 100, 50)
	c.Access(2, 100, 60)
	// Low value: bypassed, residents untouched.
	c.Access(3, 100, 10)
	if c.Resident(3) || !c.Resident(1) || !c.Resident(2) {
		t.Fatal("low-value admission")
	}
	// High value: evicts the cheapest resident (value 50).
	c.Access(4, 100, 99)
	if c.Resident(1) || !c.Resident(2) || !c.Resident(4) {
		t.Fatal("high-value admission picked wrong victim")
	}
}

func TestObjectCacheInvalidate(t *testing.T) {
	c := NewObjectCache("t", 1000, NewLRU())
	c.Access(7, 100, 0)
	c.Invalidate(7)
	if c.Resident(7) || c.UsedBytes() != 0 {
		t.Fatal("invalidate incomplete")
	}
	c.Invalidate(8) // absent: no-op
	c.Reset()
	if c.Stats() != (CacheStats{}) {
		t.Fatal("reset incomplete")
	}
}

// Property: used bytes equals the sum of resident object sizes and never
// exceeds capacity; hits+misses equals accesses.
func TestQuickObjectCacheInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := 500 + rng.Intn(2000)
		c := NewObjectCache("t", cap, NewLRU())
		sizes := map[uint64]int{}
		accesses := 0
		for i := 0; i < 400; i++ {
			addr := uint64(rng.Intn(50)) + 1
			size, ok := sizes[addr]
			if !ok {
				size = 1 + rng.Intn(300)
				sizes[addr] = size
			}
			c.Access(addr, size, int64(rng.Intn(100)))
			accesses++
		}
		if c.UsedBytes() > cap {
			return false
		}
		sum := 0
		for addr, size := range sizes {
			if c.Resident(addr) {
				sum += size
			}
		}
		st := c.Stats()
		return sum == c.UsedBytes() && st.Hits+st.Misses == int64(accesses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
