package mem

// DRAM models an off-chip memory interface (the U280's HBM stacks, or a
// CPU/GPU DRAM system) with a fixed access latency and an aggregate
// bandwidth ceiling. The simulators charge per-access latency on the
// critical path and, at the end of a run, raise total cycles to the
// bandwidth floor if traffic exceeded what the interface could move.
type DRAM struct {
	Name string
	// LatencyCycles is the round-trip latency of one access, in the
	// consumer's clock domain.
	LatencyCycles int
	// BytesPerCycle is the aggregate bandwidth across all channels, in the
	// consumer's clock domain.
	BytesPerCycle float64

	accesses int64
	bytes    int64
}

// HBM2 returns the U280 HBM model in the FPGA's 230 MHz clock domain:
// ~460 GB/s aggregate over 32 channels (= ~2000 B/cycle at 230 MHz) and
// ~110 ns access latency (~25 cycles).
func HBM2() *DRAM {
	return &DRAM{Name: "HBM2", LatencyCycles: 25, BytesPerCycle: 2000}
}

// DDR4 returns a CPU-socket DDR4 model in a 2.1 GHz core clock domain:
// ~200 GB/s aggregate (8 channels) and ~90 ns load-to-use (~190 cycles).
func DDR4() *DRAM {
	return &DRAM{Name: "DDR4", LatencyCycles: 190, BytesPerCycle: 95}
}

// GDDRA100 returns the A100 HBM2e model in a 1.4 GHz SM clock domain:
// ~1.9 TB/s aggregate and ~450 ns global-memory latency (~630 cycles).
func GDDRA100() *DRAM {
	return &DRAM{Name: "HBM2e-A100", LatencyCycles: 630, BytesPerCycle: 1350}
}

// Access records one off-chip access of size bytes and returns its latency
// in cycles.
func (d *DRAM) Access(size int) int {
	d.accesses++
	d.bytes += int64(size)
	return d.LatencyCycles
}

// Accesses returns the access count so far.
func (d *DRAM) Accesses() int64 { return d.accesses }

// Bytes returns the bytes moved so far.
func (d *DRAM) Bytes() int64 { return d.bytes }

// BandwidthFloorCycles returns the minimum number of cycles the recorded
// traffic needs under the bandwidth ceiling, regardless of latency
// overlap.
func (d *DRAM) BandwidthFloorCycles() int64 {
	if d.BytesPerCycle <= 0 {
		return 0
	}
	return int64(float64(d.bytes) / d.BytesPerCycle)
}

// Reset zeroes the traffic counters.
func (d *DRAM) Reset() {
	d.accesses = 0
	d.bytes = 0
}

// LineUseTracker measures cache-line utilization (Fig 2(c)): when an index
// structure fetches small objects (1-byte partial keys, 8-byte pointers)
// through 64-byte lines, only a fraction of each fetched line is useful.
// The tracker runs a cache in front, so repeated hits on a hot line do not
// count as new fetches.
type LineUseTracker struct {
	cache       *Cache
	usefulBytes int64
	lineSize    int
}

// NewLineUseTracker builds a tracker with a cache of capacityBytes and the
// given line size (64 for the paper's CPUs), using LRU replacement.
func NewLineUseTracker(capacityBytes, lineSize int) *LineUseTracker {
	return &LineUseTracker{
		cache:    NewCache("lineuse", capacityBytes, lineSize, NewLRU()),
		lineSize: lineSize,
	}
}

// Access records a fetch of [addr, addr+size) of which size bytes are
// useful. Only line misses contribute fetched bytes.
func (t *LineUseTracker) Access(addr uint64, size int) {
	_, misses := t.cache.Access(addr, size, 0)
	if misses > 0 {
		useful := size
		if max := misses * t.lineSize; useful > max {
			useful = max
		}
		t.usefulBytes += int64(useful)
	}
}

// Utilization returns useful bytes / fetched bytes over all misses.
func (t *LineUseTracker) Utilization() float64 {
	fetched := t.cache.Stats().BytesIn
	if fetched == 0 {
		return 0
	}
	return float64(t.usefulBytes) / float64(fetched)
}

// FetchedBytes returns total bytes fetched from memory.
func (t *LineUseTracker) FetchedBytes() int64 { return t.cache.Stats().BytesIn }

// Stats exposes the line-granular hit/miss statistics of the front cache.
func (t *LineUseTracker) Stats() CacheStats { return t.cache.Stats() }
