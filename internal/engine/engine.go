// Package engine defines the interface every evaluated index engine
// implements (the CPU baselines ART/Heart/SMART, the GPU baseline CuART,
// the software CTT model DCART-C, and the DCART accelerator simulator),
// plus the result record the experiment harness consumes.
//
// Engines execute operation streams *functionally* and *deterministically*
// while modeling concurrent execution: operations are processed in rounds
// of Config.Threads logically-parallel operations, and synchronization
// events (lock acquisitions, contended locks, atomic RMWs) are counted
// according to each engine's concurrency discipline. Counts feed the
// platform timing/energy models; see DESIGN.md §4 for why counts, not
// wall-clock, are the ground truth in this reproduction.
package engine

import (
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config carries the modeled-execution parameters shared by engines.
type Config struct {
	// Threads is the modeled concurrency: operations are grouped into
	// rounds of this many logically-concurrent operations. The paper's
	// CPU testbed runs 96 cores.
	Threads int
	// CacheBytes models the effective on-chip cache available to the
	// index (per-socket LLC share in the CPU baselines).
	CacheBytes int
	// LineSize is the fetch granularity in bytes (64 on the paper's CPUs).
	LineSize int
	// CollectReads makes Run record every read's result for equivalence
	// checking (costs memory; off for large benchmark runs).
	CollectReads bool
}

// Defaults fills unset fields with the paper-testbed defaults.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = 96
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 8 << 20
	}
	if c.LineSize <= 0 {
		c.LineSize = 64
	}
	return c
}

// ReadResult records the outcome of one read operation for verification.
type ReadResult struct {
	Index int // position in the op stream
	Value uint64
	OK    bool
}

// Result is what an engine reports after running an operation stream.
type Result struct {
	Name string
	Ops  int
	// Metrics is the engine's counter set (key matches, node accesses,
	// lock/atomic events, shortcut hits, ...).
	Metrics *metrics.Set
	// RedundantRatio is the fraction of node fetches that were redundant
	// within a round of concurrent operations (Fig 2(b)).
	RedundantRatio float64
	// LineUtilization is useful-bytes / fetched-bytes at line granularity
	// (Fig 2(c)).
	LineUtilization float64
	// CacheHitRatio is the modeled on-chip hit ratio for index accesses.
	CacheHitRatio float64
	// OffchipBytes is the modeled off-chip traffic in bytes.
	OffchipBytes int64
	// Cycles is the modeled cycle count, for engines that have their own
	// cycle-accurate model (the DCART accelerator); 0 otherwise.
	Cycles int64
	// WallNanos is the real (measured, not modeled) wall-clock duration of
	// Run, for engines that execute natively in parallel (P-CTT); 0 for
	// the serially-executed modeled engines.
	WallNanos int64
	// Reads holds per-read outcomes when Config.CollectReads is set.
	Reads []ReadResult
}

// Engine is one evaluated system.
type Engine interface {
	// Name returns the engine's display name (e.g. "SMART", "DCART").
	Name() string
	// Load bulk-inserts the initial key set (not measured). values may be
	// nil, in which case keys[i] maps to uint64(i).
	Load(keys [][]byte, values []uint64)
	// Run executes the operation stream and returns measurements. Run may
	// be called multiple times; counters accumulate across calls unless
	// Reset is called.
	Run(ops []workload.Op) *Result
	// Reset clears counters and measurement state (not the loaded tree).
	Reset()
}
