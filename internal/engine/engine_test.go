package engine

import "testing"

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Threads != 96 {
		t.Fatalf("Threads = %d, want the paper's 96 cores", c.Threads)
	}
	if c.CacheBytes != 8<<20 || c.LineSize != 64 {
		t.Fatalf("cache defaults: %+v", c)
	}
	if c.CollectReads {
		t.Fatal("CollectReads should default off")
	}
}

func TestConfigDefaultsPreserveExplicit(t *testing.T) {
	c := Config{Threads: 4, CacheBytes: 1024, LineSize: 32, CollectReads: true}.Defaults()
	if c.Threads != 4 || c.CacheBytes != 1024 || c.LineSize != 32 || !c.CollectReads {
		t.Fatalf("explicit values overwritten: %+v", c)
	}
}
