package metrics

import "testing"

func TestHistogramObserveN(t *testing.T) {
	// ObserveN(v, n) must be indistinguishable from n Observe(v) calls.
	a := NewHistogram()
	b := NewHistogram()
	for i := 0; i < 5; i++ {
		a.Observe(1e-4)
	}
	for i := 0; i < 3; i++ {
		a.Observe(2e-3)
	}
	b.ObserveN(1e-4, 5)
	b.ObserveN(2e-3, 3)

	if a.Count() != b.Count() || b.Count() != 8 {
		t.Fatalf("counts = %d vs %d, want 8", a.Count(), b.Count())
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("sums = %g vs %g", a.Sum(), b.Sum())
	}
	if a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("min/max = %g/%g vs %g/%g", a.Min(), a.Max(), b.Min(), b.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%.2f = %g vs %g", q, a.Quantile(q), b.Quantile(q))
		}
	}

	// n=0 is a no-op and must not disturb min/max.
	before := b.Min()
	b.ObserveN(1e-9, 0)
	if b.Count() != 8 || b.Min() != before {
		t.Fatalf("ObserveN(_, 0) mutated the histogram: count=%d min=%g", b.Count(), b.Min())
	}

	// First-sample min handling on an empty histogram.
	c := NewHistogram()
	c.ObserveN(3e-2, 4)
	if c.Min() != 3e-2 || c.Max() != 3e-2 || c.Count() != 4 {
		t.Fatalf("fresh ObserveN: min=%g max=%g count=%d", c.Min(), c.Max(), c.Count())
	}
}
