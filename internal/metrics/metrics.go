// Package metrics provides the instrumentation primitives shared by every
// engine in this repository: atomic event counters, execution-time
// breakdowns, and latency histograms with percentile queries.
//
// All engines report the same counter set so the experiment harness can
// compare them uniformly (Figs 2, 7, 8 of the DCART paper are pure counter
// readouts).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter names used across the repository. Engines are free to leave
// counters they never touch at zero.
const (
	// CtrKeyMatches counts partial-key match steps (one per node visited
	// during a top-down radix descent). Fig 8.
	CtrKeyMatches = "key_matches"
	// CtrNodeAccesses counts tree-node fetches (on- or off-chip).
	CtrNodeAccesses = "node_accesses"
	// CtrRedundantNodes counts node fetches whose node was already fetched
	// by an earlier operation of the same batch window. Fig 2(b).
	CtrRedundantNodes = "redundant_nodes"
	// CtrLockAcquire counts successful lock acquisitions.
	CtrLockAcquire = "lock_acquire"
	// CtrLockContention counts contended acquisitions (lock was held or a
	// version validation failed, forcing a wait or restart). Fig 7.
	CtrLockContention = "lock_contention"
	// CtrAtomicOps counts CAS / atomic RMW operations issued.
	CtrAtomicOps = "atomic_ops"
	// CtrRestarts counts optimistic-concurrency restarts.
	CtrRestarts = "restarts"
	// CtrOpsRead / CtrOpsWrite count executed operations by kind.
	CtrOpsRead  = "ops_read"
	CtrOpsWrite = "ops_write"
	// CtrCoalesced counts operations that were combined with an earlier
	// operation targeting the same node (CTT models only).
	CtrCoalesced = "coalesced_ops"
	// CtrShortcutHit / CtrShortcutMiss count shortcut-table lookups.
	CtrShortcutHit  = "shortcut_hit"
	CtrShortcutMiss = "shortcut_miss"
	// CtrCombineSteps counts operation-combining work (one per operation
	// bucketed by the PCU or its software equivalent).
	CtrCombineSteps = "combine_steps"
	// CtrShortcutMaintain counts Shortcut_Table maintenance actions
	// (entry creation, refresh, and invalidation).
	CtrShortcutMaintain = "shortcut_maintain"
	// CtrBatches counts trigger batches executed by the parallel CTT
	// workers (one per worker wakeup that processed a combine batch).
	CtrBatches = "trigger_batches"
	// CtrBucketSteals counts combine buckets popped from a peer worker's
	// ring by an idle worker (whole-bucket work stealing, P-CTT only).
	CtrBucketSteals = "bucket_steals"
	// CtrBucketHandoffs counts combine buckets re-homed to a parked peer
	// when they re-queued while still hot (P-CTT push handoff).
	CtrBucketHandoffs = "bucket_handoffs"
	// CtrWindowDeferrals counts combine windows set aside until their
	// MaxDelay deadline because they held fewer than MinBatch operations.
	CtrWindowDeferrals = "window_deferrals"
	// CtrOffchipBytes counts bytes moved over the off-chip interface.
	CtrOffchipBytes = "offchip_bytes"
	// CtrOnchipHits counts accesses served by on-chip buffers.
	CtrOnchipHits = "onchip_hits"
	// CtrSharedDescents counts batch-shared tree descents: one LocateBatch
	// traversal that resolved a whole sorted key batch with a single
	// lock-coupled walk (olc batch API; the paper's one-traversal-per-batch
	// Trigger property).
	CtrSharedDescents = "shared_descents"
	// CtrBatchFallbacks counts batch operations that could not be served
	// from their shared-descent location (structural change needed, stale
	// leaf, in-batch ordering hazard) and fell back to a per-key root
	// operation.
	CtrBatchFallbacks = "batch_fallbacks"
	// CtrHotsetHit / CtrHotsetMiss count hot-node residency lookups: a hit
	// means a batch descent started from a cached interior anchor instead of
	// the root (the software Tree_buffer analogue, P-CTT only).
	CtrHotsetHit  = "hotset_hit"
	CtrHotsetMiss = "hotset_miss"
	// CtrHotsetEvict counts value-aware hotset evictions (a higher-value
	// bucket anchor displaced the cheapest resident one).
	CtrHotsetEvict = "hotset_evict"
	// CtrHotsetInvalidate counts hotset entries dropped because their anchor
	// node was made obsolete by a structural change.
	CtrHotsetInvalidate = "hotset_invalidate"
	// CtrBypassOps counts operations executed directly against the tree by
	// the single-worker combine-window bypass (P-CTT only).
	CtrBypassOps = "bypass_ops"
	// CtrOpsScan counts ordered read operations (prefix scans, range scans,
	// and full walks) routed through an engine's scan path.
	CtrOpsScan = "ops_scan"
	// CtrScanRows counts key/value pairs delivered by scan operations.
	CtrScanRows = "scan_rows"
)

// Set is a collection of named atomic counters. The zero value is not
// usable; construct with NewSet. Sets are safe for concurrent use.
type Set struct {
	names []string          // registration order, for deterministic dumps
	ctrs  map[string]*int64 // fixed after construction
}

// standardNames is the counter vocabulary pre-registered in every Set.
var standardNames = []string{
	CtrKeyMatches, CtrNodeAccesses, CtrRedundantNodes,
	CtrLockAcquire, CtrLockContention, CtrAtomicOps, CtrRestarts,
	CtrOpsRead, CtrOpsWrite, CtrCoalesced,
	CtrShortcutHit, CtrShortcutMiss,
	CtrCombineSteps, CtrShortcutMaintain, CtrBatches,
	CtrBucketSteals, CtrBucketHandoffs, CtrWindowDeferrals,
	CtrOffchipBytes, CtrOnchipHits,
	CtrSharedDescents, CtrBatchFallbacks,
	CtrHotsetHit, CtrHotsetMiss, CtrHotsetEvict, CtrHotsetInvalidate,
	CtrBypassOps, CtrOpsScan, CtrScanRows,
}

// NewSet returns a Set with the standard counters plus any extra names.
func NewSet(extra ...string) *Set {
	s := &Set{ctrs: make(map[string]*int64)}
	for _, n := range standardNames {
		s.register(n)
	}
	for _, n := range extra {
		s.register(n)
	}
	return s
}

func (s *Set) register(name string) {
	if _, ok := s.ctrs[name]; ok {
		return
	}
	s.names = append(s.names, name)
	s.ctrs[name] = new(int64)
}

// Add increments counter name by delta. Unknown names panic: counter names
// are a closed vocabulary and a typo would silently corrupt an experiment.
func (s *Set) Add(name string, delta int64) {
	c, ok := s.ctrs[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown counter %q", name))
	}
	atomic.AddInt64(c, delta)
}

// Inc is Add(name, 1).
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Counter resolves name to its underlying atomic cell, letting hot paths
// skip the per-call map lookup: resolve once, then atomic.AddInt64
// directly. The cell stays registered — Get, Snapshot, and Reset see the
// same counter. Unknown names panic, as in Add.
func (s *Set) Counter(name string) *int64 {
	c, ok := s.ctrs[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown counter %q", name))
	}
	return c
}

// Get returns the current value of counter name (0 for unknown names).
func (s *Set) Get(name string) int64 {
	c, ok := s.ctrs[name]
	if !ok {
		return 0
	}
	return atomic.LoadInt64(c)
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	for _, c := range s.ctrs {
		atomic.StoreInt64(c, 0)
	}
}

// Snapshot returns a point-in-time copy of all counters.
func (s *Set) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.ctrs))
	for n, c := range s.ctrs {
		out[n] = atomic.LoadInt64(c)
	}
	return out
}

// Names returns the registered counter names in registration order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// String renders non-zero counters as "name=value" pairs, registration
// order, space separated. Zero counters are omitted to keep dumps short.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.names {
		v := s.Get(n)
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, v)
	}
	return b.String()
}

// Ratio returns Get(num)/Get(den), or 0 when the denominator is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Breakdown attributes modeled execution time to named phases (the paper's
// Fig 2(a) splits time into tree traversal, synchronization, and others).
type Breakdown struct {
	phases []string
	time   map[string]float64 // seconds
}

// NewBreakdown creates a breakdown over the given phases, all at zero.
func NewBreakdown(phases ...string) *Breakdown {
	b := &Breakdown{time: make(map[string]float64, len(phases))}
	for _, p := range phases {
		b.phases = append(b.phases, p)
		b.time[p] = 0
	}
	return b
}

// Add accrues seconds to a phase, registering it if new.
func (b *Breakdown) Add(phase string, seconds float64) {
	if _, ok := b.time[phase]; !ok {
		b.phases = append(b.phases, phase)
	}
	b.time[phase] += seconds
}

// Get returns the seconds accrued to a phase.
func (b *Breakdown) Get(phase string) float64 { return b.time[phase] }

// Total returns the sum over all phases.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b.time {
		t += v
	}
	return t
}

// Share returns the fraction of total time spent in phase (0 if empty).
func (b *Breakdown) Share(phase string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.time[phase] / t
}

// Phases returns the phase names in registration order.
func (b *Breakdown) Phases() []string {
	out := make([]string, len(b.phases))
	copy(out, b.phases)
	return out
}

// String renders "phase=12.3ms (45.6%)" entries.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for _, p := range b.phases {
		if sb.Len() > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s=%.3gms (%.1f%%)", p, b.time[p]*1e3, b.Share(p)*100)
	}
	return sb.String()
}

// Histogram records latency samples and answers percentile queries. It uses
// logarithmic bucketing (~1% relative precision) so millions of samples cost
// a fixed footprint. The zero value is not usable; use NewHistogram.
//
// Concurrency contract: a Histogram is SINGLE-WRITER and has no internal
// synchronization. Exactly one goroutine may call Observe (and Merge, which
// also mutates the receiver); readers (Quantile, Mean, Cumulative, ...)
// must synchronize with that writer externally. The intended pattern —
// used by internal/pctt — is one private histogram per worker goroutine,
// folded together with Merge into a fresh histogram under a lock, or while
// the workers are quiescent. Merging a histogram that another goroutine is
// concurrently Observing into is a data race.
type Histogram struct {
	counts []uint64
	total  uint64
	min    float64
	max    float64
	sum    float64
}

// histBuckets spans 1ns..100s with 1% geometric spacing.
const (
	histBase    = 1e-9
	histGrowth  = 1.01
	histBuckets = 2400
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

var logGrowth = math.Log(histGrowth)

func bucketOf(v float64) int {
	if v <= histBase {
		return 0
	}
	idx := int(math.Ceil(math.Log(v/histBase) / logGrowth))
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// boundary returns the upper bound of bucket i in seconds.
func boundary(i int) float64 {
	return histBase * math.Exp(float64(i)*logGrowth)
}

// Observe records one latency sample in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.counts[bucketOf(seconds)]++
	if h.total == 0 || seconds < h.min {
		h.min = seconds
	}
	if seconds > h.max {
		h.max = seconds
	}
	h.total++
	h.sum += seconds
}

// ObserveN records n identical latency samples in seconds with one bucket
// add. It exists for bulk conversion of externally-bucketed distributions
// (the runtime/metrics histograms): adding counts instead of looping
// Observe keeps the conversion O(source buckets), not O(samples).
func (h *Histogram) ObserveN(seconds float64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[bucketOf(seconds)] += n
	if h.total == 0 || seconds < h.min {
		h.min = seconds
	}
	if seconds > h.max {
		h.max = seconds
	}
	h.total += n
	h.sum += seconds * float64(n)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the extreme observed samples (0 when empty).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Sum returns the sum of all observed samples in seconds.
func (h *Histogram) Sum() float64 { return h.sum }

// Cumulative re-buckets the histogram onto the caller's upper bounds
// (seconds, ascending): out[i] counts samples <= bounds[i], resolved at the
// internal ~1% bucket resolution. Exporters use this to serve a compact
// Prometheus histogram without exposing all internal buckets.
func (h *Histogram) Cumulative(bounds []float64) []uint64 {
	out := make([]uint64, len(bounds))
	if len(bounds) == 0 {
		return out
	}
	var seen uint64
	bi := 0
	for i, c := range h.counts {
		upper := boundary(i)
		for bi < len(bounds) && upper > bounds[bi] {
			out[bi] = seen
			bi++
		}
		if bi == len(bounds) {
			break
		}
		seen += c
	}
	for ; bi < len(bounds); bi++ {
		out[bi] = seen
	}
	return out
}

// Quantile returns the latency at quantile q in [0,1], e.g. 0.99 for P99.
// The answer is exact to the bucket resolution (~1%).
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return boundary(i)
		}
	}
	return h.max
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{
		counts: make([]uint64, len(h.counts)),
		total:  h.total,
		min:    h.min,
		max:    h.max,
		sum:    h.sum,
	}
	copy(out.counts, h.counts)
	return out
}

// Delta returns a new histogram holding the samples h gained since prev —
// the per-window latency distribution the obs windowed collector derives
// from two cumulative scrapes. prev must be an earlier copy of the same
// logical histogram (or nil/empty, in which case Delta returns a clone of
// h). If any bucket count decreased — the source histogram was reset or
// replaced between the two copies, so subtraction would wrap — Delta treats
// h itself as the window and returns its clone.
//
// The delta's min/max are resolved at bucket precision (~1%) from the
// outermost buckets that gained samples; its sum is the cumulative sums'
// difference, clamped at zero in case of float drift.
func (h *Histogram) Delta(prev *Histogram) *Histogram {
	if prev == nil || prev.total == 0 {
		return h.Clone()
	}
	if prev.total > h.total || len(prev.counts) != len(h.counts) {
		return h.Clone() // reset/replaced (or foreign shape): wrap-safe fallback
	}
	out := NewHistogram()
	lo, hi := -1, -1
	for i := range h.counts {
		if h.counts[i] < prev.counts[i] {
			return h.Clone() // per-bucket wrap: source was reset between copies
		}
		d := h.counts[i] - prev.counts[i]
		out.counts[i] = d
		if d != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	out.total = h.total - prev.total
	if out.total > 0 {
		out.sum = h.sum - prev.sum
		if out.sum < 0 {
			out.sum = 0
		}
		out.min = boundary(lo)
		out.max = boundary(hi)
		// The true extremes are exact only when the window reaches past the
		// previous copy's envelope.
		if h.max > prev.max {
			out.max = h.max
		}
		if h.min < prev.min {
			out.min = h.min
		}
	}
	return out
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if other.total > 0 {
		if h.total == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.total += other.total
	h.sum += other.sum
}

// RedundancyTracker measures how many node fetches within a sliding window
// of operations hit nodes already fetched by an earlier operation in the
// window. The paper's Fig 2(b) reports this ratio over batches of
// concurrently in-flight operations. Not safe for concurrent use.
type RedundancyTracker struct {
	window    int
	seen      map[uint64]int // node addr -> ops-ago last touched
	opIndex   int
	fetches   int64
	redundant int64
}

// NewRedundancyTracker creates a tracker with the given operation window
// (how many consecutive operations count as "concurrent").
func NewRedundancyTracker(window int) *RedundancyTracker {
	if window < 1 {
		window = 1
	}
	return &RedundancyTracker{window: window, seen: make(map[uint64]int)}
}

// NextOp marks the start of a new operation.
func (r *RedundancyTracker) NextOp() { r.opIndex++ }

// Touch records a fetch of the node at addr and reports whether it was
// redundant (touched by another operation within the window).
func (r *RedundancyTracker) Touch(addr uint64) bool {
	r.fetches++
	last, ok := r.seen[addr]
	r.seen[addr] = r.opIndex
	if ok && r.opIndex-last <= r.window && r.opIndex != last {
		r.redundant++
		return true
	}
	return false
}

// Ratio returns redundant fetches / total fetches.
func (r *RedundancyTracker) Ratio() float64 {
	if r.fetches == 0 {
		return 0
	}
	return float64(r.redundant) / float64(r.fetches)
}

// Fetches returns total fetches observed.
func (r *RedundancyTracker) Fetches() int64 { return r.fetches }

// Redundant returns redundant fetches observed.
func (r *RedundancyTracker) Redundant() int64 { return r.redundant }

// TopShare answers "what fraction of accesses hit the hottest p of keys".
// Given per-key access counts it returns the access share of the hottest
// fraction p (0 < p <= 1) of keys. Used for the Fig 3 skew statistic
// ("96.65% of tree traversals access only 5% of the nodes").
func TopShare(counts []int64, p float64) float64 {
	if len(counts) == 0 || p <= 0 {
		return 0
	}
	sorted := make([]int64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	n := int(float64(len(sorted)) * p)
	if n < 1 {
		n = 1
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	var top, total int64
	for i, c := range sorted {
		total += c
		if i < n {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
