package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Inc(CtrKeyMatches)
	s.Add(CtrKeyMatches, 4)
	if got := s.Get(CtrKeyMatches); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
	if got := s.Get(CtrLockAcquire); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
	s.Reset()
	if got := s.Get(CtrKeyMatches); got != 0 {
		t.Fatalf("after Reset = %d", got)
	}
}

func TestSetUnknownCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with unknown name did not panic")
		}
	}()
	NewSet().Inc("no_such_counter")
}

func TestSetExtraCounters(t *testing.T) {
	s := NewSet("custom_events")
	s.Add("custom_events", 7)
	if s.Get("custom_events") != 7 {
		t.Fatal("extra counter not registered")
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc(CtrAtomicOps)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(CtrAtomicOps); got != 8000 {
		t.Fatalf("concurrent adds = %d, want 8000", got)
	}
}

func TestSetRatioAndString(t *testing.T) {
	s := NewSet()
	s.Add(CtrShortcutHit, 30)
	s.Add(CtrShortcutMiss, 10)
	if r := s.Ratio(CtrShortcutHit, CtrShortcutMiss); r != 3 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := s.Ratio(CtrShortcutHit, CtrLockAcquire); r != 0 {
		t.Fatalf("Ratio with zero denominator = %v", r)
	}
	if s.String() == "" {
		t.Fatal("String empty with non-zero counters")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("traversal", "sync", "other")
	b.Add("traversal", 0.6)
	b.Add("sync", 0.3)
	b.Add("other", 0.1)
	if math.Abs(b.Total()-1.0) > 1e-12 {
		t.Fatalf("Total = %v", b.Total())
	}
	if math.Abs(b.Share("traversal")-0.6) > 1e-12 {
		t.Fatalf("Share = %v", b.Share("traversal"))
	}
	b.Add("new_phase", 1.0)
	if len(b.Phases()) != 4 {
		t.Fatalf("Phases = %v", b.Phases())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 400e-6 || p50 > 600e-6 {
		t.Fatalf("P50 = %v, want ~500us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 950e-6 || p99 > 1050e-6 {
		t.Fatalf("P99 = %v, want ~990us", p99)
	}
	if h.Min() != 1e-6 || h.Max() != 1000e-6 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 490e-6 || mean > 510e-6 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(1e-6)
		b.Observe(1e-3)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Quantile(0.25) > 2e-6 || a.Quantile(0.75) < 0.9e-3 {
		t.Fatalf("merged quantiles wrong: %v %v", a.Quantile(0.25), a.Quantile(0.75))
	}
}

// Property: Quantile is monotone in q and bounded by [~Min, ~Max].
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(math.Abs(s) / (math.Abs(s) + 1)) // map into [0,1)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should answer 0")
	}
	h.Observe(5e-6)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles should answer the single sample bucket")
	}
}

func TestRedundancyTracker(t *testing.T) {
	r := NewRedundancyTracker(4)
	// Op 1 touches nodes 1,2,3; op 2 touches 1,2,4.
	r.NextOp()
	for _, a := range []uint64{1, 2, 3} {
		if r.Touch(a) {
			t.Fatalf("first touch of %d reported redundant", a)
		}
	}
	r.NextOp()
	red := 0
	for _, a := range []uint64{1, 2, 4} {
		if r.Touch(a) {
			red++
		}
	}
	if red != 2 {
		t.Fatalf("redundant = %d, want 2 (nodes 1,2)", red)
	}
	if r.Ratio() != 2.0/6.0 {
		t.Fatalf("Ratio = %v", r.Ratio())
	}
}

func TestRedundancyWindowExpiry(t *testing.T) {
	r := NewRedundancyTracker(2)
	r.NextOp()
	r.Touch(7)
	// Advance past the window.
	for i := 0; i < 3; i++ {
		r.NextOp()
	}
	if r.Touch(7) {
		t.Fatal("touch outside window reported redundant")
	}
}

func TestRedundancySameOpNotRedundant(t *testing.T) {
	r := NewRedundancyTracker(8)
	r.NextOp()
	r.Touch(1)
	if r.Touch(1) {
		// Same op touching the same node twice: the second touch has
		// opIndex == last, which must not count as cross-op redundancy.
		t.Fatal("same-op re-touch counted as redundant")
	}
}

func TestTopShare(t *testing.T) {
	// 10 keys; one key owns 91 of 100 accesses.
	counts := []int64{91, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := TopShare(counts, 0.1); got != 0.91 {
		t.Fatalf("TopShare(0.1) = %v", got)
	}
	if got := TopShare(counts, 1.0); got != 1.0 {
		t.Fatalf("TopShare(1.0) = %v", got)
	}
	if got := TopShare(nil, 0.5); got != 0 {
		t.Fatalf("TopShare(nil) = %v", got)
	}
	if got := TopShare([]int64{0, 0}, 0.5); got != 0 {
		t.Fatalf("TopShare(zeros) = %v", got)
	}
}
