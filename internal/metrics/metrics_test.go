package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Inc(CtrKeyMatches)
	s.Add(CtrKeyMatches, 4)
	if got := s.Get(CtrKeyMatches); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
	if got := s.Get(CtrLockAcquire); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
	s.Reset()
	if got := s.Get(CtrKeyMatches); got != 0 {
		t.Fatalf("after Reset = %d", got)
	}
}

func TestSetUnknownCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with unknown name did not panic")
		}
	}()
	NewSet().Inc("no_such_counter")
}

func TestSetExtraCounters(t *testing.T) {
	s := NewSet("custom_events")
	s.Add("custom_events", 7)
	if s.Get("custom_events") != 7 {
		t.Fatal("extra counter not registered")
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc(CtrAtomicOps)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(CtrAtomicOps); got != 8000 {
		t.Fatalf("concurrent adds = %d, want 8000", got)
	}
}

func TestSetRatioAndString(t *testing.T) {
	s := NewSet()
	s.Add(CtrShortcutHit, 30)
	s.Add(CtrShortcutMiss, 10)
	if r := s.Ratio(CtrShortcutHit, CtrShortcutMiss); r != 3 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := s.Ratio(CtrShortcutHit, CtrLockAcquire); r != 0 {
		t.Fatalf("Ratio with zero denominator = %v", r)
	}
	if s.String() == "" {
		t.Fatal("String empty with non-zero counters")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("traversal", "sync", "other")
	b.Add("traversal", 0.6)
	b.Add("sync", 0.3)
	b.Add("other", 0.1)
	if math.Abs(b.Total()-1.0) > 1e-12 {
		t.Fatalf("Total = %v", b.Total())
	}
	if math.Abs(b.Share("traversal")-0.6) > 1e-12 {
		t.Fatalf("Share = %v", b.Share("traversal"))
	}
	b.Add("new_phase", 1.0)
	if len(b.Phases()) != 4 {
		t.Fatalf("Phases = %v", b.Phases())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 400e-6 || p50 > 600e-6 {
		t.Fatalf("P50 = %v, want ~500us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 950e-6 || p99 > 1050e-6 {
		t.Fatalf("P99 = %v, want ~990us", p99)
	}
	if h.Min() != 1e-6 || h.Max() != 1000e-6 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 490e-6 || mean > 510e-6 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(1e-6)
		b.Observe(1e-3)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Quantile(0.25) > 2e-6 || a.Quantile(0.75) < 0.9e-3 {
		t.Fatalf("merged quantiles wrong: %v %v", a.Quantile(0.25), a.Quantile(0.75))
	}
}

// Property: Quantile is monotone in q and bounded by [~Min, ~Max].
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(math.Abs(s) / (math.Abs(s) + 1)) // map into [0,1)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should answer 0")
	}
	h.Observe(5e-6)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles should answer the single sample bucket")
	}
}

// TestHistogramQuantileEdgeCases pins the contract at the boundaries:
// empty histograms answer 0 everywhere, a single observation answers that
// observation (to bucket resolution) for every q, and out-of-range q
// clamps to [0,1] instead of misbehaving.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	empty := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}

	single := NewHistogram()
	single.Observe(42e-6)
	for _, q := range []float64{-0.5, 0, 0.5, 1, 1.5} {
		v := single.Quantile(q)
		// Bucket resolution is ~1%; allow 2%.
		if v < 42e-6*0.98 || v > 42e-6*1.02 {
			t.Fatalf("single-sample Quantile(%v) = %v, want ~42us", q, v)
		}
	}

	// q=0 must answer the low end, q=1 the high end, for a spread.
	h := NewHistogram()
	h.Observe(1e-6)
	h.Observe(1e-3)
	if v := h.Quantile(0); v > 2e-6 {
		t.Fatalf("Quantile(0) = %v, want ~1us", v)
	}
	if v := h.Quantile(1); v < 0.9e-3 {
		t.Fatalf("Quantile(1) = %v, want ~1ms", v)
	}

	// Sub-histBase and above-range samples clamp into the edge buckets
	// rather than panicking or vanishing.
	ex := NewHistogram()
	ex.Observe(0)
	ex.Observe(1e-12)
	ex.Observe(1000) // above the 100s top bucket
	if ex.Count() != 3 {
		t.Fatalf("extreme samples lost: count = %d", ex.Count())
	}
	if v := ex.Quantile(0); v > 2e-9 {
		t.Fatalf("Quantile(0) after tiny samples = %v", v)
	}
}

// TestHistogramCumulative checks the exporter-facing re-bucketing: counts
// are cumulative, monotone, and land at the right bounds.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(5e-6) // 5us
	}
	for i := 0; i < 7; i++ {
		h.Observe(2e-3) // 2ms
	}
	bounds := []float64{1e-6, 1e-5, 1e-3, 1e-2, 1}
	got := h.Cumulative(bounds)
	want := []uint64{0, 10, 10, 17, 17}
	for i := range bounds {
		if got[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v (bound %v)", got, want, bounds[i])
		}
	}
	if s := h.Sum(); s < 0.014 || s > 0.0141 {
		t.Fatalf("Sum = %v", s)
	}
	if out := h.Cumulative(nil); len(out) != 0 {
		t.Fatalf("Cumulative(nil) = %v", out)
	}
}

// TestHistogramPerWorkerMergeRace exercises the documented concurrency
// contract under -race: each worker goroutine owns a private histogram
// (single writer), a collector snapshots mid-flight by merging every
// shard under its per-shard mutex — the internal/pctt pattern — and the
// final merged counts are exact.
func TestHistogramPerWorkerMergeRace(t *testing.T) {
	const workers, samples = 4, 5000
	shards := make([]*Histogram, workers)
	locks := make([]sync.Mutex, workers)
	for i := range shards {
		shards[i] = NewHistogram()
	}
	mergeAll := func() *Histogram {
		out := NewHistogram()
		for i := range shards {
			locks[i].Lock()
			out.Merge(shards[i])
			locks[i].Unlock()
		}
		return out
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < samples; j++ {
				locks[i].Lock()
				shards[i].Observe(float64(j%100+1) * 1e-6)
				locks[i].Unlock()
			}
		}(i)
	}
	// Live scraper: merge while the workers observe.
	scrapes := 0
	for {
		h := mergeAll()
		if h.Count() > workers*samples {
			t.Fatalf("mid-flight merge over-counted: %d", h.Count())
		}
		scrapes++
		if h.Count() == workers*samples {
			break
		}
	}
	wg.Wait()
	final := mergeAll()
	if final.Count() != workers*samples {
		t.Fatalf("final merged count = %d, want %d (after %d scrapes)",
			final.Count(), workers*samples, scrapes)
	}
}

// TestSetSnapshotConsistentUnderConcurrentAdd: snapshots taken while
// writers hammer the set must be monotone per counter and exact once the
// writers join.
func TestSetSnapshotConsistentUnderConcurrentAdd(t *testing.T) {
	s := NewSet()
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				s.Inc(CtrOpsRead)
				s.Add(CtrOpsWrite, 2)
			}
		}()
	}
	prev := map[string]int64{}
	for {
		snap := s.Snapshot()
		for _, n := range []string{CtrOpsRead, CtrOpsWrite} {
			if snap[n] < prev[n] {
				t.Fatalf("counter %s went backwards: %d -> %d", n, prev[n], snap[n])
			}
			prev[n] = snap[n]
		}
		if snap[CtrOpsRead] == writers*perWriter {
			break
		}
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap[CtrOpsRead] != writers*perWriter || snap[CtrOpsWrite] != 2*writers*perWriter {
		t.Fatalf("final snapshot = read %d write %d", snap[CtrOpsRead], snap[CtrOpsWrite])
	}
}

func TestRedundancyTracker(t *testing.T) {
	r := NewRedundancyTracker(4)
	// Op 1 touches nodes 1,2,3; op 2 touches 1,2,4.
	r.NextOp()
	for _, a := range []uint64{1, 2, 3} {
		if r.Touch(a) {
			t.Fatalf("first touch of %d reported redundant", a)
		}
	}
	r.NextOp()
	red := 0
	for _, a := range []uint64{1, 2, 4} {
		if r.Touch(a) {
			red++
		}
	}
	if red != 2 {
		t.Fatalf("redundant = %d, want 2 (nodes 1,2)", red)
	}
	if r.Ratio() != 2.0/6.0 {
		t.Fatalf("Ratio = %v", r.Ratio())
	}
}

func TestRedundancyWindowExpiry(t *testing.T) {
	r := NewRedundancyTracker(2)
	r.NextOp()
	r.Touch(7)
	// Advance past the window.
	for i := 0; i < 3; i++ {
		r.NextOp()
	}
	if r.Touch(7) {
		t.Fatal("touch outside window reported redundant")
	}
}

func TestRedundancySameOpNotRedundant(t *testing.T) {
	r := NewRedundancyTracker(8)
	r.NextOp()
	r.Touch(1)
	if r.Touch(1) {
		// Same op touching the same node twice: the second touch has
		// opIndex == last, which must not count as cross-op redundancy.
		t.Fatal("same-op re-touch counted as redundant")
	}
}

func TestTopShare(t *testing.T) {
	// 10 keys; one key owns 91 of 100 accesses.
	counts := []int64{91, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := TopShare(counts, 0.1); got != 0.91 {
		t.Fatalf("TopShare(0.1) = %v", got)
	}
	if got := TopShare(counts, 1.0); got != 1.0 {
		t.Fatalf("TopShare(1.0) = %v", got)
	}
	if got := TopShare(nil, 0.5); got != 0 {
		t.Fatalf("TopShare(nil) = %v", got)
	}
	if got := TopShare([]int64{0, 0}, 0.5); got != 0 {
		t.Fatalf("TopShare(zeros) = %v", got)
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1e-6, 5e-4, 2e-3} {
		h.Observe(v)
	}
	c := h.Clone()
	if c.Count() != h.Count() || c.Sum() != h.Sum() || c.Min() != h.Min() || c.Max() != h.Max() {
		t.Fatalf("clone summary mismatch: %+v vs %+v", c, h)
	}
	h.Observe(1) // clone must be independent
	if c.Count() == h.Count() {
		t.Fatal("clone shares state with original")
	}
}

func TestHistogramDeltaBasic(t *testing.T) {
	h := NewHistogram()
	h.Observe(1e-5)
	h.Observe(1e-5)
	prev := h.Clone()
	h.Observe(1e-3)
	h.Observe(2e-3)
	h.Observe(1e-3)

	d := h.Delta(prev)
	if d.Count() != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count())
	}
	wantSum := h.Sum() - prev.Sum()
	if math.Abs(d.Sum()-wantSum) > 1e-12 {
		t.Fatalf("delta sum = %g, want %g", d.Sum(), wantSum)
	}
	// All window samples are >= 1e-3; the old 1e-5 samples must not leak in.
	if q := d.Quantile(0); q < 1e-3*0.98 {
		t.Fatalf("delta min quantile %g includes pre-window samples", q)
	}
	// Max reaches past prev's envelope, so it is exact.
	if d.Max() != h.Max() {
		t.Fatalf("delta max = %g, want exact %g", d.Max(), h.Max())
	}
	// Min stays inside prev's envelope: bucket precision only.
	lo := d.Min()
	if lo < 1e-3/1.02 || lo > 1e-3*1.02 {
		t.Fatalf("delta min = %g, want ~1e-3 at bucket precision", lo)
	}
}

func TestHistogramDeltaEmptyAndNilPrev(t *testing.T) {
	h := NewHistogram()
	h.Observe(2e-4)
	for _, prev := range []*Histogram{nil, NewHistogram()} {
		d := h.Delta(prev)
		if d.Count() != 1 || d.Sum() != h.Sum() {
			t.Fatalf("delta vs empty prev: count=%d sum=%g", d.Count(), d.Sum())
		}
	}
	// Independence: mutating the delta must not touch h.
	h.Delta(nil).Observe(1)
	if h.Count() != 1 {
		t.Fatal("Delta(nil) returned a view, not a copy")
	}
}

func TestHistogramDeltaNoChange(t *testing.T) {
	h := NewHistogram()
	h.Observe(3e-3)
	d := h.Delta(h.Clone())
	if d.Count() != 0 || d.Sum() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("zero-delta window not empty: %+v", d)
	}
}

func TestHistogramDeltaReset(t *testing.T) {
	// prev recorded more samples than the current histogram: the source was
	// reset (or swapped for a fresh one) between copies. Delta must not wrap.
	prev := NewHistogram()
	for i := 0; i < 10; i++ {
		prev.Observe(1e-4)
	}
	h := NewHistogram()
	h.Observe(7e-3)
	d := h.Delta(prev)
	if d.Count() != 1 {
		t.Fatalf("reset delta count = %d, want clone of current (1)", d.Count())
	}
	if d.Quantile(0.5) < 7e-3/1.02 {
		t.Fatalf("reset delta quantile = %g, want ~7e-3", d.Quantile(0.5))
	}
}

func TestHistogramDeltaPerBucketWrap(t *testing.T) {
	// Same totals but one bucket decreased: still a reset, caught per bucket.
	prev := NewHistogram()
	prev.Observe(1e-5)
	prev.Observe(1e-5)
	h := NewHistogram()
	h.Observe(9e-2)
	h.Observe(9e-2)
	d := h.Delta(prev)
	if d.Count() != 2 {
		t.Fatalf("wrap delta count = %d, want 2", d.Count())
	}
	if d.Quantile(0) < 9e-2/1.02 {
		t.Fatalf("wrap delta kept stale buckets: q0 = %g", d.Quantile(0))
	}
}
