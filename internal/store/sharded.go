package store

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// Sharded partitions the key space across N independent sub-stores by the
// top key bytes and routes every operation to its owner — the software
// analogue of the paper's scale-out shape (16 replicated SOUs behind one
// prefix-based dispatcher, Fig 6): point operations scatter to exactly
// one unit, ordered reads scatter to all units and the results merge back
// in key order (ordered k-way merge, as the SmartNIC ordered-KV and
// FPGA batch-search systems do).
//
// Consistency: per-key operations are as strong as the sub-store provides
// (per-key FIFO within a shard; a key never changes shards). Scans offer
// no cross-shard snapshot isolation — each shard's segment is gathered at
// a slightly different instant — but the merged output is always strictly
// ascending across shard boundaries.
type Sharded struct {
	shards []Store
}

// NewSharded builds an n-way sharded store; factory is called once per
// shard index to build the sub-stores (typically all Direct or all
// Batched, but any mix of Stores works).
func NewSharded(n int, factory func(shard int) Store) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]Store, n)}
	for i := range s.shards {
		s.shards[i] = factory(i)
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes sub-store i (tests, benchmarks).
func (s *Sharded) Shard(i int) Store { return s.shards[i] }

// ShardOf maps a key to its shard among n: the top two key bytes,
// big-endian, modulo n. Using the leading bytes keeps each combine
// prefix's traffic on one shard (so the sub-engine's combining still
// sees it whole) while spreading distinct prefixes across shards.
func ShardOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	var v uint32
	if len(key) > 0 {
		v = uint32(key[0]) << 8
	}
	if len(key) > 1 {
		v |= uint32(key[1])
	}
	return int(v % uint32(n))
}

func (s *Sharded) owner(key []byte) Store {
	return s.shards[ShardOf(key, len(s.shards))]
}

func (s *Sharded) Get(key []byte) (uint64, bool)     { return s.owner(key).Get(key) }
func (s *Sharded) Put(key []byte, value uint64) bool { return s.owner(key).Put(key, value) }
func (s *Sharded) Delete(key []byte) bool            { return s.owner(key).Delete(key) }

// Async submissions route to the owning shard like their blocking twins;
// a key never changes shards, so per-key submission order is preserved by
// whatever the sub-store guarantees.
func (s *Sharded) GetAsync(key []byte) Pending { return s.owner(key).GetAsync(key) }
func (s *Sharded) PutAsync(key []byte, value uint64) Pending {
	return s.owner(key).PutAsync(key, value)
}
func (s *Sharded) DeleteAsync(key []byte) Pending { return s.owner(key).DeleteAsync(key) }

// Len sums the shard cardinalities (keys never straddle shards).
func (s *Sharded) Len() int {
	n := 0
	for _, sub := range s.shards {
		n += sub.Len()
	}
	return n
}

// Close closes every shard and returns the first error.
func (s *Sharded) Close() error {
	var first error
	for _, sub := range s.shards {
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// kvPair is one gathered scan row. The key slice references the shard
// tree's immutable leaf key, so gathering retains no copies.
type kvPair struct {
	k []byte
	v uint64
}

// gather scatters one ordered read across all shards concurrently. Each
// shard collects its own ascending segment (at most limit+1 rows when
// limit > 0 — enough to detect global truncation after the merge) and the
// segments come back for a k-way merge on the caller's goroutine.
func (s *Sharded) gather(limit int, scan func(sub Store, emit Visitor)) [][]kvPair {
	parts := make([][]kvPair, len(s.shards))
	var wg sync.WaitGroup
	for i, sub := range s.shards {
		wg.Add(1)
		go func(i int, sub Store) {
			defer wg.Done()
			var buf []kvPair
			scan(sub, func(k []byte, v uint64) bool {
				buf = append(buf, kvPair{k, v})
				return limit <= 0 || len(buf) <= limit
			})
			parts[i] = buf
		}(i, sub)
	}
	wg.Wait()
	return parts
}

// mergeEmit streams the k sorted shard segments to fn in globally
// ascending order, delivering at most limit rows when limit > 0. It
// reports truncation under the Store.Scan contract. Shard counts are
// small, so a linear scan over the k heads beats heap bookkeeping.
func mergeEmit(parts [][]kvPair, limit int, fn Visitor) (truncated bool) {
	heads := make([]int, len(parts))
	delivered := 0
	for {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || bytes.Compare(p[heads[i]].k, parts[best][heads[best]].k) < 0 {
				best = i
			}
		}
		if best < 0 {
			return false // all segments exhausted
		}
		if limit > 0 && delivered == limit {
			return true // more rows existed beyond the limit
		}
		e := parts[best][heads[best]]
		heads[best]++
		delivered++
		if !fn(e.k, e.v) {
			return false // caller stopped the scan
		}
	}
}

func (s *Sharded) Scan(prefix []byte, limit int, fn Visitor) bool {
	parts := s.gather(limit, func(sub Store, emit Visitor) {
		sub.Scan(prefix, 0, emit)
	})
	return mergeEmit(parts, limit, fn)
}

func (s *Sharded) Range(lo, hi []byte, limit int, fn Visitor) bool {
	parts := s.gather(limit, func(sub Store, emit Visitor) {
		sub.Range(lo, hi, 0, emit)
	})
	return mergeEmit(parts, limit, fn)
}

// Walk merges the shards' full segments in ascending order. The gather
// materializes every pair first (scans hold no cross-shard locks), so
// Walk over a huge sharded store trades memory for merge simplicity —
// snapshots prefer the per-shard path in SaveSnapshot, which never
// gathers globally.
func (s *Sharded) Walk(fn Visitor) bool {
	parts := s.gather(0, func(sub Store, emit Visitor) {
		sub.Walk(emit)
	})
	complete := true
	mergeEmit(parts, 0, func(k []byte, v uint64) bool {
		if !fn(k, v) {
			complete = false
			return false
		}
		return true
	})
	return complete
}

// RegisterObs registers every shard under its own registry group
// ("store-shard<i>") with a shard label on each series, plus the
// aggregate shard-count and key-count gauges under ObsGroup. Per-shard
// groups attach and detach as units, so swapping one shard's engine
// re-registers only that shard.
func (s *Sharded) RegisterObs(r *obs.Registry) { s.RegisterObsTagged(r, ObsGroup, "") }

// RegisterObsTagged implements ObsTagged.
func (s *Sharded) RegisterObsTagged(r *obs.Registry, group, labels string) {
	r.UnregisterGroup(group)
	r.RegisterGauge(group, "dcart_store_shards", labels,
		"configured store shards (independent sub-stores behind the router)",
		func() float64 { return float64(len(s.shards)) })
	r.RegisterGauge(group, "dcart_store_keys_total", labels,
		"keys stored across all shards",
		func() float64 { return float64(s.Len()) })
	for i, sub := range s.shards {
		shardGroup := fmt.Sprintf("%s-shard%d", group, i)
		shardLabels := obs.JoinLabels(labels, obs.Label("shard", strconv.Itoa(i)))
		if t, ok := sub.(ObsTagged); ok {
			t.RegisterObsTagged(r, shardGroup, shardLabels)
		}
		sub := sub
		r.RegisterGauge(shardGroup, "dcart_store_shard_keys", shardLabels,
			"keys stored in this shard",
			func() float64 { return float64(sub.Len()) })
	}
}
