// Async submission support: the Batched and Sharded topologies route
// GetAsync/PutAsync/DeleteAsync straight into the pctt engine's async
// Batcher surface (the pipeline's own backpressure and per-key FIFO apply
// unchanged); Direct has no pipeline, so it runs a small worker shim — a
// few goroutines fed by key-routed queues — that decouples submission from
// the tree descent while preserving per-key submission order.
package store

import (
	"runtime"
	"sync"

	"repro/internal/olc"
)

// resolved is an already-completed Pending: the synchronous fallback for
// closed stores, where the operation executed on the submitting goroutine.
type resolved struct {
	value uint64
	found bool
}

func (r resolved) Wait() (uint64, bool) { return r.value, r.found }

// Shim operation kinds.
const (
	shimGet uint8 = iota
	shimPut
	shimDelete
)

// shimOp is one queued Direct async operation and, once executed, its own
// completion token. The done channel is created once per pooled op and
// reused across recycles.
type shimOp struct {
	kind  uint8
	key   []byte
	value uint64
	found bool
	done  chan struct{}
}

var shimOpPool = sync.Pool{
	New: func() any { return &shimOp{done: make(chan struct{}, 1)} },
}

// Wait implements Pending. Exactly one completion is sent per submission,
// so the receive never blocks past execution.
func (p *shimOp) Wait() (uint64, bool) {
	<-p.done
	v, ok := p.value, p.found
	p.key = nil
	shimOpPool.Put(p)
	return v, ok
}

// shimWorkers caps the Direct shim's worker pool. The shim exists to let a
// submitter keep parsing while descents run, not to scale the tree — the
// lock-coupling tree handles real concurrency on its own — so a handful of
// workers is enough to keep submission non-blocking at any realistic
// per-connection rate.
func shimWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shimQueueDepth bounds each shim worker's pending queue; a full queue
// blocks submitters (backpressure), mirroring the engine's QueueDepth.
const shimQueueDepth = 256

// asyncShim executes Direct async submissions on a small worker pool.
// Operations are routed to a worker by key hash, so two submissions of the
// same key from one goroutine land on the same FIFO queue — per-key
// submission order is preserved, which is what keeps read-your-writes
// intact for a pipelined connection.
type asyncShim struct {
	tree   *olc.Tree
	queues []chan *shimOp
	wg     sync.WaitGroup
	mu     sync.RWMutex
	closed bool
}

func newAsyncShim(tree *olc.Tree) *asyncShim {
	s := &asyncShim{tree: tree, queues: make([]chan *shimOp, shimWorkers())}
	for i := range s.queues {
		q := make(chan *shimOp, shimQueueDepth)
		s.queues[i] = q
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for op := range q {
				s.exec(op)
			}
		}()
	}
	return s
}

func (s *asyncShim) exec(op *shimOp) {
	switch op.kind {
	case shimGet:
		op.value, op.found = s.tree.Get(op.key)
	case shimPut:
		op.found = s.tree.Put(op.key, op.value)
	default:
		op.found = s.tree.Delete(op.key)
	}
	op.done <- struct{}{}
}

// submit routes op to its key's worker queue, or executes it inline after
// close (the store stays usable, just without the submission decoupling).
func (s *asyncShim) submit(op *shimOp) Pending {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.exec(op)
		return op
	}
	s.queues[shimIndex(op.key, len(s.queues))] <- op
	s.mu.RUnlock()
	return op
}

// close drains the queues and stops the workers; every submitted token
// still completes.
func (s *asyncShim) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// shimIndex routes a key to a shim worker (FNV-1a over the whole key, so
// queues balance even when leading bytes cluster).
func shimIndex(key []byte, n int) int {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(n))
}
