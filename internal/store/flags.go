package store

import (
	"flag"

	"repro/internal/pctt"
)

// Config selects a store topology: how many shards, and whether each
// shard runs the direct tree or the batching engine.
type Config struct {
	// Shards partitions the store into this many independent sub-stores
	// (<=1 keeps a single store).
	Shards int
	// Engine configures the parallel CTT engine behind each sub-store.
	// Engine.Workers > 0 selects Batched sub-stores (the worker count is
	// per shard); 0 selects Direct.
	Engine pctt.Config
}

// Open builds the store Config describes.
func Open(cfg Config) Store {
	mk := func(int) Store {
		if cfg.Engine.Workers > 0 {
			return NewBatched(cfg.Engine)
		}
		return NewDirect()
	}
	if cfg.Shards > 1 {
		return NewSharded(cfg.Shards, mk)
	}
	return mk(0)
}

// Flags bundles every store-topology flag: the engine's -batch-* knobs
// (registered through pctt.Config.RegisterFlags) plus -shards. Both
// binaries register through here, so each flag's name, default, and help
// text is defined exactly once.
type Flags struct {
	// Engine receives the parsed -batch-* values.
	Engine pctt.Config
	shards *int
}

// RegisterFlags registers the full store flag set on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.Engine.RegisterFlags(fs)
	f.shards = RegisterShardsFlag(fs)
	return f
}

// RegisterShardsFlag registers just the -shards knob (dcart-bench wants
// it without the -batch-* set).
func RegisterShardsFlag(fs *flag.FlagSet) *int {
	return fs.Int("shards", 0,
		"partition the store into n independent sub-stores: scatter-gather scans with ordered merge, per-shard snapshots and observability (<=1 = unsharded; for dcart-bench -exp native, pin the shard sweep to exactly n)")
}

// Shards returns the parsed -shards value.
func (f *Flags) Shards() int { return *f.shards }

// Config assembles the parsed flags into a store Config.
func (f *Flags) Config() Config {
	return Config{Shards: *f.shards, Engine: f.Engine}
}
