package store

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pctt"
)

// Batched routes point operations through the parallel
// Combine-Traverse-Trigger engine (internal/pctt): concurrent callers on
// keys sharing a prefix bucket coalesce into one trigger batch, which is
// where the lock-amortization wins come from under concurrent load.
// Ordered reads route through the engine's scan path, so scans count into
// the engine's metrics (ops_scan, scan_rows) and appear in its lifecycle
// tracing — under the previous architecture kvserver's scans reached into
// the tree directly and were invisible to both.
type Batched struct {
	e *pctt.Engine
}

// NewBatched returns a batched store running a fresh engine with cfg.
// Call Close to stop the engine's workers.
func NewBatched(cfg pctt.Config) *Batched { return &Batched{e: pctt.New(cfg)} }

// WrapEngine wraps an existing engine (benchmarks that drive the engine's
// bulk Run path and the store surface over the same index).
func WrapEngine(e *pctt.Engine) *Batched { return &Batched{e: e} }

// Engine exposes the underlying parallel engine.
func (b *Batched) Engine() *pctt.Engine { return b.e }

// Metrics returns the engine's live counter set.
func (b *Batched) Metrics() *metrics.Set { return b.e.Metrics() }

func (b *Batched) Get(key []byte) (uint64, bool)     { return b.e.Get(key) }
func (b *Batched) Put(key []byte, value uint64) bool { return b.e.Put(key, value) }
func (b *Batched) Delete(key []byte) bool            { return b.e.Delete(key) }

// The async surface maps directly onto the engine's async Batcher calls:
// submissions from one goroutine enter their combine buckets in order, so
// several of one producer's requests can share a combine window — the
// whole point of pipelined submission.
func (b *Batched) GetAsync(key []byte) Pending { return b.e.GetAsync(key) }
func (b *Batched) PutAsync(key []byte, value uint64) Pending {
	return b.e.PutAsync(key, value)
}
func (b *Batched) DeleteAsync(key []byte) Pending { return b.e.DeleteAsync(key) }
func (b *Batched) Len() int                          { return b.e.Len() }
func (b *Batched) Walk(fn Visitor) bool              { return b.e.Walk(fn) }
func (b *Batched) Close() error                      { return b.e.Close() }

func (b *Batched) Scan(prefix []byte, limit int, fn Visitor) bool {
	return boundedScan(limit, fn, func(v Visitor) {
		b.e.ScanPrefix(prefix, v)
	})
}

func (b *Batched) Range(lo, hi []byte, limit int, fn Visitor) bool {
	return boundedScan(limit, fn, func(v Visitor) {
		b.e.AscendRange(lo, hi, v)
	})
}

// RegisterObs registers the engine's live series under the engine's
// default group.
func (b *Batched) RegisterObs(r *obs.Registry) { b.e.RegisterObs(r) }

// RegisterObsTagged implements ObsTagged.
func (b *Batched) RegisterObsTagged(r *obs.Registry, group, labels string) {
	b.e.RegisterObsTagged(r, group, labels)
}
