package store

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/olc"
)

// ObsGroup is the default registry group a store registers under.
const ObsGroup = "store"

// Direct executes every operation with one descent of the lock-coupling
// concurrent ART — the baseline discipline the paper's CPU systems use.
// Async submissions run on a lazily-started worker shim (see async.go)
// so a pipelined producer is not serialized behind each descent.
type Direct struct {
	tree *olc.Tree
	ms   *metrics.Set

	shimOnce sync.Once
	shim     *asyncShim
	closed   atomic.Bool
}

// NewDirect returns an empty direct store with a private counter set.
func NewDirect() *Direct {
	ms := metrics.NewSet()
	return &Direct{tree: olc.New(ms), ms: ms}
}

// Tree exposes the underlying concurrent index (benchmarks, tests).
func (d *Direct) Tree() *olc.Tree { return d.tree }

// Metrics returns the live counter set shared with the tree.
func (d *Direct) Metrics() *metrics.Set { return d.ms }

func (d *Direct) Get(key []byte) (uint64, bool)     { return d.tree.Get(key) }
func (d *Direct) Put(key []byte, value uint64) bool { return d.tree.Put(key, value) }
func (d *Direct) Delete(key []byte) bool            { return d.tree.Delete(key) }
func (d *Direct) Len() int                          { return d.tree.Len() }
func (d *Direct) Walk(fn Visitor) bool              { return d.tree.Walk(fn) }

// Close stops the async shim's workers (draining queued submissions first;
// every issued token still completes). The store stays usable: blocking
// calls are unaffected and later async calls execute synchronously.
func (d *Direct) Close() error {
	d.closed.Store(true)
	// Claim the Once so a concurrent async call cannot start a fresh shim
	// after we are done here.
	d.shimOnce.Do(func() {})
	if d.shim != nil {
		d.shim.close()
	}
	return nil
}

func (d *Direct) GetAsync(key []byte) Pending { return d.pend(shimGet, key, 0) }
func (d *Direct) PutAsync(key []byte, value uint64) Pending {
	return d.pend(shimPut, key, value)
}
func (d *Direct) DeleteAsync(key []byte) Pending { return d.pend(shimDelete, key, 0) }

func (d *Direct) pend(kind uint8, key []byte, value uint64) Pending {
	if !d.closed.Load() {
		if s := d.lazyShim(); s != nil {
			op := shimOpPool.Get().(*shimOp)
			op.kind, op.key, op.value = kind, key, value
			return s.submit(op)
		}
	}
	// Closed (or lost the creation race with Close): synchronous fallback.
	switch kind {
	case shimGet:
		v, ok := d.tree.Get(key)
		return resolved{value: v, found: ok}
	case shimPut:
		return resolved{found: d.tree.Put(key, value)}
	default:
		return resolved{found: d.tree.Delete(key)}
	}
}

func (d *Direct) lazyShim() *asyncShim {
	d.shimOnce.Do(func() {
		if !d.closed.Load() {
			d.shim = newAsyncShim(d.tree)
		}
	})
	return d.shim
}

func (d *Direct) Scan(prefix []byte, limit int, fn Visitor) bool {
	d.ms.Inc(metrics.CtrOpsScan)
	return boundedScan(limit, countRows(d.ms, fn), func(v Visitor) {
		d.tree.ScanPrefix(prefix, v)
	})
}

func (d *Direct) Range(lo, hi []byte, limit int, fn Visitor) bool {
	d.ms.Inc(metrics.CtrOpsScan)
	return boundedScan(limit, countRows(d.ms, fn), func(v Visitor) {
		d.tree.AscendRange(lo, hi, v)
	})
}

// RegisterObs registers the tree's counter set under ObsGroup.
func (d *Direct) RegisterObs(r *obs.Registry) { d.RegisterObsTagged(r, ObsGroup, "") }

// RegisterObsTagged implements ObsTagged.
func (d *Direct) RegisterObsTagged(r *obs.Registry, group, labels string) {
	r.UnregisterGroup(group)
	r.RegisterCountersLabeled(group, "dcart", labels,
		"tree event counter (see internal/metrics for the vocabulary)", d.ms)
	r.RegisterGauge(group, "dcart_store_keys", labels,
		"keys stored in this store", func() float64 { return float64(d.tree.Len()) })
}

// countRows wraps fn so every delivered pair also counts into scan_rows.
func countRows(ms *metrics.Set, fn Visitor) Visitor {
	c := ms.Counter(metrics.CtrScanRows)
	return func(k []byte, v uint64) bool {
		atomic.AddInt64(c, 1)
		return fn(k, v)
	}
}
