package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/pctt"
)

// topologies under test: every Store implementation, including sharded
// wrappers of both kinds.
func testStores(t *testing.T) map[string]Store {
	t.Helper()
	return map[string]Store{
		"direct":  NewDirect(),
		"batched": NewBatched(pctt.Config{Workers: 2}),
		"sharded-direct": NewSharded(3, func(int) Store {
			return NewDirect()
		}),
		"sharded-batched": NewSharded(2, func(int) Store {
			return NewBatched(pctt.Config{Workers: 1})
		}),
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%05d", i)) }

func TestShardOf(t *testing.T) {
	if got := ShardOf([]byte("anything"), 1); got != 0 {
		t.Fatalf("n=1 -> %d", got)
	}
	if got := ShardOf(nil, 4); got != 0 {
		t.Fatalf("empty key -> %d", got)
	}
	// Deterministic, in range, and actually spreading.
	seen := map[int]bool{}
	for i := 0; i < 512; i++ {
		k := []byte{byte(i), byte(i >> 3), 'x'}
		s := ShardOf(k, 4)
		if s != ShardOf(k, 4) {
			t.Fatal("ShardOf not deterministic")
		}
		if s < 0 || s >= 4 {
			t.Fatalf("shard out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("512 varied keys hit only shards %v", seen)
	}
	// Only the top two bytes matter: a combine prefix stays on one shard.
	if ShardOf([]byte{9, 7, 1}, 8) != ShardOf([]byte{9, 7, 200, 31}, 8) {
		t.Fatal("keys sharing the top two bytes landed on different shards")
	}
}

// TestStoreOracle drives every topology through a random op stream next
// to a map oracle, then audits point reads, Len, Walk order, and
// bounded Scan/Range results (rows, order, and the truncated flag)
// against the oracle.
func TestStoreOracle(t *testing.T) {
	for name, st := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			rng := rand.New(rand.NewSource(7))
			oracle := map[string]uint64{}
			for i := 0; i < 4000; i++ {
				k := key(rng.Intn(600))
				switch rng.Intn(3) {
				case 0, 1:
					v := rng.Uint64()
					existed := st.Put(k, v)
					if _, want := oracle[string(k)]; existed != want {
						t.Fatalf("Put(%s) existed=%v, oracle says %v", k, existed, want)
					}
					oracle[string(k)] = v
				case 2:
					existed := st.Delete(k)
					if _, want := oracle[string(k)]; existed != want {
						t.Fatalf("Delete(%s) existed=%v, oracle says %v", k, existed, want)
					}
					delete(oracle, string(k))
				}
			}

			if st.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle has %d", st.Len(), len(oracle))
			}
			for i := 0; i < 600; i++ {
				k := key(i)
				v, ok := st.Get(k)
				want, wantOK := oracle[string(k)]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("Get(%s) = (%d,%v), want (%d,%v)", k, v, ok, want, wantOK)
				}
			}

			sorted := make([]string, 0, len(oracle))
			for k := range oracle {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)

			var walked []string
			st.Walk(func(k []byte, v uint64) bool {
				walked = append(walked, string(k))
				return true
			})
			if len(walked) != len(sorted) {
				t.Fatalf("Walk visited %d keys, want %d", len(walked), len(sorted))
			}
			for i := range walked {
				if walked[i] != sorted[i] {
					t.Fatalf("Walk order: [%d] = %q, want %q", i, walked[i], sorted[i])
				}
			}

			// Bounded range scans vs the oracle, including the truncated flag.
			for trial := 0; trial < 50; trial++ {
				lo, hi := key(rng.Intn(600)), key(rng.Intn(600))
				if bytes.Compare(lo, hi) > 0 {
					lo, hi = hi, lo
				}
				var want []string
				for _, k := range sorted {
					if k >= string(lo) && k <= string(hi) {
						want = append(want, k)
					}
				}
				limit := 1 + rng.Intn(12)
				var got []string
				truncated := st.Range(lo, hi, limit, func(k []byte, v uint64) bool {
					got = append(got, string(k))
					return true
				})
				wantRows := len(want)
				if wantRows > limit {
					wantRows = limit
				}
				if len(got) != wantRows {
					t.Fatalf("Range[%s,%s] limit=%d -> %d rows, want %d",
						lo, hi, limit, len(got), wantRows)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("Range row %d = %q, want %q", i, got[i], want[i])
					}
				}
				if truncated != (len(want) > limit) {
					t.Fatalf("Range truncated=%v with %d matches, limit %d",
						truncated, len(want), limit)
				}
			}

			// Prefix scans: "k001" matches k00100..k00199 and k001 variants.
			var got []string
			truncated := st.Scan([]byte("k001"), 0, func(k []byte, v uint64) bool {
				got = append(got, string(k))
				return true
			})
			var want []string
			for _, k := range sorted {
				if len(k) >= 4 && k[:4] == "k001" {
					want = append(want, k)
				}
			}
			if truncated || len(got) != len(want) {
				t.Fatalf("Scan k001 -> %d rows truncated=%v, want %d rows",
					len(got), truncated, len(want))
			}
			// A visitor stopping early is not truncation.
			if len(want) > 1 {
				stopped := st.Scan([]byte("k001"), 0, func(k []byte, v uint64) bool {
					return false
				})
				if stopped {
					t.Fatal("early-stopped scan reported truncated")
				}
			}
		})
	}
}

// TestShardedMergeBoundaries: rows interleave across shards (keys with
// distinct top bytes) and the merged output is strictly ascending, with
// truncation cutting at the globally correct row, not per shard.
func TestShardedMergeBoundaries(t *testing.T) {
	s := NewSharded(4, func(int) Store { return NewDirect() })
	defer s.Close()
	var all []string
	for b := 0; b < 16; b++ {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("%c%d", 'a'+b, i)
			s.Put([]byte(k), uint64(b*8+i))
			all = append(all, k)
		}
	}
	sort.Strings(all)

	var got []string
	truncated := s.Range([]byte("a"), []byte("zzz"), 50, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if !truncated || len(got) != 50 {
		t.Fatalf("got %d rows truncated=%v", len(got), truncated)
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], all[i])
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("merge order violated at %d: %q after %q", i, got[i], got[i-1])
		}
	}
}

func TestOpenTopologies(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{}, "*store.Direct"},
		{Config{Engine: pctt.Config{Workers: 2}}, "*store.Batched"},
		{Config{Shards: 4}, "*store.Sharded"},
		{Config{Shards: 2, Engine: pctt.Config{Workers: 1}}, "*store.Sharded"},
	} {
		st := Open(tc.cfg)
		if got := fmt.Sprintf("%T", st); got != tc.want {
			t.Fatalf("Open(%+v) = %s, want %s", tc.cfg, got, tc.want)
		}
		if sh, ok := st.(*Sharded); ok {
			wantSub := "*store.Direct"
			if tc.cfg.Engine.Workers > 0 {
				wantSub = "*store.Batched"
			}
			if got := fmt.Sprintf("%T", sh.Shard(0)); got != wantSub {
				t.Fatalf("Open(%+v) shard type %s, want %s", tc.cfg, got, wantSub)
			}
		}
		st.Close()
	}
}

// TestSnapshotAcrossTopologies: Save/Load round-trips between every pair
// of topologies, resharding through Put on load.
func TestSnapshotAcrossTopologies(t *testing.T) {
	build := map[string]func() Store{
		"direct":    func() Store { return NewDirect() },
		"sharded-2": func() Store { return NewSharded(2, func(int) Store { return NewDirect() }) },
		"sharded-3": func() Store { return NewSharded(3, func(int) Store { return NewDirect() }) },
	}
	const n = 500
	for fromName, from := range build {
		for toName, to := range build {
			t.Run(fromName+"->"+toName, func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "snap")
				src := from()
				defer src.Close()
				for i := 0; i < n; i++ {
					src.Put([]byte(fmt.Sprintf("%c%04d", 'a'+i%11, i)), uint64(i))
				}
				if err := Save(src, path); err != nil {
					t.Fatal(err)
				}
				dst := to()
				defer dst.Close()
				if err := Load(dst, path); err != nil {
					t.Fatal(err)
				}
				if dst.Len() != n {
					t.Fatalf("restored Len = %d, want %d", dst.Len(), n)
				}
				if v, ok := dst.Get([]byte("a0000")); !ok || v != 0 {
					t.Fatalf("restored Get = (%d,%v)", v, ok)
				}
			})
		}
	}
}

// TestShardedSnapshotPrunesStale: re-saving under a new shard count
// removes the old count's files, so later loads cannot mix generations.
func TestShardedSnapshotPrunesStale(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	s4 := NewSharded(4, func(int) Store { return NewDirect() })
	defer s4.Close()
	s4.Put([]byte("k1"), 1)
	if err := Save(s4, path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSharded(2, func(int) Store { return NewDirect() })
	defer s2.Close()
	s2.Put([]byte("k2"), 2)
	if err := Save(s2, path); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(path + ".shard*")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("stale shard files not pruned: %v", left)
	}
	for _, p := range left {
		if _, err := os.Stat(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedObsRegistration: per-shard registry groups with shard
// labels, aggregate gauges, and single-HELP Prometheus rendering.
func TestShardedObsRegistration(t *testing.T) {
	s := NewSharded(2, func(int) Store {
		return NewBatched(pctt.Config{Workers: 1})
	})
	defer s.Close()
	s.Put([]byte("alpha"), 1)
	s.Put([]byte("zeta"), 2) // different top byte: other shard likely

	r := obs.NewRegistry()
	s.RegisterObs(r)
	snap := r.Snapshot()
	if snap.Gauges["dcart_store_shards"] != 2 {
		t.Fatalf("dcart_store_shards = %v", snap.Gauges["dcart_store_shards"])
	}
	if snap.Gauges["dcart_store_keys_total"] != 2 {
		t.Fatalf("dcart_store_keys_total = %v", snap.Gauges["dcart_store_keys_total"])
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf(`dcart_store_shard_keys{shard="%d"}`, i)
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("missing per-shard gauge %s in %v", name, snap.Gauges)
		}
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	prom := buf.String()
	if !strings.Contains(prom, `dcart_pctt_workers{shard="0"}`) ||
		!strings.Contains(prom, `dcart_pctt_workers{shard="1"}`) {
		t.Fatalf("per-shard engine series missing from prometheus output:\n%s", prom)
	}
	if n := strings.Count(prom, "# HELP dcart_pctt_workers "); n != 1 {
		t.Fatalf("dcart_pctt_workers HELP rendered %d times", n)
	}

	// Detaching one shard's group removes exactly that shard.
	r.UnregisterGroup("store-shard1")
	buf.Reset()
	r.WritePrometheus(&buf)
	prom = buf.String()
	if strings.Contains(prom, `dcart_pctt_workers{shard="1"}`) {
		t.Fatal("shard1 series survived UnregisterGroup")
	}
	if !strings.Contains(prom, `dcart_pctt_workers{shard="0"}`) {
		t.Fatal("shard0 series lost with shard1's group")
	}
}

// TestConcurrentScansUnderWrites is the -race workhorse: ordered reads
// run concurrently with batched PUT/DEL churn on a sharded store. Every
// scan must come back strictly ascending across shard boundaries, every
// key of the stable set must appear in a full-range scan, and a writer's
// own acked writes must be immediately visible.
func TestConcurrentScansUnderWrites(t *testing.T) {
	s := NewSharded(4, func(int) Store {
		return NewBatched(pctt.Config{Workers: 2})
	})
	defer s.Close()

	// Stable keys never touched by the churn: scans must always see all
	// of them. Leading byte varies so they spread across shards.
	const stable = 64
	stableKeys := make([]string, stable)
	for i := range stableKeys {
		stableKeys[i] = fmt.Sprintf("%c-stable-%03d", 'a'+i%17, i)
		s.Put([]byte(stableKeys[i]), uint64(i))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: churn volatile keys and verify read-your-writes after
	// every acked op.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				k := []byte(fmt.Sprintf("%c-hot-%d-%03d", 'a'+rng.Intn(17), w, rng.Intn(100)))
				if i%3 == 0 {
					s.Delete(k)
					if _, ok := s.Get(k); ok {
						t.Errorf("key %s visible after acked delete", k)
						return
					}
				} else {
					v := uint64(i)
					s.Put(k, v)
					if got, ok := s.Get(k); !ok || got != v {
						t.Errorf("acked write %s=%d not visible (got %d,%v)", k, v, got, ok)
						return
					}
				}
			}
		}(w)
	}

	// Scanners: full-range ordered reads racing the churn. They finish
	// their fixed rounds while the writers are still churning, so every
	// round races live batched writes.
	var scanWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for rounds := 0; rounds < 60; rounds++ {
				var prev []byte
				seen := make(map[string]bool, stable)
				s.Range([]byte("a"), []byte("zzzz"), 0, func(k []byte, v uint64) bool {
					if prev != nil && bytes.Compare(k, prev) <= 0 {
						t.Errorf("scan order violated: %q after %q", k, prev)
						return false
					}
					prev = append(prev[:0], k...)
					seen[string(k)] = true
					return true
				})
				for _, k := range stableKeys {
					if !seen[k] {
						t.Errorf("stable key %q missing from scan", k)
						return
					}
				}
			}
		}()
	}

	// The scanners' rounds bound the test: once they finish, stop the
	// writers and drain.
	scanWG.Wait()
	stop.Store(true)
	wg.Wait()
}
