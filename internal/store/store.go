// Package store is the storage contract between the protocol layer
// (internal/kvserver) and the index engines. It extracts the full surface
// a key-value service needs — point operations, ordered prefix/range
// scans, cardinality, whole-store walks, snapshots, and observability
// registration — behind one interface with three implementations:
//
//   - Direct: the lock-coupling concurrent ART (internal/olc), one
//     descent per operation — the paper's CPU-baseline discipline.
//   - Batched: the parallel Combine-Traverse-Trigger engine
//     (internal/pctt); point operations coalesce in combine windows and
//     scans route through the engine's scan path so they appear in its
//     metrics and tracing instead of sneaking around the pipeline.
//   - Sharded: N independent sub-stores partitioned by the top key
//     bytes, with scatter-gather scans merged in order — the software
//     analogue of the paper's multi-SOU scale-out (16 SOUs behind one
//     prefix-based combiner, Fig 6): a thin routing layer that scatters
//     work across independent index units and merges ordered results.
//
// Consistency contract: point operations are linearizable per key within
// a sub-store, and a caller's acked writes are visible to its later reads
// and scans (every Put/Delete returns only after it applied). Scans are
// not snapshots — concurrent writes during a scan may or may not be seen,
// and a sharded scan offers no cross-shard snapshot isolation: each shard
// is observed at a slightly different instant. Ordering within one scan
// is always strictly ascending, across shard boundaries too.
package store

import "repro/internal/obs"

// Visitor receives one key/value pair of an ordered read; returning false
// stops the iteration.
type Visitor func(key []byte, value uint64) bool

// Pending is the completion token of an asynchronous point operation.
// Wait blocks until the operation has applied and returns its result:
// (value, present) for GetAsync, (_, replaced) for PutAsync, and
// (_, present) for DeleteAsync. Wait must be called exactly once — tokens
// are pooled by the implementations and become invalid once Wait returns.
type Pending interface {
	Wait() (value uint64, found bool)
}

// Store is the storage contract. All methods are safe for concurrent use.
type Store interface {
	// Get returns the value stored under key.
	Get(key []byte) (uint64, bool)
	// Put stores value under key; it reports whether an existing value was
	// replaced.
	Put(key []byte, value uint64) bool
	// Delete removes key; it reports whether the key was present.
	Delete(key []byte) bool
	// GetAsync, PutAsync, and DeleteAsync submit the corresponding point
	// operation without waiting for it to apply, returning a completion
	// token. This is how one producer keeps several operations in flight
	// (a pipelined server connection feeding the engine's combine window).
	// Per key, per submitting goroutine, operations apply in submission
	// order — so a producer that submits PutAsync(k) then GetAsync(k)
	// reads its own write once both tokens resolve, the same
	// read-your-writes contract the blocking calls give. Submission may
	// block for backpressure when the store's pipeline is full; the key
	// must not be mutated until the token's Wait returns.
	GetAsync(key []byte) Pending
	PutAsync(key []byte, value uint64) Pending
	DeleteAsync(key []byte) Pending
	// Scan visits, in ascending key order, keys starting with prefix. With
	// limit > 0 at most limit pairs reach fn; Scan then reports whether
	// the limit truncated the result (limit pairs delivered, fn never
	// stopped the scan, and at least one more match existed). With
	// limit <= 0 the scan is unbounded and truncated is always false.
	Scan(prefix []byte, limit int, fn Visitor) (truncated bool)
	// Range visits keys k with lo <= k <= hi in ascending order (nil
	// bounds are open), under the same limit/truncation contract as Scan.
	Range(lo, hi []byte, limit int, fn Visitor) (truncated bool)
	// Len returns the number of stored keys.
	Len() int
	// Walk visits every pair in ascending key order; it reports whether
	// the walk ran to exhaustion (fn never returned false).
	Walk(fn Visitor) bool
	// RegisterObs registers the store's live observability series
	// (counters, gauges, histograms) with the registry, replacing any
	// previous registration of the same store kind.
	RegisterObs(r *obs.Registry)
	// Close releases engine resources (worker pools); the store stays
	// readable afterwards but loses its pipeline guarantees.
	Close() error
}

// ObsTagged is implemented by stores that can register their series under
// a caller-chosen registry group with extra labels; Sharded uses it to
// give each sub-store its own group tag and a shard label.
type ObsTagged interface {
	RegisterObsTagged(r *obs.Registry, group, labels string)
}

// boundedScan adapts an unbounded callback scan to Store's limit +
// truncation contract: it forwards at most limit pairs to fn and probes
// for one more to distinguish truncation from exhaustion.
func boundedScan(limit int, fn Visitor, scan func(Visitor)) (truncated bool) {
	if limit <= 0 {
		scan(fn)
		return false
	}
	n := 0
	scan(func(k []byte, v uint64) bool {
		if n == limit {
			truncated = true
			return false
		}
		n++
		return fn(k, v)
	})
	return truncated
}
