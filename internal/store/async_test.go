package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pctt"
)

// asyncStores builds one of each topology for the async-surface tests.
func asyncStores(t *testing.T) map[string]Store {
	t.Helper()
	return map[string]Store{
		"direct":  NewDirect(),
		"batched": NewBatched(pctt.Config{Workers: 2}),
		"sharded": NewSharded(2, func(int) Store {
			return NewBatched(pctt.Config{Workers: 2})
		}),
	}
}

// TestAsyncOracle drives a deterministic op sequence through the async
// surface of every topology, waiting each token immediately, and checks
// the results against a plain map oracle.
func TestAsyncOracle(t *testing.T) {
	for name, st := range asyncStores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			oracle := map[string]uint64{}
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("k%03d", i%97))
				switch i % 5 {
				case 0, 1: // put
					v := uint64(i)
					_, replaced := st.PutAsync(key, v).Wait()
					_, had := oracle[string(key)]
					if replaced != had {
						t.Fatalf("op %d: PutAsync replaced=%v want %v", i, replaced, had)
					}
					oracle[string(key)] = v
				case 2, 3: // get
					v, found := st.GetAsync(key).Wait()
					want, had := oracle[string(key)]
					if found != had || (had && v != want) {
						t.Fatalf("op %d: GetAsync=(%d,%v) want (%d,%v)", i, v, found, want, had)
					}
				default: // delete
					_, found := st.DeleteAsync(key).Wait()
					_, had := oracle[string(key)]
					if found != had {
						t.Fatalf("op %d: DeleteAsync found=%v want %v", i, found, had)
					}
					delete(oracle, string(key))
				}
			}
			if st.Len() != len(oracle) {
				t.Fatalf("Len=%d want %d", st.Len(), len(oracle))
			}
		})
	}
}

// TestAsyncPipelinedRYW submits a window of operations per key before
// waiting any of them — the pipelined pattern — and checks per-key
// read-your-writes: a GET submitted after a PUT from the same goroutine
// must observe that PUT (or a later one from the same producer).
func TestAsyncPipelinedRYW(t *testing.T) {
	for name, st := range asyncStores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			const producers = 4
			const rounds = 300
			var wg sync.WaitGroup
			errs := make(chan error, producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					key := []byte(fmt.Sprintf("ryw-p%d", p))
					type slot struct {
						tok  Pending
						want uint64
						get  bool
					}
					window := make([]slot, 0, 2*rounds)
					for i := 0; i < rounds; i++ {
						v := uint64(i + 1)
						window = append(window,
							slot{tok: st.PutAsync(key, v)},
							slot{tok: st.GetAsync(key), want: v, get: true})
					}
					for i, sl := range window {
						v, found := sl.tok.Wait()
						if sl.get && (!found || v != sl.want) {
							errs <- fmt.Errorf("producer %d slot %d: got (%d,%v) want (%d,true)",
								p, i, v, found, sl.want)
							return
						}
					}
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestAsyncAfterClose verifies the synchronous fallback: tokens issued
// after Close still complete with correct results.
func TestAsyncAfterClose(t *testing.T) {
	for name, st := range asyncStores(t) {
		t.Run(name, func(t *testing.T) {
			st.PutAsync([]byte("pre"), 7).Wait()
			if err := st.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, replaced := st.PutAsync([]byte("post"), 9).Wait(); replaced {
				t.Fatal("post-close PutAsync reported replaced for a fresh key")
			}
			if v, found := st.GetAsync([]byte("post")).Wait(); !found || v != 9 {
				t.Fatalf("post-close GetAsync=(%d,%v) want (9,true)", v, found)
			}
			if _, found := st.DeleteAsync([]byte("pre")).Wait(); !found {
				t.Fatal("post-close DeleteAsync missed a pre-close key")
			}
		})
	}
}

// TestAsyncCloseDrains launches async submissions racing Close and checks
// every issued token completes (no hang, no lost completion).
func TestAsyncCloseDrains(t *testing.T) {
	for name, st := range asyncStores(t) {
		t.Run(name, func(t *testing.T) {
			const n = 500
			toks := make(chan Pending, n)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					key := []byte(fmt.Sprintf("drain%03d", i))
					toks <- st.PutAsync(key, uint64(i))
				}
				close(toks)
			}()
			go func() {
				st.Close() // races the submissions
			}()
			for tok := range toks {
				tok.Wait() // must not hang
			}
			wg.Wait()
		})
	}
}
