package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/art"
)

// Snapshot persistence lives at the store layer: a Store that knows its
// own layout (Sharded) snapshots accordingly, everything else falls back
// to one checksummed art-format file built from an ordered Walk. The
// protocol layer (kvserver) calls Save/Load and never sees the layout.

// Snapshotter is implemented by stores with a custom snapshot layout.
type Snapshotter interface {
	SaveSnapshot(path string) error
	LoadSnapshot(path string) error
}

// Save persists st to path. Sharded stores write one file per shard
// (<path>.shard<i>-of-<n>); everything else writes a single art-format
// snapshot atomically (temp file + rename). Either way, files the other
// layout (or another shard count) left behind are pruned, so exactly one
// snapshot generation exists after a successful Save.
func Save(st Store, path string) error {
	if s, ok := st.(Snapshotter); ok {
		return s.SaveSnapshot(path)
	}
	if err := saveFile(st, path); err != nil {
		return err
	}
	pruneShardFiles(path, nil)
	return nil
}

// Load replaces st's contents with the snapshot at path — the single
// art-format file when present, otherwise a per-shard set saved under any
// shard count. Every entry routes through st.Put, so any store can load
// any layout (restarting with a different -shards value reshards here).
// Call before serving traffic.
func Load(st Store, path string) error {
	if s, ok := st.(Snapshotter); ok {
		return s.LoadSnapshot(path)
	}
	if _, err := os.Stat(path); err == nil {
		return loadFile(st, path)
	}
	if files := shardFiles(path, 0); files != nil {
		return loadFiles(st, files)
	}
	return loadFile(st, path) // surfaces the IsNotExist
}

// saveFile writes one art-format snapshot of st atomically.
func saveFile(st Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := art.WriteSnapshot(f, st.Len(), func(fn func(key []byte, value uint64) bool) bool {
		return st.Walk(fn)
	})
	cerr := f.Close()
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if cerr != nil {
		os.Remove(tmp)
		return cerr
	}
	return os.Rename(tmp, path)
}

// loadFile feeds one art-format snapshot into st.Put.
func loadFile(st Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return art.ReadSnapshotEntries(f, func(key []byte, value uint64) error {
		st.Put(key, value)
		return nil
	})
}

// shardPath names shard i's snapshot file. The shard count rides in the
// suffix so a load never mixes files from runs with different counts.
func shardPath(path string, i, n int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", path, i, n)
}

// SaveSnapshot writes one art-format file per shard, concurrently (each
// atomically via temp + rename), then prunes shard files left behind by
// runs with a different shard count so a later load cannot mix
// generations.
func (s *Sharded) SaveSnapshot(path string) error {
	n := len(s.shards)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, sub := range s.shards {
		wg.Add(1)
		go func(i int, sub Store) {
			defer wg.Done()
			errs[i] = saveFile(sub, shardPath(path, i, n))
		}(i, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Prune stale files from other generations (best effort): shard files
	// of other counts, and a single-file snapshot an unsharded run wrote.
	current := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		current[shardPath(path, i, n)] = true
	}
	pruneShardFiles(path, current)
	os.Remove(path)
	return nil
}

// pruneShardFiles removes every <path>.shard*-of-* file not in keep.
func pruneShardFiles(path string, keep map[string]bool) {
	stale, err := filepath.Glob(path + ".shard*-of-*")
	if err != nil {
		return
	}
	for _, p := range stale {
		if !keep[p] {
			os.Remove(p)
		}
	}
}

// LoadSnapshot restores a sharded snapshot. It prefers the per-shard
// files written for this shard count; failing that it accepts a shard set
// written under any other count, and finally a single unsharded file —
// every entry routes through s.Put, so resharding between runs is just a
// restart with a different -shards value.
func (s *Sharded) LoadSnapshot(path string) error {
	n := len(s.shards)
	files := shardFiles(path, n)
	if files == nil {
		return loadFile(s, path) // single-file fallback (or IsNotExist)
	}
	return loadFiles(s, files)
}

// loadFiles feeds a complete shard set into st concurrently; st.Put
// routes every entry to its owning shard (or the one store).
func loadFiles(st Store, files []string) error {
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, p := range files {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			errs[i] = loadFile(st, p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardFiles returns the snapshot shard set to load: the complete set for
// the preferred count n (when n > 0) if present, otherwise the complete
// set for whatever count shard0's file advertises, otherwise nil.
func shardFiles(path string, n int) []string {
	complete := func(count int) []string {
		if count <= 0 {
			return nil
		}
		files := make([]string, count)
		for i := 0; i < count; i++ {
			files[i] = shardPath(path, i, count)
			if _, err := os.Stat(files[i]); err != nil {
				return nil
			}
		}
		return files
	}
	if files := complete(n); files != nil {
		return files
	}
	// A set saved under a different count: discover it from shard0's name.
	matches, err := filepath.Glob(path + ".shard0-of-*")
	if err != nil {
		return nil
	}
	for _, m := range matches {
		var count int
		if _, err := fmt.Sscanf(m[len(path):], ".shard0-of-%d", &count); err == nil && count > 0 {
			if files := complete(count); files != nil {
				return files
			}
		}
	}
	return nil
}
