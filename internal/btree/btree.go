// Package btree implements an in-memory B+ tree over binary-comparable
// byte-string keys, the classical range-index design the DCART paper's
// related-work section contrasts with ART: "B+tree suffers from write
// amplification... ART has smaller write amplification because it does
// not hold the entire keys in its internal nodes" (§V).
//
// The tree exists to validate that claim quantitatively (the extra-btree
// experiment): it carries the same modeled-size instrumentation as
// internal/art — every node has a modeled byte footprint, and mutations
// accrue a bytes-written counter covering every node modified by the
// operation (the write-amplification measure for page-based structures).
package btree

import (
	"bytes"
	"sort"
)

// Degree is the maximum number of keys per node. 2*Degree entries make a
// classic page-sized node once keys are counted.
const defaultDegree = 64

// Tree is an in-memory B+ tree mapping byte keys to uint64 values.
// Not safe for concurrent use.
type Tree struct {
	root   *node
	size   int
	degree int

	// Instrumentation.
	nodeAccesses int64
	bytesWritten int64
	splits       int64
	merges       int64
}

// node is either a leaf (values != nil) or an internal node
// (children != nil). Internal nodes hold len(children)-1 separator keys;
// child i covers keys < keys[i], the last child covers the rest.
type node struct {
	keys     [][]byte
	values   []uint64 // leaves only, parallel to keys
	children []*node  // internal only
	next     *node    // leaf chain for range scans
}

func (n *node) leaf() bool { return n.children == nil }

// New returns an empty B+ tree with the default degree.
func New() *Tree { return NewDegree(defaultDegree) }

// NewDegree returns an empty tree with the given maximum keys per node
// (minimum 4).
func NewDegree(degree int) *Tree {
	if degree < 4 {
		degree = 4
	}
	return &Tree{degree: degree}
}

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// NodeAccesses returns the number of node visits so far.
func (t *Tree) NodeAccesses() int64 { return t.nodeAccesses }

// BytesWritten returns the modeled bytes written by mutations so far:
// every modified node contributes its full modeled size (a page-based
// structure rewrites the page).
func (t *Tree) BytesWritten() int64 { return t.bytesWritten }

// Splits and Merges return structural-operation counts.
func (t *Tree) Splits() int64 { return t.splits }
func (t *Tree) Merges() int64 { return t.merges }

// ResetCounters zeroes the instrumentation.
func (t *Tree) ResetCounters() {
	t.nodeAccesses, t.bytesWritten, t.splits, t.merges = 0, 0, 0, 0
}

// modeledSize is the node's byte footprint: header + full keys (B+ trees
// store whole keys in internal nodes too — the §V contrast with ART) +
// values or child pointers.
func (n *node) modeledSize() int {
	s := 16
	for _, k := range n.keys {
		s += 2 + len(k)
	}
	if n.leaf() {
		s += 8 * len(n.values)
	} else {
		s += 8 * len(n.children)
	}
	return s
}

func (t *Tree) access(n *node) { t.nodeAccesses++ }

func (t *Tree) wrote(n *node) { t.bytesWritten += int64(n.modeledSize()) }

// findChild returns the child index for key in an internal node.
func (n *node) findChild(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
}

// findKey returns the position of key in a leaf and whether it is present.
func (n *node) findKey(key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) >= 0
	})
	return i, i < len(n.keys) && bytes.Equal(n.keys[i], key)
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for n != nil {
		t.access(n)
		if n.leaf() {
			if i, ok := n.findKey(key); ok {
				return n.values[i], true
			}
			return 0, false
		}
		n = n.children[n.findChild(key)]
	}
	return 0, false
}

// Put stores value under key, reporting whether an existing value was
// replaced.
func (t *Tree) Put(key []byte, value uint64) bool {
	if t.root == nil {
		t.root = &node{keys: [][]byte{append([]byte(nil), key...)}, values: []uint64{value}}
		t.size = 1
		t.wrote(t.root)
		return false
	}
	replaced, split, sepKey, right := t.insert(t.root, key, value)
	if split {
		// Root split: grow the tree by one level.
		newRoot := &node{
			keys:     [][]byte{sepKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.wrote(newRoot)
	}
	if !replaced {
		t.size++
	}
	return replaced
}

// insert descends to the leaf, splitting full children on the way back up.
func (t *Tree) insert(n *node, key []byte, value uint64) (replaced, split bool, sepKey []byte, right *node) {
	t.access(n)
	if n.leaf() {
		i, ok := n.findKey(key)
		if ok {
			n.values[i] = value
			t.wrote(n)
			return true, false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.values = append(n.values, 0)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		t.wrote(n)
		if len(n.keys) > t.degree {
			sep, r := t.splitLeaf(n)
			return false, true, sep, r
		}
		return false, false, nil, nil
	}

	ci := n.findChild(key)
	replaced, childSplit, childSep, childRight := t.insert(n.children[ci], key, value)
	if childSplit {
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = childSep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childRight
		t.wrote(n)
		if len(n.keys) > t.degree {
			sep, r := t.splitInternalReturn(n)
			return replaced, true, sep, r
		}
	}
	return replaced, false, nil, nil
}

// splitLeaf halves a leaf, returning the separator and the new right node.
func (t *Tree) splitLeaf(n *node) ([]byte, *node) {
	t.splits++
	mid := len(n.keys) / 2
	right := &node{
		keys:   append([][]byte(nil), n.keys[mid:]...),
		values: append([]uint64(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.values = n.values[:mid:mid]
	n.next = right
	t.wrote(n)
	t.wrote(right)
	return right.keys[0], right
}

// splitInternalReturn halves an internal node.
func (t *Tree) splitInternalReturn(n *node) ([]byte, *node) {
	t.splits++
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	t.wrote(n)
	t.wrote(right)
	return sep, right
}

// Delete removes key, reporting whether it was present. Underflowed nodes
// borrow from or merge with siblings.
func (t *Tree) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	deleted := t.remove(t.root, key)
	if deleted {
		t.size--
		// Shrink the root when it degenerates.
		if !t.root.leaf() && len(t.root.children) == 1 {
			t.root = t.root.children[0]
		} else if t.root.leaf() && len(t.root.keys) == 0 {
			t.root = nil
		}
	}
	return deleted
}

func (t *Tree) remove(n *node, key []byte) bool {
	t.access(n)
	if n.leaf() {
		i, ok := n.findKey(key)
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.values = append(n.values[:i], n.values[i+1:]...)
		t.wrote(n)
		return true
	}
	ci := n.findChild(key)
	child := n.children[ci]
	if !t.remove(child, key) {
		return false
	}
	// Rebalance an underflowed child (minimum occupancy degree/4 keeps
	// rebalancing rare without hurting the experiment's fidelity).
	minKeys := t.degree / 4
	if childLen(child) >= minKeys {
		return true
	}
	t.rebalance(n, ci)
	return true
}

func childLen(n *node) int { return len(n.keys) }

// rebalance fixes n.children[ci] by borrowing from a sibling or merging.
func (t *Tree) rebalance(n *node, ci int) {
	child := n.children[ci]
	// Try borrowing from the left sibling.
	if ci > 0 && childLen(n.children[ci-1]) > t.degree/4 {
		left := n.children[ci-1]
		if child.leaf() {
			last := len(left.keys) - 1
			child.keys = append([][]byte{left.keys[last]}, child.keys...)
			child.values = append([]uint64{left.values[last]}, child.values...)
			left.keys = left.keys[:last]
			left.values = left.values[:last]
			n.keys[ci-1] = child.keys[0]
		} else {
			last := len(left.keys) - 1
			child.keys = append([][]byte{n.keys[ci-1]}, child.keys...)
			child.children = append([]*node{left.children[last+1]}, child.children...)
			n.keys[ci-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		t.wrote(left)
		t.wrote(child)
		t.wrote(n)
		return
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 && childLen(n.children[ci+1]) > t.degree/4 {
		right := n.children[ci+1]
		if child.leaf() {
			child.keys = append(child.keys, right.keys[0])
			child.values = append(child.values, right.values[0])
			right.keys = right.keys[1:]
			right.values = right.values[1:]
			n.keys[ci] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[ci])
			child.children = append(child.children, right.children[0])
			n.keys[ci] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		t.wrote(right)
		t.wrote(child)
		t.wrote(n)
		return
	}
	// Merge with a sibling.
	t.merges++
	li := ci
	if li == len(n.children)-1 {
		li = ci - 1
	}
	if li < 0 {
		return // single child; root shrink handles it
	}
	left, right := n.children[li], n.children[li+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.values = append(left.values, right.values...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[li])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:li], n.keys[li+1:]...)
	n.children = append(n.children[:li+1], n.children[li+2:]...)
	t.wrote(left)
	t.wrote(n)
}

// Walk visits all key/value pairs in ascending order via the leaf chain.
func (t *Tree) Walk(fn func(key []byte, value uint64) bool) bool {
	n := t.root
	if n == nil {
		return true
	}
	for !n.leaf() {
		t.access(n)
		n = n.children[0]
	}
	for n != nil {
		t.access(n)
		for i, k := range n.keys {
			if !fn(k, n.values[i]) {
				return false
			}
		}
		n = n.next
	}
	return true
}

// AscendRange visits keys in [lo, hi] in ascending order (nil = open end).
func (t *Tree) AscendRange(lo, hi []byte, fn func(key []byte, value uint64) bool) bool {
	n := t.root
	if n == nil {
		return true
	}
	for !n.leaf() {
		t.access(n)
		if lo == nil {
			n = n.children[0]
		} else {
			n = n.children[n.findChild(lo)]
		}
	}
	for n != nil {
		t.access(n)
		for i, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(k, hi) > 0 {
				return true
			}
			if !fn(k, n.values[i]) {
				return false
			}
		}
		n = n.next
	}
	return true
}

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 0
	n := t.root
	for n != nil {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// ModeledBytes sums the modeled size of all live nodes.
func (t *Tree) ModeledBytes() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		total += int64(n.modeledSize())
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}
