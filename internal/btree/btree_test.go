package btree

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key64(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

func TestBasics(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("empty Get")
	}
	if tr.Put([]byte("a"), 1) {
		t.Fatal("fresh Put replaced")
	}
	if !tr.Put([]byte("a"), 2) {
		t.Fatal("overwrite not reported")
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !tr.Delete([]byte("a")) || tr.Delete([]byte("a")) || tr.Len() != 0 {
		t.Fatal("delete broken")
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr := NewDegree(8)
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		tr.Put(key64(uint64(v)), uint64(v))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Splits() == 0 {
		t.Fatal("no splits on 10k inserts at degree 8")
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, implausibly flat", tr.Height())
	}
	i := uint64(0)
	tr.Walk(func(k []byte, v uint64) bool {
		if v != i || !bytes.Equal(k, key64(i)) {
			t.Fatalf("walk position %d got %d", i, v)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("walk visited %d", i)
	}
}

func TestDeleteEverything(t *testing.T) {
	tr := NewDegree(8)
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	order := rng.Perm(n)
	for _, v := range order {
		if !tr.Delete(key64(uint64(v))) {
			t.Fatalf("Delete(%d) failed", v)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	if tr.Merges() == 0 {
		t.Fatal("no merges during teardown")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key64(uint64(i*2)), uint64(i*2))
	}
	var got []uint64
	tr.AscendRange(key64(100), key64(120), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestQuickMapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewDegree(6) // tiny degree: constant splitting/merging
		ref := map[string]uint64{}
		for i := 0; i < 3000; i++ {
			k := make([]byte, 1+rng.Intn(6))
			for j := range k {
				k[j] = byte(rng.Intn(8))
			}
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64()
				repl := tr.Put(k, v)
				if _, had := ref[string(k)]; had != repl {
					return false
				}
				ref[string(k)] = v
			case 2:
				v, ok := tr.Get(k)
				rv, rok := ref[string(k)]
				if ok != rok || (ok && v != rv) {
					return false
				}
			case 3:
				del := tr.Delete(k)
				if _, had := ref[string(k)]; had != del {
					return false
				}
				delete(ref, string(k))
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		for k, want := range ref {
			if v, ok := tr.Get([]byte(k)); !ok || v != want {
				return false
			}
		}
		// Sorted, complete iteration.
		var keys []string
		tr.Walk(func(k []byte, v uint64) bool {
			keys = append(keys, string(k))
			return true
		})
		return len(keys) == len(ref) && sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAmplificationVsART(t *testing.T) {
	// The §V claim this package exists to check: B+ trees rewrite
	// page-sized nodes holding full keys, so their modeled bytes written
	// per insert far exceed ART's (small adaptive nodes, key bytes only
	// in leaves). The full experiment is `dcart-bench -exp extra-btree`;
	// this is the invariant at test scale.
	tr := New()
	rng := rand.New(rand.NewSource(3))
	var keys [][]byte
	for i := 0; i < 20000; i++ {
		k := make([]byte, 16)
		rng.Read(k)
		keys = append(keys, k)
	}
	for _, k := range keys {
		tr.Put(k, 1)
	}
	perInsert := float64(tr.BytesWritten()) / float64(len(keys))
	// A degree-64 node with 16-byte keys is ~1.5KB; each insert rewrites
	// one, so hundreds of bytes per insert minimum.
	if perInsert < 200 {
		t.Fatalf("B+ write amplification %f bytes/insert implausibly low", perInsert)
	}
}

func TestInstrumentationCounters(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), 1)
	tr.Get([]byte("k"))
	if tr.NodeAccesses() == 0 || tr.BytesWritten() == 0 {
		t.Fatal("counters not accruing")
	}
	tr.ResetCounters()
	if tr.NodeAccesses() != 0 || tr.BytesWritten() != 0 {
		t.Fatal("reset incomplete")
	}
	if tr.ModeledBytes() <= 0 {
		t.Fatal("modeled bytes")
	}
}
