// Package platform converts engine event counts into modeled execution
// time and energy for the paper's three testbeds: the dual-socket Intel
// Xeon Platinum 8468 (96 cores), the NVIDIA A100, and the Xilinx Alveo
// U280 at 230 MHz (§IV-A).
//
// Why modeled time: the reproduction runs on a small sandbox machine, so
// wall clock on this host says nothing about a 96-core server, a GPU, or
// an FPGA. Event counts, however, are platform-independent ground truth
// (DESIGN.md §4). The models charge per-event costs with the physical
// mechanisms the paper leans on:
//
//   - dependent pointer-chase memory latency for index traversals, split
//     by the engine's measured on-chip hit ratio;
//   - cache-coherence penalties on redundant hot-node accesses (a write
//     to a shared node invalidates every sharer; the paper's Fig 2(b)
//     shows 78-86% of fetches are redundant);
//   - contended synchronization, serialized: lock convoys for lock-based
//     designs, cheaper CAS retry storms for CAS-based ones — a CAS on
//     DRAM-resident data costs ~15x one on L1-resident data (Schweizer
//     et al., PACT'15, the paper's [21]);
//   - software-CTT bookkeeping (bucket scatter, DRAM hash-table probes)
//     for DCART-C, the overhead that §II-C says erases most of the
//     model's algorithmic win on a CPU;
//   - lockstep divergent traversal and kernel-launch overhead on the GPU.
//
// Energy is average platform power times modeled time — the same
// measurement CPU Energy Meter / nvidia-smi / xbutil perform. Power
// values are measured-average (not TDP): index chasing stalls cores, so
// package power sits well below TDP.
package platform

import (
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// Breakdown phase names (Fig 2(a)).
const (
	PhaseTraversal = "traversal"
	PhaseSync      = "synchronization"
	PhaseCombine   = "combining" // CTT software bookkeeping
	PhaseOther     = "others"
)

// Report is the modeled outcome for one engine run on one platform.
type Report struct {
	Name      string
	Seconds   float64
	Breakdown *metrics.Breakdown
	Watts     float64
	Joules    float64
}

// Throughput returns modeled operations per second.
func (r Report) Throughput(ops int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(ops) / r.Seconds
}

// CPUModel is the Xeon timing/energy model.
type CPUModel struct {
	Name    string
	Threads int
	// ParallelEfficiency discounts linear scaling for memory-bandwidth
	// and NUMA pressure.
	ParallelEfficiency float64

	MatchNs    float64 // one partial-key comparison step (compute)
	CacheHitNs float64 // on-chip (LLC) access
	DRAMNs     float64 // DRAM access on a dependent pointer chase
	// CoherenceNs is charged per redundant access to a shared hot node:
	// under write-invalidate coherence these land on Modified lines in
	// other cores' caches, costing a cross-socket snoop round.
	CoherenceNs float64
	// CoherenceParallelism is the effective parallelism of the coherence
	// interconnect (snoop bandwidth), far below the core count.
	CoherenceParallelism float64

	LockNs float64 // uncontended lock/atomic acquire
	// ContentionLockNs is the serialized cost of one contended lock
	// acquisition (convoy: wake-ups, re-spins, NUMA bouncing).
	ContentionLockNs float64
	// ContentionCASNs is the serialized cost of one contended CAS (retry
	// + line bounce) — much cheaper than a convoy, which is Heart's and
	// SMART's advantage.
	ContentionCASNs float64
	CASCacheNs      float64 // CAS on cache-resident line
	CASDRAMNs       float64 // CAS on DRAM-resident line (~15x, [21])

	CombineNs  float64 // software bucket-scatter per op (DCART-C)
	ProbeNs    float64 // software Shortcut_Table hash probe (DCART-C)
	MaintainNs float64 // software Shortcut_Table maintenance (DCART-C)

	OpOverheadNs float64 // per-op dispatch/queue overhead
	Watts        float64
}

// Xeon8468 returns the paper's CPU testbed model: two 48-core Xeon
// Platinum 8468 sockets.
func Xeon8468() CPUModel {
	return CPUModel{
		Name:                 "2x Xeon Platinum 8468",
		Threads:              96,
		ParallelEfficiency:   0.45,
		MatchNs:              1.5,
		CacheHitNs:           6,
		DRAMNs:               95,
		CoherenceNs:          260,
		CoherenceParallelism: 3,
		LockNs:               25,
		ContentionLockNs:     3200,
		ContentionCASNs:      900,
		CASCacheNs:           20,
		CASDRAMNs:            300,
		CombineNs:            45,
		ProbeNs:              90,
		MaintainNs:           120,
		OpOverheadNs:         8,
		Watts:                190,
	}
}

// Model computes the CPU report for an engine result.
func (m CPUModel) Model(res *engine.Result) Report {
	ms := res.Metrics
	matches := float64(ms.Get(metrics.CtrKeyMatches))
	accesses := float64(ms.Get(metrics.CtrNodeAccesses))
	redundant := float64(ms.Get(metrics.CtrRedundantNodes))
	hit := res.CacheHitRatio
	locks := float64(ms.Get(metrics.CtrLockAcquire))
	contention := float64(ms.Get(metrics.CtrLockContention))
	atomics := float64(ms.Get(metrics.CtrAtomicOps))
	combine := float64(ms.Get(metrics.CtrCombineSteps))
	probes := float64(ms.Get(metrics.CtrShortcutHit) + ms.Get(metrics.CtrShortcutMiss))
	maintain := float64(ms.Get(metrics.CtrShortcutMaintain))
	ops := float64(res.Ops)

	traversal := matches*m.MatchNs +
		accesses*(hit*m.CacheHitNs+(1-hit)*m.DRAMNs)
	syncPar := locks*m.LockNs + atomics*(hit*m.CASCacheNs+(1-hit)*m.CASDRAMNs)
	combining := combine*m.CombineNs + probes*m.ProbeNs + maintain*m.MaintainNs
	other := ops * m.OpOverheadNs

	eff := float64(m.Threads) * m.ParallelEfficiency
	if eff < 1 {
		eff = 1
	}
	parallel := (traversal + syncPar + combining + other) / eff

	// Serialized components: contended synchronization (weighted by the
	// lock/CAS mix of the discipline) and coherence traffic on redundant
	// shared-node accesses.
	contPenalty := m.ContentionCASNs
	if locks+atomics > 0 {
		lockShare := locks / (locks + atomics)
		contPenalty = lockShare*m.ContentionLockNs + (1-lockShare)*m.ContentionCASNs
	}
	serialSync := contention * contPenalty * 1e-9
	coherence := redundant * m.CoherenceNs / m.CoherenceParallelism * 1e-9

	work := traversal + syncPar + combining + other
	scale := 0.0
	if work > 0 {
		scale = parallel / work
	}
	b := metrics.NewBreakdown(PhaseTraversal, PhaseSync, PhaseCombine, PhaseOther)
	b.Add(PhaseTraversal, traversal*scale*1e-9+coherence)
	b.Add(PhaseSync, syncPar*scale*1e-9+serialSync)
	b.Add(PhaseCombine, combining*scale*1e-9)
	b.Add(PhaseOther, other*scale*1e-9)

	sec := b.Total()
	return Report{
		Name:      m.Name,
		Seconds:   sec,
		Breakdown: b,
		Watts:     m.Watts,
		Joules:    m.Watts * sec,
	}
}

// GPUModel is the A100 timing/energy model for the CuART engine.
type GPUModel struct {
	Name string
	// DivergedAccessNs is the effective cost of one divergent dependent
	// global-memory access at full occupancy (post latency-hiding);
	// pointer-chasing microbenchmarks put this at 15-30 ns.
	DivergedAccessNs float64
	MatchNs          float64 // per-lane comparison work, post-occupancy
	BytesPerSecond   float64 // global-memory bandwidth
	AtomicNs         float64 // serialized cost per conflicting atomic
	LaunchNs         float64 // kernel launch + host sync overhead
	HostBytesPerSec  float64 // PCIe transfer of the op batches
	Watts            float64
}

// A100 returns the paper's GPU testbed model.
func A100() GPUModel {
	return GPUModel{
		Name:             "NVIDIA A100",
		DivergedAccessNs: 30,
		MatchNs:          0.05,
		BytesPerSecond:   1.55e12,
		AtomicNs:         60,
		LaunchNs:         10e3,
		HostBytesPerSec:  25e9,
		Watts:            230,
	}
}

// Model computes the GPU report for a CuART result.
func (m GPUModel) Model(res *engine.Result) Report {
	ms := res.Metrics
	accesses := float64(ms.Get(metrics.CtrNodeAccesses))
	matches := float64(ms.Get(metrics.CtrKeyMatches))
	launches := float64(ms.Get(cuart.CtrKernelLaunches))
	conflicts := float64(ms.Get(metrics.CtrLockContention))

	traversal := (accesses*m.DivergedAccessNs + matches*m.MatchNs) * 1e-9
	if mem := float64(res.OffchipBytes) / m.BytesPerSecond; mem > traversal {
		traversal = mem
	}
	sync := conflicts * m.AtomicNs * 1e-9
	host := float64(res.Ops) * 24 / m.HostBytesPerSec
	other := launches*m.LaunchNs*1e-9 + host

	b := metrics.NewBreakdown(PhaseTraversal, PhaseSync, PhaseCombine, PhaseOther)
	b.Add(PhaseTraversal, traversal)
	b.Add(PhaseSync, sync)
	b.Add(PhaseOther, other)

	sec := b.Total()
	return Report{Name: m.Name, Seconds: sec, Breakdown: b, Watts: m.Watts, Joules: m.Watts * sec}
}

// FPGAModel is the U280 model: the accelerator simulator already counts
// cycles, so timing is cycles/clock; the model adds power.
type FPGAModel struct {
	Name    string
	ClockHz float64
	Watts   float64
}

// U280 returns the paper's FPGA testbed model. xbutil board power for a
// 16-SOU HBM design sits around 60 W.
func U280() FPGAModel {
	return FPGAModel{Name: "Alveo U280", ClockHz: 230e6, Watts: 63}
}

// Model computes the FPGA report from the simulator's cycle count. The
// SOU pipeline interleaves traversal and trigger work; attribute cycles to
// traversal except the residual cross-SOU conflicts.
func (m FPGAModel) Model(res *engine.Result) Report {
	sec := float64(res.Cycles) / m.ClockHz
	b := metrics.NewBreakdown(PhaseTraversal, PhaseSync, PhaseCombine, PhaseOther)
	conflictSec := float64(res.Metrics.Get(metrics.CtrLockContention)) * 4 / m.ClockHz
	if conflictSec > sec {
		conflictSec = sec
	}
	b.Add(PhaseTraversal, sec-conflictSec)
	b.Add(PhaseSync, conflictSec)
	return Report{Name: m.Name, Seconds: sec, Breakdown: b, Watts: m.Watts, Joules: m.Watts * sec}
}

// ModelFor dispatches on the engine name: ART/Heart/SMART use the 96-core
// CPU model, DCART-C the CPU model restricted to its 16 bucket workers,
// CuART the GPU model, DCART the FPGA model.
func ModelFor(res *engine.Result) Report {
	switch res.Name {
	case "CuART":
		return A100().Model(res)
	case "DCART":
		return U280().Model(res)
	case "DCART-C":
		m := Xeon8468()
		m.Threads = 16 // one worker per bucket table
		r := m.Model(res)
		r.Name = res.Name + " @ " + m.Name
		return r
	default:
		m := Xeon8468()
		r := m.Model(res)
		r.Name = res.Name + " @ " + m.Name
		return r
	}
}
