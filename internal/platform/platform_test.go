package platform

import (
	"math"
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

var (
	runAllOnce   sync.Once
	runAllResult map[string]Report
)

// runAll executes every engine once per test binary; the reports are pure
// functions of the (deterministic) runs, so sharing them across tests is
// safe.
func runAll(t *testing.T) map[string]Report {
	t.Helper()
	runAllOnce.Do(func() { runAllResult = runAllEngines() })
	return runAllResult
}

func runAllEngines() map[string]Report {
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 20000, NumOps: 120000,
		ReadRatio: 0.5, InsertFraction: 0.1, ZipfS: 1.25, Seed: 61,
	})
	cfg := engine.Config{Threads: 96, CacheBytes: 64 << 10}
	engines := []engine.Engine{
		baseline.NewART(cfg), baseline.NewHeart(cfg), baseline.NewSMART(cfg),
		cuart.New(cuart.Config{Config: engine.Config{CacheBytes: 256 << 10}}),
		ctt.New(ctt.Config{Config: cfg}),
		accel.New(accel.Config{TreeBufBytes: 1 << 20}),
	}
	out := map[string]Report{}
	for _, e := range engines {
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		out[res.Name] = ModelFor(res)
	}
	return out
}

func TestFig9Ordering(t *testing.T) {
	r := runAll(t)
	// The paper's Fig 9 structure: DCART fastest; DCART-C the best
	// non-accelerator; CuART beats the CPU baselines; SMART is the best
	// lock/CAS CPU design; ART is slowest.
	order := []string{"ART", "Heart", "SMART", "CuART", "DCART-C", "DCART"}
	for i := 1; i < len(order); i++ {
		slow, fast := r[order[i-1]], r[order[i]]
		if fast.Seconds >= slow.Seconds {
			t.Fatalf("%s (%.4gs) should be faster than %s (%.4gs)",
				order[i], fast.Seconds, order[i-1], slow.Seconds)
		}
	}
	// Who-wins factors: DCART's lead over the best CPU baseline must be
	// an order of magnitude.
	if ratio := r["SMART"].Seconds / r["DCART"].Seconds; ratio < 8 {
		t.Fatalf("DCART speedup over SMART = %.1fx, want >= 8x", ratio)
	}
}

func TestFig11EnergyOrdering(t *testing.T) {
	r := runAll(t)
	if r["DCART"].Joules >= r["DCART-C"].Joules {
		t.Fatal("DCART must use less energy than DCART-C")
	}
	if r["DCART-C"].Joules >= r["SMART"].Joules {
		t.Fatal("DCART-C must use less energy than SMART (its energy gap drives Fig 11)")
	}
	if ratio := r["SMART"].Joules / r["DCART"].Joules; ratio < 20 {
		t.Fatalf("DCART energy saving over SMART = %.1fx, want >= 20x", ratio)
	}
	for name, rep := range r {
		if rep.Joules <= 0 || math.Abs(rep.Joules-rep.Watts*rep.Seconds) > 1e-9*rep.Joules {
			t.Fatalf("%s energy inconsistent: %+v", name, rep)
		}
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	r := runAll(t)
	for name, rep := range r {
		if math.Abs(rep.Breakdown.Total()-rep.Seconds) > 1e-12+1e-9*rep.Seconds {
			t.Fatalf("%s breakdown total %.6g != seconds %.6g",
				name, rep.Breakdown.Total(), rep.Seconds)
		}
	}
}

func TestFig2aTraversalSyncDominate(t *testing.T) {
	// Fig 2(a): for the CPU baselines, traversal + synchronization
	// consume the overwhelming share of execution time (>95.8% in the
	// paper).
	r := runAll(t)
	for _, name := range []string{"ART", "Heart", "SMART"} {
		b := r[name].Breakdown
		share := b.Share(PhaseTraversal) + b.Share(PhaseSync)
		if share < 0.95 {
			t.Fatalf("%s traversal+sync share = %.3f, want > 0.95", name, share)
		}
	}
}

func TestARTSyncShareHighest(t *testing.T) {
	// The lock-based design pays the most synchronization time.
	r := runAll(t)
	if r["ART"].Breakdown.Share(PhaseSync) <= r["SMART"].Breakdown.Share(PhaseSync) {
		t.Fatalf("ART sync share (%.3f) should exceed SMART's (%.3f)",
			r["ART"].Breakdown.Share(PhaseSync), r["SMART"].Breakdown.Share(PhaseSync))
	}
}

func TestDCARTCombiningVisible(t *testing.T) {
	// DCART-C's software bookkeeping must be a visible share of its time
	// (the §II-C motivation for building hardware).
	r := runAll(t)
	if r["DCART-C"].Breakdown.Share(PhaseCombine) < 0.1 {
		t.Fatalf("DCART-C combining share = %.3f, want >= 0.1",
			r["DCART-C"].Breakdown.Share(PhaseCombine))
	}
}

func TestThroughputHelper(t *testing.T) {
	r := Report{Seconds: 2}
	if r.Throughput(100) != 50 {
		t.Fatal("throughput math")
	}
	if (Report{}).Throughput(100) != 0 {
		t.Fatal("zero-seconds throughput should be 0")
	}
}

func TestModelsHandleEmptyResult(t *testing.T) {
	res := &engine.Result{Name: "ART", Metrics: metrics.NewSet()}
	r := Xeon8468().Model(res)
	if r.Seconds != 0 || r.Joules != 0 {
		t.Fatalf("empty result modeled nonzero: %+v", r)
	}
	g := A100().Model(&engine.Result{Name: "CuART", Metrics: metrics.NewSet()})
	if g.Seconds != 0 {
		t.Fatalf("empty GPU result: %+v", g)
	}
	f := U280().Model(&engine.Result{Name: "DCART", Metrics: metrics.NewSet()})
	if f.Seconds != 0 {
		t.Fatalf("empty FPGA result: %+v", f)
	}
}

func TestModelForDispatch(t *testing.T) {
	mk := func(name string) *engine.Result {
		return &engine.Result{Name: name, Metrics: metrics.NewSet(
			cuart.CtrWarpSteps, cuart.CtrKernelLaunches, cuart.CtrMaskedLaneSteps)}
	}
	if r := ModelFor(mk("CuART")); r.Name != "NVIDIA A100" {
		t.Fatalf("CuART dispatched to %s", r.Name)
	}
	if r := ModelFor(mk("DCART")); r.Name != "Alveo U280" {
		t.Fatalf("DCART dispatched to %s", r.Name)
	}
	if r := ModelFor(mk("SMART")); r.Name != "SMART @ 2x Xeon Platinum 8468" {
		t.Fatalf("SMART dispatched to %s", r.Name)
	}
	if r := ModelFor(mk("DCART-C")); r.Name != "DCART-C @ 2x Xeon Platinum 8468" {
		t.Fatalf("DCART-C dispatched to %s", r.Name)
	}
}
