package baseline

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func smallWorkload(t *testing.T, name string, readRatio float64) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.Spec{
		Name: name, NumKeys: 3000, NumOps: 12000, ReadRatio: readRatio, Seed: 21,
	})
}

// replayReference computes, per round of `threads` ops, the expected read
// results under round semantics: a read observes the key's value as of the
// start of its round (in-round writes to the same key are concurrent with
// it), and per-key final state follows stream order.
func replayReference(w *workload.Workload, threads int) (reads map[int]engine.ReadResult, final map[string]uint64) {
	final = make(map[string]uint64)
	for i, k := range w.Keys {
		final[string(k)] = uint64(i)
	}
	reads = make(map[int]engine.ReadResult)
	for start := 0; start < len(w.Ops); start += threads {
		end := start + threads
		if end > len(w.Ops) {
			end = len(w.Ops)
		}
		//

		snapshot := make(map[string]uint64)
		present := make(map[string]bool)
		for i := start; i < end; i++ {
			ks := string(w.Ops[i].Key)
			if _, seen := present[ks]; !seen {
				v, ok := final[ks]
				snapshot[ks] = v
				present[ks] = ok
			}
		}
		for i := start; i < end; i++ {
			op := w.Ops[i]
			ks := string(op.Key)
			switch op.Kind {
			case workload.Read:
				reads[i] = engine.ReadResult{Index: i, Value: snapshot[ks], OK: present[ks]}
			case workload.Write:
				final[ks] = op.Value
			case workload.Delete:
				delete(final, ks)
			}
		}
	}
	return reads, final
}

func engines(cfg engine.Config) []*Engine {
	return []*Engine{NewART(cfg), NewHeart(cfg), NewSMART(cfg)}
}

func TestAllBaselinesFunctionalEquivalence(t *testing.T) {
	w := smallWorkload(t, workload.IPGEO, 0.5)
	cfg := engine.Config{Threads: 32, CollectReads: true}
	wantReads, wantFinal := replayReference(w, 32)

	for _, e := range engines(cfg) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			e.Load(w.Keys, nil)
			res := e.Run(w.Ops)
			if res.Ops != len(w.Ops) {
				t.Fatalf("ops = %d", res.Ops)
			}
			// Final tree state must match stream-order replay exactly.
			if e.Tree().Len() != len(wantFinal) {
				t.Fatalf("final keys = %d, want %d", e.Tree().Len(), len(wantFinal))
			}
			for ks, v := range wantFinal {
				got, ok := e.Tree().Get([]byte(ks))
				if !ok || got != v {
					t.Fatalf("final state mismatch at %x: (%d,%v) want %d", ks, got, ok, v)
				}
			}
			// Read results: ART and Heart execute reads at their stream
			// position (sequential within round), so a read may also
			// legally observe an in-round earlier write; accept either the
			// round-start value or any value written to the key earlier in
			// the same round. SMART delegates reads to round start.
			checkReads(t, w, res.Reads, wantReads, 32)
		})
	}
}

func checkReads(t *testing.T, w *workload.Workload, got []engine.ReadResult,
	roundStart map[int]engine.ReadResult, threads int) {
	t.Helper()
	byIndex := make(map[int]engine.ReadResult, len(got))
	for _, r := range got {
		byIndex[r.Index] = r
	}
	for i, op := range w.Ops {
		if op.Kind != workload.Read {
			continue
		}
		r, ok := byIndex[i]
		if !ok {
			t.Fatalf("read %d has no recorded result", i)
		}
		want := roundStart[i]
		if r == want {
			continue
		}
		// Accept any same-round earlier write to the same key.
		rs := (i / threads) * threads
		acceptable := false
		for j := rs; j < i; j++ {
			if w.Ops[j].Kind == workload.Write && string(w.Ops[j].Key) == string(op.Key) &&
				r.OK && r.Value == w.Ops[j].Value {
				acceptable = true
				break
			}
		}
		if !acceptable {
			t.Fatalf("read %d = %+v, want %+v (or an in-round write value)", i, r, want)
		}
	}
}

func TestDisciplineCounters(t *testing.T) {
	w := smallWorkload(t, workload.RS, 0.5)
	cfg := engine.Config{Threads: 64}

	art := NewART(cfg)
	heart := NewHeart(cfg)
	smart := NewSMART(cfg)
	for _, e := range []*Engine{art, heart, smart} {
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
	}

	// ART locks every write; Heart/SMART lock only structural inserts.
	if art.Metrics().Get(metrics.CtrLockAcquire) <= heart.Metrics().Get(metrics.CtrLockAcquire) {
		t.Fatalf("ART locks (%d) should exceed Heart locks (%d)",
			art.Metrics().Get(metrics.CtrLockAcquire), heart.Metrics().Get(metrics.CtrLockAcquire))
	}
	// Heart/SMART use CAS for updates; ART uses none.
	if heart.Metrics().Get(metrics.CtrAtomicOps) == 0 {
		t.Fatal("Heart counted no atomics")
	}
	if art.Metrics().Get(metrics.CtrAtomicOps) != 0 {
		t.Fatal("ART counted atomics")
	}
	// Only SMART coalesces.
	if smart.Metrics().Get(metrics.CtrCoalesced) == 0 {
		t.Fatal("SMART coalesced nothing on a Zipfian workload")
	}
	if heart.Metrics().Get(metrics.CtrCoalesced) != 0 {
		t.Fatal("Heart should not coalesce")
	}
}

func TestContentionOrderingOnSkewedWorkload(t *testing.T) {
	// On a skewed workload, node-level locking (ART) must contend more
	// than leaf-slot CAS (Heart), which must contend at least as much as
	// SMART (combining removes same-key conflicts).
	w := smallWorkload(t, workload.IPGEO, 0.3)
	cfg := engine.Config{Threads: 96}
	art, heart, smart := NewART(cfg), NewHeart(cfg), NewSMART(cfg)
	for _, e := range []*Engine{art, heart, smart} {
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
	}
	ca := art.Metrics().Get(metrics.CtrLockContention)
	ch := heart.Metrics().Get(metrics.CtrLockContention)
	cs := smart.Metrics().Get(metrics.CtrLockContention)
	if ca <= ch {
		t.Fatalf("ART contention (%d) should exceed Heart (%d)", ca, ch)
	}
	if ch < cs {
		t.Fatalf("Heart contention (%d) should be >= SMART (%d)", ch, cs)
	}
	if ca == 0 {
		t.Fatal("no contention at all on a skewed workload")
	}
}

func TestSMARTReducesKeyMatches(t *testing.T) {
	w := smallWorkload(t, workload.IPGEO, 0.5)
	cfg := engine.Config{Threads: 96}
	heart, smart := NewHeart(cfg), NewSMART(cfg)
	for _, e := range []*Engine{heart, smart} {
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
	}
	if smart.Metrics().Get(metrics.CtrKeyMatches) >= heart.Metrics().Get(metrics.CtrKeyMatches) {
		t.Fatalf("SMART key matches (%d) should be below Heart (%d)",
			smart.Metrics().Get(metrics.CtrKeyMatches), heart.Metrics().Get(metrics.CtrKeyMatches))
	}
}

func TestRedundancyInPaperRange(t *testing.T) {
	// Fig 2(b): 77.8-86.1% of traversed nodes are redundant across the
	// evaluated workloads. Shared upper tree levels plus Zipfian key
	// popularity should land our model in the same regime.
	cfg := engine.Config{Threads: 96}
	for _, name := range []string{workload.IPGEO, workload.RS} {
		e := NewART(cfg)
		w := smallWorkload(t, name, 0.5)
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		if res.RedundantRatio < 0.5 || res.RedundantRatio > 0.98 {
			t.Fatalf("%s redundancy = %.2f, want in [0.5, 0.98]", name, res.RedundantRatio)
		}
	}
	// With a near-uniform operation distribution over sparse keys, the
	// redundancy must drop relative to the skewed default.
	uniform := workload.MustGenerate(workload.Spec{
		Name: workload.RS, NumKeys: 30000, NumOps: 12000,
		ReadRatio: 0.5, ZipfS: 1.0001, Seed: 21,
	})
	e := NewART(cfg)
	e.Load(uniform.Keys, nil)
	ru := e.Run(uniform.Ops)

	skew := NewART(cfg)
	ws := smallWorkload(t, workload.IPGEO, 0.5)
	skew.Load(ws.Keys, nil)
	rsk := skew.Run(ws.Ops)
	if rsk.RedundantRatio <= ru.RedundantRatio {
		t.Fatalf("skewed redundancy (%.2f) should exceed near-uniform sparse (%.2f)",
			rsk.RedundantRatio, ru.RedundantRatio)
	}
}

func TestLineUtilizationLow(t *testing.T) {
	// Fig 2(c): index traversals use a small fraction of each fetched
	// 64-byte line (paper: ~20% average).
	w := smallWorkload(t, workload.RS, 0.5)
	e := NewART(engine.Config{Threads: 96, CacheBytes: 1 << 20})
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)
	if res.LineUtilization <= 0 || res.LineUtilization > 0.9 {
		t.Fatalf("line utilization = %.2f, want in (0, 0.9]", res.LineUtilization)
	}
}

func TestResetClearsCounters(t *testing.T) {
	w := smallWorkload(t, workload.DE, 0.5)
	e := NewSMART(engine.Config{Threads: 8})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	if e.Metrics().Get(metrics.CtrKeyMatches) == 0 {
		t.Fatal("no matches before reset")
	}
	e.Reset()
	if e.Metrics().Get(metrics.CtrKeyMatches) != 0 {
		t.Fatal("reset did not clear counters")
	}
	// The loaded tree must survive a reset.
	if e.Tree().Len() == 0 {
		t.Fatal("reset dropped the tree")
	}
}

func TestDeterminism(t *testing.T) {
	w := smallWorkload(t, workload.EA, 0.5)
	run := func() map[string]int64 {
		e := NewSMART(engine.Config{Threads: 96})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		return e.Metrics().Snapshot()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("counter %s differs across identical runs: %d vs %d", k, v, b[k])
		}
	}
}

func TestDeleteOps(t *testing.T) {
	e := NewART(engine.Config{Threads: 4})
	keys := [][]byte{[]byte("a\x00"), []byte("b\x00"), []byte("c\x00")}
	e.Load(keys, nil)
	ops := []workload.Op{
		{Kind: workload.Delete, Key: []byte("b\x00")},
		{Kind: workload.Read, Key: []byte("b\x00")},
	}
	res := e.Run(ops)
	_ = res
	if _, ok := e.Tree().Get([]byte("b\x00")); ok {
		t.Fatal("delete op not applied")
	}
	if e.Tree().Len() != 2 {
		t.Fatalf("len = %d", e.Tree().Len())
	}
}
