// Package baseline implements the paper's three CPU comparison systems as
// modeled engines over the art substrate:
//
//   - ART [9] (Leis et al., "The ART of practical synchronization"):
//     node-level write locks in the ROWEX style; reads are lock-free.
//   - Heart [17]: CAS-based value updates on leaf slots (8-byte atomic
//     RMW) with locks only for structural inserts.
//   - SMART [11]: Heart's CAS discipline plus read delegation and write
//     combining — concurrent operations on the same key within a round
//     are served by a single representative traversal. (SMART targets
//     disaggregated memory; as in the paper's evaluation, it is ported to
//     shared memory, keeping its RDWC front end and lock-free design.)
//
// Every engine processes the operation stream in rounds of Config.Threads
// logically-concurrent operations, executing functionally on a private
// art.Tree while counting partial-key matches, node fetches, per-round
// fetch redundancy, cache-line utilization, lock acquisitions, contended
// acquisitions, and atomic operations. The real-goroutine counterparts of
// these disciplines live in internal/olc and are used by stress tests and
// native benchmarks; the modeled engines here produce the deterministic
// counts behind the paper's figures.
package baseline

import (
	"repro/internal/art"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// discipline selects the synchronization model.
type discipline int

const (
	lockBased    discipline = iota // ART [9]: node-level write locks
	casBased                       // Heart: CAS on leaf slots
	casCombining                   // SMART: CAS + read delegation / write combining
)

// Engine is a modeled CPU baseline. Construct with NewART, NewHeart, or
// NewSMART.
type Engine struct {
	name string
	disc discipline
	cfg  engine.Config

	tree    *art.Tree
	ms      *metrics.Set
	red     *metrics.RedundancyTracker
	lineUse *mem.LineUseTracker

	// per-operation scratch, filled by the access hook
	lastLeaf     uint64
	lastInternal uint64
	measuring    bool

	// Sliding-window contention tracking: a write contends when any
	// logically in-flight operation (the previous Threads stream slots)
	// wrote the same synchronization target — the hot-lock queueing the
	// paper's Fig 2(d) attributes up to 71% of execution time to.
	lastWriter map[uint64]int
	opIndex    int
}

// NewART returns the lock-based ART baseline.
func NewART(cfg engine.Config) *Engine { return newEngine("ART", lockBased, cfg) }

// NewHeart returns the CAS-based Heart baseline.
func NewHeart(cfg engine.Config) *Engine { return newEngine("Heart", casBased, cfg) }

// NewSMART returns the SMART baseline (CAS + read delegation / write
// combining).
func NewSMART(cfg engine.Config) *Engine { return newEngine("SMART", casCombining, cfg) }

func newEngine(name string, disc discipline, cfg engine.Config) *Engine {
	cfg = cfg.Defaults()
	e := &Engine{
		name: name,
		disc: disc,
		cfg:  cfg,
		tree: art.New(),
		ms:   metrics.NewSet(),
	}
	e.newTrackers()
	e.tree.SetAccessHook(e.onAccess)
	return e
}

func (e *Engine) newTrackers() {
	// Redundancy window: a node fetch is redundant if another operation
	// fetched the same node while it could still plausibly be on chip —
	// a window several times deeper than the in-flight op count (the
	// paper's Fig 2(b) reports 77.8-86.1% under this notion).
	window := 16 * e.cfg.Threads
	e.red = metrics.NewRedundancyTracker(window)
	e.lineUse = mem.NewLineUseTracker(e.cfg.CacheBytes, e.cfg.LineSize)
	e.lastWriter = make(map[uint64]int)
	e.opIndex = 0
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Tree exposes the underlying index for verification in tests.
func (e *Engine) Tree() *art.Tree { return e.tree }

// Metrics returns the live counter set.
func (e *Engine) Metrics() *metrics.Set { return e.ms }

// onAccess is the art access hook: it counts one partial-key-match step
// and one node fetch, classifies redundancy within the concurrency
// window, and feeds the cache-line model.
func (e *Engine) onAccess(addr uint64, size int, kind art.NodeKind) {
	if !e.measuring {
		return
	}
	e.ms.Inc(metrics.CtrKeyMatches)
	e.ms.Inc(metrics.CtrNodeAccesses)
	if e.red.Touch(addr) {
		e.ms.Inc(metrics.CtrRedundantNodes)
	}
	e.touchLines(addr, size, kind)
	if kind == art.Leaf {
		e.lastLeaf = addr
	} else {
		e.lastInternal = addr
	}
}

// touchLines models what a CPU traversal actually reads from a node: the
// header/key-probe bytes at its start and, for nodes larger than a cache
// line, the child-slot line deeper in. Only a fraction of each fetched
// 64-byte line is useful — the paper's Fig 2(c) effect (~20% on average).
func (e *Engine) touchLines(addr uint64, size int, kind art.NodeKind) {
	useful := nodeUsefulBytes(kind, size)
	e.lineUse.Access(addr, useful)
	if size > e.cfg.LineSize {
		// Child pointer slot, somewhere past the key array.
		e.lineUse.Access(addr+uint64(size)/2, 8)
	}
}

// nodeUsefulBytes is the per-step useful payload: node header, the probed
// key bytes, and one child pointer (or key+value for a leaf).
func nodeUsefulBytes(kind art.NodeKind, size int) int {
	switch kind {
	case art.Node4:
		return 10 + 4 + 8
	case art.Node16:
		return 10 + 16 + 8
	case art.Node48:
		return 10 + 1 + 8
	case art.Node256:
		return 10 + 8
	default:
		// Leaf: the key bytes compared plus the 8-byte value (the leaf
		// header is bookkeeping the modeled size carries; size-16 leaves
		// key+value).
		u := size - 16
		if u < 9 {
			u = 9
		}
		return u
	}
}

// Load implements engine.Engine; loading is not measured.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.measuring = false
	e.tree.Load(keys, values)
}

// Reset implements engine.Engine.
func (e *Engine) Reset() {
	e.ms.Reset()
	e.newTrackers()
}

// Run implements engine.Engine.
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.measuring = true
	defer func() { e.measuring = false }()

	res := &engine.Result{Name: e.name, Ops: len(ops), Metrics: e.ms}
	for start := 0; start < len(ops); start += e.cfg.Threads {
		end := start + e.cfg.Threads
		if end > len(ops) {
			end = len(ops)
		}
		e.runRound(ops[start:end], start, res)
	}

	res.RedundantRatio = e.red.Ratio()
	res.LineUtilization = e.lineUse.Utilization()
	res.CacheHitRatio = e.cacheHitRatio()
	res.OffchipBytes = e.lineUse.FetchedBytes()
	return res
}

func (e *Engine) cacheHitRatio() float64 {
	return e.lineUse.Stats().HitRatio()
}

// runRound models one round of logically-concurrent operations.
func (e *Engine) runRound(round []workload.Op, base int, res *engine.Result) {
	if e.disc == casCombining {
		e.runRoundCombining(round, base, res)
		return
	}
	for i := range round {
		target := e.exec(&round[i], base+i, res)
		if round[i].Kind != workload.Read {
			e.noteWrite(target)
		}
	}
}

// runRoundCombining is the SMART round: operations on the same key are
// delegated to one representative traversal (reads) or combined into the
// final write (writes).
func (e *Engine) runRoundCombining(round []workload.Op, base int, res *engine.Result) {
	type group struct {
		firstRead  int // round index of first read, -1 if none
		lastWrite  int // round index of last non-read, -1 if none
		readIdx    []int
		writeCount int
	}
	order := make([]string, 0, len(round))
	groups := make(map[string]*group, len(round))
	for i := range round {
		ks := string(round[i].Key)
		g, ok := groups[ks]
		if !ok {
			g = &group{firstRead: -1, lastWrite: -1}
			groups[ks] = g
			order = append(order, ks)
		}
		if round[i].Kind == workload.Read {
			if g.firstRead < 0 {
				g.firstRead = i
			}
			g.readIdx = append(g.readIdx, i)
		} else {
			g.lastWrite = i
			g.writeCount++
		}
	}

	for _, ks := range order {
		g := groups[ks]
		if g.firstRead >= 0 {
			// One delegated read serves all reads of the key this round.
			op := &round[g.firstRead]
			v, ok := e.execRead(op)
			if e.cfg.CollectReads {
				for _, ri := range g.readIdx {
					res.Reads = append(res.Reads,
						engine.ReadResult{Index: base + ri, Value: v, OK: ok})
				}
			}
			e.ms.Add(metrics.CtrOpsRead, int64(len(g.readIdx)))
			if n := len(g.readIdx) - 1; n > 0 {
				e.ms.Add(metrics.CtrCoalesced, int64(n))
			}
		}
		if g.lastWrite >= 0 {
			// Combined write: only the final value lands.
			target := e.execWrite(&round[g.lastWrite])
			e.noteWrite(target)
			e.ms.Add(metrics.CtrOpsWrite, int64(g.writeCount))
			if g.writeCount > 1 {
				e.ms.Add(metrics.CtrCoalesced, int64(g.writeCount-1))
			}
		}
	}
}

// noteWrite records a write to a synchronization target and counts a
// contention event when another write hit the same target within the
// in-flight window.
func (e *Engine) noteWrite(target uint64) {
	if target == 0 {
		return
	}
	if last, ok := e.lastWriter[target]; ok && e.opIndex-last <= e.cfg.Threads {
		e.ms.Inc(metrics.CtrLockContention)
	}
	e.lastWriter[target] = e.opIndex
}

// exec runs one operation and returns its synchronization target.
func (e *Engine) exec(op *workload.Op, streamIdx int, res *engine.Result) uint64 {
	switch op.Kind {
	case workload.Read:
		e.ms.Inc(metrics.CtrOpsRead)
		v, ok := e.execRead(op)
		if e.cfg.CollectReads {
			res.Reads = append(res.Reads, engine.ReadResult{Index: streamIdx, Value: v, OK: ok})
		}
		return 0
	default:
		e.ms.Inc(metrics.CtrOpsWrite)
		return e.execWrite(op)
	}
}

// execRead performs the traversal for a read. ROWEX-style reads take no
// locks in any of the three baselines.
func (e *Engine) execRead(op *workload.Op) (uint64, bool) {
	e.red.NextOp()
	e.opIndex++
	e.lastLeaf, e.lastInternal = 0, 0
	return e.tree.Get(op.Key)
}

// execWrite performs a write (or delete) and charges the discipline's
// synchronization events, returning the conflict-target node address.
func (e *Engine) execWrite(op *workload.Op) uint64 {
	e.red.NextOp()
	e.opIndex++
	e.lastLeaf, e.lastInternal = 0, 0

	if op.Kind == workload.Delete {
		e.tree.Delete(op.Key)
		// Structural modification: node lock in every discipline.
		e.ms.Inc(metrics.CtrLockAcquire)
		return e.lockTarget()
	}

	replaced := e.tree.Put(op.Key, op.Value)
	switch e.disc {
	case lockBased:
		// ART [9]: the target node's write lock, for update and insert.
		e.ms.Inc(metrics.CtrLockAcquire)
		return e.lockTarget()
	default:
		if replaced {
			// Heart/SMART: in-place value update via one CAS on the leaf.
			e.ms.Inc(metrics.CtrAtomicOps)
			return e.leafTarget()
		}
		// Structural insert still locks the target node.
		e.ms.Inc(metrics.CtrLockAcquire)
		return e.lockTarget()
	}
}

// lockTarget is the node-level lock address: the deepest internal node on
// the op's path (the node the ROWEX protocol write-locks).
func (e *Engine) lockTarget() uint64 {
	if e.lastInternal != 0 {
		return e.lastInternal
	}
	return e.lastLeaf
}

// leafTarget is the CAS conflict address: the 8-byte value slot, i.e. the
// leaf itself — finer-grained than a node lock.
func (e *Engine) leafTarget() uint64 {
	if e.lastLeaf != 0 {
		return e.lastLeaf
	}
	return e.lastInternal
}
