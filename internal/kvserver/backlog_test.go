package kvserver

import (
	"testing"
	"time"
)

// TestConnBacklogTracking covers the per-connection backlog surface PR 10
// added for the health engine: ConnBacklogs tracks connection arrival and
// departure, and the kv-group gauges expose the count and the maximum
// occupancy.
func TestConnBacklogTracking(t *testing.T) {
	srv := New()
	if got := srv.ConnBacklogs(); len(got) != 0 {
		t.Fatalf("backlogs before any connection = %v", got)
	}
	snap := srv.Registry().Snapshot()
	if _, ok := snap.Gauges["dcart_server_connections"]; !ok {
		t.Fatalf("dcart_server_connections gauge missing: %v", snap.Gauges)
	}
	if _, ok := snap.Gauges["dcart_server_conn_backlog_max"]; !ok {
		t.Fatalf("dcart_server_conn_backlog_max gauge missing: %v", snap.Gauges)
	}

	s1 := newSession(srv)
	s2 := newSession(srv)
	if resp := s1.cmd(t, "PUT alpha 1"); resp != "OK" {
		t.Fatalf("PUT: %q", resp)
	}
	if resp := s2.cmd(t, "GET alpha"); resp != "VALUE 1" {
		t.Fatalf("GET: %q", resp)
	}
	if got := len(srv.ConnBacklogs()); got != 2 {
		t.Fatalf("live connections = %d, want 2", got)
	}
	if v := srv.Registry().Snapshot().Gauges["dcart_server_connections"]; v != 2 {
		t.Fatalf("connections gauge = %g, want 2", v)
	}
	// Idle connections drain to zero backlog. The pipelined responder
	// stores 0 just after flushing the last response, so poll briefly.
	drainDeadline := time.Now().Add(2 * time.Second)
	for {
		idle := true
		for _, b := range srv.ConnBacklogs() {
			if b != 0 {
				idle = false
			}
		}
		if idle {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("idle connection backlog never drained: %v", srv.ConnBacklogs())
		}
		time.Sleep(time.Millisecond)
	}

	s1.close()
	s2.close()
	// Serve's deferred untracking runs as the handler goroutine exits.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.ConnBacklogs()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("connections never untracked: %v", srv.ConnBacklogs())
		}
		time.Sleep(time.Millisecond)
	}
}
