package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/pctt"
	"repro/internal/store"
)

// TestOversizedLineRecovers sends a line far beyond the 64KiB read buffer
// and asserts the server answers ERR, stays in sync, and keeps serving.
func TestOversizedLineRecovers(t *testing.T) {
	s := newSession(New())
	defer s.close()

	if got := s.cmd(t, "PUT before 1"); got != "OK" {
		t.Fatalf("PUT before = %q", got)
	}
	huge := "PUT big " + strings.Repeat("9", 70<<10)
	if got := s.cmd(t, huge); got != "ERR line too long" {
		t.Fatalf("oversized line = %q", got)
	}
	// The connection must have discarded the remainder and resynced.
	if got := s.cmd(t, "LEN"); got != "LEN 1" {
		t.Fatalf("LEN after oversized = %q", got)
	}
	if got := s.cmd(t, "GET before"); got != "VALUE 1" {
		t.Fatalf("GET after oversized = %q", got)
	}
}

// TestParserEdgeCases drives malformed commands mid-pipeline and asserts
// every one gets exactly one response and the session stays usable.
func TestParserEdgeCases(t *testing.T) {
	s := newSession(New())
	defer s.close()

	cases := []struct{ cmd, want string }{
		{"PUT k 1 2", "ERR usage: PUT <key> <uint64>"}, // embedded space in value
		{"PUT", "ERR usage: PUT <key> <uint64>"},
		{"PUT k", "ERR usage: PUT <key> <uint64>"},
		{"PUT k notanum", "ERR bad value: strconv.ParseUint: parsing \"notanum\": invalid syntax"},
		{"GET", "ERR usage: GET <key>"},        // empty key collapses to no args
		{"GET   ", "ERR usage: GET <key>"},     // whitespace-only args
		{"DEL", "ERR usage: DEL <key>"},
		{"SCAN p", "ERR usage: SCAN <prefix> <limit>"},
		{"SCAN p zero", "ERR bad limit"},
		{"SCAN p 0", "ERR bad limit"},
		{"RANGE a b", "ERR usage: RANGE <lo> <hi> <limit>"},
		{"FROB x", "ERR unknown command FROB"},
		{"put lower 5", "OK"}, // commands are case-insensitive
		{"GET lower", "VALUE 5"},
	}
	for _, tc := range cases {
		if got := s.cmd(t, tc.cmd); got != tc.want {
			t.Fatalf("%q = %q, want %q", tc.cmd, got, tc.want)
		}
	}
	// Blank lines produce no response and do not desync the stream.
	if _, err := fmt.Fprint(s.conn, "\n   \nGET lower\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.r.ReadString('\n')
	if err != nil || strings.TrimSpace(resp) != "VALUE 5" {
		t.Fatalf("after blank lines: %q, %v", resp, err)
	}
}

// TestUnknownCommandMidPipeline blind-writes a burst mixing valid and
// invalid commands and asserts the responses come back one-per-command in
// order — a parse error must not cost the stream a slot.
func TestUnknownCommandMidPipeline(t *testing.T) {
	s := newSession(New())
	defer s.close()

	var script strings.Builder
	var want []string
	for i := 0; i < 50; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&script, "PUT k%d %d\n", i, i)
			want = append(want, "OK")
		case 1:
			fmt.Fprintf(&script, "BOGUS%d\n", i)
			want = append(want, fmt.Sprintf("ERR unknown command BOGUS%d", i))
		default:
			fmt.Fprintf(&script, "GET k%d\n", i-2)
			want = append(want, fmt.Sprintf("VALUE %d", i-2))
		}
	}
	go io.WriteString(s.conn, script.String())
	for i, w := range want {
		resp, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSpace(resp); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
}

// TestPipelineBarrier blind-writes PUTs immediately followed by a SCAN
// and asserts the scan observes every earlier acknowledged write — the
// barrier drained the window first.
func TestPipelineBarrier(t *testing.T) {
	srv := NewBatchedConfig(pctt.Config{Workers: 2})
	s := newSession(srv)
	defer s.close()

	const n = 40
	var script strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&script, "PUT bar:%02d %d\n", i, i)
	}
	script.WriteString("SCAN bar: 100\nLEN\n")
	go io.WriteString(s.conn, script.String())

	for i := 0; i < n; i++ {
		resp, err := s.r.ReadString('\n')
		if err != nil || strings.TrimSpace(resp) != "OK" {
			t.Fatalf("PUT %d: %q, %v", i, resp, err)
		}
	}
	rows := 0
	for {
		resp, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line := strings.TrimSpace(resp)
		if line == "END" {
			break
		}
		if !strings.HasPrefix(line, "KEY bar:") {
			t.Fatalf("scan row %d = %q", rows, line)
		}
		rows++
	}
	if rows != n {
		t.Fatalf("SCAN after barrier saw %d rows, want %d", rows, n)
	}
	resp, err := s.r.ReadString('\n')
	if err != nil || strings.TrimSpace(resp) != fmt.Sprintf("LEN %d", n) {
		t.Fatalf("LEN after barrier: %q, %v", resp, err)
	}
}

// pipeScript is one connection's deterministic command script and its
// expected response sequence.
type pipeScript struct {
	cmds string
	want []string
}

// buildPipeScript interleaves PUTs and GETs over a small per-connection
// key set so expected responses (including read-your-writes values and
// OK-vs-OK-replaced) are fully determined by submission order.
func buildPipeScript(conn, ops int) pipeScript {
	var b strings.Builder
	var want []string
	last := map[string]uint64{}
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("c%d:k%d", conn, i%8)
		if i%3 != 2 {
			v := uint64(conn*1_000_000 + i)
			fmt.Fprintf(&b, "PUT %s %d\n", key, v)
			if _, ok := last[key]; ok {
				want = append(want, "OK replaced")
			} else {
				want = append(want, "OK")
			}
			last[key] = v
		} else {
			fmt.Fprintf(&b, "GET %s\n", key)
			if v, ok := last[key]; ok {
				want = append(want, fmt.Sprintf("VALUE %d", v))
			} else {
				want = append(want, "NOT_FOUND")
			}
		}
	}
	b.WriteString("QUIT\n")
	want = append(want, "BYE")
	return pipeScript{cmds: b.String(), want: want}
}

// TestPipelinedConcurrentOrderingRYW runs 8 pipelined connections
// concurrently against one batched store, each blind-writing its whole
// script, and asserts every connection's responses arrive exactly in
// command order with read-your-writes values. Run under -race in CI.
func TestPipelinedConcurrentOrderingRYW(t *testing.T) {
	srv := NewBatchedConfig(pctt.Config{Workers: 4})
	defer srv.Close()

	const conns = 8
	const ops = 400
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for cn := 0; cn < conns; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			client, server := net.Pipe()
			serveDone := make(chan struct{})
			go func() { defer close(serveDone); srv.Serve(server) }()
			sc := buildPipeScript(cn, ops)
			go io.WriteString(client, sc.cmds) // blind writer; backpressure throttles it
			r := bufio.NewReader(client)
			for i, w := range sc.want {
				resp, err := r.ReadString('\n')
				if err != nil {
					errs <- fmt.Errorf("conn %d response %d: %v", cn, i, err)
					client.Close()
					return
				}
				if got := strings.TrimSpace(resp); got != w {
					errs <- fmt.Errorf("conn %d response %d = %q, want %q", cn, i, got, w)
					client.Close()
					return
				}
			}
			client.Close()
			<-serveDone
		}(cn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.PipelineStats()
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", st.Inflight)
	}
	if st.Responses == 0 || st.DepthHighWater < 1 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}

// TestLockstepModeMatchesPipelined runs the same script in depth-1
// (lockstep) mode and asserts identical responses — SetPipeline(1, …)
// must fully restore the serial path.
func TestLockstepModeMatchesPipelined(t *testing.T) {
	srv := NewStore(store.NewDirect())
	srv.SetPipeline(1, 1)
	defer srv.Close()

	s := newSession(srv)
	defer s.close()
	sc := buildPipeScript(0, 60)
	go io.WriteString(s.conn, sc.cmds)
	for i, w := range sc.want {
		resp, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSpace(resp); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
}
