package kvserver

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pctt"
)

// waitSpans polls for fn to succeed: wire spans finalize on the writer
// goroutine's flush, which can land just after the client read the
// response.
func waitSpans(t *testing.T, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !fn() {
		if time.Now().After(deadline) {
			t.Fatal("spans did not appear in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireSpanWaterfall is the acceptance check: a sampled op on the
// pipelined batched server records a wire span whose waterfall renders
// with the parse/submit/window/execute/flush stages, correlated with the
// engine's span through the shared key-hash trace ID.
func TestWireSpanWaterfall(t *testing.T) {
	tr := obs.NewTracer(0, 1) // sample every op
	srv := NewBatchedConfig(pctt.Config{Workers: 2, Tracer: tr})
	defer srv.Close()
	srv.SetTracer(tr)

	s := newSession(srv)
	defer s.close()

	if got := s.cmd(t, "PUT alpha 1"); got != "OK" {
		t.Fatalf("PUT: %q", got)
	}
	if got := s.cmd(t, "GET alpha"); got != "VALUE 1" {
		t.Fatalf("GET: %q", got)
	}

	id := pctt.HashKey(storedKey("alpha"))
	var spans []obs.Span
	waitSpans(t, func() bool {
		spans = tr.SpansFor(id)
		wire, engine := false, false
		for _, sp := range spans {
			switch sp.Layer {
			case "wire":
				wire = true
			case "engine":
				engine = true
			}
		}
		return wire && engine
	})

	var wire obs.Span
	for _, sp := range spans {
		if sp.Layer == "wire" {
			wire = sp
			break
		}
	}
	want := []string{"parse", "submit", "window", "execute", "flush"}
	if len(wire.Stages) != len(want) {
		t.Fatalf("wire stages = %+v, want %v", wire.Stages, want)
	}
	for i, st := range wire.Stages {
		if st.Name != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Name, want[i])
		}
		if st.Nanos() < 0 {
			t.Fatalf("stage %q negative: %+v", st.Name, st)
		}
		if i > 0 && st.StartUnixNano != wire.Stages[i-1].EndUnixNano {
			t.Fatalf("stage %q not contiguous with previous", st.Name)
		}
	}

	var b strings.Builder
	obs.WriteWaterfall(&b, spans)
	out := b.String()
	distinct := 0
	for _, name := range want {
		if strings.Contains(out, name) {
			distinct++
		}
	}
	if distinct < 4 {
		t.Fatalf("waterfall renders %d of the wire stages, want >= 4:\n%s", distinct, out)
	}
	if !strings.Contains(out, "wire/") || !strings.Contains(out, "engine/") {
		t.Fatalf("waterfall missing a layer:\n%s", out)
	}
}

// TestPipelinedJournalCapturesEveryOp: with a zero-threshold journal and
// no tracer, every point op lands in the journal with its wire-stage
// breakdown — journaling is exhaustive, not sampled.
func TestPipelinedJournalCapturesEveryOp(t *testing.T) {
	j := obs.NewJournal(0, 0, nil)
	srv := NewBatchedConfig(pctt.Config{Workers: 1})
	defer srv.Close()
	srv.SetJournal(j)

	s := newSession(srv)
	defer s.close()

	const ops = 10
	for i := 0; i < ops; i++ {
		if got := s.cmd(t, "PUT k 7"); got != "OK" && got != "OK replaced" {
			t.Fatalf("PUT: %q", got)
		}
	}

	waitSpans(t, func() bool { return j.Recorded() >= ops })
	evs := j.Events()
	if len(evs) < ops {
		t.Fatalf("journal holds %d events, want >= %d", len(evs), ops)
	}
	for _, e := range evs {
		if e.Layer != "wire" {
			t.Fatalf("event layer = %q, want wire", e.Layer)
		}
		if e.Op != "put" {
			t.Fatalf("event op = %q, want put", e.Op)
		}
		if len(e.Stages) != 5 {
			t.Fatalf("event stages = %+v, want 5", e.Stages)
		}
		if e.TotalNanos < 0 {
			t.Fatalf("negative total: %+v", e)
		}
	}
}

// TestLockstepWireSpans: depth-1 connections stamp a degenerate
// execute/flush wire span for traced ops and journal slow ones too.
func TestLockstepWireSpans(t *testing.T) {
	tr := obs.NewTracer(0, 1)
	j := obs.NewJournal(0, 0, nil)
	srv := New()
	defer srv.Close()
	srv.SetPipeline(1, 1)
	srv.SetTracer(tr)
	srv.SetJournal(j)

	s := newSession(srv)
	defer s.close()

	if got := s.cmd(t, "PUT beta 2"); got != "OK" {
		t.Fatalf("PUT: %q", got)
	}
	if got := s.cmd(t, "GET beta"); got != "VALUE 2" {
		t.Fatalf("GET: %q", got)
	}

	id := pctt.HashKey(storedKey("beta"))
	var spans []obs.Span
	waitSpans(t, func() bool {
		spans = tr.SpansFor(id)
		return len(spans) >= 2
	})
	for _, sp := range spans {
		if sp.Layer != "wire" {
			t.Fatalf("span layer = %q, want wire", sp.Layer)
		}
		if len(sp.Stages) != 2 || sp.Stages[0].Name != "execute" || sp.Stages[1].Name != "flush" {
			t.Fatalf("lockstep stages = %+v", sp.Stages)
		}
	}
	if j.Recorded() < 2 {
		t.Fatalf("journal recorded %d, want >= 2", j.Recorded())
	}
}
