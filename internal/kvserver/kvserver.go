// Package kvserver implements the line-protocol key-value service behind
// cmd/dcart-kv: the "key-value store" deployment scenario the DCART
// paper's introduction motivates. It is a pure protocol layer — parsing,
// response formatting, and connection lifecycle — over the storage
// contract in internal/store, and never touches an index or engine
// directly.
//
// The store decides the execution mode:
//
//   - store.Direct: one lock-coupling tree descent per command (the
//     baseline discipline of the paper's CPU systems).
//   - store.Batched: point operations route through the parallel CTT
//     engine (internal/pctt), whose combining front end coalesces
//     concurrent requests that share a key prefix — the paper's CTT
//     pipeline applied to live TCP traffic. A connection's own writes
//     are visible because every engine call blocks until applied.
//   - store.Sharded: the scale-out shape of the paper's Fig 6 — point
//     operations route to the owning shard, SCAN/RANGE scatter-gather
//     with an ordered merge.
//
// Every read, write, scan, LEN, and snapshot flows through the one
// store.Store value, so swapping topologies never changes protocol
// behavior.
package kvserver

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pctt"
	"repro/internal/store"
)

// maxScanLimit caps SCAN/RANGE responses. When this cap (not the
// client's own limit) clips a response that had more rows, the
// terminator becomes "END TRUNCATED" so clients can tell a complete
// result from a clipped one.
const maxScanLimit = 10_000

// maxLineLen bounds one protocol line (command or response input). A
// longer line is discarded whole and answered with "ERR line too long";
// the session stays in sync at the next newline.
const maxLineLen = 64 << 10

// Pipelining defaults: the per-connection in-flight response window and
// the response-coalescing flush cap. Depth 1 selects the lockstep path
// (read one command, apply, respond, flush, repeat).
const (
	DefaultPipelineDepth = 64
	DefaultFlushEvery    = 32
)

// Per-connection buffer pools: the buffered line reader, the buffered
// response writer, and the response-line scratch are all recycled across
// connections, so a busy accept loop stops churning the allocator.
var (
	readerPool = sync.Pool{
		New: func() any { return bufio.NewReaderSize(eofReader{}, maxLineLen) },
	}
	writerPool = sync.Pool{
		New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) },
	}
	lineBufPool = sync.Pool{
		New: func() any { b := make([]byte, 0, 256); return &b },
	}
)

// eofReader is the parked readers' placeholder source (never read; it
// just drops the pooled reader's reference to a dead connection).
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

// serverStats is the server-wide pipelining instrumentation, aggregated
// across connections. All fields are atomics written on the hot path and
// read by the obs gauges and the server benchmark.
type serverStats struct {
	// inflight counts point operations submitted to the store whose
	// responses have not completed yet.
	inflight atomic.Int64
	// flushes counts response-writer flushes that moved bytes (lockstep:
	// one per command; pipelined: one per coalesced run).
	flushes atomic.Int64
	// responses counts completed pipelined responses; depthSum accumulates
	// the connection's window occupancy observed as each one completed, so
	// depthSum/responses is the mean pipeline depth actually achieved.
	responses atomic.Int64
	depthSum  atomic.Int64
	// depthHW is the high-water submitted-but-unanswered count.
	depthHW atomic.Int64
}

// submitted records one async submission and maintains the high-water
// mark.
func (st *serverStats) submitted() {
	n := st.inflight.Add(1)
	for {
		hw := st.depthHW.Load()
		if n <= hw || st.depthHW.CompareAndSwap(hw, n) {
			return
		}
	}
}

// PipelineStats is a point-in-time copy of the server's pipelining
// counters (see serverStats for field semantics).
type PipelineStats struct {
	Inflight       int64
	Flushes        int64
	Responses      int64
	DepthSum       int64
	DepthHighWater int64
}

// Server is the key-value service. Safe for concurrent use; Serve is run
// once per connection.
type Server struct {
	st      store.Store
	reg     *obs.Registry
	batched bool
	maxScan int

	pipeDepth  int
	flushEvery int
	stats      serverStats

	// tracer and journal observe the wire layer: the tracer samples
	// operations for stage-stamped lifecycle spans; the journal captures
	// every operation slower than its threshold. Both optional (SetTracer /
	// SetJournal, before Serve).
	tracer  *obs.Tracer
	journal *obs.Journal

	// conns tracks live connections (*connTrack → nothing) so the obs
	// layer can see backpressure forming per connection, not just in the
	// server-wide aggregates.
	conns sync.Map
}

// connTrack is one live connection's occupancy mirror: backlog is the
// connection's reorder-window occupancy (commands submitted, responses
// not yet completed), updated by the pipelined writer as it completes
// each response. Lockstep connections stay at 0 — their window is
// definitionally empty between commands.
type connTrack struct {
	backlog atomic.Int64
}

// New returns an empty server over a direct (unbatched, unsharded) store.
func New() *Server { return NewStore(store.NewDirect()) }

// NewBatched returns an empty server whose point operations flow through
// the parallel CTT engine with the given worker count (<=0 for the
// default). Call Close to stop the engine's workers.
func NewBatched(workers int) *Server {
	return NewBatchedConfig(pctt.Config{Workers: workers})
}

// NewBatchedConfig is NewBatched with the full engine configuration
// exposed — combine-window deadline (MaxDelay/MinBatch), queue shaping
// (QueueDepth/MaxInflight), and work stealing (NoSteal) — for servers that
// tune the latency/throughput trade-off per deployment.
func NewBatchedConfig(cfg pctt.Config) *Server {
	return NewStore(store.NewBatched(cfg))
}

// NewStore returns a server over any store — direct, batched, sharded, or
// a custom implementation. The server owns the store from here on: Close
// closes it, snapshots go through store.Save/Load.
func NewStore(st store.Store) *Server {
	s := &Server{
		st: st, batched: isBatched(st), maxScan: maxScanLimit,
		pipeDepth: DefaultPipelineDepth, flushEvery: DefaultFlushEvery,
	}
	s.initObs()
	return s
}

// isBatched reports whether point operations flow through a CTT pipeline
// (directly or inside every shard of a sharded store).
func isBatched(st store.Store) bool {
	switch v := st.(type) {
	case *store.Batched:
		return true
	case *store.Sharded:
		return v.NumShards() > 0 && isBatched(v.Shard(0))
	}
	return false
}

// initObs builds the server's observability registry: whatever the store
// exposes (engine pipeline series in batched mode, per-shard groups when
// sharded) plus the server-level key-count gauge. The same registry backs
// the STATS wire command and (when dcart-kv passes it to obs.Serve) the
// diagnostics HTTP endpoint.
func (s *Server) initObs() {
	s.reg = obs.NewRegistry()
	s.st.RegisterObs(s.reg)
	s.reg.RegisterGauge("kv", "dcart_keys", "", "keys stored in the tree",
		func() float64 { return float64(s.st.Len()) })
	s.reg.RegisterGauge("kv", "dcart_server_inflight", "",
		"point operations submitted to the store and not yet answered (pipelined connections)",
		func() float64 { return float64(s.stats.inflight.Load()) })
	s.reg.RegisterGauge("kv", "dcart_server_flushes", "",
		"cumulative response-writer flushes (pipelining coalesces up to flush-every responses per flush)",
		func() float64 { return float64(s.stats.flushes.Load()) })
	s.reg.RegisterGauge("kv", "dcart_server_pipeline_depth", "",
		"mean per-connection response-window occupancy observed at completion (pipelined responses)",
		func() float64 {
			n := s.stats.responses.Load()
			if n == 0 {
				return 0
			}
			return float64(s.stats.depthSum.Load()) / float64(n)
		})
	s.reg.RegisterGauge("kv", "dcart_server_connections", "",
		"live client connections",
		func() float64 { return float64(len(s.ConnBacklogs())) })
	s.reg.RegisterGauge("kv", "dcart_server_conn_backlog_max", "",
		"largest per-connection response-window occupancy right now (a window "+
			"pinned at pipeline-depth means that client is fully backpressured)",
		func() float64 {
			var max int64
			for _, b := range s.ConnBacklogs() {
				if b > max {
					max = b
				}
			}
			return float64(max)
		})
}

// ConnBacklogs returns each live connection's current response-window
// occupancy (order unspecified). Load tests read this to watch
// backpressure form per connection.
func (s *Server) ConnBacklogs() []int64 {
	out := []int64{}
	s.conns.Range(func(k, _ any) bool {
		out = append(out, k.(*connTrack).backlog.Load())
		return true
	})
	return out
}

// SetPipeline configures per-connection pipelining: depth is the bounded
// in-flight response window (1 selects the lockstep path — read, apply,
// respond, flush, repeat), flushEvery caps how many responses may coalesce
// into one network flush (the writer also flushes whenever the window runs
// dry, so an idle connection never waits on a buffered response). Call
// before Serve.
func (s *Server) SetPipeline(depth, flushEvery int) {
	if depth < 1 {
		depth = 1
	}
	if flushEvery < 1 {
		flushEvery = 1
	}
	s.pipeDepth = depth
	s.flushEvery = flushEvery
}

// SetTracer attaches a wire-layer span tracer: sampled operations carry
// parse → submit → window → execute → flush stage stamps through the
// pipelined path, keyed by the same end-to-end key hash the engine's spans
// use so one operation's spans compose into a waterfall. Call before
// Serve; typically the same tracer is handed to the engine config.
func (s *Server) SetTracer(tr *obs.Tracer) { s.tracer = tr }

// SetJournal attaches the slow-op journal: EVERY point operation is
// stage-stamped through the wire (no sampling) and offered to the journal,
// which keeps only those at or above its latency threshold. Call before
// Serve.
func (s *Server) SetJournal(j *obs.Journal) { s.journal = j }

// Tracer returns the wire tracer (nil when unset).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Journal returns the slow-op journal (nil when unset).
func (s *Server) Journal() *obs.Journal { return s.journal }

// PipelineStats returns a point-in-time copy of the server-wide
// pipelining counters.
func (s *Server) PipelineStats() PipelineStats {
	return PipelineStats{
		Inflight:       s.stats.inflight.Load(),
		Flushes:        s.stats.flushes.Load(),
		Responses:      s.stats.responses.Load(),
		DepthSum:       s.stats.depthSum.Load(),
		DepthHighWater: s.stats.depthHW.Load(),
	}
}

// Registry exposes the server's observability registry (for the
// diagnostics HTTP server).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store exposes the server's storage layer.
func (s *Server) Store() store.Store { return s.st }

// StatsSnapshot returns the same point-in-time snapshot the STATS wire
// command renders.
func (s *Server) StatsSnapshot() *obs.Snapshot { return s.reg.Snapshot() }

// Close shuts the store down (stopping any engine workers).
func (s *Server) Close() error { return s.st.Close() }

// Batched reports whether point operations flow through the CTT pipeline.
func (s *Server) Batched() bool { return s.batched }

// Len returns the number of stored keys.
func (s *Server) Len() int { return s.st.Len() }

// SetMaxScanLimit overrides the SCAN/RANGE response cap (tests exercise
// the TRUNCATED terminator without 10k-row fixtures). Call before Serve.
func (s *Server) SetMaxScanLimit(n int) {
	if n > 0 {
		s.maxScan = n
	}
}

// storedKey appends the 0x00 terminator so client keys are prefix-safe.
func storedKey(tok string) []byte {
	k := make([]byte, len(tok)+1)
	copy(k, tok)
	return k
}

// clientKey strips the terminator for display.
func clientKey(k []byte) []byte {
	if n := len(k); n > 0 && k[n-1] == 0 {
		return k[:n-1]
	}
	return k
}

// connState is the per-connection state: the pooled response writer plus a
// pooled scratch buffer for formatting response lines without allocating.
type connState struct {
	s       *Server
	w       *bufio.Writer
	scratch []byte
	track   *connTrack
	// ws is the lockstep path's in-progress wire span: serveLockstep arms
	// it before handle so the command parser can fill in the op name and
	// key hash. Nil whenever the op is neither traced nor journaled.
	ws *wireSpan
}

// flush pushes buffered responses to the connection, counting only
// flushes that actually moved bytes.
func (c *connState) flush() error {
	if c.w.Buffered() == 0 {
		return nil
	}
	c.s.stats.flushes.Add(1)
	return c.w.Flush()
}

// line formats and streams one response line (parts joined by spaces).
func (c *connState) line(parts ...string) {
	b := c.scratch[:0]
	for i, p := range parts {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, p...)
	}
	b = append(b, '\n')
	c.scratch = b
	c.w.Write(b)
}

// kvLine streams one "KEY <key> <value>" line. Scan callbacks call this
// while holding tree read locks, so it must not block on anything but the
// buffered writer itself; results stream out incrementally instead of
// being accumulated.
func (c *connState) kvLine(k []byte, v uint64) {
	b := append(c.scratch[:0], "KEY "...)
	b = append(b, clientKey(k)...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\n')
	c.scratch = b
	c.w.Write(b)
}

// scanEnd writes the scan terminator: "END TRUNCATED" when the server's
// response cap (not the client's own limit) clipped a response that had
// more rows, plain "END" otherwise.
func (c *connState) scanEnd(clipped, truncated bool) {
	if clipped && truncated {
		c.line("END", "TRUNCATED")
	} else {
		c.line("END")
	}
}

func uintStr(v uint64) string { return strconv.FormatUint(v, 10) }

// Serve handles one connection until QUIT, EOF, or a write error. With a
// pipeline depth above 1 (the default) the connection runs the pipelined
// reader/writer pair in pipeline.go; depth 1 runs the lockstep loop.
func (s *Server) Serve(conn io.ReadWriteCloser) {
	defer conn.Close()

	r := readerPool.Get().(*bufio.Reader)
	r.Reset(conn)
	defer func() {
		r.Reset(eofReader{}) // drop the conn reference before pooling
		readerPool.Put(r)
	}()

	w := writerPool.Get().(*bufio.Writer)
	w.Reset(conn)
	defer func() {
		w.Reset(io.Discard)
		writerPool.Put(w)
	}()

	scratch := lineBufPool.Get().(*[]byte)
	track := &connTrack{}
	s.conns.Store(track, struct{}{})
	c := &connState{s: s, w: w, scratch: (*scratch)[:0], track: track}
	defer func() {
		s.conns.Delete(track)
		*scratch = c.scratch[:0]
		lineBufPool.Put(scratch)
	}()

	if s.pipeDepth > 1 {
		s.servePipelined(r, c)
	} else {
		s.serveLockstep(r, c)
	}
}

// readLine returns the next protocol line without its terminator. A line
// longer than the reader's buffer is discarded through its newline and
// reported as tooLong — the session survives and resynchronizes at the
// next line. A final unterminated line comes back together with io.EOF;
// the returned slice aliases the reader's buffer and is only valid until
// the next read.
func readLine(r *bufio.Reader) (line []byte, tooLong bool, err error) {
	line, err = r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		for err == bufio.ErrBufferFull {
			_, err = r.ReadSlice('\n')
		}
		return nil, true, err
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	return line, false, err
}

// serveLockstep is the unpipelined connection loop: one command parsed,
// applied, answered, and flushed at a time — the baseline the server
// benchmark compares pipelining against, and the only mode where the
// store's blocking calls are used.
func (s *Server) serveLockstep(r *bufio.Reader, c *connState) {
	for {
		raw, tooLong, err := readLine(r)
		if tooLong {
			c.line("ERR line too long")
			if c.flush() != nil {
				return
			}
			if err != nil {
				return
			}
			continue
		}
		line := strings.TrimSpace(string(raw))
		if line != "" {
			var ws *wireSpan
			if traced := s.tracer != nil && s.tracer.Sample(); traced || s.journal != nil {
				ws = &wireSpan{traced: traced, lineAt: time.Now().UnixNano()}
				c.ws = ws
			}
			quit := !c.handle(line)
			if ws != nil {
				ws.waitedAt = time.Now().UnixNano()
				c.ws = nil
			}
			// Window accounting: the lockstep path is a pipeline of depth
			// exactly 1, and its flushes count like the pipelined path's so
			// flushes-per-response is comparable across modes.
			s.stats.responses.Add(1)
			s.stats.depthSum.Add(1)
			if quit {
				c.flush()
				if ws != nil {
					ws.finalizeLockstep(time.Now().UnixNano(), s.tracer, s.journal)
				}
				return
			}
			if c.flush() != nil {
				return
			}
			if ws != nil {
				ws.finalizeLockstep(time.Now().UnixNano(), s.tracer, s.journal)
			}
		}
		if err != nil {
			break
		}
	}
	c.flush()
}

// handle executes one command line; returns false to close the session.
func (c *connState) handle(line string) bool {
	s := c.s
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	if c.ws != nil {
		c.ws.op = strings.ToLower(cmd)
	}
	switch cmd {
	case "PUT":
		if len(args) != 2 {
			c.line("ERR usage: PUT <key> <uint64>")
			return true
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			c.line("ERR bad value:", err.Error())
			return true
		}
		k := storedKey(args[0])
		if c.ws != nil {
			c.ws.hash = pctt.HashKey(k)
		}
		if s.st.Put(k, v) {
			c.line("OK replaced")
		} else {
			c.line("OK")
		}
	case "GET":
		if len(args) != 1 {
			c.line("ERR usage: GET <key>")
			return true
		}
		k := storedKey(args[0])
		if c.ws != nil {
			c.ws.hash = pctt.HashKey(k)
		}
		if v, ok := s.st.Get(k); ok {
			c.line("VALUE", uintStr(v))
		} else {
			c.line("NOT_FOUND")
		}
	case "DEL":
		if len(args) != 1 {
			c.line("ERR usage: DEL <key>")
			return true
		}
		k := storedKey(args[0])
		if c.ws != nil {
			c.ws.hash = pctt.HashKey(k)
		}
		if s.st.Delete(k) {
			c.line("OK")
		} else {
			c.line("NOT_FOUND")
		}
	case "SCAN":
		if len(args) != 2 {
			c.line("ERR usage: SCAN <prefix> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[1])
		if err != nil || limit < 1 {
			c.line("ERR bad limit")
			return true
		}
		// The stored prefix has no terminator: scan the raw bytes. Each
		// match streams out through the buffered writer immediately.
		c.scan([]byte(args[0]), limit)
	case "RANGE":
		if len(args) != 3 {
			c.line("ERR usage: RANGE <lo> <hi> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[2])
		if err != nil || limit < 1 {
			c.line("ERR bad limit")
			return true
		}
		c.rangeScan(storedKey(args[0]), storedKey(args[1]), limit)
	case "LEN":
		c.line("LEN", strconv.Itoa(s.st.Len()))
	case "STATS":
		// The full observability snapshot — counters, live gauges, and
		// latency quantiles when enabled — as sorted key=value pairs: the
		// wire-protocol twin of the diagnostics server's /statsz.
		c.line("STATS", s.reg.Snapshot().String())
	case "QUIT":
		c.line("BYE")
		return false
	default:
		c.line("ERR unknown command", cmd)
	}
	return true
}

// SaveSnapshot persists the store to path via store.Save (sharded stores
// write one file per shard, everything else one atomic art-format file).
func (s *Server) SaveSnapshot(path string) error {
	return store.Save(s.st, path)
}

// LoadSnapshot replaces the store's contents with the snapshot at path.
// Call before serving traffic.
func (s *Server) LoadSnapshot(path string) error {
	return store.Load(s.st, path)
}
