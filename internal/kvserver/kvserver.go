// Package kvserver implements the line-protocol key-value service behind
// cmd/dcart-kv: a thread-safe adaptive radix tree served over TCP, with
// ordered prefix scans and checksummed snapshots. It is the "key-value
// store" deployment scenario the DCART paper's introduction motivates,
// using the same lock-coupling concurrent ART as the paper's CPU
// baselines.
package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/art"
	"repro/internal/metrics"
	"repro/internal/olc"
)

// maxScanLimit caps SCAN responses.
const maxScanLimit = 10_000

// Server is the key-value service. Safe for concurrent use; Serve is run
// once per connection.
type Server struct {
	tree *olc.Tree
	ms   *metrics.Set
}

// New returns an empty server.
func New() *Server {
	ms := metrics.NewSet()
	return &Server{tree: olc.New(ms), ms: ms}
}

// Len returns the number of stored keys.
func (s *Server) Len() int { return s.tree.Len() }

// storedKey appends the 0x00 terminator so client keys are prefix-safe.
func storedKey(tok string) []byte {
	k := make([]byte, len(tok)+1)
	copy(k, tok)
	return k
}

// clientKey strips the terminator for display.
func clientKey(k []byte) string {
	if n := len(k); n > 0 && k[n-1] == 0 {
		return string(k[:n-1])
	}
	return string(k)
}

// Serve handles one connection until QUIT, EOF, or a write error.
func (s *Server) Serve(conn io.ReadWriteCloser) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !s.handle(w, line) {
			break
		}
		if w.Flush() != nil {
			return
		}
	}
	w.Flush()
}

// handle executes one command line; returns false to close the session.
func (s *Server) handle(w io.Writer, line string) bool {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "PUT":
		if len(args) != 2 {
			fmt.Fprintln(w, "ERR usage: PUT <key> <uint64>")
			return true
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(w, "ERR bad value:", err)
			return true
		}
		if s.tree.Put(storedKey(args[0]), v) {
			fmt.Fprintln(w, "OK replaced")
		} else {
			fmt.Fprintln(w, "OK")
		}
	case "GET":
		if len(args) != 1 {
			fmt.Fprintln(w, "ERR usage: GET <key>")
			return true
		}
		if v, ok := s.tree.Get(storedKey(args[0])); ok {
			fmt.Fprintln(w, "VALUE", v)
		} else {
			fmt.Fprintln(w, "NOT_FOUND")
		}
	case "DEL":
		if len(args) != 1 {
			fmt.Fprintln(w, "ERR usage: DEL <key>")
			return true
		}
		if s.tree.Delete(storedKey(args[0])) {
			fmt.Fprintln(w, "OK")
		} else {
			fmt.Fprintln(w, "NOT_FOUND")
		}
	case "SCAN":
		if len(args) != 2 {
			fmt.Fprintln(w, "ERR usage: SCAN <prefix> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[1])
		if err != nil || limit < 1 {
			fmt.Fprintln(w, "ERR bad limit")
			return true
		}
		if limit > maxScanLimit {
			limit = maxScanLimit
		}
		n := 0
		// The stored prefix has no terminator: scan the raw bytes.
		s.tree.ScanPrefix([]byte(args[0]), func(k []byte, v uint64) bool {
			fmt.Fprintln(w, "KEY", clientKey(k), v)
			n++
			return n < limit
		})
		fmt.Fprintln(w, "END")
	case "RANGE":
		if len(args) != 3 {
			fmt.Fprintln(w, "ERR usage: RANGE <lo> <hi> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[2])
		if err != nil || limit < 1 {
			fmt.Fprintln(w, "ERR bad limit")
			return true
		}
		if limit > maxScanLimit {
			limit = maxScanLimit
		}
		n := 0
		s.tree.AscendRange(storedKey(args[0]), storedKey(args[1]),
			func(k []byte, v uint64) bool {
				fmt.Fprintln(w, "KEY", clientKey(k), v)
				n++
				return n < limit
			})
		fmt.Fprintln(w, "END")
	case "LEN":
		fmt.Fprintln(w, "LEN", s.tree.Len())
	case "STATS":
		fmt.Fprintln(w, "STATS", s.ms.String())
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return false
	default:
		fmt.Fprintln(w, "ERR unknown command", cmd)
	}
	return true
}

// SaveSnapshot writes the store to path atomically (temp file + rename)
// in the art snapshot format.
func (s *Server) SaveSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := art.WriteSnapshot(f, s.tree.Len(), s.tree.Walk)
	cerr := f.Close()
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if cerr != nil {
		os.Remove(tmp)
		return cerr
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot replaces the store's contents with the snapshot at path.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return art.ReadSnapshotEntries(f, func(key []byte, value uint64) error {
		s.tree.Put(key, value)
		return nil
	})
}
