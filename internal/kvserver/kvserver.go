// Package kvserver implements the line-protocol key-value service behind
// cmd/dcart-kv: a thread-safe adaptive radix tree served over TCP, with
// ordered prefix scans and checksummed snapshots. It is the "key-value
// store" deployment scenario the DCART paper's introduction motivates,
// using the same lock-coupling concurrent ART as the paper's CPU
// baselines.
//
// Two execution modes:
//
//   - New: point operations go straight to the tree, one descent per
//     command (the baseline discipline).
//   - NewBatched: point operations route through the parallel CTT engine
//     (internal/pctt), whose combining front end coalesces concurrent
//     requests that share a key prefix — the paper's CTT pipeline applied
//     to live TCP traffic. Scans, LEN, and snapshots read the shared tree
//     directly; a connection's own writes are visible because every
//     Batcher call blocks until applied.
package kvserver

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/art"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/olc"
	"repro/internal/pctt"
)

// maxScanLimit caps SCAN responses.
const maxScanLimit = 10_000

// Per-connection buffer pools: the scanner's line buffer, the buffered
// response writer, and the response-line scratch are all recycled across
// connections, so a busy accept loop stops churning the allocator.
var (
	scanBufPool = sync.Pool{
		New: func() any { return make([]byte, 64<<10) },
	}
	writerPool = sync.Pool{
		New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) },
	}
	lineBufPool = sync.Pool{
		New: func() any { b := make([]byte, 0, 256); return &b },
	}
)

// store is the point-operation interface both execution modes satisfy.
type store interface {
	Get(key []byte) (uint64, bool)
	Put(key []byte, value uint64) bool
	Delete(key []byte) bool
}

// Server is the key-value service. Safe for concurrent use; Serve is run
// once per connection.
type Server struct {
	tree  *olc.Tree
	ms    *metrics.Set
	ops   store        // point-op path: the tree, or the batching engine
	batch *pctt.Engine // non-nil in batched mode
	reg   *obs.Registry
}

// New returns an empty server executing point operations directly.
func New() *Server {
	ms := metrics.NewSet()
	tree := olc.New(ms)
	s := &Server{tree: tree, ms: ms, ops: tree}
	s.initObs()
	return s
}

// NewBatched returns an empty server whose point operations flow through
// the parallel CTT engine with the given worker count (<=0 for the
// default). Call Close to stop the engine's workers.
func NewBatched(workers int) *Server {
	return NewBatchedConfig(pctt.Config{Workers: workers})
}

// NewBatchedConfig is NewBatched with the full engine configuration
// exposed — combine-window deadline (MaxDelay/MinBatch), queue shaping
// (QueueDepth/MaxInflight), and work stealing (NoSteal) — for servers that
// tune the latency/throughput trade-off per deployment.
func NewBatchedConfig(cfg pctt.Config) *Server {
	e := pctt.New(cfg)
	s := &Server{tree: e.Tree(), ms: e.Metrics(), ops: e, batch: e}
	s.initObs()
	return s
}

// initObs builds the server's observability registry: the engine's live
// gauges/counters/histograms in batched mode, the tree's counter set in
// direct mode, plus the key-count gauge. The same registry backs the STATS
// wire command and (when dcart-kv passes it to obs.Serve) the diagnostics
// HTTP endpoint.
func (s *Server) initObs() {
	s.reg = obs.NewRegistry()
	if s.batch != nil {
		s.batch.RegisterObs(s.reg)
	} else {
		s.reg.RegisterCounters("kv", "dcart",
			"tree event counter (see internal/metrics for the vocabulary)", s.ms)
	}
	s.reg.RegisterGauge("kv", "dcart_keys", "", "keys stored in the tree",
		func() float64 { return float64(s.tree.Len()) })
}

// Registry exposes the server's observability registry (for the
// diagnostics HTTP server).
func (s *Server) Registry() *obs.Registry { return s.reg }

// StatsSnapshot returns the same point-in-time snapshot the STATS wire
// command renders.
func (s *Server) StatsSnapshot() *obs.Snapshot { return s.reg.Snapshot() }

// Close stops the batching engine's workers, if any.
func (s *Server) Close() error {
	if s.batch != nil {
		return s.batch.Close()
	}
	return nil
}

// Batched reports whether point operations flow through the CTT pipeline.
func (s *Server) Batched() bool { return s.batch != nil }

// Len returns the number of stored keys.
func (s *Server) Len() int { return s.tree.Len() }

// storedKey appends the 0x00 terminator so client keys are prefix-safe.
func storedKey(tok string) []byte {
	k := make([]byte, len(tok)+1)
	copy(k, tok)
	return k
}

// clientKey strips the terminator for display.
func clientKey(k []byte) []byte {
	if n := len(k); n > 0 && k[n-1] == 0 {
		return k[:n-1]
	}
	return k
}

// connState is the per-connection state: the pooled response writer plus a
// pooled scratch buffer for formatting response lines without allocating.
type connState struct {
	s       *Server
	w       *bufio.Writer
	scratch []byte
}

// line formats and streams one response line (parts joined by spaces).
func (c *connState) line(parts ...string) {
	b := c.scratch[:0]
	for i, p := range parts {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, p...)
	}
	b = append(b, '\n')
	c.scratch = b
	c.w.Write(b)
}

// kvLine streams one "KEY <key> <value>" line. Scan callbacks call this
// while holding tree read locks, so it must not block on anything but the
// buffered writer itself; results stream out incrementally instead of
// being accumulated.
func (c *connState) kvLine(k []byte, v uint64) {
	b := append(c.scratch[:0], "KEY "...)
	b = append(b, clientKey(k)...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\n')
	c.scratch = b
	c.w.Write(b)
}

func uintStr(v uint64) string { return strconv.FormatUint(v, 10) }

// Serve handles one connection until QUIT, EOF, or a write error.
func (s *Server) Serve(conn io.ReadWriteCloser) {
	defer conn.Close()

	sc := bufio.NewScanner(conn)
	buf := scanBufPool.Get().([]byte)
	defer scanBufPool.Put(buf) //nolint:staticcheck // slice is pooled whole
	sc.Buffer(buf, len(buf))

	w := writerPool.Get().(*bufio.Writer)
	w.Reset(conn)
	defer func() {
		w.Reset(io.Discard) // drop the conn reference before pooling
		writerPool.Put(w)
	}()

	scratch := lineBufPool.Get().(*[]byte)
	c := &connState{s: s, w: w, scratch: (*scratch)[:0]}
	defer func() {
		*scratch = c.scratch[:0]
		lineBufPool.Put(scratch)
	}()

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !c.handle(line) {
			break
		}
		if w.Flush() != nil {
			return
		}
	}
	w.Flush()
}

// handle executes one command line; returns false to close the session.
func (c *connState) handle(line string) bool {
	s := c.s
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "PUT":
		if len(args) != 2 {
			c.line("ERR usage: PUT <key> <uint64>")
			return true
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			c.line("ERR bad value:", err.Error())
			return true
		}
		if s.ops.Put(storedKey(args[0]), v) {
			c.line("OK replaced")
		} else {
			c.line("OK")
		}
	case "GET":
		if len(args) != 1 {
			c.line("ERR usage: GET <key>")
			return true
		}
		if v, ok := s.ops.Get(storedKey(args[0])); ok {
			c.line("VALUE", uintStr(v))
		} else {
			c.line("NOT_FOUND")
		}
	case "DEL":
		if len(args) != 1 {
			c.line("ERR usage: DEL <key>")
			return true
		}
		if s.ops.Delete(storedKey(args[0])) {
			c.line("OK")
		} else {
			c.line("NOT_FOUND")
		}
	case "SCAN":
		if len(args) != 2 {
			c.line("ERR usage: SCAN <prefix> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[1])
		if err != nil || limit < 1 {
			c.line("ERR bad limit")
			return true
		}
		if limit > maxScanLimit {
			limit = maxScanLimit
		}
		n := 0
		// The stored prefix has no terminator: scan the raw bytes. Each
		// match streams out through the buffered writer immediately.
		s.tree.ScanPrefix([]byte(args[0]), func(k []byte, v uint64) bool {
			c.kvLine(k, v)
			n++
			return n < limit
		})
		c.line("END")
	case "RANGE":
		if len(args) != 3 {
			c.line("ERR usage: RANGE <lo> <hi> <limit>")
			return true
		}
		limit, err := strconv.Atoi(args[2])
		if err != nil || limit < 1 {
			c.line("ERR bad limit")
			return true
		}
		if limit > maxScanLimit {
			limit = maxScanLimit
		}
		n := 0
		s.tree.AscendRange(storedKey(args[0]), storedKey(args[1]),
			func(k []byte, v uint64) bool {
				c.kvLine(k, v)
				n++
				return n < limit
			})
		c.line("END")
	case "LEN":
		c.line("LEN", strconv.Itoa(s.tree.Len()))
	case "STATS":
		// The full observability snapshot — counters, live gauges, and
		// latency quantiles when enabled — as sorted key=value pairs: the
		// wire-protocol twin of the diagnostics server's /statsz.
		c.line("STATS", s.reg.Snapshot().String())
	case "QUIT":
		c.line("BYE")
		return false
	default:
		c.line("ERR unknown command", cmd)
	}
	return true
}

// SaveSnapshot writes the store to path atomically (temp file + rename)
// in the art snapshot format.
func (s *Server) SaveSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := art.WriteSnapshot(f, s.tree.Len(), s.tree.Walk)
	cerr := f.Close()
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if cerr != nil {
		os.Remove(tmp)
		return cerr
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot replaces the store's contents with the snapshot at path.
// Call before serving traffic (it writes the tree directly).
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return art.ReadSnapshotEntries(f, func(key []byte, value uint64) error {
		s.tree.Put(key, value)
		return nil
	})
}
