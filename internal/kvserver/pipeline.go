// The pipelined connection path: one reader goroutine parses commands
// continuously and submits point operations to the store asynchronously,
// while a writer goroutine completes their responses in protocol order
// with coalesced flushes. This is the software analogue of the paper's
// host interface feeding the PCU's request queue (Fig 6): the wire keeps
// the engine's combine window supplied with several in-flight operations
// per connection instead of at most one, which is what lets the CTT
// pipeline's combining see a single client's traffic at all.
//
// Ordering contract (identical to the lockstep path, observable at the
// protocol level):
//
//   - Responses arrive in command order (the bounded items channel is the
//     per-connection reorder window — completion is in-order even though
//     execution inside the store may not be).
//   - Read-your-writes per key: the store applies one producer's
//     submissions per key in order, and the blocking/async boundary never
//     reorders them.
//   - SCAN, RANGE, LEN, and STATS are pipeline barriers: the reader stops
//     submitting until the writer has drained every earlier response and
//     run the command itself, so an ordered read observes exactly the
//     session's earlier acknowledged writes (snapshots barrier the same
//     way one level up: dcart-kv saves only after every connection
//     drained and the store closed).
//
// Backpressure is the window itself: a reader that gets pipeDepth
// responses ahead of the writer blocks submitting, which in turn stops
// reading from the socket — a fast client is throttled by TCP flow
// control, never by unbounded server memory.
package kvserver

import (
	"bufio"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/pctt"
	"repro/internal/store"
)

// pipeKind discriminates the pipelined response items.
type pipeKind uint8

const (
	pipeLiteral pipeKind = iota // pre-formatted response (errors, BYE)
	pipeGet
	pipePut
	pipeDelete
	pipeBarrier // runs on the writer after the window drained
)

// pipeItem is one in-flight response slot. Exactly one is enqueued per
// command, in protocol order.
type pipeItem struct {
	kind pipeKind
	tok  store.Pending // completion token for point ops
	resp []byte        // pipeLiteral: the response line(s), owned
	bar  func(*connState)
	done chan struct{} // pipeBarrier: signaled after bar ran
	quit bool          // close the session after this response
	ws   *wireSpan     // wire-layer stage stamps (traced or journaled ops)
}

// wireSpan accumulates one operation's stage stamps across the pipelined
// wire: the reader stamps parse and submit, the writer stamps the window
// dequeue and the store wait, and the span finalizes at the flush that
// actually put the response on the wire. Its trace ID is the engine's own
// key hash (pctt.HashKey), so a sampled op's wire span and engine span
// compose into one waterfall.
type wireSpan struct {
	hash   uint64
	op     string
	traced bool // chosen by the tracer's sampler (journal-only spans are not)

	lineAt      int64 // readLine returned (parse begins)
	parsedAt    int64 // command parsed, submit begins
	submittedAt int64 // store async submit returned (engine backpressure ends)
	dequeuedAt  int64 // writer picked the item out of the reorder window
	waitedAt    int64 // store completion token resolved (response formatted)
}

// finalize builds the completed wire span once its response hit the wire
// and hands it to the tracer and journal.
func (ws *wireSpan) finalize(flushedAt int64, tr *obs.Tracer, j *obs.Journal) {
	st := make([]obs.Stage, 0, 5)
	at := ws.lineAt
	push := func(name string, end int64) {
		if end < at {
			end = at // wall-clock stamps; guard against clock steps
		}
		st = append(st, obs.Stage{Name: name, StartUnixNano: at, EndUnixNano: end})
		at = end
	}
	push("parse", ws.parsedAt)
	push("submit", ws.submittedAt)
	push("window", ws.dequeuedAt)
	push("execute", ws.waitedAt)
	push("flush", flushedAt)
	s := obs.Span{
		TraceID:        ws.hash,
		Op:             ws.op,
		Worker:         -1, // the wire has no pipeline worker
		Bucket:         -1,
		SubmitUnixNano: ws.lineAt,
		BatchUnixNano:  st[3].StartUnixNano, // execute begins
		DoneUnixNano:   at,
		QueueWaitNanos: st[3].StartUnixNano - ws.lineAt,
		ExecNanos:      at - st[3].StartUnixNano,
		Layer:          "wire",
		Stages:         st,
	}
	if ws.traced && tr != nil {
		tr.Record(s)
	}
	if j != nil {
		j.Observe(s)
	}
}

// finalizeLockstep is finalize for the lockstep path, whose one-at-a-time
// loop has no submit or window stages: handle() covers parse+execute in
// one interval, then the per-command flush.
func (ws *wireSpan) finalizeLockstep(flushedAt int64, tr *obs.Tracer, j *obs.Journal) {
	exec := ws.waitedAt
	if exec < ws.lineAt {
		exec = ws.lineAt
	}
	if flushedAt < exec {
		flushedAt = exec
	}
	s := obs.Span{
		TraceID:        ws.hash,
		Op:             ws.op,
		Worker:         -1,
		Bucket:         -1,
		SubmitUnixNano: ws.lineAt,
		BatchUnixNano:  ws.lineAt,
		DoneUnixNano:   flushedAt,
		ExecNanos:      exec - ws.lineAt,
		Layer:          "wire",
		Stages: []obs.Stage{
			{Name: "execute", StartUnixNano: ws.lineAt, EndUnixNano: exec},
			{Name: "flush", StartUnixNano: exec, EndUnixNano: flushedAt},
		},
	}
	if ws.traced && tr != nil {
		tr.Record(s)
	}
	if j != nil {
		j.Observe(s)
	}
}

// beginWireSpan makes the per-command wire sampling decision: every op is
// stamped when the slow-op journal is armed, plus the tracer's own 1-in-N
// choice. lineAt is the pre-parse stamp taken when readLine returned; zero
// means wire observability is off entirely and no span is made.
func (s *Server) beginWireSpan(lineAt int64, op string, key []byte) *wireSpan {
	if lineAt == 0 {
		return nil
	}
	traced := s.tracer != nil && s.tracer.Sample()
	if !traced && s.journal == nil {
		return nil
	}
	return &wireSpan{
		hash:     pctt.HashKey(key),
		op:       op,
		traced:   traced,
		lineAt:   lineAt,
		parsedAt: time.Now().UnixNano(),
	}
}

// servePipelined runs one connection's reader loop, with the response
// writer on a second goroutine.
func (s *Server) servePipelined(r *bufio.Reader, c *connState) {
	items := make(chan pipeItem, s.pipeDepth)
	writerDone := make(chan struct{})
	go s.pipeWriter(items, c, writerDone)

	// One reusable completion signal: at most one barrier is ever
	// outstanding because the reader blocks on it.
	barDone := make(chan struct{}, 1)
	barrier := func(fn func(*connState)) {
		items <- pipeItem{kind: pipeBarrier, bar: fn, done: barDone}
		<-barDone
	}
	literal := func(parts ...string) {
		items <- pipeItem{kind: pipeLiteral, resp: respLine(parts...)}
	}

	// obsOn gates the wire-span clock reads: zero lineAt short-circuits
	// beginWireSpan, so un-observed connections never touch the clock.
	obsOn := s.tracer != nil || s.journal != nil

read:
	for {
		raw, tooLong, err := readLine(r)
		if tooLong {
			literal("ERR line too long")
			if err != nil {
				break
			}
			continue
		}
		var lineAt int64
		if obsOn {
			lineAt = time.Now().UnixNano()
		}
		fields := strings.Fields(string(raw))
		if len(fields) > 0 {
			cmd := strings.ToUpper(fields[0])
			args := fields[1:]
			switch cmd {
			case "PUT":
				if len(args) != 2 {
					literal("ERR usage: PUT <key> <uint64>")
					break
				}
				v, perr := strconv.ParseUint(args[1], 10, 64)
				if perr != nil {
					literal("ERR bad value:", perr.Error())
					break
				}
				k := storedKey(args[0])
				ws := s.beginWireSpan(lineAt, "put", k)
				s.stats.submitted()
				tok := s.st.PutAsync(k, v)
				if ws != nil {
					ws.submittedAt = time.Now().UnixNano()
				}
				items <- pipeItem{kind: pipePut, tok: tok, ws: ws}
			case "GET":
				if len(args) != 1 {
					literal("ERR usage: GET <key>")
					break
				}
				k := storedKey(args[0])
				ws := s.beginWireSpan(lineAt, "get", k)
				s.stats.submitted()
				tok := s.st.GetAsync(k)
				if ws != nil {
					ws.submittedAt = time.Now().UnixNano()
				}
				items <- pipeItem{kind: pipeGet, tok: tok, ws: ws}
			case "DEL":
				if len(args) != 1 {
					literal("ERR usage: DEL <key>")
					break
				}
				k := storedKey(args[0])
				ws := s.beginWireSpan(lineAt, "delete", k)
				s.stats.submitted()
				tok := s.st.DeleteAsync(k)
				if ws != nil {
					ws.submittedAt = time.Now().UnixNano()
				}
				items <- pipeItem{kind: pipeDelete, tok: tok, ws: ws}
			case "SCAN":
				if len(args) != 2 {
					literal("ERR usage: SCAN <prefix> <limit>")
					break
				}
				limit, lerr := strconv.Atoi(args[1])
				if lerr != nil || limit < 1 {
					literal("ERR bad limit")
					break
				}
				prefix := []byte(args[0])
				barrier(func(c *connState) { c.scan(prefix, limit) })
			case "RANGE":
				if len(args) != 3 {
					literal("ERR usage: RANGE <lo> <hi> <limit>")
					break
				}
				limit, lerr := strconv.Atoi(args[2])
				if lerr != nil || limit < 1 {
					literal("ERR bad limit")
					break
				}
				lo, hi := storedKey(args[0]), storedKey(args[1])
				barrier(func(c *connState) { c.rangeScan(lo, hi, limit) })
			case "LEN":
				barrier(func(c *connState) {
					c.line("LEN", strconv.Itoa(s.st.Len()))
				})
			case "STATS":
				barrier(func(c *connState) {
					c.line("STATS", s.reg.Snapshot().String())
				})
			case "QUIT":
				items <- pipeItem{kind: pipeLiteral, resp: respLine("BYE"), quit: true}
				break read
			default:
				literal("ERR unknown command", cmd)
			}
		}
		if err != nil {
			break
		}
	}
	close(items)
	<-writerDone
}

// pipeWriter completes responses in protocol order: literal responses are
// copied out, point-op tokens are waited (this is where in-order
// completion meets out-of-order execution), barriers run inline. Flushes
// coalesce — one per flushEvery responses, plus one whenever the window
// runs dry so no response ever waits on an idle connection. On a write
// error the writer goes dark but keeps draining, so every submitted token
// is still waited and the reader is never wedged on a full window.
func (s *Server) pipeWriter(items <-chan pipeItem, c *connState, done chan<- struct{}) {
	defer close(done)
	dead := false
	sinceFlush := 0
	// spans holds the stamped wire spans whose responses are buffered but
	// not yet flushed; they finalize (tracer + slow-op journal) when the
	// flush that carries their responses happens, so the flush stage
	// measures real coalescing delay. Bounded by the flush cadence.
	var spans []*wireSpan
	flush := func() {
		if !dead && c.flush() != nil {
			dead = true
		}
		sinceFlush = 0
		if len(spans) > 0 {
			flushedAt := time.Now().UnixNano()
			for _, ws := range spans {
				ws.finalize(flushedAt, s.tracer, s.journal)
			}
			spans = spans[:0]
		}
	}
	for {
		var it pipeItem
		var ok bool
		select {
		case it, ok = <-items:
		default:
			// Window dry: everything answered so far goes out before we
			// block waiting for more commands.
			flush()
			c.track.backlog.Store(0)
			it, ok = <-items
		}
		if !ok {
			flush()
			c.track.backlog.Store(0)
			return
		}
		occupancy := int64(len(items)) + 1
		c.track.backlog.Store(occupancy)
		if it.ws != nil {
			it.ws.dequeuedAt = time.Now().UnixNano()
		}
		switch it.kind {
		case pipeLiteral:
			if !dead {
				c.w.Write(it.resp)
			}
		case pipeGet:
			v, found := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if found {
					c.line("VALUE", uintStr(v))
				} else {
					c.line("NOT_FOUND")
				}
			}
		case pipePut:
			_, replaced := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if replaced {
					c.line("OK replaced")
				} else {
					c.line("OK")
				}
			}
		case pipeDelete:
			_, found := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if found {
					c.line("OK")
				} else {
					c.line("NOT_FOUND")
				}
			}
		case pipeBarrier:
			if !dead {
				it.bar(c)
			}
			it.done <- struct{}{}
		}
		if it.ws != nil {
			it.ws.waitedAt = time.Now().UnixNano()
			spans = append(spans, it.ws)
		}
		s.stats.responses.Add(1)
		s.stats.depthSum.Add(occupancy)
		sinceFlush++
		if sinceFlush >= s.flushEvery || it.quit {
			flush()
		}
	}
}

// respLine renders one response line into an owned buffer (the pipelined
// reader cannot use the writer-owned scratch).
func respLine(parts ...string) []byte {
	n := len(parts)
	for _, p := range parts {
		n += len(p)
	}
	b := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, p...)
	}
	return append(b, '\n')
}

// scan executes SCAN against the store, streaming rows through the
// writer's connState (shared by the lockstep handle path).
func (c *connState) scan(prefix []byte, limit int) {
	s := c.s
	clipped := limit > s.maxScan
	if clipped {
		limit = s.maxScan
	}
	truncated := s.st.Scan(prefix, limit, func(k []byte, v uint64) bool {
		c.kvLine(k, v)
		return true
	})
	c.scanEnd(clipped, truncated)
}

// rangeScan executes RANGE under the same contract as scan.
func (c *connState) rangeScan(lo, hi []byte, limit int) {
	s := c.s
	clipped := limit > s.maxScan
	if clipped {
		limit = s.maxScan
	}
	truncated := s.st.Range(lo, hi, limit, func(k []byte, v uint64) bool {
		c.kvLine(k, v)
		return true
	})
	c.scanEnd(clipped, truncated)
}
