// The pipelined connection path: one reader goroutine parses commands
// continuously and submits point operations to the store asynchronously,
// while a writer goroutine completes their responses in protocol order
// with coalesced flushes. This is the software analogue of the paper's
// host interface feeding the PCU's request queue (Fig 6): the wire keeps
// the engine's combine window supplied with several in-flight operations
// per connection instead of at most one, which is what lets the CTT
// pipeline's combining see a single client's traffic at all.
//
// Ordering contract (identical to the lockstep path, observable at the
// protocol level):
//
//   - Responses arrive in command order (the bounded items channel is the
//     per-connection reorder window — completion is in-order even though
//     execution inside the store may not be).
//   - Read-your-writes per key: the store applies one producer's
//     submissions per key in order, and the blocking/async boundary never
//     reorders them.
//   - SCAN, RANGE, LEN, and STATS are pipeline barriers: the reader stops
//     submitting until the writer has drained every earlier response and
//     run the command itself, so an ordered read observes exactly the
//     session's earlier acknowledged writes (snapshots barrier the same
//     way one level up: dcart-kv saves only after every connection
//     drained and the store closed).
//
// Backpressure is the window itself: a reader that gets pipeDepth
// responses ahead of the writer blocks submitting, which in turn stops
// reading from the socket — a fast client is throttled by TCP flow
// control, never by unbounded server memory.
package kvserver

import (
	"bufio"
	"strconv"
	"strings"

	"repro/internal/store"
)

// pipeKind discriminates the pipelined response items.
type pipeKind uint8

const (
	pipeLiteral pipeKind = iota // pre-formatted response (errors, BYE)
	pipeGet
	pipePut
	pipeDelete
	pipeBarrier // runs on the writer after the window drained
)

// pipeItem is one in-flight response slot. Exactly one is enqueued per
// command, in protocol order.
type pipeItem struct {
	kind pipeKind
	tok  store.Pending // completion token for point ops
	resp []byte        // pipeLiteral: the response line(s), owned
	bar  func(*connState)
	done chan struct{} // pipeBarrier: signaled after bar ran
	quit bool          // close the session after this response
}

// servePipelined runs one connection's reader loop, with the response
// writer on a second goroutine.
func (s *Server) servePipelined(r *bufio.Reader, c *connState) {
	items := make(chan pipeItem, s.pipeDepth)
	writerDone := make(chan struct{})
	go s.pipeWriter(items, c, writerDone)

	// One reusable completion signal: at most one barrier is ever
	// outstanding because the reader blocks on it.
	barDone := make(chan struct{}, 1)
	barrier := func(fn func(*connState)) {
		items <- pipeItem{kind: pipeBarrier, bar: fn, done: barDone}
		<-barDone
	}
	literal := func(parts ...string) {
		items <- pipeItem{kind: pipeLiteral, resp: respLine(parts...)}
	}

read:
	for {
		raw, tooLong, err := readLine(r)
		if tooLong {
			literal("ERR line too long")
			if err != nil {
				break
			}
			continue
		}
		fields := strings.Fields(string(raw))
		if len(fields) > 0 {
			cmd := strings.ToUpper(fields[0])
			args := fields[1:]
			switch cmd {
			case "PUT":
				if len(args) != 2 {
					literal("ERR usage: PUT <key> <uint64>")
					break
				}
				v, perr := strconv.ParseUint(args[1], 10, 64)
				if perr != nil {
					literal("ERR bad value:", perr.Error())
					break
				}
				s.stats.submitted()
				items <- pipeItem{kind: pipePut, tok: s.st.PutAsync(storedKey(args[0]), v)}
			case "GET":
				if len(args) != 1 {
					literal("ERR usage: GET <key>")
					break
				}
				s.stats.submitted()
				items <- pipeItem{kind: pipeGet, tok: s.st.GetAsync(storedKey(args[0]))}
			case "DEL":
				if len(args) != 1 {
					literal("ERR usage: DEL <key>")
					break
				}
				s.stats.submitted()
				items <- pipeItem{kind: pipeDelete, tok: s.st.DeleteAsync(storedKey(args[0]))}
			case "SCAN":
				if len(args) != 2 {
					literal("ERR usage: SCAN <prefix> <limit>")
					break
				}
				limit, lerr := strconv.Atoi(args[1])
				if lerr != nil || limit < 1 {
					literal("ERR bad limit")
					break
				}
				prefix := []byte(args[0])
				barrier(func(c *connState) { c.scan(prefix, limit) })
			case "RANGE":
				if len(args) != 3 {
					literal("ERR usage: RANGE <lo> <hi> <limit>")
					break
				}
				limit, lerr := strconv.Atoi(args[2])
				if lerr != nil || limit < 1 {
					literal("ERR bad limit")
					break
				}
				lo, hi := storedKey(args[0]), storedKey(args[1])
				barrier(func(c *connState) { c.rangeScan(lo, hi, limit) })
			case "LEN":
				barrier(func(c *connState) {
					c.line("LEN", strconv.Itoa(s.st.Len()))
				})
			case "STATS":
				barrier(func(c *connState) {
					c.line("STATS", s.reg.Snapshot().String())
				})
			case "QUIT":
				items <- pipeItem{kind: pipeLiteral, resp: respLine("BYE"), quit: true}
				break read
			default:
				literal("ERR unknown command", cmd)
			}
		}
		if err != nil {
			break
		}
	}
	close(items)
	<-writerDone
}

// pipeWriter completes responses in protocol order: literal responses are
// copied out, point-op tokens are waited (this is where in-order
// completion meets out-of-order execution), barriers run inline. Flushes
// coalesce — one per flushEvery responses, plus one whenever the window
// runs dry so no response ever waits on an idle connection. On a write
// error the writer goes dark but keeps draining, so every submitted token
// is still waited and the reader is never wedged on a full window.
func (s *Server) pipeWriter(items <-chan pipeItem, c *connState, done chan<- struct{}) {
	defer close(done)
	dead := false
	sinceFlush := 0
	flush := func() {
		if !dead && c.flush() != nil {
			dead = true
		}
		sinceFlush = 0
	}
	for {
		var it pipeItem
		var ok bool
		select {
		case it, ok = <-items:
		default:
			// Window dry: everything answered so far goes out before we
			// block waiting for more commands.
			flush()
			it, ok = <-items
		}
		if !ok {
			flush()
			return
		}
		occupancy := int64(len(items)) + 1
		switch it.kind {
		case pipeLiteral:
			if !dead {
				c.w.Write(it.resp)
			}
		case pipeGet:
			v, found := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if found {
					c.line("VALUE", uintStr(v))
				} else {
					c.line("NOT_FOUND")
				}
			}
		case pipePut:
			_, replaced := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if replaced {
					c.line("OK replaced")
				} else {
					c.line("OK")
				}
			}
		case pipeDelete:
			_, found := it.tok.Wait()
			s.stats.inflight.Add(-1)
			if !dead {
				if found {
					c.line("OK")
				} else {
					c.line("NOT_FOUND")
				}
			}
		case pipeBarrier:
			if !dead {
				it.bar(c)
			}
			it.done <- struct{}{}
		}
		s.stats.responses.Add(1)
		s.stats.depthSum.Add(occupancy)
		sinceFlush++
		if sinceFlush >= s.flushEvery || it.quit {
			flush()
		}
	}
}

// respLine renders one response line into an owned buffer (the pipelined
// reader cannot use the writer-owned scratch).
func respLine(parts ...string) []byte {
	n := len(parts)
	for _, p := range parts {
		n += len(p)
	}
	b := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, p...)
	}
	return append(b, '\n')
}

// scan executes SCAN against the store, streaming rows through the
// writer's connState (shared by the lockstep handle path).
func (c *connState) scan(prefix []byte, limit int) {
	s := c.s
	clipped := limit > s.maxScan
	if clipped {
		limit = s.maxScan
	}
	truncated := s.st.Scan(prefix, limit, func(k []byte, v uint64) bool {
		c.kvLine(k, v)
		return true
	})
	c.scanEnd(clipped, truncated)
}

// rangeScan executes RANGE under the same contract as scan.
func (c *connState) rangeScan(lo, hi []byte, limit int) {
	s := c.s
	clipped := limit > s.maxScan
	if clipped {
		limit = s.maxScan
	}
	truncated := s.st.Range(lo, hi, limit, func(k []byte, v uint64) bool {
		c.kvLine(k, v)
		return true
	})
	c.scanEnd(clipped, truncated)
}
