package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/pctt"
	"repro/internal/store"
)

// session opens an in-memory client connection against srv.
type session struct {
	conn net.Conn
	r    *bufio.Reader
	done chan struct{}
}

func newSession(srv *Server) *session {
	client, server := net.Pipe()
	s := &session{conn: client, r: bufio.NewReader(client), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		srv.Serve(server)
	}()
	return s
}

func (s *session) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(s.conn, line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
	resp, err := s.r.ReadString('\n')
	if err != nil {
		t.Fatalf("recv after %q: %v", line, err)
	}
	return strings.TrimSpace(resp)
}

// cmdLines reads until the END sentinel (plain or TRUNCATED), returning
// the body lines only.
func (s *session) cmdLines(t *testing.T, line string) []string {
	t.Helper()
	out, _ := s.cmdScan(t, line)
	return out
}

// cmdScan reads a scan response, returning the body lines and the
// terminator line ("END" or "END TRUNCATED").
func (s *session) cmdScan(t *testing.T, line string) (body []string, end string) {
	t.Helper()
	if _, err := fmt.Fprintln(s.conn, line); err != nil {
		t.Fatal(err)
	}
	for {
		resp, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		resp = strings.TrimSpace(resp)
		if resp == "END" || strings.HasPrefix(resp, "END ") {
			return body, resp
		}
		body = append(body, resp)
	}
}

func (s *session) close() {
	s.conn.Close()
	<-s.done
}

func TestPutGetDel(t *testing.T) {
	srv := New()
	c := newSession(srv)
	defer c.close()

	if got := c.cmd(t, "PUT alpha 7"); got != "OK" {
		t.Fatalf("PUT -> %q", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE 7" {
		t.Fatalf("GET -> %q", got)
	}
	if got := c.cmd(t, "PUT alpha 8"); got != "OK replaced" {
		t.Fatalf("overwrite -> %q", got)
	}
	if got := c.cmd(t, "DEL alpha"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "NOT_FOUND" {
		t.Fatalf("GET after DEL -> %q", got)
	}
	if got := c.cmd(t, "DEL alpha"); got != "NOT_FOUND" {
		t.Fatalf("double DEL -> %q", got)
	}
	if got := c.cmd(t, "LEN"); got != "LEN 0" {
		t.Fatalf("LEN -> %q", got)
	}
}

func TestScan(t *testing.T) {
	srv := New()
	c := newSession(srv)
	defer c.close()

	for i, k := range []string{"user:alice", "user:bob", "user:carol", "item:1"} {
		c.cmd(t, fmt.Sprintf("PUT %s %d", k, i))
	}
	lines := c.cmdLines(t, "SCAN user: 10")
	if len(lines) != 3 {
		t.Fatalf("SCAN returned %v", lines)
	}
	if lines[0] != "KEY user:alice 0" || lines[2] != "KEY user:carol 2" {
		t.Fatalf("SCAN order wrong: %v", lines)
	}
	// Limit respected.
	if lines := c.cmdLines(t, "SCAN user: 2"); len(lines) != 2 {
		t.Fatalf("limited SCAN returned %v", lines)
	}
	// Prefix keys are safe: "user" itself can coexist with "user:...".
	c.cmd(t, "PUT user 99")
	if got := c.cmd(t, "GET user"); got != "VALUE 99" {
		t.Fatalf("prefix key -> %q", got)
	}
	if lines := c.cmdLines(t, "SCAN user 10"); len(lines) != 4 {
		t.Fatalf("SCAN user -> %v", lines)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := New()
	c := newSession(srv)
	defer c.close()

	for _, bad := range []string{
		"PUT onlykey", "PUT k notanumber", "GET", "DEL",
		"SCAN p", "SCAN p zero", "FLY me", "SCAN p 0",
	} {
		if got := c.cmd(t, bad); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", bad, got)
		}
	}
	// Errors must not kill the session.
	if got := c.cmd(t, "LEN"); got != "LEN 0" {
		t.Fatalf("session died after errors: %q", got)
	}
}

func TestQuitAndStats(t *testing.T) {
	srv := New()
	c := newSession(srv)
	c.cmd(t, "PUT k 1")
	got := c.cmd(t, "STATS")
	if !strings.HasPrefix(got, "STATS") {
		t.Fatalf("STATS -> %q", got)
	}
	// The STATS line is the observability registry's snapshot: after one
	// PUT it must carry the key-count gauge and the write counter.
	if !strings.Contains(got, "dcart_keys=1") {
		t.Fatalf("STATS missing dcart_keys gauge: %q", got)
	}
	if !strings.Contains(got, "ops_write=1") {
		t.Fatalf("STATS missing write counter: %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	<-c.done // server side closed the session
	c.conn.Close()
}

func TestConcurrentSessions(t *testing.T) {
	srv := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newSession(srv)
			defer c.close()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d:k%d", w, i)
				if got := c.cmd(t, fmt.Sprintf("PUT %s %d", key, i)); got != "OK" {
					t.Errorf("PUT %s -> %q", key, got)
					return
				}
			}
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d:k%d", w, i)
				want := fmt.Sprintf("VALUE %d", i)
				if got := c.cmd(t, "GET "+key); got != want {
					t.Errorf("GET %s -> %q", key, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Len() != 8*200 {
		t.Fatalf("Len = %d", srv.Len())
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")

	srv := New()
	c := newSession(srv)
	for i := 0; i < 500; i++ {
		c.cmd(t, fmt.Sprintf("PUT key%04d %d", i, i))
	}
	c.close()
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	back := New()
	if err := back.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 500 {
		t.Fatalf("restored Len = %d", back.Len())
	}
	c2 := newSession(back)
	defer c2.close()
	if got := c2.cmd(t, "GET key0123"); got != "VALUE 123" {
		t.Fatalf("restored GET -> %q", got)
	}
	// Atomic save leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp snapshot file left behind")
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	err := New().LoadSnapshot(filepath.Join(t.TempDir(), "absent"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestRange(t *testing.T) {
	srv := New()
	c := newSession(srv)
	defer c.close()
	for i := 0; i < 20; i++ {
		c.cmd(t, fmt.Sprintf("PUT k%02d %d", i, i))
	}
	lines := c.cmdLines(t, "RANGE k05 k08 100")
	if len(lines) != 4 {
		t.Fatalf("RANGE returned %v", lines)
	}
	if lines[0] != "KEY k05 5" || lines[3] != "KEY k08 8" {
		t.Fatalf("RANGE bounds wrong: %v", lines)
	}
	if lines := c.cmdLines(t, "RANGE k05 k18 3"); len(lines) != 3 {
		t.Fatalf("RANGE limit ignored: %v", lines)
	}
	if got := c.cmd(t, "RANGE a"); got != "ERR usage: RANGE <lo> <hi> <limit>" {
		t.Fatalf("RANGE error -> %q", got)
	}
}

// TestBatchedProtocol runs the point-op protocol through the CTT-batched
// server: same wire behavior as the direct server, including
// read-your-writes within a session.
func TestBatchedProtocol(t *testing.T) {
	srv := NewBatched(2)
	defer srv.Close()
	if !srv.Batched() {
		t.Fatal("NewBatched server not batched")
	}
	c := newSession(srv)
	defer c.close()

	if got := c.cmd(t, "PUT alpha 7"); got != "OK" {
		t.Fatalf("PUT -> %q", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE 7" {
		t.Fatalf("GET -> %q", got)
	}
	if got := c.cmd(t, "PUT alpha 8"); got != "OK replaced" {
		t.Fatalf("overwrite -> %q", got)
	}
	if got := c.cmd(t, "DEL alpha"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "NOT_FOUND" {
		t.Fatalf("GET after DEL -> %q", got)
	}
	// Scans read the shared tree and see the session's writes (blocking
	// Batcher calls are applied before the reply is sent).
	for i, k := range []string{"user:alice", "user:bob", "user:carol"} {
		c.cmd(t, fmt.Sprintf("PUT %s %d", k, i))
	}
	lines := c.cmdLines(t, "SCAN user: 10")
	if len(lines) != 3 || lines[0] != "KEY user:alice 0" {
		t.Fatalf("batched SCAN -> %v", lines)
	}
	if got := c.cmd(t, "LEN"); got != "LEN 3" {
		t.Fatalf("LEN -> %q", got)
	}
}

// TestBatchedConcurrentSessions hammers the batched server from parallel
// connections; the combining front end must preserve per-session
// read-your-writes. Run under -race.
func TestBatchedConcurrentSessions(t *testing.T) {
	srv := NewBatched(4)
	defer srv.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newSession(srv)
			defer c.close()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("w%d:k%d", w, i%20)
				if got := c.cmd(t, fmt.Sprintf("PUT %s %d", key, i)); !strings.HasPrefix(got, "OK") {
					t.Errorf("PUT %s -> %q", key, got)
					return
				}
				want := fmt.Sprintf("VALUE %d", i)
				if got := c.cmd(t, "GET "+key); got != want {
					t.Errorf("GET %s -> %q, want %q", key, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Len() != 8*20 {
		t.Fatalf("Len = %d", srv.Len())
	}
	// After Close the server still answers (direct fallback).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c := newSession(srv)
	defer c.close()
	if got := c.cmd(t, "GET w0:k0"); !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("post-close GET -> %q", got)
	}
}

// TestBatchedSnapshot: snapshots taken from a batched server restore into
// a direct server and vice versa.
func TestBatchedSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")

	srv := NewBatched(2)
	defer srv.Close()
	c := newSession(srv)
	for i := 0; i < 300; i++ {
		c.cmd(t, fmt.Sprintf("PUT key%04d %d", i, i))
	}
	c.close()
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 300 {
		t.Fatalf("restored Len = %d", back.Len())
	}
}

// TestScanTruncated: the TRUNCATED terminator marks exactly the responses
// the server's own cap clipped — never ones the client's limit clipped,
// never complete ones.
func TestScanTruncated(t *testing.T) {
	srv := New()
	srv.SetMaxScanLimit(5)
	c := newSession(srv)
	defer c.close()

	for i := 0; i < 8; i++ {
		c.cmd(t, fmt.Sprintf("PUT user:%d %d", i, i))
	}
	c.cmd(t, "PUT other:0 99")

	// Client asks beyond the cap and more rows existed: clipped.
	body, end := c.cmdScan(t, "SCAN user: 100")
	if len(body) != 5 || end != "END TRUNCATED" {
		t.Fatalf("capped SCAN -> %d rows, end %q", len(body), end)
	}
	// Client limit below the cap does the clipping: plain END.
	body, end = c.cmdScan(t, "SCAN user: 3")
	if len(body) != 3 || end != "END" {
		t.Fatalf("client-limited SCAN -> %d rows, end %q", len(body), end)
	}
	// Asking beyond the cap when the result fits under it: plain END.
	body, end = c.cmdScan(t, "SCAN other: 100")
	if len(body) != 1 || end != "END" {
		t.Fatalf("small SCAN -> %d rows, end %q", len(body), end)
	}
	// Asking exactly the cap is the client's own limit, even at the edge.
	body, end = c.cmdScan(t, "SCAN user: 5")
	if len(body) != 5 || end != "END" {
		t.Fatalf("at-cap SCAN -> %d rows, end %q", len(body), end)
	}

	// RANGE obeys the same contract.
	body, end = c.cmdScan(t, "RANGE user:0 user:9 100")
	if len(body) != 5 || end != "END TRUNCATED" {
		t.Fatalf("capped RANGE -> %d rows, end %q", len(body), end)
	}
	body, end = c.cmdScan(t, "RANGE user:0 user:3 100")
	if len(body) != 4 || end != "END" { // bounds are inclusive

		t.Fatalf("small RANGE -> %d rows, end %q", len(body), end)
	}
}

// TestShardedProtocol: the full protocol against a 4-way sharded store —
// point ops route to owners, SCAN/RANGE merge across shards in globally
// ascending order, LEN sums.
func TestShardedProtocol(t *testing.T) {
	srv := NewStore(store.NewSharded(4, func(int) store.Store { return store.NewDirect() }))
	defer srv.Close()
	if srv.Batched() {
		t.Fatal("direct-sharded server reports batched")
	}
	c := newSession(srv)
	defer c.close()

	const n = 64
	for i := 0; i < n; i++ {
		// Leading byte varies with i, so keys spread across shards.
		c.cmd(t, fmt.Sprintf("PUT %c%02d:k %d", 'a'+i%13, i, i))
	}
	if got := c.cmd(t, "LEN"); got != fmt.Sprintf("LEN %d", n) {
		t.Fatalf("LEN -> %q", got)
	}
	if got := c.cmd(t, "GET a00:k"); got != "VALUE 0" {
		t.Fatalf("GET -> %q", got)
	}
	if got := c.cmd(t, "DEL a00:k"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "GET a00:k"); got != "NOT_FOUND" {
		t.Fatalf("GET after DEL -> %q", got)
	}

	// An empty prefix matches everything; the merge must come back
	// strictly ascending even though four shards produced the segments.
	lines := c.cmdLines(t, fmt.Sprintf("RANGE a %c99 %d", 'a'+13, n))
	if len(lines) != n-1 {
		t.Fatalf("RANGE rows = %d, want %d", len(lines), n-1)
	}
	prev := ""
	for _, l := range lines {
		key := strings.Fields(l)[1]
		if key <= prev {
			t.Fatalf("merge order violated: %q after %q", key, prev)
		}
		prev = key
	}

	if got := c.cmd(t, "STATS"); !strings.Contains(got, fmt.Sprintf("dcart_keys=%d", n-1)) {
		t.Fatalf("STATS missing aggregate key count: %q", got)
	}
}

// TestShardedSnapshot: a sharded server writes one file per shard and a
// server with a different shard count restores the full set from them.
func TestShardedSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")

	srv := NewStore(store.NewSharded(4, func(int) store.Store { return store.NewDirect() }))
	defer srv.Close()
	c := newSession(srv)
	for i := 0; i < 200; i++ {
		c.cmd(t, fmt.Sprintf("PUT key%c%03d %d", 'a'+i%7, i, i))
	}
	c.close()
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("%s.shard%d-of-4", path, i)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing shard file %s: %v", p, err)
		}
	}

	// Restore into a 2-way sharded server: resharding happens on load.
	back := NewStore(store.NewSharded(2, func(int) store.Store { return store.NewDirect() }))
	defer back.Close()
	if err := back.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 200 {
		t.Fatalf("restored Len = %d, want 200", back.Len())
	}
	bc := newSession(back)
	defer bc.close()
	if got := bc.cmd(t, "GET keya000"); got != "VALUE 0" {
		t.Fatalf("restored GET -> %q", got)
	}
}

// TestShardedBatchedProtocol: sharded store with a batching engine per
// shard — the full scale-out topology — still speaks the exact protocol.
func TestShardedBatchedProtocol(t *testing.T) {
	srv := NewStore(store.NewSharded(2, func(int) store.Store {
		return store.NewBatched(pctt.Config{Workers: 2})
	}))
	defer srv.Close()
	if !srv.Batched() {
		t.Fatal("batched-sharded server reports direct")
	}
	c := newSession(srv)
	defer c.close()

	for i := 0; i < 50; i++ {
		c.cmd(t, fmt.Sprintf("PUT %c:%02d %d", 'a'+i%5, i, i))
	}
	if got := c.cmd(t, "LEN"); got != "LEN 50" {
		t.Fatalf("LEN -> %q", got)
	}
	lines := c.cmdLines(t, "SCAN a 100")
	if len(lines) != 10 {
		t.Fatalf("SCAN a -> %d rows, want 10", len(lines))
	}
	if got := c.cmd(t, "GET a:00"); got != "VALUE 0" {
		t.Fatalf("GET -> %q", got)
	}
}
