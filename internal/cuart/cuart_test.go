package cuart

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func testWorkload(readRatio float64) *workload.Workload {
	return workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 2000, NumOps: 10000,
		ReadRatio: readRatio, Seed: 41,
	})
}

func TestFunctionalEquivalence(t *testing.T) {
	w := testWorkload(0.5)
	// Per-lane execution is sequential in stream order, so reads follow
	// plain sequential replay.
	state := map[string]uint64{}
	for i, k := range w.Keys {
		state[string(k)] = uint64(i)
	}
	wantReads := map[int]engine.ReadResult{}
	for i, op := range w.Ops {
		ks := string(op.Key)
		switch op.Kind {
		case workload.Read:
			v, ok := state[ks]
			wantReads[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
		case workload.Write:
			state[ks] = op.Value
		case workload.Delete:
			delete(state, ks)
		}
	}

	e := New(Config{Config: engine.Config{CollectReads: true}})
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)

	if e.Tree().Len() != len(state) {
		t.Fatalf("final keys = %d, want %d", e.Tree().Len(), len(state))
	}
	for ks, v := range state {
		got, ok := e.Tree().Get([]byte(ks))
		if !ok || got != v {
			t.Fatalf("state mismatch at %x", ks)
		}
	}
	for _, r := range res.Reads {
		if want := wantReads[r.Index]; r != want {
			t.Fatalf("read %d = %+v, want %+v", r.Index, r, want)
		}
	}
}

func TestWarpStepCounting(t *testing.T) {
	w := testWorkload(1.0)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)

	steps := e.Metrics().Get(CtrWarpSteps)
	matches := e.Metrics().Get(metrics.CtrKeyMatches)
	if steps == 0 {
		t.Fatal("no warp steps")
	}
	// Warp steps are per-warp maxima: total lane work (matches) must be
	// at most steps*32 and at least steps (a warp is as deep as its
	// deepest lane).
	if matches > steps*32 {
		t.Fatalf("matches %d > steps*32 %d", matches, steps*32)
	}
	if matches < steps {
		t.Fatalf("matches %d < warp steps %d", matches, steps)
	}
	// Divergence waste is the difference, exactly.
	masked := e.Metrics().Get(CtrMaskedLaneSteps)
	warps := (len(w.Ops) + 31) / 32
	_ = warps
	if masked == 0 {
		t.Fatal("no masked lane steps despite variable tree depth")
	}
}

func TestKernelLaunchCount(t *testing.T) {
	w := testWorkload(0.5)
	e := New(Config{BatchSize: 3000})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	want := int64((len(w.Ops) + 2999) / 3000)
	if got := e.Metrics().Get(CtrKernelLaunches); got != want {
		t.Fatalf("kernel launches = %d, want %d", got, want)
	}
}

func TestAtomicsNotLocks(t *testing.T) {
	w := testWorkload(0.0) // all writes
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	if e.Metrics().Get(metrics.CtrLockAcquire) != 0 {
		t.Fatal("GPU model acquired locks")
	}
	if e.Metrics().Get(metrics.CtrAtomicOps) != int64(len(w.Ops)) {
		t.Fatalf("atomics = %d, want %d", e.Metrics().Get(metrics.CtrAtomicOps), len(w.Ops))
	}
	if e.Metrics().Get(metrics.CtrLockContention) == 0 {
		t.Fatal("no atomic conflicts on a Zipfian write workload")
	}
}

func TestNoCoalescing(t *testing.T) {
	// CuART performs one traversal per lane: no cross-lane coalescing.
	w := testWorkload(0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	if e.Metrics().Get(metrics.CtrCoalesced) != 0 {
		t.Fatal("CuART coalesced operations")
	}
	// Matches scale with ops (every op traverses).
	perOp := float64(e.Metrics().Get(metrics.CtrKeyMatches)) / float64(len(w.Ops))
	if perOp < 2 {
		t.Fatalf("matches per op = %.1f, implausibly low for per-lane traversal", perOp)
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload(0.5)
	run := func() map[string]int64 {
		e := New(Config{})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		return e.Metrics().Snapshot()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("counter %s differs: %d vs %d", k, v, b[k])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.WarpWidth != 32 || c.BatchSize != 65536 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.LineSize != 128 {
		t.Fatalf("GPU line size = %d, want 128", c.LineSize)
	}
}
