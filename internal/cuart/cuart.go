// Package cuart models CuART (Koppehel et al., ICPP'21): a CUDA-based
// radix-tree lookup and update engine, the paper's GPU baseline.
//
// CuART executes operations in bulk: the host batches operations into
// kernel launches; on the device, each warp of 32 lanes traverses the tree
// in SIMT lockstep, one operation per lane. The model reproduces the three
// properties that determine CuART's behaviour in the paper's figures:
//
//   - batching amortizes per-operation overhead but every lane still
//     performs its own top-down traversal — no cross-lane coalescing, so
//     partial-key matches stay high (Fig 8);
//   - lockstep execution makes a warp as slow as its deepest lane; the
//     wasted lane-steps are counted (CtrWarpSteps) and charged by the GPU
//     timing model;
//   - updates use global-memory atomics (CAS on leaf slots); conflicting
//     atomics within the device's concurrent window are counted as
//     contention (Fig 7).
//
// Execution is functional and deterministic on the art substrate; lanes
// within a warp execute in lane order, which is one valid SIMT serial
// schedule.
package cuart

import (
	"repro/internal/art"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Extra counters specific to the GPU model.
const (
	// CtrWarpSteps counts lockstep traversal steps summed over warps
	// (each step costs all 32 lanes a cycle, useful or not).
	CtrWarpSteps = "warp_steps"
	// CtrKernelLaunches counts host-side kernel launches.
	CtrKernelLaunches = "kernel_launches"
	// CtrMaskedLaneSteps counts lane-steps wasted to divergence (lanes
	// idling while their warp finishes deeper traversals).
	CtrMaskedLaneSteps = "masked_lane_steps"
)

// Config parameterizes the CuART model.
type Config struct {
	engine.Config
	// BatchSize is the number of operations per kernel launch (default
	// 65536; CuART streams large batches to keep the device busy).
	BatchSize int
	// WarpWidth is the SIMT width (32 on NVIDIA hardware).
	WarpWidth int
}

// Defaults fills unset fields. The GPU's concurrent window (for conflict
// accounting) defaults to 2048 resident lanes, its cache model to an
// A100-like 40 MB L2 with 128-byte lines.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = 2048
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 40 << 20
	}
	if c.LineSize <= 0 {
		c.LineSize = 128
	}
	c.Config = c.Config.Defaults()
	if c.BatchSize <= 0 {
		c.BatchSize = 65536
	}
	if c.WarpWidth <= 0 {
		c.WarpWidth = 32
	}
	return c
}

// Engine is the modeled CuART engine.
type Engine struct {
	name string
	cfg  Config

	tree    *art.Tree
	ms      *metrics.Set
	red     *metrics.RedundancyTracker
	lineUse *mem.LineUseTracker

	measuring bool
	opDepth   int64 // node accesses by the op in flight
	lastLeaf  uint64

	// Sliding-window atomic-conflict tracking over the device's resident
	// lanes (Threads).
	lastWriter map[uint64]int
	opIndex    int
}

// New returns a CuART engine.
func New(cfg Config) *Engine {
	cfg = cfg.Defaults()
	e := &Engine{
		name: "CuART",
		cfg:  cfg,
		tree: art.New(),
		ms:   metrics.NewSet(CtrWarpSteps, CtrKernelLaunches, CtrMaskedLaneSteps),
	}
	e.newTrackers()
	e.tree.SetAccessHook(e.onAccess)
	return e
}

func (e *Engine) newTrackers() {
	// See baseline.newTrackers: redundancy is judged over the on-chip
	// residency window, several times the resident-lane count.
	e.red = metrics.NewRedundancyTracker(4 * e.cfg.Threads)
	e.lineUse = mem.NewLineUseTracker(e.cfg.CacheBytes, e.cfg.LineSize)
	e.lastWriter = make(map[uint64]int)
	e.opIndex = 0
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Tree exposes the index for verification.
func (e *Engine) Tree() *art.Tree { return e.tree }

// Metrics returns the live counter set.
func (e *Engine) Metrics() *metrics.Set { return e.ms }

func (e *Engine) onAccess(addr uint64, size int, kind art.NodeKind) {
	if !e.measuring {
		return
	}
	e.ms.Inc(metrics.CtrKeyMatches)
	e.ms.Inc(metrics.CtrNodeAccesses)
	e.opDepth++
	if e.red.Touch(addr) {
		e.ms.Inc(metrics.CtrRedundantNodes)
	}
	// A lane reads the header/probe bytes and one child slot, not the
	// whole node (same touch model as the CPU baselines, 128B lines).
	useful := 18
	if kind == art.Leaf {
		useful = size - 16
		if useful < 9 {
			useful = 9
		}
	}
	e.lineUse.Access(addr, useful)
	if size > e.cfg.LineSize {
		e.lineUse.Access(addr+uint64(size)/2, 8)
	}
	if kind == art.Leaf {
		e.lastLeaf = addr
	}
}

// Load implements engine.Engine.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.measuring = false
	e.tree.Load(keys, values)
}

// Reset implements engine.Engine.
func (e *Engine) Reset() {
	e.ms.Reset()
	e.newTrackers()
}

// Run implements engine.Engine.
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.measuring = true
	defer func() { e.measuring = false }()

	res := &engine.Result{Name: e.name, Ops: len(ops), Metrics: e.ms}
	for start := 0; start < len(ops); start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > len(ops) {
			end = len(ops)
		}
		e.runKernel(ops[start:end], start, res)
	}
	res.RedundantRatio = e.red.Ratio()
	res.LineUtilization = e.lineUse.Utilization()
	res.CacheHitRatio = e.lineUse.Stats().HitRatio()
	res.OffchipBytes = e.lineUse.FetchedBytes()
	return res
}

// runKernel models one kernel launch over a batch.
func (e *Engine) runKernel(batch []workload.Op, base int, res *engine.Result) {
	e.ms.Inc(CtrKernelLaunches)
	for w := 0; w < len(batch); w += e.cfg.WarpWidth {
		wEnd := w + e.cfg.WarpWidth
		if wEnd > len(batch) {
			wEnd = len(batch)
		}
		e.runWarp(batch[w:wEnd], base+w, res)
	}
}

// noteAtomic records an atomic RMW on a leaf slot and counts a conflict
// when another atomic hit the same slot within the resident-lane window.
func (e *Engine) noteAtomic(target uint64) {
	if target == 0 {
		return
	}
	if last, ok := e.lastWriter[target]; ok && e.opIndex-last <= e.cfg.Threads {
		e.ms.Inc(metrics.CtrLockContention)
	}
	e.lastWriter[target] = e.opIndex
}

// runWarp executes up to WarpWidth lanes in lockstep: each lane runs its
// own traversal; the warp's cost is its deepest lane.
func (e *Engine) runWarp(lanes []workload.Op, base int, res *engine.Result) {

	maxDepth := int64(0)
	var depths [64]int64 // WarpWidth <= 64 in any sane config
	for i := range lanes {
		op := &lanes[i]
		e.red.NextOp()
		e.opIndex++
		e.opDepth = 0
		e.lastLeaf = 0
		switch op.Kind {
		case workload.Read:
			e.ms.Inc(metrics.CtrOpsRead)
			v, ok := e.tree.Get(op.Key)
			if e.cfg.CollectReads {
				res.Reads = append(res.Reads,
					engine.ReadResult{Index: base + i, Value: v, OK: ok})
			}
		case workload.Write:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.tree.Put(op.Key, op.Value)
			// GPU update: CAS on the leaf slot.
			e.ms.Inc(metrics.CtrAtomicOps)
			e.noteAtomic(e.lastLeaf)
		case workload.Delete:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.tree.Delete(op.Key)
			e.ms.Inc(metrics.CtrAtomicOps)
		}
		if i < len(depths) {
			depths[i] = e.opDepth
		}
		if e.opDepth > maxDepth {
			maxDepth = e.opDepth
		}
	}
	// Lockstep: the warp advances maxDepth steps; shallower lanes idle.
	e.ms.Add(CtrWarpSteps, maxDepth)
	for i := range lanes {
		if i < len(depths) {
			e.ms.Add(CtrMaskedLaneSteps, maxDepth-depths[i])
		}
	}
}
