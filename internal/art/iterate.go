package art

import "bytes"

// Walk visits every key/value pair in ascending key order. fn returning
// false stops the walk. Walk reports whether it ran to completion.
func (t *Tree) Walk(fn func(key []byte, value uint64) bool) bool {
	return t.walk(t.root, fn)
}

func (t *Tree) walk(n node, fn func(key []byte, value uint64) bool) bool {
	if n == nil {
		return true
	}
	t.access(n)
	h := n.h()
	if h.kind == Leaf {
		l := n.(*leafNode)
		return fn(l.key, l.value)
	}
	// A key terminating at this node sorts before every key in its
	// children (it is a strict prefix of all of them).
	if h.leaf != nil {
		if !fn(h.leaf.key, h.leaf.value) {
			return false
		}
	}
	return forEachChild(n, func(_ byte, c node) bool {
		return t.walk(c, fn)
	})
}

// Minimum returns the smallest key and its value.
func (t *Tree) Minimum() (key []byte, value uint64, ok bool) {
	n := t.root
	for n != nil {
		t.access(n)
		h := n.h()
		if h.kind == Leaf {
			l := n.(*leafNode)
			return l.key, l.value, true
		}
		if h.leaf != nil {
			return h.leaf.key, h.leaf.value, true
		}
		var first node
		forEachChild(n, func(_ byte, c node) bool {
			first = c
			return false
		})
		n = first
	}
	return nil, 0, false
}

// Maximum returns the largest key and its value.
func (t *Tree) Maximum() (key []byte, value uint64, ok bool) {
	n := t.root
	for n != nil {
		t.access(n)
		h := n.h()
		if h.kind == Leaf {
			l := n.(*leafNode)
			return l.key, l.value, true
		}
		var last node
		forEachChildReverse(n, func(_ byte, c node) bool {
			last = c
			return false
		})
		if last == nil {
			// Internal node with only an embedded leaf (transient shape).
			if h.leaf != nil {
				return h.leaf.key, h.leaf.value, true
			}
			return nil, 0, false
		}
		n = last
	}
	return nil, 0, false
}

// ScanPrefix visits, in ascending order, every key that starts with
// prefix. It descends directly to the prefix's subtree, so cost is
// O(depth + matches). fn returning false stops the scan.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key []byte, value uint64) bool) bool {
	n := t.root
	depth := 0
	for n != nil {
		t.access(n)
		h := n.h()
		if h.kind == Leaf {
			l := n.(*leafNode)
			if len(l.key) >= len(prefix) && bytes.Equal(l.key[:len(prefix)], prefix) {
				return fn(l.key, l.value)
			}
			return true
		}
		p := h.prefix
		rem := prefix[depth:]
		if len(rem) <= len(p) {
			// The prefix ends inside this node's compressed path: the whole
			// subtree matches iff the path extends the prefix.
			if bytes.Equal(p[:len(rem)], rem) {
				return t.walk(n, fn)
			}
			return true
		}
		if !bytes.Equal(p, rem[:len(p)]) {
			return true
		}
		depth += len(p)
		if depth == len(prefix) {
			return t.walk(n, fn)
		}
		c, _ := findChild(n, prefix[depth])
		n = c
		depth++
	}
	return true
}

// AscendRange visits keys k with lo <= k <= hi in ascending order. Either
// bound may be nil for an open end. fn returning false stops the scan.
// The traversal terminates as soon as it passes hi; keys below lo are
// skipped but still traversed (use ScanPrefix when the range is a prefix).
func (t *Tree) AscendRange(lo, hi []byte, fn func(key []byte, value uint64) bool) bool {
	return t.ascend(t.root, lo, hi, fn)
}

func (t *Tree) ascend(n node, lo, hi []byte, fn func(key []byte, value uint64) bool) bool {
	if n == nil {
		return true
	}
	t.access(n)
	h := n.h()
	if h.kind == Leaf {
		l := n.(*leafNode)
		if inRange(l.key, lo, hi) {
			return fn(l.key, l.value)
		}
		// A leaf above hi terminates the in-order scan early.
		return hi == nil || bytes.Compare(l.key, hi) <= 0
	}
	if h.leaf != nil {
		if inRange(h.leaf.key, lo, hi) {
			if !fn(h.leaf.key, h.leaf.value) {
				return false
			}
		} else if hi != nil && bytes.Compare(h.leaf.key, hi) > 0 {
			return false
		}
	}
	return forEachChild(n, func(_ byte, c node) bool {
		return t.ascend(c, lo, hi, fn)
	})
}

func inRange(k, lo, hi []byte) bool {
	if lo != nil && bytes.Compare(k, lo) < 0 {
		return false
	}
	if hi != nil && bytes.Compare(k, hi) > 0 {
		return false
	}
	return true
}
