// Package art implements an Adaptive Radix Tree (Leis, Kemper, Neumann,
// ICDE'13): a space-adaptive radix tree over binary-comparable byte-string
// keys with path compression, lazy expansion, and the four internal node
// layouts N4/N16/N48/N256 that grow and shrink with occupancy.
//
// This implementation is the substrate for every engine in the DCART
// reproduction. Beyond the standard map operations it provides:
//
//   - a synthetic arena allocator that assigns every node a stable address,
//     so cache/DRAM models can replay the exact access stream;
//   - an access hook invoked once per node visited during a descent, which
//     the engines use to count partial-key matches, node fetches and
//     redundancy (Figs 2(b), 8 of the paper);
//   - Locate/GetAt/PutAt, the "shortcut" interface used by the DCART
//     simulator to jump directly to a key's target node without a root
//     descent (§III-C of the paper);
//   - node-replacement and prefix-change notifications, which the
//     simulator uses to keep its Shortcut_Table coherent.
//
// Keys may be arbitrary byte strings, including keys that are proper
// prefixes of other keys (a key terminating inside an internal node is held
// in that node's embedded leaf slot). Tree is not safe for concurrent use;
// the concurrent variants live in internal/olc and internal/baseline.
package art

import "bytes"

// AccessHook observes one node fetch during a tree descent. addr is the
// node's synthetic address, size its modeled footprint in bytes, and kind
// its layout. Hooks must be fast; they run on the descent hot path.
type AccessHook func(addr uint64, size int, kind NodeKind)

// ReplaceHook observes structural events that move or mutate nodes in ways
// a shortcut table must track: grow/shrink (the node at oldAddr was
// replaced by newAddr) and removal (newAddr == 0).
type ReplaceHook func(oldAddr, newAddr uint64)

// PrefixHook observes in-place changes to a node's compressed path (prefix
// splits on insert, path merges on delete). Any cached search state that
// recorded a depth for addr is stale after this fires.
type PrefixHook func(addr uint64)

// Tree is an adaptive radix tree mapping byte-string keys to uint64 values.
// The zero value is not usable; construct with New.
type Tree struct {
	root node
	size int

	nextAddr uint64
	registry map[uint64]node // addr -> node; nil unless WithRegistry
	bytes    int64           // modeled footprint of live nodes
	counts   [5]int64        // live nodes by kind

	onAccess  AccessHook
	onReplace ReplaceHook
	onPrefix  PrefixHook
}

// Option configures a Tree at construction.
type Option func(*Tree)

// WithRegistry keeps an address→node registry so that NodeAt / GetAt /
// PutAt (the shortcut interface) can resolve synthetic addresses. The
// DCART simulator requires it; plain index use does not.
func WithRegistry() Option {
	return func(t *Tree) { t.registry = make(map[uint64]node) }
}

// New returns an empty tree.
func New(opts ...Option) *Tree {
	t := &Tree{nextAddr: 0x1000}
	for _, o := range opts {
		o(t)
	}
	return t
}

// SetAccessHook installs (or clears, with nil) the per-node access hook.
func (t *Tree) SetAccessHook(h AccessHook) { t.onAccess = h }

// SetReplaceHook installs the node-replacement hook.
func (t *Tree) SetReplaceHook(h ReplaceHook) { t.onReplace = h }

// SetPrefixHook installs the prefix-change hook.
func (t *Tree) SetPrefixHook(h PrefixHook) { t.onPrefix = h }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// ModeledBytes returns the modeled memory footprint of all live nodes.
func (t *Tree) ModeledBytes() int64 { return t.bytes }

// access fires the access hook for a node fetch.
func (t *Tree) access(n node) {
	if t.onAccess != nil {
		h := n.h()
		t.onAccess(h.addr, modeledSizeOf(n), h.kind)
	}
}

// alloc assigns an address to a freshly built node and registers it.
func (t *Tree) alloc(n node) node {
	h := n.h()
	size := modeledSizeOf(n)
	h.addr = t.nextAddr
	t.nextAddr += uint64((size + 63) &^ 63) // 64-byte aligned addresses
	if t.registry != nil {
		t.registry[h.addr] = n
	}
	t.bytes += int64(size)
	t.counts[h.kind]++
	return n
}

// free unregisters a node that left the tree.
func (t *Tree) free(n node) {
	h := n.h()
	if t.registry != nil {
		delete(t.registry, h.addr)
	}
	t.bytes -= int64(modeledSizeOf(n))
	t.counts[h.kind]--
	if t.onReplace != nil {
		t.onReplace(h.addr, 0)
	}
}

// replace unregisters old and registers repl as its successor (grow/shrink).
func (t *Tree) replace(old, repl node) {
	oh, rh := old.h(), repl.h()
	if t.registry != nil {
		delete(t.registry, oh.addr)
	}
	t.bytes -= int64(modeledSizeOf(old))
	t.counts[oh.kind]--
	if t.onReplace != nil {
		t.onReplace(oh.addr, rh.addr)
	}
}

// prefixChanged fires the prefix hook.
func (t *Tree) prefixChanged(n node) {
	if t.onPrefix != nil {
		t.onPrefix(n.h().addr)
	}
}

func (t *Tree) newLeaf(key []byte, value uint64) *leafNode {
	l := &leafNode{key: append([]byte(nil), key...), value: value}
	l.hdr.kind = Leaf
	t.alloc(l)
	return l
}

func (t *Tree) newNode4(prefix []byte) *node4 {
	n := &node4{}
	n.hdr.kind = Node4
	n.hdr.prefix = prefix
	t.alloc(n)
	return n
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	depth := 0
	for n != nil {
		t.access(n)
		h := n.h()
		if h.kind == Leaf {
			l := n.(*leafNode)
			if bytes.Equal(l.key, key) {
				return l.value, true
			}
			return 0, false
		}
		if !prefixMatches(key, depth, h.prefix) {
			return 0, false
		}
		depth += len(h.prefix)
		if depth == len(key) {
			if h.leaf != nil {
				t.access(h.leaf)
				return h.leaf.value, true
			}
			return 0, false
		}
		c, _ := findChild(n, key[depth])
		n = c
		depth++
	}
	return 0, false
}

// Put stores value under key, replacing any previous value. It reports
// whether a previous value was replaced.
func (t *Tree) Put(key []byte, value uint64) bool {
	newRoot, replaced := t.insert(t.root, key, 0, value)
	t.root = newRoot
	if !replaced {
		t.size++
	}
	return replaced
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) bool {
	newRoot, deleted := t.remove(t.root, key, 0)
	if deleted {
		t.root = newRoot
		t.size--
	}
	return deleted
}

// prefixMatches reports whether key[depth:] starts with prefix.
func prefixMatches(key []byte, depth int, prefix []byte) bool {
	if len(key)-depth < len(prefix) {
		return false
	}
	return bytes.Equal(key[depth:depth+len(prefix)], prefix)
}

// commonPrefixLen returns the length of the longest common prefix of a, b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func copyBytes(b []byte) []byte { return append([]byte(nil), b...) }
