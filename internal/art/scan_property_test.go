package art

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildRandomTree loads a tree plus a sorted reference of its contents.
func buildRandomTree(rng *rand.Rand, n, alphabet, maxLen int) (*Tree, []string, map[string]uint64) {
	tr := New()
	ref := map[string]uint64{}
	for i := 0; i < n; i++ {
		k := make([]byte, 1+rng.Intn(maxLen))
		for j := range k {
			k[j] = byte(rng.Intn(alphabet))
		}
		v := rng.Uint64()
		tr.Put(k, v)
		ref[string(k)] = v
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return tr, keys, ref
}

// TestQuickScanPrefixEquivalence: ScanPrefix(prefix) yields exactly the
// sorted keys with that prefix, in order.
func TestQuickScanPrefixEquivalence(t *testing.T) {
	f := func(seed int64, plen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, keys, ref := buildRandomTree(rng, 400, 5, 7)
		prefix := make([]byte, int(plen)%4)
		for j := range prefix {
			prefix[j] = byte(rng.Intn(5))
		}
		var want []string
		for _, k := range keys {
			if bytes.HasPrefix([]byte(k), prefix) {
				want = append(want, k)
			}
		}
		var got []string
		tr.ScanPrefix(prefix, func(k []byte, v uint64) bool {
			if ref[string(k)] != v {
				return false
			}
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAscendRangeEquivalence: AscendRange(lo,hi) equals the sorted
// reference filtered to [lo,hi].
func TestQuickAscendRangeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, keys, _ := buildRandomTree(rng, 300, 6, 6)
		mkBound := func() []byte {
			if rng.Intn(4) == 0 {
				return nil // open end
			}
			b := make([]byte, 1+rng.Intn(5))
			for j := range b {
				b[j] = byte(rng.Intn(6))
			}
			return b
		}
		lo, hi := mkBound(), mkBound()
		if lo != nil && hi != nil && bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			kb := []byte(k)
			if lo != nil && bytes.Compare(kb, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(kb, hi) > 0 {
				continue
			}
			want = append(want, k)
		}
		var got []string
		tr.AscendRange(lo, hi, func(k []byte, v uint64) bool {
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinMaxMatchWalk: Minimum/Maximum equal the first/last Walk keys
// after arbitrary churn.
func TestQuickMinMaxMatchWalk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, keys, _ := buildRandomTree(rng, 200, 8, 6)
		// Random deletions.
		for _, k := range keys {
			if rng.Intn(3) == 0 {
				tr.Delete([]byte(k))
			}
		}
		var first, last []byte
		tr.Walk(func(k []byte, v uint64) bool {
			if first == nil {
				first = append([]byte(nil), k...)
			}
			last = append(last[:0], k...)
			return true
		})
		mk, _, mok := tr.Minimum()
		xk, _, xok := tr.Maximum()
		if first == nil {
			return !mok && !xok
		}
		return mok && xok && bytes.Equal(mk, first) && bytes.Equal(xk, last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLocateConsistency: for every present key, Locate+GetAt answers
// exactly like Get.
func TestQuickLocateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(WithRegistry())
		ref := map[string]uint64{}
		for i := 0; i < 300; i++ {
			k := make([]byte, 1+rng.Intn(6))
			for j := range k {
				k[j] = byte(rng.Intn(6))
			}
			v := rng.Uint64()
			tr.Put(k, v)
			ref[string(k)] = v
		}
		for ks, want := range ref {
			k := []byte(ks)
			target, _, ok := tr.Locate(k)
			if !ok {
				continue // bare-leaf root or prefix-split path: allowed
			}
			v, found, valid := tr.GetAt(target, k)
			if !valid || !found || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
