package art

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key64(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete([]byte("missing")) {
		t.Fatal("Delete on empty tree returned true")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, _, ok := tr.Minimum(); ok {
		t.Fatal("Minimum on empty tree returned ok")
	}
	if _, _, ok := tr.Maximum(); ok {
		t.Fatal("Maximum on empty tree returned ok")
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := New()
	if replaced := tr.Put([]byte("hello"), 42); replaced {
		t.Fatal("first Put reported replaced")
	}
	v, ok := tr.Get([]byte("hello"))
	if !ok || v != 42 {
		t.Fatalf("Get = (%d,%v), want (42,true)", v, ok)
	}
	if replaced := tr.Put([]byte("hello"), 43); !replaced {
		t.Fatal("second Put did not report replaced")
	}
	if v, _ := tr.Get([]byte("hello")); v != 43 {
		t.Fatalf("after overwrite Get = %d, want 43", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys that are proper prefixes of each other must coexist.
	tr := New()
	keys := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"),
		[]byte("abd"), []byte(""), []byte("b"),
	}
	for i, k := range keys {
		tr.Put(k, uint64(i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, v, ok, i)
		}
	}
	// Delete the middle of the chain; neighbours must survive.
	if !tr.Delete([]byte("ab")) {
		t.Fatal("Delete(ab) failed")
	}
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("ab still present after delete")
	}
	for _, k := range [][]byte{[]byte("a"), []byte("abc"), []byte("abcd"), []byte("abd")} {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("key %q lost after deleting ab", k)
		}
	}
}

func TestNodeGrowthSequence(t *testing.T) {
	// Insert 256 single-byte-suffix keys under one parent to force the
	// N4 -> N16 -> N48 -> N256 growth chain.
	tr := New()
	for i := 0; i < 256; i++ {
		k := []byte{0xAA, byte(i)}
		tr.Put(k, uint64(i))
		// Every key inserted so far must remain reachable at every step.
		if i == 3 || i == 4 || i == 15 || i == 16 || i == 47 || i == 48 || i == 255 {
			for j := 0; j <= i; j++ {
				v, ok := tr.Get([]byte{0xAA, byte(j)})
				if !ok || v != uint64(j) {
					t.Fatalf("after %d inserts: Get(%d) = (%d,%v)", i+1, j, v, ok)
				}
			}
		}
	}
	st := tr.Stats()
	if st.N256 != 1 {
		t.Fatalf("want exactly one N256, got stats %+v", st)
	}
	if st.N4+st.N16+st.N48 != 0 {
		t.Fatalf("unexpected internal nodes: %+v", st)
	}
}

func TestNodeShrinkSequence(t *testing.T) {
	tr := New()
	for i := 0; i < 256; i++ {
		tr.Put([]byte{0xAA, byte(i)}, uint64(i))
	}
	// Delete down past each shrink threshold.
	for i := 255; i >= 1; i-- {
		if !tr.Delete([]byte{0xAA, byte(i)}) {
			t.Fatalf("Delete(%d) failed", i)
		}
		for j := 0; j < i; j++ {
			if _, ok := tr.Get([]byte{0xAA, byte(j)}); !ok {
				t.Fatalf("key %d lost after deleting down to %d", j, i)
			}
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	st := tr.Stats()
	if st.N16+st.N48+st.N256 != 0 {
		t.Fatalf("large nodes not shrunk away: %+v", st)
	}
}

func TestPathCompressionSplitAndMerge(t *testing.T) {
	tr := New()
	// Two keys sharing a long prefix: one N4 with a long compressed path.
	a := []byte("shared/long/prefix/alpha")
	b := []byte("shared/long/prefix/beta")
	tr.Put(a, 1)
	tr.Put(b, 2)
	st := tr.Stats()
	if st.N4 != 1 || st.Height != 2 {
		t.Fatalf("want single N4 of height 2, got %+v", st)
	}
	if st.AvgPrefixLen < 18 {
		t.Fatalf("path compression missing: avg prefix %v", st.AvgPrefixLen)
	}
	// A key diverging inside the compressed path forces a prefix split.
	c := []byte("shared/other")
	tr.Put(c, 3)
	for k, want := range map[string]uint64{string(a): 1, string(b): 2, string(c): 3} {
		if v, ok := tr.Get([]byte(k)); !ok || v != want {
			t.Fatalf("Get(%q) = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	// Deleting the splitter must re-merge the path.
	tr.Delete(c)
	st = tr.Stats()
	if st.N4 != 1 || st.Height != 2 {
		t.Fatalf("path not merged after delete: %+v", st)
	}
}

func TestWalkSortedOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	ref := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := key64(rng.Uint64() % 100000)
		v := rng.Uint64()
		tr.Put(k, v)
		ref[string(k)] = v
	}
	var keys []string
	tr.Walk(func(k []byte, v uint64) bool {
		keys = append(keys, string(k))
		if ref[string(k)] != v {
			t.Fatalf("Walk value mismatch at %x", k)
		}
		return true
	})
	if len(keys) != len(ref) {
		t.Fatalf("Walk visited %d keys, want %d", len(keys), len(ref))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("Walk order not sorted")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	n := 0
	done := tr.Walk(func(k []byte, v uint64) bool {
		n++
		return n < 10
	})
	if done || n != 10 {
		t.Fatalf("Walk early stop: done=%v n=%d", done, n)
	}
}

func TestMinimumMaximum(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	lo, hi := uint64(1<<63), uint64(0)
	for i := 0; i < 2000; i++ {
		v := rng.Uint64() % (1 << 40)
		tr.Put(key64(v), v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mk, mv, ok := tr.Minimum()
	if !ok || !bytes.Equal(mk, key64(lo)) || mv != lo {
		t.Fatalf("Minimum = (%x,%d,%v), want %d", mk, mv, ok, lo)
	}
	xk, xv, ok := tr.Maximum()
	if !ok || !bytes.Equal(xk, key64(hi)) || xv != hi {
		t.Fatalf("Maximum = (%x,%d,%v), want %d", xk, xv, ok, hi)
	}
}

func TestMinimumWithEmbeddedLeaf(t *testing.T) {
	tr := New()
	tr.Put([]byte("ab"), 1)
	tr.Put([]byte("abc"), 2)
	tr.Put([]byte("abd"), 3)
	k, v, ok := tr.Minimum()
	if !ok || string(k) != "ab" || v != 1 {
		t.Fatalf("Minimum = (%q,%d,%v), want (ab,1)", k, v, ok)
	}
	k, v, ok = tr.Maximum()
	if !ok || string(k) != "abd" || v != 3 {
		t.Fatalf("Maximum = (%q,%d,%v), want (abd,3)", k, v, ok)
	}
}

func TestScanPrefix(t *testing.T) {
	tr := New()
	words := []string{"ant", "antelope", "anthem", "bee", "beetle", "cat", "an"}
	for i, w := range words {
		tr.Put(append([]byte(w), 0), uint64(i))
	}
	var got []string
	tr.ScanPrefix([]byte("ant"), func(k []byte, v uint64) bool {
		got = append(got, string(k[:len(k)-1]))
		return true
	})
	want := []string{"ant", "antelope", "anthem"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ScanPrefix(ant) = %v, want %v", got, want)
	}
	got = nil
	tr.ScanPrefix([]byte("zz"), func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 0 {
		t.Fatalf("ScanPrefix(zz) = %v, want empty", got)
	}
	// Prefix ending inside a compressed path.
	got = nil
	tr.ScanPrefix([]byte("bee"), func(k []byte, v uint64) bool {
		got = append(got, string(k[:len(k)-1]))
		return true
	})
	want = []string{"bee", "beetle"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ScanPrefix(bee) = %v, want %v", got, want)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key64(uint64(i*3)), uint64(i*3))
	}
	var got []uint64
	tr.AscendRange(key64(300), key64(330), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	var want []uint64
	for v := uint64(300); v <= 330; v += 3 {
		want = append(want, v)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AscendRange = %v, want %v", got, want)
	}
	// Open-ended ranges.
	n := 0
	tr.AscendRange(nil, key64(29), func(k []byte, v uint64) bool { n++; return true })
	if n != 10 {
		t.Fatalf("AscendRange(nil,29) visited %d, want 10", n)
	}
	n = 0
	tr.AscendRange(key64(2970), nil, func(k []byte, v uint64) bool { n++; return true })
	if n != 10 {
		t.Fatalf("AscendRange(2970,nil) visited %d, want 10", n)
	}
}

func TestDeleteEverything(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	var keys [][]byte
	for i := 0; i < 3000; i++ {
		k := key64(rng.Uint64() % 50000)
		if !tr.Put(k, uint64(i)) {
			keys = append(keys, k)
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete #%d failed", i)
		}
		if tr.Delete(k) {
			t.Fatalf("double Delete #%d succeeded", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	st := tr.Stats()
	if st.Leaves+st.N4+st.N16+st.N48+st.N256 != 0 {
		t.Fatalf("leaked nodes: %+v", st)
	}
	if st.ModeledBytes != 0 {
		t.Fatalf("leaked modeled bytes: %d", st.ModeledBytes)
	}
}

// TestQuickMapEquivalence drives random operation sequences against both
// the tree and a Go map and requires identical observable behaviour.
func TestQuickMapEquivalence(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]uint64{}
		ops := int(n)%2000 + 100
		for i := 0; i < ops; i++ {
			// Short keys maximize structural churn (shared prefixes).
			klen := 1 + rng.Intn(6)
			k := make([]byte, klen)
			for j := range k {
				k[j] = byte(rng.Intn(4)) // tiny alphabet: deep collisions
			}
			switch rng.Intn(3) {
			case 0: // put
				v := rng.Uint64()
				repl := tr.Put(k, v)
				_, had := ref[string(k)]
				if repl != had {
					return false
				}
				ref[string(k)] = v
			case 1: // get
				v, ok := tr.Get(k)
				rv, rok := ref[string(k)]
				if ok != rok || (ok && v != rv) {
					return false
				}
			case 2: // delete
				del := tr.Delete(k)
				_, had := ref[string(k)]
				if del != had {
					return false
				}
				delete(ref, string(k))
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		// Final sweep: every reference key present with the right value.
		for k, rv := range ref {
			v, ok := tr.Get([]byte(k))
			if !ok || v != rv {
				return false
			}
		}
		count := 0
		tr.Walk(func(k []byte, v uint64) bool { count++; return true })
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortedIteration: Walk always yields strictly increasing keys.
func TestQuickSortedIteration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		for i := 0; i < 500; i++ {
			klen := 1 + rng.Intn(10)
			k := make([]byte, klen)
			rng.Read(k)
			tr.Put(k, uint64(i))
		}
		var prev []byte
		ok := true
		tr.Walk(func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNodeInvariants checks structural invariants after random loads:
// child counts within kind capacity, N4 minimum occupancy after compaction,
// and stats counts consistent with a full walk.
func TestQuickNodeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var keys [][]byte
		for i := 0; i < 800; i++ {
			k := make([]byte, 1+rng.Intn(8))
			for j := range k {
				k[j] = byte(rng.Intn(16))
			}
			if !tr.Put(k, uint64(i)) {
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			if rng.Intn(2) == 0 {
				tr.Delete(k)
			}
		}
		ok := true
		var walk func(n node) int
		walk = func(n node) int {
			if n == nil {
				return 0
			}
			h := n.h()
			if h.kind == Leaf {
				return 1
			}
			if int(h.nChildren) > h.kind.Capacity() {
				ok = false
			}
			occupancy := int(h.nChildren)
			if h.leaf != nil {
				occupancy++
			}
			// After compaction an internal node must justify existing:
			// at least 2 occupants (children + embedded leaf).
			if occupancy < 2 {
				ok = false
			}
			total := 0
			if h.leaf != nil {
				total++
			}
			seen := 0
			forEachChild(n, func(b byte, c node) bool {
				seen++
				total += walk(c)
				return true
			})
			if seen != int(h.nChildren) {
				ok = false
			}
			return total
		}
		leaves := walk(tr.root)
		return ok && leaves == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessHookFires(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	var accesses int
	tr.SetAccessHook(func(addr uint64, size int, kind NodeKind) {
		accesses++
		if addr == 0 || size <= 0 {
			t.Fatalf("bad access event addr=%d size=%d", addr, size)
		}
	})
	tr.Get(key64(50))
	if accesses == 0 {
		t.Fatal("access hook never fired on Get")
	}
	n := accesses
	tr.SetAccessHook(nil)
	tr.Get(key64(51))
	if accesses != n {
		t.Fatal("access hook fired after being cleared")
	}
}

func TestReplaceHookOnGrow(t *testing.T) {
	tr := New()
	var replaced, freed int
	tr.SetReplaceHook(func(oldAddr, newAddr uint64) {
		if newAddr == 0 {
			freed++
		} else {
			replaced++
		}
	})
	for i := 0; i < 5; i++ { // forces one N4 -> N16 grow
		tr.Put([]byte{1, byte(i)}, uint64(i))
	}
	if replaced != 1 {
		t.Fatalf("grow replace events = %d, want 1", replaced)
	}
	for i := 0; i < 5; i++ {
		tr.Delete([]byte{1, byte(i)})
	}
	if freed == 0 {
		t.Fatal("no free events on delete")
	}
}

func TestPrefixHookOnSplit(t *testing.T) {
	tr := New()
	tr.Put([]byte("abcdef1"), 1)
	tr.Put([]byte("abcdef2"), 2)
	var prefixEvents int
	tr.SetPrefixHook(func(addr uint64) { prefixEvents++ })
	tr.Put([]byte("abcX"), 3) // splits the compressed path
	if prefixEvents != 1 {
		t.Fatalf("prefix events = %d, want 1", prefixEvents)
	}
}

func TestStatsHeightAndKinds(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	st := tr.Stats()
	if st.Keys != 10000 || st.Leaves != 10000 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.N256 == 0 {
		t.Fatalf("dense load should produce N256 nodes: %+v", st)
	}
	if st.Height < 2 || st.Height > 10 {
		t.Fatalf("implausible height %d", st.Height)
	}
	if st.ModeledBytes <= 0 {
		t.Fatalf("modeled bytes %d", st.ModeledBytes)
	}
}

func TestModeledSizes(t *testing.T) {
	// Canonical sizes must be monotone in capacity and match the
	// header+keys+pointers layout of Leis et al.
	sizes := []int{
		ModeledSize(Node4, 0), ModeledSize(Node16, 0),
		ModeledSize(Node48, 0), ModeledSize(Node256, 0),
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not monotone: %v", sizes)
		}
	}
	if ModeledSize(Leaf, 8) != 16+8+8 {
		t.Fatalf("leaf size = %d", ModeledSize(Leaf, 8))
	}
}
