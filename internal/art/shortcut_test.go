package art

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocateBasics(t *testing.T) {
	tr := New(WithRegistry())
	if _, _, ok := tr.Locate([]byte("x")); ok {
		t.Fatal("Locate on empty tree returned ok")
	}
	tr.Put([]byte("only"), 1)
	if _, _, ok := tr.Locate([]byte("only")); ok {
		t.Fatal("Locate on bare-leaf root returned ok")
	}
	tr.Put([]byte("other"), 2)
	target, parent, ok := tr.Locate([]byte("only"))
	if !ok {
		t.Fatal("Locate failed on 2-key tree")
	}
	if parent.Addr != 0 {
		t.Fatal("root target should have zero parent addr")
	}
	if target.Kind != Node4 {
		t.Fatalf("target kind = %v, want N4", target.Kind)
	}
}

func TestGetAtHappyPath(t *testing.T) {
	tr := New(WithRegistry())
	keys := [][]byte{[]byte("apple"), []byte("apply"), []byte("banana")}
	for i, k := range keys {
		tr.Put(k, uint64(i))
	}
	for i, k := range keys {
		target, _, ok := tr.Locate(k)
		if !ok {
			t.Fatalf("Locate(%q) failed", k)
		}
		v, found, valid := tr.GetAt(target, k)
		if !valid || !found || v != uint64(i) {
			t.Fatalf("GetAt(%q) = (%d,%v,%v)", k, v, found, valid)
		}
	}
	// GetAt for an absent key that shares the target node: found=false,
	// but the reference itself is valid.
	target, _, _ := tr.Locate([]byte("apple"))
	if _, found, valid := tr.GetAt(target, []byte("appld")); found || !valid {
		t.Fatal("GetAt for absent sibling key should be (not found, valid)")
	}
}

func TestGetAtStaleAfterGrow(t *testing.T) {
	tr := New(WithRegistry())
	for i := 0; i < 4; i++ {
		tr.Put([]byte{9, byte(i)}, uint64(i))
	}
	target, _, ok := tr.Locate([]byte{9, 0})
	if !ok {
		t.Fatal("Locate failed")
	}
	tr.Put([]byte{9, 100}, 100) // grows N4 -> N16, invalidating the addr
	if _, _, valid := tr.GetAt(target, []byte{9, 0}); valid {
		t.Fatal("GetAt accepted a reference to a grown-away node")
	}
}

func TestGetAtStaleAfterDeepening(t *testing.T) {
	tr := New(WithRegistry())
	tr.Put([]byte("aa"), 1)
	tr.Put([]byte("ab"), 2)
	target, _, _ := tr.Locate([]byte("ab"))
	// Deepen below the 'b' slot: the leaf becomes an internal subtree.
	tr.Put([]byte("abX"), 3)
	tr.Put([]byte("abY"), 4)
	_, _, valid := tr.GetAt(target, []byte("ab"))
	if valid {
		// Only acceptable if the embedded-leaf path answered correctly.
		v, found, _ := tr.GetAt(target, []byte("ab"))
		if !found || v != 2 {
			t.Fatal("stale deepened reference produced a wrong answer")
		}
	}
}

func TestPutAtUpdateAndInsert(t *testing.T) {
	tr := New(WithRegistry())
	tr.Put([]byte{1, 1}, 10)
	tr.Put([]byte{1, 2}, 20)

	// Update through a shortcut.
	target, parent, _ := tr.Locate([]byte{1, 1})
	res := tr.PutAt(target, parent, []byte{1, 1}, 11)
	if !res.Valid || !res.Replaced || res.TargetChanged {
		t.Fatalf("PutAt update = %+v", res)
	}
	if v, _ := tr.Get([]byte{1, 1}); v != 11 {
		t.Fatalf("value after PutAt = %d", v)
	}

	// Insert a new sibling through the same target.
	res = tr.PutAt(target, parent, []byte{1, 3}, 30)
	if !res.Valid || res.Replaced {
		t.Fatalf("PutAt insert = %+v", res)
	}
	if v, ok := tr.Get([]byte{1, 3}); !ok || v != 30 {
		t.Fatalf("inserted key = (%d,%v)", v, ok)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestPutAtGrowUpdatesRoot(t *testing.T) {
	tr := New(WithRegistry())
	for i := 0; i < 4; i++ {
		tr.Put([]byte{7, byte(i)}, uint64(i))
	}
	target, parent, _ := tr.Locate([]byte{7, 0})
	res := tr.PutAt(target, parent, []byte{7, 99}, 99)
	if !res.Valid || !res.TargetChanged {
		t.Fatalf("PutAt grow = %+v", res)
	}
	if res.NewTarget.Kind != Node16 {
		t.Fatalf("grown kind = %v, want N16", res.NewTarget.Kind)
	}
	// The tree root must have been relinked to the grown node.
	for i := 0; i < 4; i++ {
		if v, ok := tr.Get([]byte{7, byte(i)}); !ok || v != uint64(i) {
			t.Fatalf("key %d lost after PutAt grow: (%d,%v)", i, v, ok)
		}
	}
	if v, ok := tr.Get([]byte{7, 99}); !ok || v != 99 {
		t.Fatal("grown insert missing")
	}
	// The new target reference must be immediately usable.
	if _, found, valid := tr.GetAt(res.NewTarget, []byte{7, 99}); !found || !valid {
		t.Fatal("NewTarget reference not usable")
	}
}

func TestPutAtGrowRelinkDeepParent(t *testing.T) {
	tr := New(WithRegistry())
	// Build a two-level structure: a root N4 over two N4 subtrees; then
	// grow one subtree via PutAt and verify the deep parent is relinked.
	for i := 0; i < 4; i++ {
		tr.Put([]byte{0xA, 1, byte(i)}, uint64(i))
	}
	for i := 0; i < 2; i++ {
		tr.Put([]byte{0xB, 2, byte(i)}, uint64(100+i))
	}
	target, parent, ok := tr.Locate([]byte{0xA, 1, 0})
	if !ok || parent.Addr == 0 {
		t.Fatalf("expected deep target with real parent, ok=%v parent=%+v", ok, parent)
	}
	res := tr.PutAt(target, parent, []byte{0xA, 1, 200}, 200)
	if !res.Valid || !res.TargetChanged {
		t.Fatalf("PutAt = %+v", res)
	}
	for i := 0; i < 4; i++ {
		if _, ok := tr.Get([]byte{0xA, 1, byte(i)}); !ok {
			t.Fatalf("key %d lost after deep grow", i)
		}
	}
	if v, ok := tr.Get([]byte{0xA, 1, 200}); !ok || v != 200 {
		t.Fatal("grown insert missing")
	}
}

func TestPutAtLeafSplit(t *testing.T) {
	tr := New(WithRegistry())
	tr.Put([]byte("car"), 1)
	tr.Put([]byte("dog"), 2)
	target, parent, _ := tr.Locate([]byte("car"))
	// "cart...": shares the leaf slot 'c' but diverges deeper -> local split.
	res := tr.PutAt(target, parent, []byte("carton"), 3)
	if !res.Valid || res.Replaced {
		t.Fatalf("PutAt leaf split = %+v", res)
	}
	for k, want := range map[string]uint64{"car": 1, "dog": 2, "carton": 3} {
		if v, ok := tr.Get([]byte(k)); !ok || v != want {
			t.Fatalf("Get(%q) = (%d,%v) want %d", k, v, ok, want)
		}
	}
}

func TestPutAtStaleRefRejected(t *testing.T) {
	tr := New(WithRegistry())
	for i := 0; i < 4; i++ {
		tr.Put([]byte{5, byte(i)}, uint64(i))
	}
	target, parent, _ := tr.Locate([]byte{5, 0})
	tr.Put([]byte{5, 50}, 50) // grow invalidates target.Addr
	res := tr.PutAt(target, parent, []byte{5, 0}, 999)
	if res.Valid {
		t.Fatal("PutAt accepted stale reference")
	}
	if v, _ := tr.Get([]byte{5, 0}); v != 0 {
		t.Fatalf("stale PutAt mutated the tree: %d", v)
	}
}

// TestQuickShortcutEquivalence: interleaving shortcut-based access with
// normal access never diverges from a reference map, across random
// workloads with churn that grows/splits/deletes nodes. Stale references
// must either answer identically or report invalid.
func TestQuickShortcutEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(WithRegistry())
		ref := map[string]uint64{}
		type sc struct {
			target, parent NodeRef
		}
		shortcuts := map[string]sc{}
		// Invalidate like the DCART Shortcut_Table does: on replacement
		// and prefix changes, drop affected entries.
		invalid := map[uint64]bool{}
		tr.SetReplaceHook(func(oldAddr, newAddr uint64) { invalid[oldAddr] = true })
		tr.SetPrefixHook(func(addr uint64) { invalid[addr] = true })

		randKey := func() []byte {
			k := make([]byte, 1+rng.Intn(5))
			for j := range k {
				k[j] = byte(rng.Intn(5))
			}
			return k
		}
		for i := 0; i < 1200; i++ {
			k := randKey()
			ks := string(k)
			switch rng.Intn(5) {
			case 0, 1: // shortcut-path put (falls back like an SOU would)
				s, ok := shortcuts[ks]
				if ok && !invalid[s.target.Addr] && !invalid[s.parent.Addr] {
					res := tr.PutAt(s.target, s.parent, k, uint64(i))
					if res.Valid {
						if res.TargetChanged {
							shortcuts[ks] = sc{res.NewTarget, s.parent}
						}
						ref[ks] = uint64(i)
						break
					}
					delete(shortcuts, ks)
				}
				tr.Put(k, uint64(i))
				ref[ks] = uint64(i)
				if tgt, par, ok := tr.Locate(k); ok {
					shortcuts[ks] = sc{tgt, par}
				}
			case 2, 3: // shortcut-path get
				s, ok := shortcuts[ks]
				want, has := ref[ks]
				if ok && !invalid[s.target.Addr] {
					v, found, valid := tr.GetAt(s.target, k)
					if valid {
						if found != has || (found && v != want) {
							return false
						}
						break
					}
					delete(shortcuts, ks)
				}
				v, found := tr.Get(k)
				if found != has || (found && v != want) {
					return false
				}
			case 4: // delete (always full-path)
				del := tr.Delete(k)
				_, has := ref[ks]
				if del != has {
					return false
				}
				delete(ref, ks)
				delete(shortcuts, ks)
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		for ks, want := range ref {
			v, ok := tr.Get([]byte(ks))
			if !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAt(t *testing.T) {
	tr := New(WithRegistry())
	tr.Put([]byte("k1"), 1)
	tr.Put([]byte("k2"), 2)
	target, _, _ := tr.Locate([]byte("k1"))
	info, ok := tr.NodeAt(target.Addr)
	if !ok || info.Kind != Node4 || info.NChildren != 2 {
		t.Fatalf("NodeAt = %+v, %v", info, ok)
	}
	if _, ok := tr.NodeAt(0xdeadbeef); ok {
		t.Fatal("NodeAt resolved a bogus address")
	}
}

func TestNodeAtRequiresRegistry(t *testing.T) {
	tr := New() // no registry
	tr.Put([]byte("k1"), 1)
	tr.Put([]byte("k2"), 2)
	target, _, _ := tr.Locate([]byte("k1"))
	if _, ok := tr.NodeAt(target.Addr); ok {
		t.Fatal("NodeAt without registry should fail")
	}
	if _, _, valid := tr.GetAt(target, []byte("k1")); valid {
		t.Fatal("GetAt without registry should be invalid")
	}
}
