package art

// NodeKind identifies the five node layouts of an adaptive radix tree:
// leaves plus the four internal layouts of Leis et al. (ICDE'13), which
// hold up to 4, 16, 48, and 256 children respectively.
type NodeKind uint8

// Node kinds, ordered by capacity.
const (
	Leaf NodeKind = iota
	Node4
	Node16
	Node48
	Node256
)

// String returns the paper's name for the kind (N4, N16, ...).
func (k NodeKind) String() string {
	switch k {
	case Leaf:
		return "Leaf"
	case Node4:
		return "N4"
	case Node16:
		return "N16"
	case Node48:
		return "N48"
	case Node256:
		return "N256"
	default:
		return "N?"
	}
}

// Capacity returns the maximum child count of the kind (0 for leaves).
func (k NodeKind) Capacity() int {
	switch k {
	case Node4:
		return 4
	case Node16:
		return 16
	case Node48:
		return 48
	case Node256:
		return 256
	default:
		return 0
	}
}

// header is the common state shared by all internal nodes: the compressed
// path (pessimistic, stored in full), the synthetic memory address used by
// the memory models, and the optional leaf for a key that terminates
// exactly at this node (so the tree supports keys that are proper prefixes
// of other keys).
type header struct {
	kind      NodeKind
	addr      uint64
	nChildren uint16
	prefix    []byte
	leaf      *leafNode
}

// node is implemented by the five concrete node types.
type node interface {
	h() *header
}

type leafNode struct {
	hdr   header
	key   []byte
	value uint64
}

func (l *leafNode) h() *header { return &l.hdr }

type node4 struct {
	hdr      header
	keys     [4]byte // sorted
	children [4]node
}

func (n *node4) h() *header { return &n.hdr }

type node16 struct {
	hdr      header
	keys     [16]byte // sorted
	children [16]node
}

func (n *node16) h() *header { return &n.hdr }

type node48 struct {
	hdr      header
	index    [256]byte // 0 = empty, else child slot + 1
	children [48]node
}

func (n *node48) h() *header { return &n.hdr }

type node256 struct {
	hdr      header
	children [256]node
}

func (n *node256) h() *header { return &n.hdr }

// findChild returns the child of n for key byte b and an opaque slot index
// usable with setChildAt. The index is only meaningful while n's child set
// is unchanged. Returns (nil, -1) when absent.
func findChild(n node, b byte) (node, int) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if v.keys[i] == b {
				return v.children[i], i
			}
		}
	case *node16:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if v.keys[i] == b {
				return v.children[i], i
			}
		}
	case *node48:
		if idx := v.index[b]; idx != 0 {
			return v.children[idx-1], int(idx - 1)
		}
	case *node256:
		if c := v.children[b]; c != nil {
			return c, int(b)
		}
	}
	return nil, -1
}

// setChildAt replaces the child at the slot index previously returned by
// findChild for byte b.
func setChildAt(n node, idx int, child node) {
	switch v := n.(type) {
	case *node4:
		v.children[idx] = child
	case *node16:
		v.children[idx] = child
	case *node48:
		v.children[idx] = child
	case *node256:
		v.children[idx] = child
	}
}

// addChildRaw inserts child under byte b, assuming capacity is available
// and b is not already present. Callers must grow the node first if full.
func addChildRaw(n node, b byte, child node) {
	h := n.h()
	switch v := n.(type) {
	case *node4:
		i := int(h.nChildren)
		for i > 0 && v.keys[i-1] > b {
			v.keys[i] = v.keys[i-1]
			v.children[i] = v.children[i-1]
			i--
		}
		v.keys[i] = b
		v.children[i] = child
	case *node16:
		i := int(h.nChildren)
		for i > 0 && v.keys[i-1] > b {
			v.keys[i] = v.keys[i-1]
			v.children[i] = v.children[i-1]
			i--
		}
		v.keys[i] = b
		v.children[i] = child
	case *node48:
		slot := int(h.nChildren)
		// nChildren slots are always compact in this implementation:
		// removeChildRaw compacts on delete.
		v.children[slot] = child
		v.index[b] = byte(slot + 1)
	case *node256:
		v.children[b] = child
	}
	h.nChildren++
}

// removeChildRaw removes the child under byte b. The caller must have
// verified presence.
func removeChildRaw(n node, b byte) {
	h := n.h()
	switch v := n.(type) {
	case *node4:
		i := 0
		for ; i < int(h.nChildren); i++ {
			if v.keys[i] == b {
				break
			}
		}
		copy(v.keys[i:], v.keys[i+1:int(h.nChildren)])
		copy(v.children[i:], v.children[i+1:int(h.nChildren)])
		v.children[h.nChildren-1] = nil
	case *node16:
		i := 0
		for ; i < int(h.nChildren); i++ {
			if v.keys[i] == b {
				break
			}
		}
		copy(v.keys[i:], v.keys[i+1:int(h.nChildren)])
		copy(v.children[i:], v.children[i+1:int(h.nChildren)])
		v.children[h.nChildren-1] = nil
	case *node48:
		slot := int(v.index[b]) - 1
		v.index[b] = 0
		last := int(h.nChildren) - 1
		if slot != last {
			// Compact: move the last slot into the hole and fix its index.
			moved := v.children[last]
			v.children[slot] = moved
			for kb := 0; kb < 256; kb++ {
				if int(v.index[kb]) == last+1 {
					v.index[kb] = byte(slot + 1)
					break
				}
			}
		}
		v.children[last] = nil
	case *node256:
		v.children[b] = nil
	}
	h.nChildren--
}

// full reports whether n has reached its kind's child capacity.
func full(n node) bool {
	h := n.h()
	return int(h.nChildren) >= h.kind.Capacity()
}

// forEachChild calls fn for every (byte, child) pair in ascending byte
// order; fn returning false stops the iteration and propagates false.
func forEachChild(n node, fn func(b byte, c node) bool) bool {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if !fn(v.keys[i], v.children[i]) {
				return false
			}
		}
	case *node16:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if !fn(v.keys[i], v.children[i]) {
				return false
			}
		}
	case *node48:
		for b := 0; b < 256; b++ {
			if idx := v.index[b]; idx != 0 {
				if !fn(byte(b), v.children[idx-1]) {
					return false
				}
			}
		}
	case *node256:
		for b := 0; b < 256; b++ {
			if c := v.children[b]; c != nil {
				if !fn(byte(b), c) {
					return false
				}
			}
		}
	}
	return true
}

// forEachChildReverse is forEachChild in descending byte order.
func forEachChildReverse(n node, fn func(b byte, c node) bool) bool {
	switch v := n.(type) {
	case *node4:
		for i := int(v.hdr.nChildren) - 1; i >= 0; i-- {
			if !fn(v.keys[i], v.children[i]) {
				return false
			}
		}
	case *node16:
		for i := int(v.hdr.nChildren) - 1; i >= 0; i-- {
			if !fn(v.keys[i], v.children[i]) {
				return false
			}
		}
	case *node48:
		for b := 255; b >= 0; b-- {
			if idx := v.index[b]; idx != 0 {
				if !fn(byte(b), v.children[idx-1]) {
					return false
				}
			}
		}
	case *node256:
		for b := 255; b >= 0; b-- {
			if c := v.children[b]; c != nil {
				if !fn(byte(b), c) {
					return false
				}
			}
		}
	}
	return true
}

// ModeledSize returns the canonical in-memory footprint in bytes of a node
// of the given kind, as the memory models account it. The internal-node
// sizes follow Leis et al. Table 1 (header + key array + pointer array);
// leaves are header + value + key bytes.
func ModeledSize(kind NodeKind, keyLen int) int {
	const hdr = 16 // type tag + prefix length + child count + padding
	switch kind {
	case Leaf:
		return hdr + 8 + keyLen
	case Node4:
		return hdr + 4 + 4*8
	case Node16:
		return hdr + 16 + 16*8
	case Node48:
		return hdr + 256 + 48*8
	case Node256:
		return hdr + 256*8
	default:
		return hdr
	}
}

func modeledSizeOf(n node) int {
	if l, ok := n.(*leafNode); ok {
		return ModeledSize(Leaf, len(l.key))
	}
	return ModeledSize(n.h().kind, 0)
}
