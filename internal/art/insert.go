package art

// insert adds (key, value) to the subtree rooted at n, whose path consumes
// key[:depth]. It returns the possibly replaced subtree root and whether an
// existing value was overwritten.
func (t *Tree) insert(n node, key []byte, depth int, value uint64) (node, bool) {
	if n == nil {
		return t.newLeaf(key, value), false
	}
	t.access(n)
	h := n.h()

	if h.kind == Leaf {
		l := n.(*leafNode)
		if equalKeys(l.key, key) {
			l.value = value
			return n, true
		}
		// Lazy-expansion split: build an N4 holding the common prefix of
		// the two keys past depth, with both leaves below it.
		cp := commonPrefixLen(l.key[depth:], key[depth:])
		nn := t.newNode4(copyBytes(key[depth : depth+cp]))
		t.placeLeaf(nn, l, depth+cp)
		t.placeLeaf(nn, t.newLeaf(key, value), depth+cp)
		return nn, false
	}

	p := h.prefix
	cp := commonPrefixLen(p, key[depth:])
	if cp < len(p) {
		// Prefix mismatch: split this node's compressed path at cp.
		nn := t.newNode4(copyBytes(p[:cp]))
		splitByte := p[cp]
		h.prefix = copyBytes(p[cp+1:])
		t.prefixChanged(n)
		addChildRaw(nn, splitByte, n)
		if depth+cp == len(key) {
			nn.hdr.leaf = t.newLeaf(key, value)
		} else {
			addChildRaw(nn, key[depth+cp], t.newLeaf(key, value))
		}
		return nn, false
	}

	depth += len(p)
	if depth == len(key) {
		// Key terminates at this node: use the embedded leaf slot.
		if h.leaf != nil {
			t.access(h.leaf)
			h.leaf.value = value
			return n, true
		}
		h.leaf = t.newLeaf(key, value)
		return n, false
	}

	b := key[depth]
	c, idx := findChild(n, b)
	if c == nil {
		return t.addChild(n, b, t.newLeaf(key, value)), false
	}
	nc, replaced := t.insert(c, key, depth+1, value)
	if nc != c {
		setChildAt(n, idx, nc)
	}
	return n, replaced
}

// placeLeaf attaches l below n (an N4 under construction) given that
// l.key[:depth] equals n's consumed path. If the key is exhausted the leaf
// becomes n's embedded leaf.
func (t *Tree) placeLeaf(n *node4, l *leafNode, depth int) {
	if depth == len(l.key) {
		n.hdr.leaf = l
		return
	}
	addChildRaw(n, l.key[depth], l)
}

// addChild inserts child under byte b, growing n to the next kind first if
// it is full. It returns the node now rooting this position (n or its
// grown replacement).
func (t *Tree) addChild(n node, b byte, child node) node {
	if !full(n) {
		addChildRaw(n, b, child)
		return n
	}
	g := t.grow(n)
	addChildRaw(g, b, child)
	return g
}

// grow converts a full node to the next larger kind, moving its header
// state and children. The grown node gets a fresh address; the old node is
// reported replaced (shortcut tables key on addresses).
func (t *Tree) grow(n node) node {
	h := n.h()
	var g node
	switch v := n.(type) {
	case *node4:
		ng := &node16{}
		ng.hdr = header{kind: Node16, prefix: h.prefix, leaf: h.leaf}
		for i := 0; i < int(h.nChildren); i++ {
			ng.keys[i] = v.keys[i]
			ng.children[i] = v.children[i]
		}
		ng.hdr.nChildren = h.nChildren
		g = ng
	case *node16:
		ng := &node48{}
		ng.hdr = header{kind: Node48, prefix: h.prefix, leaf: h.leaf}
		for i := 0; i < int(h.nChildren); i++ {
			ng.children[i] = v.children[i]
			ng.index[v.keys[i]] = byte(i + 1)
		}
		ng.hdr.nChildren = h.nChildren
		g = ng
	case *node48:
		ng := &node256{}
		ng.hdr = header{kind: Node256, prefix: h.prefix, leaf: h.leaf}
		for b := 0; b < 256; b++ {
			if idx := v.index[b]; idx != 0 {
				ng.children[b] = v.children[idx-1]
			}
		}
		ng.hdr.nChildren = h.nChildren
		g = ng
	default:
		panic("art: grow on non-growable node")
	}
	t.alloc(g)
	t.replace(n, g)
	return g
}

// equalKeys compares two keys for equality.
func equalKeys(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
