package art

// Shrink thresholds with hysteresis: a node shrinks only when its occupancy
// falls comfortably below the next smaller kind's capacity, so a workload
// oscillating around a boundary does not thrash between layouts.
const (
	shrink16to4   = 3
	shrink48to16  = 12
	shrink256to48 = 40
)

// remove deletes key from the subtree rooted at n (path consumes
// key[:depth]), returning the new subtree root and whether a key was
// removed.
func (t *Tree) remove(n node, key []byte, depth int) (node, bool) {
	if n == nil {
		return nil, false
	}
	t.access(n)
	h := n.h()

	if h.kind == Leaf {
		l := n.(*leafNode)
		if equalKeys(l.key, key) {
			t.free(l)
			return nil, true
		}
		return n, false
	}

	if !prefixMatches(key, depth, h.prefix) {
		return n, false
	}
	depth += len(h.prefix)

	if depth == len(key) {
		if h.leaf == nil {
			return n, false
		}
		t.free(h.leaf)
		h.leaf = nil
		return t.compact(n), true
	}

	b := key[depth]
	c, idx := findChild(n, b)
	if c == nil {
		return n, false
	}
	nc, deleted := t.remove(c, key, depth+1)
	if !deleted {
		return n, false
	}
	if nc == nil {
		removeChildRaw(n, b)
	} else if nc != c {
		setChildAt(n, idx, nc)
	}
	return t.compact(n), true
}

// compact applies post-delete maintenance to n: collapse an emptied N4
// into its sole survivor (restoring path compression) or shrink an
// underfull node to the next smaller kind. Returns the node now rooting
// this position.
func (t *Tree) compact(n node) node {
	h := n.h()
	switch v := n.(type) {
	case *node4:
		switch {
		case h.nChildren == 0 && h.leaf != nil:
			// Only the embedded leaf remains: the node dissolves into it.
			l := h.leaf
			t.free(n)
			return l
		case h.nChildren == 0 && h.leaf == nil:
			t.free(n)
			return nil
		case h.nChildren == 1 && h.leaf == nil:
			c := v.children[0]
			if cl, isLeaf := c.(*leafNode); isLeaf {
				// Leaves carry their full key; no prefix to maintain.
				t.free(n)
				return cl
			}
			// Merge the child upward: its path absorbs this node's prefix
			// and the linking byte.
			ch := c.h()
			merged := make([]byte, 0, len(h.prefix)+1+len(ch.prefix))
			merged = append(merged, h.prefix...)
			merged = append(merged, v.keys[0])
			merged = append(merged, ch.prefix...)
			ch.prefix = merged
			t.prefixChanged(c)
			t.free(n)
			return c
		}
	case *node16:
		if int(h.nChildren) <= shrink16to4 {
			return t.shrink(n)
		}
	case *node48:
		if int(h.nChildren) <= shrink48to16 {
			return t.shrink(n)
		}
	case *node256:
		if int(h.nChildren) <= shrink256to48 {
			return t.shrink(n)
		}
	}
	return n
}

// shrink converts n to the next smaller kind. Like grow, the replacement
// gets a fresh address and the old one is reported replaced.
func (t *Tree) shrink(n node) node {
	h := n.h()
	var s node
	switch v := n.(type) {
	case *node16:
		ns := &node4{}
		ns.hdr = header{kind: Node4, prefix: h.prefix, leaf: h.leaf}
		for i := 0; i < int(h.nChildren); i++ {
			ns.keys[i] = v.keys[i]
			ns.children[i] = v.children[i]
		}
		ns.hdr.nChildren = h.nChildren
		s = ns
	case *node48:
		ns := &node16{}
		ns.hdr = header{kind: Node16, prefix: h.prefix, leaf: h.leaf}
		i := 0
		for b := 0; b < 256; b++ {
			if idx := v.index[b]; idx != 0 {
				ns.keys[i] = byte(b)
				ns.children[i] = v.children[idx-1]
				i++
			}
		}
		ns.hdr.nChildren = uint16(i)
		s = ns
	case *node256:
		ns := &node48{}
		ns.hdr = header{kind: Node48, prefix: h.prefix, leaf: h.leaf}
		i := 0
		for b := 0; b < 256; b++ {
			if c := v.children[b]; c != nil {
				ns.children[i] = c
				ns.index[b] = byte(i + 1)
				i++
			}
		}
		ns.hdr.nChildren = uint16(i)
		s = ns
	default:
		panic("art: shrink on non-shrinkable node")
	}
	t.alloc(s)
	t.replace(n, s)
	return s
}
