package art

import (
	"bytes"
	"testing"
)

// FuzzTreeOps drives the tree with an operation tape decoded from raw
// fuzz input and cross-checks every answer against a Go map. Run the seed
// corpus with `go test`; explore with `go test -fuzz=FuzzTreeOps`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte("\x01a\x01b\x02a\x03a\x01ab\x01abc\x02ab"))
	f.Add([]byte{1, 0, 1, 1, 2, 0, 3, 1, 1, 5, 5, 5})
	f.Add(bytes.Repeat([]byte{1, 7, 7, 2, 7, 7, 3, 7, 7}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New(WithRegistry())
		ref := map[string]uint64{}
		i := 0
		next := func() (byte, bool) {
			if i >= len(data) {
				return 0, false
			}
			b := data[i]
			i++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			// Key: up to 4 bytes read from the tape.
			klen := int(op>>4)%4 + 1
			key := make([]byte, 0, klen)
			for j := 0; j < klen; j++ {
				b, ok := next()
				if !ok {
					break
				}
				key = append(key, b%8)
			}
			if len(key) == 0 {
				break
			}
			switch op % 3 {
			case 0:
				v := uint64(op) * 31
				repl := tr.Put(key, v)
				if _, had := ref[string(key)]; had != repl {
					t.Fatalf("Put(%x) replaced=%v, map had=%v", key, repl, had)
				}
				ref[string(key)] = v
			case 1:
				v, ok := tr.Get(key)
				rv, rok := ref[string(key)]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("Get(%x) = (%d,%v), want (%d,%v)", key, v, ok, rv, rok)
				}
			case 2:
				del := tr.Delete(key)
				if _, had := ref[string(key)]; had != del {
					t.Fatalf("Delete(%x) = %v, map had=%v", key, del, had)
				}
				delete(ref, string(key))
			}
			if tr.Len() != len(ref) {
				t.Fatalf("Len=%d, map=%d", tr.Len(), len(ref))
			}
		}
		// Full sweep: content and order.
		var prev []byte
		n := 0
		tr.Walk(func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("walk order violated at %x", k)
			}
			if ref[string(k)] != v {
				t.Fatalf("walk value mismatch at %x", k)
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		if n != len(ref) {
			t.Fatalf("walk visited %d, map has %d", n, len(ref))
		}
	})
}
