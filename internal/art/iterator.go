package art

import "bytes"

// Iterator is a resumable cursor over the tree in ascending key order,
// supporting Seek. Unlike Walk, it does not hold the whole traversal on
// the Go stack, so callers can interleave iteration with other work.
//
// The iterator captures no snapshot: mutating the tree while an iterator
// is open invalidates it (behaviour is then unspecified, though memory
// safety is preserved). This is the usual contract for in-memory ordered
// containers.
type Iterator struct {
	tree  *Tree
	stack []iterFrame
	key   []byte
	value uint64
	valid bool
}

// iterFrame is one level of the descent: a node plus the next child
// position to visit. pos semantics depend on the node kind:
//   - n4/n16: index into the keys array
//   - n48/n256: next byte value to probe (0..256)
//
// pos == -1 means the node's embedded leaf is still pending.
type iterFrame struct {
	n   node
	pos int
}

// Iterate returns an iterator positioned before the first key; call Next
// to advance.
func (t *Tree) Iterate() *Iterator {
	it := &Iterator{tree: t}
	if t.root != nil {
		it.push(t.root)
	}
	return it
}

// push enters a node, scheduling its embedded leaf (if any) first.
func (it *Iterator) push(n node) {
	pos := 0
	if h := n.h(); h.kind != Leaf && h.leaf != nil {
		pos = -1
	}
	it.stack = append(it.stack, iterFrame{n: n, pos: pos})
}

// Next advances to the next key, reporting whether one exists.
func (it *Iterator) Next() bool {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		h := top.n.h()

		if h.kind == Leaf {
			l := top.n.(*leafNode)
			it.stack = it.stack[:len(it.stack)-1]
			it.setCurrent(l)
			return true
		}
		if top.pos == -1 {
			top.pos = 0
			it.setCurrent(h.leaf)
			return true
		}

		child, next := nextChildFrom(top.n, top.pos)
		if child == nil {
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		top.pos = next
		it.push(child)
	}
	it.valid = false
	return false
}

// nextChildFrom returns the first child at or after position pos, plus
// the position to resume from afterwards; nil when exhausted.
func nextChildFrom(n node, pos int) (node, int) {
	switch v := n.(type) {
	case *node4:
		if pos < int(v.hdr.nChildren) {
			return v.children[pos], pos + 1
		}
	case *node16:
		if pos < int(v.hdr.nChildren) {
			return v.children[pos], pos + 1
		}
	case *node48:
		for b := pos; b < 256; b++ {
			if idx := v.index[b]; idx != 0 {
				return v.children[idx-1], b + 1
			}
		}
	case *node256:
		for b := pos; b < 256; b++ {
			if c := v.children[b]; c != nil {
				return c, b + 1
			}
		}
	}
	return nil, 0
}

func (it *Iterator) setCurrent(l *leafNode) {
	it.key = l.key
	it.value = l.value
	it.valid = true
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key (valid until the next mutation; do not
// modify).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() uint64 { return it.value }

// Seek repositions the iterator so the next call to Next returns the
// first key >= target. Seek is O(depth) plus the per-level position scan.
func (it *Iterator) Seek(target []byte) {
	it.stack = it.stack[:0]
	it.valid = false
	n := it.tree.root
	depth := 0
	for n != nil {
		h := n.h()
		if h.kind == Leaf {
			l := n.(*leafNode)
			if bytes.Compare(l.key, target) >= 0 {
				it.stack = append(it.stack, iterFrame{n: n, pos: 0})
			}
			return
		}
		// Compare the compressed path against the target window.
		p := h.prefix
		rem := target[depth:]
		cp := commonPrefixLen(p, rem)
		if cp < len(p) {
			if cp == len(rem) || p[cp] > rem[cp] {
				// Subtree entirely >= target: everything here qualifies.
				it.push(n)
			}
			// Else the subtree is entirely < target: nothing to add.
			return
		}
		depth += len(p)
		if depth == len(target) {
			// Target ends exactly here: the whole node (including its
			// embedded leaf) is >= target.
			it.push(n)
			return
		}
		b := target[depth]
		// Schedule the children strictly greater than b, then descend
		// into the child equal to b (whose subtree straddles the bound).
		eq, framePos := seekFrame(n, b)
		if framePos >= 0 {
			it.stack = append(it.stack, iterFrame{n: n, pos: framePos})
		}
		if eq == nil {
			return
		}
		n = eq
		depth++
	}
}

// seekFrame returns the child exactly at byte b (nil if none) and the
// frame position from which strictly-greater children start (-1 when
// there are none).
func seekFrame(n node, b byte) (node, int) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if v.keys[i] >= b {
				eqChild := node(nil)
				pos := i
				if v.keys[i] == b {
					eqChild = v.children[i]
					pos = i + 1
				}
				if pos >= int(v.hdr.nChildren) {
					pos = -1
				}
				return eqChild, pos
			}
		}
		return nil, -1
	case *node16:
		for i := 0; i < int(v.hdr.nChildren); i++ {
			if v.keys[i] >= b {
				eqChild := node(nil)
				pos := i
				if v.keys[i] == b {
					eqChild = v.children[i]
					pos = i + 1
				}
				if pos >= int(v.hdr.nChildren) {
					pos = -1
				}
				return eqChild, pos
			}
		}
		return nil, -1
	case *node48:
		var eq node
		if idx := v.index[b]; idx != 0 {
			eq = v.children[idx-1]
		}
		for nb := int(b) + 1; nb < 256; nb++ {
			if v.index[nb] != 0 {
				return eq, nb
			}
		}
		return eq, -1
	case *node256:
		eq := v.children[b]
		for nb := int(b) + 1; nb < 256; nb++ {
			if v.children[nb] != nil {
				return eq, nb
			}
		}
		return eq, -1
	}
	return nil, -1
}
