package art

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(23))
	ref := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(12))
		rng.Read(k)
		v := rng.Uint64()
		tr.Put(k, v)
		ref[string(k)] = v
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(ref) {
		t.Fatalf("restored %d keys, want %d", back.Len(), len(ref))
	}
	for ks, want := range ref {
		if v, ok := back.Get([]byte(ks)); !ok || v != want {
			t.Fatalf("restored Get(%x) = (%d,%v), want %d", ks, v, ok, want)
		}
	}
	// Structural equality: same node census (shape is content-determined).
	a, b := tr.Stats(), back.Stats()
	if a.N4 != b.N4 || a.N16 != b.N16 || a.N48 != b.N48 || a.N256 != b.N256 ||
		a.Height != b.Height {
		t.Fatalf("restored structure differs: %+v vs %+v", a, b)
	}
}

func TestSnapshotEmptyTree(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("restored empty tree has %d keys", back.Len())
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	data := buf.Bytes()

	// Flip a payload byte: either the load fails structurally or the
	// checksum catches it.
	for _, pos := range []int{20, len(data) / 2, len(data) - 5} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0xFF
		if _, err := ReadSnapshot(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncation.
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSnapshotPreservesRegistryOption(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), 1)
	tr.Put([]byte("b"), 2)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	back, err := ReadSnapshot(&buf, WithRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if target, _, ok := back.Locate([]byte("a")); !ok {
		t.Fatal("restored tree lacks registry support")
	} else if _, ok := back.NodeAt(target.Addr); !ok {
		t.Fatal("registry not populated on restore")
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, keys, ref := buildRandomTree(rng, 150, 7, 8)
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		if back.Len() != len(keys) {
			return false
		}
		for _, k := range keys {
			v, ok := back.Get([]byte(k))
			if !ok || v != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
