package art

import "bytes"

// This file implements the "shortcut" interface of the DCART paper
// (§III-C): a Shortcut_Table entry <key, target-node-address,
// parent-node-address> lets an operating unit jump straight to the
// internal node that owns a key's final slot, skipping the root descent.
//
// The tree guarantees address stability except across grow/shrink (which
// fire the ReplaceHook) and prefix rewrites (PrefixHook); holders of
// NodeRefs subscribe to those hooks to invalidate stale entries, and GetAt
// / PutAt additionally re-validate at use time, falling back to a full
// descent when a reference cannot be proven safe.

// NodeRef identifies a node for shortcut-based access. Depth is the number
// of key bytes consumed after matching the node's compressed path, i.e.
// the index of the child byte the key selects at this node.
type NodeRef struct {
	Addr  uint64
	Kind  NodeKind
	Depth int
}

// NodeInfo describes a node for memory modeling.
type NodeInfo struct {
	Kind      NodeKind
	NChildren int
	PrefixLen int
	Size      int
}

// NodeAt resolves a synthetic address to node metadata. Requires
// WithRegistry. ok is false when no live node has that address.
func (t *Tree) NodeAt(addr uint64) (NodeInfo, bool) {
	n, ok := t.registry[addr]
	if !ok {
		return NodeInfo{}, false
	}
	h := n.h()
	return NodeInfo{
		Kind:      h.kind,
		NChildren: int(h.nChildren),
		PrefixLen: len(h.prefix),
		Size:      modeledSizeOf(n),
	}, true
}

// Locate descends for key and returns the target node — the deepest
// internal node owning key's final slot (an existing leaf, the embedded
// leaf slot, or the empty slot an insert would fill) — and its parent
// (Addr 0 when the target is the root). ok is false when the tree is
// empty, rooted at a bare leaf, or the descent hits a compressed-path
// mismatch (an insert there must split a prefix, which the shortcut
// interface does not perform).
//
// Locate fires the access hook for each node visited, like Get.
func (t *Tree) Locate(key []byte) (target, parent NodeRef, ok bool) {
	n := t.root
	if n == nil || n.h().kind == Leaf {
		return NodeRef{}, NodeRef{}, false
	}
	depth := 0
	var par NodeRef
	for {
		t.access(n)
		h := n.h()
		if !prefixMatches(key, depth, h.prefix) {
			return NodeRef{}, NodeRef{}, false
		}
		depth += len(h.prefix)
		self := NodeRef{Addr: h.addr, Kind: h.kind, Depth: depth}
		if depth == len(key) {
			return self, par, true
		}
		c, _ := findChild(n, key[depth])
		if c == nil || c.h().kind == Leaf {
			return self, par, true
		}
		par = self
		n = c
		depth++
	}
}

// resolveTarget maps ref back to a live internal node and re-validates the
// ref against key: the node's compressed path must occupy exactly the
// window of key ending at ref.Depth. Returns nil when the ref cannot be
// trusted.
func (t *Tree) resolveTarget(ref NodeRef, key []byte) node {
	if t.registry == nil {
		return nil
	}
	n, ok := t.registry[ref.Addr]
	if !ok {
		return nil
	}
	h := n.h()
	if h.kind == Leaf || ref.Depth > len(key) {
		return nil
	}
	start := ref.Depth - len(h.prefix)
	if start < 0 {
		return nil
	}
	if !bytes.Equal(key[start:ref.Depth], h.prefix) {
		return nil
	}
	return n
}

// GetAt reads key assuming ref is its target node, touching only the
// target node (and the leaf) instead of the whole root path. valid=false
// means the reference was stale and the caller must fall back to Get.
func (t *Tree) GetAt(ref NodeRef, key []byte) (value uint64, found, valid bool) {
	n := t.resolveTarget(ref, key)
	if n == nil {
		return 0, false, false
	}
	t.access(n)
	h := n.h()
	if ref.Depth == len(key) {
		if h.leaf == nil {
			return 0, false, true
		}
		t.access(h.leaf)
		return h.leaf.value, true, true
	}
	c, _ := findChild(n, key[ref.Depth])
	if c == nil {
		return 0, false, true
	}
	if l, isLeaf := c.(*leafNode); isLeaf {
		t.access(l)
		if equalKeys(l.key, key) {
			return l.value, true, true
		}
		return 0, false, true
	}
	// The tree deepened below this slot since the shortcut was taken.
	return 0, false, false
}

// PutResult reports the outcome of PutAt.
type PutResult struct {
	// Valid is false when the references were stale; the caller must fall
	// back to Put (no mutation happened).
	Valid bool
	// Replaced is true when an existing value was overwritten.
	Replaced bool
	// TargetChanged is true when the write grew the target node; NewTarget
	// is its replacement reference and any shortcut entry should be
	// updated (paper: "the corresponding entry in Shortcut_Table needs to
	// be updated when this operation causes a change in the type of
	// Node_X").
	TargetChanged bool
	NewTarget     NodeRef
}

// PutAt writes (key, value) assuming target is key's target node and
// parent its parent (parent.Addr == 0 when target is the root). On a
// stale reference it performs no mutation and returns Valid=false.
func (t *Tree) PutAt(target, parent NodeRef, key []byte, value uint64) PutResult {
	n := t.resolveTarget(target, key)
	if n == nil {
		return PutResult{}
	}
	t.access(n)
	h := n.h()

	if target.Depth == len(key) {
		if h.leaf != nil {
			t.access(h.leaf)
			h.leaf.value = value
			return PutResult{Valid: true, Replaced: true}
		}
		h.leaf = t.newLeaf(key, value)
		t.size++
		return PutResult{Valid: true}
	}

	b := key[target.Depth]
	c, idx := findChild(n, b)
	switch {
	case c == nil:
		// Fresh insert at this node. If the node is full it will grow and
		// change address, so the parent link must be verified first.
		if full(n) && !t.verifyParentLink(parent, n, key) {
			return PutResult{}
		}
		g := t.addChild(n, b, t.newLeaf(key, value))
		t.size++
		res := PutResult{Valid: true}
		if g != n {
			t.relink(parent, g, key)
			gh := g.h()
			res.TargetChanged = true
			res.NewTarget = NodeRef{Addr: gh.addr, Kind: gh.kind, Depth: target.Depth}
		}
		return res

	default:
		if l, isLeaf := c.(*leafNode); isLeaf {
			t.access(l)
			if equalKeys(l.key, key) {
				l.value = value
				return PutResult{Valid: true, Replaced: true}
			}
			// Split the leaf locally, exactly as a full descent would.
			depth := target.Depth + 1
			cp := commonPrefixLen(l.key[depth:], key[depth:])
			nn := t.newNode4(copyBytes(key[depth : depth+cp]))
			t.placeLeaf(nn, l, depth+cp)
			t.placeLeaf(nn, t.newLeaf(key, value), depth+cp)
			setChildAt(n, idx, nn)
			t.size++
			return PutResult{Valid: true}
		}
		// Subtree deepened; this node is no longer key's target.
		return PutResult{}
	}
}

// verifyParentLink checks that parent resolves to a live node whose child
// slot for key actually points at child (or that child is the root when
// parent.Addr is 0).
func (t *Tree) verifyParentLink(parent NodeRef, child node, key []byte) bool {
	if parent.Addr == 0 {
		return t.root == child
	}
	p, ok := t.registry[parent.Addr]
	if !ok || parent.Depth >= len(key) {
		return false
	}
	c, _ := findChild(p, key[parent.Depth])
	return c == child
}

// relink points the parent's child slot (or the root) at g after a grow.
// Callers must have validated the link via verifyParentLink.
func (t *Tree) relink(parent NodeRef, g node, key []byte) {
	if parent.Addr == 0 {
		t.root = g
		return
	}
	p := t.registry[parent.Addr]
	t.access(p)
	_, idx := findChild(p, key[parent.Depth])
	setChildAt(p, idx, g)
}
