package art

// Stats summarizes the structural state of a tree.
type Stats struct {
	Keys         int
	Leaves       int64
	N4, N16, N48 int64
	N256         int64
	Height       int     // max nodes on a root-to-leaf path
	AvgPrefixLen float64 // mean compressed-path length over internal nodes
	ModeledBytes int64   // footprint under the canonical size model
}

// Stats walks the tree and returns its structural summary. The walk does
// not fire access hooks (it is bookkeeping, not a modeled tree operation).
func (t *Tree) Stats() Stats {
	s := Stats{
		Keys:         t.size,
		Leaves:       t.counts[Leaf],
		N4:           t.counts[Node4],
		N16:          t.counts[Node16],
		N48:          t.counts[Node48],
		N256:         t.counts[Node256],
		ModeledBytes: t.bytes,
	}
	var prefixSum, internal int64
	var walk func(n node, depth int)
	walk = func(n node, depth int) {
		if n == nil {
			return
		}
		if depth > s.Height {
			s.Height = depth
		}
		if n.h().kind == Leaf {
			return
		}
		prefixSum += int64(len(n.h().prefix))
		internal++
		forEachChild(n, func(_ byte, c node) bool {
			walk(c, depth+1)
			return true
		})
	}
	walk(t.root, 1)
	if internal > 0 {
		s.AvgPrefixLen = float64(prefixSum) / float64(internal)
	}
	return s
}

// Load inserts keys[i] -> values[i] in order; values may be nil, in which
// case each key maps to its index. A convenience for benchmark setup.
func (t *Tree) Load(keys [][]byte, values []uint64) {
	for i, k := range keys {
		v := uint64(i)
		if values != nil {
			v = values[i]
		}
		t.Put(k, v)
	}
}
