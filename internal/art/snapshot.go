package art

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot format: a sorted stream of key/value pairs with a checksummed
// footer. Rebuilding from sorted pairs reproduces the tree exactly (ART
// shape is insertion-order independent), so structure is not serialized.
//
//	magic   [8]byte  "ARTSNAP1"
//	count   uint64
//	entries count x { keyLen uvarint, key [keyLen]byte, value uint64 }
//	crc32   uint32 (IEEE, over everything before it)
var snapshotMagic = [8]byte{'A', 'R', 'T', 'S', 'N', 'A', 'P', '1'}

// WriteTo serializes the tree's contents to w in snapshot format,
// returning the bytes written. The tree is not mutated.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return WriteSnapshot(w, t.size, t.Walk)
}

// WriteSnapshot writes count entries, supplied in ascending key order by
// iterate, in snapshot format. It is the codec behind Tree.WriteTo and is
// reusable by any ordered key/value container (e.g. the concurrent tree).
func WriteSnapshot(w io.Writer, count int,
	iterate func(fn func(key []byte, value uint64) bool) bool) (int64, error) {

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return 0, err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(count))
	if _, err := bw.Write(u64[:]); err != nil {
		return 0, err
	}

	var outerErr error
	var varint [binary.MaxVarintLen64]byte
	written := int64(16)
	n := 0
	iterate(func(key []byte, value uint64) bool {
		vn := binary.PutUvarint(varint[:], uint64(len(key)))
		if _, err := bw.Write(varint[:vn]); err != nil {
			outerErr = err
			return false
		}
		if _, err := bw.Write(key); err != nil {
			outerErr = err
			return false
		}
		binary.BigEndian.PutUint64(u64[:], value)
		if _, err := bw.Write(u64[:]); err != nil {
			outerErr = err
			return false
		}
		written += int64(vn + len(key) + 8)
		n++
		return true
	})
	if outerErr != nil {
		return written, outerErr
	}
	if n != count {
		return written, fmt.Errorf("art: snapshot iterate yielded %d entries, declared %d", n, count)
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	// Footer goes to w only (it is the checksum of what crc consumed).
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := w.Write(foot[:]); err != nil {
		return written, err
	}
	return written + 4, nil
}

// hashingReader hashes exactly the bytes its consumer reads, leaving any
// underlying read-ahead out of the sum.
type hashingReader struct {
	r   io.Reader
	crc interface{ Write(p []byte) (int, error) }
}

func (h *hashingReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.crc.Write(p[:n])
	}
	return n, err
}

// ReadSnapshot reconstructs a tree from snapshot data, validating the
// checksum. Options are forwarded to New (e.g. WithRegistry).
func ReadSnapshot(r io.Reader, opts ...Option) (*Tree, error) {
	t := New(opts...)
	err := ReadSnapshotEntries(r, func(key []byte, value uint64) error {
		if t.Put(key, value) {
			return fmt.Errorf("duplicate key %x", key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ReadSnapshotEntries streams a snapshot's entries to fn, validating the
// format and checksum. fn returning an error aborts the read.
func ReadSnapshotEntries(r io.Reader, fn func(key []byte, value uint64) error) error {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	// payload hashes exactly the bytes consumed from it; br below it may
	// read ahead (including into the footer) without affecting the sum.
	payload := &hashingReader{r: br, crc: crc}

	var magic [8]byte
	if _, err := io.ReadFull(payload, magic[:]); err != nil {
		return fmt.Errorf("art: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("art: bad snapshot magic %q", magic[:])
	}
	var u64 [8]byte
	if _, err := io.ReadFull(payload, u64[:]); err != nil {
		return fmt.Errorf("art: snapshot count: %w", err)
	}
	count := binary.BigEndian.Uint64(u64[:])

	single := make([]byte, 1)
	readUvarint := func() (uint64, error) {
		var x uint64
		var shift uint
		for {
			if _, err := io.ReadFull(payload, single); err != nil {
				return 0, err
			}
			b := single[0]
			if b < 0x80 {
				return x | uint64(b)<<shift, nil
			}
			x |= uint64(b&0x7f) << shift
			shift += 7
			if shift > 63 {
				return 0, fmt.Errorf("uvarint overflow")
			}
		}
	}
	for i := uint64(0); i < count; i++ {
		klen, err := readUvarint()
		if err != nil {
			return fmt.Errorf("art: entry %d key length: %w", i, err)
		}
		if klen > 1<<20 {
			return fmt.Errorf("art: entry %d key length %d implausible", i, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(payload, key); err != nil {
			return fmt.Errorf("art: entry %d key: %w", i, err)
		}
		if _, err := io.ReadFull(payload, u64[:]); err != nil {
			return fmt.Errorf("art: entry %d value: %w", i, err)
		}
		if err := fn(key, binary.BigEndian.Uint64(u64[:])); err != nil {
			return fmt.Errorf("art: entry %d: %w", i, err)
		}
	}

	want := crc.Sum32() // payload fully consumed; footer not hashed
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return fmt.Errorf("art: snapshot footer: %w", err)
	}
	if got := binary.BigEndian.Uint32(foot[:]); got != want {
		return fmt.Errorf("art: snapshot checksum mismatch (want %08x, got %08x)", want, got)
	}
	return nil
}
