package art

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIteratorMatchesWalk(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(9))
		rng.Read(k)
		tr.Put(k, uint64(i))
	}
	var walkKeys [][]byte
	tr.Walk(func(k []byte, v uint64) bool {
		walkKeys = append(walkKeys, append([]byte(nil), k...))
		return true
	})
	it := tr.Iterate()
	i := 0
	for it.Next() {
		if i >= len(walkKeys) {
			t.Fatal("iterator yielded more keys than Walk")
		}
		if !bytes.Equal(it.Key(), walkKeys[i]) {
			t.Fatalf("key %d: iterator %x, walk %x", i, it.Key(), walkKeys[i])
		}
		i++
	}
	if i != len(walkKeys) {
		t.Fatalf("iterator yielded %d keys, walk %d", i, len(walkKeys))
	}
	if it.Valid() {
		t.Fatal("exhausted iterator still valid")
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	it := New().Iterate()
	if it.Next() {
		t.Fatal("empty tree iterator advanced")
	}
}

func TestIteratorEmbeddedLeaves(t *testing.T) {
	tr := New()
	for _, k := range []string{"a", "ab", "abc", "b"} {
		tr.Put([]byte(k), 1)
	}
	var got []string
	it := tr.Iterate()
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	want := []string{"a", "ab", "abc", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSeekBasics(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key64(uint64(i*10)), uint64(i))
	}
	it := tr.Iterate()
	it.Seek(key64(250)) // exact hit
	if !it.Next() || !bytes.Equal(it.Key(), key64(250)) {
		t.Fatalf("Seek(250) -> %x", it.Key())
	}
	it.Seek(key64(251)) // between keys
	if !it.Next() || !bytes.Equal(it.Key(), key64(260)) {
		t.Fatalf("Seek(251) -> %x", it.Key())
	}
	it.Seek(key64(0)) // at minimum
	if !it.Next() || !bytes.Equal(it.Key(), key64(0)) {
		t.Fatalf("Seek(0) -> %x", it.Key())
	}
	it.Seek(key64(100000)) // past maximum
	if it.Next() {
		t.Fatalf("Seek past max yielded %x", it.Key())
	}
}

func TestSeekThenIterateAll(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key64(uint64(i*3)), uint64(i))
	}
	it := tr.Iterate()
	it.Seek(key64(1500))
	var got []uint64
	for it.Next() {
		got = append(got, workloadDecode(it.Key()))
	}
	want := 0
	for v := uint64(1500); v <= 2997; v += 3 {
		if got[want] != v {
			t.Fatalf("position %d: got %d want %d", want, got[want], v)
		}
		want++
	}
	if want != len(got) {
		t.Fatalf("got %d keys, want %d", len(got), want)
	}
}

func workloadDecode(k []byte) uint64 {
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return v
}

// TestQuickSeekEquivalence: for random trees and random targets, Seek
// positions exactly at the first key >= target and iterates the sorted
// remainder.
func TestQuickSeekEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, keys, _ := buildRandomTree(rng, 300, 6, 6)
		target := make([]byte, 1+rng.Intn(6))
		for j := range target {
			target[j] = byte(rng.Intn(6))
		}
		idx := sort.SearchStrings(keys, string(target))
		it := tr.Iterate()
		it.Seek(target)
		for _, want := range keys[idx:] {
			if !it.Next() {
				return false
			}
			if string(it.Key()) != want {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeekWithEmbeddedLeaves exercises Seek across prefix-key chains.
func TestQuickSeekWithEmbeddedLeaves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]bool{}
		// Dense prefix chains: many keys that are prefixes of each other.
		for i := 0; i < 200; i++ {
			l := 1 + rng.Intn(5)
			k := make([]byte, l)
			for j := range k {
				k[j] = byte(rng.Intn(3))
			}
			tr.Put(k, 1)
			ref[string(k)] = true
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		target := make([]byte, 1+rng.Intn(4))
		for j := range target {
			target[j] = byte(rng.Intn(3))
		}
		idx := sort.SearchStrings(keys, string(target))
		it := tr.Iterate()
		it.Seek(target)
		for _, want := range keys[idx:] {
			if !it.Next() || string(it.Key()) != want {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
