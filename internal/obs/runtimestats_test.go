package obs

import (
	"math"
	"runtime/debug"
	rtm "runtime/metrics"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestConvertRuntimeHist(t *testing.T) {
	inf := math.Inf(1)
	src := &rtm.Float64Histogram{
		Counts:  []uint64{2, 3, 1},
		Buckets: []float64{math.Inf(-1), 1e-6, 4e-6, inf},
	}
	h := metrics.NewHistogram()
	convertRuntimeHist(h, src)
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	// (-Inf, 1e-6] lands at the finite edge, (1e-6, 4e-6] at the geometric
	// midpoint 2e-6, (4e-6, +Inf) at the finite edge.
	if h.Max() < 4e-6/1.02 || h.Max() > 4e-6*1.02 {
		t.Fatalf("max = %g, want ~4e-6", h.Max())
	}
	if h.Min() > 1e-6*1.02 {
		t.Fatalf("min = %g, want ~1e-6", h.Min())
	}
	// Determinism: re-converting the same cumulative source must diff to
	// empty — the property the Collector's per-window deltas rely on.
	h2 := metrics.NewHistogram()
	convertRuntimeHist(h2, src)
	if d := h2.Delta(h); d.Count() != 0 {
		t.Fatalf("same-source delta count = %d, want 0", d.Count())
	}
}

func TestRegisterRuntimeSeries(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"dcart_runtime_goroutines",
		"dcart_runtime_gomaxprocs",
		"dcart_runtime_heap_live_bytes",
		"dcart_runtime_gc_cycles",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("snapshot missing %s: %+v", name, snap.Gauges)
		}
	}
	if snap.Gauges["dcart_runtime_goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %g, want >= 1", snap.Gauges["dcart_runtime_goroutines"])
	}
	if snap.Gauges["dcart_runtime_gomaxprocs"] < 1 {
		t.Fatalf("gomaxprocs gauge = %g, want >= 1", snap.Gauges["dcart_runtime_gomaxprocs"])
	}
	// The histogram series render through the Prometheus exposition like
	// any other registered histogram.
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "dcart_runtime_gc_pause_seconds") {
		t.Fatalf("prometheus exposition missing runtime histogram:\n%s", b.String())
	}
}

func TestRuntimeDeltaAcrossGC(t *testing.T) {
	before := ReadRuntime()
	debug.FreeOSMemory() // forces a GC cycle, so the delta must see >= 1
	after := ReadRuntime()
	d := after.DeltaSince(before)
	if d.GCCycles < 1 {
		t.Fatalf("GC cycles delta = %d, want >= 1", d.GCCycles)
	}
	if d.GCPauseCount < 1 || d.GCPauseTotalNanos <= 0 {
		t.Fatalf("GC pause delta = %+v, want at least one pause", d)
	}
	if d.GCPauseMaxNanos > d.GCPauseTotalNanos {
		t.Fatalf("pause max %g > total %g", d.GCPauseMaxNanos, d.GCPauseTotalNanos)
	}
	rep := after.Report()
	if rep.GCCycles != after.GCCycles || rep.GCPause.Count == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
