package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestRegistrySnapshotAndGroups(t *testing.T) {
	r := NewRegistry()
	set := metrics.NewSet()
	set.Add(metrics.CtrOpsRead, 7)
	r.RegisterCounters("eng", "dcart", "engine counters", set)
	r.RegisterGauge("eng", "dcart_inflight", "", "inflight ops", func() float64 { return 3 })
	r.RegisterGauge("eng", "dcart_ring_depth", `worker="0"`, "ring depth", func() float64 { return 2 })
	r.RegisterGauge("proc", "up", "", "process up", func() float64 { return 1 })

	h := metrics.NewHistogram()
	h.Observe(1e-3)
	r.RegisterHistogram("eng", "dcart_latency_seconds", "op latency", func() *metrics.Histogram { return h })
	// A nil-returning histogram source must be skipped, not crash.
	r.RegisterHistogram("eng", "dcart_missing_seconds", "never ready", func() *metrics.Histogram { return nil })

	s := r.Snapshot()
	if s.Counters[metrics.CtrOpsRead] != 7 {
		t.Fatalf("counter in snapshot = %d", s.Counters[metrics.CtrOpsRead])
	}
	if s.Gauges["dcart_inflight"] != 3 || s.Gauges[`dcart_ring_depth{worker="0"}`] != 2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	hs, ok := s.Histograms["dcart_latency_seconds"]
	if !ok || hs.Count != 1 || hs.P50 < 0.9e-3 || hs.P50 > 1.1e-3 {
		t.Fatalf("histogram stats = %+v (ok=%v)", hs, ok)
	}
	if _, ok := s.Histograms["dcart_missing_seconds"]; ok {
		t.Fatal("nil histogram source appeared in snapshot")
	}

	line := s.String()
	if !strings.Contains(line, "ops_read=7") || !strings.Contains(line, "dcart_inflight=3") {
		t.Fatalf("snapshot line = %q", line)
	}
	if !strings.Contains(line, "dcart_latency_seconds_p50=") {
		t.Fatalf("snapshot line missing histogram summary: %q", line)
	}

	// Detaching the engine group leaves only the process-level gauge.
	r.UnregisterGroup("eng")
	s = r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("engine series survived UnregisterGroup: %+v", s)
	}
	if len(s.Gauges) != 1 || s.Gauges["up"] != 1 {
		t.Fatalf("gauges after detach = %v", s.Gauges)
	}
}

func TestRegistryConcurrentScrapeAndSwap(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	// Swapper: attach/detach an engine group in a loop, as the bench
	// harness does between experiment rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			v := float64(i)
			r.RegisterGauge("eng", "dcart_x", "", "x", func() float64 { return v })
			r.UnregisterGroup("eng")
		}
	}()
	// Scrapers: snapshot and render concurrently with the swapping.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = r.Snapshot().String()
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}()
	}
	wg.Wait()
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	set := metrics.NewSet()
	set.Add(metrics.CtrOpsRead, 5)
	r.RegisterCounters("g", "dcart", "engine counters", set)
	r.RegisterGauge("g", "dcart_ring_depth", `worker="0"`, "ring depth", func() float64 { return 1 })
	r.RegisterGauge("g", "dcart_ring_depth", `worker="1"`, "ring depth", func() float64 { return 4 })

	h := metrics.NewHistogram()
	h.Observe(4e-6) // falls in the le="5e-06" bucket
	h.Observe(2e-3) // falls in the le="0.0025" bucket
	r.RegisterHistogram("g", "dcart_lat_seconds", "latency", func() *metrics.Histogram { return h })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE dcart_ops_read_total counter",
		"dcart_ops_read_total 5",
		"# TYPE dcart_ring_depth gauge",
		`dcart_ring_depth{worker="0"} 1`,
		`dcart_ring_depth{worker="1"} 4`,
		"# TYPE dcart_lat_seconds histogram",
		`dcart_lat_seconds_bucket{le="+Inf"} 2`,
		"dcart_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per gauge name even with multiple label sets.
	if n := strings.Count(out, "# TYPE dcart_ring_depth gauge"); n != 1 {
		t.Fatalf("gauge TYPE header emitted %d times", n)
	}
	// Histogram buckets must be cumulative: the 5us bucket holds 1, every
	// bucket at/above 2.5ms holds 2.
	if !strings.Contains(out, `dcart_lat_seconds_bucket{le="5e-06"} 1`) {
		t.Fatalf("missing 5us cumulative bucket in:\n%s", out)
	}
	if !strings.Contains(out, `dcart_lat_seconds_bucket{le="0.0025"} 2`) {
		t.Fatalf("missing 2.5ms cumulative bucket in:\n%s", out)
	}
	// _sum ≈ 4us + 2ms (float addition may not print the exact literal).
	if !strings.Contains(out, "dcart_lat_seconds_sum 0.0020") {
		t.Fatalf("unexpected _sum in:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	cases := []struct{ name, value, want string }{
		{"shard", "3", `shard="3"`},
		{"path", `C:\data`, `path="C:\\data"`},
		{"q", `say "hi"`, `q="say \"hi\""`},
		{"nl", "a\nb", `nl="a\nb"`},
		{"mixed", "\\\"\n", `mixed="\\\"\n"`},
	}
	for _, c := range cases {
		if got := Label(c.name, c.value); got != c.want {
			t.Fatalf("Label(%q, %q) = %s, want %s", c.name, c.value, got, c.want)
		}
	}
	if got := JoinLabels(`a="1"`, "", `b="2"`); got != `a="1",b="2"` {
		t.Fatalf("JoinLabels = %s", got)
	}
	if got := JoinLabels("", ""); got != "" {
		t.Fatalf("JoinLabels empties = %q", got)
	}
}

func TestWritePrometheusLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	set := metrics.NewSet()
	set.Add(metrics.CtrOpsRead, 1)
	nasty := Label("shard", "0\\\"evil\"\nnext")
	r.RegisterCountersLabeled("g", "dcart", nasty, "engine counters", set)
	r.RegisterGauge("g", "dcart_depth", Label("path", `C:\kv "prod"`), "depth", func() float64 { return 2 })

	h := metrics.NewHistogram()
	h.Observe(1e-3)
	r.RegisterHistogramLabeled("g", "dcart_lat_seconds", Label("shard", "a\nb"), "latency", func() *metrics.Histogram { return h })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	// No raw newline may survive inside any series line: every line must be
	// a well-formed sample or header.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	for _, want := range []string{
		`dcart_ops_read_total{shard="0\\\"evil\"\nnext"} 1`,
		`dcart_depth{path="C:\\kv \"prod\""} 2`,
		`dcart_lat_seconds_bucket{shard="a\nb",le="+Inf"} 1`,
		`dcart_lat_seconds_sum{shard="a\nb"} 0.001`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing escaped series %q in:\n%s", want, out)
		}
	}
}
