package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// serveHealth boots a diagnostics server over a health engine driven by a
// single mutable gauge bank, already sampled once.
func serveHealth(t *testing.T, flight bool) (base string, g *healthGauges, c *Collector, h *Health) {
	t.Helper()
	reg := NewRegistry()
	g = newHealthGauges(reg, map[string]float64{
		"dcart_pctt_inflight_ops":                 0,
		"dcart_pctt_max_inflight":                 100,
		`dcart_pctt_worker_heartbeat{worker="0"}`: 1,
		`dcart_pctt_ring_depth{worker="0"}`:       0,
	})
	c = stalledCollector(t, reg, 8)
	c.baseline(0)
	h = NewHealth(c, WorkerStallRule(1), SaturationRule(0.9, 1))
	c.sample(1_000_000_000)
	h.Evaluate()

	d := Diagnostics{Registry: reg, Collector: c, Health: h}
	if flight {
		f := NewFlightRecorder(t.TempDir(), d, h)
		f.SetLimits(DefaultFlightMinInterval, 4)
		d.Flight = f
	}
	srv, err := ServeAll("127.0.0.1:0", d)
	if err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	return "http://" + srv.Addr(), g, c, h
}

func TestHealthzVerdictJSON(t *testing.T) {
	base, g, c, h := serveHealth(t, false)

	// Healthy: 200 with an ok JSON verdict (no longer the legacy text).
	code, body, ctype := get(t, base+"/healthz")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/healthz: %d %q", code, ctype)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if st.Status != "ok" || len(st.Firing) != 0 {
		t.Fatalf("healthy verdict = %+v", st)
	}

	// Saturated: degraded still answers 200 — the process serves, probers
	// must not kill it — with the firing rule in the body. The heartbeat
	// keeps advancing so the stall rule stays quiet.
	g.vals["dcart_pctt_inflight_ops"] = 95
	g.vals[`dcart_pctt_worker_heartbeat{worker="0"}`] = 2
	c.sample(2_000_000_000)
	h.Evaluate()
	code, body, _ = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("degraded /healthz code = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Status != "degraded" {
		t.Fatalf("degraded verdict = %+v (%v)", st, err)
	}
	if len(st.Firing) != 1 || st.Firing[0].Rule != "engine-saturated" {
		t.Fatalf("firing = %+v", st.Firing)
	}

	// Stalled worker on top: critical answers 503.
	g.vals[`dcart_pctt_ring_depth{worker="0"}`] = 2
	c.sample(3_000_000_000)
	c.sample(4_000_000_000)
	h.Evaluate()
	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("critical /healthz code = %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Status != "critical" {
		t.Fatalf("critical verdict = %+v (%v)", st, err)
	}
	// Most severe first: the stall outranks the saturation.
	if st.Firing[0].Rule != "worker-stalled" {
		t.Fatalf("firing order = %+v", st.Firing)
	}
}

func TestFlightrecEndpoint(t *testing.T) {
	base, _, _, _ := serveHealth(t, true)

	// Status before any dump.
	code, body, ctype := get(t, base+"/debug/flightrec")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/flightrec: %d %q", code, ctype)
	}
	var st flightStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if !st.Enabled || st.Dumps != 0 || len(st.Bundles) != 0 {
		t.Fatalf("initial status = %+v", st)
	}

	// Manual trigger dumps a bundle and returns its path.
	code, body, _ = get(t, base+"/debug/flightrec?trigger=1")
	if code != 200 {
		t.Fatalf("trigger: %d %s", code, body)
	}
	var resp map[string]string
	if err := json.Unmarshal([]byte(body), &resp); err != nil || resp["bundle"] == "" {
		t.Fatalf("trigger response = %s (%v)", body, err)
	}
	if !strings.Contains(resp["bundle"], flightPrefix) || !strings.HasSuffix(resp["bundle"], "-http") {
		t.Fatalf("bundle path = %q", resp["bundle"])
	}

	// An immediate re-trigger is rate limited with a JSON error body.
	code, body, ctype = get(t, base+"/debug/flightrec?trigger=1")
	if code != http.StatusTooManyRequests || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("rate-limited trigger: %d %q\n%s", code, ctype, body)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
		t.Fatalf("rate-limit body = %s (%v)", body, err)
	}

	// Status reflects the dump and the suppression.
	_, body, _ = get(t, base+"/debug/flightrec")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if st.Dumps != 1 || st.Suppressed != 1 || len(st.Bundles) != 1 {
		t.Fatalf("post-trigger status = %+v", st)
	}
}

func TestFlightrecEndpointDisabled(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	code, body, ctype := get(t, "http://"+srv.Addr()+"/debug/flightrec")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("disabled flightrec: %d %q", code, ctype)
	}
	var st flightStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Enabled || st.Bundles == nil {
		t.Fatalf("disabled status = %s (%v)", body, err)
	}
}

// TestTracesErrorsAreJSON locks in the /debug/traces?id= error contract:
// machine-readable {"error": ...} bodies with the right codes.
func TestTracesErrorsAreJSON(t *testing.T) {
	tr := NewTracer(8, 1)
	tr.Record(Span{TraceID: 7, Op: "put"})
	srv, err := Serve("127.0.0.1:0", NewRegistry(), tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + srv.Addr()

	for _, tc := range []struct {
		q    string
		code int
	}{
		{"id=12345", 404}, // unknown trace id
		{"id=nope", 400},  // malformed id
	} {
		code, body, ctype := get(t, base+"/debug/traces?"+tc.q)
		if code != tc.code || !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("%s: %d %q, want %d application/json\n%s", tc.q, code, ctype, tc.code, body)
		}
		var e map[string]string
		if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
			t.Fatalf("%s body = %s (%v)", tc.q, body, err)
		}
	}
}
