package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultJournalCap is the default slow-op event-ring capacity.
const DefaultJournalCap = 256

// Event is one journaled slow operation: the span that tripped the
// threshold plus a monotonic sequence number. The embedded Span's fields
// marshal flat, so each event is one self-contained JSON line with the
// full stage breakdown.
type Event struct {
	Span
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"time_unix_nano"` // completion time
	TotalNanos   int64  `json:"total_nanos"`    // done - submit
}

// Journal is the slow-op journal: a threshold-triggered structured event
// ring. Every completed span offered to Observe is kept only when its
// end-to-end latency meets the threshold, so under healthy load the journal
// costs one comparison per offered span; when something goes slow, the ring
// holds the most recent offenders with their stage breakdowns (served as
// JSON lines at /debug/events) and can mirror each event to an io.Writer
// (typically stderr) as it happens.
type Journal struct {
	threshold int64 // nanoseconds; spans at or above are recorded
	mirror    io.Writer

	seq      atomic.Uint64
	recorded atomic.Uint64
	offered  atomic.Uint64

	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// NewJournal returns a journal recording spans whose end-to-end latency is
// >= threshold, keeping the last capacity events (<=0 selects
// DefaultJournalCap). mirror may be nil; when set, every recorded event is
// also written to it as one compact JSON line (writes are serialized).
func NewJournal(threshold time.Duration, capacity int, mirror io.Writer) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	if threshold < 0 {
		threshold = 0
	}
	return &Journal{
		threshold: threshold.Nanoseconds(),
		mirror:    mirror,
		ring:      make([]Event, capacity),
	}
}

// Threshold returns the slow-op latency threshold.
func (j *Journal) Threshold() time.Duration {
	return time.Duration(j.threshold)
}

// Observe offers one completed span and reports whether it was journaled
// (its end-to-end latency met the threshold).
func (j *Journal) Observe(s Span) bool {
	j.offered.Add(1)
	total := s.TotalNanos()
	if total < j.threshold {
		return false
	}
	e := Event{
		Span:         s,
		Seq:          j.seq.Add(1),
		TimeUnixNano: s.DoneUnixNano,
		TotalNanos:   total,
	}
	j.recorded.Add(1)
	j.mu.Lock()
	j.ring[j.next] = e
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
		j.full = true
	}
	j.mu.Unlock()
	if j.mirror != nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			j.mu.Lock()
			j.mirror.Write(line) //nolint:errcheck // best-effort mirror
			j.mu.Unlock()
		}
	}
	return true
}

// Offered returns how many spans were offered to Observe.
func (j *Journal) Offered() uint64 { return j.offered.Load() }

// Recorded returns how many events met the threshold since construction
// (including ones the ring has since overwritten).
func (j *Journal) Recorded() uint64 { return j.recorded.Load() }

// Events returns the retained events, newest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if j.full {
		n = len(j.ring)
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, j.ring[(j.next-i+len(j.ring))%len(j.ring)])
	}
	return out
}

// journalMeta is the first line of the /debug/events NDJSON body.
type journalMeta struct {
	Enabled        bool   `json:"enabled"`
	ThresholdNanos int64  `json:"threshold_nanos,omitempty"`
	Offered        uint64 `json:"offered,omitempty"`
	Recorded       uint64 `json:"recorded,omitempty"`
}

// WriteJSONLines renders the journal as NDJSON: one meta line, then the
// retained events newest first, one JSON object per line.
func (j *Journal) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	meta := journalMeta{
		Enabled:        true,
		ThresholdNanos: j.threshold,
		Offered:        j.Offered(),
		Recorded:       j.Recorded(),
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
