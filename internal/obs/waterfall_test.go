package obs

import (
	"strings"
	"testing"
)

func TestWriteWaterfallMultiLayer(t *testing.T) {
	base := int64(1_000_000_000)
	wire := Span{
		TraceID: 0xabc, Op: "put", Layer: "wire", Worker: -1, Bucket: -1,
		SubmitUnixNano: base, DoneUnixNano: base + 10_000,
		Stages: []Stage{
			{Name: "parse", StartUnixNano: base, EndUnixNano: base + 500},
			{Name: "submit", StartUnixNano: base + 500, EndUnixNano: base + 1_000},
			{Name: "window", StartUnixNano: base + 1_000, EndUnixNano: base + 4_000},
			{Name: "execute", StartUnixNano: base + 4_000, EndUnixNano: base + 9_000},
			{Name: "flush", StartUnixNano: base + 9_000, EndUnixNano: base + 10_000},
		},
	}
	engine := Span{
		TraceID: 0xabc, Op: "put", Layer: "engine", Worker: 2, Bucket: 17,
		SubmitUnixNano: base + 1_200, BatchUnixNano: base + 5_000, DoneUnixNano: base + 8_500,
		Stages: []Stage{
			{Name: "queue", StartUnixNano: base + 1_200, EndUnixNano: base + 5_000},
			{Name: "trigger", StartUnixNano: base + 5_000, EndUnixNano: base + 8_500},
		},
	}

	var b strings.Builder
	WriteWaterfall(&b, []Span{engine, wire}) // unsorted on purpose
	out := b.String()

	for _, want := range []string{
		"trace 0x0000000000000abc", "2 span(s)",
		"wire/put", "engine/put", "worker=2 bucket=17",
		"parse", "window", "execute", "flush", "queue", "trigger",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The wire span submitted first, so its header precedes the engine's.
	if strings.Index(out, "wire/put") > strings.Index(out, "engine/put") {
		t.Fatalf("spans not ordered oldest first:\n%s", out)
	}
	// Every stage row carries a visible bar.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && !strings.Contains(line, "█") {
			t.Fatalf("stage row has empty bar: %q", line)
		}
	}
}

func TestWriteWaterfallLegacySpanSynthesizesStages(t *testing.T) {
	s := Span{
		TraceID: 5, Op: "get", Worker: 0, Bucket: 3,
		SubmitUnixNano: 100, BatchUnixNano: 400, DoneUnixNano: 900,
	}
	var b strings.Builder
	WriteWaterfall(&b, []Span{s})
	out := b.String()
	if !strings.Contains(out, "queue") || !strings.Contains(out, "exec") {
		t.Fatalf("legacy span lacks synthesized queue/exec stages:\n%s", out)
	}
}

func TestWriteWaterfallEmpty(t *testing.T) {
	var b strings.Builder
	WriteWaterfall(&b, nil)
	if !strings.Contains(b.String(), "no spans") {
		t.Fatalf("empty waterfall output: %q", b.String())
	}
}
