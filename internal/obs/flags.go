package obs

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Flags is the diagnostics flag set every binary that serves the
// observability endpoint needs. Registering it through RegisterFlags keeps
// the flag names, defaults, and help text defined once instead of
// hand-copied per binary.
type Flags struct {
	addr      *string
	sample    int
	window    *time.Duration
	slowOp    *time.Duration
	slowOpLog *bool
	flightDir *string
}

// RegisterFlags registers the diagnostics flags on fs and returns
// accessors for the parsed values:
//
//	-diag-addr     serve the diagnostics HTTP endpoint
//	-trace-sample  op-lifecycle sampling stride (validated power of two)
//	-obs-window    windowed-collector tick (0 disables)
//	-slow-op       slow-op journal latency threshold (0 disables)
//	-slow-op-log   mirror journaled slow ops to stderr as JSON lines
//	-flightrec-dir anomaly flight-recorder bundle directory (empty disables)
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{
		addr: fs.String("diag-addr", "",
			"serve diagnostics HTTP (/metrics, /statsz, /debug/traces, /debug/timeseries, /debug/events, /debug/pprof, /healthz) on this address (empty = off)"),
		window: fs.Duration("obs-window", DefaultWindowTick,
			"windowed-collector sampling tick for /debug/timeseries (with -diag-addr; 0 = off)"),
		slowOp: fs.Duration("slow-op", 0,
			"journal any operation slower than this to /debug/events (with -diag-addr; 0 = off)"),
		slowOpLog: fs.Bool("slow-op-log", false,
			"also mirror journaled slow ops to stderr as JSON lines (with -slow-op)"),
		flightDir: fs.String("flightrec-dir", "",
			"write anomaly flight-recorder bundles (windows, journal, spans, goroutines, runtime, config) under this directory on health-rule firings, SIGQUIT, or /debug/flightrec?trigger=1 (with -diag-addr; empty = off)"),
	}
	f.sample = DefaultSampleEvery
	// The Tracer's sampling mask needs a power-of-two stride; NewTracer
	// would silently round up, so an off value would sample at a different
	// rate than asked. Reject it at parse time instead.
	fs.Func("trace-sample",
		fmt.Sprintf("trace one operation in N through the pipeline (with -diag-addr; N must be a power of two; default %d)", DefaultSampleEvery),
		func(v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("not an integer: %q", v)
			}
			if n < 1 || n&(n-1) != 0 {
				return fmt.Errorf("must be a power of two (1, 2, 4, ...), got %d", n)
			}
			f.sample = n
			return nil
		})
	return f
}

// Enabled reports whether a diagnostics address was given.
func (f *Flags) Enabled() bool { return *f.addr != "" }

// Addr returns the parsed -diag-addr value.
func (f *Flags) Addr() string { return *f.addr }

// Tracer builds the lifecycle tracer configured by -trace-sample.
func (f *Flags) Tracer() *Tracer { return NewTracer(0, f.sample) }

// Collector builds the windowed collector configured by -obs-window over
// reg, or returns nil when the collector is disabled.
func (f *Flags) Collector(reg *Registry) *Collector {
	if *f.window <= 0 {
		return nil
	}
	return NewCollector(reg, *f.window, DefaultWindowCount)
}

// FlightDir returns the parsed -flightrec-dir value ("" = disabled).
func (f *Flags) FlightDir() string { return *f.flightDir }

// Journal builds the slow-op journal configured by -slow-op and
// -slow-op-log, or returns nil when journaling is disabled.
func (f *Flags) Journal() *Journal {
	if *f.slowOp <= 0 {
		return nil
	}
	if *f.slowOpLog {
		return NewJournal(*f.slowOp, 0, os.Stderr)
	}
	return NewJournal(*f.slowOp, 0, nil)
}
