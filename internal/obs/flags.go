package obs

import "flag"

// Flags is the diagnostics flag pair every binary that serves the
// observability endpoint needs. Registering it through RegisterFlags keeps
// the flag names, defaults, and help text defined once instead of
// hand-copied per binary.
type Flags struct {
	addr   *string
	sample *int
}

// RegisterFlags registers -diag-addr and -trace-sample on fs and returns
// accessors for the parsed values.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		addr: fs.String("diag-addr", "",
			"serve diagnostics HTTP (/metrics, /statsz, /debug/traces, /debug/pprof, /healthz) on this address (empty = off)"),
		sample: fs.Int("trace-sample", DefaultSampleEvery,
			"trace one operation in N through the pipeline (with -diag-addr; rounded up to a power of two)"),
	}
}

// Enabled reports whether a diagnostics address was given.
func (f *Flags) Enabled() bool { return *f.addr != "" }

// Addr returns the parsed -diag-addr value.
func (f *Flags) Addr() string { return *f.addr }

// Tracer builds the lifecycle tracer configured by -trace-sample.
func (f *Flags) Tracer() *Tracer { return NewTracer(0, *f.sample) }
