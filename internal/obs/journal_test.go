package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func spanWithLatency(id uint64, nanos int64) Span {
	return Span{
		TraceID:        id,
		Op:             "put",
		Layer:          "wire",
		SubmitUnixNano: 1_000,
		DoneUnixNano:   1_000 + nanos,
		Stages: []Stage{
			{Name: "parse", StartUnixNano: 1_000, EndUnixNano: 1_200},
			{Name: "execute", StartUnixNano: 1_200, EndUnixNano: 1_000 + nanos},
		},
	}
}

func TestJournalThreshold(t *testing.T) {
	j := NewJournal(time.Microsecond, 8, nil)
	if j.Observe(spanWithLatency(1, 500)) {
		t.Fatal("500ns span journaled below 1µs threshold")
	}
	if !j.Observe(spanWithLatency(2, 1_000)) {
		t.Fatal("span exactly at threshold not journaled")
	}
	if !j.Observe(spanWithLatency(3, 2_000)) {
		t.Fatal("2µs span not journaled")
	}
	if j.Offered() != 3 || j.Recorded() != 2 {
		t.Fatalf("offered=%d recorded=%d, want 3/2", j.Offered(), j.Recorded())
	}
	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// Newest first, with sequence numbers and the stage breakdown intact.
	if evs[0].TraceID != 3 || evs[1].TraceID != 2 {
		t.Fatalf("order: got %d,%d want 3,2", evs[0].TraceID, evs[1].TraceID)
	}
	if evs[0].Seq != 2 || evs[0].TotalNanos != 2_000 || len(evs[0].Stages) != 2 {
		t.Fatalf("event payload: %+v", evs[0])
	}
}

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(0, 3, nil)
	for i := uint64(1); i <= 5; i++ {
		j.Observe(spanWithLatency(i, int64(i)))
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []uint64{5, 4, 3} {
		if evs[i].TraceID != want {
			t.Fatalf("evs[%d].TraceID = %d, want %d", i, evs[i].TraceID, want)
		}
	}
}

func TestJournalMirrorJSONLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(0, 8, &buf)
	j.Observe(spanWithLatency(7, 1_000))
	j.Observe(spanWithLatency(8, 2_000))

	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("mirror line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		// Embedded span fields must marshal flat on the event line.
		if e.Op != "put" || e.Layer != "wire" || len(e.Stages) != 2 {
			t.Fatalf("mirror event lost span fields: %+v", e)
		}
	}
	if lines != 2 {
		t.Fatalf("mirror wrote %d lines, want 2", lines)
	}
}

func TestJournalWriteJSONLines(t *testing.T) {
	j := NewJournal(time.Nanosecond, 8, nil)
	j.Observe(spanWithLatency(9, 5_000))

	var buf bytes.Buffer
	if err := j.WriteJSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("body has %d lines, want meta + 1 event:\n%s", len(lines), buf.String())
	}
	var meta journalMeta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatal(err)
	}
	if !meta.Enabled || meta.ThresholdNanos != 1 || meta.Recorded != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != 9 || e.TotalNanos != 5_000 {
		t.Fatalf("event = %+v", e)
	}
}
