package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label renders one Prometheus label pair, name="value", escaping the
// value per the text exposition format (backslash, double quote, and
// newline). Registration sites build their pre-rendered label bodies with
// this instead of fmt.Sprintf so a hostile or odd value (a path, say)
// cannot break the exposition syntax.
func Label(name, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(value) + 3)
	b.WriteString(name)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// JoinLabels joins pre-rendered label bodies with a comma, skipping empty
// parts — the shared helper for layering a shard="i" or worker="j" pair
// onto caller-provided labels.
func JoinLabels(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	return b.String()
}

// promBounds are the upper bounds (seconds) of the exported Prometheus
// histogram buckets: 1-2.5-5 per decade from 1µs to 10s. The internal
// metrics.Histogram keeps ~1% log buckets; export re-buckets onto this
// compact ladder so a scrape stays small while still resolving the
// queue-wait/execute split the paper's latency figures need.
// Literal values, not computed (1e-6*2.5 = 2.4999999999999998e-06 would
// leak into the le labels).
var promBounds = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// WritePrometheus renders every registered source in the Prometheus text
// exposition format (version 0.0.4): counters as <prefix>_<name>_total,
// gauges grouped by metric name, histograms with cumulative le buckets.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	// Several counter sets may export the same metric names with distinct
	// labels (one set per store shard); the HELP/TYPE header is emitted once
	// per name, on first occurrence.
	ctrHeadered := make(map[string]bool)
	for _, c := range r.counters {
		snap := c.set.Snapshot()
		for _, n := range c.set.Names() { // registration order: stable scrapes
			name := c.prefix + "_" + n + "_total"
			if !ctrHeadered[name] {
				ctrHeadered[name] = true
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, c.help, name)
			}
			if c.labels != "" {
				fmt.Fprintf(w, "%s{%s} %d\n", name, c.labels, snap[n])
			} else {
				fmt.Fprintf(w, "%s %d\n", name, snap[n])
			}
		}
	}

	headered := make(map[string]bool, len(r.gauges))
	for _, g := range r.gauges {
		if !headered[g.name] {
			headered[g.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		}
		if g.labels != "" {
			fmt.Fprintf(w, "%s{%s} %s\n", g.name, g.labels, formatFloat(g.fn()))
		} else {
			fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
		}
	}

	histHeadered := make(map[string]bool, len(r.hists))
	for _, hr := range r.hists {
		h := hr.fn()
		if h == nil {
			continue
		}
		if !histHeadered[hr.name] {
			histHeadered[hr.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", hr.name, hr.help, hr.name)
		}
		// The label body (if any) rides alongside le; sum/count carry it as
		// their whole label set.
		pre, sumLabels := "", ""
		if hr.labels != "" {
			pre = hr.labels + ","
			sumLabels = "{" + hr.labels + "}"
		}
		for i, cum := range h.Cumulative(promBounds) {
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", hr.name, pre, formatFloat(promBounds[i]), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", hr.name, pre, h.Count())
		fmt.Fprintf(w, "%s_sum%s %s\n", hr.name, sumLabels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", hr.name, sumLabels, h.Count())
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
