package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// stalledCollector builds a collector whose background ticker effectively
// never fires, so tests drive sample() deterministically.
func stalledCollector(t *testing.T, reg *Registry, capacity int) *Collector {
	t.Helper()
	c := NewCollector(reg, time.Hour, capacity)
	t.Cleanup(c.Stop)
	return c
}

func TestCollectorCounterDeltasAndRates(t *testing.T) {
	reg := NewRegistry()
	ms := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms)
	ms.Add(metrics.CtrOpsWrite, 100) // pre-baseline traffic

	c := stalledCollector(t, reg, 8)
	// Re-baseline at a deterministic stamp (construction already sampled,
	// but at wall-clock time and before the +100 would be miscounted).
	c.baseline(1_000)

	ms.Add(metrics.CtrOpsWrite, 50)
	ms.Add(metrics.CtrOpsRead, 20)
	c.sample(2_000_000_000 + 1_000) // 2s window

	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	w := ws[0]
	if got := w.Counters["ops_write"]; got != 50 {
		t.Fatalf("ops_write delta = %d, want 50 (cumulative must not leak)", got)
	}
	if got := w.Counters["ops_read"]; got != 20 {
		t.Fatalf("ops_read delta = %d, want 20", got)
	}
	if r := w.Rate("ops_write"); r < 24.9 || r > 25.1 {
		t.Fatalf("ops_write rate = %g/s, want 25", r)
	}
	// Zero-delta counters are omitted to keep windows small.
	if _, ok := w.Counters["restarts"]; ok {
		t.Fatal("zero-delta counter present in window")
	}
}

func TestCollectorCounterResetClamped(t *testing.T) {
	reg := NewRegistry()
	ms := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms)
	c := stalledCollector(t, reg, 8)
	c.baseline(0)

	ms.Add(metrics.CtrOpsWrite, 40)
	c.sample(1_000_000_000)

	// The bench harness swaps engines between rows: unregister the old set,
	// register a fresh one whose counters restart near zero.
	reg.UnregisterGroup("g")
	ms2 := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms2)
	ms2.Add(metrics.CtrOpsWrite, 7)
	c.sample(2_000_000_000)

	ws := c.Windows()
	if got := ws[0].Counters["ops_write"]; got != 7 {
		t.Fatalf("post-reset delta = %d, want clamp to current value 7", got)
	}
}

func TestCollectorWindowHistograms(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	h := metrics.NewHistogram()
	reg.RegisterHistogram("g", "dcart_lat_seconds", "test hist", func() *metrics.Histogram {
		mu.Lock()
		defer mu.Unlock()
		return h.Clone()
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)

	observe := func(v float64) {
		mu.Lock()
		h.Observe(v)
		mu.Unlock()
	}
	observe(1e-5)
	c.sample(1_000_000_000)
	observe(1e-2)
	observe(2e-2)
	c.sample(2_000_000_000)

	ws := c.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	// Newest window holds only the two 10-20ms samples, not the old 10µs one.
	hs, ok := ws[0].Histograms["dcart_lat_seconds"]
	if !ok {
		t.Fatalf("newest window missing histogram: %+v", ws[0])
	}
	if hs.Count != 2 {
		t.Fatalf("window hist count = %d, want 2", hs.Count)
	}
	if hs.P50 < 1e-2/1.02 {
		t.Fatalf("window p50 = %g, contaminated by pre-window samples", hs.P50)
	}
	// A window with no new samples omits the histogram entirely.
	c.sample(3_000_000_000)
	if _, ok := c.Windows()[0].Histograms["dcart_lat_seconds"]; ok {
		t.Fatal("idle window carries an empty histogram")
	}
}

func TestCollectorRingWrapNewestFirst(t *testing.T) {
	reg := NewRegistry()
	ms := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms)
	c := stalledCollector(t, reg, 3)
	c.baseline(0)

	for i := 1; i <= 5; i++ {
		ms.Add(metrics.CtrOpsWrite, int64(i))
		c.sample(int64(i) * 1_000_000_000)
	}
	ws := c.Windows()
	if len(ws) != 3 {
		t.Fatalf("retained %d windows, want 3", len(ws))
	}
	for i, want := range []int64{5, 4, 3} { // newest first
		if got := ws[i].Counters["ops_write"]; got != want {
			t.Fatalf("ws[%d] delta = %d, want %d", i, got, want)
		}
	}
}

// TestCollectorRingWrapAtDefaultCapacity drives the ring past its default
// 300-window capacity and checks the wrap invariants end to end: only the
// newest 300 windows survive, strictly newest-first, with per-window
// deltas intact across the wrap (no double-count, no loss, no stale
// window resurfacing).
func TestCollectorRingWrapAtDefaultCapacity(t *testing.T) {
	reg := NewRegistry()
	ms := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms)
	c := stalledCollector(t, reg, 0) // 0 selects DefaultWindowCount
	c.baseline(0)

	const total = DefaultWindowCount + 37 // > 300 samples, wraps the ring
	for i := 1; i <= total; i++ {
		ms.Add(metrics.CtrOpsWrite, int64(i)) // window i's delta is exactly i
		c.sample(int64(i) * 1_000_000_000)
	}

	ws := c.Windows()
	if len(ws) != DefaultWindowCount {
		t.Fatalf("retained %d windows, want %d", len(ws), DefaultWindowCount)
	}
	var sum int64
	for i, w := range ws {
		want := int64(total - i) // newest first: total, total-1, ...
		if got := w.Counters["ops_write"]; got != want {
			t.Fatalf("ws[%d] delta = %d, want %d (eviction order broken)", i, got, want)
		}
		if w.EndUnixNano != want*1_000_000_000 || w.StartUnixNano != (want-1)*1_000_000_000 {
			t.Fatalf("ws[%d] span [%d, %d], want the %d-second window",
				i, w.StartUnixNano, w.EndUnixNano, want)
		}
		sum += w.Counters["ops_write"]
	}
	// The retained deltas must sum to exactly the traffic of the retained
	// interval — the windows evicted by the wrap took their counts along.
	oldest := total - DefaultWindowCount + 1
	want := int64((oldest + total) * DefaultWindowCount / 2)
	if sum != want {
		t.Fatalf("retained delta sum = %d, want %d", sum, want)
	}
	// Evicted windows are unreachable: the oldest retained window is the
	// (total-capacity+1)-th sample, nothing earlier.
	if got := ws[len(ws)-1].Counters["ops_write"]; got != int64(oldest) {
		t.Fatalf("oldest retained delta = %d, want %d", got, oldest)
	}
}

func TestCollectorTopView(t *testing.T) {
	reg := NewRegistry()
	ms := metrics.NewSet()
	reg.RegisterCounters("g", "dcart", "test counters", ms)
	reg.RegisterGauge("g", "dcart_depth", "", "test gauge", func() float64 { return 42 })
	c := stalledCollector(t, reg, 8)
	c.baseline(0)

	ms.Add(metrics.CtrOpsWrite, 10)
	c.sample(1_000_000_000)

	var b strings.Builder
	c.WriteTop(&b)
	out := b.String()
	for _, want := range []string{"COUNTER RATES", "ops_write", "GAUGES", "dcart_depth", "TREND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("top view missing %q:\n%s", want, out)
		}
	}
}

// TestCollectorConcurrentSampleScrapeUnregister exercises the collector's
// sampling goroutine racing live scrapes and group churn — run under
// -race (obs is in the Makefile's RACE_PKGS).
func TestCollectorConcurrentSampleScrapeUnregister(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, time.Millisecond, 16)
	defer c.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer churn: engines attach/detach while their counters move.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g := fmt.Sprintf("eng%d", i%3)
			ms := metrics.NewSet()
			reg.UnregisterGroup(g)
			reg.RegisterCounters(g, "dcart", "test counters", ms)
			h := metrics.NewHistogram()
			var mu sync.Mutex
			reg.RegisterHistogram(g, "dcart_lat_seconds", "test hist", func() *metrics.Histogram {
				mu.Lock()
				defer mu.Unlock()
				return h.Clone()
			})
			for j := 0; j < 50; j++ {
				ms.Inc(metrics.CtrOpsWrite)
				mu.Lock()
				h.Observe(1e-4)
				mu.Unlock()
			}
		}
	}()

	// Scrapers: timeseries JSON + TOP view + snapshot, concurrently.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Windows()
				_ = c.Report()
				var b strings.Builder
				c.WriteTop(&b)
				_ = reg.Snapshot()
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(c.Windows()) == 0 {
		t.Fatal("collector sampled no windows while running")
	}
}
