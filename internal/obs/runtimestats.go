package obs

import (
	"math"
	rtm "runtime/metrics"
	"sync"
	"time"

	"repro/internal/metrics"
)

// RuntimeGroup is the registry group tag for the Go-runtime telemetry
// series. The runtime underneath the pipeline is a confounder the
// data-centric view cannot see on its own: a GC pause or a scheduling
// delay lands in an op's queue-wait stage and masquerades as pipeline
// tail latency. Registering the runtime's own distributions next to the
// engine's lets /metrics, /debug/timeseries, and BENCH rows attribute a
// p99 regression to GC vs pipeline instead of guessing.
const RuntimeGroup = "runtime"

// runtimeCacheTTL bounds how often the registry callbacks re-read
// runtime/metrics: one scrape touches several series, and each Read stops
// the world briefly for some metrics, so all callbacks within the TTL
// share one read.
const runtimeCacheTTL = 100 * time.Millisecond

// runtime/metrics sample names. Histogram-kinded names first appeared
// under different paths across Go releases; runtimeSampleNames filters
// against the running toolchain's supported set, so an absent name
// degrades to an empty series instead of a KindBad panic.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGomaxprocs = "/sched/gomaxprocs:threads"
	rmHeapLive   = "/gc/heap/live:bytes"
	rmHeapGoal   = "/gc/heap/goal:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

var runtimeSupportedOnce sync.Once
var runtimeSupported map[string]bool

func runtimeSampleNames() []string {
	runtimeSupportedOnce.Do(func() {
		runtimeSupported = make(map[string]bool)
		for _, d := range rtm.All() {
			runtimeSupported[d.Name] = true
		}
	})
	want := []string{
		rmGoroutines, rmGomaxprocs, rmHeapLive, rmHeapGoal,
		rmGCCycles, rmGCPauses, rmSchedLat,
	}
	out := want[:0]
	for _, n := range want {
		if runtimeSupported[n] {
			out = append(out, n)
		}
	}
	return out
}

// RuntimeStats is a cached reader over runtime/metrics backing the
// RuntimeGroup registry callbacks. Safe for concurrent use.
type RuntimeStats struct {
	mu      sync.Mutex
	samples []rtm.Sample
	idx     map[string]int
	last    time.Time
}

// NewRuntimeStats builds a reader and takes the initial sample.
func NewRuntimeStats() *RuntimeStats {
	s := &RuntimeStats{idx: make(map[string]int)}
	for _, n := range runtimeSampleNames() {
		s.idx[n] = len(s.samples)
		s.samples = append(s.samples, rtm.Sample{Name: n})
	}
	rtm.Read(s.samples)
	s.last = time.Now()
	return s
}

func (s *RuntimeStats) refreshLocked() {
	if time.Since(s.last) < runtimeCacheTTL {
		return
	}
	rtm.Read(s.samples)
	s.last = time.Now()
}

// gauge returns the named sample as a float64 (0 when unsupported).
func (s *RuntimeStats) gauge(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	s.refreshLocked()
	return sampleFloat(s.samples[i].Value)
}

// histogram converts the named cumulative runtime histogram into the
// repository's metrics.Histogram (empty when unsupported).
func (s *RuntimeStats) histogram(name string) *metrics.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := metrics.NewHistogram()
	i, ok := s.idx[name]
	if !ok {
		return h
	}
	s.refreshLocked()
	if s.samples[i].Value.Kind() == rtm.KindFloat64Histogram {
		convertRuntimeHist(h, s.samples[i].Value.Float64Histogram())
	}
	return h
}

func sampleFloat(v rtm.Value) float64 {
	switch v.Kind() {
	case rtm.KindUint64:
		return float64(v.Uint64())
	case rtm.KindFloat64:
		return v.Float64()
	}
	return 0
}

// convertRuntimeHist folds a runtime/metrics Float64Histogram into h.
// Each source bucket's count lands at the bucket's representative point
// (geometric midpoint; the finite edge for half-open end buckets). The
// mapping is deterministic, so two conversions of the same cumulative
// source diff cleanly — which is what lets the Collector window these
// like any other registered histogram.
func convertRuntimeHist(h *metrics.Histogram, src *rtm.Float64Histogram) {
	if src == nil {
		return
	}
	for i, n := range src.Counts {
		if n == 0 || i+1 >= len(src.Buckets) {
			continue
		}
		lo, hi := src.Buckets[i], src.Buckets[i+1]
		var v float64
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			v = 0
		case math.IsInf(lo, -1):
			v = hi
		case math.IsInf(hi, 1):
			v = lo
		case lo <= 0:
			v = hi / 2
		default:
			v = math.Sqrt(lo * hi)
		}
		h.ObserveN(v, n)
	}
}

// RegisterRuntime registers the Go-runtime telemetry series under the
// RuntimeGroup group on r and returns the shared reader. The series flow
// everywhere registry sources flow: Prometheus exposition, /statsz, the
// windowed collector (GC pauses and scheduler latency appear as
// per-window distributions next to the pipeline's own queue-wait/execute
// split), and the health engine's windows.
func RegisterRuntime(r *Registry) *RuntimeStats {
	s := NewRuntimeStats()
	gauges := []struct {
		name, sample, help string
	}{
		{"dcart_runtime_goroutines", rmGoroutines, "live goroutines"},
		{"dcart_runtime_gomaxprocs", rmGomaxprocs, "GOMAXPROCS: OS threads executing user Go code"},
		{"dcart_runtime_heap_live_bytes", rmHeapLive, "heap bytes live after the last GC mark"},
		{"dcart_runtime_heap_goal_bytes", rmHeapGoal, "heap size the GC is pacing toward"},
		{"dcart_runtime_gc_cycles", rmGCCycles, "completed GC cycles since process start (cumulative)"},
	}
	for _, g := range gauges {
		sample := g.sample
		r.RegisterGauge(RuntimeGroup, g.name, "", g.help,
			func() float64 { return s.gauge(sample) })
	}
	r.RegisterHistogram(RuntimeGroup, "dcart_runtime_gc_pause_seconds",
		"stop-the-world GC pause distribution since process start (cumulative)",
		func() *metrics.Histogram { return s.histogram(rmGCPauses) })
	r.RegisterHistogram(RuntimeGroup, "dcart_runtime_sched_latency_seconds",
		"time goroutines spent runnable before running, since process start (cumulative)",
		func() *metrics.Histogram { return s.histogram(rmSchedLat) })
	return s
}

// RuntimeSnapshot is a point-in-time read of the runtime telemetry set,
// for callers that want before/after deltas rather than registry series
// (the bench harness brackets each measured pass with two of these).
type RuntimeSnapshot struct {
	Goroutines    int
	GOMAXPROCS    int
	HeapLiveBytes uint64
	HeapGoalBytes uint64
	GCCycles      uint64
	GCPause       *metrics.Histogram // cumulative since process start
	SchedLatency  *metrics.Histogram // cumulative since process start
}

// ReadRuntime takes a fresh (uncached) runtime snapshot.
func ReadRuntime() RuntimeSnapshot {
	names := runtimeSampleNames()
	samples := make([]rtm.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	rtm.Read(samples)
	out := RuntimeSnapshot{
		GCPause:      metrics.NewHistogram(),
		SchedLatency: metrics.NewHistogram(),
	}
	for _, smp := range samples {
		switch smp.Name {
		case rmGoroutines:
			out.Goroutines = int(sampleFloat(smp.Value))
		case rmGomaxprocs:
			out.GOMAXPROCS = int(sampleFloat(smp.Value))
		case rmHeapLive:
			out.HeapLiveBytes = uint64(sampleFloat(smp.Value))
		case rmHeapGoal:
			out.HeapGoalBytes = uint64(sampleFloat(smp.Value))
		case rmGCCycles:
			out.GCCycles = uint64(sampleFloat(smp.Value))
		case rmGCPauses:
			if smp.Value.Kind() == rtm.KindFloat64Histogram {
				convertRuntimeHist(out.GCPause, smp.Value.Float64Histogram())
			}
		case rmSchedLat:
			if smp.Value.Kind() == rtm.KindFloat64Histogram {
				convertRuntimeHist(out.SchedLatency, smp.Value.Float64Histogram())
			}
		}
	}
	return out
}

// RuntimeDelta is the runtime activity between two snapshots, in the
// units BENCH rows report (nanoseconds).
type RuntimeDelta struct {
	GCCycles          uint64
	GCPauseCount      uint64
	GCPauseTotalNanos float64
	GCPauseMaxNanos   float64
	SchedLatP99Nanos  float64
	HeapLiveBytes     uint64 // live heap at the end of the interval
}

// DeltaSince returns the runtime activity between prev and s.
func (s RuntimeSnapshot) DeltaSince(prev RuntimeSnapshot) RuntimeDelta {
	d := RuntimeDelta{HeapLiveBytes: s.HeapLiveBytes}
	if s.GCCycles >= prev.GCCycles {
		d.GCCycles = s.GCCycles - prev.GCCycles
	}
	if s.GCPause != nil {
		pd := s.GCPause.Delta(prev.GCPause)
		d.GCPauseCount = pd.Count()
		d.GCPauseTotalNanos = pd.Sum() * 1e9
		if pd.Count() > 0 {
			d.GCPauseMaxNanos = pd.Max() * 1e9
		}
	}
	if s.SchedLatency != nil {
		sd := s.SchedLatency.Delta(prev.SchedLatency)
		if sd.Count() > 0 {
			d.SchedLatP99Nanos = sd.Quantile(0.99) * 1e9
		}
	}
	return d
}

// RuntimeReport is the JSON rendering of a snapshot (flight-recorder
// bundles).
type RuntimeReport struct {
	Goroutines    int       `json:"goroutines"`
	GOMAXPROCS    int       `json:"gomaxprocs"`
	HeapLiveBytes uint64    `json:"heap_live_bytes"`
	HeapGoalBytes uint64    `json:"heap_goal_bytes"`
	GCCycles      uint64    `json:"gc_cycles"`
	GCPause       HistStats `json:"gc_pause"`
	SchedLatency  HistStats `json:"sched_latency"`
}

// Report renders the snapshot for JSON serialization.
func (s RuntimeSnapshot) Report() RuntimeReport {
	return RuntimeReport{
		Goroutines:    s.Goroutines,
		GOMAXPROCS:    s.GOMAXPROCS,
		HeapLiveBytes: s.HeapLiveBytes,
		HeapGoalBytes: s.HeapGoalBytes,
		GCCycles:      s.GCCycles,
		GCPause:       histStatsOf(s.GCPause),
		SchedLatency:  histStatsOf(s.SchedLatency),
	}
}

func histStatsOf(h *metrics.Histogram) HistStats {
	if h == nil || h.Count() == 0 {
		return HistStats{}
	}
	return HistStats{
		Count: h.Count(), Mean: h.Mean(),
		P50: h.Quantile(0.50), P99: h.Quantile(0.99), Max: h.Max(),
	}
}
