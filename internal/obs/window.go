package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// DefaultWindowTick is the default collector sampling interval.
const DefaultWindowTick = time.Second

// DefaultWindowCount is how many windows the collector retains (at the
// default 1s tick: five minutes of history).
const DefaultWindowCount = 300

// Window is one collector tick: per-series counter deltas (and the derived
// rates), gauge values at the end of the window, and per-window latency
// summaries obtained by delta-merging the cumulative histograms. Series
// names follow the Snapshot convention, `name` or `name{labels}`.
type Window struct {
	StartUnixNano int64                `json:"start_unix_nano"`
	EndUnixNano   int64                `json:"end_unix_nano"`
	Counters      map[string]int64     `json:"counters,omitempty"` // deltas over the window
	Gauges        map[string]float64   `json:"gauges,omitempty"`
	Histograms    map[string]HistStats `json:"histograms,omitempty"` // window-local distribution
}

// Seconds returns the window's wall-clock length.
func (w *Window) Seconds() float64 {
	return float64(w.EndUnixNano-w.StartUnixNano) / 1e9
}

// Rate returns counter name's per-second rate over this window.
func (w *Window) Rate(name string) float64 {
	s := w.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(w.Counters[name]) / s
}

// Collector turns the registry's cumulative state into time-resolved
// telemetry: a background sampler snapshots every registered source on a
// fixed tick and keeps the last N windows of per-series deltas in a ring.
// One scrape of /debug/timeseries then answers what a single cumulative
// scrape cannot — warmup vs steady state, a latency spike that already
// passed, rate trends across a bench run.
//
// Sampling cost is bounded by the registry's own Snapshot cost (one
// read-locked pass over the callbacks) and is paid on the collector
// goroutine, never on an engine hot path.
type Collector struct {
	reg  *Registry
	tick time.Duration

	mu       sync.Mutex
	ring     []Window
	next     int
	full     bool
	prevCtr  map[string]int64
	prevHist map[string]*metrics.Histogram
	prevAt   int64
	onSample func()

	stop chan struct{}
	done chan struct{}
}

// NewCollector starts a collector sampling reg every tick, retaining
// capacity windows. Zero or negative arguments select the defaults. The
// construction itself takes the baseline sample, so the first emitted
// window holds deltas since start, not all-time cumulative values. Stop
// the returned collector when done.
func NewCollector(reg *Registry, tick time.Duration, capacity int) *Collector {
	if tick <= 0 {
		tick = DefaultWindowTick
	}
	if capacity <= 0 {
		capacity = DefaultWindowCount
	}
	c := &Collector{
		reg:  reg,
		tick: tick,
		ring: make([]Window, capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.baseline(time.Now().UnixNano())
	go c.run()
	return c
}

// Tick returns the sampling interval.
func (c *Collector) Tick() time.Duration { return c.tick }

// Stop terminates the sampling goroutine and waits for it to exit. The
// retained windows stay readable.
func (c *Collector) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *Collector) run() {
	defer close(c.done)
	t := time.NewTicker(c.tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.sample(now.UnixNano())
			c.mu.Lock()
			fn := c.onSample
			c.mu.Unlock()
			if fn != nil {
				fn()
			}
		}
	}
}

// SetOnSample registers fn to run on the collector goroutine after every
// background tick appends its window — the hook the health engine
// evaluates its rules from, so rule latency is one tick, never a poll.
// The callback runs outside the collector's lock and may read Windows().
func (c *Collector) SetOnSample(fn func()) {
	c.mu.Lock()
	c.onSample = fn
	c.mu.Unlock()
}

// baseline primes the previous-sample state without emitting a window.
func (c *Collector) baseline(now int64) {
	ctrs, _, hists := c.reg.rawSample()
	c.mu.Lock()
	c.prevCtr, c.prevHist, c.prevAt = ctrs, hists, now
	c.mu.Unlock()
}

// sample takes one registry snapshot and appends the delta window.
func (c *Collector) sample(now int64) {
	ctrs, gauges, hists := c.reg.rawSample()

	c.mu.Lock()
	defer c.mu.Unlock()

	w := Window{StartUnixNano: c.prevAt, EndUnixNano: now}
	if len(ctrs) > 0 {
		w.Counters = make(map[string]int64, len(ctrs))
		for n, v := range ctrs {
			d := v - c.prevCtr[n]
			if d < 0 {
				// The source was reset or replaced (bench swaps engines
				// between rows): treat the current value as the window.
				d = v
			}
			if d != 0 {
				w.Counters[n] = d
			}
		}
	}
	if len(gauges) > 0 {
		w.Gauges = gauges
	}
	if len(hists) > 0 {
		w.Histograms = make(map[string]HistStats, len(hists))
		for n, h := range hists {
			d := h.Delta(c.prevHist[n])
			if d.Count() == 0 {
				continue
			}
			w.Histograms[n] = HistStats{
				Count: d.Count(), Mean: d.Mean(),
				P50: d.Quantile(0.50), P99: d.Quantile(0.99), Max: d.Max(),
			}
		}
	}

	c.ring[c.next] = w
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}
	c.prevCtr, c.prevHist, c.prevAt = ctrs, hists, now
}

// Windows returns the retained windows, newest first.
func (c *Collector) Windows() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	if c.full {
		n = len(c.ring)
	}
	out := make([]Window, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, c.ring[(c.next-i+len(c.ring))%len(c.ring)])
	}
	return out
}

// Timeseries is the /debug/timeseries JSON response body.
type Timeseries struct {
	Enabled     bool     `json:"enabled"`
	TickSeconds float64  `json:"tick_seconds,omitempty"`
	Capacity    int      `json:"capacity,omitempty"`
	Windows     []Window `json:"windows"` // newest first
}

// Report assembles the JSON view of the retained windows, newest first.
func (c *Collector) Report() *Timeseries {
	return &Timeseries{
		Enabled:     true,
		TickSeconds: c.tick.Seconds(),
		Capacity:    len(c.ring),
		Windows:     c.Windows(),
	}
}

// topRows is how many series each WriteTop section shows.
const topRows = 16

// WriteTop renders a TOP-style text view of the newest window: the hottest
// counters by per-second rate, current gauges, and per-window latency
// percentiles, followed by a short rate trend over the preceding windows.
func (c *Collector) WriteTop(w io.Writer) {
	ws := c.Windows()
	fmt.Fprintf(w, "dcart timeseries — tick %s, %d/%d windows retained, newest first\n",
		c.tick, len(ws), len(c.ring))
	if len(ws) == 0 {
		fmt.Fprintln(w, "(no windows sampled yet)")
		return
	}
	cur := ws[0]
	fmt.Fprintf(w, "window %s .. %s (%.3fs)\n\n",
		time.Unix(0, cur.StartUnixNano).UTC().Format("15:04:05.000"),
		time.Unix(0, cur.EndUnixNano).UTC().Format("15:04:05.000"),
		cur.Seconds())

	type kv struct {
		name string
		rate float64
	}
	rates := make([]kv, 0, len(cur.Counters))
	for n := range cur.Counters {
		rates = append(rates, kv{n, cur.Rate(n)})
	}
	sort.Slice(rates, func(i, j int) bool {
		if rates[i].rate != rates[j].rate {
			return rates[i].rate > rates[j].rate
		}
		return rates[i].name < rates[j].name
	})
	fmt.Fprintln(w, "COUNTER RATES (per second, this window)")
	if len(rates) == 0 {
		fmt.Fprintln(w, "  (idle)")
	}
	for i, r := range rates {
		if i == topRows {
			fmt.Fprintf(w, "  … %d more\n", len(rates)-topRows)
			break
		}
		fmt.Fprintf(w, "  %-52s %14.1f/s\n", r.name, r.rate)
	}

	if len(cur.Gauges) > 0 {
		names := make([]string, 0, len(cur.Gauges))
		for n := range cur.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "\nGAUGES")
		for i, n := range names {
			if i == topRows {
				fmt.Fprintf(w, "  … %d more\n", len(names)-topRows)
				break
			}
			fmt.Fprintf(w, "  %-52s %14s\n", n, formatFloat(cur.Gauges[n]))
		}
	}

	if len(cur.Histograms) > 0 {
		names := make([]string, 0, len(cur.Histograms))
		for n := range cur.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "\nLATENCY (this window)")
		for _, n := range names {
			h := cur.Histograms[n]
			fmt.Fprintf(w, "  %-52s n=%-8d p50=%-10s p99=%-10s max=%s\n",
				n, h.Count, fmtDur(h.P50), fmtDur(h.P99), fmtDur(h.Max))
		}
	}

	// Rate trend for the single hottest counter across retained windows.
	if len(rates) > 0 {
		hot := rates[0].name
		fmt.Fprintf(w, "\nTREND %s (newest first)\n ", hot)
		for i, win := range ws {
			if i == 12 {
				break
			}
			fmt.Fprintf(w, " %.0f/s", win.Rate(hot))
		}
		fmt.Fprintln(w)
	}
}

// fmtDur renders seconds with a duration unit suited to its magnitude.
func fmtDur(seconds float64) string {
	return time.Duration(seconds * 1e9).Round(time.Microsecond).String()
}
