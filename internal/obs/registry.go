// Package obs is the live observability layer: a runtime registry of
// gauges, counters, and latency histograms (exported in Prometheus text
// exposition format and as JSON snapshots), a sampled op-lifecycle tracer,
// and a diagnostics HTTP server.
//
// Where internal/metrics provides the raw instrumentation primitives the
// engines write into on their hot paths, obs is the read side: it wraps
// those primitives behind callback registrations so scraping never touches
// an engine's hot path, and it can attach/detach whole engines at runtime
// (the bench harness swaps engines between experiment rows while a scraper
// watches).
//
// Everything here is pull-based: a registered GaugeFunc or HistogramFunc
// runs only when something asks for /metrics, STATS, or a Snapshot.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// GaugeFunc returns a gauge's instantaneous value. It must be safe to call
// from any goroutine at any time (typically an atomic load or a brief
// lock), and must not block on the pipeline it observes.
type GaugeFunc func() float64

// HistogramFunc returns a point-in-time histogram the registry may read
// freely — a freshly merged copy, never a live single-writer histogram
// (see the metrics.Histogram concurrency contract).
type HistogramFunc func() *metrics.Histogram

type gaugeReg struct {
	group  string
	name   string // Prometheus metric name, no labels
	labels string // pre-rendered label pairs, e.g. `worker="3"`, or ""
	help   string
	fn     GaugeFunc
}

type counterReg struct {
	group  string
	prefix string // each counter exports as <prefix>_<name>_total
	labels string // pre-rendered label pairs, e.g. `shard="2"`, or ""
	help   string
	set    *metrics.Set
}

type histReg struct {
	group  string
	name   string
	labels string // pre-rendered label pairs, e.g. `shard="2"`, or ""
	help   string
	fn     HistogramFunc
}

// Registry is a dynamic collection of observability sources. Registrations
// carry a group tag so a whole engine's worth of series can be attached
// and detached as one unit. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	gauges   []gaugeReg
	counters []counterReg
	hists    []histReg
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterGauge adds a gauge. labels is a pre-rendered Prometheus label
// body (`worker="0"`) or empty; several registrations may share a name
// with distinct labels and are emitted under one HELP/TYPE header.
func (r *Registry) RegisterGauge(group, name, labels, help string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeReg{group, name, labels, help, fn})
}

// RegisterCounters exports every counter of a metrics.Set as a Prometheus
// counter named <prefix>_<counter>_total.
func (r *Registry) RegisterCounters(group, prefix, help string, set *metrics.Set) {
	r.RegisterCountersLabeled(group, prefix, "", help, set)
}

// RegisterCountersLabeled is RegisterCounters with a pre-rendered label
// body (`shard="2"`) stamped on every exported series, so several sets —
// e.g. one per store shard — can share counter names without colliding.
func (r *Registry) RegisterCountersLabeled(group, prefix, labels, help string, set *metrics.Set) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, counterReg{group, prefix, labels, help, set})
}

// RegisterHistogram adds a latency histogram source (values in seconds).
func (r *Registry) RegisterHistogram(group, name, help string, fn HistogramFunc) {
	r.RegisterHistogramLabeled(group, name, "", help, fn)
}

// RegisterHistogramLabeled is RegisterHistogram with a pre-rendered label
// body stamped on every exported bucket/sum/count series.
func (r *Registry) RegisterHistogramLabeled(group, name, labels, help string, fn HistogramFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists = append(r.hists, histReg{group, name, labels, help, fn})
}

// UnregisterGroup removes every registration carrying the group tag.
func (r *Registry) UnregisterGroup(group string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = deleteGroup(r.gauges, group, func(g gaugeReg) string { return g.group })
	r.counters = deleteGroup(r.counters, group, func(c counterReg) string { return c.group })
	r.hists = deleteGroup(r.hists, group, func(h histReg) string { return h.group })
}

func deleteGroup[T any](in []T, group string, key func(T) string) []T {
	out := in[:0]
	for _, v := range in {
		if key(v) != group {
			out = append(out, v)
		}
	}
	// Clear the tail so dropped registrations (and their closures) are
	// collectable.
	for i := len(out); i < len(in); i++ {
		var zero T
		in[i] = zero
	}
	return out
}

// HistStats is the fixed percentile summary of one histogram, in seconds.
type HistStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of everything registered, suitable for
// JSON encoding (the /statsz endpoint) and one-line rendering (the
// dcart-kv STATS command).
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]float64   `json:"gauges"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
}

// Snapshot reads every registered source once.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistStats),
	}
	for _, c := range r.counters {
		for n, v := range c.set.Snapshot() {
			if c.labels != "" {
				n = n + "{" + c.labels + "}"
			}
			s.Counters[n] = v
		}
	}
	for _, g := range r.gauges {
		name := g.name
		if g.labels != "" {
			name = g.name + "{" + g.labels + "}"
		}
		s.Gauges[name] = g.fn()
	}
	for _, hr := range r.hists {
		h := hr.fn()
		if h == nil {
			continue
		}
		name := hr.name
		if hr.labels != "" {
			name = hr.name + "{" + hr.labels + "}"
		}
		s.Histograms[name] = HistStats{
			Count: h.Count(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Max: h.Max(),
		}
	}
	return s
}

// rawSample reads every registered source once under one read lock,
// returning cumulative counter values, gauge values, and fresh histogram
// copies (HistogramFunc already returns a merged copy the caller may keep).
// The windowed Collector diffs two consecutive rawSamples into a Window.
func (r *Registry) rawSample() (ctrs map[string]int64, gauges map[string]float64, hists map[string]*metrics.Histogram) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ctrs = make(map[string]int64)
	gauges = make(map[string]float64)
	hists = make(map[string]*metrics.Histogram)
	for _, c := range r.counters {
		for n, v := range c.set.Snapshot() {
			if c.labels != "" {
				n = n + "{" + c.labels + "}"
			}
			ctrs[n] = v
		}
	}
	for _, g := range r.gauges {
		name := g.name
		if g.labels != "" {
			name = g.name + "{" + g.labels + "}"
		}
		gauges[name] = g.fn()
	}
	for _, hr := range r.hists {
		h := hr.fn()
		if h == nil {
			continue
		}
		name := hr.name
		if hr.labels != "" {
			name = hr.name + "{" + hr.labels + "}"
		}
		hists[name] = h
	}
	return ctrs, gauges, hists
}

// String renders the snapshot as one line of sorted "key=value" pairs,
// omitting zero counters and zero gauges — the dcart-kv STATS wire format.
func (s *Snapshot) String() string {
	parts := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n, v := range s.Counters {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", n, v))
		}
	}
	for n, v := range s.Gauges {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", n, v))
		}
	}
	for n, h := range s.Histograms {
		if h.Count != 0 {
			parts = append(parts, fmt.Sprintf("%s_p50=%.3gms %s_p99=%.3gms",
				n, h.P50*1e3, n, h.P99*1e3))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
