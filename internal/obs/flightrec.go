package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Flight-recorder defaults.
const (
	// DefaultFlightMinInterval rate-limits dumps: a flapping rule must not
	// turn the recorder into a disk-filling loop.
	DefaultFlightMinInterval = 30 * time.Second
	// DefaultFlightKeep bounds retention; the oldest bundles beyond it are
	// pruned after each dump.
	DefaultFlightKeep = 8
	// flightWindowCap bounds how many collector windows a bundle carries
	// (newest first) — two minutes at the default tick, enough to see the
	// anomaly form without serializing the whole five-minute ring.
	flightWindowCap = 120
)

// ErrFlightRateLimited is returned by Trigger when a dump was suppressed
// by the minimum-interval rate limit.
var ErrFlightRateLimited = errors.New("obs: flight recorder rate limited")

// flightPrefix names bundle directories: flightrec-<UTC stamp>-<reason>.
const flightPrefix = "flightrec-"

// FlightRecorder dumps a post-mortem bundle of every live observability
// source to a timestamped directory when something fires: a health rule,
// SIGQUIT, or /debug/flightrec?trigger=1. The windowed collector and the
// journal lose their evidence as the rings wrap — the recorder's job is
// to freeze that evidence at the moment an anomaly is detected, so the
// post-mortem needs no live endpoint and no reproduction.
//
// Bundles are written to a hidden temp directory and renamed into place,
// so a reader never observes a partial bundle; manifest.json is the
// completeness marker and index.
type FlightRecorder struct {
	dir    string
	d      Diagnostics
	health *Health
	config map[string]string

	minInterval time.Duration
	keep        int

	mu         sync.Mutex
	lastAt     time.Time
	dumps      uint64
	suppressed uint64
}

// NewFlightRecorder builds a recorder writing bundles under dir (created
// on first dump). d's nil sources are simply absent from bundles; health
// may be nil.
func NewFlightRecorder(dir string, d Diagnostics, health *Health) *FlightRecorder {
	return &FlightRecorder{
		dir: dir, d: d, health: health,
		minInterval: DefaultFlightMinInterval,
		keep:        DefaultFlightKeep,
	}
}

// SetLimits overrides the rate limit and retention (zero keeps the
// current value; tests shrink both).
func (f *FlightRecorder) SetLimits(minInterval time.Duration, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if minInterval > 0 {
		f.minInterval = minInterval
	}
	if keep > 0 {
		f.keep = keep
	}
}

// SetConfig attaches the process configuration (typically flag values)
// dumped into every bundle's config.json.
func (f *FlightRecorder) SetConfig(cfg map[string]string) {
	f.mu.Lock()
	f.config = cfg
	f.mu.Unlock()
}

// Dir returns the bundle directory.
func (f *FlightRecorder) Dir() string { return f.dir }

// flightManifest is a bundle's manifest.json.
type flightManifest struct {
	Reason       string   `json:"reason"`
	TimeUnixNano int64    `json:"time_unix_nano"`
	Time         string   `json:"time"` // RFC3339, for humans
	Files        []string `json:"files"`
}

// flightStatus is the /debug/flightrec response body.
type flightStatus struct {
	Enabled         bool     `json:"enabled"`
	Dir             string   `json:"dir,omitempty"`
	Dumps           uint64   `json:"dumps"`
	Suppressed      uint64   `json:"suppressed"`
	LastUnixNano    int64    `json:"last_unix_nano,omitempty"`
	MinIntervalSecs float64  `json:"min_interval_seconds"`
	Keep            int      `json:"keep"`
	Bundles         []string `json:"bundles"`
}

func (f *FlightRecorder) status() flightStatus {
	f.mu.Lock()
	st := flightStatus{
		Enabled: true, Dir: f.dir,
		Dumps: f.dumps, Suppressed: f.suppressed,
		MinIntervalSecs: f.minInterval.Seconds(), Keep: f.keep,
	}
	if !f.lastAt.IsZero() {
		st.LastUnixNano = f.lastAt.UnixNano()
	}
	f.mu.Unlock()
	st.Bundles = f.bundles()
	return st
}

// bundles lists completed bundle directory names, oldest first (the
// timestamped names sort chronologically).
func (f *FlightRecorder) bundles() []string {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return []string{}
	}
	out := []string{}
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), flightPrefix) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Trigger dumps one bundle attributed to reason and returns its
// directory. ErrFlightRateLimited means a recent dump already captured
// this state.
func (f *FlightRecorder) Trigger(reason string) (string, error) {
	f.mu.Lock()
	now := time.Now()
	if !f.lastAt.IsZero() && now.Sub(f.lastAt) < f.minInterval {
		f.suppressed++
		f.mu.Unlock()
		return "", ErrFlightRateLimited
	}
	f.lastAt = now
	f.dumps++
	cfg := f.config
	f.mu.Unlock()

	name := flightPrefix + now.UTC().Format("20060102T150405.000000000") + "-" + sanitizeReason(reason)
	final := filepath.Join(f.dir, name)
	tmp := filepath.Join(f.dir, "."+name+".tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	manifest := flightManifest{
		Reason:       reason,
		TimeUnixNano: now.UnixNano(),
		Time:         now.UTC().Format(time.RFC3339Nano),
	}

	writeJSON := func(fname string, v any) {
		fp, err := os.Create(filepath.Join(tmp, fname))
		if err != nil {
			return
		}
		enc := json.NewEncoder(fp)
		enc.SetIndent("", "  ")
		if enc.Encode(v) == nil {
			manifest.Files = append(manifest.Files, fname)
		}
		fp.Close()
	}

	if f.d.Collector != nil {
		ts := f.d.Collector.Report()
		if len(ts.Windows) > flightWindowCap {
			ts.Windows = ts.Windows[:flightWindowCap]
		}
		writeJSON("windows.json", ts)
	}
	if f.d.Journal != nil {
		if fp, err := os.Create(filepath.Join(tmp, "events.ndjson")); err == nil {
			if f.d.Journal.WriteJSONLines(fp) == nil {
				manifest.Files = append(manifest.Files, "events.ndjson")
			}
			fp.Close()
		}
	}
	if f.d.Tracer != nil {
		writeJSON("traces.json", tracesReport{
			Enabled:     true,
			SampleEvery: f.d.Tracer.SampleEvery(),
			Recorded:    f.d.Tracer.Recorded(),
			Spans:       f.d.Tracer.Spans(),
		})
	}
	if f.d.Registry != nil {
		writeJSON("statsz.json", f.d.Registry.Snapshot())
	}
	if f.health != nil {
		writeJSON("health.json", f.health.Status())
	}
	writeJSON("runtime.json", ReadRuntime().Report())
	if cfg != nil {
		writeJSON("config.json", cfg)
	}
	if fp, err := os.Create(filepath.Join(tmp, "goroutines.txt")); err == nil {
		if p := pprof.Lookup("goroutine"); p != nil && p.WriteTo(fp, 2) == nil {
			manifest.Files = append(manifest.Files, "goroutines.txt")
		}
		fp.Close()
	}

	// Manifest last: its presence marks the bundle complete.
	sort.Strings(manifest.Files)
	writeJSON("manifest.json", manifest)
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	f.prune()
	return final, nil
}

// prune removes the oldest bundles beyond the retention bound.
func (f *FlightRecorder) prune() {
	f.mu.Lock()
	keep := f.keep
	f.mu.Unlock()
	names := f.bundles()
	for len(names) > keep {
		os.RemoveAll(filepath.Join(f.dir, names[0]))
		names = names[1:]
	}
}

// sanitizeReason maps a trigger reason into a filesystem-safe directory
// suffix.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return b.String()
}

// TriggerOnFire wires health firings to the recorder: registers an OnFire
// hook that dumps a bundle named after the firing rule on its own
// goroutine (file I/O must not block the collector's sampling tick).
// logf, if non-nil, receives one line per dump or dump failure.
func (f *FlightRecorder) TriggerOnFire(h *Health, logf func(format string, args ...any)) {
	if h == nil {
		return
	}
	h.SetOnFire(func(st Status) {
		reason := "health"
		if len(st.Firing) > 0 {
			reason = "rule-" + st.Firing[0].Rule
		}
		go func() {
			dir, err := f.Trigger(reason)
			if logf == nil {
				return
			}
			switch {
			case err == nil:
				logf("obs: health %s: flight-recorder bundle %s", st.Status, dir)
			case errors.Is(err, ErrFlightRateLimited):
				// Quiet: a recent bundle already captured this state.
			default:
				logf("obs: flight-recorder dump failed: %v", err)
			}
		}()
	})
}
