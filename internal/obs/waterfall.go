package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// waterfallWidth is the bar width in columns.
const waterfallWidth = 48

// WriteWaterfall renders a text waterfall of the given spans — normally
// every layer's spans for one trace ID (Tracer.SpansFor), e.g. a kvserver
// wire span over a pctt engine span for the same key hash. Each span
// prints a header line and one row per stage with its offset from the
// earliest submit, its duration, and a bar scaled onto a shared timeline,
// so queue wait vs execute (the paper's §4.1 split) is visible at a
// glance. Spans without explicit stages fall back to the queue/exec pair
// derived from their submit/batch/done stamps.
func WriteWaterfall(w io.Writer, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	// Oldest first, so the wire span (submitted earliest) leads.
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].SubmitUnixNano < ordered[j].SubmitUnixNano
	})

	t0 := ordered[0].SubmitUnixNano
	t1 := t0
	for _, s := range ordered {
		if s.SubmitUnixNano < t0 {
			t0 = s.SubmitUnixNano
		}
		if s.DoneUnixNano > t1 {
			t1 = s.DoneUnixNano
		}
		for _, st := range stagesOf(s) {
			if st.EndUnixNano > t1 {
				t1 = st.EndUnixNano
			}
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}

	fmt.Fprintf(w, "trace %#016x — %d span(s), %s end to end\n",
		ordered[0].TraceID, len(ordered), time.Duration(span))
	for _, s := range ordered {
		layer := s.Layer
		if layer == "" {
			layer = "engine"
		}
		fmt.Fprintf(w, "\n%s/%s", layer, s.Op)
		if s.Worker >= 0 {
			fmt.Fprintf(w, "  worker=%d", s.Worker)
		}
		if s.Bucket >= 0 {
			fmt.Fprintf(w, " bucket=%d", s.Bucket)
		}
		if s.Migrated {
			fmt.Fprint(w, " migrated")
		}
		fmt.Fprintf(w, "  total=%s\n", time.Duration(s.TotalNanos()))
		for _, st := range stagesOf(s) {
			off := st.StartUnixNano - t0
			fmt.Fprintf(w, "  %-10s %10s +%-10s |%s|\n",
				st.Name,
				time.Duration(st.Nanos()),
				time.Duration(off),
				bar(off, st.Nanos(), span))
		}
	}
}

// stagesOf returns a span's stage list, synthesizing the classic
// queue-wait/exec pair for spans recorded before stages existed (or by
// paths that only stamp the three lifecycle points).
func stagesOf(s Span) []Stage {
	if len(s.Stages) > 0 {
		return s.Stages
	}
	if s.SubmitUnixNano == 0 || s.DoneUnixNano == 0 {
		return nil
	}
	batch := s.BatchUnixNano
	if batch < s.SubmitUnixNano {
		batch = s.SubmitUnixNano
	}
	return []Stage{
		{Name: "queue", StartUnixNano: s.SubmitUnixNano, EndUnixNano: batch},
		{Name: "exec", StartUnixNano: batch, EndUnixNano: s.DoneUnixNano},
	}
}

// bar renders one stage interval onto the shared [0, span) timeline.
func bar(off, dur, span int64) string {
	if off < 0 {
		off = 0
	}
	if dur < 0 {
		dur = 0
	}
	lead := int(off * waterfallWidth / span)
	fill := int(dur * waterfallWidth / span)
	if lead >= waterfallWidth {
		lead = waterfallWidth - 1
	}
	if fill < 1 {
		fill = 1 // every stage stays visible
	}
	if lead+fill > waterfallWidth {
		fill = waterfallWidth - lead
	}
	var b strings.Builder
	b.WriteString(strings.Repeat("·", lead))
	b.WriteString(strings.Repeat("█", fill))
	b.WriteString(strings.Repeat(" ", waterfallWidth-lead-fill))
	return b.String()
}
