package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	set := metrics.NewSet()
	set.Add(metrics.CtrOpsWrite, 9)
	reg.RegisterCounters("t", "dcart", "counters", set)
	reg.RegisterGauge("t", "dcart_keys", "", "live keys", func() float64 { return 11 })

	tr := NewTracer(8, 1)
	tr.Record(Span{TraceID: 0xabc, Op: "put", Worker: 1, QueueWaitNanos: 250, ExecNanos: 90})

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	_ = ctype

	code, body, ctype = get(t, base+"/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "dcart_ops_write_total 9") || !strings.Contains(body, "dcart_keys 11") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body, ctype = get(t, base+"/statsz")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/statsz: %d %q", code, ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if snap.Counters[metrics.CtrOpsWrite] != 9 || snap.Gauges["dcart_keys"] != 11 {
		t.Fatalf("/statsz snapshot = %+v", snap)
	}

	code, body, _ = get(t, base+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var rep tracesReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if !rep.Enabled || rep.Recorded != 1 || len(rep.Spans) != 1 || rep.Spans[0].Op != "put" {
		t.Fatalf("/debug/traces = %+v", rep)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServerNilTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	code, body, _ := get(t, "http://"+srv.Addr()+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var rep tracesReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rep.Enabled || rep.Spans == nil || len(rep.Spans) != 0 {
		t.Fatalf("nil-tracer report = %+v", rep)
	}
}

func TestServerContinuousTelemetryEndpoints(t *testing.T) {
	reg := NewRegistry()
	set := metrics.NewSet()
	reg.RegisterCounters("t", "dcart", "counters", set)

	tr := NewTracer(8, 1)
	tr.Record(Span{
		TraceID: 77, Op: "put", Layer: "wire", Worker: -1, Bucket: -1,
		SubmitUnixNano: 1_000, DoneUnixNano: 9_000,
		Stages: []Stage{
			{Name: "parse", StartUnixNano: 1_000, EndUnixNano: 2_000},
			{Name: "flush", StartUnixNano: 2_000, EndUnixNano: 9_000},
		},
	})

	col := stalledCollector(t, reg, 8)
	col.baseline(0)
	set.Add(metrics.CtrOpsWrite, 12)
	col.sample(1_000_000_000)

	j := NewJournal(time.Nanosecond, 8, nil)
	j.Observe(Span{TraceID: 77, Op: "put", SubmitUnixNano: 1, DoneUnixNano: 5_000_000})

	srv, err := ServeAll("127.0.0.1:0", Diagnostics{Registry: reg, Tracer: tr, Collector: col, Journal: j})
	if err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + srv.Addr()

	// /debug/timeseries JSON.
	code, body, ctype := get(t, base+"/debug/timeseries")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/timeseries: %d %q", code, ctype)
	}
	var ts Timeseries
	if err := json.Unmarshal([]byte(body), &ts); err != nil {
		t.Fatalf("/debug/timeseries not JSON: %v\n%s", err, body)
	}
	if !ts.Enabled || len(ts.Windows) != 1 || ts.Windows[0].Counters["ops_write"] != 12 {
		t.Fatalf("/debug/timeseries = %+v", ts)
	}

	// /debug/timeseries?view=top text view.
	code, body, ctype = get(t, base+"/debug/timeseries?view=top")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("timeseries top view: %d %q", code, ctype)
	}
	if !strings.Contains(body, "COUNTER RATES") || !strings.Contains(body, "ops_write") {
		t.Fatalf("top view body:\n%s", body)
	}

	// /debug/events NDJSON: meta line then events.
	code, body, ctype = get(t, base+"/debug/events")
	if code != 200 || !strings.HasPrefix(ctype, "application/x-ndjson") {
		t.Fatalf("/debug/events: %d %q", code, ctype)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/debug/events lines = %d:\n%s", len(lines), body)
	}
	var meta journalMeta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || !meta.Enabled || meta.Recorded != 1 {
		t.Fatalf("/debug/events meta = %+v (%v)", meta, err)
	}

	// /debug/traces?id= waterfall, decimal and hex forms.
	for _, q := range []string{"77", "0x4d"} {
		code, body, ctype = get(t, base+"/debug/traces?id="+q)
		if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("waterfall id=%s: %d %q\n%s", q, code, ctype, body)
		}
		if !strings.Contains(body, "wire/put") || !strings.Contains(body, "parse") || !strings.Contains(body, "flush") {
			t.Fatalf("waterfall id=%s body:\n%s", q, body)
		}
	}
	if code, _, _ := get(t, base+"/debug/traces?id=12345"); code != 404 {
		t.Fatalf("unknown trace id: %d, want 404", code)
	}
	if code, _, _ := get(t, base+"/debug/traces?id=nope"); code != 400 {
		t.Fatalf("malformed trace id: %d, want 400", code)
	}
}

func TestServerTelemetryDisabled(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + srv.Addr()

	code, body, _ := get(t, base+"/debug/timeseries")
	var ts Timeseries
	if code != 200 || json.Unmarshal([]byte(body), &ts) != nil || ts.Enabled {
		t.Fatalf("disabled timeseries: %d %s", code, body)
	}
	code, body, _ = get(t, base+"/debug/events")
	var meta journalMeta
	if code != 200 || json.Unmarshal([]byte(body), &meta) != nil || meta.Enabled {
		t.Fatalf("disabled events: %d %s", code, body)
	}
	if code, _, _ := get(t, base+"/debug/traces?id=1"); code != 404 {
		t.Fatalf("waterfall with nil tracer: %d, want 404", code)
	}
}
