package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	set := metrics.NewSet()
	set.Add(metrics.CtrOpsWrite, 9)
	reg.RegisterCounters("t", "dcart", "counters", set)
	reg.RegisterGauge("t", "dcart_keys", "", "live keys", func() float64 { return 11 })

	tr := NewTracer(8, 1)
	tr.Record(Span{TraceID: 0xabc, Op: "put", Worker: 1, QueueWaitNanos: 250, ExecNanos: 90})

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	_ = ctype

	code, body, ctype = get(t, base+"/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "dcart_ops_write_total 9") || !strings.Contains(body, "dcart_keys 11") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body, ctype = get(t, base+"/statsz")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/statsz: %d %q", code, ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if snap.Counters[metrics.CtrOpsWrite] != 9 || snap.Gauges["dcart_keys"] != 11 {
		t.Fatalf("/statsz snapshot = %+v", snap)
	}

	code, body, _ = get(t, base+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var rep tracesReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if !rep.Enabled || rep.Recorded != 1 || len(rep.Spans) != 1 || rep.Spans[0].Op != "put" {
		t.Fatalf("/debug/traces = %+v", rep)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServerNilTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	code, body, _ := get(t, "http://"+srv.Addr()+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var rep tracesReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rep.Enabled || rep.Spans == nil || len(rep.Spans) != 0 {
		t.Fatalf("nil-tracer report = %+v", rep)
	}
}
