package obs

import (
	"sync"
	"sync/atomic"
)

// Span is one sampled operation's lifecycle through the P-CTT pipeline:
// submit (task creation, before any producer-side buffering), combine +
// queue wait (submit until the operation's trigger batch began executing),
// and trigger-execute (batch begin until completion). The trace ID is the
// operation's end-to-end key hash — the same value the pipeline carries
// for grouping and Shortcut_Table lookups — so spans for one key correlate
// across workers, steals, and handoffs.
type Span struct {
	TraceID uint64 `json:"trace_id"` // key hash, carried end-to-end
	Op      string `json:"op"`       // "get" | "put" | "delete"
	Worker  int    `json:"worker"`   // worker that executed the op
	Bucket  int    `json:"bucket"`   // combine bucket (key-prefix shard)
	// Migrated reports the op executed on a worker other than the bucket's
	// static home (bucket mod workers) — i.e. it rode a steal or handoff.
	Migrated       bool  `json:"migrated"`
	SubmitUnixNano int64 `json:"submit_unix_nano"`
	BatchUnixNano  int64 `json:"batch_start_unix_nano"`
	DoneUnixNano   int64 `json:"done_unix_nano"`
	QueueWaitNanos int64 `json:"queue_wait_nanos"` // batch start - submit
	ExecNanos      int64 `json:"exec_nanos"`       // done - batch start

	// Layer names the pipeline layer that recorded the span: "engine" for
	// pctt/store-side execution, "wire" for the kvserver reader→writer path.
	// Spans sharing a TraceID across layers describe the same operation and
	// compose into one waterfall (WriteWaterfall).
	Layer string `json:"layer,omitempty"`
	// Stages is the span's ordered stage breakdown — e.g. the wire's
	// parse→submit→window→execute→flush, or the engine's
	// queue→combine→traverse→trigger — mapping the paper's §4.1 latency
	// split onto wall-clock stamps.
	Stages []Stage `json:"stages,omitempty"`
}

// Stage is one named interval inside a Span.
type Stage struct {
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	EndUnixNano   int64  `json:"end_unix_nano"`
}

// Nanos returns the stage duration.
func (s Stage) Nanos() int64 { return s.EndUnixNano - s.StartUnixNano }

// TotalNanos returns the span's end-to-end duration.
func (s Span) TotalNanos() int64 { return s.DoneUnixNano - s.SubmitUnixNano }

// Tracer is a sampled, low-overhead span recorder: a 1/N sampling decision
// (one atomic increment on the submit path) feeding a fixed-size ring of
// recent spans. Record and Spans take a mutex, but only sampled operations
// ever reach them, so at the default 1/1024 the hot-path cost is the
// sampling counter alone.
type Tracer struct {
	mask     uint64 // sampleEvery-1; sampleEvery forced to a power of two
	n        atomic.Uint64
	recorded atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int  // next write position
	full bool // ring has wrapped
}

// DefaultSampleEvery is the default sampling stride (1 op in 1024).
const DefaultSampleEvery = 1024

// DefaultTraceCap is the default span-ring capacity.
const DefaultTraceCap = 512

// NewTracer returns a tracer keeping the last capacity spans, sampling one
// operation in sampleEvery (rounded up to a power of two; <=1 samples
// every operation). Zero or negative arguments select the defaults.
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	p := 1
	for p < sampleEvery {
		p <<= 1
	}
	return &Tracer{mask: uint64(p - 1), ring: make([]Span, capacity)}
}

// SampleEvery returns the effective sampling stride.
func (t *Tracer) SampleEvery() int { return int(t.mask) + 1 }

// Sample makes the per-operation sampling decision; callers trace an
// operation only when it returns true. One atomic add, no branches taken
// on the common path.
func (t *Tracer) Sample() bool {
	return t.n.Add(1)&t.mask == 0
}

// Record stores one completed span, overwriting the oldest once the ring
// is full.
func (t *Tracer) Record(s Span) {
	t.recorded.Add(1)
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recorded returns the total spans recorded since construction (including
// ones the ring has since overwritten).
func (t *Tracer) Recorded() uint64 { return t.recorded.Load() }

// Spans returns the ring's contents, newest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// SpansFor returns the retained spans carrying the given trace ID, newest
// first — every layer's view of one operation (the /debug/traces?id=
// waterfall input).
func (t *Tracer) SpansFor(id uint64) []Span {
	all := t.Spans()
	out := all[:0]
	for _, s := range all {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}
