package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Severity grades a health rule's verdict. The paper's accelerator knows
// when a structural unit saturates (Fig 6/7); the health engine gives the
// software SOUs the same self-awareness: rules over the collector's
// windows turn raw telemetry into ok / degraded / critical.
type Severity int

const (
	// SevOK: no rule firing.
	SevOK Severity = iota
	// SevDegraded: the pipeline still makes progress but is saturated or
	// shedding latency (sustained high occupancy, elevated slow-op rate).
	SevDegraded
	// SevCritical: some part of the pipeline stopped making progress.
	SevCritical
)

// String returns the JSON-facing severity name.
func (s Severity) String() string {
	switch s {
	case SevDegraded:
		return "degraded"
	case SevCritical:
		return "critical"
	}
	return "ok"
}

// Rule is one declarative health condition. Each collector tick the
// engine calls Check once per retained window (newest first, up to
// Windows of them) with that window and its predecessor; an instance —
// identified by its label body, e.g. `shard="0",worker="1"` — fires only
// when Check reports it in Windows consecutive windows, so one noisy
// sample never flips health.
type Rule struct {
	Name     string
	Severity Severity
	// Windows is how many consecutive windows the condition must hold
	// before the rule fires (minimum 1).
	Windows int
	// Check inspects one window (cur) with its predecessor (prev, nil for
	// the oldest retained window) and returns the instances for which the
	// condition holds, mapped to a human-readable detail. Nil/empty means
	// nothing held.
	Check func(cur, prev *Window) map[string]string
}

// Firing is one rule instance currently firing.
type Firing struct {
	Rule          string `json:"rule"`
	Severity      string `json:"severity"`
	Instance      string `json:"instance,omitempty"` // label body, "" = whole process
	Detail        string `json:"detail,omitempty"`
	Windows       int    `json:"windows"` // consecutive windows held so far
	SinceUnixNano int64  `json:"since_unix_nano"`

	sev Severity // for sorting/worst-of; JSON carries the string form
}

// Status is the /healthz response body when a health engine is attached.
type Status struct {
	Status            string   `json:"status"` // ok | degraded | critical
	EvaluatedUnixNano int64    `json:"evaluated_unix_nano"`
	Firing            []Firing `json:"firing"`
}

// Health evaluates declarative rules against a Collector's windows. It
// self-registers on the collector's sample hook, so evaluation happens
// once per tick on the collector goroutine — never on an engine hot path
// and never lazily on a probe (an idle /healthz scrape sees the verdict
// of the last tick, not a fresh sample).
type Health struct {
	col   *Collector
	rules []Rule

	mu        sync.Mutex
	active    map[string]*Firing // rule|instance → firing state
	evaluated int64
	onFire    func(Status)
}

// NewHealth builds a health engine over col and registers it on the
// collector's per-tick hook. Rules evaluate in the given order.
func NewHealth(col *Collector, rules ...Rule) *Health {
	h := &Health{col: col, rules: rules, active: make(map[string]*Firing)}
	col.SetOnSample(h.Evaluate)
	return h
}

// SetOnFire registers fn to run (on the collector goroutine) whenever a
// rule instance transitions from quiet to firing — the flight recorder's
// trigger. Re-evaluations of an already-firing instance do not re-fire.
func (h *Health) SetOnFire(fn func(Status)) {
	h.mu.Lock()
	h.onFire = fn
	h.mu.Unlock()
}

// Evaluate runs every rule against the collector's current windows and
// updates the firing set. Called automatically per collector tick;
// exported so deterministic tests can drive it after manual samples.
func (h *Health) Evaluate() {
	ws := h.col.Windows() // newest first
	var nowNano int64
	if len(ws) > 0 {
		nowNano = ws[0].EndUnixNano
	}
	type cand struct {
		key string
		f   Firing
	}
	var cands []cand
	for _, r := range h.rules {
		need := r.Windows
		if need <= 0 {
			need = 1
		}
		if len(ws) < need || r.Check == nil {
			continue
		}
		// Oldest-to-newest so the intersection keeps the newest detail.
		var held map[string]string
		for i := need - 1; i >= 0; i-- {
			var prev *Window
			if i+1 < len(ws) {
				prev = &ws[i+1]
			}
			got := r.Check(&ws[i], prev)
			if i == need-1 {
				held = got
			} else {
				held = intersectInstances(held, got)
			}
			if len(held) == 0 {
				held = nil
				break
			}
		}
		for inst, detail := range held {
			cands = append(cands, cand{
				key: r.Name + "|" + inst,
				f: Firing{
					Rule: r.Name, Severity: r.Severity.String(), sev: r.Severity,
					Instance: inst, Detail: detail,
					Windows: need, SinceUnixNano: ws[need-1].StartUnixNano,
				},
			})
		}
	}

	h.mu.Lock()
	prev := h.active
	next := make(map[string]*Firing, len(cands))
	newFiring := false
	for _, c := range cands {
		f := c.f
		if old, ok := prev[c.key]; ok {
			// Already firing: keep the original onset, extend the streak.
			f.SinceUnixNano = old.SinceUnixNano
			if old.Windows >= f.Windows {
				f.Windows = old.Windows + 1
			}
		} else {
			newFiring = true
		}
		next[c.key] = &f
	}
	h.active = next
	h.evaluated = nowNano
	fn := h.onFire
	h.mu.Unlock()
	if newFiring && fn != nil {
		fn(h.Status())
	}
}

// Status returns the current verdict: the worst firing severity and every
// firing instance, most severe first.
func (h *Health) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{Status: SevOK.String(), EvaluatedUnixNano: h.evaluated, Firing: []Firing{}}
	worst := SevOK
	for _, f := range h.active {
		st.Firing = append(st.Firing, *f)
		if f.sev > worst {
			worst = f.sev
		}
	}
	sort.Slice(st.Firing, func(i, j int) bool {
		if st.Firing[i].sev != st.Firing[j].sev {
			return st.Firing[i].sev > st.Firing[j].sev
		}
		if st.Firing[i].Rule != st.Firing[j].Rule {
			return st.Firing[i].Rule < st.Firing[j].Rule
		}
		return st.Firing[i].Instance < st.Firing[j].Instance
	})
	st.Status = worst.String()
	return st
}

func intersectInstances(base, got map[string]string) map[string]string {
	if len(base) == 0 || len(got) == 0 {
		return nil
	}
	out := make(map[string]string)
	for k, v := range got {
		if _, ok := base[k]; ok {
			out[k] = v
		}
	}
	return out
}

// splitSeries splits a Snapshot series name — `name` or `name{labels}` —
// into the metric name and the label body.
func splitSeries(series string) (name, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, ""
	}
	return series[:i], strings.TrimSuffix(series[i+1:], "}")
}

// dropLabel removes one `name="value"` pair from a pre-rendered label
// body. Values are assumed comma-free (the repo's labels are small
// integers: shard/worker indices).
func dropLabel(labels, name string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, name+`="`) {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// seriesName renders the Snapshot key for name with a label body.
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// gaugeAt reads one gauge series from a window.
func gaugeAt(w *Window, name, labels string) (float64, bool) {
	v, ok := w.Gauges[seriesName(name, labels)]
	return v, ok
}

// Default thresholds for DefaultHealthRules.
const (
	// DefaultHealthWindows is how many consecutive collector windows a
	// condition must hold before a default rule fires.
	DefaultHealthWindows = 3
	// DefaultSaturationFraction is the in-flight occupancy (relative to
	// the engine's MaxInflight bound) the saturation rule fires at.
	DefaultSaturationFraction = 0.9
	// DefaultSlowOpRate is the journaled slow-ops-per-second rate the
	// degradation rule fires at.
	DefaultSlowOpRate = 25.0
)

// DefaultHealthRules is the rule set both binaries run: worker stalls are
// critical, sustained saturation and elevated slow-op rates are degraded.
func DefaultHealthRules() []Rule {
	return []Rule{
		WorkerStallRule(DefaultHealthWindows),
		SaturationRule(DefaultSaturationFraction, DefaultHealthWindows),
		JournalRateRule(DefaultSlowOpRate, DefaultHealthWindows),
	}
}

// WorkerStallRule fires critical when a pctt worker's progress heartbeat
// (dcart_pctt_worker_heartbeat, bumped once per trigger batch) stopped
// advancing across consecutive windows while its engine still had work —
// the worker's own ring holds queued buckets or the engine (scoped by any
// shard label) reports ops in flight. An idle engine never fires: both
// occupancy gauges sit at zero.
func WorkerStallRule(windows int) Rule {
	return Rule{
		Name:     "worker-stalled",
		Severity: SevCritical,
		Windows:  windows,
		Check: func(cur, prev *Window) map[string]string {
			if prev == nil {
				return nil
			}
			var out map[string]string
			for series, hb := range cur.Gauges {
				name, labels := splitSeries(series)
				if name != "dcart_pctt_worker_heartbeat" {
					continue
				}
				ph, ok := prev.Gauges[series]
				if !ok || hb != ph {
					continue
				}
				scope := dropLabel(labels, "worker")
				infl, _ := gaugeAt(cur, "dcart_pctt_inflight_ops", scope)
				ring, _ := gaugeAt(cur, "dcart_pctt_ring_depth", labels)
				if infl <= 0 && ring <= 0 {
					continue
				}
				if out == nil {
					out = make(map[string]string)
				}
				out[labels] = fmt.Sprintf(
					"heartbeat stuck at %.0f batches; ring depth %.0f, %.0f engine ops in flight",
					hb, ring, infl)
			}
			return out
		},
	}
}

// SaturationRule fires degraded when an engine's in-flight occupancy
// (dcart_pctt_inflight_ops against its dcart_pctt_max_inflight bound,
// per shard via the existing shard labels) sustains at or above frac —
// backpressure is forming and latency is about to follow Fig 7's
// saturation knee.
func SaturationRule(frac float64, windows int) Rule {
	return Rule{
		Name:     "engine-saturated",
		Severity: SevDegraded,
		Windows:  windows,
		Check: func(cur, _ *Window) map[string]string {
			var out map[string]string
			for series, v := range cur.Gauges {
				name, labels := splitSeries(series)
				if name != "dcart_pctt_inflight_ops" {
					continue
				}
				max, ok := gaugeAt(cur, "dcart_pctt_max_inflight", labels)
				if !ok || max <= 0 || v < frac*max {
					continue
				}
				if out == nil {
					out = make(map[string]string)
				}
				out[labels] = fmt.Sprintf("in-flight %.0f of %.0f (%.0f%% of MaxInflight)",
					v, max, 100*v/max)
			}
			return out
		},
	}
}

// JournalRateRule fires degraded when the slow-op journal records at or
// above perSec entries per second (from the cumulative
// dcart_journal_recorded_total gauge registered by RegisterJournal) —
// the tail is fattening even if no single component looks stuck.
func JournalRateRule(perSec float64, windows int) Rule {
	return Rule{
		Name:     "slow-op-rate",
		Severity: SevDegraded,
		Windows:  windows,
		Check: func(cur, prev *Window) map[string]string {
			if prev == nil {
				return nil
			}
			c, ok := gaugeAt(cur, "dcart_journal_recorded_total", "")
			if !ok {
				return nil
			}
			p, _ := gaugeAt(prev, "dcart_journal_recorded_total", "")
			secs := cur.Seconds()
			if secs <= 0 {
				return nil
			}
			rate := (c - p) / secs
			if rate < perSec {
				return nil
			}
			return map[string]string{
				"": fmt.Sprintf("%.1f slow ops/s journaled (threshold %.1f/s)", rate, perSec),
			}
		},
	}
}

// RegisterJournal exposes the slow-op journal's cumulative totals as
// gauges (group "journal") so the collector windows them and
// JournalRateRule can see the journaling rate.
func RegisterJournal(r *Registry, j *Journal) {
	r.RegisterGauge("journal", "dcart_journal_recorded_total", "",
		"operations captured by the slow-op journal since start",
		func() float64 { return float64(j.Recorded()) })
	r.RegisterGauge("journal", "dcart_journal_offered_total", "",
		"operations offered to the slow-op journal since start",
		func() float64 { return float64(j.Offered()) })
}
