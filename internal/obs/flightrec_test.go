package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// flightFixture builds a recorder over a live set of sources with one
// sampled window and one journaled event.
func flightFixture(t *testing.T) (*FlightRecorder, string) {
	t.Helper()
	reg := NewRegistry()
	set := metrics.NewSet()
	reg.RegisterCounters("t", "dcart", "counters", set)
	reg.RegisterGauge("t", "dcart_pctt_worker_heartbeat", `worker="0"`,
		"heartbeat", func() float64 { return 3 })

	col := stalledCollector(t, reg, 8)
	col.baseline(0)
	set.Add(metrics.CtrOpsWrite, 7)
	col.sample(1_000_000_000)

	tr := NewTracer(8, 1)
	tr.Record(Span{TraceID: 1, Op: "put"})
	j := NewJournal(time.Nanosecond, 8, nil)
	j.Observe(Span{TraceID: 1, Op: "put", SubmitUnixNano: 1, DoneUnixNano: 2_000_000})

	h := NewHealth(col, SaturationRule(0.9, 1))
	dir := t.TempDir()
	f := NewFlightRecorder(dir, Diagnostics{
		Registry: reg, Tracer: tr, Collector: col, Journal: j, Health: h,
	}, h)
	f.SetConfig(map[string]string{"batch-workers": "2"})
	return f, dir
}

func TestFlightRecorderBundle(t *testing.T) {
	f, dir := flightFixture(t)
	bundle, err := f.Trigger("unit test!")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	name := filepath.Base(bundle)
	if !strings.HasPrefix(name, flightPrefix) || !strings.HasSuffix(name, "-unit_test_") {
		t.Fatalf("bundle name %q: want flightrec- prefix and sanitized reason", name)
	}

	var man flightManifest
	data, err := os.ReadFile(filepath.Join(bundle, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if man.Reason != "unit test!" || man.TimeUnixNano == 0 {
		t.Fatalf("manifest = %+v", man)
	}
	for _, want := range []string{
		"windows.json", "events.ndjson", "traces.json", "statsz.json",
		"health.json", "runtime.json", "config.json", "goroutines.txt",
	} {
		found := false
		for _, got := range man.Files {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("manifest missing %s: %v", want, man.Files)
		}
		if _, err := os.Stat(filepath.Join(bundle, want)); err != nil {
			t.Fatalf("listed file absent: %v", err)
		}
	}

	// The windows dump carries the heartbeat series the stall post-mortem
	// needs, and the goroutine profile is a full stack dump.
	wdata, _ := os.ReadFile(filepath.Join(bundle, "windows.json"))
	if !strings.Contains(string(wdata), "dcart_pctt_worker_heartbeat") {
		t.Fatalf("windows.json missing heartbeat series:\n%s", wdata)
	}
	gdata, _ := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	if !strings.Contains(string(gdata), "goroutine") {
		t.Fatalf("goroutines.txt not a profile:\n%.200s", gdata)
	}
	cdata, _ := os.ReadFile(filepath.Join(bundle, "config.json"))
	if !strings.Contains(string(cdata), "batch-workers") {
		t.Fatalf("config.json = %s", cdata)
	}

	// No stray temp directory survives the rename.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("leftover temp entry %s", e.Name())
		}
	}
}

func TestFlightRecorderRateLimitAndRetention(t *testing.T) {
	f, dir := flightFixture(t)
	if _, err := f.Trigger("first"); err != nil {
		t.Fatalf("first: %v", err)
	}
	// Default 30s minimum interval: an immediate re-trigger is suppressed.
	if _, err := f.Trigger("second"); !errors.Is(err, ErrFlightRateLimited) {
		t.Fatalf("second: %v, want ErrFlightRateLimited", err)
	}
	st := f.status()
	if st.Dumps != 1 || st.Suppressed != 1 || len(st.Bundles) != 1 {
		t.Fatalf("status = %+v", st)
	}

	// With the limit off and retention 2, older bundles are pruned.
	f.SetLimits(time.Nanosecond, 2)
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) // distinct timestamped names
		if _, err := f.Trigger("more"); err != nil {
			t.Fatalf("trigger %d: %v", i, err)
		}
	}
	names := f.bundles()
	if len(names) != 2 {
		t.Fatalf("retained %d bundles, want 2: %v", len(names), names)
	}
	// The survivors are the newest (names sort chronologically).
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Fatalf("dir holds %d entries, want 2", len(ents))
	}
	if !strings.HasSuffix(names[0], "-more") || !strings.HasSuffix(names[1], "-more") {
		t.Fatalf("pruned the wrong bundles: %v", names)
	}
}

func TestFlightRecorderTriggerOnFire(t *testing.T) {
	reg := NewRegistry()
	inflight := 100.0
	reg.RegisterGauge("t", "dcart_pctt_inflight_ops", "", "x",
		func() float64 { return inflight })
	reg.RegisterGauge("t", "dcart_pctt_max_inflight", "", "x",
		func() float64 { return 100 })
	col := stalledCollector(t, reg, 8)
	col.baseline(0)
	h := NewHealth(col, SaturationRule(0.9, 1))
	f := NewFlightRecorder(t.TempDir(), Diagnostics{Registry: reg, Collector: col, Health: h}, h)

	logged := make(chan string, 1)
	f.TriggerOnFire(h, func(format string, args ...any) {
		select {
		case logged <- format:
		default:
		}
	})
	col.sample(1_000_000_000)
	h.Evaluate()

	select {
	case <-logged:
	case <-time.After(5 * time.Second):
		t.Fatal("health firing produced no flight-recorder dump")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(f.bundles()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no bundle written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	names := f.bundles()
	if !strings.HasSuffix(names[0], "-rule-engine-saturated") {
		t.Fatalf("bundle name %q, want rule-attributed suffix", names[0])
	}
}

func TestSanitizeReason(t *testing.T) {
	if got := sanitizeReason(""); got != "manual" {
		t.Fatalf("empty reason = %q", got)
	}
	if got := sanitizeReason("rule-worker-stalled"); got != "rule-worker-stalled" {
		t.Fatalf("clean reason mangled: %q", got)
	}
	if got := sanitizeReason("../../etc <evil>"); strings.ContainsAny(got, "/.<> ") {
		t.Fatalf("unsafe characters survive: %q", got)
	}
	long := strings.Repeat("a", 100)
	if got := sanitizeReason(long); len(got) > 48 {
		t.Fatalf("len = %d, want <= 48", len(got))
	}
}
