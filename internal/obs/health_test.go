package obs

import (
	"strings"
	"testing"
)

// healthGauges is a mutable gauge bank registered behind a registry, so
// tests drive rule inputs deterministically through manual samples.
type healthGauges struct {
	vals map[string]float64
}

func newHealthGauges(reg *Registry, series map[string]float64) *healthGauges {
	g := &healthGauges{vals: series}
	for s := range series {
		s := s
		name, labels := splitSeries(s)
		reg.RegisterGauge("test", name, labels, "test gauge",
			func() float64 { return g.vals[s] })
	}
	return g
}

func TestWorkerStallRule(t *testing.T) {
	reg := NewRegistry()
	g := newHealthGauges(reg, map[string]float64{
		`dcart_pctt_worker_heartbeat{worker="0"}`: 5,
		`dcart_pctt_worker_heartbeat{worker="1"}`: 9,
		`dcart_pctt_ring_depth{worker="0"}`:       0,
		`dcart_pctt_ring_depth{worker="1"}`:       0,
		"dcart_pctt_inflight_ops":                 40,
		"dcart_pctt_max_inflight":                 16384,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, WorkerStallRule(2))

	tick := func(sec int64) {
		c.sample(sec * 1_000_000_000)
		h.Evaluate()
	}

	// Worker 1 advances its heartbeat every window; worker 0 is frozen
	// with engine ops in flight. Windows=2 needs two consecutive holds,
	// and the oldest window has no predecessor — so the rule fires on the
	// third sample, not before.
	tick(1)
	tick(2)
	if st := h.Status(); st.Status != "ok" {
		t.Fatalf("premature firing after 2 windows: %+v", st)
	}
	g.vals[`dcart_pctt_worker_heartbeat{worker="1"}`] = 10
	tick(3)
	st := h.Status()
	if st.Status != "critical" || len(st.Firing) != 1 {
		t.Fatalf("status = %+v, want critical with 1 firing", st)
	}
	f := st.Firing[0]
	if f.Rule != "worker-stalled" || f.Instance != `worker="0"` {
		t.Fatalf("firing = %+v, want worker-stalled on worker 0", f)
	}
	if !strings.Contains(f.Detail, "heartbeat stuck") {
		t.Fatalf("detail = %q", f.Detail)
	}
	since := f.SinceUnixNano

	// Still stalled: the streak extends and the onset is preserved.
	g.vals[`dcart_pctt_worker_heartbeat{worker="1"}`] = 11
	tick(4)
	f = h.Status().Firing[0]
	if f.SinceUnixNano != since {
		t.Fatalf("since moved: %d -> %d", since, f.SinceUnixNano)
	}
	if f.Windows < 3 {
		t.Fatalf("streak = %d, want >= 3", f.Windows)
	}

	// Worker 0 makes progress: the firing clears.
	g.vals[`dcart_pctt_worker_heartbeat{worker="0"}`] = 6
	tick(5)
	if st := h.Status(); st.Status != "ok" || len(st.Firing) != 0 {
		t.Fatalf("status after recovery = %+v, want ok", st)
	}
}

func TestWorkerStallRuleIdleEngineNeverFires(t *testing.T) {
	reg := NewRegistry()
	newHealthGauges(reg, map[string]float64{
		`dcart_pctt_worker_heartbeat{worker="0"}`: 0,
		`dcart_pctt_ring_depth{worker="0"}`:       0,
		"dcart_pctt_inflight_ops":                 0,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, WorkerStallRule(1))
	for i := int64(1); i <= 4; i++ {
		c.sample(i * 1_000_000_000)
		h.Evaluate()
	}
	// Frozen heartbeat with zero occupancy is idleness, not a stall.
	if st := h.Status(); st.Status != "ok" {
		t.Fatalf("idle engine flagged: %+v", st)
	}
}

func TestWorkerStallRuleShardScoped(t *testing.T) {
	// Sharded layout: the stalled worker's engine (shard 0) has ops in
	// flight; shard 1's engine is idle with a frozen heartbeat — only the
	// shard-0 worker may fire, because occupancy is scoped per shard.
	reg := NewRegistry()
	newHealthGauges(reg, map[string]float64{
		`dcart_pctt_worker_heartbeat{shard="0",worker="0"}`: 3,
		`dcart_pctt_worker_heartbeat{shard="1",worker="0"}`: 7,
		`dcart_pctt_ring_depth{shard="0",worker="0"}`:       2,
		`dcart_pctt_ring_depth{shard="1",worker="0"}`:       0,
		`dcart_pctt_inflight_ops{shard="0"}`:                12,
		`dcart_pctt_inflight_ops{shard="1"}`:                0,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, WorkerStallRule(1))
	c.sample(1_000_000_000)
	c.sample(2_000_000_000)
	h.Evaluate()
	st := h.Status()
	if st.Status != "critical" || len(st.Firing) != 1 {
		t.Fatalf("status = %+v, want exactly the shard-0 worker", st)
	}
	if got := st.Firing[0].Instance; got != `shard="0",worker="0"` {
		t.Fatalf("instance = %q", got)
	}
}

func TestSaturationRule(t *testing.T) {
	reg := NewRegistry()
	g := newHealthGauges(reg, map[string]float64{
		"dcart_pctt_inflight_ops": 95,
		"dcart_pctt_max_inflight": 100,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, SaturationRule(0.9, 1))
	c.sample(1_000_000_000)
	h.Evaluate()
	st := h.Status()
	if st.Status != "degraded" || len(st.Firing) != 1 || st.Firing[0].Rule != "engine-saturated" {
		t.Fatalf("status = %+v, want degraded engine-saturated", st)
	}
	if !strings.Contains(st.Firing[0].Detail, "95 of 100") {
		t.Fatalf("detail = %q", st.Firing[0].Detail)
	}
	g.vals["dcart_pctt_inflight_ops"] = 50
	c.sample(2_000_000_000)
	h.Evaluate()
	if st := h.Status(); st.Status != "ok" {
		t.Fatalf("status after drain = %+v, want ok", st)
	}
}

func TestJournalRateRule(t *testing.T) {
	reg := NewRegistry()
	g := newHealthGauges(reg, map[string]float64{
		"dcart_journal_recorded_total": 0,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, JournalRateRule(25, 1))
	c.sample(1_000_000_000)
	h.Evaluate()
	if st := h.Status(); st.Status != "ok" {
		t.Fatalf("no journaling yet: %+v", st)
	}
	g.vals["dcart_journal_recorded_total"] = 100 // 100/s over a 1s window
	c.sample(2_000_000_000)
	h.Evaluate()
	st := h.Status()
	if st.Status != "degraded" || len(st.Firing) != 1 || st.Firing[0].Rule != "slow-op-rate" {
		t.Fatalf("status = %+v, want degraded slow-op-rate", st)
	}
	// Rate subsides below threshold: 10/s.
	g.vals["dcart_journal_recorded_total"] = 110
	c.sample(3_000_000_000)
	h.Evaluate()
	if st := h.Status(); st.Status != "ok" {
		t.Fatalf("status after subsiding = %+v, want ok", st)
	}
}

func TestHealthOnFireOnlyOnTransition(t *testing.T) {
	reg := NewRegistry()
	g := newHealthGauges(reg, map[string]float64{
		"dcart_pctt_inflight_ops": 100,
		"dcart_pctt_max_inflight": 100,
	})
	c := stalledCollector(t, reg, 8)
	c.baseline(0)
	h := NewHealth(c, SaturationRule(0.9, 1))
	fired := 0
	h.SetOnFire(func(st Status) { fired++ })

	for i := int64(1); i <= 3; i++ {
		c.sample(i * 1_000_000_000)
		h.Evaluate()
	}
	if fired != 1 {
		t.Fatalf("onFire ran %d times while continuously firing, want 1", fired)
	}
	// Clear, then re-fire: a fresh quiet->firing transition.
	g.vals["dcart_pctt_inflight_ops"] = 0
	c.sample(4_000_000_000)
	h.Evaluate()
	g.vals["dcart_pctt_inflight_ops"] = 100
	c.sample(5_000_000_000)
	h.Evaluate()
	if fired != 2 {
		t.Fatalf("onFire ran %d times after clear+refire, want 2", fired)
	}
}

func TestSeriesLabelHelpers(t *testing.T) {
	name, labels := splitSeries(`dcart_x{shard="2",worker="1"}`)
	if name != "dcart_x" || labels != `shard="2",worker="1"` {
		t.Fatalf("splitSeries = %q %q", name, labels)
	}
	if got := dropLabel(labels, "worker"); got != `shard="2"` {
		t.Fatalf("dropLabel = %q", got)
	}
	if got := dropLabel(`worker="1"`, "worker"); got != "" {
		t.Fatalf("dropLabel single = %q", got)
	}
	if got := seriesName("dcart_x", `shard="2"`); got != `dcart_x{shard="2"}` {
		t.Fatalf("seriesName = %q", got)
	}
	if got := seriesName("dcart_x", ""); got != "dcart_x" {
		t.Fatalf("seriesName bare = %q", got)
	}
}
