package obs

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTraceSampleValidation(t *testing.T) {
	for _, bad := range []string{"0", "-8", "3", "1000", "abc"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		RegisterFlags(fs)
		err := fs.Parse([]string{"-trace-sample", bad})
		if err == nil {
			t.Fatalf("-trace-sample %s accepted, want parse error", bad)
		}
		if bad != "abc" && !strings.Contains(err.Error(), "power of two") {
			t.Fatalf("-trace-sample %s: error %q lacks a clear message", bad, err)
		}
	}
	for _, good := range []string{"1", "2", "64", "1024"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		f := RegisterFlags(fs)
		if err := fs.Parse([]string{"-trace-sample", good, "-diag-addr", "x"}); err != nil {
			t.Fatalf("-trace-sample %s rejected: %v", good, err)
		}
		tr := f.Tracer()
		want := good
		if got := tr.SampleEvery(); want != "" && itoa(got) != want {
			t.Fatalf("-trace-sample %s: tracer stride %d", good, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTraceSampleDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if got := f.Tracer().SampleEvery(); got != DefaultSampleEvery {
		t.Fatalf("default stride = %d, want %d", got, DefaultSampleEvery)
	}
}

func TestFlagsCollectorAndJournal(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-obs-window", "0", "-slow-op", "0"}); err != nil {
		t.Fatal(err)
	}
	if f.Collector(NewRegistry()) != nil {
		t.Fatal("-obs-window 0 built a collector")
	}
	if f.Journal() != nil {
		t.Fatal("-slow-op 0 built a journal")
	}

	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	f2 := RegisterFlags(fs2)
	if err := fs2.Parse([]string{"-obs-window", "10ms", "-slow-op", "5ms"}); err != nil {
		t.Fatal(err)
	}
	c := f2.Collector(NewRegistry())
	if c == nil || c.Tick() != 10*time.Millisecond {
		t.Fatalf("collector = %+v", c)
	}
	c.Stop()
	j := f2.Journal()
	if j == nil || j.Threshold() != 5*time.Millisecond {
		t.Fatalf("journal = %+v", j)
	}
}
