package obs

import (
	"sync"
	"testing"
)

func TestTracerSamplingStride(t *testing.T) {
	tr := NewTracer(8, 100) // rounds up to 128
	if got := tr.SampleEvery(); got != 128 {
		t.Fatalf("SampleEvery = %d, want 128", got)
	}
	hits := 0
	for i := 0; i < 128*10; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of %d, want exactly 10", hits, 128*10)
	}

	every := NewTracer(4, 1)
	for i := 0; i < 5; i++ {
		if !every.Sample() {
			t.Fatal("sampleEvery=1 must sample every op")
		}
	}

	def := NewTracer(0, 0)
	if def.SampleEvery() != DefaultSampleEvery || len(def.ring) != DefaultTraceCap {
		t.Fatalf("defaults: every=%d cap=%d", def.SampleEvery(), len(def.ring))
	}
}

func TestTracerRingWrapNewestFirst(t *testing.T) {
	tr := NewTracer(4, 1)
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("fresh tracer has %d spans", len(got))
	}
	for i := uint64(1); i <= 6; i++ {
		tr.Record(Span{TraceID: i})
	}
	if tr.Recorded() != 6 {
		t.Fatalf("Recorded = %d", tr.Recorded())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	// Newest first: 6, 5, 4, 3 (1 and 2 overwritten).
	for i, want := range []uint64{6, 5, 4, 3} {
		if spans[i].TraceID != want {
			t.Fatalf("spans[%d].TraceID = %d, want %d (all: %v)", i, spans[i].TraceID, want, spans)
		}
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if tr.Sample() {
					tr.Record(Span{TraceID: uint64(g)<<32 | uint64(i)})
				}
				if i%100 == 0 {
					_ = tr.Spans()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Recorded() != 4000 {
		t.Fatalf("Recorded = %d, want 4000", tr.Recorded())
	}
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("ring holds %d, want 64", got)
	}
}
