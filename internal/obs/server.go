package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Diagnostics bundles the observability sources a Server exposes. Registry
// is required; the rest are optional — the corresponding endpoints report
// themselves disabled when nil.
type Diagnostics struct {
	Registry  *Registry
	Tracer    *Tracer
	Collector *Collector
	Journal   *Journal
	// Health, when non-nil, upgrades /healthz from a static liveness "ok"
	// to the health engine's ok|degraded|critical JSON verdict.
	Health *Health
	// Flight, when non-nil, exposes /debug/flightrec (status, and
	// ?trigger=1 to dump a bundle on demand).
	Flight *FlightRecorder
}

// Server is the diagnostics HTTP endpoint both binaries expose behind
// -diag-addr:
//
//	/metrics           Prometheus text exposition of the registry
//	/statsz            the same snapshot as JSON (and as the STATS wire command)
//	/debug/traces      the sampled op-lifecycle span ring, newest first
//	                   (?id=<trace id> renders a per-stage text waterfall)
//	/debug/timeseries  the windowed collector's per-window deltas/rates
//	                   (?view=top renders a TOP-style text view)
//	/debug/events      the slow-op journal, newest first, as JSON lines
//	/debug/flightrec   flight-recorder status (?trigger=1 dumps a bundle)
//	/debug/pprof/*     the standard Go profiler endpoints
//	/healthz           health verdict: ok|degraded|critical JSON when a
//	                   health engine is attached, plain "ok" otherwise
//
// It is opt-in and read-only: nothing here mutates engine state, and every
// handler reads through registered callbacks so a scrape never blocks the
// pipeline's hot paths.
type Server struct {
	d   Diagnostics
	ln  net.Listener
	srv *http.Server
}

// Serve starts a diagnostics server on addr (e.g. "127.0.0.1:7071";
// ":0" picks a free port — read it back from Addr). tracer may be nil, in
// which case /debug/traces reports tracing disabled. For the windowed
// collector and slow-op journal endpoints, use ServeAll.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return ServeAll(addr, Diagnostics{Registry: reg, Tracer: tracer})
}

// ServeAll starts a diagnostics server exposing every source in d.
func ServeAll(addr string, d Diagnostics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{d: d, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/timeseries", s.handleTimeseries)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/flightrec", s.handleFlightrec)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown/Close surface the error path
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// handleHealthz serves the health verdict. Without a health engine it
// stays the legacy static liveness probe. With one, the body is the
// engine's Status JSON; the HTTP code is 200 for ok/degraded (the process
// is alive and still serving) and 503 for critical, so a plain HTTP
// prober distinguishes "limping" from "stuck" without parsing JSON.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.d.Health == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
		return
	}
	st := s.d.Health.Status()
	w.Header().Set("Content-Type", "application/json")
	if st.Status == SevCritical.String() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // best-effort diagnostics write
}

// handleFlightrec serves flight-recorder status; ?trigger=1 dumps a
// bundle on demand (429 when the rate limit suppressed it).
func (s *Server) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.d.Flight == nil {
		json.NewEncoder(w).Encode(flightStatus{Bundles: []string{}}) //nolint:errcheck
		return
	}
	if r.URL.Query().Get("trigger") == "1" {
		dir, err := s.d.Flight.Trigger("http")
		switch {
		case errors.Is(err, ErrFlightRateLimited):
			writeJSONError(w, http.StatusTooManyRequests, "rate limited: a recent bundle already captured this state")
			return
		case err != nil:
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"bundle": dir}) //nolint:errcheck
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.d.Flight.status()) //nolint:errcheck // best-effort diagnostics write
}

// writeJSONError emits a {"error": ...} body with the given status, so
// machine consumers of the debug endpoints never have to sniff text
// error bodies.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.d.Registry.WritePrometheus(w)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.d.Registry.Snapshot()) //nolint:errcheck // best-effort diagnostics write
}

// tracesReport is the /debug/traces response body.
type tracesReport struct {
	Enabled     bool   `json:"enabled"`
	SampleEvery int    `json:"sample_every,omitempty"`
	Recorded    uint64 `json:"recorded,omitempty"`
	Spans       []Span `json:"spans"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		s.handleWaterfall(w, id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rep := tracesReport{Spans: []Span{}}
	if s.d.Tracer != nil {
		rep.Enabled = true
		rep.SampleEvery = s.d.Tracer.SampleEvery()
		rep.Recorded = s.d.Tracer.Recorded()
		rep.Spans = s.d.Tracer.Spans()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep) //nolint:errcheck // best-effort diagnostics write
}

// handleWaterfall serves /debug/traces?id=<trace id> — a text waterfall of
// every retained span carrying that ID. The ID accepts decimal or 0x-hex
// (the JSON view prints trace IDs in decimal; waterfall headers in hex).
// Unknown or unretained IDs get a 404 with a JSON error body — an empty
// 200 would be indistinguishable from a dropped trace.
func (s *Server) handleWaterfall(w http.ResponseWriter, id string) {
	if s.d.Tracer == nil {
		writeJSONError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	n, err := strconv.ParseUint(id, 0, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	spans := s.d.Tracer.SpansFor(n)
	if len(spans) == 0 {
		writeJSONError(w, http.StatusNotFound,
			"no retained spans for trace id "+id+" (sampled out, or already evicted from the span ring)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	WriteWaterfall(w, spans)
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if s.d.Collector == nil {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&Timeseries{Windows: []Window{}}) //nolint:errcheck
		return
	}
	if r.URL.Query().Get("view") == "top" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.d.Collector.WriteTop(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.d.Collector.Report()) //nolint:errcheck // best-effort diagnostics write
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.d.Journal == nil {
		json.NewEncoder(w).Encode(journalMeta{}) //nolint:errcheck
		return
	}
	s.d.Journal.WriteJSONLines(w) //nolint:errcheck // best-effort diagnostics write
}
