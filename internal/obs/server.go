package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the diagnostics HTTP endpoint both binaries expose behind
// -diag-addr:
//
//	/metrics       Prometheus text exposition of the registry
//	/statsz        the same snapshot as JSON (and as the STATS wire command)
//	/debug/traces  the sampled op-lifecycle span ring, newest first
//	/debug/pprof/* the standard Go profiler endpoints
//	/healthz       liveness probe ("ok")
//
// It is opt-in and read-only: nothing here mutates engine state, and every
// handler reads through registered callbacks so a scrape never blocks the
// pipeline's hot paths.
type Server struct {
	reg    *Registry
	tracer *Tracer
	ln     net.Listener
	srv    *http.Server
}

// Serve starts a diagnostics server on addr (e.g. "127.0.0.1:7071";
// ":0" picks a free port — read it back from Addr). tracer may be nil, in
// which case /debug/traces reports tracing disabled.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, tracer: tracer, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown/Close surface the error path
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.reg.Snapshot()) //nolint:errcheck // best-effort diagnostics write
}

// tracesReport is the /debug/traces response body.
type tracesReport struct {
	Enabled     bool   `json:"enabled"`
	SampleEvery int    `json:"sample_every,omitempty"`
	Recorded    uint64 `json:"recorded,omitempty"`
	Spans       []Span `json:"spans"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	rep := tracesReport{Spans: []Span{}}
	if s.tracer != nil {
		rep.Enabled = true
		rep.SampleEvery = s.tracer.SampleEvery()
		rep.Recorded = s.tracer.Recorded()
		rep.Spans = s.tracer.Spans()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep) //nolint:errcheck // best-effort diagnostics write
}
