package accel

import "fmt"

// ResourceEstimate models the FPGA resource footprint of a DCART
// configuration, in the style of a Vivado utilization report. The paper
// implements DCART on the XCU280 (1.3M LUTs, 2.6M registers, ~9 MB of
// on-chip block memory, 8 GB HBM); the per-unit constants below are
// engineering estimates for a pipelined traversal datapath and match the
// scale of published HBM-FPGA index accelerators.
type ResourceEstimate struct {
	LUTs      int
	Registers int
	// OnChipBytes is BRAM+URAM demand: the four Table I buffers plus
	// per-unit FIFOs.
	OnChipBytes int
	// HBMBytes is the off-chip working-set budget (tree + tables).
	HBMBytes int64
}

// U280 device capacities (§IV-A).
const (
	U280LUTs        = 1_300_000
	U280Registers   = 2_600_000
	U280OnChipBytes = 9 << 20 // "9 M BRAM resources"
	U280HBMBytes    = 8 << 30
)

// Per-unit resource constants.
const (
	lutsPerSOU = 14_000 // 4-stage pipeline: comparators, hash, control
	regsPerSOU = 22_000
	lutsPCU    = 9_000 // scan + prefix extract + bucket router
	regsPCU    = 15_000
	lutsDisp   = 2_500
	regsDisp   = 4_000
	lutsHBMIf  = 60_000 // HBM AXI infrastructure, shared
	regsHBMIf  = 90_000
	fifoBytes  = 8 << 10 // per-unit staging FIFOs
)

// Resources estimates the configuration's footprint.
func (c Config) Resources() ResourceEstimate {
	c = c.Defaults()
	return ResourceEstimate{
		LUTs:      lutsHBMIf + lutsPCU + lutsDisp + c.NumSOUs*lutsPerSOU,
		Registers: regsHBMIf + regsPCU + regsDisp + c.NumSOUs*regsPerSOU,
		OnChipBytes: c.ScanBufBytes + c.BucketBufBytes + c.ShortcutBufBytes +
			c.TreeBufBytes + (c.NumSOUs+2)*fifoBytes,
		HBMBytes: int64(U280HBMBytes),
	}
}

// Utilization reports each resource as a fraction of the U280's capacity.
type Utilization struct {
	LUTs      float64
	Registers float64
	OnChip    float64
}

// Utilization computes the estimate relative to the U280.
func (r ResourceEstimate) Utilization() Utilization {
	return Utilization{
		LUTs:      float64(r.LUTs) / U280LUTs,
		Registers: float64(r.Registers) / U280Registers,
		OnChip:    float64(r.OnChipBytes) / U280OnChipBytes,
	}
}

// FitsU280 reports whether the configuration fits the paper's device.
func (r ResourceEstimate) FitsU280() bool {
	u := r.Utilization()
	return u.LUTs <= 1 && u.Registers <= 1 && u.OnChip <= 1
}

// String renders a utilization-report line set.
func (r ResourceEstimate) String() string {
	u := r.Utilization()
	return fmt.Sprintf(
		"LUT %d (%.1f%%), FF %d (%.1f%%), on-chip %d KB (%.1f%%)",
		r.LUTs, 100*u.LUTs, r.Registers, 100*u.Registers,
		r.OnChipBytes>>10, 100*u.OnChip)
}

// MaxSOUsOnU280 returns the largest SOU count whose estimate still fits
// the device with the given buffer configuration — the scaling headroom
// the sweep-sous experiment explores.
func MaxSOUsOnU280(base Config) int {
	for n := 1; ; n++ {
		c := base
		c.NumSOUs = n
		c.NumBuckets = n
		if !c.Resources().FitsU280() {
			return n - 1
		}
		if n > 4096 {
			return n
		}
	}
}
