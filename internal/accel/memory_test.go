package accel

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

func memWorkload() *workload.Workload {
	return workload.MustGenerate(workload.Spec{
		Name: workload.RS, NumKeys: 20000, NumOps: 60000,
		ReadRatio: 0.5, ZipfS: 1.01, Seed: 71, // near-uniform: maximal misses
	})
}

func TestBandwidthFloorBinds(t *testing.T) {
	// With an absurdly narrow off-chip interface, total cycles must be
	// pinned to the bandwidth floor rather than the pipeline time.
	w := memWorkload()
	narrow := &mem.DRAM{Name: "narrow", LatencyCycles: 25, BytesPerCycle: 0.5}
	e := New(Config{HBM: narrow, TreeBufBytes: 16 << 10})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	if got, floor := e.Cycles(), narrow.BandwidthFloorCycles(); got != floor {
		t.Fatalf("cycles %d should equal bandwidth floor %d", got, floor)
	}

	// With the real HBM the pipeline, not bandwidth, dominates.
	e2 := New(Config{TreeBufBytes: 16 << 10})
	e2.Load(w.Keys, nil)
	e2.Run(w.Ops)
	if e2.Cycles() == e2.Config().HBM.BandwidthFloorCycles() {
		t.Fatal("real HBM should not be bandwidth-bound at this scale")
	}
}

func TestMemoryParallelismReducesCycles(t *testing.T) {
	w := memWorkload()
	run := func(mlp int) int64 {
		e := New(Config{MemoryParallelism: mlp, TreeBufBytes: 16 << 10})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		return e.Cycles()
	}
	serial, overlapped := run(1), run(8)
	if overlapped >= serial {
		t.Fatalf("MLP=8 (%d cycles) should beat MLP=1 (%d)", overlapped, serial)
	}
	// The gain must come from miss latency, i.e. be substantial on a
	// miss-heavy configuration.
	if float64(overlapped) > 0.8*float64(serial) {
		t.Fatalf("MLP gain too small: %d vs %d", overlapped, serial)
	}
}

func TestOffchipBytesTracked(t *testing.T) {
	w := memWorkload()
	e := New(Config{TreeBufBytes: 16 << 10})
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)
	if res.OffchipBytes <= 0 {
		t.Fatal("no off-chip traffic recorded")
	}
	// A bigger Tree_buffer must reduce off-chip traffic.
	e2 := New(Config{TreeBufBytes: 8 << 20})
	e2.Load(w.Keys, nil)
	res2 := e2.Run(w.Ops)
	if res2.OffchipBytes >= res.OffchipBytes {
		t.Fatalf("bigger buffer did not reduce traffic: %d vs %d",
			res2.OffchipBytes, res.OffchipBytes)
	}
}
