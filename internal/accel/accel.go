package accel

import (
	"repro/internal/art"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// shortcutEntry is one Shortcut_Table record: the paper's
// <Key_ID, Address_Target_Node, Address_Parent_Node>.
type shortcutEntry struct {
	target art.NodeRef
	parent art.NodeRef
}

// BatchStat records the modeled cycle cost of one operation batch, used
// by the overlap computation (Fig 6) and the latency model (Fig 10).
type BatchStat struct {
	Ops       int
	PCUCycles int64
	SOUCycles int64 // max over the 16 SOUs (they run in parallel)
}

// Engine is the DCART accelerator simulator.
type Engine struct {
	cfg Config

	tree *art.Tree
	ms   *metrics.Set
	red  *metrics.RedundancyTracker

	scanBuf     *mem.Cache
	bucketBuf   *mem.Cache
	shortcutBuf *mem.Cache
	treeBuf     *mem.ObjectCache
	hbm         *mem.DRAM

	shortcuts map[string]shortcutEntry
	byAddr    map[uint64][]string

	// batch-scoped state
	bucketLen    []int64 // ops per bucket (node value source, §III-E)
	souCycles    []int64
	curSOU       int
	currentValue int64

	// prefixSkip is the number of leading bytes shared by every loaded
	// key; the PCU's Get_Prefix stage reads the prefix after them (a
	// host-configured register).
	prefixSkip int

	suppressAccess bool
	// jumpAccess marks shortcut-based GetAt/PutAt fetches: charged as
	// node accesses and cycles but not as partial-key matches (the
	// shortcut replaces the radix descent).
	jumpAccess bool
	measuring  bool

	batches []BatchStat
}

// New returns a DCART accelerator simulator with the given configuration.
func New(cfg Config) *Engine {
	cfg = cfg.Defaults()
	e := &Engine{
		cfg:       cfg,
		tree:      art.New(art.WithRegistry()),
		ms:        metrics.NewSet(),
		hbm:       cfg.HBM,
		shortcuts: make(map[string]shortcutEntry),
		byAddr:    make(map[uint64][]string),
		bucketLen: make([]int64, cfg.NumBuckets),
		souCycles: make([]int64, cfg.NumSOUs),
	}
	treePolicy := mem.Policy(mem.NewValueAware())
	if cfg.UseLRUTreeBuffer {
		treePolicy = mem.NewLRU()
	}
	lb := cfg.BufferLineBytes
	e.scanBuf = mem.NewCache("Scan_buffer", cfg.ScanBufBytes, lb, mem.NewLRU())
	e.bucketBuf = mem.NewCache("Bucket_buffer", cfg.BucketBufBytes, lb, mem.NewLRU())
	e.shortcutBuf = mem.NewCache("Shortcut_buffer", cfg.ShortcutBufBytes, lb, mem.NewLRU())
	e.treeBuf = mem.NewObjectCache("Tree_buffer", cfg.TreeBufBytes, treePolicy)

	e.newTrackers()
	e.tree.SetAccessHook(e.onAccess)
	e.tree.SetReplaceHook(e.onReplace)
	e.tree.SetPrefixHook(e.onPrefixChange)
	return e
}

func (e *Engine) newTrackers() {
	e.red = metrics.NewRedundancyTracker(e.cfg.NumSOUs)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "DCART" }

// Tree exposes the index for verification.
func (e *Engine) Tree() *art.Tree { return e.tree }

// Metrics returns the live counter set.
func (e *Engine) Metrics() *metrics.Set { return e.ms }

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// BufferStats returns the four on-chip buffers' cache statistics, in
// Table I order (Scan, Bucket, Shortcut, Tree).
func (e *Engine) BufferStats() [4]mem.CacheStats {
	return [4]mem.CacheStats{
		e.scanBuf.Stats(), e.bucketBuf.Stats(), e.shortcutBuf.Stats(), e.treeBuf.Stats(),
	}
}

// Batches returns per-batch cycle statistics for the latest Run calls.
func (e *Engine) Batches() []BatchStat { return e.batches }

// Cycles returns the total modeled cycles, including the PCU/SOU overlap
// and the HBM bandwidth floor.
func (e *Engine) Cycles() int64 {
	var total int64
	if e.cfg.DisableOverlap {
		for _, b := range e.batches {
			total += b.PCUCycles + b.SOUCycles
		}
	} else {
		// Fig 6: while the SOUs process batch i, the PCU combines batch
		// i+1; each stage of the software pipeline costs the max of the
		// two overlapped phases.
		for i, b := range e.batches {
			if i == 0 {
				total += b.PCUCycles
			} else if prev := e.batches[i-1]; prev.SOUCycles > b.PCUCycles {
				total += prev.SOUCycles
			} else {
				total += b.PCUCycles
			}
		}
		if n := len(e.batches); n > 0 {
			total += e.batches[n-1].SOUCycles
		}
	}
	if floor := e.hbm.BandwidthFloorCycles(); floor > total {
		total = floor
	}
	return total
}

// Seconds converts Cycles to modeled seconds at the configured clock.
func (e *Engine) Seconds() float64 {
	return float64(e.Cycles()) / e.cfg.ClockHz
}

// onAccess models a Traverse_Tree node fetch: one partial-key-match step
// plus a Tree_buffer access that either hits on-chip BRAM or goes to HBM.
func (e *Engine) onAccess(addr uint64, size int, kind art.NodeKind) {
	if !e.measuring || e.suppressAccess {
		return
	}
	if !e.jumpAccess {
		e.ms.Inc(metrics.CtrKeyMatches)
	}
	e.ms.Inc(metrics.CtrNodeAccesses)
	if e.red.Touch(addr) {
		e.ms.Inc(metrics.CtrRedundantNodes)
	}
	cyc := int64(cycMatch)
	if kind == art.Node48 {
		cyc = cycMatchN48
	}
	if e.treeBuf.Access(addr, size, e.currentValue) {
		cyc += cycBufHit
		e.ms.Inc(metrics.CtrOnchipHits)
	} else {
		// One burst fetch covers the whole node; the SOU pipeline keeps
		// MemoryParallelism independent groups in flight, overlapping
		// their miss latencies.
		cyc += int64(e.hbm.Access(size)) / int64(e.cfg.MemoryParallelism)
	}
	e.souCycles[e.curSOU] += cyc
}

// onReplace mirrors ctt: grows rewrite Shortcut_Table entries in place
// (the §III-C update rule); frees drop them.
func (e *Engine) onReplace(oldAddr, newAddr uint64) {
	if newAddr == 0 {
		e.invalidate(oldAddr)
		return
	}
	keys, ok := e.byAddr[oldAddr]
	if !ok {
		return
	}
	delete(e.byAddr, oldAddr)
	for _, k := range keys {
		sc, ok := e.shortcuts[k]
		if !ok || sc.target.Addr != oldAddr {
			continue
		}
		sc.target.Addr = newAddr
		e.shortcuts[k] = sc
		e.byAddr[newAddr] = append(e.byAddr[newAddr], k)
		if e.measuring {
			e.chargeShortcutWrite(k)
		}
	}
}

func (e *Engine) onPrefixChange(addr uint64) { e.invalidate(addr) }

func (e *Engine) invalidate(addr uint64) {
	keys, ok := e.byAddr[addr]
	if !ok {
		return
	}
	delete(e.byAddr, addr)
	for _, k := range keys {
		if sc, ok := e.shortcuts[k]; ok && sc.target.Addr == addr {
			delete(e.shortcuts, k)
			if e.measuring {
				e.ms.Inc(metrics.CtrShortcutMaintain)
			}
		}
	}
}

// shortcutSlotAddr maps a key to its Shortcut_Table slot address.
func shortcutSlotAddr(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return shortcutTableBase + (h%shortcutTableSlots)*shortcutTableStride
}

// chargeShortcutLookup models the Index_Shortcut stage.
func (e *Engine) chargeShortcutLookup(key []byte) {
	cyc := int64(0)
	_, misses := e.shortcutBuf.Access(shortcutSlotAddr(key), shortcutEntryBytes, 0)
	if misses > 0 {
		cyc += int64(e.hbm.Access(misses*e.cfg.BufferLineBytes)) / int64(e.cfg.MemoryParallelism)
	} else {
		cyc += cycBufHit
		e.ms.Inc(metrics.CtrOnchipHits)
	}
	e.souCycles[e.curSOU] += cyc
}

// chargeShortcutWrite models the Generate_Shortcut stage (posted write:
// bandwidth, no latency stall).
func (e *Engine) chargeShortcutWrite(key string) {
	e.ms.Inc(metrics.CtrShortcutMaintain)
	_, misses := e.shortcutBuf.Access(shortcutSlotAddr([]byte(key)), shortcutEntryBytes, 0)
	if misses > 0 {
		e.hbm.Access(misses * e.cfg.BufferLineBytes)
	}
	e.souCycles[e.curSOU] += cycShortcut
}

func (e *Engine) storeShortcut(key string, sc shortcutEntry) {
	if old, ok := e.shortcuts[key]; !ok || old.target.Addr != sc.target.Addr {
		e.byAddr[sc.target.Addr] = append(e.byAddr[sc.target.Addr], key)
	}
	e.shortcuts[key] = sc
	e.chargeShortcutWrite(key)
}

// Load implements engine.Engine (not measured). Loading derives the
// combining-prefix position: leading bytes common to the whole key set
// are skipped by Get_Prefix.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.measuring = false
	e.prefixSkip = commonPrefixLenAll(keys)
	e.tree.Load(keys, values)
}

// Reset implements engine.Engine: counters, buffers, and cycle history
// clear; the index and Shortcut_Table persist.
func (e *Engine) Reset() {
	e.ms.Reset()
	e.newTrackers()
	e.scanBuf.Reset()
	e.bucketBuf.Reset()
	e.shortcutBuf.Reset()
	e.treeBuf.Reset()
	e.hbm.Reset()
	e.batches = nil
}

// bucketOf maps a key to its bucket table: the PrefixBits-bit key prefix
// (taken after the key set's common leading bytes, which carry no
// information — e.g. the zero high bytes of dense integer keys), assigned
// to bucket labels round-robin so populous adjacent prefixes (ASCII
// letters, IPv4 hot ranges) spread across the tables.
func (e *Engine) bucketOf(key []byte) int {
	i := e.prefixSkip
	var b0, b1 byte
	if i < len(key) {
		b0 = key[i]
	}
	if i+1 < len(key) {
		b1 = key[i+1]
	}
	v := uint32(b0)<<8 | uint32(b1)
	prefix := v >> uint(16-e.cfg.PrefixBits)
	return int(prefix) % e.cfg.NumBuckets
}

// commonPrefixLenAll returns the length of the byte prefix shared by every
// key (capped so at least one varying byte remains).
func commonPrefixLenAll(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	cp := len(keys[0])
	for _, k := range keys[1:] {
		n := cp
		if len(k) < n {
			n = len(k)
		}
		i := 0
		for i < n && k[i] == keys[0][i] {
			i++
		}
		cp = i
		if cp == 0 {
			return 0
		}
	}
	if cp > 0 && cp >= len(keys[0]) {
		cp = len(keys[0]) - 1
	}
	return cp
}

// Run implements engine.Engine.
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.measuring = true
	defer func() { e.measuring = false }()

	res := &engine.Result{Name: "DCART", Ops: len(ops), Metrics: e.ms}
	for start := 0; start < len(ops); start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > len(ops) {
			end = len(ops)
		}
		e.batches = append(e.batches, e.runBatch(ops[start:end], start, res))
	}

	res.RedundantRatio = e.red.Ratio()
	res.OffchipBytes = e.hbm.Bytes()
	res.Cycles = e.Cycles()
	ts := e.treeBuf.Stats()
	res.CacheHitRatio = ts.HitRatio()
	// The FPGA fetches whole nodes, not speculative 64-byte lines; line
	// utilization is effectively the node utilization, reported as 1.
	res.LineUtilization = 1
	return res
}

type group struct {
	key []byte
	ops []int
}

// runBatch models one batch through PCU -> Dispatcher -> SOUs.
func (e *Engine) runBatch(batch []workload.Op, base int, res *engine.Result) BatchStat {
	stat := BatchStat{Ops: len(batch)}

	// --- PCU: Scan_Operation, Get_Prefix, Combine_Operation (Fig 5). -----
	pcu := int64(cycPCUStages)
	for i := range e.bucketLen {
		e.bucketLen[i] = 0
	}
	buckets := make([][]int, e.cfg.NumBuckets)
	bucketOffsets := make([]int64, e.cfg.NumBuckets)
	for i := range batch {
		pcu++ // II=1 pipeline advance
		// Scan_buffer streams the op records; sequential prefetch hides
		// latency, bandwidth is still paid.
		opAddr := opStreamBase + uint64(base+i)*opRecordBytes
		if _, m := e.scanBuf.Access(opAddr, opRecordBytes, 0); m > 0 {
			e.hbm.Access(m * e.cfg.BufferLineBytes)
		}
		b := e.bucketOf(batch[i].Key)
		buckets[b] = append(buckets[b], i)
		e.bucketLen[b]++
		e.ms.Inc(metrics.CtrCombineSteps)
		// Posted append to Bucket_Table_b through the Bucket_buffer.
		wAddr := bucketTablesBase + uint64(b)*bucketTableStride +
			uint64(bucketOffsets[b])*bucketEntryBytes
		bucketOffsets[b]++
		if _, m := e.bucketBuf.Access(wAddr, bucketEntryBytes, 0); m > 0 {
			e.hbm.Access(m * e.cfg.BufferLineBytes)
		}
	}
	stat.PCUCycles = pcu

	// --- Dispatcher + SOUs. ----------------------------------------------
	for i := range e.souCycles {
		e.souCycles[i] = 0
	}
	conflictTargets := make(map[uint64]map[int]bool)
	// The 16 SOUs run in parallel and share the Tree_buffer; interleave
	// their group streams round-robin so the buffer sees the hardware's
	// interleaved access pattern rather than one bucket's artificially
	// serialized locality.
	perBucket := make([][]group, e.cfg.NumBuckets)
	maxGroups := 0
	for b, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		perBucket[b] = e.groupByKey(batch, bucket)
		e.curSOU = b % e.cfg.NumSOUs
		e.souCycles[e.curSOU] += cycDispatch + cycSOUStages
		if len(perBucket[b]) > maxGroups {
			maxGroups = len(perBucket[b])
		}
	}
	for step := 0; step < maxGroups; step++ {
		for b := range perBucket {
			if step >= len(perBucket[b]) {
				continue
			}
			e.curSOU = b % e.cfg.NumSOUs
			e.currentValue = e.bucketLen[b]
			e.execGroup(batch, perBucket[b][step], base, e.curSOU, conflictTargets, res)
		}
	}
	for _, owners := range conflictTargets {
		if n := len(owners); n > 1 {
			e.ms.Add(metrics.CtrLockContention, int64(n-1))
		}
	}

	var souMax int64
	for _, c := range e.souCycles {
		if c > souMax {
			souMax = c
		}
	}
	stat.SOUCycles = souMax
	return stat
}

// groupByKey coalesces same-key operations within a bucket (stream order
// preserved within a group).
func (e *Engine) groupByKey(batch []workload.Op, bucket []int) []group {
	if e.cfg.DisableCombining {
		out := make([]group, 0, len(bucket))
		for _, i := range bucket {
			out = append(out, group{key: batch[i].Key, ops: []int{i}})
		}
		return out
	}
	idx := make(map[string]int, len(bucket))
	var out []group
	for _, i := range bucket {
		ks := string(batch[i].Key)
		if gi, ok := idx[ks]; ok {
			out[gi].ops = append(out[gi].ops, i)
			continue
		}
		idx[ks] = len(out)
		out = append(out, group{key: batch[i].Key, ops: []int{i}})
	}
	return out
}

// execGroup runs the four SOU stages for one coalesced group.
func (e *Engine) execGroup(batch []workload.Op, g group, base, sou int,
	conflictTargets map[uint64]map[int]bool, res *engine.Result) {

	ks := string(g.key)
	hasWrite := false
	for _, oi := range g.ops {
		if batch[oi].Kind != workload.Read {
			hasWrite = true
			break
		}
	}

	// Stage 1: Index_Shortcut.
	var ref shortcutEntry
	haveRef, fromShortcut := false, false
	if !e.cfg.DisableShortcuts {
		e.chargeShortcutLookup(g.key)
		if sc, ok := e.shortcuts[ks]; ok {
			ref, haveRef, fromShortcut = sc, true, true
			e.ms.Inc(metrics.CtrShortcutHit)
		} else {
			e.ms.Inc(metrics.CtrShortcutMiss)
		}
	}
	// Stage 2: Traverse_Tree (full descent only on shortcut miss).
	if !haveRef {
		e.red.NextOp()
		if target, parent, ok := e.tree.Locate(g.key); ok {
			ref = shortcutEntry{target: target, parent: parent}
			haveRef = true
		}
	}

	if hasWrite {
		e.ms.Inc(metrics.CtrLockAcquire) // single ownership acquisition
		if haveRef {
			owners := conflictTargets[ref.target.Addr]
			if owners == nil {
				owners = make(map[int]bool, 1)
				conflictTargets[ref.target.Addr] = owners
			}
			owners[sou] = true
		}
	}

	// Stage 3: Trigger_Operation.
	applied := false
	regenerated := false
	if haveRef {
		e.jumpAccess = fromShortcut
		applied = e.applyViaRef(batch, g, base, &ref, res)
		e.jumpAccess = false
	}
	if !applied && fromShortcut {
		// Stale entry: one fresh traversal re-locates the target, then
		// the group retries (re-applying an op is idempotent per key).
		delete(e.shortcuts, ks)
		e.ms.Inc(metrics.CtrShortcutMaintain)
		e.red.NextOp()
		if target, parent, ok := e.tree.Locate(g.key); ok {
			ref = shortcutEntry{target: target, parent: parent}
			applied = e.applyViaRef(batch, g, base, &ref, res)
			regenerated = applied
		}
	}
	if !applied {
		e.applyDirect(batch, g, base, res)
		if !e.cfg.DisableShortcuts {
			if target, parent, ok := e.tree.Locate(g.key); ok {
				e.storeShortcut(ks, shortcutEntry{target: target, parent: parent})
			}
		}
		return
	}
	// Stage 4: Generate_Shortcut.
	if !e.cfg.DisableShortcuts && (!fromShortcut || regenerated) {
		e.storeShortcut(ks, ref)
	}

	if n := len(g.ops) - 1; n > 0 {
		e.ms.Add(metrics.CtrCoalesced, int64(n))
	}
}

// applyViaRef triggers the group's ops on the located node. See
// ctt.applyViaRef for the semantics; here each op also charges its
// Trigger_Operation cycles.
func (e *Engine) applyViaRef(batch []workload.Op, g group, base int,
	ref *shortcutEntry, res *engine.Result) bool {

	for gi, oi := range g.ops {
		op := &batch[oi]
		e.red.NextOp()
		if gi > 0 {
			e.suppressAccess = true
		}
		switch op.Kind {
		case workload.Read:
			e.ms.Inc(metrics.CtrOpsRead)
			e.souCycles[e.curSOU] += cycTrigRead
			v, found, valid := e.tree.GetAt(ref.target, op.Key)
			if !valid {
				e.suppressAccess = false
				return false
			}
			if e.cfg.CollectReads {
				res.Reads = append(res.Reads,
					engine.ReadResult{Index: base + oi, Value: v, OK: found})
			}
		case workload.Write:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.souCycles[e.curSOU] += cycTrigWrite
			pr := e.tree.PutAt(ref.target, ref.parent, op.Key, op.Value)
			if !pr.Valid {
				e.suppressAccess = false
				return false
			}
			if pr.TargetChanged {
				e.suppressAccess = false
				ref.target = pr.NewTarget
				e.chargeShortcutWrite(string(g.key))
			}
		case workload.Delete:
			e.suppressAccess = false
			e.ms.Inc(metrics.CtrOpsWrite)
			e.souCycles[e.curSOU] += cycTrigWrite
			e.tree.Delete(op.Key)
		}
	}
	e.suppressAccess = false
	return true
}

// applyDirect executes the group with plain traversals (fallback). The
// first operation pays the descent; the coalesced rest act on the same
// already-fetched path.
func (e *Engine) applyDirect(batch []workload.Op, g group, base int, res *engine.Result) {
	defer func() { e.suppressAccess = false }()
	for gi, oi := range g.ops {
		op := &batch[oi]
		e.red.NextOp()
		if gi > 0 {
			e.suppressAccess = true
		}
		switch op.Kind {
		case workload.Read:
			e.ms.Inc(metrics.CtrOpsRead)
			e.souCycles[e.curSOU] += cycTrigRead
			v, ok := e.tree.Get(op.Key)
			if e.cfg.CollectReads {
				res.Reads = append(res.Reads,
					engine.ReadResult{Index: base + oi, Value: v, OK: ok})
			}
		case workload.Write:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.souCycles[e.curSOU] += cycTrigWrite
			e.tree.Put(op.Key, op.Value)
		case workload.Delete:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.souCycles[e.curSOU] += cycTrigWrite
			e.tree.Delete(op.Key)
		}
	}
}
