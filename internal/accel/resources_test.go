package accel

import (
	"strings"
	"testing"
)

func TestTableIConfigFitsU280(t *testing.T) {
	// The paper's shipped configuration must fit its own device.
	r := Config{}.Resources()
	if !r.FitsU280() {
		t.Fatalf("Table I configuration does not fit the U280: %s", r)
	}
	u := r.Utilization()
	// And it should be a plausible mid-size design, not a rounding error
	// or a full-chip monster.
	if u.LUTs < 0.05 || u.LUTs > 0.8 {
		t.Fatalf("LUT utilization %.2f implausible", u.LUTs)
	}
	if u.OnChip < 0.5 {
		t.Fatalf("Table I buffers (6.6MB of 9MB) should dominate on-chip: %.2f", u.OnChip)
	}
}

func TestResourcesScaleWithSOUs(t *testing.T) {
	small := Config{NumSOUs: 4}.Resources()
	big := Config{NumSOUs: 32}.Resources()
	if big.LUTs <= small.LUTs || big.Registers <= small.Registers {
		t.Fatal("logic must scale with SOU count")
	}
	if big.LUTs-small.LUTs != 28*lutsPerSOU {
		t.Fatalf("LUT delta = %d, want %d", big.LUTs-small.LUTs, 28*lutsPerSOU)
	}
}

func TestMaxSOUsHeadroom(t *testing.T) {
	max := MaxSOUsOnU280(Config{})
	if max < 16 {
		t.Fatalf("the paper's 16 SOUs must fit; headroom = %d", max)
	}
	if max > 2000 {
		t.Fatalf("headroom %d implausible for 14k LUTs/SOU", max)
	}
	// A config with enormous buffers runs out of on-chip memory fast.
	tight := MaxSOUsOnU280(Config{TreeBufBytes: 8 << 20})
	if tight >= max {
		t.Fatal("bigger buffers should reduce SOU headroom")
	}
}

func TestResourceStringReadable(t *testing.T) {
	s := Config{}.Resources().String()
	for _, want := range []string{"LUT", "FF", "on-chip", "%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("resource string missing %q: %s", want, s)
		}
	}
}

func TestOversizedConfigRejected(t *testing.T) {
	r := Config{TreeBufBytes: 32 << 20}.Resources() // 32MB > 9MB on-chip
	if r.FitsU280() {
		t.Fatal("32MB tree buffer cannot fit the U280")
	}
}
