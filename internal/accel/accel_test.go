package accel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func testWorkload(readRatio float64) *workload.Workload {
	return workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 3000, NumOps: 15000,
		ReadRatio: readRatio, InsertFraction: 0.3, Seed: 51,
	})
}

// perKeyReplay mirrors ctt's reference: DCART preserves per-key order.
func perKeyReplay(w *workload.Workload) (map[int]engine.ReadResult, map[string]uint64) {
	state := make(map[string]uint64)
	for i, k := range w.Keys {
		state[string(k)] = uint64(i)
	}
	reads := make(map[int]engine.ReadResult)
	for i, op := range w.Ops {
		ks := string(op.Key)
		switch op.Kind {
		case workload.Read:
			v, ok := state[ks]
			reads[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
		case workload.Write:
			state[ks] = op.Value
		case workload.Delete:
			delete(state, ks)
		}
	}
	return reads, state
}

func TestFunctionalEquivalence(t *testing.T) {
	for _, name := range workload.All {
		name := name
		t.Run(name, func(t *testing.T) {
			w := workload.MustGenerate(workload.Spec{
				Name: name, NumKeys: 2000, NumOps: 10000,
				ReadRatio: 0.5, InsertFraction: 0.3, Seed: 51,
			})
			wantReads, wantFinal := perKeyReplay(w)
			e := New(Config{CollectReads: true, BatchSize: 512})
			e.Load(w.Keys, nil)
			res := e.Run(w.Ops)

			if e.Tree().Len() != len(wantFinal) {
				t.Fatalf("final keys = %d, want %d", e.Tree().Len(), len(wantFinal))
			}
			for ks, v := range wantFinal {
				got, ok := e.Tree().Get([]byte(ks))
				if !ok || got != v {
					t.Fatalf("state mismatch at %x: (%d,%v) want %d", ks, got, ok, v)
				}
			}
			byIndex := map[int]engine.ReadResult{}
			for _, r := range res.Reads {
				byIndex[r.Index] = r
			}
			for i, want := range wantReads {
				if byIndex[i] != want {
					t.Fatalf("read %d = %+v, want %+v", i, byIndex[i], want)
				}
			}
		})
	}
}

func TestCyclesPositiveAndScale(t *testing.T) {
	w := testWorkload(0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	cyc := e.Cycles()
	if cyc <= 0 {
		t.Fatal("no cycles modeled")
	}
	// Sanity: a pipelined 16-SOU accelerator should need only a few
	// cycles per op on average (the paper's headline), and certainly not
	// fewer than ~ops/16 (each op passes through some pipeline).
	perOp := float64(cyc) / float64(len(w.Ops))
	if perOp < 0.5 || perOp > 100 {
		t.Fatalf("cycles per op = %.2f, outside plausible [0.5, 100]", perOp)
	}
	if e.Seconds() <= 0 {
		t.Fatal("seconds not positive")
	}
}

func TestOverlapReducesCycles(t *testing.T) {
	w := testWorkload(0.5)
	with := New(Config{BatchSize: 1024})
	with.Load(w.Keys, nil)
	with.Run(w.Ops)

	without := New(Config{BatchSize: 1024, DisableOverlap: true})
	without.Load(w.Keys, nil)
	without.Run(w.Ops)

	if with.Cycles() >= without.Cycles() {
		t.Fatalf("overlap (%d cycles) should beat no-overlap (%d)",
			with.Cycles(), without.Cycles())
	}
}

func TestValueAwareProtectsHotNodes(t *testing.T) {
	// §III-E's claim: value-aware Tree_buffer management "effectively
	// prevents cache thrashing for high-value nodes". Build one hot
	// prefix owning most operations plus scan-like cold traffic over the
	// other prefixes, sized so the cold stream overruns a small
	// Tree_buffer between reuses of each hot node. After the polluted
	// run, probe the hot keys: under the value-aware policy they must
	// still be resident (high probe hit ratio); under LRU the cold stream
	// has evicted them.
	hotKeys := make([][]byte, 100)
	for i := range hotKeys {
		hotKeys[i] = []byte{0x67, 0x00, byte(i), 0x01}
	}
	// Cold keys are ordered suffix-major so a sequential sweep cycles
	// through all prefixes: every batch's cold traffic spreads evenly
	// over the cold buckets, keeping each cold bucket's operation count
	// (= node value) well below the hot bucket's.
	coldKeys := make([][]byte, 0, 40000)
	for j := 0; j < 160; j++ {
		for p := 0; p < 250; p++ {
			if p == 0x67 {
				continue
			}
			coldKeys = append(coldKeys, []byte{byte(p), byte(j), byte(p ^ j), 0x02})
		}
	}
	keys := append(append([][]byte{}, hotKeys...), coldKeys...)

	var pollute []workload.Op
	cold := 0
	for i := 0; i < 40000; i++ {
		if i%5 == 0 {
			pollute = append(pollute, workload.Op{Kind: workload.Read, Key: hotKeys[(i/5)%len(hotKeys)]})
		} else {
			pollute = append(pollute, workload.Op{Kind: workload.Read, Key: coldKeys[cold%len(coldKeys)]})
			cold++
		}
	}
	probe := make([]workload.Op, len(hotKeys))
	for i, k := range hotKeys {
		probe[i] = workload.Op{Kind: workload.Read, Key: k}
	}

	probeHitRatio := func(lru bool) float64 {
		e := New(Config{TreeBufBytes: 8 << 10, UseLRUTreeBuffer: lru})
		e.Load(keys, nil)
		e.Run(pollute)
		before := e.BufferStats()[3]
		e.Run(probe)
		after := e.BufferStats()[3]
		dh := after.Hits - before.Hits
		dm := after.Misses - before.Misses
		return float64(dh) / float64(dh+dm)
	}
	va, lru := probeHitRatio(false), probeHitRatio(true)
	if va <= lru {
		t.Fatalf("value-aware probe hit ratio %.3f not above LRU %.3f", va, lru)
	}
	if va < 0.5 {
		t.Fatalf("value-aware failed to keep hot nodes resident: probe hit ratio %.3f", va)
	}
}

func TestShortcutsReduceCycles(t *testing.T) {
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 1500, NumOps: 30000,
		ReadRatio: 0.5, InsertFraction: 0.05, Seed: 53,
	})
	on := New(Config{})
	on.Load(w.Keys, nil)
	on.Run(w.Ops)

	off := New(Config{DisableShortcuts: true})
	off.Load(w.Keys, nil)
	off.Run(w.Ops)

	if on.Metrics().Get(metrics.CtrShortcutHit) == 0 {
		t.Fatal("no shortcut hits")
	}
	if on.Metrics().Get(metrics.CtrKeyMatches) >= off.Metrics().Get(metrics.CtrKeyMatches) {
		t.Fatalf("shortcuts should reduce key matches (%d vs %d)",
			on.Metrics().Get(metrics.CtrKeyMatches), off.Metrics().Get(metrics.CtrKeyMatches))
	}
}

func TestCombiningReducesLocks(t *testing.T) {
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 1500, NumOps: 30000,
		ReadRatio: 0.2, InsertFraction: 0.05, Seed: 54,
	})
	on := New(Config{})
	on.Load(w.Keys, nil)
	on.Run(w.Ops)

	off := New(Config{DisableCombining: true})
	off.Load(w.Keys, nil)
	off.Run(w.Ops)

	if on.Metrics().Get(metrics.CtrLockAcquire) >= off.Metrics().Get(metrics.CtrLockAcquire) {
		t.Fatalf("combining should reduce lock acquisitions (%d vs %d)",
			on.Metrics().Get(metrics.CtrLockAcquire), off.Metrics().Get(metrics.CtrLockAcquire))
	}
}

func TestBatchStatsAndOverlapIdentity(t *testing.T) {
	w := testWorkload(0.5)
	e := New(Config{BatchSize: 1000})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	batches := e.Batches()
	if len(batches) != (len(w.Ops)+999)/1000 {
		t.Fatalf("batches = %d", len(batches))
	}
	var opsTotal int
	for _, b := range batches {
		if b.PCUCycles <= 0 || b.SOUCycles <= 0 {
			t.Fatalf("non-positive batch cycles: %+v", b)
		}
		opsTotal += b.Ops
	}
	if opsTotal != len(w.Ops) {
		t.Fatalf("batch ops sum = %d", opsTotal)
	}
	// Overlapped total is bounded by the serialized total and by the
	// slowest-phase lower bound.
	var serial, pcuSum, souSum int64
	for _, b := range batches {
		serial += b.PCUCycles + b.SOUCycles
		pcuSum += b.PCUCycles
		souSum += b.SOUCycles
	}
	cyc := e.Cycles()
	if cyc > serial {
		t.Fatalf("overlap total %d exceeds serial %d", cyc, serial)
	}
	if cyc < pcuSum || cyc < souSum {
		t.Fatalf("overlap total %d below phase lower bounds (%d, %d)", cyc, pcuSum, souSum)
	}
}

func TestBufferStatsPopulated(t *testing.T) {
	w := testWorkload(0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	st := e.BufferStats()
	for i, s := range st {
		if s.Hits+s.Misses == 0 {
			t.Fatalf("buffer %d saw no traffic", i)
		}
	}
	if e.Metrics().Get(metrics.CtrOnchipHits) == 0 {
		t.Fatal("no on-chip hits counted")
	}
}

func TestTableIConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.NumSOUs != 16 || c.NumBuckets != 16 {
		t.Fatalf("units: %+v", c)
	}
	if c.ScanBufBytes != 512<<10 || c.BucketBufBytes != 2<<20 ||
		c.ShortcutBufBytes != 128<<10 || c.TreeBufBytes != 4<<20 {
		t.Fatalf("Table I buffer sizes wrong: %+v", c)
	}
	if c.ClockHz != 230e6 {
		t.Fatalf("clock = %v, want 230MHz", c.ClockHz)
	}
}

func TestResetKeepsIndex(t *testing.T) {
	w := testWorkload(0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	e.Reset()
	if e.Cycles() != 0 {
		t.Fatalf("cycles after reset = %d", e.Cycles())
	}
	if e.Tree().Len() == 0 {
		t.Fatal("reset dropped the index")
	}
	if e.Metrics().Get(metrics.CtrKeyMatches) != 0 {
		t.Fatal("counters survived reset")
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload(0.5)
	run := func() (int64, map[string]int64) {
		e := New(Config{})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		return e.Cycles(), e.Metrics().Snapshot()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 {
		t.Fatalf("cycles differ: %d vs %d", c1, c2)
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("counter %s differs: %d vs %d", k, v, m2[k])
		}
	}
}
