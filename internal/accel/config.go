// Package accel simulates the DCART hardware accelerator (§III): a
// behavioral, cycle-approximate model of the Xilinx Alveo U280 design with
// one Prefix-based Combining Unit (PCU), one Dispatcher, sixteen
// Shortcut-based Operating Units (SOUs), the four on-chip BRAM buffers of
// Table I, a value-aware Tree_buffer replacement policy (§III-E), an HBM
// off-chip memory model, and the PCU/SOU batch overlap of Fig 6.
//
// The simulator executes operations functionally (on the art substrate)
// on a single goroutine while modeling 16-way SOU parallelism in its cycle
// accounting, so every run is deterministic and every figure reproducible
// bit-for-bit. See DESIGN.md §2 for why a behavioral simulator is the
// faithful substitution for the paper's RTL.
package accel

import "repro/internal/mem"

// Table I parameters and the microarchitectural cost model.
type Config struct {
	// NumSOUs is the number of Shortcut-based Operating Units (Table I: 16).
	NumSOUs int
	// NumBuckets is the number of Bucket_Tables (§III-B: sixteen).
	NumBuckets int
	// PrefixBits is the combining prefix width (§III-B: first 8 key bits).
	PrefixBits int
	// BatchSize is the number of operations per PCU batch (§III-D).
	BatchSize int

	// On-chip buffer capacities in bytes (Table I).
	ScanBufBytes     int // 512 KB
	BucketBufBytes   int // 2 MB
	ShortcutBufBytes int // 128 KB
	TreeBufBytes     int // 4 MB

	// BufferLineBytes is the BRAM buffer line granularity.
	BufferLineBytes int

	// ClockHz is the accelerator clock (230 MHz per §IV-A).
	ClockHz float64

	// HBM is the off-chip memory model; nil selects mem.HBM2().
	HBM *mem.DRAM

	// MemoryParallelism is the number of outstanding HBM requests each
	// SOU's pipeline sustains across independent groups (miss latency is
	// overlapped by that factor). Traversal steps within one operation
	// are dependent and never overlap.
	MemoryParallelism int

	// Ablations (off in the paper's DCART configuration).
	UseLRUTreeBuffer bool // replace value-aware management with LRU
	DisableOverlap   bool // serialize PCU and SOU phases (no Fig 6 overlap)
	DisableShortcuts bool // no Shortcut_Table
	DisableCombining bool // no same-key coalescing within buckets

	// CollectReads records read results for verification.
	CollectReads bool
}

// Defaults fills unset fields with the paper's Table I configuration.
func (c Config) Defaults() Config {
	if c.NumSOUs <= 0 {
		c.NumSOUs = 16
	}
	if c.NumBuckets <= 0 {
		c.NumBuckets = 16
	}
	if c.PrefixBits <= 0 || c.PrefixBits > 16 {
		c.PrefixBits = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.ScanBufBytes <= 0 {
		c.ScanBufBytes = 512 << 10
	}
	if c.BucketBufBytes <= 0 {
		c.BucketBufBytes = 2 << 20
	}
	if c.ShortcutBufBytes <= 0 {
		c.ShortcutBufBytes = 128 << 10
	}
	if c.TreeBufBytes <= 0 {
		c.TreeBufBytes = 4 << 20
	}
	if c.BufferLineBytes <= 0 {
		c.BufferLineBytes = 64
	}
	if c.ClockHz <= 0 {
		c.ClockHz = 230e6
	}
	if c.HBM == nil {
		c.HBM = mem.HBM2()
	}
	if c.MemoryParallelism <= 0 {
		c.MemoryParallelism = 4
	}
	return c
}

// Pipeline cost constants, in accelerator cycles. The pipelined units
// sustain one operation per cycle when fed (II=1); the constants below are
// the additional stage costs charged on each event.
const (
	// cycPCUStages is the PCU pipeline depth (Scan_Operation,
	// Get_Prefix, Combine_Operation; Fig 5).
	cycPCUStages = 3
	// cycSOUStages is the SOU pipeline depth (Index_Shortcut,
	// Traverse_Tree, Trigger_Operation, Generate_Shortcut; Fig 5).
	cycSOUStages = 4
	// cycBufHit is an on-chip buffer access.
	cycBufHit = 2
	// cycMatch is one partial-key comparison step (the FPGA compares all
	// of a node's keys in parallel; N48's indirection costs one more).
	cycMatch     = 1
	cycMatchN48  = 2
	cycDispatch  = 1 // Dispatcher work per bucket
	cycTrigRead  = 1 // Trigger_Operation, read
	cycTrigWrite = 2 // Trigger_Operation, write
	cycShortcut  = 2 // Generate_Shortcut table update
)

// Record sizes in bytes for off-chip structures.
const (
	opRecordBytes       = 24 // kind + value + key descriptor
	bucketEntryBytes    = 24 // combined-op record in a Bucket_Table
	shortcutEntryBytes  = 32 // <key id, target addr, parent addr, meta>
	shortcutTableSlots  = 1 << 16
	shortcutTableStride = 64
)

// Synthetic address-space bases for the off-chip regions the buffers
// front. The art arena allocates node addresses starting at 0x1000 and
// grows by at most a few GB in any run, so regions are spaced 1 TB apart.
const (
	opStreamBase      = uint64(1) << 40
	bucketTablesBase  = uint64(2) << 40
	bucketTableStride = uint64(1) << 32
	shortcutTableBase = uint64(3) << 40
)
