package olc

import (
	"bytes"
	"sync/atomic"
)

// Get returns the value stored under key. Readers use hand-over-hand read
// locks and never restart.
func (t *Tree) Get(key []byte) (uint64, bool) {
	atomic.AddInt64(t.cOpsRead, 1)
	n := t.root.Load()
	if n == nil {
		return 0, false
	}
	t.rlock(n)
	return t.getDescend(n, 0, key)
}

// getDescend runs the read descent from n, whose read lock the caller
// holds (released on every path).
func (t *Tree) getDescend(n *node, depth int, key []byte) (uint64, bool) {
	for {
		atomic.AddInt64(t.cNodeAccesses, 1)
		atomic.AddInt64(t.cKeyMatches, 1)
		if n.kind == kLeaf {
			ok := bytes.Equal(n.key, key)
			v := n.value.Load()
			n.mu.RUnlock()
			if ok {
				return v, true
			}
			return 0, false
		}
		p := n.prefix
		if len(key)-depth < len(p) || !bytes.Equal(key[depth:depth+len(p)], p) {
			n.mu.RUnlock()
			return 0, false
		}
		depth += len(p)
		if depth == len(key) {
			pl := n.prefixLeaf
			n.mu.RUnlock()
			if pl != nil {
				return pl.value.Load(), true
			}
			return 0, false
		}
		c := n.findChild(key[depth])
		if c == nil {
			n.mu.RUnlock()
			return 0, false
		}
		t.rlock(c)
		n.mu.RUnlock()
		n = c
		depth++
	}
}

// Put stores value under key, reporting whether an existing value was
// replaced.
func (t *Tree) Put(key []byte, value uint64) bool {
	atomic.AddInt64(t.cOpsWrite, 1)
	for {
		done, replaced := t.tryPut(key, value)
		if done {
			if !replaced {
				t.size.Add(1)
			}
			return replaced
		}
		atomic.AddInt64(t.cRestarts, 1)
	}
}

// tryPut makes one optimistic attempt; done=false requests a restart.
func (t *Tree) tryPut(key []byte, value uint64) (done, replaced bool) {
	n := t.root.Load()
	if n == nil {
		t.lockRoot()
		if t.root.Load() != nil {
			t.rootMu.Unlock()
			return false, false
		}
		t.root.Store(newLeaf(key, value))
		t.rootMu.Unlock()
		return true, false
	}
	t.rlock(n)
	out, replaced := t.putDescend(n, nil, 0, 0, key, value, true)
	return out == putDone, replaced
}

// putOutcome classifies one optimistic put descent.
type putOutcome int

const (
	putDone putOutcome = iota
	// putRestart: a validation failed; retry from the root.
	putRestart
	// putFallback: the descent entered mid-tree (fromRoot=false) and hit a
	// structural change at its entry node, which needs the parent the
	// caller does not have. Retry with a full root descent.
	putFallback
)

// putDescend runs the optimistic put descent from n, whose read lock the
// caller holds (released on every path). parent is nil at the entry node;
// fromRoot says whether that entry node is the root (whose "parent" is the
// rootMu edge) or a mid-tree shortcut target (which has a real parent the
// caller does not hold, so structural changes there report putFallback).
func (t *Tree) putDescend(n, parent *node, depth, parentDepth int,
	key []byte, value uint64, fromRoot bool) (putOutcome, bool) {

	boolOut := func(done bool) (putOutcome, bool) {
		if done {
			return putDone, false
		}
		return putRestart, false
	}
	for {
		atomic.AddInt64(t.cNodeAccesses, 1)
		atomic.AddInt64(t.cKeyMatches, 1)

		if n.kind == kLeaf {
			if bytes.Equal(n.key, key) {
				n.mu.RUnlock()
				done, replaced := t.updateLeafValue(n, value)
				if done {
					return putDone, replaced
				}
				return putRestart, false
			}
			n.mu.RUnlock()
			if parent == nil && !fromRoot {
				return putFallback, false
			}
			return boolOut(t.splitLeaf(parent, parentDepth, n, key, depth, value))
		}

		p := n.prefix
		cp := commonPrefixLen(p, key[depth:])
		if cp < len(p) {
			n.mu.RUnlock()
			if parent == nil && !fromRoot {
				return putFallback, false
			}
			return boolOut(t.splitPrefix(parent, parentDepth, n, key, depth, cp, value))
		}
		depth += len(p)

		if depth == len(key) {
			pl := n.prefixLeaf
			n.mu.RUnlock()
			if pl != nil {
				done, replaced := t.updateLeafValue(pl, value)
				if done {
					return putDone, replaced
				}
				return putRestart, false
			}
			done, replaced := t.attachPrefixLeaf(n, key, value)
			if done {
				return putDone, replaced
			}
			return putRestart, false
		}

		b := key[depth]
		c := n.findChild(b)
		if c == nil {
			wasFull := n.nChildren >= n.kind.capacity()
			n.mu.RUnlock()
			if wasFull {
				if parent == nil && !fromRoot {
					return putFallback, false
				}
				return boolOut(t.growAndInsert(parent, parentDepth, n, b, key, value))
			}
			return boolOut(t.insertChild(n, b, key, value))
		}
		t.rlock(c)
		n.mu.RUnlock()
		parent = n
		parentDepth = depth
		n = c
		depth++
	}
}

// updateLeafValue overwrites an existing leaf's value using the configured
// discipline. Returns done=false when the leaf was deleted concurrently.
func (t *Tree) updateLeafValue(l *node, value uint64) (done, replaced bool) {
	if t.casValues {
		// Heart/SMART fast path: an atomic RMW on the value word; no node
		// lock. A concurrently deleted leaf linearizes the store before
		// the delete.
		atomic.AddInt64(t.cAtomicOps, 1)
		l.value.Store(value)
		return true, true
	}
	t.wlock(l)
	if l.obsolete.Load() {
		l.mu.Unlock()
		return false, false
	}
	l.value.Store(value)
	l.mu.Unlock()
	return true, true
}

// attachPrefixLeaf sets n.prefixLeaf for a key terminating at n.
func (t *Tree) attachPrefixLeaf(n *node, key []byte, value uint64) (done, replaced bool) {
	t.wlock(n)
	if n.obsolete.Load() {
		n.mu.Unlock()
		return false, false
	}
	if pl := n.prefixLeaf; pl != nil {
		// Another writer attached it first: degrade to a value update.
		n.mu.Unlock()
		return t.updateLeafValue(pl, value)
	}
	n.prefixLeaf = newLeaf(key, value)
	n.mu.Unlock()
	return true, false
}

// insertChild adds a new leaf under n at byte b (capacity was available at
// observation time; re-validated under the lock).
func (t *Tree) insertChild(n *node, b byte, key []byte, value uint64) bool {
	t.wlock(n)
	if n.obsolete.Load() || n.findChild(b) != nil || n.nChildren >= n.kind.capacity() {
		n.mu.Unlock()
		return false
	}
	n.addChild(b, newLeaf(key, value))
	n.mu.Unlock()
	return true
}

// lockEdge acquires the write locks needed to replace n under parent
// (rootMu when parent is nil), re-validating the edge. On failure nothing
// is held.
func (t *Tree) lockEdge(parent *node, parentDepth int, n *node, key []byte) bool {
	if parent == nil {
		t.lockRoot()
		if t.root.Load() != n {
			t.rootMu.Unlock()
			return false
		}
		t.wlock(n)
		if n.obsolete.Load() {
			n.mu.Unlock()
			t.rootMu.Unlock()
			return false
		}
		return true
	}
	t.wlock(parent)
	if parent.obsolete.Load() || parent.findChild(key[parentDepth]) != n {
		parent.mu.Unlock()
		return false
	}
	t.wlock(n)
	if n.obsolete.Load() {
		n.mu.Unlock()
		parent.mu.Unlock()
		return false
	}
	return true
}

func (t *Tree) unlockEdge(parent, n *node) {
	n.mu.Unlock()
	if parent == nil {
		t.rootMu.Unlock()
	} else {
		parent.mu.Unlock()
	}
}

// setChild points parent's slot (or the root) at repl; caller holds the
// edge locks.
func (t *Tree) setChild(parent *node, parentDepth int, key []byte, repl *node) {
	if parent == nil {
		t.root.Store(repl)
		return
	}
	b := key[parentDepth]
	switch parent.kind {
	case k4, k16:
		for i, kb := range parent.keys {
			if kb == b {
				parent.children[i] = repl
				return
			}
		}
	case k48:
		parent.children[parent.index[b]-1] = repl
	case k256:
		parent.children[b] = repl
	}
}

// splitLeaf replaces leaf l (which mismatches key past depth) with an N4
// holding both l and a new leaf for key.
func (t *Tree) splitLeaf(parent *node, parentDepth int, l *node, key []byte, depth int, value uint64) bool {
	if !t.lockEdge(parent, parentDepth, l, key) {
		return false
	}
	cp := commonPrefixLen(l.key[depth:], key[depth:])
	n4 := newNode(k4, append([]byte(nil), key[depth:depth+cp]...))
	place := func(leaf *node, d int) {
		if d == len(leaf.key) {
			n4.prefixLeaf = leaf
		} else {
			n4.addChild(leaf.key[d], leaf)
		}
	}
	place(l, depth+cp)
	place(newLeaf(key, value), depth+cp)
	t.setChild(parent, parentDepth, key, n4)
	t.unlockEdge(parent, l)
	return true
}

// splitPrefix replaces n, whose compressed path diverges from key at cp,
// with an N4 over a shortened-prefix copy of n and a new leaf. n itself is
// replaced (not mutated) so that in-flight operations holding a reference
// validate against the obsolete flag alone.
func (t *Tree) splitPrefix(parent *node, parentDepth int, n *node, key []byte, depth, cp int, value uint64) bool {
	if !t.lockEdge(parent, parentDepth, n, key) {
		return false
	}
	p := n.prefix
	if commonPrefixLen(p, key[depth:]) != cp {
		// The prefix changed while unlocked (another split already
		// happened here); restart.
		t.unlockEdge(parent, n)
		return false
	}
	// Shortened-prefix copy of n.
	n2 := newNode(n.kind, append([]byte(nil), p[cp+1:]...))
	n2.prefixLeaf = n.prefixLeaf
	n2.nChildren = n.nChildren
	n2.keys = append(n2.keys[:0], n.keys...)
	if n.index != nil {
		idx := *n.index
		n2.index = &idx
	}
	if n.kind == k256 {
		copy(n2.children, n.children)
	} else {
		n2.children = append(n2.children[:0], n.children...)
	}

	n4 := newNode(k4, append([]byte(nil), p[:cp]...))
	n4.addChild(p[cp], n2)
	if depth+cp == len(key) {
		n4.prefixLeaf = newLeaf(key, value)
	} else {
		n4.addChild(key[depth+cp], newLeaf(key, value))
	}
	t.setChild(parent, parentDepth, key, n4)
	n.obsolete.Store(true)
	t.unlockEdge(parent, n)
	return true
}

// growAndInsert replaces full node n with its next-larger layout holding
// an extra leaf for key at byte b.
func (t *Tree) growAndInsert(parent *node, parentDepth int, n *node, b byte, key []byte, value uint64) bool {
	if !t.lockEdge(parent, parentDepth, n, key) {
		return false
	}
	if n.findChild(b) != nil || n.nChildren < n.kind.capacity() {
		// The slot got taken, or space appeared via a racing grow path;
		// restart and re-descend.
		t.unlockEdge(parent, n)
		return false
	}
	g := grown(n)
	g.addChild(b, newLeaf(key, value))
	t.setChild(parent, parentDepth, key, g)
	n.obsolete.Store(true)
	t.unlockEdge(parent, n)
	return true
}

// Delete removes key, reporting whether it was present. Deletion removes
// the leaf but performs no structural compaction (see package comment).
func (t *Tree) Delete(key []byte) bool {
	atomic.AddInt64(t.cOpsWrite, 1)
	for {
		done, deleted := t.tryDelete(key)
		if done {
			if deleted {
				t.size.Add(-1)
			}
			return deleted
		}
		atomic.AddInt64(t.cRestarts, 1)
	}
}

// tryDelete descends with hand-over-hand write locks.
func (t *Tree) tryDelete(key []byte) (done, deleted bool) {
	t.lockRoot()
	n := t.root.Load()
	if n == nil {
		t.rootMu.Unlock()
		return true, false
	}
	t.wlock(n)
	atomic.AddInt64(t.cNodeAccesses, 1)
	atomic.AddInt64(t.cKeyMatches, 1)
	if n.kind == kLeaf {
		defer t.rootMu.Unlock()
		ok := bytes.Equal(n.key, key)
		if ok {
			n.obsolete.Store(true)
			t.root.Store(nil)
		}
		n.mu.Unlock()
		return true, ok
	}
	t.rootMu.Unlock()

	depth := 0
	for {
		p := n.prefix
		if len(key)-depth < len(p) || !bytes.Equal(key[depth:depth+len(p)], p) {
			n.mu.Unlock()
			return true, false
		}
		depth += len(p)

		if depth == len(key) {
			pl := n.prefixLeaf
			if pl == nil {
				n.mu.Unlock()
				return true, false
			}
			t.wlock(pl)
			pl.obsolete.Store(true)
			pl.mu.Unlock()
			n.prefixLeaf = nil
			n.mu.Unlock()
			return true, true
		}

		b := key[depth]
		c := n.findChild(b)
		if c == nil {
			n.mu.Unlock()
			return true, false
		}
		t.wlock(c)
		atomic.AddInt64(t.cNodeAccesses, 1)
		atomic.AddInt64(t.cKeyMatches, 1)
		if c.kind == kLeaf {
			ok := bytes.Equal(c.key, key)
			if ok {
				c.obsolete.Store(true)
				n.removeChild(b)
			}
			c.mu.Unlock()
			n.mu.Unlock()
			return true, ok
		}
		n.mu.Unlock()
		n = c
		depth++
	}
}
