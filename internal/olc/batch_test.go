package olc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestGetBatchBasic: present keys, absent keys, duplicates, and keys that
// terminate at internal nodes (prefix-leaf positions) all resolve in one
// shared descent.
func TestGetBatchBasic(t *testing.T) {
	tr := New(nil)
	loaded := [][]byte{
		[]byte("app"), []byte("apple"), []byte("apply"),
		[]byte("banana"), []byte("band"), []byte("b"),
	}
	for i, k := range loaded {
		tr.Put(k, uint64(i+1))
	}

	keys := [][]byte{
		[]byte("apple"),   // leaf
		[]byte("app"),     // prefix-leaf position
		[]byte("absent"),  // miss below an existing branch
		[]byte("apple"),   // duplicate
		[]byte("zzz"),     // miss at the root fan-out
		[]byte("b"),       // short key
		[]byte("apples "), // longer than a stored key
	}
	out := make([]BatchResult, len(keys))
	st := tr.GetBatch(keys, out)
	if st.SharedDescents != 1 {
		t.Fatalf("SharedDescents = %d, want 1", st.SharedDescents)
	}
	if st.NodesVisited == 0 {
		t.Fatal("NodesVisited = 0")
	}
	want := []BatchResult{
		{2, true}, {1, true}, {0, false}, {2, true}, {0, false}, {6, true}, {0, false},
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("key %q = %+v, want %+v", keys[i], out[i], want[i])
		}
	}
	// Cross-check every result against per-key Get.
	for i, k := range keys {
		v, ok := tr.Get(k)
		if out[i].Found != ok || out[i].Value != v {
			t.Fatalf("key %q batch %+v vs get (%d,%v)", k, out[i], v, ok)
		}
	}
}

// TestGetBatchEmptyAndLeafRoot covers the degenerate trees: empty, and a
// bare-leaf root.
func TestGetBatchEmptyAndLeafRoot(t *testing.T) {
	tr := New(nil)
	out := make([]BatchResult, 2)
	st := tr.GetBatch([][]byte{[]byte("a"), []byte("b")}, out)
	if st.SharedDescents != 0 || out[0].Found || out[1].Found {
		t.Fatalf("empty tree: st=%+v out=%v", st, out)
	}

	tr.Put([]byte("solo"), 9)
	st = tr.GetBatch([][]byte{[]byte("solo"), []byte("nope")}, out)
	if !out[0].Found || out[0].Value != 9 || out[1].Found {
		t.Fatalf("leaf root: %v", out)
	}
	if st.Anchor.Valid() {
		t.Fatal("bare-leaf root must yield no anchor")
	}
}

// TestApplyBatchOrdering: within one batch, later operations on a key must
// observe earlier ones — including across structural fallbacks (insert
// then read, delete then read, delete then re-insert).
func TestApplyBatchOrdering(t *testing.T) {
	tr := New(nil)
	tr.Put([]byte("seed:a"), 1)
	tr.Put([]byte("seed:b"), 2)

	ops := []BatchOp{
		{BatchPut, []byte("new:x"), 100},   // insert (fallback path)
		{BatchGet, []byte("new:x"), 0},     // must see 100
		{BatchPut, []byte("new:x"), 101},   // overwrite after insert (dirty path)
		{BatchGet, []byte("new:x"), 0},     // must see 101
		{BatchDelete, []byte("seed:a"), 0}, // delete existing
		{BatchGet, []byte("seed:a"), 0},    // must miss
		{BatchPut, []byte("seed:a"), 7},    // re-insert after delete
		{BatchGet, []byte("seed:a"), 0},    // must see 7
		{BatchGet, []byte("seed:b"), 0},    // untouched key via located leaf
		{BatchDelete, []byte("ghost"), 0},  // delete absent
	}
	out := make([]BatchResult, len(ops))
	tr.ApplyBatch(ops, out)

	want := []BatchResult{
		{100, false}, {100, true}, {101, true}, {101, true},
		{0, true}, {0, false}, {7, false}, {7, true},
		{2, true}, {0, false},
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("op %d (%v %q) = %+v, want %+v", i, ops[i].Kind, ops[i].Key, out[i], want[i])
		}
	}
}

// TestLocateBatchAnchor: a batch confined to one subtree yields an anchor;
// descending from it resolves the same locations; an anchor whose node
// went obsolete is refused.
func TestLocateBatchAnchor(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 64; i++ {
		tr.Put([]byte(fmt.Sprintf("shared:%02d", i)), uint64(i))
	}
	keys := [][]byte{
		[]byte("shared:03"), []byte("shared:17"), []byte("shared:42"),
	}
	locs := make([]BatchLoc, len(keys))
	st, ok := tr.LocateBatch(Ref{}, 16, keys, locs)
	if !ok || st.SharedDescents != 1 {
		t.Fatalf("root locate: ok=%v st=%+v", ok, st)
	}
	if !st.Anchor.Valid() {
		t.Fatal("no anchor for a single-subtree batch")
	}
	for i := range keys {
		if !locs[i].Leaf.Valid() {
			t.Fatalf("key %q not located", keys[i])
		}
	}

	anchor := st.Anchor
	locs2 := make([]BatchLoc, len(keys))
	st2, ok := tr.LocateBatch(anchor, 16, keys, locs2)
	if !ok {
		t.Fatal("anchored locate refused a live anchor")
	}
	if st2.NodesVisited > st.NodesVisited {
		t.Fatalf("anchored descent visited %d nodes, root descent %d",
			st2.NodesVisited, st.NodesVisited)
	}
	for i := range keys {
		v1, _ := tr.GetLeaf(locs[i].Leaf)
		v2, _ := tr.GetLeaf(locs2[i].Leaf)
		if v1 != v2 {
			t.Fatalf("key %q: anchored %d vs root %d", keys[i], v2, v1)
		}
	}

	// Force structural churn until some anchor goes obsolete, then verify
	// the stale anchor is refused (insert keys that grow nodes on the
	// shared path).
	anchor.n.obsolete.Store(true) // simulate the replacement directly
	if _, ok := tr.LocateBatch(anchor, 16, keys, locs2); ok {
		t.Fatal("locate accepted an obsolete anchor")
	}
	anchor.n.obsolete.Store(false)
}

// batchOracle replays operations on a map, producing expected results.
func batchOracle(state map[string]uint64, ops []BatchOp) []BatchResult {
	out := make([]BatchResult, len(ops))
	for i, op := range ops {
		ks := string(op.Key)
		v, ok := state[ks]
		switch op.Kind {
		case BatchGet:
			out[i] = BatchResult{Value: v, Found: ok}
		case BatchPut:
			out[i] = BatchResult{Value: op.Value, Found: ok}
			state[ks] = op.Value
		case BatchDelete:
			out[i] = BatchResult{Found: ok}
			delete(state, ks)
		}
	}
	return out
}

// randomBatchKey draws from a small structured keyspace that exercises
// prefix splits (shared stems of varying length), node grows (wide fan-out
// suffixes), prefix-leaf positions (keys that are prefixes of other keys),
// and keys outside every loaded prefix.
func randomBatchKey(rng *rand.Rand) []byte {
	stems := []string{"a", "ab", "abc", "abcd", "x:", "x:longstem:", "zz"}
	s := stems[rng.Intn(len(stems))]
	switch rng.Intn(4) {
	case 0:
		return []byte(s) // the stem itself: prefix-leaf candidate
	case 1:
		return []byte(fmt.Sprintf("%s%c", s, 'a'+rng.Intn(26))) // fan-out
	case 2:
		return []byte(fmt.Sprintf("%s%03d", s, rng.Intn(300))) // grow to k48/k256
	default:
		return []byte(fmt.Sprintf("%s%c%02d", s, 'A'+rng.Intn(8), rng.Intn(40)))
	}
}

// TestBatchVsOracleProperty is the randomized property test: interleaved
// GetBatch/ApplyBatch calls (and direct per-op calls between them) must
// match a sequential map oracle exactly, across a keyspace engineered to
// hit prefix-split and node-grow paths.
func TestBatchVsOracleProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := New(nil)
		state := map[string]uint64{}

		for round := 0; round < 60; round++ {
			switch rng.Intn(3) {
			case 0: // ApplyBatch
				n := 1 + rng.Intn(24)
				ops := make([]BatchOp, n)
				for i := range ops {
					ops[i] = BatchOp{
						Kind:  BatchKind(rng.Intn(3)),
						Key:   randomBatchKey(rng),
						Value: rng.Uint64() >> 1,
					}
				}
				want := batchOracle(state, ops)
				got := make([]BatchResult, n)
				tr.ApplyBatch(ops, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d round %d op %d (%v %q): got %+v want %+v",
							seed, round, i, ops[i].Kind, ops[i].Key, got[i], want[i])
					}
				}
			case 1: // GetBatch
				n := 1 + rng.Intn(24)
				keys := make([][]byte, n)
				for i := range keys {
					keys[i] = randomBatchKey(rng)
				}
				got := make([]BatchResult, n)
				tr.GetBatch(keys, got)
				for i, k := range keys {
					v, ok := state[string(k)]
					if got[i].Found != ok || (ok && got[i].Value != v) {
						t.Fatalf("seed %d round %d key %q: got %+v want (%d,%v)",
							seed, round, k, got[i], v, ok)
					}
				}
			default: // direct per-op interleaving
				for i := 0; i < 8; i++ {
					k := randomBatchKey(rng)
					switch rng.Intn(3) {
					case 0:
						v, ok := tr.Get(k)
						ev, eok := state[string(k)]
						if ok != eok || (ok && v != ev) {
							t.Fatalf("seed %d: direct get %q = (%d,%v) want (%d,%v)",
								seed, k, v, ok, ev, eok)
						}
					case 1:
						v := rng.Uint64() >> 1
						tr.Put(k, v)
						state[string(k)] = v
					default:
						tr.Delete(k)
						delete(state, string(k))
					}
				}
			}
		}
		if tr.Len() != len(state) {
			t.Fatalf("seed %d: tree has %d keys, oracle %d", seed, tr.Len(), len(state))
		}
	}
}

// TestBatchConcurrent is the -race stress: goroutines run mixed batches on
// disjoint namespaces (exact oracle per goroutine) while also issuing
// read-only batches across the whole tree (pure race coverage; values are
// not asserted cross-namespace).
func TestBatchConcurrent(t *testing.T) {
	tr := New(nil)
	const G, rounds = 6, 40
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			state := map[string]uint64{}
			prefix := fmt.Sprintf("g%d:", g)
			for r := 0; r < rounds; r++ {
				n := 1 + rng.Intn(16)
				ops := make([]BatchOp, n)
				for i := range ops {
					ops[i] = BatchOp{
						Kind:  BatchKind(rng.Intn(3)),
						Key:   []byte(prefix + string(randomBatchKey(rng))),
						Value: rng.Uint64() >> 1,
					}
				}
				want := batchOracle(state, ops)
				got := make([]BatchResult, n)
				tr.ApplyBatch(ops, got)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("g%d r%d op %d (%v %q): got %+v want %+v",
							g, r, i, ops[i].Kind, ops[i].Key, got[i], want[i])
						return
					}
				}
				// Cross-tree read batch: race coverage only.
				keys := make([][]byte, 8)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("g%d:%s", rng.Intn(G), randomBatchKey(rng)))
				}
				out := make([]BatchResult, len(keys))
				tr.GetBatch(keys, out)
				// Own-namespace results within the cross batch are exact.
				for i, k := range keys {
					if !bytes.HasPrefix(k, []byte(prefix)) {
						continue
					}
					v, ok := state[string(k)]
					if out[i].Found != ok || (ok && out[i].Value != v) {
						t.Errorf("g%d: cross-batch own key %q = %+v want (%d,%v)",
							g, k, out[i], v, ok)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
