package olc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestWalkSortedComplete(t *testing.T) {
	tr := New(nil)
	rng := rand.New(rand.NewSource(5))
	ref := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := key64(rng.Uint64() % 100000)
		v := rng.Uint64()
		tr.Put(k, v)
		ref[string(k)] = v
	}
	var keys []string
	ok := tr.Walk(func(k []byte, v uint64) bool {
		if ref[string(k)] != v {
			t.Fatalf("value mismatch at %x", k)
		}
		keys = append(keys, string(k))
		return true
	})
	if !ok {
		t.Fatal("walk stopped early")
	}
	if len(keys) != len(ref) {
		t.Fatalf("visited %d, want %d", len(keys), len(ref))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("walk out of order")
	}
}

func TestWalkPrefixLeafOrder(t *testing.T) {
	tr := New(nil)
	for _, k := range []string{"abc", "ab", "abd", "a"} {
		tr.Put([]byte(k), 1)
	}
	var got []string
	tr.Walk(func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "ab", "abc", "abd"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	n := 0
	if tr.Walk(func(k []byte, v uint64) bool { n++; return n < 7 }) {
		t.Fatal("walk reported complete despite early stop")
	}
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
}

func TestWalkEmpty(t *testing.T) {
	if !New(nil).Walk(func(k []byte, v uint64) bool { return true }) {
		t.Fatal("empty walk should complete")
	}
}

func TestWalkDuringConcurrentWrites(t *testing.T) {
	tr := New(nil)
	const loaded = 5000
	for i := 0; i < loaded; i++ {
		tr.Put(key64(uint64(i*2)), uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers churn odd keys while walkers scan.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := key64(uint64(rng.Intn(loaded))*2 + 1)
				if rng.Intn(2) == 0 {
					tr.Put(k, 7)
				} else {
					tr.Delete(k)
				}
			}
		}(int64(w))
	}
	for iter := 0; iter < 20; iter++ {
		var prev []byte
		seen := 0
		tr.Walk(func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("out of order during churn")
				return false
			}
			prev = append(prev[:0], k...)
			seen++
			return true
		})
		// All originally loaded (even) keys are stable and must be seen.
		if seen < loaded {
			t.Fatalf("walk saw %d < %d stable keys", seen, loaded)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAscendRangeConcurrentTree(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Put(key64(uint64(i*2)), uint64(i*2))
	}
	var got []uint64
	tr.AscendRange(key64(10), key64(20), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Open bounds.
	n := 0
	tr.AscendRange(nil, nil, func(k []byte, v uint64) bool { n++; return true })
	if n != 100 {
		t.Fatalf("open range visited %d", n)
	}
}

func TestScanPrefixConcurrentTree(t *testing.T) {
	tr := New(nil)
	words := []string{"ant", "antelope", "anthem", "bee", "beetle", "an"}
	for i, w := range words {
		tr.Put(append([]byte(w), 0), uint64(i))
	}
	var got []string
	tr.ScanPrefix([]byte("ant"), func(k []byte, v uint64) bool {
		got = append(got, string(k[:len(k)-1]))
		return true
	})
	want := []string{"ant", "antelope", "anthem"}
	if len(got) != len(want) {
		t.Fatalf("ScanPrefix(ant) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanPrefix(ant) = %v, want %v", got, want)
		}
	}
	// Prefix ending inside a compressed path.
	got = nil
	tr.ScanPrefix([]byte("bee"), func(k []byte, v uint64) bool {
		got = append(got, string(k[:len(k)-1]))
		return true
	})
	if len(got) != 2 || got[0] != "bee" || got[1] != "beetle" {
		t.Fatalf("ScanPrefix(bee) = %v", got)
	}
	// No match.
	n := 0
	tr.ScanPrefix([]byte("zz"), func(k []byte, v uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("ScanPrefix(zz) visited %d", n)
	}
	// Empty prefix = full walk.
	n = 0
	tr.ScanPrefix(nil, func(k []byte, v uint64) bool { n++; return true })
	if n != len(words) {
		t.Fatalf("ScanPrefix(nil) visited %d", n)
	}
}

func TestScanPrefixDuringWrites(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 1000; i++ {
		tr.Put(append([]byte(fmt.Sprintf("stable%04d", i)), 0), uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Put(append([]byte(fmt.Sprintf("churn%06d", i)), 0), 1)
			i++
		}
	}()
	for iter := 0; iter < 50; iter++ {
		n := 0
		tr.ScanPrefix([]byte("stable"), func(k []byte, v uint64) bool { n++; return true })
		if n != 1000 {
			t.Fatalf("scan during churn saw %d stable keys", n)
		}
	}
	close(stop)
	wg.Wait()
}
