package olc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func key64(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

func TestSequentialBasics(t *testing.T) {
	tr := New(nil)
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("empty tree Get")
	}
	if tr.Delete([]byte("x")) {
		t.Fatal("empty tree Delete")
	}
	if tr.Put([]byte("hello"), 1) {
		t.Fatal("fresh Put reported replaced")
	}
	if !tr.Put([]byte("hello"), 2) {
		t.Fatal("overwrite not reported")
	}
	if v, ok := tr.Get([]byte("hello")); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !tr.Delete([]byte("hello")) || tr.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestSequentialMapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(nil)
	ref := map[string]uint64{}
	for i := 0; i < 20000; i++ {
		k := make([]byte, 1+rng.Intn(6))
		for j := range k {
			k[j] = byte(rng.Intn(8))
		}
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			repl := tr.Put(k, v)
			if _, had := ref[string(k)]; had != repl {
				t.Fatalf("op %d: Put replaced=%v, want %v (key %x)", i, repl, had, k)
			}
			ref[string(k)] = v
		case 2:
			v, ok := tr.Get(k)
			rv, rok := ref[string(k)]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%x) = (%d,%v), want (%d,%v)", i, k, v, ok, rv, rok)
			}
		case 3:
			del := tr.Delete(k)
			if _, had := ref[string(k)]; had != del {
				t.Fatalf("op %d: Delete(%x) = %v, want %v", i, k, del, had)
			}
			delete(ref, string(k))
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != %d", i, tr.Len(), len(ref))
		}
	}
	for k, want := range ref {
		if v, ok := tr.Get([]byte(k)); !ok || v != want {
			t.Fatalf("final Get(%x) = (%d,%v), want %d", k, v, ok, want)
		}
	}
}

func TestPrefixKeysConcurrentTree(t *testing.T) {
	tr := New(nil)
	keys := [][]byte{[]byte("a"), []byte("ab"), []byte("abc"), []byte("abd"), []byte("b")}
	for i, k := range keys {
		tr.Put(k, uint64(i))
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = (%d,%v)", k, v, ok)
		}
	}
	if !tr.Delete([]byte("ab")) {
		t.Fatal("delete embedded key failed")
	}
	for _, k := range [][]byte{[]byte("a"), []byte("abc"), []byte("abd")} {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("lost %q", k)
		}
	}
}

func TestGrowAllLayouts(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 256; i++ {
		tr.Put([]byte{1, byte(i)}, uint64(i))
	}
	for i := 0; i < 256; i++ {
		if v, ok := tr.Get([]byte{1, byte(i)}); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	tr := New(nil)
	const keys = 2000
	for i := 0; i < keys; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers continuously verify loaded keys map to plausible values.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := uint64(rng.Intn(keys))
				v, ok := tr.Get(key64(i))
				if ok && v != i && v != i+1000000 {
					t.Errorf("reader saw impossible value %d for key %d", v, i)
					return
				}
			}
		}(int64(r))
	}
	// Writers overwrite and insert.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for j := 0; j < 20000; j++ {
				i := uint64(rng.Intn(keys))
				if rng.Intn(2) == 0 {
					tr.Put(key64(i), i+1000000)
				} else {
					tr.Put(key64(uint64(keys)+uint64(rng.Intn(keys))), 7)
				}
			}
		}(int64(w))
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers terminate on their own; readers need the signal. Wait for
	// writer completion by re-joining after signaling readers.
	for i := 0; i < 4; i++ {
		// Writers have bounded loops; spin-wait via the waitgroup below.
		break
	}
	close(stop)
	<-done
	// All original keys still present.
	for i := 0; i < keys; i++ {
		if _, ok := tr.Get(key64(uint64(i))); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestConcurrentDistinctInserts(t *testing.T) {
	// W goroutines insert disjoint key ranges; all must land.
	tr := New(nil)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := uint64(w*perWorker + i)
				tr.Put(key64(v), v)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8*perWorker {
		t.Fatalf("Len = %d, want %d", tr.Len(), 8*perWorker)
	}
	for i := 0; i < 8*perWorker; i++ {
		if v, ok := tr.Get(key64(uint64(i))); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestConcurrentSameHotNode(t *testing.T) {
	// All workers hammer children of one node: maximal lock contention,
	// exercising grow races and slot races.
	tr := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 10000; i++ {
				b := byte(rng.Intn(256))
				tr.Put([]byte{0x42, b}, uint64(w))
			}
		}(w)
	}
	wg.Wait()
	n := 0
	for b := 0; b < 256; b++ {
		if _, ok := tr.Get([]byte{0x42, byte(b)}); ok {
			n++
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len %d != reachable %d", tr.Len(), n)
	}
	if n < 250 {
		t.Fatalf("only %d of 256 slots populated", n)
	}
}

func TestConcurrentDeletes(t *testing.T) {
	tr := New(nil)
	const n = 8000
	for i := 0; i < n; i++ {
		tr.Put(key64(uint64(i)), uint64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker deletes its own residue class: disjoint sets.
			for i := w; i < n; i += 4 {
				if !tr.Delete(key64(uint64(i))) {
					t.Errorf("Delete(%d) failed", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	for i := 0; i < n; i += 97 {
		if _, ok := tr.Get(key64(uint64(i))); ok {
			t.Fatalf("key %d resurrected", i)
		}
	}
}

func TestConcurrentMixedChurn(t *testing.T) {
	// Unrestricted put/get/delete churn over a small hot key space with
	// short prefix-heavy keys: maximal structural racing. Run under
	// -race in CI; assertions here are reachability + size sanity.
	tr := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 8000; i++ {
				k := make([]byte, 1+rng.Intn(4))
				for j := range k {
					k[j] = byte(rng.Intn(6))
				}
				switch rng.Intn(3) {
				case 0:
					tr.Put(k, rng.Uint64())
				case 1:
					tr.Get(k)
				case 2:
					tr.Delete(k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Size must equal the number of reachable keys.
	count := 0
	var enumerate func(prefix []byte, depth int)
	// Enumerate the tiny key space exhaustively (alphabet 6, len <= 4).
	var rec func(k []byte)
	rec = func(k []byte) {
		if len(k) > 0 {
			if _, ok := tr.Get(k); ok {
				count++
			}
		}
		if len(k) == 4 {
			return
		}
		for b := 0; b < 6; b++ {
			rec(append(k, byte(b)))
		}
	}
	_ = enumerate
	rec(nil)
	if tr.Len() != count {
		t.Fatalf("Len %d != reachable %d", tr.Len(), count)
	}
}

func TestCASModeCountsAtomics(t *testing.T) {
	ms := metrics.NewSet()
	tr := New(ms, CASValueUpdates())
	tr.Put([]byte("k"), 1)
	base := ms.Get(metrics.CtrAtomicOps)
	tr.Put([]byte("k"), 2) // overwrite: CAS fast path
	if ms.Get(metrics.CtrAtomicOps) != base+1 {
		t.Fatal("CAS overwrite did not count an atomic op")
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatal("CAS overwrite lost")
	}
}

func TestLockModeCountsAcquisitions(t *testing.T) {
	ms := metrics.NewSet()
	tr := New(ms)
	tr.Put([]byte("k"), 1)
	base := ms.Get(metrics.CtrLockAcquire)
	tr.Put([]byte("k"), 2) // overwrite: leaf write lock
	if ms.Get(metrics.CtrLockAcquire) <= base {
		t.Fatal("lock-mode overwrite did not count a lock acquisition")
	}
}

func TestMetricsOpsCounts(t *testing.T) {
	ms := metrics.NewSet()
	tr := New(ms)
	for i := 0; i < 10; i++ {
		tr.Put(key64(uint64(i)), 0)
	}
	for i := 0; i < 7; i++ {
		tr.Get(key64(uint64(i)))
	}
	if ms.Get(metrics.CtrOpsWrite) != 10 || ms.Get(metrics.CtrOpsRead) != 7 {
		t.Fatalf("op counts: %s", ms)
	}
	if ms.Get(metrics.CtrKeyMatches) == 0 {
		t.Fatal("no key matches counted")
	}
}

func TestDeleteRootLeaf(t *testing.T) {
	tr := New(nil)
	tr.Put([]byte("solo"), 9)
	if !tr.Delete([]byte("solo")) {
		t.Fatal("delete root leaf failed")
	}
	if _, ok := tr.Get([]byte("solo")); ok {
		t.Fatal("root leaf survived")
	}
	// Reinsert works after the root was cleared.
	tr.Put([]byte("solo"), 10)
	if v, _ := tr.Get([]byte("solo")); v != 10 {
		t.Fatal("reinsert after root delete failed")
	}
}

func TestDeletePrefixLeaf(t *testing.T) {
	tr := New(nil)
	tr.Put([]byte("ab"), 1)
	tr.Put([]byte("abc"), 2)
	tr.Put([]byte("abd"), 3)
	if !tr.Delete([]byte("ab")) {
		t.Fatal("delete prefix leaf failed")
	}
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("prefix leaf survived")
	}
	if tr.Delete([]byte("ab")) {
		t.Fatal("double delete succeeded")
	}
}

func ExampleTree() {
	tr := New(nil)
	tr.Put([]byte("alpha"), 1)
	tr.Put([]byte("beta"), 2)
	v, ok := tr.Get([]byte("alpha"))
	fmt.Println(v, ok, tr.Len())
	// Output: 1 true 2
}
