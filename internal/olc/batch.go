package olc

import (
	"bytes"
	"sort"
	"sync/atomic"
)

// Batch API: one sorted, lock-coupled descent serves a whole batch of
// keys. This is the software form of the paper's Trigger property — one
// traversal and one per-node lock acquisition amortized over every
// operation that passes through that node — and of the level-wise batch
// search used by FPGA B+-tree accelerators: keys are sorted once, then the
// tree is walked top-down with each node visited exactly once per batch,
// the key set partitioned into per-child runs as the walk descends.
//
// Concurrency: the descent uses the same hand-over-hand read-lock coupling
// as Get and Walk (the child's lock is acquired before the parent's is
// released), so every node is observed in a consistent state and writers
// are excluded per-node, never globally. Like Walk, a batch is not a
// snapshot: operations racing the descent may land before or after
// individual keys' visits. Each key's result linearizes at its own leaf
// access, which is exactly the contract per-key callers already have.

// BatchKind selects the operation an ApplyBatch entry performs.
type BatchKind uint8

const (
	BatchGet BatchKind = iota
	BatchPut
	BatchDelete
)

// BatchOp is one entry in an ApplyBatch call.
type BatchOp struct {
	Kind  BatchKind
	Key   []byte
	Value uint64 // BatchPut only
}

// BatchResult is one entry's outcome: for a get, the value and presence;
// for a put, whether an existing value was replaced; for a delete, whether
// the key was present.
type BatchResult struct {
	Value uint64
	Found bool
}

// BatchLoc is the location information one shared descent yields for one
// key: the key's live leaf (when present) and the deepest internal node
// entered on the key's path (the insert anchor a structural fallback
// starts from).
type BatchLoc struct {
	Leaf LeafRef
	Ins  Ref
}

// BatchStats summarizes one shared descent (or one Get/ApplyBatch call).
type BatchStats struct {
	// SharedDescents is 1 when a lock-coupled batch traversal ran (0 for an
	// empty batch or an empty tree).
	SharedDescents int
	// NodesVisited counts tree nodes the shared descent touched — the
	// quantity a per-key execution would multiply by the batch size.
	NodesVisited int
	// Fallbacks counts operations that could not be served from their
	// located position and fell back to a per-key root operation.
	Fallbacks int
	// Anchor is the deepest internal node through which EVERY key of the
	// batch descended, bounded by the anchorMaxDepth passed to LocateBatch.
	// Callers cache it (the P-CTT hotset) to start the bucket's next batch
	// descent below the root. Invalid when the batch spread across subtrees
	// above the bound or the tree is rooted at a bare leaf.
	Anchor Ref
}

// LocateBatch resolves every key's location in one shared descent.
//
// keys need not be sorted or distinct (the descent sorts an index
// permutation internally); locs must have at least len(keys) entries and
// is fully overwritten. A key that is absent gets a zero Leaf but still a
// valid Ins anchor when one exists.
//
// from, when valid, starts the descent at a previously cached anchor
// instead of the root. The caller must guarantee every key's path passes
// through that anchor: len(key) >= from.Depth() and the key's leading
// from.Depth() bytes equal the anchor's path (the P-CTT hotset stores
// those bytes alongside the Ref for exactly this check). ok=false means
// the anchor went obsolete; the caller invalidates it and retries from the
// root (pass a zero Ref).
//
// anchorMaxDepth bounds how deep a returned Anchor may sit. Callers that
// re-derive anchors from key distributions (one per combine bucket) keep
// it at the bucket-label depth so a cached anchor never over-commits to a
// subtree narrower than the bucket.
func (t *Tree) LocateBatch(from Ref, anchorMaxDepth int, keys [][]byte, locs []BatchLoc) (BatchStats, bool) {
	var st BatchStats
	if len(keys) == 0 {
		return st, true
	}
	for i := range locs[:len(keys)] {
		locs[i] = BatchLoc{}
	}

	n, depth := from.n, from.depth
	if n != nil {
		t.rlock(n)
		if n.obsolete.Load() || n.kind == kLeaf {
			n.mu.RUnlock()
			return st, false
		}
	} else {
		n = t.root.Load()
		if n == nil {
			return st, true // every key absent; no anchor exists
		}
		t.rlock(n)
		if n.kind == kLeaf {
			// Bare-leaf root: compare in place, no descent to share.
			st.SharedDescents, st.NodesVisited = 1, 1
			atomic.AddInt64(t.cNodeAccesses, 1)
			atomic.AddInt64(t.cKeyMatches, int64(len(keys)))
			for i, k := range keys {
				if bytes.Equal(n.key, k) {
					locs[i].Leaf = LeafRef{l: n}
				}
			}
			n.mu.RUnlock()
			atomic.AddInt64(t.cSharedDescents, 1)
			return st, true
		}
		depth = 0
	}

	// Sorted index permutation: prefix-sharing keys become contiguous, so
	// the descent partitions them into per-child runs with one linear scan
	// per node.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0
	})

	st.SharedDescents = 1
	t.visitBatch(n, depth, keys, idx, locs, &st, len(keys), anchorMaxDepth)
	atomic.AddInt64(t.cSharedDescents, 1)
	return st, true
}

// visitBatch resolves the keys in idx (sorted, all sharing the path to n)
// against internal node n, entered at the given key depth. The caller
// holds n's read lock; visitBatch releases it after the last child visit
// begins (hand-over-hand, as in walkLocked).
func (t *Tree) visitBatch(n *node, depth int, keys [][]byte, idx []int,
	locs []BatchLoc, st *BatchStats, full, anchorMax int) {

	st.NodesVisited++
	atomic.AddInt64(t.cNodeAccesses, 1)
	atomic.AddInt64(t.cKeyMatches, int64(len(idx)))
	if len(idx) == full && depth <= anchorMax {
		// Every key of the batch passes through n: a candidate anchor for
		// the bucket's next batch. Deeper candidates overwrite shallower
		// ones; the depth bound keeps the anchor no narrower than the
		// bucket label.
		st.Anchor = Ref{n: n, depth: depth}
	}

	p := n.prefix
	d2 := depth + len(p)
	i := 0
	for i < len(idx) {
		k := keys[idx[i]]
		if len(k)-depth < len(p) || !bytes.Equal(k[depth:d2], p) {
			// Diverges inside n's compressed path: absent; an insert would
			// split n itself, so the anchor is n (PutAt reports fallback).
			locs[idx[i]].Ins = Ref{n: n, depth: depth}
			i++
			continue
		}
		if len(k) == d2 {
			// Terminates at n: the prefix-leaf position. The leaf pointer is
			// stable while we hold n's lock (deletes detach it under n's
			// write lock).
			if pl := n.prefixLeaf; pl != nil {
				locs[idx[i]].Leaf = LeafRef{l: pl}
			}
			locs[idx[i]].Ins = Ref{n: n, depth: depth}
			i++
			continue
		}
		// Run of keys sharing the next branch byte. Sorted order makes the
		// run contiguous: every key between two keys with the same d2-byte
		// prefix shares that prefix.
		b := k[d2]
		j := i + 1
		for j < len(idx) {
			kj := keys[idx[j]]
			if len(kj)-depth < len(p) || !bytes.Equal(kj[depth:d2], p) ||
				len(kj) == d2 || kj[d2] != b {
				break
			}
			j++
		}
		c := n.findChild(b)
		switch {
		case c == nil:
			for ; i < j; i++ {
				locs[idx[i]].Ins = Ref{n: n, depth: depth}
			}
		case c.kind == kLeaf:
			// Leaf keys are immutable and the edge cannot be deleted while
			// we hold n's lock, so the compare needs no child lock.
			st.NodesVisited++
			atomic.AddInt64(t.cNodeAccesses, 1)
			atomic.AddInt64(t.cKeyMatches, int64(j-i))
			for ; i < j; i++ {
				ix := idx[i]
				if bytes.Equal(c.key, keys[ix]) {
					locs[ix].Leaf = LeafRef{l: c}
				}
				locs[ix].Ins = Ref{n: n, depth: depth}
			}
		default:
			t.rlock(c)
			t.visitBatch(c, d2+1, keys, idx[i:j], locs, st, full, anchorMax)
			i = j
		}
	}
	n.mu.RUnlock()
}

// GetBatch reads every key with one shared descent, writing results into
// out (which must have at least len(keys) entries). Each read linearizes
// at its leaf access, exactly like an individual Get; a key deleted
// between the descent and its read falls back to a per-key Get.
func (t *Tree) GetBatch(keys [][]byte, out []BatchResult) BatchStats {
	locs := make([]BatchLoc, len(keys))
	st, _ := t.LocateBatch(Ref{}, 0, keys, locs)
	for i, k := range keys {
		if l := locs[i].Leaf; l.Valid() {
			if v, ok := t.GetLeaf(l); ok {
				out[i] = BatchResult{Value: v, Found: true}
				continue
			}
			st.Fallbacks++
			atomic.AddInt64(t.cBatchFallbks, 1)
			v, ok := t.Get(k)
			out[i] = BatchResult{Value: v, Found: ok}
			continue
		}
		atomic.AddInt64(t.cOpsRead, 1)
		out[i] = BatchResult{}
	}
	return st
}

// ApplyBatch executes a mixed batch in entry order with one shared
// descent: located keys are read and overwritten through their leaf refs
// (lock-free), inserts re-enter the tree at the key's deepest located
// internal node, and deletes (plus any later operation on a key a
// structural fallback touched) run as ordinary per-key operations so
// in-batch per-key ordering is preserved. out must have at least len(ops)
// entries.
func (t *Tree) ApplyBatch(ops []BatchOp, out []BatchResult) BatchStats {
	keys := make([][]byte, len(ops))
	for i := range ops {
		keys[i] = ops[i].Key
	}
	locs := make([]BatchLoc, len(ops))
	st, _ := t.LocateBatch(Ref{}, 0, keys, locs)

	// dirty marks keys whose tree location changed during this batch
	// (insert or delete): their cached locs are stale, so later operations
	// on them go per-key.
	var dirty map[string]struct{}
	markDirty := func(k []byte) {
		if dirty == nil {
			dirty = make(map[string]struct{})
		}
		dirty[string(k)] = struct{}{}
	}
	fallback := func() {
		st.Fallbacks++
		atomic.AddInt64(t.cBatchFallbks, 1)
	}

	for i := range ops {
		op := &ops[i]
		if _, stale := dirty[string(op.Key)]; stale {
			fallback()
			switch op.Kind {
			case BatchGet:
				v, ok := t.Get(op.Key)
				out[i] = BatchResult{Value: v, Found: ok}
			case BatchPut:
				out[i] = BatchResult{Value: op.Value, Found: t.Put(op.Key, op.Value)}
			case BatchDelete:
				out[i] = BatchResult{Found: t.Delete(op.Key)}
			}
			continue
		}
		switch op.Kind {
		case BatchGet:
			if l := locs[i].Leaf; l.Valid() {
				if v, ok := t.GetLeaf(l); ok {
					out[i] = BatchResult{Value: v, Found: true}
					continue
				}
				fallback()
				v, ok := t.Get(op.Key)
				out[i] = BatchResult{Value: v, Found: ok}
				continue
			}
			atomic.AddInt64(t.cOpsRead, 1)
			out[i] = BatchResult{}
		case BatchPut:
			if l := locs[i].Leaf; l.Valid() && t.PutLeaf(l, op.Value) {
				out[i] = BatchResult{Value: op.Value, Found: true}
				continue
			}
			// Insert (or the located leaf died): re-enter at the deepest
			// located internal node, then the root. Either way the key's
			// leaf is no longer the located one.
			fallback()
			replaced, done := false, false
			if r := locs[i].Ins; r.Valid() {
				replaced, done = t.PutAt(r, op.Key, op.Value)
			}
			if !done {
				replaced = t.Put(op.Key, op.Value)
			}
			out[i] = BatchResult{Value: op.Value, Found: replaced}
			markDirty(op.Key)
		case BatchDelete:
			out[i] = BatchResult{Found: t.Delete(op.Key)}
			markDirty(op.Key)
		}
	}
	return st
}
