package olc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func shortcutKeys(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		k := fmt.Sprintf("user:%04x:%03d\x00", rng.Intn(1<<16), rng.Intn(1000))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, []byte(k))
		}
	}
	return keys
}

// TestLocateGetAt: a Ref obtained from Locate must answer GetAt exactly
// like a root Get, for present and absent keys.
func TestLocateGetAt(t *testing.T) {
	tr := New(nil)
	keys := shortcutKeys(3000, 7)
	for i, k := range keys {
		tr.Put(k, uint64(i))
	}
	for i, k := range keys {
		ref, ok := tr.Locate(k)
		if !ok {
			t.Fatalf("Locate(%q) failed", k)
		}
		v, found, ok := tr.GetAt(ref, k)
		if !ok || !found || v != uint64(i) {
			t.Fatalf("GetAt(%q) = (%d,%v,%v), want (%d,true,true)", k, v, found, ok, i)
		}
	}
	// Absent keys: the shortcut for a miss still answers correctly.
	absent := []byte("user:zzzz:999\x00")
	ref, ok := tr.Locate(absent)
	if !ok {
		t.Fatal("Locate(absent) failed")
	}
	if _, found, ok := tr.GetAt(ref, absent); !ok || found {
		t.Fatalf("GetAt(absent) = (found=%v, ok=%v), want (false, true)", found, ok)
	}
}

// TestPutAtInsertAndUpdate: puts through a Ref must behave like root puts,
// including value updates and fresh inserts below the reference.
func TestPutAtInsertAndUpdate(t *testing.T) {
	tr := New(nil)
	ref := map[string]uint64{}
	keys := shortcutKeys(2000, 8)
	for i, k := range keys {
		if i%2 == 0 {
			tr.Put(k, uint64(i))
			ref[string(k)] = uint64(i)
		}
	}
	for i, k := range keys {
		r, ok := tr.Locate(k)
		if !ok {
			t.Fatalf("Locate failed for %q", k)
		}
		want := uint64(i) + 1_000_000
		replaced, ok := tr.PutAt(r, k, want)
		if !ok {
			// Structural change at the reference node: fall back like a
			// real caller would.
			replaced = tr.Put(k, want)
		}
		_, existed := ref[string(k)]
		if replaced != existed {
			t.Fatalf("PutAt(%q) replaced=%v, want %v", k, replaced, existed)
		}
		ref[string(k)] = want
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
	}
	for ks, want := range ref {
		if v, ok := tr.Get([]byte(ks)); !ok || v != want {
			t.Fatalf("Get(%q) = (%d,%v), want %d", ks, v, ok, want)
		}
	}
}

// TestStaleRefAfterGrow: growing a node obsoletes it; a Ref to the old
// node must report ok=false instead of wrong answers.
func TestStaleRefAfterGrow(t *testing.T) {
	tr := New(nil)
	// Root N4 over keys aa,ab,ac: locate refs point at the root node.
	for _, k := range []string{"aa\x00", "ab\x00", "ac\x00"} {
		tr.Put([]byte(k), 1)
	}
	key := []byte("aa\x00")
	ref, ok := tr.Locate(key)
	if !ok {
		t.Fatal("Locate failed")
	}
	// Force the root N4 to grow to N16 (5+ children), replacing it.
	for c := byte('d'); c <= 'h'; c++ {
		tr.Put([]byte{'a', c, 0}, 2)
	}
	if _, _, ok := tr.GetAt(ref, key); ok {
		t.Fatal("GetAt on a grown-away node reported ok=true")
	}
	if _, ok := tr.PutAt(ref, key, 9); ok {
		t.Fatal("PutAt on a grown-away node reported ok=true")
	}
	// A refreshed ref works again.
	ref2, ok := tr.Locate(key)
	if !ok {
		t.Fatal("re-Locate failed")
	}
	if v, found, ok := tr.GetAt(ref2, key); !ok || !found || v != 1 {
		t.Fatalf("refreshed GetAt = (%d,%v,%v)", v, found, ok)
	}
}

// TestShortcutConcurrent hammers GetAt/PutAt refs while other goroutines
// force structural churn; run under -race. Stale refs must fail cleanly
// (ok=false), never corrupt the tree.
func TestShortcutConcurrent(t *testing.T) {
	tr := New(nil)
	const perG, G = 400, 4
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			refs := map[string]Ref{}
			var k [9]byte
			for i := 0; i < perG*8; i++ {
				binary.BigEndian.PutUint64(k[:8], uint64(rng.Intn(perG*G)))
				key := k[:]
				ks := string(key)
				r, haveRef := refs[ks]
				switch rng.Intn(3) {
				case 0:
					if haveRef {
						if _, _, ok := tr.GetAt(r, key); ok {
							break
						}
						delete(refs, ks)
					}
					tr.Get(key)
				case 1:
					v := uint64(i)
					if haveRef {
						if _, ok := tr.PutAt(r, key, v); ok {
							break
						}
						delete(refs, ks)
					}
					tr.Put(key, v)
				default:
					if nr, ok := tr.Locate(key); ok {
						refs[ks] = nr
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The tree must still be fully consistent: every present key readable.
	n := 0
	tr.Walk(func(key []byte, v uint64) bool {
		if got, ok := tr.Get(key); !ok || got != v {
			t.Errorf("walked key %x unreadable: (%d,%v) want %d", key, got, ok, v)
		}
		n++
		return true
	})
	if n != tr.Len() {
		t.Fatalf("walk saw %d keys, Len=%d", n, tr.Len())
	}
}

// TestLeafRefLifecycle: a LeafRef answers reads and writes for the key's
// whole lifetime, survives structural churn around it, and dies exactly at
// delete.
func TestLeafRefLifecycle(t *testing.T) {
	tr := New(nil)
	key := []byte("aa\x00")
	tr.Put(key, 1)
	ref, ok := tr.LocateLeaf(key)
	if !ok {
		t.Fatal("LocateLeaf failed")
	}
	if v, ok := tr.GetLeaf(ref); !ok || v != 1 {
		t.Fatalf("GetLeaf = (%d,%v)", v, ok)
	}
	// Structural churn: grow the surrounding node repeatedly (N4->N16->N48)
	// and force leaf splits along shared paths. The leaf must survive.
	for c := byte('b'); c <= 'z'; c++ {
		tr.Put([]byte{'a', c, 0}, 2)
	}
	tr.Put([]byte("aa:deeper\x00"), 3) // splits aa's leaf position
	if v, ok := tr.GetLeaf(ref); !ok || v != 1 {
		t.Fatalf("GetLeaf after churn = (%d,%v)", v, ok)
	}
	if !tr.PutLeaf(ref, 9) {
		t.Fatal("PutLeaf failed on live leaf")
	}
	if v, _ := tr.Get(key); v != 9 {
		t.Fatalf("PutLeaf not visible via Get: %d", v)
	}
	if !tr.Delete(key) {
		t.Fatal("delete failed")
	}
	if _, ok := tr.GetLeaf(ref); ok {
		t.Fatal("GetLeaf on deleted leaf reported ok")
	}
	if tr.PutLeaf(ref, 10) {
		t.Fatal("PutLeaf on deleted leaf reported ok")
	}
	// Re-inserting the key makes a NEW leaf; the old ref stays dead, a
	// fresh one works.
	tr.Put(key, 11)
	if _, ok := tr.GetLeaf(ref); ok {
		t.Fatal("stale ref revived after reinsert")
	}
	ref2, ok := tr.LocateLeaf(key)
	if !ok {
		t.Fatal("re-LocateLeaf failed")
	}
	if v, ok := tr.GetLeaf(ref2); !ok || v != 11 {
		t.Fatalf("fresh ref = (%d,%v)", v, ok)
	}
}

// TestLeafRefPrefixLeaf: keys terminating inside a compressed path live in
// prefix leaves; their refs behave identically.
func TestLeafRefPrefixLeaf(t *testing.T) {
	tr := New(nil)
	tr.Put([]byte("user"), 1) // becomes a prefix leaf once user:* arrive
	tr.Put([]byte("user:a\x00"), 2)
	tr.Put([]byte("user:b\x00"), 3)
	ref, ok := tr.LocateLeaf([]byte("user"))
	if !ok {
		t.Fatal("LocateLeaf on prefix-leaf key failed")
	}
	if v, ok := tr.GetLeaf(ref); !ok || v != 1 {
		t.Fatalf("GetLeaf = (%d,%v)", v, ok)
	}
	if !tr.Delete([]byte("user")) {
		t.Fatal("delete failed")
	}
	if _, ok := tr.GetLeaf(ref); ok {
		t.Fatal("deleted prefix leaf still readable via ref")
	}
}

// TestLeafRefConcurrent: cached leaf refs under concurrent structural
// churn; run under -race. Stale refs must fail cleanly.
func TestLeafRefConcurrent(t *testing.T) {
	tr := New(nil)
	const perG, G = 300, 4
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 50))
			refs := map[string]LeafRef{}
			var k [9]byte
			for i := 0; i < perG*8; i++ {
				binary.BigEndian.PutUint64(k[:8], uint64(rng.Intn(perG*G)))
				key := k[:]
				ks := string(key)
				r, haveRef := refs[ks]
				switch rng.Intn(4) {
				case 0:
					if haveRef {
						if _, ok := tr.GetLeaf(r); ok {
							break
						}
						delete(refs, ks)
					}
					tr.Get(key)
				case 1:
					if haveRef {
						if tr.PutLeaf(r, uint64(i)) {
							break
						}
						delete(refs, ks)
					}
					tr.Put(key, uint64(i))
				case 2:
					tr.Delete(key)
					delete(refs, ks)
				default:
					if nr, ok := tr.LocateLeaf(key); ok {
						refs[ks] = nr
					}
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	tr.Walk(func(key []byte, v uint64) bool {
		if got, ok := tr.Get(key); !ok || got != v {
			t.Errorf("walked key %x unreadable: (%d,%v) want %d", key, got, ok, v)
		}
		n++
		return true
	})
	if n != tr.Len() {
		t.Fatalf("walk saw %d keys, Len=%d", n, tr.Len())
	}
}
