package olc

import (
	"fmt"
	"testing"
)

// Batch-descent microbenchmarks: the same 64-key bucket batch resolved
// through one shared LocateBatch-backed call versus 64 independent root
// descents. Run via `make bench-batch`.

const batchBenchKeys = 64

// benchBatchTree loads a tree shaped like one combine bucket's keyspace:
// a shared stem, then per-key suffixes wide enough to build multi-level
// interior structure.
func benchBatchTree(b *testing.B) (*Tree, [][]byte) {
	b.Helper()
	tr := New(nil)
	var keys [][]byte
	for i := 0; i < 4096; i++ {
		k := []byte(fmt.Sprintf("ip:%02x:%04d", i%256, i))
		tr.Put(k, uint64(i))
		if i%(4096/batchBenchKeys) == 0 {
			keys = append(keys, k)
		}
	}
	return tr, keys[:batchBenchKeys]
}

func BenchmarkBatchDescentGet(b *testing.B) {
	tr, keys := benchBatchTree(b)
	out := make([]BatchResult, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.GetBatch(keys, out)
	}
	b.ReportMetric(float64(len(keys)), "keys/batch")
}

func BenchmarkBatchDescentGetPerOp(b *testing.B) {
	tr, keys := benchBatchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			tr.Get(k)
		}
	}
	b.ReportMetric(float64(len(keys)), "keys/batch")
}

func BenchmarkBatchDescentApply(b *testing.B) {
	tr, keys := benchBatchTree(b)
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		kind := BatchGet
		if i%2 == 0 {
			kind = BatchPut
		}
		ops[i] = BatchOp{Kind: kind, Key: k, Value: uint64(i)}
	}
	out := make([]BatchResult, len(ops))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyBatch(ops, out)
	}
	b.ReportMetric(float64(len(ops)), "keys/batch")
}

func BenchmarkBatchDescentApplyPerOp(b *testing.B) {
	tr, keys := benchBatchTree(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range keys {
			if j%2 == 0 {
				tr.Put(k, uint64(j))
			} else {
				tr.Get(k)
			}
		}
	}
	b.ReportMetric(float64(len(keys)), "keys/batch")
}

// BenchmarkBatchDescentAnchored measures the additional saving from
// starting the shared descent at a cached interior anchor (the P-CTT
// hotset's read path) instead of the root.
func BenchmarkBatchDescentAnchored(b *testing.B) {
	tr, keys := benchBatchTree(b)
	locs := make([]BatchLoc, len(keys))
	st, ok := tr.LocateBatch(Ref{}, 16, keys, locs)
	if !ok || !st.Anchor.Valid() {
		b.Skip("no common anchor for this key shape")
	}
	anchor := st.Anchor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.LocateBatch(anchor, 16, keys, locs); !ok {
			b.Fatal("anchor went stale")
		}
	}
	b.ReportMetric(float64(len(keys)), "keys/batch")
}
