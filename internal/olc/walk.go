package olc

// Walk visits key/value pairs in ascending key order using lock crabbing:
// the walker holds read locks on the root-to-current path, so each visited
// node is observed in a consistent state. Writers into the locked path
// wait; writers elsewhere proceed. The scan is not a snapshot — keys
// inserted or removed elsewhere during the walk may or may not be seen,
// which is the usual contract for concurrent ordered maps.
//
// fn returning false stops the walk; Walk reports whether it completed.
func (t *Tree) Walk(fn func(key []byte, value uint64) bool) bool {
	n := t.root.Load()
	if n == nil {
		return true
	}
	t.rlock(n)
	return t.walkLocked(n, fn)
}

// ScanPrefix visits, in ascending order, every key starting with prefix,
// under the same locking discipline as Walk. It descends directly to the
// prefix's subtree, so cost is O(depth + matches).
func (t *Tree) ScanPrefix(prefix []byte, fn func(key []byte, value uint64) bool) bool {
	n := t.root.Load()
	if n == nil {
		return true
	}
	t.rlock(n)
	depth := 0
	for {
		if n.kind == kLeaf {
			defer n.mu.RUnlock()
			if len(n.key) >= len(prefix) && equalPrefix(n.key, prefix) {
				return fn(n.key, n.value.Load())
			}
			return true
		}
		p := n.prefix
		rem := prefix[depth:]
		if len(rem) <= len(p) {
			// Prefix ends inside this node's compressed path.
			if equalPrefix(p, rem) {
				return t.walkLocked(n, fn)
			}
			n.mu.RUnlock()
			return true
		}
		if !equalPrefix(rem, p) {
			n.mu.RUnlock()
			return true
		}
		depth += len(p)
		if depth == len(prefix) {
			return t.walkLocked(n, fn)
		}
		c := n.findChild(prefix[depth])
		if c == nil {
			n.mu.RUnlock()
			return true
		}
		t.rlock(c)
		n.mu.RUnlock()
		n = c
		depth++
	}
}

// AscendRange visits keys k with lo <= k <= hi in ascending order under
// the Walk locking discipline (nil bounds are open). The scan terminates
// as soon as it passes hi; keys below lo are skipped.
func (t *Tree) AscendRange(lo, hi []byte, fn func(key []byte, value uint64) bool) bool {
	return t.Walk(func(k []byte, v uint64) bool {
		if lo != nil && compareKeys(k, lo) < 0 {
			return true
		}
		if hi != nil && compareKeys(k, hi) > 0 {
			return false
		}
		return fn(k, v)
	})
}

func compareKeys(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// equalPrefix reports whether a and b agree on their first
// min(len(a), len(b)) bytes.
func equalPrefix(a, b []byte) bool {
	n := len(b)
	if len(a) < n {
		n = len(a)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walkLocked visits n's subtree; the caller holds n's read lock, which
// walkLocked releases before returning.
func (t *Tree) walkLocked(n *node, fn func(key []byte, value uint64) bool) bool {
	defer n.mu.RUnlock()
	if n.kind == kLeaf {
		return fn(n.key, n.value.Load())
	}
	if pl := n.prefixLeaf; pl != nil {
		// The embedded leaf sorts before every key below this node.
		if !fn(pl.key, pl.value.Load()) {
			return false
		}
	}
	visit := func(c *node) bool {
		t.rlock(c)
		return t.walkLocked(c, fn)
	}
	switch n.kind {
	case k4, k16:
		for _, c := range n.children {
			if !visit(c) {
				return false
			}
		}
	case k48:
		for b := 0; b < 256; b++ {
			if idx := n.index[b]; idx != 0 {
				if !visit(n.children[idx-1]) {
					return false
				}
			}
		}
	case k256:
		for _, c := range n.children {
			if c != nil {
				if !visit(c) {
					return false
				}
			}
		}
	}
	return true
}
