// Package olc implements a thread-safe adaptive radix tree with node-level
// lock coupling, the concurrency substrate for the paper's CPU baselines
// (ART [9] with its ROWEX-style node write locks, and the CAS-based
// variants Heart [17] and SMART [11]).
//
// Protocol:
//
//   - Readers descend with hand-over-hand read locks (the child's lock is
//     acquired before the parent's is released), so every node is observed
//     in a consistent state.
//   - Writers descend like readers, then upgrade: they release their read
//     lock, acquire write locks top-down (parent before child) and
//     re-validate that the structure did not change in the window; on any
//     validation failure the operation restarts from the root.
//   - Structural replacements (grow, prefix split) mark the old node
//     obsolete and swap the parent's child pointer; in-flight readers that
//     already entered the old node still see a consistent pre-change view.
//   - Deletes remove leaves but perform no node shrinking or path merging
//     (deferred compaction, as in several production concurrent tries), so
//     delete never invalidates a concurrent reader's prefix bookkeeping.
//
// With CASValueUpdates enabled (the Heart/SMART discipline), overwriting
// an existing key's value uses an atomic store on the leaf instead of
// taking the leaf's write lock, and the tree counts an atomic operation
// rather than a lock acquisition.
//
// Every lock acquisition, contention event (a Try*Lock that failed before
// blocking), atomic operation, and restart is recorded in the
// metrics.Set supplied at construction, feeding Figs 2(a), 2(d) and 7.
package olc

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// kind mirrors art.NodeKind for the concurrent node layouts.
type kind uint8

const (
	kLeaf kind = iota
	k4
	k16
	k48
	k256
)

func (k kind) capacity() int {
	switch k {
	case k4:
		return 4
	case k16:
		return 16
	case k48:
		return 48
	case k256:
		return 256
	default:
		return 0
	}
}

// node is a single concurrent ART node. One struct serves all layouts;
// the slices are sized by kind at construction. Leaves use key/value and
// leave the child machinery nil.
type node struct {
	mu sync.RWMutex
	// obsolete: node was replaced (internal) or deleted (leaf). Written
	// only under mu; atomic so lock-free leaf readers (GetLeaf/PutLeaf)
	// can check liveness without touching the node lock.
	obsolete atomic.Bool

	kind       kind
	prefix     []byte // under mu for writes; stable while any lock held
	prefixLeaf *node  // leaf whose key terminates at this node
	nChildren  int

	keys     []byte     // k4/k16: sorted key bytes
	index    *[256]byte // k48: byte -> child slot + 1
	children []*node    // all internal kinds

	key   []byte        // leaf: immutable full key
	value atomic.Uint64 // leaf: atomically updatable payload
}

// Tree is the concurrent ART. Construct with New.
type Tree struct {
	root atomic.Pointer[node]
	// rootMu guards replacement of the root pointer itself (the "parent
	// lock" of the root).
	rootMu sync.Mutex
	size   atomic.Int64

	// casValues selects the Heart/SMART value-update discipline.
	casValues bool
	ms        *metrics.Set

	// Hot-path counter cells, resolved once at construction so the
	// per-node instrumentation on descents costs one atomic add instead
	// of a string-map lookup plus an atomic add.
	cNodeAccesses, cKeyMatches     *int64
	cOpsRead, cOpsWrite            *int64
	cLockAcquire, cContention      *int64
	cAtomicOps, cRestarts          *int64
	cSharedDescents, cBatchFallbks *int64
}

// Option configures a Tree.
type Option func(*Tree)

// CASValueUpdates switches existing-key overwrites from leaf write locks
// to atomic stores (Heart's and SMART's CAS fast path).
func CASValueUpdates() Option {
	return func(t *Tree) { t.casValues = true }
}

// New returns an empty concurrent tree recording events into ms (which
// may be shared across trees; a nil ms gets a private set).
func New(ms *metrics.Set, opts ...Option) *Tree {
	if ms == nil {
		ms = metrics.NewSet()
	}
	t := &Tree{ms: ms}
	for _, o := range opts {
		o(t)
	}
	t.cNodeAccesses = ms.Counter(metrics.CtrNodeAccesses)
	t.cKeyMatches = ms.Counter(metrics.CtrKeyMatches)
	t.cOpsRead = ms.Counter(metrics.CtrOpsRead)
	t.cOpsWrite = ms.Counter(metrics.CtrOpsWrite)
	t.cLockAcquire = ms.Counter(metrics.CtrLockAcquire)
	t.cContention = ms.Counter(metrics.CtrLockContention)
	t.cAtomicOps = ms.Counter(metrics.CtrAtomicOps)
	t.cRestarts = ms.Counter(metrics.CtrRestarts)
	t.cSharedDescents = ms.Counter(metrics.CtrSharedDescents)
	t.cBatchFallbks = ms.Counter(metrics.CtrBatchFallbacks)
	return t
}

// Metrics returns the tree's counter set.
func (t *Tree) Metrics() *metrics.Set { return t.ms }

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// ---- lock instrumentation -----------------------------------------------

func (t *Tree) rlock(n *node) {
	if !n.mu.TryRLock() {
		atomic.AddInt64(t.cContention, 1)
		n.mu.RLock()
	}
}

func (t *Tree) wlock(n *node) {
	if !n.mu.TryLock() {
		atomic.AddInt64(t.cContention, 1)
		n.mu.Lock()
	}
	atomic.AddInt64(t.cLockAcquire, 1)
}

func (t *Tree) lockRoot() {
	if !t.rootMu.TryLock() {
		atomic.AddInt64(t.cContention, 1)
		t.rootMu.Lock()
	}
	atomic.AddInt64(t.cLockAcquire, 1)
}

// ---- node construction ---------------------------------------------------

func newLeaf(key []byte, value uint64) *node {
	l := &node{kind: kLeaf, key: append([]byte(nil), key...)}
	l.value.Store(value)
	return l
}

func newNode(k kind, prefix []byte) *node {
	n := &node{kind: k, prefix: prefix}
	switch k {
	case k4:
		n.keys = make([]byte, 0, 4)
		n.children = make([]*node, 0, 4)
	case k16:
		n.keys = make([]byte, 0, 16)
		n.children = make([]*node, 0, 16)
	case k48:
		n.index = new([256]byte)
		n.children = make([]*node, 0, 48)
	case k256:
		n.children = make([]*node, 256)
	}
	return n
}

// findChild returns the child for byte b; caller must hold n's lock.
func (n *node) findChild(b byte) *node {
	switch n.kind {
	case k4, k16:
		for i, kb := range n.keys {
			if kb == b {
				return n.children[i]
			}
		}
	case k48:
		if idx := n.index[b]; idx != 0 {
			return n.children[idx-1]
		}
	case k256:
		return n.children[b]
	}
	return nil
}

// addChild inserts (b, c); caller must hold n's write lock and have
// checked capacity.
func (n *node) addChild(b byte, c *node) {
	switch n.kind {
	case k4, k16:
		i := len(n.keys)
		n.keys = append(n.keys, 0)
		n.children = append(n.children, nil)
		for i > 0 && n.keys[i-1] > b {
			n.keys[i] = n.keys[i-1]
			n.children[i] = n.children[i-1]
			i--
		}
		n.keys[i] = b
		n.children[i] = c
	case k48:
		n.children = append(n.children, c)
		n.index[b] = byte(len(n.children))
	case k256:
		n.children[b] = c
	}
	n.nChildren++
}

// removeChild removes byte b; caller must hold n's write lock.
func (n *node) removeChild(b byte) {
	switch n.kind {
	case k4, k16:
		for i, kb := range n.keys {
			if kb == b {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.children = append(n.children[:i], n.children[i+1:]...)
				n.nChildren--
				return
			}
		}
	case k48:
		if idx := n.index[b]; idx != 0 {
			slot := int(idx) - 1
			last := len(n.children) - 1
			if slot != last {
				n.children[slot] = n.children[last]
				for kb := 0; kb < 256; kb++ {
					if int(n.index[kb]) == last+1 {
						n.index[kb] = byte(slot + 1)
						break
					}
				}
			}
			n.children = n.children[:last]
			n.index[b] = 0
			n.nChildren--
		}
	case k256:
		if n.children[b] != nil {
			n.children[b] = nil
			n.nChildren--
		}
	}
}

// grown returns a copy of n in the next larger layout; caller holds n's
// write lock.
func grown(n *node) *node {
	var g *node
	switch n.kind {
	case k4:
		g = newNode(k16, n.prefix)
		g.keys = append(g.keys, n.keys...)
		g.children = append(g.children, n.children...)
	case k16:
		g = newNode(k48, n.prefix)
		for i, kb := range n.keys {
			g.children = append(g.children, n.children[i])
			g.index[kb] = byte(len(g.children))
		}
	case k48:
		g = newNode(k256, n.prefix)
		for b := 0; b < 256; b++ {
			if idx := n.index[b]; idx != 0 {
				g.children[b] = n.children[idx-1]
			}
		}
	default:
		panic("olc: grow on non-growable node")
	}
	g.nChildren = n.nChildren
	g.prefixLeaf = n.prefixLeaf
	return g
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
