package olc

import (
	"bytes"
	"sync/atomic"
)

// Ref is an opaque Shortcut_Table reference into the tree: an internal
// node on a key's descent path plus the key depth consumed on entry to
// that node. It is the software analogue of the paper's
// <key, target-node, parent-node> shortcut entry (§III-C).
//
// A Ref is self-validating: structural changes in this tree never move a
// live internal node (grow and prefix splits replace the node and mark the
// old copy obsolete; deletes remove only leaves), so a Ref is usable until
// its node's obsolete flag is set. GetAt and PutAt re-check that flag
// under the node's lock and report ok=false when the reference went stale,
// at which point the caller falls back to a root descent and should
// refresh the shortcut with Locate.
type Ref struct {
	n     *node
	depth int
}

// Valid reports whether the Ref points at a node at all. It does not
// check staleness; that happens inside GetAt/PutAt.
func (r Ref) Valid() bool { return r.n != nil }

// Depth returns the key depth consumed on entry to the referenced node.
// Callers that descend from a Ref (LocateBatch) must only use keys that
// are at least this long and share the referenced path's leading bytes.
func (r Ref) Depth() int { return r.depth }

// Locate returns a shortcut reference for key: the deepest internal node
// entered while descending for key (typically the target leaf's parent).
// ok=false when the tree is empty or rooted at a bare leaf — no useful
// shortcut exists then.
func (t *Tree) Locate(key []byte) (Ref, bool) {
	n := t.root.Load()
	if n == nil || n.kind == kLeaf {
		return Ref{}, false
	}
	t.rlock(n)
	best := Ref{n: n, depth: 0}
	depth := 0
	for {
		p := n.prefix
		if len(key)-depth < len(p) || !bytes.Equal(key[depth:depth+len(p)], p) {
			// Divergence: key would be inserted under n; n is the shortcut.
			n.mu.RUnlock()
			return best, true
		}
		depth += len(p)
		if depth >= len(key) {
			// Key terminates at n (prefix-leaf position).
			n.mu.RUnlock()
			return best, true
		}
		c := n.findChild(key[depth])
		if c == nil || c.kind == kLeaf {
			n.mu.RUnlock()
			return best, true
		}
		t.rlock(c)
		n.mu.RUnlock()
		n = c
		depth++
		best = Ref{n: n, depth: depth}
	}
}

// GetAt performs Get starting from ref instead of the root, skipping the
// radix descent above it (the shortcut jump of Fig 8). ok=false means the
// reference is stale and the caller must fall back to Get; value and found
// are then meaningless.
func (t *Tree) GetAt(ref Ref, key []byte) (value uint64, found, ok bool) {
	n := ref.n
	if n == nil {
		return 0, false, false
	}
	t.rlock(n)
	if n.obsolete.Load() {
		n.mu.RUnlock()
		return 0, false, false
	}
	atomic.AddInt64(t.cOpsRead, 1)
	value, found = t.getDescend(n, ref.depth, key)
	return value, found, true
}

// PutAt performs one optimistic put attempt starting from ref. ok=false
// means the attempt could not complete from the reference (stale node, a
// structural change required at the reference node itself, or a failed
// optimistic validation); the caller must fall back to Put. On ok=true,
// replaced reports whether an existing value was overwritten.
func (t *Tree) PutAt(ref Ref, key []byte, value uint64) (replaced, ok bool) {
	n := ref.n
	if n == nil {
		return false, false
	}
	t.rlock(n)
	if n.obsolete.Load() {
		n.mu.RUnlock()
		return false, false
	}
	out, replaced := t.putDescend(n, nil, ref.depth, 0, key, value, false)
	if out != putDone {
		return false, false
	}
	atomic.AddInt64(t.cOpsWrite, 1)
	if !replaced {
		t.size.Add(1)
	}
	return replaced, true
}

// LeafRef is a stable reference to a key's leaf node — the strongest form
// of shortcut the tree supports. It relies on two structural invariants:
// leaves are never moved-and-replaced (splitLeaf, splitPrefix, and
// growAndInsert re-parent the *same* leaf node), and a leaf's obsolete
// flag is set exactly when its key is deleted. A LeafRef therefore stays
// usable from the key's insertion until its deletion, across arbitrary
// structural churn elsewhere in the tree.
type LeafRef struct {
	l *node
}

// Valid reports whether the LeafRef points at a leaf at all. It does not
// check liveness; that happens inside GetLeaf/PutLeaf.
func (r LeafRef) Valid() bool { return r.l != nil }

// LocateLeaf returns a LeafRef for key if key is currently present.
func (t *Tree) LocateLeaf(key []byte) (LeafRef, bool) {
	n := t.root.Load()
	if n == nil {
		return LeafRef{}, false
	}
	t.rlock(n)
	depth := 0
	for {
		if n.kind == kLeaf {
			ok := bytes.Equal(n.key, key)
			n.mu.RUnlock()
			if ok {
				return LeafRef{l: n}, true
			}
			return LeafRef{}, false
		}
		p := n.prefix
		if len(key)-depth < len(p) || !bytes.Equal(key[depth:depth+len(p)], p) {
			n.mu.RUnlock()
			return LeafRef{}, false
		}
		depth += len(p)
		if depth == len(key) {
			pl := n.prefixLeaf
			n.mu.RUnlock()
			if pl != nil {
				return LeafRef{l: pl}, true
			}
			return LeafRef{}, false
		}
		c := n.findChild(key[depth])
		if c == nil {
			n.mu.RUnlock()
			return LeafRef{}, false
		}
		t.rlock(c)
		n.mu.RUnlock()
		n = c
		depth++
	}
}

// GetLeaf reads the referenced leaf's current value: two atomic loads,
// zero locks, zero key-match steps. ok=false means the leaf was deleted
// and the reference is permanently dead (the caller re-locates or falls
// back to Get). A read racing the key's delete may return the pre-delete
// value; it linearizes before the delete, exactly like a reader that
// entered the leaf just ahead of it. Callers must only use a LeafRef with
// the key it was located for — the tree cannot re-verify cheaply, that
// being the point.
func (t *Tree) GetLeaf(r LeafRef) (value uint64, ok bool) {
	l := r.l
	if l == nil || l.obsolete.Load() {
		return 0, false
	}
	value = l.value.Load()
	atomic.AddInt64(t.cOpsRead, 1)
	atomic.AddInt64(t.cNodeAccesses, 1)
	return value, true
}

// PutLeaf overwrites the referenced leaf's value (always an update, never
// an insert — a live leaf means the key is present). ok=false means the
// leaf was deleted; the caller falls back to Put. The store is a plain
// atomic on the value word with no node lock — the same discipline as
// CASValueUpdates' fast path: a store racing the key's delete linearizes
// before it (the value lands on the now-unreachable leaf and is never
// observed).
func (t *Tree) PutLeaf(r LeafRef, value uint64) (ok bool) {
	l := r.l
	if l == nil || l.obsolete.Load() {
		return false
	}
	l.value.Store(value)
	atomic.AddInt64(t.cOpsWrite, 1)
	atomic.AddInt64(t.cNodeAccesses, 1)
	return true
}
