package pctt

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/olc"
	"repro/internal/workload"
)

// anchorFor runs one shared batch descent over keys and returns its anchor
// (a real interior node reference, depth > 0 for multi-key subtrees).
func anchorFor(t *testing.T, tr *olc.Tree, keys [][]byte) olc.Ref {
	t.Helper()
	locs := make([]olc.BatchLoc, len(keys))
	st, ok := tr.LocateBatch(olc.Ref{}, 16, keys, locs)
	if !ok {
		t.Fatal("root LocateBatch reported a stale anchor")
	}
	if !st.Anchor.Valid() {
		t.Fatal("no anchor for a common-prefix batch")
	}
	return st.Anchor
}

// TestHotsetPolicy exercises the residency mechanics directly: insert,
// value accrual, capacity admission (value-aware, not LRU), eviction of
// the cheapest resident anchor, invalidation, and path-buffer copying.
func TestHotsetPolicy(t *testing.T) {
	tr := olc.New(metrics.NewSet())
	sub := func(stem string) [][]byte {
		var ks [][]byte
		for i := 0; i < 8; i++ {
			k := []byte(fmt.Sprintf("%s%d\x00", stem, i))
			tr.Put(k, uint64(i))
			ks = append(ks, k)
		}
		return ks
	}
	aa, bb, cc := sub("aa:"), sub("bb:"), sub("cc:")

	h := newHotset(2)
	if h == nil {
		t.Fatal("capN=2 returned nil hotset")
	}
	if hs := newHotset(0); hs != nil {
		t.Fatal("capN=0 must disable the hotset")
	}

	anchorA := anchorFor(t, tr, aa)
	// The path must be copied out of the caller's key buffer.
	volatileKey := append([]byte(nil), aa[0]...)
	if h.put(1, anchorA, volatileKey, 100) {
		t.Fatal("insert into empty set reported an eviction")
	}
	for i := range volatileKey {
		volatileKey[i] = 0xFF
	}
	ref, path, ok := h.get(1)
	if !ok || !ref.Valid() {
		t.Fatal("anchor not resident after put")
	}
	if len(path) != ref.Depth() || !covers(aa, ref.Depth(), path) {
		t.Fatalf("stored path %q does not cover its own keys (depth %d)", path, ref.Depth())
	}

	if h.put(2, anchorFor(t, tr, bb), bb[0], 10) {
		t.Fatal("insert below capacity reported an eviction")
	}
	if h.liveA.Load() != 2 {
		t.Fatalf("liveA = %d, want 2", h.liveA.Load())
	}

	// At capacity: a cheap newcomer must be refused (value-aware, the
	// paper's §III-E replacement), a valuable one must displace the
	// cheapest resident entry — bucket 2 (value 10), not bucket 1 (100).
	anchorC := anchorFor(t, tr, cc)
	if h.put(3, anchorC, cc[0], 5) {
		t.Fatal("cheap newcomer evicted a resident anchor")
	}
	if _, _, ok := h.get(3); ok {
		t.Fatal("cheap newcomer was admitted at capacity")
	}
	if !h.put(3, anchorC, cc[0], 50) {
		t.Fatal("valuable newcomer was not admitted")
	}
	if _, _, ok := h.get(2); ok {
		t.Fatal("eviction removed the wrong bucket (2 was cheapest)")
	}
	if _, _, ok := h.get(1); !ok {
		t.Fatal("eviction removed the most valuable bucket")
	}

	// Refreshing a resident bucket accrues value instead of reinserting.
	if h.put(3, anchorC, cc[0], 60) {
		t.Fatal("refresh of a resident bucket reported an eviction")
	}

	h.invalidate(1)
	if _, _, ok := h.get(1); ok {
		t.Fatal("anchor survived invalidation")
	}
	if h.liveA.Load() != 1 {
		t.Fatalf("liveA after invalidate = %d, want 1", h.liveA.Load())
	}
	h.invalidate(1) // absent: no-op
}

// TestSingleWorkerBypass: a Workers==1 engine with an idle pipeline must
// execute directly (counted by bypass_ops) while preserving the Batcher
// and Run semantics; NoBypass must pin the pipeline path.
func TestSingleWorkerBypass(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()

	k := []byte("solo\x00")
	if e.Put(k, 7) {
		t.Fatal("first put reported replaced")
	}
	if v, ok := e.Get(k); !ok || v != 7 {
		t.Fatalf("get = (%d,%v), want (7,true)", v, ok)
	}
	if !e.Delete(k) {
		t.Fatal("delete missed existing key")
	}
	if got := e.Metrics().Get(metrics.CtrBypassOps); got != 3 {
		t.Fatalf("bypass_ops after 3 idle Batcher calls = %d, want 3", got)
	}

	w := testWorkload(t, 500, 5000, 44)
	e.Load(w.Keys, nil) // resets counters
	res := e.Run(w.Ops)
	if res.Ops != len(w.Ops) {
		t.Fatalf("res.Ops = %d", res.Ops)
	}
	if got := e.Metrics().Get(metrics.CtrBypassOps); got != int64(len(w.Ops)) {
		t.Fatalf("bypass_ops after Run = %d, want %d", got, len(w.Ops))
	}
	ref := replay(w)
	if e.Tree().Len() != len(ref) {
		t.Fatalf("tree has %d keys, reference %d", e.Tree().Len(), len(ref))
	}
	for ks, want := range ref {
		if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
			t.Fatalf("key %q = (%d,%v), want %d", ks, got, ok, want)
		}
	}

	// NoBypass forces the queue hop even at one worker.
	e2 := New(Config{Workers: 1, NoBypass: true})
	defer e2.Close()
	e2.Put(k, 1)
	if v, ok := e2.Get(k); !ok || v != 1 {
		t.Fatalf("NoBypass get = (%d,%v)", v, ok)
	}
	if got := e2.Metrics().Get(metrics.CtrBypassOps); got != 0 {
		t.Fatalf("NoBypass engine counted %d bypass_ops", got)
	}
}

// TestSharedDescentAndHotset drives a multi-worker engine through an
// insert-heavy workload twice and asserts the traverse phase actually
// exercised the new machinery: shared batch descents ran, hot-node anchors
// became resident and served repeat batches, and the final tree state still
// matches a sequential replay.
func TestSharedDescentAndHotset(t *testing.T) {
	w := testWorkload(t, 3000, 30000, 45)
	e := New(Config{Workers: 2, ChunkSize: 64})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	e.Run(w.Ops) // warm pass: anchors from run 1 serve run 2's descents
	if n := e.HotsetCount(); n == 0 {
		t.Fatal("no hot-node anchors resident after two runs")
	}
	if err := e.Close(); err != nil { // drain: final batch counters flush
		t.Fatal(err)
	}

	ms := e.Metrics()
	if ms.Get(metrics.CtrSharedDescents) == 0 {
		t.Fatal("no shared batch descents recorded")
	}
	if ms.Get(metrics.CtrHotsetHit) == 0 {
		t.Fatal("no hotset hits: anchors never served a descent")
	}
	if ms.Get(metrics.CtrHotsetHit)+ms.Get(metrics.CtrHotsetMiss) == 0 {
		t.Fatal("locate phase never consulted the hotset")
	}

	// Replay ops twice over the loaded keys: run 2 reapplied the stream.
	ref := map[string]uint64{}
	for i, k := range w.Keys {
		ref[string(k)] = uint64(i)
	}
	for pass := 0; pass < 2; pass++ {
		for _, op := range w.Ops {
			switch op.Kind {
			case workload.Write:
				ref[string(op.Key)] = op.Value
			case workload.Delete:
				delete(ref, string(op.Key))
			}
		}
	}
	if e.Tree().Len() != len(ref) {
		t.Fatalf("tree has %d keys, reference %d", e.Tree().Len(), len(ref))
	}
	for ks, want := range ref {
		if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
			t.Fatalf("key %q = (%d,%v), want %d", ks, got, ok, want)
		}
	}
}
