package pctt

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/olc"
	"repro/internal/workload"
)

// worker is one SOU analogue: a goroutine executing combine buckets with a
// private Shortcut_Table. All fields are goroutine-local except wake,
// sleeping, and ops (the cross-worker coordination points).
type worker struct {
	e  *Engine
	id int

	// shortcuts is the private Shortcut_Table: key hash -> (key, leaf
	// reference), an open-addressed flat table (see sctable.go). Leaf refs
	// are the strongest shortcut the tree offers — two atomic loads
	// instead of a full radix descent — and stay valid from the key's
	// insert to its delete. Keying by the hash carried in the task keeps
	// string hashing off the hot path; each hit verifies the stored key
	// (collisions overwrite, last wins). The table clears wholesale past
	// ShortcutCap (epoch eviction). When a bucket is stolen, the thief's
	// table simply misses and re-populates — the lazy Shortcut_Table
	// migration noted in steal.go.
	shortcuts *scTable

	// hotset is the private hot-node residency set (software Tree_buffer):
	// per-bucket interior anchors, ranked by bucket population under
	// value-aware replacement, that batch descents start from instead of
	// the root. nil when Config.HotsetCap disables the feature. Like the
	// Shortcut_Table it migrates lazily on steals (the thief misses and
	// re-derives anchors from its own batch descents).
	hotset *hotset

	// Latency histograms (RecordLatency): end-to-end, queue wait (submit
	// until the op's trigger batch began), and execute (batch begin until
	// the op completed). queue + execute == total per sample. histMu
	// covers them: only sampled operations observe (every 16th at most),
	// and holding it during Engine.mergeHistograms is what lets the obs
	// layer scrape latency quantiles from a live pipeline.
	histMu    sync.Mutex
	histTotal *metrics.Histogram
	histQueue *metrics.Histogram
	histExec  *metrics.Histogram

	// ops counts operations this worker executed (including stolen and
	// handed-off buckets); the skewed-load balance tests read it.
	ops atomic.Int64

	// beats is the progress heartbeat: bumped once per completed trigger
	// batch (and once per bypass stream). The obs layer exports it as the
	// dcart_pctt_worker_heartbeat gauge; a heartbeat that stops advancing
	// while occupancy gauges are non-zero is the health engine's stalled
	// signal.
	beats atomic.Uint64

	// wake unparks the worker; sleeping gates the producers' wake sends.
	wake     chan struct{}
	sleeping atomic.Bool
	timer    *time.Timer

	// deferred holds combine windows set aside until their MaxDelay
	// deadline (buckets popped with fewer than MinBatch ops). The park
	// timer is armed only while this list is non-empty.
	deferred []deferredWindow

	// batch scratch, reused across batches. The trigger batch is the
	// gathered chunks themselves — tasks execute in place and are never
	// copied out of the chunk a producer filled (the pipeline's only task
	// copy is the producer's construction into that chunk).
	bchunks   [][]task // the trigger batch: chunks gathered from ready buckets
	bchunkBkt []int32  // bucket ID per gathered chunk (parallel to bchunks)
	bn        int      // total operations across bchunks
	runIDs    []int32  // buckets whose backlogs the current batch gathered
	groups    []group
	gtab      []gslot // open-addressed key-hash -> group index table
	pending   []*task // write tasks awaiting the group's combined flush

	// locate-phase scratch (reused across batches): the scTable-miss groups
	// of the bucket currently being located, their keys, and the per-key
	// locations one shared LocateBatch descent fills in.
	lgroups []*group
	lkeys   [][]byte
	llocs   []olc.BatchLoc

	// execStart is the unix-nano begin of the current trigger batch
	// (latency attribution point between queue wait and execute).
	// groupEnd/locateEnd subdivide the batch further — grouping done,
	// traverse (locateGroups) done — giving traced and journaled spans the
	// combine/traverse/trigger stage breakdown.
	execStart int64
	groupEnd  int64
	locateEnd int64

	// c accumulates counter deltas batch-locally; execBatch flushes it to
	// the shared metrics.Set once per batch (an Inc per operation would put
	// a map lookup plus an atomic RMW on the hot path).
	c batchCounters
}

// deferredWindow is a combine window waiting out its deadline.
type deferredWindow struct {
	id       int32
	deadline int64 // unix nanos
}

// batchCounters mirrors the counters the execute phases touch.
type batchCounters struct {
	shortcutHit, shortcutMiss, maintain  int64
	coalesced, opsRead, opsWrite         int64
	hotsetHit, hotsetMiss                int64
	hotsetEvict, hotsetInvalid, fallback int64
}

// group is a set of same-key operations coalesced within one batch, in
// arrival order, referenced in place in their gathered chunks. hash is the
// key's unprobed hash carried in the task, reused for the Shortcut_Table.
// bucket, scHit/scLeaf, located, and loc are filled by the locate phase
// (locateGroups) before execGroup runs.
type group struct {
	ops  []*task
	hash uint64
	// bucket is the combine bucket the group's key belongs to (the unit the
	// locate phase shares descents and anchors across).
	bucket int32
	// scHit/scLeaf: the Shortcut_Table resolved this key to a live leaf.
	scHit  bool
	scLeaf olc.LeafRef
	// located: the shared batch descent resolved this key; loc carries its
	// leaf (zero when absent at locate time) and insert anchor.
	located bool
	loc     olc.BatchLoc
}

// gslot is one open-addressed grouping-table slot; gi is the group index
// plus one (0 means empty). A flat probe table beats a Go map here: the
// table is cleared with one memclr per batch and probed with two compares
// per op on the execution critical path.
type gslot struct {
	hash uint64
	gi   int32
}

func newWorker(e *Engine, id int) *worker {
	w := &worker{
		e:         e,
		id:        id,
		shortcuts: newSCTable(),
		hotset:    newHotset(e.cfg.HotsetCap),
		wake:      make(chan struct{}, 1),
	}
	// Size the grouping table to a power of two holding the largest
	// possible batch (BatchSize plus one chunk of gather overshoot) at
	// <=50% load.
	n := 1
	for n < 2*(e.cfg.BatchSize+e.cfg.ChunkSize) {
		n <<= 1
	}
	w.gtab = make([]gslot, n)
	w.timer = time.NewTimer(time.Hour)
	w.timer.Stop()
	w.resetHistograms()
	return w
}

// resetHistograms replaces the latency histograms. Safe only while the
// pipeline is quiescent and the caller synchronizes with new submissions
// (Engine.Reset's contract).
func (w *worker) resetHistograms() {
	w.histMu.Lock()
	w.histTotal = metrics.NewHistogram()
	w.histQueue = metrics.NewHistogram()
	w.histExec = metrics.NewHistogram()
	w.histMu.Unlock()
}

// hashKey is FNV-1a; grouping probes on the (astronomically rare) collision
// so the hash only has to be good, not perfect. It is computed once at
// submit time and carried in the task (see BenchmarkGroupingHash* for the
// measured saving on the worker's critical path).
func hashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// HashKey exposes the pipeline's end-to-end key hash — the trace ID every
// engine span carries. Layers above the engine (the kvserver wire path)
// stamp their spans with the same hash so one operation's spans correlate
// across layers in the /debug/traces?id= waterfall.
func HashKey(key []byte) uint64 { return hashKey(key) }

// loop is the worker body. Each iteration assembles one trigger batch by
// GATHERING every ready bucket it can reach — expired combine windows
// first, then the own ring (deferring small young windows) — until the
// batch holds BatchSize operations or the ring runs dry. Executing many
// buckets' backlogs as a single trigger batch is what amortizes the
// per-batch costs (grouping table, counter flush, timestamps, scheduler
// wakeups) back to per-4096-ops rather than per-bucket. Only when nothing
// local is ready does the worker steal from the most-backlogged peer, and
// only when that fails does it park.
func (w *worker) loop() {
	defer w.e.wg.Done()
	for {
		if w.e.closing.Load() {
			w.drain()
			return
		}
		w.bchunks = w.bchunks[:0]
		w.bchunkBkt = w.bchunkBkt[:0]
		w.bn = 0
		w.runIDs = w.runIDs[:0]
		now := time.Now().UnixNano()
		for w.bn < w.e.cfg.BatchSize {
			id, ok := w.popExpired(now)
			if !ok {
				if id, ok = w.e.rings[w.id].pop(); ok && w.maybeDefer(id) {
					continue
				}
			}
			if !ok {
				break
			}
			w.collect(id, false)
		}
		if w.bn == 0 && !w.e.cfg.NoSteal {
			// Steal path, dampened: a backlogged peer ring does not yet
			// mean the peer is overloaded — on a timeshared processor it
			// may simply not have been scheduled since the producer filled
			// its ring. Yield once; only a backlog that survives the yield
			// (the owner really is behind) is worth stealing. Then gather
			// whole buckets — at most half the queued buckets, classic
			// work-stealing etiquette that leaves the victim productive
			// and keeps bucket ownership from ping-ponging.
			if victim := w.e.stealVictim(w.id); victim != nil {
				runtime.Gosched()
				if w.e.rings[w.id].length() == 0 {
					quota := (int(victim.length()) + 1) / 2
					for w.bn < w.e.cfg.BatchSize && quota > 0 {
						id, ok := victim.pop()
						if !ok {
							break
						}
						quota--
						w.collect(id, true)
					}
				}
			}
		}
		if w.bn > 0 {
			w.finishBatch()
			continue
		}
		w.park()
	}
}

// maybeDefer sets aside a popped bucket whose combine window is still
// young and under-filled, giving producers until the MaxDelay deadline to
// coalesce more operations while this worker runs other ready work. An
// otherwise-idle worker never defers — light load executes immediately.
func (w *worker) maybeDefer(id int32) bool {
	cfg := &w.e.cfg
	if cfg.MaxDelay <= 0 || cfg.MinBatch <= 1 {
		return false
	}
	b := &w.e.buckets[id]
	b.mu.Lock()
	n := b.nops
	ws := b.windowStart
	b.mu.Unlock()
	if n >= cfg.MinBatch {
		return false
	}
	deadline := ws + int64(cfg.MaxDelay)
	if time.Now().UnixNano() >= deadline {
		return false
	}
	if w.bn == 0 && len(w.deferred) == 0 && w.e.rings[w.id].length() == 0 {
		return false // no other work to interleave: run now
	}
	w.deferred = append(w.deferred, deferredWindow{id: id, deadline: deadline})
	w.e.ms.Inc(metrics.CtrWindowDeferrals)
	return true
}

// popExpired removes and returns a deferred window whose deadline passed.
func (w *worker) popExpired(now int64) (int32, bool) {
	for i := range w.deferred {
		if w.deferred[i].deadline <= now {
			id := w.deferred[i].id
			last := len(w.deferred) - 1
			w.deferred[i] = w.deferred[last]
			w.deferred = w.deferred[:last]
			return id, true
		}
	}
	return 0, false
}

// earliestDeadline returns the soonest deferred-window deadline, 0 if none.
func (w *worker) earliestDeadline() int64 {
	var dl int64
	for i := range w.deferred {
		if dl == 0 || w.deferred[i].deadline < dl {
			dl = w.deferred[i].deadline
		}
	}
	return dl
}

// park blocks until new work is signaled or the earliest deferred deadline
// expires. The deadline timer is armed only while deferred windows exist.
func (w *worker) park() {
	w.sleeping.Store(true)
	w.e.setIdle(w.id, true)
	defer func() {
		w.e.setIdle(w.id, false)
		w.sleeping.Store(false)
	}()
	if w.e.rings[w.id].length() > 0 || w.e.closing.Load() {
		return // work (or shutdown) raced in before we were advertised
	}
	if dl := w.earliestDeadline(); dl > 0 {
		d := time.Duration(dl - time.Now().UnixNano())
		if d <= 0 {
			return
		}
		w.timer.Reset(d)
		select {
		case <-w.wake:
			w.timer.Stop()
		case <-w.timer.C:
		}
		return
	}
	<-w.wake
}

// forceWake unparks the worker unconditionally (shutdown path).
func (w *worker) forceWake() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// drain runs the shutdown protocol: execute everything reachable (own
// deferred windows, own ring, any peer's ring) until no operation is in
// flight anywhere, then exit.
func (w *worker) drain() {
	e := w.e
	for {
		if len(w.deferred) > 0 {
			last := len(w.deferred) - 1
			id := w.deferred[last].id
			w.deferred = w.deferred[:last]
			w.runBucket(id, false)
			continue
		}
		if id, ok := e.rings[w.id].pop(); ok {
			w.runBucket(id, false)
			continue
		}
		stole := false
		for i := range e.rings {
			if i == w.id {
				continue
			}
			if id, ok := e.rings[i].pop(); ok {
				w.runBucket(id, true)
				stole = true
				break
			}
		}
		if stole {
			continue
		}
		if e.inflight.Load() == 0 {
			return
		}
		runtime.Gosched() // a peer is mid-execution; its requeue will surface
	}
}

// collect moves one popped bucket's backlog into the batch under assembly
// and marks the bucket running. The take is a FIFO prefix of whole chunks,
// stopped once the batch reaches BatchSize (so it may overshoot by at most
// one chunk); any remainder stays pending and finishBatch re-queues it.
// Only chunk pointers move — the tasks stay in place in their chunks and
// execute there; the chunks are recycled after the batch completes. stolen
// records the ownership handoff for a bucket taken from a peer's ring.
func (w *worker) collect(id int32, stolen bool) {
	e := w.e
	b := &e.buckets[id]
	b.mu.Lock()
	if stolen && b.owner != int32(w.id) {
		b.owner = int32(w.id)
	}
	if b.nops == 0 {
		b.state.Store(bIdle) // defensive: never strand the state machine
		b.mu.Unlock()
		return
	}
	space := e.cfg.BatchSize - w.bn
	k, taken := 0, 0
	for k < len(b.chunks) && taken < space {
		taken += len(b.chunks[k])
		k++
	}
	w.bchunks = append(w.bchunks, b.chunks[:k]...)
	for i := 0; i < k; i++ {
		w.bchunkBkt = append(w.bchunkBkt, id)
	}
	rest := copy(b.chunks, b.chunks[k:])
	for i := rest; i < len(b.chunks); i++ {
		b.chunks[i] = nil
	}
	b.chunks = b.chunks[:rest]
	b.nops -= taken
	b.state.Store(bRunning)
	if b.waiters > 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	if stolen {
		e.ms.Inc(metrics.CtrBucketSteals)
	}
	w.bn += taken
	w.runIDs = append(w.runIDs, id)
}

// finishBatch executes the assembled trigger batch, then walks the
// gathered buckets: one whose backlog refilled during execution re-queues
// (possibly handing off to a parked peer), the rest return to idle.
func (w *worker) finishBatch() {
	e := w.e
	if h := e.cfg.BatchHook; h != nil {
		// Before execution and before the heartbeat bump: a blocking hook
		// freezes this worker with its batch's ops still counted in flight.
		h(w.id)
	}
	w.execBatch()
	w.beats.Add(1)
	e.inflight.Add(-int64(w.bn))
	for _, c := range w.bchunks {
		clearTasks(c) // drop key/reply/done refs before the chunk recycles
		e.putChunk(c)
	}
	now := time.Now().UnixNano()
	for _, id := range w.runIDs {
		b := &e.buckets[id]
		b.mu.Lock()
		if b.nops == 0 {
			b.state.Store(bIdle)
			b.mu.Unlock()
			continue
		}
		b.state.Store(bQueued)
		b.windowStart = now
		b.mu.Unlock()
		w.requeue(id)
	}
}

// runBucket executes a single bucket as its own trigger batch (shutdown
// drain path; the main loop gathers several buckets per batch instead).
func (w *worker) runBucket(id int32, stolen bool) {
	w.bchunks = w.bchunks[:0]
	w.bchunkBkt = w.bchunkBkt[:0]
	w.bn = 0
	w.runIDs = w.runIDs[:0]
	w.collect(id, stolen)
	if w.bn > 0 || len(w.runIDs) > 0 {
		w.finishBatch()
	}
}

// clearTasks zeroes vacated task slots so their key/reply/done references
// do not linger in a bucket's backing array.
func clearTasks(ts []task) {
	for i := range ts {
		ts[i] = task{}
	}
}

// execBatch executes one trigger batch: group by key (first-appearance
// order across the batch, arrival order within a group, reusing the hash
// carried in each task), then execute each group. Tasks are referenced in
// place in their gathered chunks — grouping produces *task lists, not
// copies.
func (w *worker) execBatch() {
	stamping := w.e.cfg.RecordLatency || w.e.cfg.Tracer != nil || w.e.cfg.Journal != nil
	if stamping {
		w.execStart = time.Now().UnixNano()
	}

	w.groups = w.groups[:0]
	clear(w.gtab) // one memclr; gslot has no pointers
	mask := uint64(len(w.gtab) - 1)
	for ci, c := range w.bchunks {
		bkt := w.bchunkBkt[ci]
		for i := range c {
			t := &c[i]
			pos := t.hash & mask
			for {
				s := &w.gtab[pos]
				if s.gi == 0 {
					s.hash = t.hash
					s.gi = int32(len(w.groups)) + 1
					// Grow in place so per-group slices are reused across
					// batches.
					if len(w.groups) < cap(w.groups) {
						w.groups = w.groups[:len(w.groups)+1]
					} else {
						w.groups = append(w.groups, group{})
					}
					g := &w.groups[len(w.groups)-1]
					g.ops = append(g.ops[:0], t)
					g.hash = t.hash
					g.bucket = bkt
					g.scHit, g.scLeaf = false, olc.LeafRef{}
					g.located, g.loc = false, olc.BatchLoc{}
					break
				}
				if s.hash == t.hash {
					g := &w.groups[s.gi-1]
					if bytes.Equal(g.ops[0].key, t.key) {
						g.ops = append(g.ops, t)
						break
					}
					// Same hash, different key: fall through and keep probing.
				}
				pos = (pos + 1) & mask
			}
		}
	}
	if stamping {
		w.groupEnd = time.Now().UnixNano()
	}
	w.locateGroups()
	if stamping {
		w.locateEnd = time.Now().UnixNano()
	}
	for gi := range w.groups {
		w.execGroup(&w.groups[gi])
	}
	w.ops.Add(int64(w.bn))
	w.flushCounters()
}

// locateGroups is the traverse phase run once per trigger batch: resolve
// every group's target location before execution. Groups whose key the
// Shortcut_Table already maps to a live leaf are done immediately; the
// remainder of each bucket shares ONE lock-coupled batch descent
// (olc.LocateBatch) — sorted keys, each tree node visited and each node
// lock acquired once per bucket-batch rather than once per key — started
// from the bucket's cached hot-node anchor when the hotset holds one.
//
// Chunks are gathered bucket by bucket and groups form in first-appearance
// order, so w.groups is bucket-contiguous; the phase walks it in runs.
func (w *worker) locateGroups() {
	i := 0
	for i < len(w.groups) {
		j := i
		bkt := w.groups[i].bucket
		for j < len(w.groups) && w.groups[j].bucket == bkt {
			j++
		}
		w.locateBucket(bkt, w.groups[i:j])
		i = j
	}
}

// locateBucket resolves one bucket's groups (see locateGroups).
func (w *worker) locateBucket(bkt int32, groups []group) {
	w.lgroups = w.lgroups[:0]
	w.lkeys = w.lkeys[:0]
	nops := 0
	for gi := range groups {
		g := &groups[gi]
		nops += len(g.ops)
		if s := w.shortcuts.get(g.hash); s != nil && bytes.Equal(s.key, g.ops[0].key) {
			g.scHit, g.scLeaf = true, s.leaf // hash collision => miss
			w.c.shortcutHit++
			continue
		}
		w.c.shortcutMiss++
		w.lgroups = append(w.lgroups, g)
		w.lkeys = append(w.lkeys, g.ops[0].key)
	}
	if len(w.lgroups) == 0 {
		return // every key shortcut to its leaf; nothing to descend for
	}

	// Hot-node residency: start the shared descent from the bucket's cached
	// interior anchor when it can serve every key of this batch (each key
	// must carry the anchor's path bytes — a key that never loaded the
	// bucket's common prefix forces a root descent for the whole batch).
	tree := w.e.tree
	var from olc.Ref
	anchored := false
	if w.hotset != nil {
		if ref, path, ok := w.hotset.get(uint64(bkt)); ok && covers(w.lkeys, ref.Depth(), path) {
			from, anchored = ref, true
		} else {
			w.c.hotsetMiss++
		}
	}
	if cap(w.llocs) < len(w.lkeys) {
		w.llocs = make([]olc.BatchLoc, len(w.lkeys))
	}
	locs := w.llocs[:len(w.lkeys)]
	st, ok := tree.LocateBatch(from, w.e.anchorMaxDepth(), w.lkeys, locs)
	if !ok {
		// The anchor's node went obsolete under a structural change: drop
		// the entry and redo the descent from the root.
		w.c.hotsetInvalid++
		w.hotset.invalidate(uint64(bkt))
		from, anchored = olc.Ref{}, false
		st, _ = tree.LocateBatch(from, w.e.anchorMaxDepth(), w.lkeys, locs)
	}
	if anchored {
		w.c.hotsetHit++
	}
	for k, g := range w.lgroups {
		g.located, g.loc = true, locs[k]
	}
	if w.hotset != nil && st.Anchor.Valid() {
		// Credit the whole bucket-batch population (shortcut hits included)
		// to the anchor's value — the paper's bucket-population ranking.
		if w.hotset.put(uint64(bkt), st.Anchor, w.lkeys[0], int64(nops)) {
			w.c.hotsetEvict++
		}
	}
}

// execGroup triggers a group's operations together against the location
// the traverse phase resolved (Shortcut_Table leaf, batch-descent leaf, or
// batch-descent insert anchor): reads beyond the first are served from the
// group's running value, consecutive writes combine into a single tree put
// (one version-lock acquisition per write burst), and inserts re-enter the
// tree at the key's located interior node rather than the root.
//
// Safety: the bucket state machine guarantees this worker is the only one
// executing the group's key right now (a bucket runs on one worker at a
// time, and a key maps to one bucket), so no other actor can change the
// key's binding between the locate phase and the group's operations.
func (w *worker) execGroup(g *group) {
	tree := w.e.tree
	key := g.ops[0].key

	leaf, hasRef := g.scLeaf, g.scHit
	if !hasRef && g.loc.Leaf.Valid() {
		leaf, hasRef = g.loc.Leaf, true
	}
	refUsable := hasRef

	// Running per-key state: once haveCur is set, cur/curFound track the
	// key's logical value through the group without touching the tree.
	// locAbsent records a batch-proven absence: the shared descent found no
	// leaf, and nobody else may bind this key while the bucket runs here,
	// so a leading read needs no descent of its own.
	var cur uint64
	curFound := false
	haveCur := false
	locAbsent := g.located && !hasRef
	dirty := false // cur holds an unflushed write
	wrote := false // the group changed the key's binding or value
	w.pending = w.pending[:0]

	// flush applies the combined pending writes as one tree put and
	// answers their replies (first write reports the pre-group presence,
	// coalesced followers report replaced=true).
	flush := func() {
		if !dirty {
			return
		}
		// A usable leaf ref means the key is live, so the combined write is
		// an in-place overwrite (replaced=true by construction).
		replaced := true
		if refUsable && !tree.PutLeaf(leaf, cur) {
			refUsable = false
		}
		if !refUsable {
			// Insert: re-enter the tree at the batch descent's insert
			// anchor; only a structural change at the anchor itself (or no
			// anchor at all) pays a full root descent.
			done := false
			if r := g.loc.Ins; r.Valid() {
				replaced, done = tree.PutAt(r, key, cur)
			}
			if !done {
				replaced = tree.Put(key, cur)
				w.c.fallback++
			}
		}
		if n := len(w.pending) - 1; n > 0 {
			// Coalesced writes beyond the first: counted as ops that
			// needed no tree access.
			w.c.coalesced += int64(n)
			w.c.opsWrite += int64(n)
		}
		for i, t := range w.pending {
			rep := replaced
			if i > 0 {
				rep = true
			}
			w.complete(t, taskResult{found: rep})
		}
		w.pending = w.pending[:0]
		dirty = false
	}

	for _, t := range g.ops {
		switch t.kind {
		case workload.Read:
			if !haveCur {
				if refUsable {
					if v, ok := tree.GetLeaf(leaf); ok {
						cur, curFound = v, true
					} else {
						refUsable = false
					}
				}
				switch {
				case refUsable:
				case locAbsent:
					// The shared descent proved the key absent; the read is
					// answered from that result, no own descent.
					w.c.opsRead++
				default:
					cur, curFound = tree.Get(t.key)
				}
				haveCur = true
			} else {
				// Served from the already-located value: a coalesced read.
				w.c.coalesced++
				w.c.opsRead++
			}
			w.complete(t, taskResult{value: cur, found: curFound})
		case workload.Write:
			cur, curFound, haveCur = t.value, true, true
			dirty, wrote = true, true
			w.pending = append(w.pending, t)
		case workload.Delete:
			// Deletes restructure; flush combined writes first, then go
			// direct (mirrors internal/ctt's discipline).
			flush()
			deleted := tree.Delete(t.key)
			cur, curFound, haveCur = 0, false, true
			wrote = true
			w.complete(t, taskResult{found: deleted})
		}
	}
	flush()

	// Maintain the Shortcut_Table. A live leaf the table did not already
	// hold — a batch-located one, or one created by this group's insert —
	// becomes an entry; a key that ended the group absent gets its entry
	// dropped. The batch-located case costs no descent at all (the shared
	// descent already produced the leaf ref); only an insert pays a
	// LocateLeaf. A batch-located absence with no writes needs nothing.
	switch {
	case refUsable && !g.scHit:
		w.shortcuts.put(g.hash, key, leaf)
		w.shortcuts.maintain(w.e.cfg.ShortcutCap)
		w.c.maintain++
	case !refUsable && (wrote || !g.located):
		if lr, ok := tree.LocateLeaf(key); ok {
			w.shortcuts.put(g.hash, key, lr)
			w.shortcuts.maintain(w.e.cfg.ShortcutCap)
			w.c.maintain++
		} else if g.scHit {
			w.shortcuts.del(g.hash)
		}
	}
}

// flushCounters publishes the batch's accumulated counter deltas.
func (w *worker) flushCounters() {
	ms := w.e.ms
	c := &w.c
	if c.shortcutHit != 0 {
		ms.Add(metrics.CtrShortcutHit, c.shortcutHit)
	}
	if c.shortcutMiss != 0 {
		ms.Add(metrics.CtrShortcutMiss, c.shortcutMiss)
	}
	if c.maintain != 0 {
		ms.Add(metrics.CtrShortcutMaintain, c.maintain)
	}
	if c.coalesced != 0 {
		ms.Add(metrics.CtrCoalesced, c.coalesced)
	}
	if c.opsRead != 0 {
		ms.Add(metrics.CtrOpsRead, c.opsRead)
	}
	if c.opsWrite != 0 {
		ms.Add(metrics.CtrOpsWrite, c.opsWrite)
	}
	if c.hotsetHit != 0 {
		ms.Add(metrics.CtrHotsetHit, c.hotsetHit)
	}
	if c.hotsetMiss != 0 {
		ms.Add(metrics.CtrHotsetMiss, c.hotsetMiss)
	}
	if c.hotsetEvict != 0 {
		ms.Add(metrics.CtrHotsetEvict, c.hotsetEvict)
	}
	if c.hotsetInvalid != 0 {
		ms.Add(metrics.CtrHotsetInvalidate, c.hotsetInvalid)
	}
	if c.fallback != 0 {
		ms.Add(metrics.CtrBatchFallbacks, c.fallback)
	}
	*c = batchCounters{}
	ms.Inc(metrics.CtrBatches)
}

// complete delivers a task's outcome: Run-mode read slot, Batcher reply,
// completion accounting, the optional latency samples (end-to-end plus the
// queue-wait/execute split around the batch's execStart), and the sampled
// lifecycle span when the task was chosen for tracing.
func (w *worker) complete(t *task, r taskResult) {
	if t.res != nil {
		*t.res = engine.ReadResult{Index: t.idx, Value: r.value, OK: r.found}
	}
	if t.reply != nil {
		t.reply <- r
	}
	if t.enq != 0 {
		now := time.Now().UnixNano()
		wait := w.execStart - t.enq
		if wait < 0 {
			wait = 0 // wall-clock stamps; guard against clock steps
		}
		if t.lat {
			w.histMu.Lock()
			w.histTotal.Observe(float64(now-t.enq) * 1e-9)
			w.histQueue.Observe(float64(wait) * 1e-9)
			w.histExec.Observe(float64(now-w.execStart) * 1e-9)
			w.histMu.Unlock()
		}
		j := w.e.cfg.Journal
		if t.traced || j != nil {
			bkt := w.e.shardOf(t.key)
			s := obs.Span{
				TraceID:        t.hash,
				Op:             opName(t.kind),
				Worker:         w.id,
				Bucket:         bkt,
				Migrated:       bkt%w.e.cfg.Workers != w.id,
				SubmitUnixNano: t.enq,
				BatchUnixNano:  w.execStart,
				DoneUnixNano:   now,
				QueueWaitNanos: wait,
				ExecNanos:      now - w.execStart,
				Layer:          "engine",
				Stages:         engineStages(t.enq, w.execStart, w.groupEnd, w.locateEnd, now),
			}
			if t.traced {
				if tr := w.e.cfg.Tracer; tr != nil {
					tr.Record(s)
				}
			}
			if j != nil {
				j.Observe(s)
			}
		}
	}
	if t.done != nil {
		t.done.Done()
	}
}

// engineStages builds the engine span's stage breakdown from the task's
// submit stamp and the batch's phase stamps: queue (submit until the batch
// began), combine (grouping by key), traverse (locate phase: Shortcut_Table
// plus shared descents), and trigger (group execution until this task's
// completion). The batch stamps are per-batch wall-clock reads; each stage
// start is clamped to the previous end so a clock step or a task that
// submitted mid-batch never yields a negative stage.
func engineStages(enq, execStart, groupEnd, locateEnd, done int64) []obs.Stage {
	st := make([]obs.Stage, 0, 4)
	at := enq
	push := func(name string, end int64) {
		if end < at {
			end = at
		}
		st = append(st, obs.Stage{Name: name, StartUnixNano: at, EndUnixNano: end})
		at = end
	}
	push("queue", execStart)
	push("combine", groupEnd)
	push("traverse", locateEnd)
	push("trigger", done)
	return st
}

// opName renders a task kind for trace spans.
func opName(k workload.Kind) string {
	switch k {
	case workload.Read:
		return "get"
	case workload.Write:
		return "put"
	default:
		return "delete"
	}
}
