package pctt

import (
	"bytes"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/olc"
	"repro/internal/workload"
)

// worker is one SOU analogue: a goroutine owning a disjoint shard set with
// a private Shortcut_Table. All fields are goroutine-local.
type worker struct {
	e  *Engine
	id int

	// shortcuts is the private Shortcut_Table: key hash -> (key, leaf
	// reference). Leaf refs are the strongest shortcut the tree offers —
	// one lock and one atomic load instead of a full radix descent — and
	// stay valid from the key's insert to its delete. Keying by the hash
	// already computed for grouping keeps string hashing off the hot path;
	// each hit verifies the stored key (collisions overwrite, last wins).
	// The table clears wholesale past ShortcutCap (epoch eviction).
	shortcuts map[uint64]shortcutEntry

	hist *metrics.Histogram

	// batch scratch, reused across batches.
	tasks   []task
	groups  []group
	gidx    map[uint64]int32 // key hash -> group index (probed on collision)
	pending []int            // task indices of writes awaiting the group's flush

	// c accumulates counter deltas batch-locally; process flushes it to the
	// shared metrics.Set once per batch (an Inc per operation would put a
	// map lookup plus an atomic RMW on the hot path).
	c batchCounters
}

// batchCounters mirrors the counters execGroup touches.
type batchCounters struct {
	shortcutHit, shortcutMiss, maintain int64
	coalesced, opsRead, opsWrite        int64
}

// shortcutEntry is one Shortcut_Table binding. The stored key must not be
// mutated by the submitter after the operation completes (Run-mode keys
// come from the workload; Batcher callers hand over ownership).
type shortcutEntry struct {
	key  []byte
	leaf olc.LeafRef
}

// group is a set of same-key operations coalesced within one batch,
// holding indices into worker.tasks in arrival order. hash is the key's
// unprobed hashKey value, reused for the Shortcut_Table.
type group struct {
	ops  []int
	hash uint64
}

func newWorker(e *Engine, id int) *worker {
	return &worker{
		e:         e,
		id:        id,
		shortcuts: make(map[uint64]shortcutEntry),
		hist:      metrics.NewHistogram(),
		gidx:      make(map[uint64]int32),
	}
}

// hashKey is FNV-1a; grouping probes on the (astronomically rare) collision
// so the hash only has to be good, not perfect.
func hashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// run drains the queue until it closes. Each wakeup collects messages up
// to BatchSize operations (blocking only for the first), then processes
// them as one combine batch.
func (w *worker) run(q chan batchMsg) {
	defer w.e.wg.Done()
	var msgs []batchMsg
	for {
		m, ok := <-q
		if !ok {
			return
		}
		msgs = append(msgs[:0], m)
		n := msgLen(m)
		for n < w.e.cfg.BatchSize {
			select {
			case m2, ok2 := <-q:
				if !ok2 {
					w.process(msgs)
					return
				}
				msgs = append(msgs, m2)
				n += msgLen(m2)
				continue
			default:
			}
			break
		}
		w.process(msgs)
	}
}

func msgLen(m batchMsg) int {
	if m.tasks == nil {
		return 1
	}
	return len(m.tasks)
}

// process executes one combine batch: concatenate the messages' tasks,
// group by key (first-appearance order across the batch, arrival order
// within a group), execute each group, then acknowledge the messages.
func (w *worker) process(msgs []batchMsg) {
	w.tasks = w.tasks[:0]
	for i := range msgs {
		if msgs[i].tasks == nil {
			w.tasks = append(w.tasks, msgs[i].one)
		} else {
			w.tasks = append(w.tasks, msgs[i].tasks...)
		}
	}

	w.groups = w.groups[:0]
	clear(w.gidx)
	for i := range w.tasks {
		key := w.tasks[i].key
		h0 := hashKey(key)
		h := h0
		for {
			gi, ok := w.gidx[h]
			if ok {
				g := &w.groups[gi]
				if bytes.Equal(w.tasks[g.ops[0]].key, key) {
					g.ops = append(g.ops, i)
					break
				}
				h++ // hash collision with a different key: linear probe
				continue
			}
			w.gidx[h] = int32(len(w.groups))
			// Grow in place so per-group index slices are reused across
			// batches.
			if len(w.groups) < cap(w.groups) {
				w.groups = w.groups[:len(w.groups)+1]
			} else {
				w.groups = append(w.groups, group{})
			}
			g := &w.groups[len(w.groups)-1]
			g.ops = append(g.ops[:0], i)
			g.hash = h0
			break
		}
	}
	for gi := range w.groups {
		w.execGroup(&w.groups[gi])
	}
	w.flushCounters()

	for i := range msgs {
		m := &msgs[i]
		if m.pooled {
			chunkPool.Put(m.tasks[:0])
			m.tasks = nil
		}
		if m.done != nil {
			m.done.Done()
		}
	}
}

// execGroup locates the group's target once (shortcut or root descent) and
// triggers all of its operations together: reads beyond the first are
// served from the group's running value, consecutive writes combine into a
// single tree put (one version-lock acquisition per write burst).
//
// Safety: this worker is the only writer for the group's key (disjoint
// shards), so no other actor can change the key's binding between the
// group's operations.
func (w *worker) execGroup(g *group) {
	tree := w.e.tree
	key := w.tasks[g.ops[0]].key

	ent, hasRef := w.shortcuts[g.hash]
	hasRef = hasRef && bytes.Equal(ent.key, key) // hash collision => miss
	leaf := ent.leaf
	refUsable := hasRef
	if hasRef {
		w.c.shortcutHit++
	} else {
		w.c.shortcutMiss++
	}

	// Running per-key state: once haveCur is set, cur/curFound track the
	// key's logical value through the group without touching the tree.
	var cur uint64
	curFound := false
	haveCur := false
	dirty := false // cur holds an unflushed write
	w.pending = w.pending[:0]

	// flush applies the combined pending writes as one tree put and
	// answers their replies (first write reports the pre-group presence,
	// coalesced followers report replaced=true).
	flush := func() {
		if !dirty {
			return
		}
		// A usable leaf ref means the key is live, so the combined write is
		// an in-place overwrite (replaced=true by construction).
		replaced := true
		if refUsable && !tree.PutLeaf(leaf, cur) {
			refUsable = false
		}
		if !refUsable {
			replaced = tree.Put(key, cur)
		}
		if n := len(w.pending) - 1; n > 0 {
			// Coalesced writes beyond the first: counted as ops that
			// needed no tree access.
			w.c.coalesced += int64(n)
			w.c.opsWrite += int64(n)
		}
		for i, ti := range w.pending {
			t := &w.tasks[ti]
			rep := replaced
			if i > 0 {
				rep = true
			}
			w.complete(t, taskResult{found: rep})
		}
		w.pending = w.pending[:0]
		dirty = false
	}

	for _, ti := range g.ops {
		t := &w.tasks[ti]
		switch t.kind {
		case workload.Read:
			if !haveCur {
				if refUsable {
					if v, ok := tree.GetLeaf(leaf); ok {
						cur, curFound = v, true
					} else {
						refUsable = false
					}
				}
				if !refUsable {
					cur, curFound = tree.Get(t.key)
				}
				haveCur = true
			} else {
				// Served from the already-located value: a coalesced read.
				w.c.coalesced++
				w.c.opsRead++
			}
			w.complete(t, taskResult{value: cur, found: curFound})
		case workload.Write:
			cur, curFound, haveCur = t.value, true, true
			dirty = true
			w.pending = append(w.pending, ti)
		case workload.Delete:
			// Deletes restructure; flush combined writes first, then go
			// direct (mirrors internal/ctt's discipline).
			flush()
			deleted := tree.Delete(t.key)
			cur, curFound, haveCur = 0, false, true
			w.complete(t, taskResult{found: deleted})
		}
	}
	flush()

	// Maintain the Shortcut_Table: refresh a missing or dead entry from
	// the key's live leaf (overwriting also evicts a colliding or stale
	// binding at this hash). A key that ended the group absent gets its
	// entry dropped instead.
	if !refUsable {
		if lr, ok := tree.LocateLeaf(key); ok {
			if len(w.shortcuts) >= w.e.cfg.ShortcutCap {
				clear(w.shortcuts) // epoch eviction
			}
			w.shortcuts[g.hash] = shortcutEntry{key: key, leaf: lr}
			w.c.maintain++
		} else if hasRef {
			delete(w.shortcuts, g.hash)
		}
	}
}

// flushCounters publishes the batch's accumulated counter deltas.
func (w *worker) flushCounters() {
	ms := w.e.ms
	c := &w.c
	if c.shortcutHit != 0 {
		ms.Add(metrics.CtrShortcutHit, c.shortcutHit)
	}
	if c.shortcutMiss != 0 {
		ms.Add(metrics.CtrShortcutMiss, c.shortcutMiss)
	}
	if c.maintain != 0 {
		ms.Add(metrics.CtrShortcutMaintain, c.maintain)
	}
	if c.coalesced != 0 {
		ms.Add(metrics.CtrCoalesced, c.coalesced)
	}
	if c.opsRead != 0 {
		ms.Add(metrics.CtrOpsRead, c.opsRead)
	}
	if c.opsWrite != 0 {
		ms.Add(metrics.CtrOpsWrite, c.opsWrite)
	}
	*c = batchCounters{}
	ms.Inc(metrics.CtrBatches)
}

// complete delivers a task's outcome: Run-mode read slot, Batcher reply,
// and the optional latency sample.
func (w *worker) complete(t *task, r taskResult) {
	if t.res != nil {
		*t.res = engine.ReadResult{Index: t.idx, Value: r.value, OK: r.found}
	}
	if t.reply != nil {
		t.reply <- r
	}
	if t.start != 0 {
		w.hist.Observe(float64(time.Now().UnixNano()-t.start) * 1e-9)
	}
}
