package pctt

import "repro/internal/metrics"

// stealWakeThreshold is the queued-bucket count in one ring past which
// producers nudge a parked peer to come steal (see enqueueBucket).
const stealWakeThreshold = 16

// Work stealing for skewed buckets. Static prefix sharding sends every
// Zipf-hot bucket to its home worker; under skew that worker saturates
// while its peers idle. Two complementary mechanisms re-balance:
//
//   - Pull (steal): a worker whose own ring is empty pops one bucket ID
//     from the most-backlogged peer's ring (ring.pop is multi-consumer
//     safe) and executes that bucket itself.
//   - Push (handoff): a worker re-queueing a bucket that refilled during
//     execution — the signature of a sustained-hot bucket — hands it to a
//     parked peer instead of keeping it, so a single mega-hot bucket
//     rotates across idle workers instead of pinning one of them.
//
// Both record the move in bucket.owner, so future queue events route to
// the new worker and the stolen keys' Shortcut_Table entries migrate
// lazily: the new owner misses, re-locates the leaf once, and caches it in
// its own private table (stale entries in the old owner's table are
// harmless — leaf refs self-validate).
//
// Neither mechanism ever splits a bucket: per-key FIFO order is enforced
// by the bucket state machine regardless of which worker runs the bucket.

// setIdle publishes worker id's parked state in the engine's idle mask
// (workers beyond 64 are simply not advertised; stealing still works, only
// the wake hints lose precision).
func (e *Engine) setIdle(id int, idle bool) {
	if id >= 64 {
		return
	}
	if idle {
		e.idleMask.Or(1 << uint(id))
	} else {
		e.idleMask.And(^uint64(1 << uint(id)))
	}
}

// pickIdle returns a parked worker other than exclude, or -1.
func (e *Engine) pickIdle(exclude int) int {
	mask := e.idleMask.Load()
	if exclude < 64 {
		mask &^= 1 << uint(exclude)
	}
	if mask == 0 {
		return -1
	}
	for i := 0; i < len(e.workers) && i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// wakeWorker unparks worker wk if it is (or is about to be) asleep.
func (e *Engine) wakeWorker(wk int) {
	w := e.workers[wk]
	if w.sleeping.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// wakeIdlePeer nudges one parked worker other than origin to run its steal
// path (called when origin's ring is backing up).
func (e *Engine) wakeIdlePeer(origin int) {
	if p := e.pickIdle(origin); p >= 0 {
		e.wakeWorker(p)
	}
}

// stealVictim returns the most-backlogged peer ring (nil if every peer is
// empty). The thief gathers whole buckets from it into its own trigger
// batch; each pop records the ownership handoff.
func (e *Engine) stealVictim(thief int) *ring {
	best, bestLen := -1, 0
	for i := range e.rings {
		if i == thief {
			continue
		}
		if l := e.rings[i].length(); l > bestLen {
			best, bestLen = i, l
		}
	}
	if best < 0 {
		return nil
	}
	return e.rings[best]
}

// requeue re-schedules a bucket whose backlog refilled while it executed.
// If this worker still has queued work of its own and a peer is parked,
// ownership moves there (push handoff); an otherwise-free worker keeps the
// bucket, and with it the bucket's warm Shortcut_Table entries.
func (w *worker) requeue(id int32) {
	e := w.e
	b := &e.buckets[id]
	b.mu.Lock()
	target := b.owner
	if !e.cfg.NoSteal && e.rings[w.id].length() > 0 {
		if p := e.pickIdle(w.id); p >= 0 && int32(p) != target {
			target = int32(p)
			b.owner = target
			b.mu.Unlock()
			e.ms.Inc(metrics.CtrBucketHandoffs)
			e.enqueueBucket(int(target), id)
			return
		}
	}
	b.mu.Unlock()
	e.enqueueBucket(int(target), id)
}
