package pctt

import (
	"sync/atomic"

	"repro/internal/olc"
)

// scTable is the worker-private Shortcut_Table: an open-addressed
// linear-probe map from key hash to (key, leaf reference). It replaces a
// Go map on the trigger hot path for the same reason the grouping table
// does (worker.gtab): one probe is two compares on a flat slice, there is
// no per-insert allocation in steady state, and the table never has to
// hash — the key's hash is computed once at submit and carried in the
// task.
//
// The table is keyed purely by hash: a hash collision between two live
// keys resolves last-writer-wins, exactly like the previous map keyed by
// uint64 (the caller verifies the stored key on every hit, so a collision
// is just a miss). Deletes leave tombstones; probes skip them and inserts
// reuse them.
type scTable struct {
	slots []scSlot
	mask  uint64
	live  int // live entries (excludes tombstones)
	used  int // live + tombstones (bounds probe-chain growth)
	// liveA mirrors live for cross-goroutine gauge reads (the obs layer's
	// shortcut-occupancy gauge); only the owning worker writes it.
	liveA atomic.Int64
}

// syncLive publishes live to the atomic mirror after a mutation.
func (t *scTable) syncLive() { t.liveA.Store(int64(t.live)) }

type scSlot struct {
	hash  uint64
	state uint8 // 0 empty, 1 live, 2 tombstone
	key   []byte
	leaf  olc.LeafRef
}

const (
	scEmpty uint8 = iota
	scLive
	scDead
)

// scInitSlots is the initial table size; the table doubles at 50% load so
// light uses (unit tests, small keyspaces) stay small.
const scInitSlots = 1024

func newSCTable() *scTable {
	t := &scTable{slots: make([]scSlot, scInitSlots)}
	t.mask = uint64(len(t.slots) - 1)
	return t
}

// get returns the live entry for hash, or nil.
func (t *scTable) get(hash uint64) *scSlot {
	pos := hash & t.mask
	for {
		s := &t.slots[pos]
		switch {
		case s.state == scEmpty:
			return nil
		case s.state == scLive && s.hash == hash:
			return s
		}
		pos = (pos + 1) & t.mask
	}
}

// put inserts or overwrites the entry for hash and reports whether the
// entry is new (the caller tracks population against ShortcutCap).
func (t *scTable) put(hash uint64, key []byte, leaf olc.LeafRef) bool {
	pos := hash & t.mask
	var grave *scSlot
	for {
		s := &t.slots[pos]
		switch {
		case s.state == scEmpty:
			if grave != nil {
				s = grave // reuse the tombstone; chain stays intact
			} else {
				t.used++
			}
			s.hash, s.state, s.key, s.leaf = hash, scLive, key, leaf
			t.live++
			t.syncLive()
			return true
		case s.state == scLive && s.hash == hash:
			s.key, s.leaf = key, leaf
			return false
		case s.state == scDead && grave == nil:
			grave = s
		}
		pos = (pos + 1) & t.mask
	}
}

// del removes the live entry for hash, leaving a tombstone.
func (t *scTable) del(hash uint64) {
	pos := hash & t.mask
	for {
		s := &t.slots[pos]
		switch {
		case s.state == scEmpty:
			return
		case s.state == scLive && s.hash == hash:
			s.state = scDead
			s.key, s.leaf = nil, olc.LeafRef{}
			t.live--
			t.syncLive()
			return
		}
		pos = (pos + 1) & t.mask
	}
}

// maintain keeps the table healthy after an insert: past 50% occupancy it
// either doubles (rehashing live entries, dropping tombstones) or — when
// cap says the population itself is the problem — clears wholesale (the
// epoch eviction the Config documents). Growth stops at the table size
// that holds cap live entries at 50% load.
func (t *scTable) maintain(cap int) {
	if t.live >= cap {
		t.clear()
		return
	}
	if 2*t.used < len(t.slots) {
		return
	}
	newLen := 2 * len(t.slots)
	if max := 2 * pow2AtLeast(cap); newLen > max {
		// Table is as large as the cap ever needs; just drop tombstones.
		newLen = len(t.slots)
	}
	old := t.slots
	t.slots = make([]scSlot, newLen)
	t.mask = uint64(newLen - 1)
	t.live, t.used = 0, 0
	for i := range old {
		if old[i].state == scLive {
			t.put(old[i].hash, old[i].key, old[i].leaf)
		}
	}
}

// clear drops every entry (epoch eviction), keeping the backing array.
func (t *scTable) clear() {
	clear(t.slots)
	t.live, t.used = 0, 0
	t.syncLive()
}

func pow2AtLeast(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
