package pctt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/workload"
)

func testWorkload(t testing.TB, nKeys, nOps int, seed int64) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.Spec{
		Name: workload.EA, NumKeys: nKeys, NumOps: nOps,
		ReadRatio: 0.5, InsertFraction: 0.25, Seed: seed,
	})
}

// replay computes the sequential reference state of a workload.
func replay(w *workload.Workload) map[string]uint64 {
	ref := map[string]uint64{}
	for i, k := range w.Keys {
		ref[string(k)] = uint64(i)
	}
	for _, op := range w.Ops {
		switch op.Kind {
		case workload.Write:
			ref[string(op.Key)] = op.Value
		case workload.Delete:
			delete(ref, string(op.Key))
		}
	}
	return ref
}

// TestRunMatchesReferenceMap: the parallel engine's final state must equal
// a sequential map replay (per-key last-write-wins), at several worker
// counts.
func TestRunMatchesReferenceMap(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			w := testWorkload(t, 2000, 20000, 41)
			e := New(Config{Workers: workers, ChunkSize: 64})
			defer e.Close()
			e.Load(w.Keys, nil)
			res := e.Run(w.Ops)
			if res.Ops != len(w.Ops) {
				t.Fatalf("res.Ops = %d", res.Ops)
			}
			ref := replay(w)
			if e.Tree().Len() != len(ref) {
				t.Fatalf("tree has %d keys, reference %d", e.Tree().Len(), len(ref))
			}
			for ks, want := range ref {
				if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
					t.Fatalf("key %q = (%d,%v), want %d", ks, got, ok, want)
				}
			}
		})
	}
}

// TestPerKeyReadYourWrites is the parallel version of the serial model's
// central ordering property (DESIGN.md §4): every read in the stream must
// observe exactly the value of the last earlier write to the same key
// (sharding sends all of a key's operations to one worker, FIFO).
func TestPerKeyReadYourWrites(t *testing.T) {
	w := testWorkload(t, 1500, 30000, 42)
	e := New(Config{Workers: 4, ChunkSize: 32, CollectReads: true})
	defer e.Close()
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)

	// Expected value of each read = prefix replay at its stream position.
	type expect struct {
		value uint64
		ok    bool
	}
	state := map[string]uint64{}
	for i, k := range w.Keys {
		state[string(k)] = uint64(i)
	}
	want := make([]expect, len(w.Ops))
	for i, op := range w.Ops {
		switch op.Kind {
		case workload.Read:
			v, ok := state[string(op.Key)]
			want[i] = expect{v, ok}
		case workload.Write:
			state[string(op.Key)] = op.Value
		case workload.Delete:
			delete(state, string(op.Key))
		}
	}

	nReads := 0
	for _, r := range res.Reads {
		e := want[r.Index]
		if r.OK != e.ok || (r.OK && r.Value != e.value) {
			t.Fatalf("read at op %d = (%d,%v), want (%d,%v)",
				r.Index, r.Value, r.OK, e.value, e.ok)
		}
		nReads++
	}
	expected := 0
	for _, op := range w.Ops {
		if op.Kind == workload.Read {
			expected++
		}
	}
	if nReads != expected {
		t.Fatalf("collected %d read results, stream has %d reads", nReads, expected)
	}
}

// TestBatcherSemantics exercises the blocking API: replaced/deleted flags
// and read-your-writes for a single caller.
func TestBatcherSemantics(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()

	k := []byte("alpha\x00")
	if _, ok := e.Get(k); ok {
		t.Fatal("get on empty store")
	}
	if e.Put(k, 7) {
		t.Fatal("first put reported replaced")
	}
	if v, ok := e.Get(k); !ok || v != 7 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if !e.Put(k, 8) {
		t.Fatal("second put did not report replaced")
	}
	if v, ok := e.Get(k); !ok || v != 8 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if !e.Delete(k) {
		t.Fatal("delete missed existing key")
	}
	if e.Delete(k) {
		t.Fatal("double delete reported deleted")
	}
	if _, ok := e.Get(k); ok {
		t.Fatal("get after delete")
	}
}

// TestBatcherConcurrentStress is the -race stress test: concurrent mixed
// read/write workloads through the Batcher, cross-checked against
// per-producer sequential map replays. Producers own disjoint key
// namespaces (exact check) and also hammer a small shared hot set
// (contention; value must be one that some producer wrote).
func TestBatcherConcurrentStress(t *testing.T) {
	e := New(Config{Workers: 4, BatchSize: 64})
	defer e.Close()

	const G, opsPerG, ownKeys = 8, 3000, 64
	sharedVals := make(map[uint64]bool)
	var sharedMu sync.Mutex

	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			local := map[string]uint64{}
			for i := 0; i < opsPerG; i++ {
				if rng.Intn(8) == 0 {
					// Shared hot keys: contended across producers.
					k := []byte(fmt.Sprintf("shared:%d\x00", rng.Intn(4)))
					v := uint64(g)<<32 | uint64(i)
					sharedMu.Lock()
					sharedVals[v] = true
					sharedMu.Unlock()
					e.Put(k, v)
					continue
				}
				k := []byte(fmt.Sprintf("g%d:key%02d\x00", g, rng.Intn(ownKeys)))
				ks := string(k)
				switch rng.Intn(4) {
				case 0, 1:
					want, wantOK := local[ks]
					got, ok := e.Get(k)
					if ok != wantOK || (ok && got != want) {
						t.Errorf("g%d: get %q = (%d,%v), want (%d,%v)",
							g, ks, got, ok, want, wantOK)
						return
					}
				case 2:
					v := uint64(g*opsPerG + i)
					_, existed := local[ks]
					if replaced := e.Put(k, v); replaced != existed {
						t.Errorf("g%d: put %q replaced=%v want %v", g, ks, replaced, existed)
						return
					}
					local[ks] = v
				default:
					_, existed := local[ks]
					if deleted := e.Delete(k); deleted != existed {
						t.Errorf("g%d: delete %q deleted=%v want %v", g, ks, deleted, existed)
						return
					}
					delete(local, ks)
				}
			}
			// Final check of the owned namespace.
			for ks, want := range local {
				if got, ok := e.Get([]byte(ks)); !ok || got != want {
					t.Errorf("g%d: final %q = (%d,%v), want %d", g, ks, got, ok, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Shared keys hold some written value.
	for i := 0; i < 4; i++ {
		k := []byte(fmt.Sprintf("shared:%d\x00", i))
		if v, ok := e.Get(k); ok && !sharedVals[v] {
			t.Fatalf("shared key %q holds unknown value %d", k, v)
		}
	}
}

// TestRunConcurrentWithBatcher mixes stream execution and blocking calls
// on disjoint namespaces; run under -race.
func TestRunConcurrentWithBatcher(t *testing.T) {
	e := New(Config{Workers: 2, ChunkSize: 32})
	defer e.Close()
	w := testWorkload(t, 1000, 10000, 43)
	e.Load(w.Keys, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			k := []byte(fmt.Sprintf("side:%03d\x00", i%100))
			e.Put(k, uint64(i))
			if v, ok := e.Get(k); !ok || v != uint64(i) {
				t.Errorf("side channel RYW broke: got (%d,%v) want %d", v, ok, i)
				return
			}
		}
	}()
	e.Run(w.Ops)
	<-done

	ref := replay(w)
	for ks, want := range ref {
		if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
			t.Fatalf("key %q = (%d,%v), want %d", ks, got, ok, want)
		}
	}
}

// TestCloseThenUse: after Close, the Batcher and Run fall back to direct
// execution instead of deadlocking.
func TestCloseThenUse(t *testing.T) {
	e := New(Config{Workers: 2})
	k := []byte("k\x00")
	e.Put(k, 1) // starts the pipeline
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Get(k); !ok || v != 1 {
		t.Fatalf("post-close get = (%d,%v)", v, ok)
	}
	e.Put(k, 2)
	res := e.Run([]workload.Op{{Kind: workload.Read, Key: k}})
	if res.Ops != 1 {
		t.Fatal("post-close run did not execute")
	}
	if v, _ := e.Get(k); v != 2 {
		t.Fatalf("post-close state wrong: %d", v)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestCoalescingCounters: a hot-key stream must coalesce and populate the
// shortcut table. NoBypass pins the single worker to the pipeline path —
// by default a Workers==1 engine with an empty queue executes directly.
func TestCoalescingCounters(t *testing.T) {
	e := New(Config{Workers: 1, BatchSize: 1024, ChunkSize: 1024, NoBypass: true})
	defer e.Close()
	// A few sibling keys so the tree has internal nodes (a bare-leaf root
	// admits no shortcut).
	e.Load([][]byte{
		[]byte("hoa\x00"), []byte("hob\x00"), []byte("hoc\x00"),
	}, nil)
	hot := []byte("hot\x00")
	ops := make([]workload.Op, 0, 2048)
	for i := 0; i < 1024; i++ {
		if i%2 == 0 {
			ops = append(ops, workload.Op{Kind: workload.Write, Key: hot, Value: uint64(i)})
		} else {
			ops = append(ops, workload.Op{Kind: workload.Read, Key: hot})
		}
	}
	e.Run(ops)
	if c := e.Metrics().Get("coalesced_ops"); c == 0 {
		t.Fatal("hot-key stream produced no coalescing")
	}
	if v, ok := e.Tree().Get(hot); !ok || v != 1022 {
		t.Fatalf("final hot value = (%d,%v), want 1022", v, ok)
	}
	e.Run(ops) // second run should hit the shortcut table
	if h := e.Metrics().Get("shortcut_hit"); h == 0 {
		t.Fatal("no shortcut hits on re-run")
	}
}
