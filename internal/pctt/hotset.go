package pctt

import (
	"bytes"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/olc"
)

// hotset is the worker-private software Tree_buffer (paper §III-E): a
// small cache of decoded interior-node references ("anchors"), one per
// combine bucket, ranked by bucket-population value under the same
// value-aware replacement the accel simulator uses (mem.NewValueAware).
// A resident anchor lets the bucket's next batch descent (olc.LocateBatch)
// start below the root, skipping the shared upper levels entirely —
// generalizing the leaf-only Shortcut_Table to interior nodes.
//
// Entries are keyed by bucket ID, so the residency ranking is exactly the
// paper's: the value of a cached node is the population of operations
// flowing through its bucket, and a new bucket displaces the cheapest
// resident one only when it has proven more valuable (Admit). Anchors
// self-validate through the olc obsolete flag — LocateBatch refuses a
// stale anchor and the worker invalidates the entry.
//
// A hotset is goroutine-local to its worker; liveA mirrors the population
// for the obs layer's occupancy gauge.
type hotset struct {
	capN    int
	entries map[uint64]*hotEntry
	policy  mem.Policy
	liveA   atomic.Int64
}

// hotEntry is one resident anchor. path holds the anchor's leading key
// bytes (length == anchor.Depth()); before descending from the anchor the
// worker verifies every batch key carries these bytes, which is what makes
// a from-anchor descent sound for keys that never loaded the bucket's
// common prefix.
type hotEntry struct {
	anchor olc.Ref
	path   []byte
	value  int64
}

// newHotset returns a hotset bounded to capN anchors, or nil when the
// feature is disabled (capN <= 0); a nil hotset reads as always-miss.
func newHotset(capN int) *hotset {
	if capN <= 0 {
		return nil
	}
	return &hotset{
		capN:    capN,
		entries: make(map[uint64]*hotEntry, capN),
		policy:  mem.NewValueAware(),
	}
}

// get returns the resident anchor for a bucket.
func (h *hotset) get(bucket uint64) (olc.Ref, []byte, bool) {
	e, ok := h.entries[bucket]
	if !ok {
		return olc.Ref{}, nil, false
	}
	return e.anchor, e.path, true
}

// put inserts or refreshes the bucket's anchor, crediting delta (the
// operations the bucket's batch just executed) to its value. At capacity
// the value-aware policy admits the new bucket only when its first batch
// outweighs the cheapest resident one; evicted reports a displacement.
func (h *hotset) put(bucket uint64, anchor olc.Ref, pathSrc []byte, delta int64) (evicted bool) {
	d := anchor.Depth()
	if e, ok := h.entries[bucket]; ok {
		e.value += delta
		e.anchor = anchor
		e.path = append(e.path[:0], pathSrc[:d]...)
		h.policy.OnAccess(bucket, e.value)
		return false
	}
	if len(h.entries) >= h.capN {
		if !h.policy.Admit(delta) {
			return false
		}
		v := h.policy.Victim()
		h.policy.OnEvict(v)
		delete(h.entries, v)
		evicted = true
	}
	// pathSrc is a task key owned by a producer; copy the anchor bytes so
	// the entry survives the key buffer's reuse.
	h.entries[bucket] = &hotEntry{
		anchor: anchor,
		path:   append([]byte(nil), pathSrc[:d]...),
		value:  delta,
	}
	h.policy.OnInsert(bucket, delta)
	h.liveA.Store(int64(len(h.entries)))
	return evicted
}

// invalidate drops the bucket's anchor (its node went obsolete).
func (h *hotset) invalidate(bucket uint64) {
	if _, ok := h.entries[bucket]; !ok {
		return
	}
	h.policy.OnEvict(bucket)
	delete(h.entries, bucket)
	h.liveA.Store(int64(len(h.entries)))
}

// covers reports whether an anchor at the given depth/path can serve every
// key: each key must be at least depth bytes long and carry the anchor's
// path bytes. One short or divergent key disqualifies the whole batch —
// the descent then starts from the root, which is always sound.
func covers(keys [][]byte, depth int, path []byte) bool {
	for _, k := range keys {
		if len(k) < depth || !bytes.Equal(k[:depth], path) {
			return false
		}
	}
	return true
}
