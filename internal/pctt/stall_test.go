package pctt

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestWorkerStallFlipsHealthCriticalAndDumpsBundle is the observability
// acceptance path end to end: a fault-injected stall in one P-CTT worker
// (BatchHook blocking before trigger execution, freezing its heartbeat
// with ops in flight) must flip the health engine to critical within the
// stall rule's window budget, while the healthy worker keeps the other
// bucket flowing; the flight-recorder bundle dumped at that moment must
// carry the stalled worker's heartbeat series and a goroutine profile.
func TestWorkerStallFlipsHealthCriticalAndDumpsBundle(t *testing.T) {
	release := make(chan struct{})
	var releasedOnce atomic.Bool
	releaseAll := func() {
		if releasedOnce.CompareAndSwap(false, true) {
			close(release)
		}
	}

	e := New(Config{
		Workers: 2,
		NoSteal: true, // keep the stalled bucket pinned to its home worker
		BatchHook: func(worker int) {
			if worker == 1 {
				// Block before execution and before the heartbeat bump:
				// the batch's ops stay counted in flight while the
				// heartbeat freezes — a stalled worker, not an idle one.
				<-release
			}
		},
	})
	defer e.Close()
	// LIFO: the workers must be unblocked before Close waits for them.
	defer releaseAll()

	reg := obs.NewRegistry()
	e.RegisterObs(reg)
	const tick = 25 * time.Millisecond
	col := obs.NewCollector(reg, tick, 64)
	defer col.Stop()
	health := obs.NewHealth(col, obs.DefaultHealthRules()...)

	// Two keys pinned to the two workers via the combining prefix (no
	// Load, so the prefix starts at byte 0 and bucket = first byte with
	// the default 8 PrefixBits; owner = bucket mod Workers).
	key0 := binary.BigEndian.AppendUint32(nil, 0<<24)
	key1 := binary.BigEndian.AppendUint32(nil, 1<<24)
	if got := e.shardOf(key0) % 2; got != 0 {
		t.Fatalf("key0 maps to worker %d, want 0", got)
	}
	if got := e.shardOf(key1) % 2; got != 1 {
		t.Fatalf("key1 maps to worker %d, want 1", got)
	}

	// Producer A: blocking writes through worker 0 — its heartbeat must
	// keep advancing so only the injected stall fires.
	stop := make(chan struct{})
	var stoppedOnce atomic.Bool
	stopProducers := func() {
		if stoppedOnce.CompareAndSwap(false, true) {
			close(stop)
		}
	}
	defer stopProducers()
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.Put(key0, 1)
			time.Sleep(time.Millisecond)
		}
	}()
	// Producer B: async writes into worker 1's bucket. The first batch
	// blocks in the hook; the rest pile up as in-flight backlog until the
	// per-bucket queue gate blocks this goroutine too.
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		for i := 0; i < 512; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.PutAsync(key1, uint64(i))
		}
	}()

	// The stall rule needs DefaultHealthWindows consecutive holds (plus
	// one window of history for the heartbeat comparison): well under a
	// second at this tick. Poll with slack for loaded CI machines.
	deadline := time.Now().Add(10 * time.Second)
	var st obs.Status
	for {
		st = health.Status()
		if st.Status == "critical" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never turned critical; status = %+v", st)
		}
		time.Sleep(tick / 2)
	}
	foundStall := false
	for _, f := range st.Firing {
		if f.Rule == "worker-stalled" && strings.Contains(f.Instance, `worker="1"`) {
			foundStall = true
		}
	}
	if !foundStall {
		t.Fatalf("critical without a worker-1 stall firing: %+v", st.Firing)
	}

	// Dump the post-mortem bundle while the stall is live.
	fr := obs.NewFlightRecorder(t.TempDir(), obs.Diagnostics{
		Registry: reg, Collector: col, Health: health,
	}, health)
	bundle, err := fr.Trigger("test-stall")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	wdata, err := os.ReadFile(filepath.Join(bundle, "windows.json"))
	if err != nil {
		t.Fatalf("windows.json: %v", err)
	}
	// Series names carry labels; JSON escapes the inner quotes.
	if !strings.Contains(string(wdata), `dcart_pctt_worker_heartbeat{worker=\"1\"}`) {
		t.Fatalf("bundle windows missing the stalled worker's heartbeat series")
	}
	gdata, err := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	if err != nil {
		t.Fatalf("goroutines.txt: %v", err)
	}
	if !strings.Contains(string(gdata), "goroutine ") {
		t.Fatalf("goroutines.txt is not a stack profile")
	}
	hdata, err := os.ReadFile(filepath.Join(bundle, "health.json"))
	if err != nil {
		t.Fatalf("health.json: %v", err)
	}
	if !strings.Contains(string(hdata), "worker-stalled") {
		t.Fatalf("health.json missing the firing rule:\n%s", hdata)
	}

	// Unblock the stalled worker and stop the producers; health must
	// recover once the backlog drains and heartbeats resume.
	releaseAll()
	stopProducers()
	<-doneA
	<-doneB
	deadline = time.Now().Add(10 * time.Second)
	for {
		st = health.Status()
		ok := true
		for _, f := range st.Firing {
			if f.Rule == "worker-stalled" {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall firing never cleared after release; status = %+v", st)
		}
		time.Sleep(tick / 2)
	}
}

// TestWorkerHeartbeatsAdvance checks the heartbeat instrumentation on the
// happy path: every worker that executed batches shows progress, and the
// registered gauges expose it per worker.
func TestWorkerHeartbeatsAdvance(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	// The engine retains key slices; give every op its own buffer.
	for i := 0; i < 2048; i++ {
		key := binary.BigEndian.AppendUint32(nil, uint32(i)<<16)
		e.Put(key, uint64(i))
	}
	beats := e.WorkerHeartbeats()
	if len(beats) != 2 {
		t.Fatalf("heartbeats = %v, want 2 workers", beats)
	}
	var total uint64
	for i, b := range beats {
		if b != e.WorkerHeartbeat(i) {
			t.Fatalf("accessor mismatch for worker %d", i)
		}
		total += b
	}
	if total == 0 {
		t.Fatal("no worker heartbeat advanced after 2048 pipelined ops")
	}
	if e.MaxInflight() <= 0 {
		t.Fatalf("MaxInflight = %d, want the defaulted bound", e.MaxInflight())
	}
	if e.WorkerHeartbeat(99) != 0 || e.WorkerHeartbeat(-1) != 0 {
		t.Fatal("out-of-range heartbeat accessor not zero")
	}
}
