package pctt

import "flag"

// RegisterFlags registers the engine's tuning knobs on fs, writing parsed
// values straight into c. The flag names, defaults, and help text live
// here once; both dcart-kv and the store flag helper register through this
// method instead of hand-copying the -batch-* set per binary. Zero values
// keep the engine defaults (Config.Defaults).
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "batch-workers", 0,
		"route point ops through the parallel CTT engine with n workers (0 = direct)")
	fs.DurationVar(&c.MaxDelay, "batch-max-delay", 0,
		"combine-window deadline: a request waits at most this long for peers to coalesce with (0 = engine default 100µs, negative disables deferral)")
	fs.IntVar(&c.MinBatch, "batch-min-batch", 0,
		"combine-window fill target: buckets at or above this execute immediately (0 = engine default 64)")
	fs.IntVar(&c.QueueDepth, "batch-queue-depth", 0,
		"per-bucket backlog bound in operations (0 = engine default 4096)")
	fs.IntVar(&c.MaxInflight, "batch-max-inflight", 0,
		"total submitted-but-incomplete operation bound — the queue-wait knob (0 = engine default 4x batch size)")
	fs.BoolVar(&c.NoSteal, "batch-no-steal", false,
		"disable whole-bucket work stealing and handoff (pin buckets to their home worker)")
	fs.IntVar(&c.HotsetCap, "batch-hotset", 0,
		"per-worker hot-node residency anchors for batch descents (0 = engine default 64, negative disables)")
}
