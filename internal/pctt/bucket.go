package pctt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Bucket states. Transitions (always under bucket.mu):
//
//	idle   --first pending op-->            queued  (ID pushed to owner's ring)
//	queued --popped by a worker-->          running (backlog chunks gathered)
//	running--backlog refilled during exec-->queued  (ID re-pushed, possibly handed off)
//	running--backlog empty after exec-->    idle
//
// A queued bucket has exactly one ring entry, so at most one worker ever
// runs a bucket at a time; combined with the FIFO backlog this gives
// per-key FIFO (read-your-writes) no matter which worker ends up executing
// the bucket — the property that makes whole-bucket work stealing safe.
const (
	bIdle int32 = iota
	bQueued
	bRunning
)

// bucket is one combine bucket: all keys sharing a PrefixBits-bit prefix.
// It is the unit of batching, of deadline accounting (windowStart opens
// when the first op arrives), and of work stealing (a bucket moves between
// workers whole).
//
// The backlog is a FIFO list of task chunks whose ownership producers hand
// over at submit — the tasks themselves are copied exactly once on their
// way through the pipeline (chunk into the executing worker's batch), and
// the resident pointer-bearing memory the collector must scan stays
// bounded by the in-flight window rather than by high-water backlogs.
type bucket struct {
	mu     sync.Mutex
	cond   sync.Cond // producers waiting for backlog space
	chunks [][]task  // FIFO backlog; chunk ownership passes to the bucket
	nops   int       // total tasks across chunks
	// state is written only under mu (the transitions above) but stored
	// atomically so the observability layer can read live idle/queued/
	// running gauge counts without taking 2^PrefixBits bucket locks.
	state atomic.Int32
	// windowStart is the unix-nano time the current combine window opened
	// (idle->queued transition or post-execution re-queue); the deadline
	// MaxDelay is measured from here.
	windowStart int64
	waiters     int
	// owner is the worker whose ring receives this bucket's queue events.
	// It starts at bucketID mod Workers and is re-recorded on every steal
	// or handoff; Shortcut_Table entries migrate lazily (the new owner
	// simply misses and re-populates its private table).
	owner int32
}

// submitOne routes a single task (Batcher path) through a pooled
// single-task chunk.
func (e *Engine) submitOne(shard int, t task) {
	e.submitChunk(shard, append(e.getChunk(), t))
}

// submitChunk appends a pre-sharded run of tasks to the bucket's backlog,
// taking ownership of the chunk (the executing worker recycles it).
// Backpressure is two-level: the global MaxInflight gate bounds total
// queue wait, and the per-bucket QueueDepth cap keeps any one hot bucket
// from absorbing the whole allowance.
func (e *Engine) submitChunk(shard int, chunk []task) {
	b := &e.buckets[shard]
	e.inflightGate()
	e.inflight.Add(int64(len(chunk)))
	b.mu.Lock()
	for b.nops >= e.cfg.QueueDepth {
		b.waiters++
		b.cond.Wait()
		b.waiters--
	}
	b.chunks = append(b.chunks, chunk)
	b.nops += len(chunk)
	notify := int32(-1)
	if b.state.Load() == bIdle {
		b.state.Store(bQueued)
		b.windowStart = time.Now().UnixNano()
		notify = b.owner
	}
	b.mu.Unlock()
	if notify >= 0 {
		e.enqueueBucket(int(notify), int32(shard))
	}
}

// inflightGate applies the global MaxInflight bound: a producer yields the
// processor until the pipeline has drained below the bound. Yield-spinning
// (rather than a condition variable) is deliberate — the bound only binds
// while workers are saturated, which is exactly when yielding hands them
// the processor; there is no state in which both sides sleep.
func (e *Engine) inflightGate() {
	for e.inflight.Load() >= int64(e.cfg.MaxInflight) {
		runtime.Gosched()
	}
}

// enqueueBucket publishes a queued bucket to worker wk's ring and makes
// sure someone will process it: the owner is woken if parked, and when the
// ring holds a serious backlog (more queued buckets than could possibly
// fill the owner's next gathered batch) an idle peer is nudged to come
// steal. The high threshold matters: waking thieves for small backlogs
// fragments trigger batches and churns bucket ownership — and with it the
// per-worker Shortcut_Tables — for no added bandwidth.
func (e *Engine) enqueueBucket(wk int, id int32) {
	r := e.rings[wk]
	r.mustPush(id)
	e.wakeWorker(wk)
	if !e.cfg.NoSteal && int(r.length()) > stealWakeThreshold {
		e.wakeIdlePeer(wk)
	}
}
