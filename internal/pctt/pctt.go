// Package pctt implements P-CTT: a truly parallel Combine-Traverse-Trigger
// engine running on the olc concurrent ART.
//
// Where internal/ctt models the paper's CTT pipeline serially and counts
// events, pctt executes it with real goroutines for real wall-clock
// throughput:
//
//   - Combine — a combining front end shards incoming operations by the
//     leading PrefixBits bits of the key (after the loaded key set's
//     common prefix, as in internal/ctt) and appends them to per-worker
//     bounded queues. Each worker owns the disjoint shard set
//     {s : s mod Workers == workerID}, so all operations on one key always
//     reach the same worker, in submission order.
//   - Traverse — a worker drains its queue batch-at-a-time, coalesces the
//     batch's operations into per-key groups, and locates each group's
//     target node once: via its private, lock-free Shortcut_Table
//     (key -> olc.Ref) when possible, via one root descent otherwise.
//   - Trigger — a group's operations execute together against the located
//     node: reads after the first are served from the group's running
//     value, consecutive writes combine into one olc.Put (one version-lock
//     acquisition for the whole group).
//
// Because shards are disjoint by prefix, only one worker ever mutates a
// given key, which is what makes write-combining and the per-worker
// shortcut tables safe without any cross-worker synchronization; residual
// lock contention (nodes shared across prefixes, near the root) is real
// and shows up in the olc tree's contention counter.
//
// The engine is exposed three ways: as an engine.Engine (Run over an
// operation stream, used by the harness and the integration cross-checks),
// as a blocking Batcher API (Get/Put/Delete, used by the kvserver hot path
// to coalesce concurrent TCP requests), and through native testing.B
// benchmarks in the repository root.
//
// Ordering contract: per key, per producer, FIFO — a producer that issues
// W(k,v) then R(k) observes v (read-your-writes). Cross-key ordering is
// not preserved, exactly like the hardware CTT model.
package pctt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/olc"
	"repro/internal/workload"
)

// Config parameterizes the parallel engine.
type Config struct {
	// Workers is the number of worker goroutines (SOU analogues). Default
	// runtime.GOMAXPROCS(0); the paper's hardware has 16 SOUs.
	Workers int
	// PrefixBits is the number of leading key bits (after the key set's
	// common prefix) used as the combining shard label (default 8,
	// matching the PCU).
	PrefixBits int
	// BatchSize is the cap on operations a worker coalesces per trigger
	// batch (default 4096). Larger batches raise the coalescing rate; the
	// cap only binds under backlog (workers never wait to fill a batch),
	// so it does not add latency on an idle pipeline.
	BatchSize int
	// ChunkSize is the number of operations per queue message when Run
	// pre-shards a stream (default 256); it amortizes channel overhead.
	ChunkSize int
	// QueueDepth is the per-worker queue capacity in messages (default
	// 128). A full queue applies backpressure to producers.
	QueueDepth int
	// ShortcutCap bounds each worker's Shortcut_Table population (default
	// 1<<16 entries); exceeding it clears the table (epoch eviction).
	ShortcutCap int
	// CollectReads makes Run record every read's result, as in
	// engine.Config.
	CollectReads bool
	// RecordLatency samples per-operation pipeline latency (submission to
	// completion) into a histogram; see LatencyHistogram.
	RecordLatency bool
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PrefixBits <= 0 || c.PrefixBits > 16 {
		c.PrefixBits = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.ShortcutCap <= 0 {
		c.ShortcutCap = 1 << 16
	}
	return c
}

// taskResult is the outcome delivered to a blocking Batcher call.
type taskResult struct {
	value uint64
	found bool // read: key present; put: value replaced; delete: key removed
}

// task is one operation in flight through the pipeline.
type task struct {
	kind  workload.Kind
	key   []byte
	value uint64
	// res, when non-nil, is the Run-mode destination slot for a read.
	res *engine.ReadResult
	idx int // stream index for res
	// reply, when non-nil, receives the Batcher-mode outcome (buffered 1).
	reply chan taskResult
	// start is a unix-nano submission stamp when latency recording is on.
	start int64
}

// batchMsg is one queue message: either a chunk of tasks or a single task.
type batchMsg struct {
	tasks []task // nil => use one
	one   task
	// pooled marks tasks as borrowed from chunkPool (returned by the worker).
	pooled bool
	// done is decremented once the message's tasks have fully executed.
	done *sync.WaitGroup
}

// chunkPool recycles Run-mode task chunks between producers and workers.
var chunkPool = sync.Pool{
	New: func() any { return make([]task, 0, 512) },
}

// replyPool recycles Batcher reply channels.
var replyPool = sync.Pool{
	New: func() any { return make(chan taskResult, 1) },
}

// Engine is the parallel CTT engine. Construct with New; call Close to
// stop the workers when done.
type Engine struct {
	name string
	cfg  Config

	tree *olc.Tree
	ms   *metrics.Set

	// prefixSkip is the number of leading bytes shared by every loaded
	// key; the combining prefix starts after them. Set by Load.
	prefixSkip int

	started atomic.Bool
	mu      sync.RWMutex // started/closed vs. submitters
	closed  bool
	queues  []chan batchMsg
	workers []*worker
	wg      sync.WaitGroup

	runMu sync.Mutex // serializes Run calls
}

// New returns a parallel CTT engine. Workers start lazily on first use.
func New(cfg Config) *Engine {
	cfg = cfg.Defaults()
	ms := metrics.NewSet()
	return &Engine{
		name: "P-CTT",
		cfg:  cfg,
		tree: olc.New(ms),
		ms:   ms,
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Tree exposes the underlying concurrent index (used by kvserver for
// scans/snapshots and by the integration cross-checks). Direct writes to
// the tree while the pipeline is active break the single-writer-per-key
// invariant; restrict direct access to reads or quiescent phases.
func (e *Engine) Tree() *olc.Tree { return e.tree }

// Metrics returns the live counter set (shared with the tree).
func (e *Engine) Metrics() *metrics.Set { return e.ms }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// start launches the worker pool once.
func (e *Engine) start() {
	if e.started.Load() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started.Load() || e.closed {
		return
	}
	e.queues = make([]chan batchMsg, e.cfg.Workers)
	e.workers = make([]*worker, e.cfg.Workers)
	for i := range e.queues {
		e.queues[i] = make(chan batchMsg, e.cfg.QueueDepth)
		e.workers[i] = newWorker(e, i)
	}
	e.wg.Add(e.cfg.Workers)
	for i, w := range e.workers {
		go w.run(e.queues[i])
	}
	e.started.Store(true)
}

// Close stops the worker pool after draining in-flight operations.
// Subsequent Batcher calls execute directly against the tree; subsequent
// Run calls fall back to sequential execution.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	if e.started.Load() {
		for _, q := range e.queues {
			close(q)
		}
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}

// shardOf maps a key to its combining shard: the PrefixBits-bit key prefix
// taken after the loaded key set's common leading bytes (same labeling as
// internal/ctt's bucketOf).
func (e *Engine) shardOf(key []byte) int {
	i := e.prefixSkip
	var b0, b1 byte
	if i < len(key) {
		b0 = key[i]
	}
	if i+1 < len(key) {
		b1 = key[i+1]
	}
	v := uint32(b0)<<8 | uint32(b1)
	return int(v >> uint(16-e.cfg.PrefixBits))
}

// workerOf maps a key to the worker owning its shard.
func (e *Engine) workerOf(key []byte) int {
	return e.shardOf(key) % e.cfg.Workers
}

// Load implements engine.Engine: bulk-insert the initial key set (not
// measured, not pipelined) and derive the combining-prefix position.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.prefixSkip = commonPrefixLenAll(keys)
	for i, k := range keys {
		v := uint64(i)
		if values != nil {
			v = values[i]
		}
		e.tree.Put(k, v)
	}
	e.ms.Reset() // loading is not part of the measurement
}

// Reset implements engine.Engine: clear counters; the tree and the
// per-worker shortcut tables persist (index state, not measurement).
func (e *Engine) Reset() {
	e.ms.Reset()
}

// Run implements engine.Engine: execute the stream through the parallel
// pipeline and block until every operation has applied. Guarantees per-key
// stream order; cross-key order is unspecified (last-write-wins per key
// matches a sequential replay).
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.start()
	e.runMu.Lock()
	defer e.runMu.Unlock()

	res := &engine.Result{Name: e.name, Ops: len(ops), Metrics: e.ms}
	var slots []engine.ReadResult
	if e.cfg.CollectReads {
		slots = make([]engine.ReadResult, len(ops))
		for i := range slots {
			slots[i].Index = -1
		}
	}

	t0 := time.Now()
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.runSequential(ops, slots)
	} else {
		e.dispatch(ops, slots)
		e.mu.RUnlock()
	}
	res.WallNanos = time.Since(t0).Nanoseconds()

	if slots != nil {
		for i := range slots {
			if slots[i].Index >= 0 {
				res.Reads = append(res.Reads, slots[i])
			}
		}
	}
	return res
}

// dispatch pre-shards the stream into per-worker chunks (preserving
// per-key order), sends them, and waits for completion. Caller holds
// e.mu.RLock.
func (e *Engine) dispatch(ops []workload.Op, slots []engine.ReadResult) {
	var wg sync.WaitGroup
	open := make([][]task, e.cfg.Workers)
	flush := func(wk int) {
		if len(open[wk]) == 0 {
			return
		}
		wg.Add(1)
		e.queues[wk] <- batchMsg{tasks: open[wk], pooled: true, done: &wg}
		open[wk] = nil
	}
	sampleEvery := 16 // latency sampling stride
	for i := range ops {
		op := &ops[i]
		wk := e.workerOf(op.Key)
		c := open[wk]
		if c == nil {
			c = chunkPool.Get().([]task)[:0]
		}
		t := task{kind: op.Kind, key: op.Key, value: op.Value, idx: i}
		if slots != nil && op.Kind == workload.Read {
			t.res = &slots[i]
		}
		if e.cfg.RecordLatency && i%sampleEvery == 0 {
			t.start = time.Now().UnixNano()
		}
		c = append(c, t)
		open[wk] = c
		if len(c) >= e.cfg.ChunkSize {
			flush(wk)
		}
	}
	for wk := range open {
		flush(wk)
	}
	e.ms.Add(metrics.CtrCombineSteps, int64(len(ops)))
	wg.Wait()
}

// runSequential is the post-Close fallback: direct tree execution.
func (e *Engine) runSequential(ops []workload.Op, slots []engine.ReadResult) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case workload.Read:
			v, ok := e.tree.Get(op.Key)
			if slots != nil {
				slots[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
			}
		case workload.Write:
			e.tree.Put(op.Key, op.Value)
		case workload.Delete:
			e.tree.Delete(op.Key)
		}
	}
}

// LatencyHistogram merges the per-worker latency histograms (populated
// when Config.RecordLatency is set). Call only while the pipeline is
// quiescent (no in-flight operations).
func (e *Engine) LatencyHistogram() *metrics.Histogram {
	h := metrics.NewHistogram()
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, w := range e.workers {
		h.Merge(w.hist)
	}
	return h
}

// ShortcutCount sums the live per-worker Shortcut_Table populations. Call
// only while the pipeline is quiescent.
func (e *Engine) ShortcutCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, w := range e.workers {
		n += len(w.shortcuts)
	}
	return n
}

// commonPrefixLenAll returns the length of the byte prefix shared by every
// key (capped so at least one varying byte remains), as in internal/ctt.
func commonPrefixLenAll(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	cp := len(keys[0])
	for _, k := range keys[1:] {
		n := cp
		if len(k) < n {
			n = len(k)
		}
		i := 0
		for i < n && k[i] == keys[0][i] {
			i++
		}
		cp = i
		if cp == 0 {
			return 0
		}
	}
	if cp > 0 && cp >= len(keys[0]) {
		cp = len(keys[0]) - 1
	}
	return cp
}
