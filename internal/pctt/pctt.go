// Package pctt implements P-CTT: a truly parallel Combine-Traverse-Trigger
// engine running on the olc concurrent ART.
//
// Where internal/ctt models the paper's CTT pipeline serially and counts
// events, pctt executes it with real goroutines for real wall-clock
// throughput:
//
//   - Combine — incoming operations are sharded by the leading PrefixBits
//     bits of the key (after the loaded key set's common prefix, as in
//     internal/ctt) into combine buckets. A bucket accumulates a FIFO
//     backlog and is scheduled onto a worker through a bounded lock-free
//     MPMC ring of bucket IDs. Batch formation is deadline-driven: a
//     bucket's combine window closes when it holds MinBatch operations or
//     when MaxDelay has elapsed since the window opened, whichever comes
//     first — so light load executes near-immediately while moderate load
//     still coalesces.
//   - Traverse — a worker swaps out a bucket's whole backlog as one
//     trigger batch, coalesces it into per-key groups, and locates each
//     group's target node once: via its private, lock-free Shortcut_Table
//     (key -> olc.Ref) when possible, via one root descent otherwise.
//   - Trigger — a group's operations execute together against the located
//     node: reads after the first are served from the group's running
//     value, consecutive writes combine into one olc.Put (one version-lock
//     acquisition for the whole group).
//
// Skewed (Zipf-hot) buckets are re-balanced by whole-bucket work stealing
// and handoff (see steal.go); because a bucket only ever executes on one
// worker at a time, per-key FIFO and the single-writer-per-key invariant
// hold across steals, which is what keeps write-combining and the
// per-worker shortcut tables safe without cross-worker synchronization.
//
// The engine is exposed three ways: as an engine.Engine (Run over an
// operation stream, used by the harness and the integration cross-checks),
// as a blocking Batcher API (Get/Put/Delete, used by the kvserver hot path
// to coalesce concurrent TCP requests), and through native testing.B
// benchmarks in the repository root.
//
// Ordering contract: per key, per producer, FIFO — a producer that issues
// W(k,v) then R(k) observes v (read-your-writes). Cross-key ordering is
// not preserved, exactly like the hardware CTT model.
//
// Latency accounting: every sampled operation is stamped at true submit
// time (task creation, before any producer-side buffering), and the
// pipeline records queue wait (submit -> its trigger batch begins) and
// execute time (batch begin -> operation completion) in separate
// histograms, surfaced by the native experiment (internal/bench/native.go)
// and comparable to the simulated open-loop breakdown in
// internal/sim/queue.go.
package pctt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/olc"
	"repro/internal/workload"
)

// Config parameterizes the parallel engine.
type Config struct {
	// Workers is the number of worker goroutines (SOU analogues). Default
	// runtime.GOMAXPROCS(0); the paper's hardware has 16 SOUs.
	Workers int
	// PrefixBits is the number of leading key bits (after the key set's
	// common prefix) used as the combining bucket label (default 8,
	// matching the PCU; 2^PrefixBits buckets).
	PrefixBits int
	// BatchSize caps the operations a worker executes per trigger batch
	// (default 4096). A bucket backlog larger than this is split in FIFO
	// order across consecutive batches.
	BatchSize int
	// ChunkSize is the producer-side mini-chunk Run uses when pre-sharding
	// a stream (default 256); it amortizes per-bucket locking. Chunks are
	// force-flushed every dispatchStripe operations so a cold bucket's
	// tasks never linger in producer buffers.
	ChunkSize int
	// QueueDepth bounds each bucket's pending backlog in operations
	// (default 4096). A full bucket applies backpressure to producers so no
	// single hot bucket can absorb the whole MaxInflight allowance.
	QueueDepth int
	// MaxInflight bounds the TOTAL submitted-but-incomplete operations
	// across all buckets (default 4*BatchSize). This is the knob that
	// bounds queue wait — tail latency is roughly MaxInflight divided by
	// pipeline throughput — while QueueDepth only shapes how the allowance
	// spreads across buckets. Producers spin-yield when the bound is hit.
	MaxInflight int
	// ShortcutCap bounds each worker's Shortcut_Table population (default
	// 1<<16 entries); exceeding it clears the table (epoch eviction).
	ShortcutCap int
	// HotsetCap bounds each worker's hot-node residency set: cached
	// interior-node anchors (one per combine bucket, ranked by bucket
	// population under value-aware replacement) that batch descents start
	// from instead of the root — the software Tree_buffer analogue. Default
	// 64 anchors per worker; negative disables the hotset entirely.
	HotsetCap int
	// MaxDelay is the combine-window deadline (default 100µs; negative
	// disables deferral). A popped bucket holding fewer than MinBatch
	// operations may be set aside — while the worker runs other ready
	// buckets — until MaxDelay has elapsed since its window opened. The
	// per-worker deadline timer is armed only while such deferred windows
	// exist; an otherwise-idle worker executes immediately, so light load
	// degenerates to near-direct latency.
	MaxDelay time.Duration
	// MinBatch is the combine-window fill target (default 64; 1 disables
	// deferral): buckets at or above it execute as soon as they are
	// popped.
	MinBatch int
	// NoSteal disables whole-bucket work stealing and handoff, pinning
	// every bucket to its home worker (bucket mod Workers).
	NoSteal bool
	// NoBypass disables the single-worker fast path. By default a
	// Workers==1 engine with an empty pipeline executes operations directly
	// against the tree (combining cannot help when one worker would execute
	// the whole backlog serially anyway, and the queue hop dominates
	// latency); under concurrent load — anything in flight — the pipeline
	// path and its combine windows re-engage automatically. Set NoBypass to
	// force every operation through the pipeline (ablation, tests of the
	// combining machinery).
	NoBypass bool
	// CollectReads makes Run record every read's result, as in
	// engine.Config.
	CollectReads bool
	// RecordLatency samples per-operation pipeline latency (true submit to
	// completion) plus the queue-wait/execute split into histograms; see
	// LatencyHistogram, QueueWaitHistogram, ExecHistogram. Sampling is
	// 1-in-16 on both the Run and the Batcher paths.
	RecordLatency bool
	// Tracer, when non-nil, samples operation lifecycles (combine/queue
	// wait -> steal or handoff -> trigger-execute) into the obs span ring.
	// The tracer makes its own 1/N sampling decision; an unsampled
	// operation pays one atomic increment at submit and nothing else.
	Tracer *obs.Tracer
	// Journal, when non-nil, is the slow-op journal: EVERY operation is
	// stamped at submit (one clock read) and its completed span — with the
	// engine's queue/combine/traverse/trigger stage breakdown — is offered
	// to the journal, which keeps only ops at or above its latency
	// threshold. Unlike Tracer there is no sampling: a slow op must not
	// escape because it wasn't the 1-in-N one.
	Journal *obs.Journal
	// BatchHook, when non-nil, runs on the worker goroutine immediately
	// before each trigger batch executes (and once per bypass stream on the
	// caller's goroutine). It is a test/fault-injection point: a hook that
	// blocks stalls that worker exactly as a wedged batch would — heartbeat
	// frozen, in-flight ops held — which is how the health engine's stall
	// detection is exercised end to end. Production configs leave it nil.
	BatchHook func(worker int)
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PrefixBits <= 0 || c.PrefixBits > 16 {
		c.PrefixBits = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.BatchSize
	}
	if c.ShortcutCap <= 0 {
		c.ShortcutCap = 1 << 16
	}
	if c.HotsetCap == 0 {
		c.HotsetCap = 64
	} else if c.HotsetCap < 0 {
		c.HotsetCap = 0 // disabled; newHotset returns nil
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 100 * time.Microsecond
	} else if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 64
	}
	return c
}

// dispatchStripe is how often (in stream operations) Run force-flushes all
// open producer mini-chunks, bounding producer-side buffering of cold
// buckets to well under a millisecond at any realistic throughput.
const dispatchStripe = 2048

// taskResult is the outcome delivered to a blocking Batcher call.
type taskResult struct {
	value uint64
	found bool // read: key present; put: value replaced; delete: key removed
}

// task is one operation in flight through the pipeline.
type task struct {
	kind  workload.Kind
	key   []byte
	value uint64
	// hash is the key's hashKey value, computed once at submit and carried
	// end-to-end: grouping and Shortcut_Table lookups reuse it instead of
	// re-hashing on the worker's critical path.
	hash uint64
	// res, when non-nil, is the Run-mode destination slot for a read.
	res *engine.ReadResult
	idx int // stream index for res
	// reply, when non-nil, receives the Batcher-mode outcome (buffered 1).
	reply chan taskResult
	// done, when non-nil, is decremented once the task has executed
	// (Run-mode completion accounting).
	done *sync.WaitGroup
	// enq is a unix-nano true-submit stamp when latency recording or
	// tracing sampled this task, or the slow-op journal is armed (taken at
	// task creation, before any producer-side buffering).
	enq int64
	// lat marks the task as chosen by the 1-in-16 latency sampler; its
	// queue/exec split lands in the worker histograms at completion.
	lat bool
	// traced marks the task as chosen by the obs tracer's sampler; its
	// lifecycle span is recorded at completion.
	traced bool
}

// replyPool recycles Batcher reply channels.
var replyPool = sync.Pool{
	New: func() any { return make(chan taskResult, 1) },
}

// Engine is the parallel CTT engine. Construct with New; call Close to
// stop the workers when done.
type Engine struct {
	name string
	cfg  Config

	tree *olc.Tree
	ms   *metrics.Set

	// prefixSkip is the number of leading bytes shared by every loaded
	// key; the combining prefix starts after them. Set by Load.
	prefixSkip int

	nBuckets int
	buckets  []bucket
	rings    []*ring
	workers  []*worker

	// chunkPool recycles task chunks between workers (which drain them)
	// and submitters (which fill them). The population is bursty — every
	// dispatch stripe can hand fresh chunks to hundreds of cold buckets —
	// so an unbounded sync.Pool, not a fixed-capacity freelist: a capped
	// list that can't absorb the whole in-flight chunk population turns
	// most gets into fresh multi-KB zeroed allocations, enough pressure
	// to keep the collector running continuously.
	chunkPool sync.Pool

	// idleMask advertises parked workers (bit per worker) for the handoff
	// and wake-a-thief paths.
	idleMask atomic.Uint64
	// inflight counts submitted-but-not-completed operations; the drain
	// phase of Close spins until it reaches zero.
	inflight atomic.Int64
	// latN strides the Batcher path's 1-in-16 latency sampling.
	latN atomic.Uint64

	started atomic.Bool
	mu      sync.RWMutex // started/closed vs. submitters
	closed  bool
	closing atomic.Bool
	wg      sync.WaitGroup

	runMu sync.Mutex // serializes Run calls
}

// New returns a parallel CTT engine. Workers start lazily on first use.
func New(cfg Config) *Engine {
	cfg = cfg.Defaults()
	ms := metrics.NewSet()
	e := &Engine{
		name: "P-CTT",
		cfg:  cfg,
		tree: olc.New(ms),
		ms:   ms,
	}
	e.chunkPool.New = func() any { return make([]task, 0, e.cfg.ChunkSize) }
	return e
}

// getChunk returns an empty task chunk, recycled when possible.
func (e *Engine) getChunk() []task {
	return e.chunkPool.Get().([]task)[:0]
}

// putChunk returns a drained chunk to the pool. The caller must have
// cleared its tasks first (clearTasks) so the pool holds no key or reply
// references.
func (e *Engine) putChunk(c []task) {
	e.chunkPool.Put(c[:0]) //nolint:staticcheck // slice header boxing is fine here
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Tree exposes the underlying concurrent index (used by kvserver for
// scans/snapshots and by the integration cross-checks). Direct writes to
// the tree while the pipeline is active break the single-writer-per-key
// invariant; restrict direct access to reads or quiescent phases.
func (e *Engine) Tree() *olc.Tree { return e.tree }

// Metrics returns the live counter set (shared with the tree).
func (e *Engine) Metrics() *metrics.Set { return e.ms }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// start launches the worker pool once.
func (e *Engine) start() {
	if e.started.Load() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started.Load() || e.closed {
		return
	}
	e.nBuckets = 1 << uint(e.cfg.PrefixBits)
	e.buckets = make([]bucket, e.nBuckets)
	for i := range e.buckets {
		b := &e.buckets[i]
		b.cond.L = &b.mu
		b.owner = int32(i % e.cfg.Workers)
	}
	e.rings = make([]*ring, e.cfg.Workers)
	e.workers = make([]*worker, e.cfg.Workers)
	for i := range e.rings {
		e.rings[i] = newRing(e.nBuckets)
		e.workers[i] = newWorker(e, i)
	}
	e.wg.Add(e.cfg.Workers)
	for _, w := range e.workers {
		go w.loop()
	}
	e.started.Store(true)
}

// Close stops the worker pool after draining in-flight operations.
// Subsequent Batcher calls execute directly against the tree; subsequent
// Run calls fall back to sequential execution.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started.Load()
	e.mu.Unlock()
	if started {
		e.closing.Store(true)
		for _, w := range e.workers {
			w.forceWake()
		}
	}
	e.wg.Wait()
	return nil
}

// shardOf maps a key to its combine bucket: the PrefixBits-bit key prefix
// taken after the loaded key set's common leading bytes (same labeling as
// internal/ctt's bucketOf).
func (e *Engine) shardOf(key []byte) int {
	i := e.prefixSkip
	var b0, b1 byte
	if i < len(key) {
		b0 = key[i]
	}
	if i+1 < len(key) {
		b1 = key[i+1]
	}
	v := uint32(b0)<<8 | uint32(b1)
	return int(v >> uint(16-e.cfg.PrefixBits))
}

// Load implements engine.Engine: bulk-insert the initial key set (not
// measured, not pipelined) and derive the combining-prefix position.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.prefixSkip = commonPrefixLenAll(keys)
	for i, k := range keys {
		v := uint64(i)
		if values != nil {
			v = values[i]
		}
		e.tree.Put(k, v)
	}
	e.ms.Reset() // loading is not part of the measurement
}

// Reset implements engine.Engine: clear counters and latency histograms;
// the tree and the per-worker shortcut tables persist (index state, not
// measurement). Call only while the pipeline is quiescent.
func (e *Engine) Reset() {
	e.ms.Reset()
	e.mu.RLock()
	for _, w := range e.workers {
		w.resetHistograms()
	}
	e.mu.RUnlock()
}

// Run implements engine.Engine: execute the stream through the parallel
// pipeline and block until every operation has applied. Guarantees per-key
// stream order; cross-key order is unspecified (last-write-wins per key
// matches a sequential replay).
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.start()
	e.runMu.Lock()
	defer e.runMu.Unlock()

	res := &engine.Result{Name: e.name, Ops: len(ops), Metrics: e.ms}
	var slots []engine.ReadResult
	if e.cfg.CollectReads {
		slots = make([]engine.ReadResult, len(ops))
		for i := range slots {
			slots[i].Index = -1
		}
	}

	t0 := time.Now()
	e.mu.RLock()
	switch {
	case e.closed:
		e.mu.RUnlock()
		e.runSequential(ops, slots)
	case e.bypassEligible():
		// Single worker, empty pipeline: the combine window cannot help (one
		// worker would execute the whole backlog serially anyway), so skip
		// the queue hop and run the stream directly.
		e.runBypass(ops, slots)
		e.mu.RUnlock()
	default:
		e.dispatch(ops, slots)
		e.mu.RUnlock()
	}
	res.WallNanos = time.Since(t0).Nanoseconds()

	if slots != nil {
		for i := range slots {
			if slots[i].Index >= 0 {
				res.Reads = append(res.Reads, slots[i])
			}
		}
	}
	return res
}

// dispatch pre-shards the stream into per-bucket mini-chunks (preserving
// per-key order), submits them, and waits for completion. Chunks flush
// when full and on every dispatchStripe operations, so producer-side
// buffering is bounded for cold buckets too. Caller holds e.mu.RLock.
func (e *Engine) dispatch(ops []workload.Op, slots []engine.ReadResult) {
	var wg sync.WaitGroup
	open := make([][]task, e.nBuckets)
	dirty := make([]int, 0, 64) // buckets with a non-empty open chunk
	flush := func(s int) {
		c := open[s]
		if len(c) == 0 {
			return
		}
		wg.Add(len(c))
		e.submitChunk(s, c) // chunk ownership passes to the bucket
		open[s] = nil
	}
	sampleEvery := 16 // latency sampling stride
	for i := range ops {
		op := &ops[i]
		s := e.shardOf(op.Key)
		c := open[s]
		if c == nil {
			c = e.getChunk()
			dirty = append(dirty, s)
		}
		t := task{
			kind: op.Kind, key: op.Key, value: op.Value,
			hash: hashKey(op.Key), idx: i, done: &wg,
		}
		if slots != nil && op.Kind == workload.Read {
			t.res = &slots[i]
		}
		if e.cfg.RecordLatency && i%sampleEvery == 0 {
			t.lat = true
			t.enq = time.Now().UnixNano()
		}
		if tr := e.cfg.Tracer; tr != nil && tr.Sample() {
			t.traced = true
			if t.enq == 0 {
				t.enq = time.Now().UnixNano()
			}
		}
		if e.cfg.Journal != nil && t.enq == 0 {
			t.enq = time.Now().UnixNano()
		}
		c = append(c, t)
		open[s] = c
		if len(c) >= e.cfg.ChunkSize {
			flush(s)
		}
		if (i+1)%dispatchStripe == 0 {
			for _, ds := range dirty {
				flush(ds)
			}
			dirty = dirty[:0]
		}
	}
	for _, ds := range dirty {
		flush(ds)
	}
	e.ms.Add(metrics.CtrCombineSteps, int64(len(ops)))
	wg.Wait()
}

// bypassEligible reports whether the single-worker fast path applies right
// now: one worker, bypass not disabled, and nothing in flight (a shallow
// queue means there is nothing to coalesce with; anything in flight means
// concurrent producers are active and the combine window can win). Caller
// holds e.mu (read) with e.closed false, which implies the pipeline
// started.
func (e *Engine) bypassEligible() bool {
	return e.cfg.Workers == 1 && !e.cfg.NoBypass && e.inflight.Load() == 0
}

// runBypass executes the stream directly against the tree on the caller's
// goroutine (single-worker fast path). Per-key order is trivially the
// stream order; latency samples (queue wait pinned at zero — there is no
// queue) and trace spans land in worker 0's instruments so the obs layer
// sees one coherent story.
func (e *Engine) runBypass(ops []workload.Op, slots []engine.ReadResult) {
	w := e.workers[0]
	if h := e.cfg.BatchHook; h != nil {
		h(0)
	}
	defer w.beats.Add(1)
	record := e.cfg.RecordLatency
	tr := e.cfg.Tracer
	j := e.cfg.Journal
	for i := range ops {
		op := &ops[i]
		var t0 int64
		traced := tr != nil && tr.Sample()
		lat := record && i%16 == 0
		if lat || traced || j != nil {
			t0 = time.Now().UnixNano()
		}
		switch op.Kind {
		case workload.Read:
			v, ok := e.tree.Get(op.Key)
			if slots != nil {
				slots[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
			}
		case workload.Write:
			e.tree.Put(op.Key, op.Value)
		case workload.Delete:
			e.tree.Delete(op.Key)
		}
		if t0 != 0 {
			now := time.Now().UnixNano()
			d := float64(now-t0) * 1e-9
			if lat {
				w.histMu.Lock()
				w.histTotal.Observe(d)
				w.histQueue.Observe(0)
				w.histExec.Observe(d)
				w.histMu.Unlock()
			}
			if traced || j != nil {
				s := obs.Span{
					TraceID:        hashKey(op.Key),
					Op:             opName(op.Kind),
					Worker:         0,
					Bucket:         e.shardOf(op.Key),
					SubmitUnixNano: t0,
					BatchUnixNano:  t0,
					DoneUnixNano:   now,
					ExecNanos:      now - t0,
					Layer:          "engine",
					Stages: []obs.Stage{{
						Name: "trigger", StartUnixNano: t0, EndUnixNano: now,
					}},
				}
				if traced {
					tr.Record(s)
				}
				if j != nil {
					j.Observe(s)
				}
			}
		}
	}
	w.ops.Add(int64(len(ops)))
	e.ms.Add(metrics.CtrBypassOps, int64(len(ops)))
}

// runSequential is the post-Close fallback: direct tree execution.
func (e *Engine) runSequential(ops []workload.Op, slots []engine.ReadResult) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case workload.Read:
			v, ok := e.tree.Get(op.Key)
			if slots != nil {
				slots[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
			}
		case workload.Write:
			e.tree.Put(op.Key, op.Value)
		case workload.Delete:
			e.tree.Delete(op.Key)
		}
	}
}

// LatencyHistogram merges the per-worker end-to-end latency histograms
// (populated when Config.RecordLatency is set; true submit to completion)
// into a fresh copy. Safe to call while the pipeline is live: each
// worker's histogram is folded in under its histogram mutex.
func (e *Engine) LatencyHistogram() *metrics.Histogram {
	return e.mergeHistograms(func(w *worker) *metrics.Histogram { return w.histTotal })
}

// QueueWaitHistogram merges the per-worker queue-wait histograms: the time
// from true submit until the operation's trigger batch began executing.
func (e *Engine) QueueWaitHistogram() *metrics.Histogram {
	return e.mergeHistograms(func(w *worker) *metrics.Histogram { return w.histQueue })
}

// ExecHistogram merges the per-worker execute-time histograms: the time
// from an operation's trigger batch beginning until its completion.
func (e *Engine) ExecHistogram() *metrics.Histogram {
	return e.mergeHistograms(func(w *worker) *metrics.Histogram { return w.histExec })
}

func (e *Engine) mergeHistograms(pick func(*worker) *metrics.Histogram) *metrics.Histogram {
	h := metrics.NewHistogram()
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, w := range e.workers {
		w.histMu.Lock()
		h.Merge(pick(w))
		w.histMu.Unlock()
	}
	return h
}

// WorkerOps returns the number of operations each worker has executed
// (stolen and handed-off buckets count for the worker that ran them);
// the skewed-load balance tests assert on this.
func (e *Engine) WorkerOps() []int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int64, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.ops.Load()
	}
	return out
}

// WorkerHeartbeats returns each worker's progress heartbeat: trigger
// batches completed (plus bypass streams for worker 0). Safe while the
// pipeline is live; returns per-worker zeros before the pool starts.
func (e *Engine) WorkerHeartbeats() []uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]uint64, e.cfg.Workers)
	for i, w := range e.workers {
		out[i] = w.beats.Load()
	}
	return out
}

// MaxInflight returns the configured total in-flight bound (the
// denominator of the obs layer's saturation gauge pair).
func (e *Engine) MaxInflight() int { return e.cfg.MaxInflight }

// ShortcutCount sums the live per-worker Shortcut_Table populations. Safe
// to call while the pipeline is live (reads each table's atomic mirror).
func (e *Engine) ShortcutCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := int64(0)
	for _, w := range e.workers {
		n += w.shortcuts.liveA.Load()
	}
	return int(n)
}

// HotsetCount sums the live per-worker hot-node anchor populations. Safe
// to call while the pipeline is live (reads each hotset's atomic mirror).
func (e *Engine) HotsetCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := int64(0)
	for _, w := range e.workers {
		if w.hotset != nil {
			n += w.hotset.liveA.Load()
		}
	}
	return int(n)
}

// anchorMaxDepth bounds how deep a cached batch anchor may sit: the loaded
// common prefix plus the whole bytes of the bucket label. An anchor below
// that could be narrower than its bucket and would miss keys the bucket
// legitimately routes.
func (e *Engine) anchorMaxDepth() int {
	return e.prefixSkip + e.cfg.PrefixBits/8
}

// commonPrefixLenAll returns the length of the byte prefix shared by every
// key (capped so at least one varying byte remains), as in internal/ctt.
func commonPrefixLenAll(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	cp := len(keys[0])
	for _, k := range keys[1:] {
		n := cp
		if len(k) < n {
			n = len(k)
		}
		i := 0
		for i < n && k[i] == keys[0][i] {
			i++
		}
		cp = i
		if cp == 0 {
			return 0
		}
	}
	if cp > 0 && cp >= len(keys[0]) {
		cp = len(keys[0]) - 1
	}
	return cp
}
