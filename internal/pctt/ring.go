package pctt

import (
	"runtime"
	"sync/atomic"
)

// ring is a bounded lock-free MPMC queue of bucket IDs (Vyukov's bounded
// queue). It replaces the per-worker chan batchMsg of the first P-CTT
// revision: producers publish *bucket IDs*, not operations, so one slot is
// enough per combine bucket and the ring can be sized so that it never
// fills (capacity >= the number of buckets; a bucket has at most one
// outstanding ring entry, enforced by the bucket state machine).
//
// Multi-consumer matters: pop is also the steal path — an idle worker pops
// from a backlogged peer's ring, taking the whole combine bucket with it.
//
// head and tail live on their own cache lines so producers (tail) and the
// consumer (head) do not false-share; the hot-path cost is one CAS plus
// one sequence store per push or pop.
type ring struct {
	_     [64]byte // pad against the ring's neighbors in Engine.rings
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
	mask  uint64
	slots []ringSlot
}

// ringSlot pairs a sequence number with the payload. seq == pos means the
// slot is free for the producer claiming position pos; seq == pos+1 means
// the payload is visible to the consumer claiming position pos.
type ringSlot struct {
	seq atomic.Uint64
	id  int32
}

// newRing returns a ring with capacity >= n (rounded up to a power of two).
func newRing(n int) *ring {
	c := 1
	for c < n {
		c <<= 1
	}
	r := &ring{mask: uint64(c - 1), slots: make([]ringSlot, c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues id; it reports false only when the ring is full, which the
// engine's sizing invariant rules out (see type comment).
func (r *ring) push(id int32) bool {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.id = id
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case d < 0:
			return false // full
		default:
			pos = r.tail.Load()
		}
	}
}

// mustPush is push with the sizing invariant asserted: a full ring means a
// bucket was double-enqueued, so fail loudly instead of losing work.
func (r *ring) mustPush(id int32) {
	for i := 0; i < 1024; i++ {
		if r.push(id) {
			return
		}
		runtime.Gosched() // transient fullness during a CAS storm
	}
	panic("pctt: ring overflow — bucket enqueued twice")
}

// pop dequeues the oldest id. Safe for concurrent consumers (stealing).
func (r *ring) pop() (int32, bool) {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				id := s.id
				s.seq.Store(pos + r.mask + 1)
				return id, true
			}
			pos = r.head.Load()
		case d < 0:
			return 0, false // empty
		default:
			pos = r.head.Load()
		}
	}
}

// length is an estimate of the queued entry count (exact when quiescent);
// the steal path uses it to find the most-backlogged peer.
func (r *ring) length() int {
	t, h := r.tail.Load(), r.head.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}
