package pctt

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestRegisterObsLiveScrape drives the engine while a concurrent scraper
// snapshots and renders the registry — the gauges must read through
// atomics/short RLocks without deadlocking or racing with the pipeline,
// and the post-run scrape must carry real engine state.
func TestRegisterObsLiveScrape(t *testing.T) {
	w := testWorkload(t, 2000, 40000, 43)
	e := New(Config{Workers: 2, ChunkSize: 64, RecordLatency: true})
	defer e.Close()
	r := obs.NewRegistry()
	e.RegisterObs(r)
	e.Load(w.Keys, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	e.Run(w.Ops)
	close(stop)
	wg.Wait()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"dcart_pctt_workers 2",
		`dcart_pctt_ring_depth{worker="0"}`,
		`dcart_pctt_ring_depth{worker="1"}`,
		`dcart_pctt_bucket_state{state="idle"}`,
		"dcart_pctt_latency_seconds_count",
		"dcart_pctt_queue_wait_seconds_count",
		"dcart_pctt_exec_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q", want)
		}
	}
	snap := r.Snapshot()
	if snap.Counters[metrics.CtrOpsRead] == 0 || snap.Counters[metrics.CtrOpsWrite] == 0 {
		t.Fatalf("op counters empty after run: %v", snap.Counters)
	}
	if h := snap.Histograms["dcart_pctt_latency_seconds"]; h.Count == 0 {
		t.Fatal("latency histogram empty with RecordLatency on")
	}
	// Quiescent engine: every bucket idle, nothing in flight.
	idle, queued, running := e.BucketStateCounts()
	if queued != 0 || running != 0 || idle == 0 {
		t.Fatalf("bucket states after run = idle %d queued %d running %d", idle, queued, running)
	}
	if e.InflightOps() != 0 {
		t.Fatalf("inflight after run = %d", e.InflightOps())
	}
	if e.RingDepth(0) != 0 || e.RingDepth(-1) != 0 || e.RingDepth(99) != 0 {
		t.Fatal("ring depths after run / out of range must be 0")
	}
}

// TestRegisterObsReplacesPrevious: a second engine's RegisterObs must
// replace the first's series (the bench harness swaps engines between rows
// on one registry).
func TestRegisterObsReplacesPrevious(t *testing.T) {
	r := obs.NewRegistry()
	e1 := New(Config{Workers: 4})
	e1.RegisterObs(r)
	e1.Close()
	e2 := New(Config{Workers: 1})
	defer e2.Close()
	e2.RegisterObs(r)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "dcart_pctt_workers 1") {
		t.Fatalf("second engine's workers gauge missing:\n%s", out)
	}
	if strings.Contains(out, "dcart_pctt_workers 4") ||
		strings.Contains(out, `dcart_pctt_ring_depth{worker="3"}`) {
		t.Fatalf("first engine's series survived the swap:\n%s", out)
	}
}

// TestTracerSpansThroughPipeline: with an every-op tracer, spans must flow
// through Run and the batcher with plausible lifecycle fields.
func TestTracerSpansThroughPipeline(t *testing.T) {
	w := testWorkload(t, 1000, 20000, 44)
	tr := obs.NewTracer(256, 1)
	e := New(Config{Workers: 2, ChunkSize: 64, Tracer: tr})
	defer e.Close()
	e.Load(w.Keys, nil)
	e.Run(w.Ops)

	if tr.Recorded() == 0 {
		t.Fatal("no spans recorded with sampleEvery=1")
	}
	spans := tr.Spans()
	if len(spans) != 256 {
		t.Fatalf("ring holds %d spans, want full 256", len(spans))
	}
	ops := map[string]bool{}
	for _, s := range spans {
		ops[s.Op] = true
		if s.Op != "get" && s.Op != "put" && s.Op != "delete" {
			t.Fatalf("span op %q", s.Op)
		}
		if s.Worker < 0 || s.Worker >= 2 {
			t.Fatalf("span worker %d", s.Worker)
		}
		if s.SubmitUnixNano == 0 || s.DoneUnixNano < s.BatchUnixNano {
			t.Fatalf("span timestamps implausible: %+v", s)
		}
		if s.QueueWaitNanos < 0 || s.ExecNanos < 0 {
			t.Fatalf("span durations negative: %+v", s)
		}
	}
	if !ops["get"] || !ops["put"] {
		t.Fatalf("span ops seen = %v, want both reads and writes", ops)
	}

	// The blocking batcher front-end must stamp spans too.
	before := tr.Recorded()
	for i := 0; i < 100; i++ {
		e.Put([]byte{byte(i), 1, 2, 3}, uint64(i))
		e.Get([]byte{byte(i), 1, 2, 3})
	}
	if tr.Recorded() == before {
		t.Fatal("batcher path recorded no spans")
	}
}
