package pctt

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Ordered reads (prefix scans, range scans, full walks) on the parallel
// engine. Scans do not ride the combine pipeline — they are multi-key
// ordered traversals, not point operations, so there is nothing to
// coalesce — but routing them through the engine instead of reaching into
// the tree makes them first-class citizens of the engine's observability:
// each scan counts into ops_scan/scan_rows and (when sampled) records a
// lifecycle span, where previously kvserver's scans were invisible to
// tracing and metrics.
//
// Consistency matches olc's lock-crabbing contract: each visited node is
// observed in a consistent state, but the scan is not a snapshot — point
// writes applied by the pipeline during the scan may or may not be seen.
// A caller's own acked writes (blocking Batcher calls) are visible,
// because every Batcher call returns only after the write applied.

// Len returns the number of keys in the engine's tree.
func (e *Engine) Len() int { return e.tree.Len() }

// ScanPrefix visits, in ascending key order, every key starting with
// prefix. fn returning false stops the scan; ScanPrefix reports whether it
// ran to exhaustion.
func (e *Engine) ScanPrefix(prefix []byte, fn func(key []byte, value uint64) bool) bool {
	done := e.beginScan("scan", prefix)
	rows := 0
	complete := e.tree.ScanPrefix(prefix, func(k []byte, v uint64) bool {
		rows++
		return fn(k, v)
	})
	done(rows)
	return complete
}

// AscendRange visits keys k with lo <= k <= hi in ascending order (nil
// bounds are open). fn returning false stops the scan.
func (e *Engine) AscendRange(lo, hi []byte, fn func(key []byte, value uint64) bool) bool {
	done := e.beginScan("range", lo)
	rows := 0
	complete := e.tree.AscendRange(lo, hi, func(k []byte, v uint64) bool {
		rows++
		return fn(k, v)
	})
	done(rows)
	return complete
}

// Walk visits every key/value pair in ascending order (snapshots, LEN-style
// audits). fn returning false stops the walk.
func (e *Engine) Walk(fn func(key []byte, value uint64) bool) bool {
	done := e.beginScan("walk", nil)
	rows := 0
	complete := e.tree.Walk(func(k []byte, v uint64) bool {
		rows++
		return fn(k, v)
	})
	done(rows)
	return complete
}

// beginScan stamps the scan into the engine's instruments: ops_scan now,
// scan_rows at completion, and — when the tracer samples it — a lifecycle
// span whose trace ID is the start key's hash (zero-length keys hash to
// the same well-known ID). The returned func is called with the row count
// when the scan finishes.
func (e *Engine) beginScan(op string, startKey []byte) func(rows int) {
	e.ms.Inc(metrics.CtrOpsScan)
	tr := e.cfg.Tracer
	j := e.cfg.Journal
	traced := tr != nil && tr.Sample()
	if !traced && j == nil {
		return func(rows int) { e.ms.Add(metrics.CtrScanRows, int64(rows)) }
	}
	t0 := time.Now().UnixNano()
	return func(rows int) {
		e.ms.Add(metrics.CtrScanRows, int64(rows))
		now := time.Now().UnixNano()
		s := obs.Span{
			TraceID:        hashKey(startKey),
			Op:             op,
			Worker:         -1, // executes on the caller, not a pipeline worker
			Bucket:         -1,
			SubmitUnixNano: t0,
			BatchUnixNano:  t0,
			DoneUnixNano:   now,
			ExecNanos:      now - t0,
			Layer:          "engine",
			Stages: []obs.Stage{{
				Name: "scan", StartUnixNano: t0, EndUnixNano: now,
			}},
		}
		if traced {
			tr.Record(s)
		}
		if j != nil {
			j.Observe(s)
		}
	}
}
