package pctt

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// canAssertBalance reports whether the balance (and steal-engagement)
// assertions are meaningful on this machine: a thief only steals when it
// is actually scheduled while the victim's ring is backlogged, and with
// GOMAXPROCS=1 the Go scheduler timeshares every worker on one core, so
// whether any steal happens is a coin flip (observed: whole runs where
// worker 0 executes everything). The FIFO/read-your-writes checks do not
// depend on parallelism and always run.
func canAssertBalance() bool { return runtime.GOMAXPROCS(0) >= 2 }

// Skewed-load stress tests for the work-stealing scheduler, meant to run
// under -race. The key construction is adversarial by design: every
// Zipf-hot bucket is homed to worker 0, so without stealing one worker
// executes essentially the whole stream. The assertions are the two
// properties the steal design document (steal.go) promises:
//
//  1. Per-key FIFO read-your-writes holds even while hot buckets migrate
//     between workers (steals and push handoffs never split a bucket).
//  2. With stealing enabled, no worker executes more than 2x the mean
//     operation count (Engine.WorkerOps()) despite the skew.

const (
	stressWorkers = 4
	stressZipfS   = 1.25 // >= the benchmark regime's skew (workload ZipfS 1.25)
	// stressHotSlots Zipf slots map to bucket bytes 4*slot: every hot
	// bucket is ≡ 0 (mod stressWorkers), i.e. homed to worker 0.
	stressHotSlots = 64
)

// stressKey builds a 5-byte key: the Zipf-chosen bucket byte (worker 0's
// buckets only), the producer's namespace byte, a within-bucket key index,
// and the 0x00 terminator. Producers own disjoint namespaces, so each has
// an exact sequential model of its own keys.
func stressKey(slot uint64, g, ki int) []byte {
	return []byte{byte(4 * slot), byte(g), byte(ki), byte(ki >> 8), 0}
}

// stressConfig forces many small trigger batches so the home worker's ring
// keeps a standing backlog — the state that engages both migration
// mechanisms (ring-backlog steals and re-queue handoffs). Window deferral
// is disabled (MaxDelay < 0): deferred windows live in a worker-private
// list invisible to thieves, and this test is about the stealing layer,
// not the deadline layer.
func stressConfig(noSteal bool) Config {
	return Config{
		Workers:   stressWorkers,
		BatchSize: 16,
		ChunkSize: 8,
		MaxDelay:  -1,
		NoSteal:   noSteal,
	}
}

// runStressProducers drives G blocking producers through the Batcher, each
// checking read-your-writes against a private sequential replay on every
// operation. Returns the total operation count submitted.
func runStressProducers(t *testing.T, e *Engine, producers, opsPerG int) int64 {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			zipf := rand.NewZipf(rng, stressZipfS, 1, stressHotSlots-1)
			local := map[string]uint64{}
			for i := 0; i < opsPerG; i++ {
				k := stressKey(zipf.Uint64(), g, rng.Intn(32))
				ks := string(k)
				switch rng.Intn(4) {
				case 0, 1:
					want, wantOK := local[ks]
					got, ok := e.Get(k)
					if ok != wantOK || (ok && got != want) {
						t.Errorf("g%d op %d: get %x = (%d,%v), want (%d,%v)",
							g, i, k, got, ok, want, wantOK)
						return
					}
				case 2:
					v := uint64(g)<<32 | uint64(i)
					_, existed := local[ks]
					if replaced := e.Put(k, v); replaced != existed {
						t.Errorf("g%d op %d: put %x replaced=%v want %v",
							g, i, k, replaced, existed)
						return
					}
					local[ks] = v
				default:
					_, existed := local[ks]
					if deleted := e.Delete(k); deleted != existed {
						t.Errorf("g%d op %d: delete %x deleted=%v want %v",
							g, i, k, deleted, existed)
						return
					}
					delete(local, ks)
				}
			}
			for ks, want := range local {
				if got, ok := e.Get([]byte(ks)); !ok || got != want {
					t.Errorf("g%d: final %x = (%d,%v), want %d", g, ks, got, ok, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return int64(producers * opsPerG)
}

// TestStealSkewedFIFOAndBalance: with stealing enabled, the adversarially
// skewed stream must (a) preserve per-key read-your-writes across every
// bucket migration and (b) end with no worker above 2x the mean executed
// operation count.
func TestStealSkewedFIFOAndBalance(t *testing.T) {
	e := New(stressConfig(false))
	defer e.Close()

	total := runStressProducers(t, e, 64, 500)
	if t.Failed() {
		return
	}

	ops := e.WorkerOps()
	var sum, max int64
	for _, n := range ops {
		sum += n
		if n > max {
			max = n
		}
	}
	// Every submitted op (plus the final verification reads) executed
	// exactly once, somewhere.
	if sum < total {
		t.Fatalf("workers executed %d ops, %d submitted (%v)", sum, total, ops)
	}
	if canAssertBalance() {
		mean := sum / int64(len(ops))
		if max > 2*mean {
			t.Fatalf("skewed load did not balance: max worker ops %d > 2x mean %d (%v)",
				max, mean, ops)
		}
		// The balance must come from the steal mechanisms actually engaging
		// — otherwise the assertion above is vacuous.
		moves := e.Metrics().Get(metrics.CtrBucketSteals) + e.Metrics().Get(metrics.CtrBucketHandoffs)
		if moves == 0 {
			t.Fatalf("no steals or handoffs recorded under skew (worker ops %v)", ops)
		}
	} else {
		t.Logf("GOMAXPROCS=%d: balance assertion skipped", runtime.GOMAXPROCS(0))
	}
	t.Logf("worker ops %v, steals %d, handoffs %d", ops,
		e.Metrics().Get(metrics.CtrBucketSteals), e.Metrics().Get(metrics.CtrBucketHandoffs))
}

// TestNoStealPinsSkewedLoad is the control: with NoSteal, the same skewed
// stream stays pinned to the home worker (correctness holds, balance does
// not), proving the balanced outcome above is the scheduler's doing rather
// than an accident of the key distribution.
func TestNoStealPinsSkewedLoad(t *testing.T) {
	e := New(stressConfig(true))
	defer e.Close()

	runStressProducers(t, e, 4, 1000)
	if t.Failed() {
		return
	}

	ops := e.WorkerOps()
	var sum int64
	for _, n := range ops {
		sum += n
	}
	if ops[0] != sum {
		t.Fatalf("NoSteal: expected all %d ops on worker 0, got %v", sum, ops)
	}
	if moves := e.Metrics().Get(metrics.CtrBucketSteals) +
		e.Metrics().Get(metrics.CtrBucketHandoffs); moves != 0 {
		t.Fatalf("NoSteal recorded %d bucket moves", moves)
	}
}

// TestStealSkewedRunPath drives the same adversarial skew through the
// stream (Run) path, where dispatch submits whole chunks: final state must
// match a sequential replay and balance must hold with stealing on.
func TestStealSkewedRunPath(t *testing.T) {
	e := New(stressConfig(false))
	defer e.Close()

	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, stressZipfS, 1, stressHotSlots-1)
	ops, ref := makeSkewedStream(rng, zipf, 40000)
	res := e.Run(ops)
	if res.Ops != len(ops) {
		t.Fatalf("res.Ops = %d, want %d", res.Ops, len(ops))
	}
	if e.Tree().Len() != len(ref) {
		t.Fatalf("tree has %d keys, reference %d", e.Tree().Len(), len(ref))
	}
	for ks, want := range ref {
		if got, ok := e.Tree().Get([]byte(ks)); !ok || got != want {
			t.Fatalf("key %x = (%d,%v), want %d", ks, got, ok, want)
		}
	}

	wops := e.WorkerOps()
	var sum, max int64
	for _, n := range wops {
		sum += n
		if n > max {
			max = n
		}
	}
	if canAssertBalance() {
		mean := sum / int64(len(wops))
		if max > 2*mean {
			t.Fatalf("run path did not balance: max %d > 2x mean %d (%v)", max, mean, wops)
		}
	}
}

// makeSkewedStream builds a mixed op stream over worker-0-homed buckets
// plus its sequential-replay reference state.
func makeSkewedStream(rng *rand.Rand, zipf *rand.Zipf, n int) ([]workload.Op, map[string]uint64) {
	ops := make([]workload.Op, 0, n)
	ref := map[string]uint64{}
	for i := 0; i < n; i++ {
		k := stressKey(zipf.Uint64(), 0, rng.Intn(64))
		switch rng.Intn(4) {
		case 0, 1:
			ops = append(ops, workload.Op{Kind: workload.Read, Key: k})
		case 2:
			v := uint64(i)
			ops = append(ops, workload.Op{Kind: workload.Write, Key: k, Value: v})
			ref[string(k)] = v
		default:
			ops = append(ops, workload.Op{Kind: workload.Delete, Key: k})
			delete(ref, string(k))
		}
	}
	return ops, ref
}
