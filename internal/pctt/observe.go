package pctt

import (
	"strconv"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Live observability accessors. Unlike the measurement-oriented methods in
// pctt.go (WorkerOps, histogram merges), these are designed to be scraped
// while the pipeline is under load: every read is an atomic load or a
// short read-locked walk, never a bucket lock or a worker handshake.

// ObsGroup is the registry group tag RegisterObs registers under; a second
// RegisterObs call (e.g. the bench harness swapping engines between rows)
// replaces the previous engine's registrations wholesale.
const ObsGroup = "pctt"

// RingDepth returns the number of queued combine buckets in worker i's
// ring (0 before the pipeline starts or for an out-of-range worker).
func (e *Engine) RingDepth(i int) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if i < 0 || i >= len(e.rings) {
		return 0
	}
	return e.rings[i].length()
}

// BucketStateCounts returns how many combine buckets are currently idle,
// queued, and running. The counts are a live sample, not a consistent cut:
// each bucket's state is read atomically but buckets move while the walk
// runs — exactly the fidelity a gauge scrape needs.
func (e *Engine) BucketStateCounts() (idle, queued, running int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.buckets == nil {
		return 1 << uint(e.cfg.PrefixBits), 0, 0
	}
	for i := range e.buckets {
		switch e.buckets[i].state.Load() {
		case bQueued:
			queued++
		case bRunning:
			running++
		default:
			idle++
		}
	}
	return idle, queued, running
}

// InflightOps returns the submitted-but-incomplete operation count.
func (e *Engine) InflightOps() int64 { return e.inflight.Load() }

// WorkerHeartbeat returns worker i's progress heartbeat (0 before the
// pipeline starts or for an out-of-range worker).
func (e *Engine) WorkerHeartbeat(i int) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if i < 0 || i >= len(e.workers) {
		return 0
	}
	return e.workers[i].beats.Load()
}

// RegisterObs registers the engine's live gauges, counters, and (when
// RecordLatency is on) latency histograms with the observability registry
// under ObsGroup, replacing any previously registered engine. The exported
// series are the live form of the counters the paper's figures are built
// from: lock contention (Fig 7), key matches (Fig 8), shortcut hits and
// redundancy (Fig 2), plus the P-CTT scheduling state (ring depths, bucket
// states, steal/handoff counters) PR 3 introduced.
func (e *Engine) RegisterObs(r *obs.Registry) {
	e.RegisterObsTagged(r, ObsGroup, "")
}

// RegisterObsTagged is RegisterObs under a caller-chosen registry group
// and with a pre-rendered label body (`shard="2"`, or empty) stamped on
// every exported series. A sharded store registers each sub-engine under
// its own group tag with a shard label, so several engines coexist in one
// registry — where plain RegisterObs replaces whatever engine held
// ObsGroup before it.
func (e *Engine) RegisterObsTagged(r *obs.Registry, group, labels string) {
	r.UnregisterGroup(group)
	r.RegisterCountersLabeled(group, "dcart", labels,
		"engine event counter (see internal/metrics for the vocabulary)", e.ms)
	r.RegisterGauge(group, "dcart_pctt_workers", labels,
		"configured P-CTT worker goroutines (SOU analogues)",
		func() float64 { return float64(e.cfg.Workers) })
	r.RegisterGauge(group, "dcart_pctt_inflight_ops", labels,
		"submitted-but-incomplete operations (bounded by MaxInflight)",
		func() float64 { return float64(e.InflightOps()) })
	r.RegisterGauge(group, "dcart_pctt_max_inflight", labels,
		"configured MaxInflight bound (the saturation rule's denominator "+
			"for dcart_pctt_inflight_ops)",
		func() float64 { return float64(e.cfg.MaxInflight) })
	r.RegisterGauge(group, "dcart_pctt_shortcut_entries", labels,
		"live Shortcut_Table entries summed across workers",
		func() float64 { return float64(e.ShortcutCount()) })
	r.RegisterGauge(group, "dcart_pctt_hotset_entries", labels,
		"resident hot-node anchors (software Tree_buffer) summed across workers",
		func() float64 { return float64(e.HotsetCount()) })
	r.RegisterGauge(group, "dcart_pctt_nodes_per_op", labels,
		"tree nodes visited per executed operation (node_accesses over ops; "+
			"the quantity batch-shared descents drive down, paper Fig 6)",
		func() float64 {
			ops := e.ms.Get(metrics.CtrOpsRead) + e.ms.Get(metrics.CtrOpsWrite)
			if ops == 0 {
				return 0
			}
			return float64(e.ms.Get(metrics.CtrNodeAccesses)) / float64(ops)
		})
	r.RegisterGauge(group, "dcart_pctt_shared_descents", labels,
		"batch-shared lock-coupled descents (one traversal serving a whole "+
			"sorted key batch)",
		func() float64 { return float64(e.ms.Get(metrics.CtrSharedDescents)) })
	for i := 0; i < e.cfg.Workers; i++ {
		i := i
		wl := obs.JoinLabels(labels, obs.Label("worker", strconv.Itoa(i)))
		r.RegisterGauge(group, "dcart_pctt_ring_depth", wl,
			"queued combine buckets in the worker's lock-free ring",
			func() float64 { return float64(e.RingDepth(i)) })
		r.RegisterGauge(group, "dcart_pctt_worker_heartbeat", wl,
			"trigger batches completed by the worker (progress heartbeat; "+
				"frozen while occupancy is non-zero = stalled)",
			func() float64 { return float64(e.WorkerHeartbeat(i)) })
	}
	for _, st := range []struct {
		label string
		pick  func(idle, queued, running int) int
	}{
		{"idle", func(i, _, _ int) int { return i }},
		{"queued", func(_, q, _ int) int { return q }},
		{"running", func(_, _, r int) int { return r }},
	} {
		st := st
		r.RegisterGauge(group, "dcart_pctt_bucket_state",
			obs.JoinLabels(labels, obs.Label("state", st.label)),
			"combine buckets by scheduling state",
			func() float64 { return float64(st.pick(e.BucketStateCounts())) })
	}
	if e.cfg.RecordLatency {
		r.RegisterHistogramLabeled(group, "dcart_pctt_latency_seconds", labels,
			"sampled end-to-end operation latency (true submit to completion)",
			e.LatencyHistogram)
		r.RegisterHistogramLabeled(group, "dcart_pctt_queue_wait_seconds", labels,
			"sampled combine + queue wait (submit until trigger batch start)",
			e.QueueWaitHistogram)
		r.RegisterHistogramLabeled(group, "dcart_pctt_exec_seconds", labels,
			"sampled trigger-execute time (batch start until completion)",
			e.ExecHistogram)
	}
}
