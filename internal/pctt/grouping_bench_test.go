package pctt

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// BenchmarkGroupingHash* isolate the trigger-batch grouping pass to
// measure what carrying the key hash in the task buys. The pipeline
// computes hashKey once at submit (producer side, off the worker's
// critical path) and carries it end-to-end in task.hash;
// ...Carried groups a batch reusing that field, ...Recomputed hashes every
// key again the way a carry-free design would have to. The loop body
// mirrors worker.execBatch's grouping pass over a realistic batch shape
// (BatchSize tasks, Zipf-ish key repetition so groups actually form).

// makeGroupingBatch builds one batch of n tasks over k distinct keys with
// the hot-key repetition the combine stage sees (task i uses key i%k, so
// every key groups, some more than others via the quadratic skew).
func makeGroupingBatch(n, k int) []task {
	keys := make([][]byte, k)
	for i := range keys {
		key := make([]byte, 16)
		binary.BigEndian.PutUint64(key, uint64(i)*0x9e3779b97f4a7c15)
		binary.BigEndian.PutUint64(key[8:], uint64(i))
		keys[i] = key
	}
	batch := make([]task, n)
	for i := range batch {
		// Quadratic skew: low key indices repeat far more often.
		ki := (i * i) % k
		batch[i] = task{key: keys[ki], hash: hashKey(keys[ki])}
	}
	return batch
}

// groupBatch is worker.execBatch's grouping pass, parameterized by where
// the hash comes from.
func groupBatch(batch []task, gtab []gslot, groups []group, recompute bool) []group {
	groups = groups[:0]
	clear(gtab)
	mask := uint64(len(gtab) - 1)
	for i := range batch {
		t := &batch[i]
		h := t.hash
		if recompute {
			h = hashKey(t.key)
		}
		pos := h & mask
		for {
			s := &gtab[pos]
			if s.gi == 0 {
				s.hash = h
				s.gi = int32(len(groups)) + 1
				if len(groups) < cap(groups) {
					groups = groups[:len(groups)+1]
				} else {
					groups = append(groups, group{})
				}
				g := &groups[len(groups)-1]
				g.ops = append(g.ops[:0], t)
				g.hash = h
				break
			}
			if s.hash == h {
				g := &groups[s.gi-1]
				if bytes.Equal(g.ops[0].key, t.key) {
					g.ops = append(g.ops, t)
					break
				}
			}
			pos = (pos + 1) & mask
		}
	}
	return groups
}

func benchGrouping(b *testing.B, recompute bool) {
	const nTasks, nKeys = 4096, 1024
	batch := makeGroupingBatch(nTasks, nKeys)
	distinct := make(map[string]struct{}, nKeys)
	for i := range batch {
		distinct[string(batch[i].key)] = struct{}{}
	}
	n := 1
	for n < 2*nTasks {
		n <<= 1
	}
	gtab := make([]gslot, n)
	var groups []group
	b.SetBytes(nTasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups = groupBatch(batch, gtab, groups, recompute)
	}
	if len(groups) != len(distinct) {
		b.Fatalf("grouped into %d groups, want %d", len(groups), len(distinct))
	}
}

func BenchmarkGroupingHashCarried(b *testing.B)    { benchGrouping(b, false) }
func BenchmarkGroupingHashRecomputed(b *testing.B) { benchGrouping(b, true) }
