package pctt

import (
	"sync"

	"repro/internal/workload"
)

// Pending is the completion token of one asynchronous Batcher submission
// (GetAsync/PutAsync/DeleteAsync). Wait blocks until the operation has
// applied and returns its outcome; it must be called exactly once — the
// token is pooled and becomes invalid the moment Wait returns.
//
// Async submission is how a single producer (e.g. one pipelined server
// connection) keeps several operations in flight at once, so the combine
// window sees more than one of its requests per batch. Ordering is the
// same as the blocking API: tasks enter their combine bucket in submission
// order, so per key, per producer, FIFO holds — a producer that submits
// W(k,v) then R(k) observes v once both tokens resolve, whether or not it
// waited in between.
type Pending struct {
	reply chan taskResult
	res   taskResult
	ready bool
}

var pendingPool = sync.Pool{New: func() any { return new(Pending) }}

// resolvedPending wraps an already-computed result (bypass and post-Close
// paths execute on the submitting goroutine).
func resolvedPending(r taskResult) *Pending {
	p := pendingPool.Get().(*Pending)
	p.res, p.ready = r, true
	return p
}

// Wait blocks until the operation has applied. The returned pair is
// (value, present) for Get, (_, replaced) for Put, and (_, present) for
// Delete — the same results the blocking calls return.
func (p *Pending) Wait() (uint64, bool) {
	if !p.ready {
		p.res = <-p.reply
		replyPool.Put(p.reply)
	}
	r := p.res
	p.reply, p.res, p.ready = nil, taskResult{}, false
	pendingPool.Put(p)
	return r.value, r.found
}

// GetAsync submits a read without waiting for it. The key must not be
// mutated until Wait returns.
func (e *Engine) GetAsync(key []byte) *Pending {
	return e.doAsync(task{kind: workload.Read, key: key})
}

// PutAsync submits a write without waiting for it; Wait reports whether an
// existing value was replaced.
func (e *Engine) PutAsync(key []byte, value uint64) *Pending {
	return e.doAsync(task{kind: workload.Write, key: key, value: value})
}

// DeleteAsync submits a removal without waiting for it; Wait reports
// whether the key was present.
func (e *Engine) DeleteAsync(key []byte) *Pending {
	return e.doAsync(task{kind: workload.Delete, key: key})
}

// doAsync is do without the final blocking receive: the reply channel is
// handed to the caller inside a Pending instead. Submission itself may
// still block on the pipeline's backpressure gates (MaxInflight,
// QueueDepth) — that is the bound that keeps a fast producer from growing
// the backlog without limit.
func (e *Engine) doAsync(t task) *Pending {
	e.start()
	t.hash = hashKey(t.key)
	e.stamp(&t)

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return resolvedPending(e.direct(t))
	}
	if e.bypassEligible() {
		e.mu.RUnlock()
		return resolvedPending(e.bypassOne(t))
	}
	reply := replyPool.Get().(chan taskResult)
	t.reply = reply
	e.submitOne(e.shardOf(t.key), t)
	e.mu.RUnlock()

	p := pendingPool.Get().(*Pending)
	p.reply, p.ready = reply, false
	return p
}
