package pctt

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Batcher is the blocking front-end the kvserver hot path uses: each call
// routes one operation through the combining pipeline and waits for its
// result. Concurrent callers on keys sharing a prefix bucket are combined
// into one trigger batch by the executing worker — the deadline-driven
// combine window (Config.MaxDelay) gives concurrent requests a bounded
// interval to coalesce — which is where the lock-amortization wins come
// from under concurrent load.
//
// Per caller, operations complete in issue order (each call blocks), so a
// connection observes read-your-writes for every key; the bucket state
// machine extends per-key FIFO across work stealing too.
type Batcher interface {
	Get(key []byte) (uint64, bool)
	Put(key []byte, value uint64) bool
	Delete(key []byte) bool
}

// Get routes a read through the pipeline and blocks for its value. The key
// must not be mutated by the caller until the call returns.
func (e *Engine) Get(key []byte) (uint64, bool) {
	r := e.do(task{kind: workload.Read, key: key})
	return r.value, r.found
}

// Put routes a write through the pipeline; it reports whether an existing
// value was replaced.
func (e *Engine) Put(key []byte, value uint64) bool {
	return e.do(task{kind: workload.Write, key: key, value: value}).found
}

// Delete routes a removal through the pipeline; it reports whether the key
// was present.
func (e *Engine) Delete(key []byte) bool {
	return e.do(task{kind: workload.Delete, key: key}).found
}

// do submits one blocking operation. The key hash is computed here, on the
// caller's goroutine, and carried in the task so the worker's grouping and
// Shortcut_Table lookups never re-hash. After Close it executes directly
// against the tree (the pipeline's ordering guarantees no longer apply,
// but the tree itself stays safe for concurrent use).
func (e *Engine) do(t task) taskResult {
	e.start()
	t.hash = hashKey(t.key)
	e.stamp(&t)

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return e.direct(t)
	}
	if e.bypassEligible() {
		// Single worker, empty pipeline: no concurrent caller to coalesce
		// with, so skip the queue hop and execute on this goroutine. Under
		// load (anything in flight) the pipeline path re-engages and the
		// combine window does its work.
		e.mu.RUnlock()
		return e.bypassOne(t)
	}
	reply := replyPool.Get().(chan taskResult)
	t.reply = reply
	e.submitOne(e.shardOf(t.key), t)
	e.mu.RUnlock()

	r := <-reply
	replyPool.Put(reply)
	return r
}

// stamp applies the Batcher path's sampling decisions to a task before
// submission. Latency is sampled 1-in-16 (as on the Run path) so a live
// server's histogram upkeep stays off most requests; tracing makes its own
// (typically much sparser) sampling decision.
func (e *Engine) stamp(t *task) {
	if e.cfg.RecordLatency && e.latN.Add(1)&15 == 0 {
		t.lat = true
		t.enq = time.Now().UnixNano()
	}
	if tr := e.cfg.Tracer; tr != nil && tr.Sample() {
		t.traced = true
		if t.enq == 0 {
			t.enq = time.Now().UnixNano()
		}
	}
	if e.cfg.Journal != nil && t.enq == 0 {
		t.enq = time.Now().UnixNano()
	}
}

// bypassOne executes one Batcher task on the caller's goroutine (the
// single-worker fast path) and performs the bypassed pipeline's latency and
// tracing bookkeeping so the obs layer still sees one coherent story.
func (e *Engine) bypassOne(t task) taskResult {
	r := e.direct(t)
	e.ms.Inc(metrics.CtrBypassOps)
	if t.enq != 0 {
		now := time.Now().UnixNano()
		d := float64(now-t.enq) * 1e-9
		w := e.workers[0]
		if t.lat {
			w.histMu.Lock()
			w.histTotal.Observe(d)
			w.histQueue.Observe(0)
			w.histExec.Observe(d)
			w.histMu.Unlock()
		}
		j := e.cfg.Journal
		if t.traced || j != nil {
			s := obs.Span{
				TraceID:        t.hash,
				Op:             opName(t.kind),
				Worker:         0,
				Bucket:         e.shardOf(t.key),
				SubmitUnixNano: t.enq,
				BatchUnixNano:  t.enq,
				DoneUnixNano:   now,
				ExecNanos:      now - t.enq,
				Layer:          "engine",
				Stages: []obs.Stage{{
					Name: "trigger", StartUnixNano: t.enq, EndUnixNano: now,
				}},
			}
			if t.traced {
				if tr := e.cfg.Tracer; tr != nil {
					tr.Record(s)
				}
			}
			if j != nil {
				j.Observe(s)
			}
		}
	}
	return r
}

// direct is the post-Close fallback.
func (e *Engine) direct(t task) taskResult {
	switch t.kind {
	case workload.Read:
		v, ok := e.tree.Get(t.key)
		return taskResult{value: v, found: ok}
	case workload.Write:
		return taskResult{found: e.tree.Put(t.key, t.value)}
	default:
		return taskResult{found: e.tree.Delete(t.key)}
	}
}
