package ctt

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func testWorkload(name string, readRatio float64) *workload.Workload {
	return workload.MustGenerate(workload.Spec{
		Name: name, NumKeys: 3000, NumOps: 15000,
		ReadRatio: readRatio, InsertFraction: 0.3, Seed: 31,
	})
}

// reuseWorkload matches the paper's operations-per-key regime (50M ops
// over a few million keys, i.e. >=10 ops/key), where coalescing and
// shortcut reuse carry the win.
func reuseWorkload(name string, readRatio float64) *workload.Workload {
	return workload.MustGenerate(workload.Spec{
		Name: name, NumKeys: 1500, NumOps: 30000,
		ReadRatio: readRatio, InsertFraction: 0.05, Seed: 31,
	})
}

// perKeyReplay computes read expectations under per-key sequential
// semantics (which CTT preserves: same-key ops share a bucket and execute
// in stream order) and the final key-value state.
func perKeyReplay(w *workload.Workload) (reads map[int]engine.ReadResult, final map[string]uint64) {
	state := make(map[string]uint64)
	for i, k := range w.Keys {
		state[string(k)] = uint64(i)
	}
	reads = make(map[int]engine.ReadResult)
	for i, op := range w.Ops {
		ks := string(op.Key)
		switch op.Kind {
		case workload.Read:
			v, ok := state[ks]
			reads[i] = engine.ReadResult{Index: i, Value: v, OK: ok}
		case workload.Write:
			state[ks] = op.Value
		case workload.Delete:
			delete(state, ks)
		}
	}
	return reads, state
}

func TestFunctionalEquivalence(t *testing.T) {
	for _, name := range workload.All {
		name := name
		t.Run(name, func(t *testing.T) {
			w := testWorkload(name, 0.5)
			wantReads, wantFinal := perKeyReplay(w)

			e := New(Config{Config: engine.Config{CollectReads: true}, BatchSize: 512})
			e.Load(w.Keys, nil)
			res := e.Run(w.Ops)

			if e.Tree().Len() != len(wantFinal) {
				t.Fatalf("final keys = %d, want %d", e.Tree().Len(), len(wantFinal))
			}
			for ks, v := range wantFinal {
				got, ok := e.Tree().Get([]byte(ks))
				if !ok || got != v {
					t.Fatalf("final state mismatch at %x: (%d,%v), want %d", ks, got, ok, v)
				}
			}
			// Reads must match per-key sequential replay; a re-executed
			// fallback may record an index twice — the last record wins.
			byIndex := make(map[int]engine.ReadResult)
			for _, r := range res.Reads {
				byIndex[r.Index] = r
			}
			for i, want := range wantReads {
				got, ok := byIndex[i]
				if !ok {
					t.Fatalf("read %d unrecorded", i)
				}
				if got != want {
					t.Fatalf("read %d = %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

func TestShortcutsGetUsed(t *testing.T) {
	w := reuseWorkload(workload.IPGEO, 0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	hits := e.Metrics().Get(metrics.CtrShortcutHit)
	misses := e.Metrics().Get(metrics.CtrShortcutMiss)
	if hits == 0 {
		t.Fatal("no shortcut hits on a Zipfian workload")
	}
	// On a skewed workload, reuse should dominate.
	if float64(hits)/float64(hits+misses) < 0.3 {
		t.Fatalf("shortcut hit ratio = %.2f, want >= 0.3", float64(hits)/float64(hits+misses))
	}
	if e.ShortcutCount() == 0 {
		t.Fatal("shortcut table empty after run")
	}
}

func TestFewerKeyMatchesThanSMART(t *testing.T) {
	// Fig 8: DCART's partial-key matches are 6.5-14.3% of SMART's. The
	// software model shares the counting; verify a strong reduction.
	w := reuseWorkload(workload.IPGEO, 0.5)

	smart := baseline.NewSMART(engine.Config{Threads: 96})
	smart.Load(w.Keys, nil)
	smart.Run(w.Ops)

	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)

	ms, mc := smart.Metrics().Get(metrics.CtrKeyMatches), e.Metrics().Get(metrics.CtrKeyMatches)
	if mc >= ms/2 {
		t.Fatalf("CTT key matches (%d) not well below SMART (%d)", mc, ms)
	}
}

func TestContentionFarBelowBaselines(t *testing.T) {
	// Fig 7: DCART's lock contentions are 3.2-19.7% of the baselines'.
	w := testWorkload(workload.IPGEO, 0.3)

	art := baseline.NewART(engine.Config{Threads: 96})
	art.Load(w.Keys, nil)
	art.Run(w.Ops)

	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)

	ca := art.Metrics().Get(metrics.CtrLockContention)
	cc := e.Metrics().Get(metrics.CtrLockContention)
	if ca == 0 {
		t.Fatal("baseline has no contention; workload too uniform")
	}
	if float64(cc) > 0.30*float64(ca) {
		t.Fatalf("CTT contention (%d) not below 30%% of ART (%d)", cc, ca)
	}
}

func TestAblationShortcutsOff(t *testing.T) {
	w := testWorkload(workload.IPGEO, 0.5)
	on := New(Config{})
	on.Load(w.Keys, nil)
	on.Run(w.Ops)

	off := New(Config{DisableShortcuts: true})
	off.Load(w.Keys, nil)
	off.Run(w.Ops)

	if off.Metrics().Get(metrics.CtrShortcutHit) != 0 {
		t.Fatal("shortcuts hit while disabled")
	}
	if off.Metrics().Get(metrics.CtrKeyMatches) <= on.Metrics().Get(metrics.CtrKeyMatches) {
		t.Fatalf("disabling shortcuts should raise key matches (%d vs %d)",
			off.Metrics().Get(metrics.CtrKeyMatches), on.Metrics().Get(metrics.CtrKeyMatches))
	}
	// Functionality must be unaffected.
	_, wantFinal := perKeyReplay(w)
	if off.Tree().Len() != len(wantFinal) {
		t.Fatal("ablation changed final state size")
	}
}

func TestAblationCombiningOff(t *testing.T) {
	w := testWorkload(workload.IPGEO, 0.2) // write-heavy: many lock acquires
	on := New(Config{})
	on.Load(w.Keys, nil)
	on.Run(w.Ops)

	off := New(Config{DisableCombining: true})
	off.Load(w.Keys, nil)
	off.Run(w.Ops)

	if off.Metrics().Get(metrics.CtrCoalesced) != 0 {
		t.Fatal("ops coalesced while combining disabled")
	}
	if off.Metrics().Get(metrics.CtrLockAcquire) <= on.Metrics().Get(metrics.CtrLockAcquire) {
		t.Fatalf("disabling combining should raise lock acquires (%d vs %d)",
			off.Metrics().Get(metrics.CtrLockAcquire), on.Metrics().Get(metrics.CtrLockAcquire))
	}
}

func TestCombineStepsCounted(t *testing.T) {
	w := testWorkload(workload.DE, 0.5)
	e := New(Config{})
	e.Load(w.Keys, nil)
	e.Run(w.Ops)
	if got := e.Metrics().Get(metrics.CtrCombineSteps); got != int64(len(w.Ops)) {
		t.Fatalf("combine steps = %d, want %d", got, len(w.Ops))
	}
	if e.Metrics().Get(metrics.CtrShortcutMaintain) == 0 {
		t.Fatal("no shortcut maintenance counted")
	}
}

func TestBucketOfDisjointAndStable(t *testing.T) {
	e := New(Config{})
	// Same prefix byte -> same bucket.
	a := e.bucketOf([]byte{0x67, 0x01})
	b := e.bucketOf([]byte{0x67, 0xFF, 0x32})
	if a != b {
		t.Fatalf("same-prefix keys in different buckets: %d vs %d", a, b)
	}
	// Default mapping: round-robin labels, prefix mod 16.
	if got := e.bucketOf([]byte{0x67}); got != 0x67%16 {
		t.Fatalf("bucket(0x67) = %d, want %d", got, 0x67%16)
	}
	// Adjacent populous prefixes (ASCII letters) land in distinct buckets.
	if e.bucketOf([]byte("a")) == e.bucketOf([]byte("b")) {
		t.Fatal("adjacent prefixes share a bucket")
	}
	// Bounds over all prefixes.
	for p := 0; p < 256; p++ {
		bk := e.bucketOf([]byte{byte(p)})
		if bk < 0 || bk >= 16 {
			t.Fatalf("bucket(%#x) = %d out of range", p, bk)
		}
	}
	// Empty key is valid.
	if bk := e.bucketOf(nil); bk != 0 {
		t.Fatalf("bucket(nil) = %d", bk)
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload(workload.EA, 0.5)
	run := func() map[string]int64 {
		e := New(Config{})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		return e.Metrics().Snapshot()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("counter %s differs: %d vs %d", k, v, b[k])
		}
	}
}

func TestDeletesSupported(t *testing.T) {
	e := New(Config{Config: engine.Config{CollectReads: true}})
	keys := [][]byte{[]byte("aa\x00"), []byte("ab\x00"), []byte("ba\x00")}
	e.Load(keys, nil)
	ops := []workload.Op{
		{Kind: workload.Delete, Key: []byte("ab\x00")},
		{Kind: workload.Read, Key: []byte("ab\x00")},
		{Kind: workload.Write, Key: []byte("ab\x00"), Value: 77},
		{Kind: workload.Read, Key: []byte("ab\x00")},
	}
	res := e.Run(ops)
	byIndex := map[int]engine.ReadResult{}
	for _, r := range res.Reads {
		byIndex[r.Index] = r
	}
	if byIndex[1].OK {
		t.Fatal("read after delete found the key")
	}
	if !byIndex[3].OK || byIndex[3].Value != 77 {
		t.Fatalf("read after reinsert = %+v", byIndex[3])
	}
}

func TestShortcutInvalidationUnderChurn(t *testing.T) {
	// Heavy inserts under few prefixes force grows and prefix splits; the
	// shortcut table must stay coherent (equivalence is checked; here we
	// also require that invalidations actually happened).
	w := workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 500, NumOps: 20000,
		ReadRatio: 0.3, InsertFraction: 0.8, Seed: 77,
	})
	wantReads, wantFinal := perKeyReplay(w)
	e := New(Config{Config: engine.Config{CollectReads: true}, BatchSize: 256})
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)

	for ks, v := range wantFinal {
		got, ok := e.Tree().Get([]byte(ks))
		if !ok || got != v {
			t.Fatalf("final state mismatch at %x", ks)
		}
	}
	byIndex := map[int]engine.ReadResult{}
	for _, r := range res.Reads {
		byIndex[r.Index] = r
	}
	for i, want := range wantReads {
		if byIndex[i] != want {
			t.Fatalf("read %d = %+v, want %+v", i, byIndex[i], want)
		}
	}
	if e.Metrics().Get(metrics.CtrShortcutMaintain) == 0 {
		t.Fatal("churn produced no shortcut maintenance")
	}
}
