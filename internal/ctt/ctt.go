// Package ctt implements DCART-C: the software-only version of the
// paper's data-centric Combine-Traverse-Trigger processing model (§II-C,
// §IV-A), running on the art substrate.
//
// The engine processes the operation stream in batches. Each batch passes
// through the three CTT phases:
//
//  1. Combine — operations are assigned to one of NumBuckets disjoint
//     bucket tables by the leading PrefixBits bits of their key, so all
//     operations that can target the same ART nodes share a bucket.
//  2. Traverse — each bucket is processed by one logical worker. Within a
//     bucket, operations on the same key form a group; the worker locates
//     the group's target node once — via the software Shortcut_Table
//     (<key, target-node, parent-node>) when possible, via one top-down
//     traversal otherwise.
//  3. Trigger — all operations of the group execute together against the
//     located node, acquiring that node's lock once for the whole group.
//
// Because buckets are disjoint by key prefix, two workers can conflict
// only on nodes shared across prefixes (near the root); the engine counts
// those residual conflicts as lock contention, reproducing the paper's
// observation that CTT removes 80-97% of lock contention (Fig 7).
//
// The software model pays for its gains with bookkeeping that the paper's
// hardware hides: per-op combining steps and Shortcut_Table maintenance
// are counted separately (CtrCombineSteps, CtrShortcutMaintain) and
// charged by the CPU timing model, which is why DCART-C only slightly
// outperforms SMART in Fig 9 while DCART (the FPGA) is far ahead.
package ctt

import (
	"repro/internal/art"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config parameterizes the CTT engine.
type Config struct {
	engine.Config
	// BatchSize is the number of operations combined per CTT batch
	// (default 4096).
	BatchSize int
	// NumBuckets is the number of disjoint bucket tables (default 16,
	// matching the paper's sixteen Bucket_Tables / SOUs).
	NumBuckets int
	// PrefixBits is the number of leading key bits used as the combining
	// prefix (default 8, "the first 8 bits of the key" per §III-B).
	PrefixBits int
	// DisableShortcuts turns off the Shortcut_Table (ablation).
	DisableShortcuts bool
	// DisableCombining processes each operation as its own group
	// (ablation: traversal sharing and lock coalescing disappear).
	DisableCombining bool
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	c.Config = c.Config.Defaults()
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.NumBuckets <= 0 {
		c.NumBuckets = 16
	}
	if c.PrefixBits <= 0 || c.PrefixBits > 16 {
		c.PrefixBits = 8
	}
	return c
}

// shortcutEntry is one Shortcut_Table record.
type shortcutEntry struct {
	target art.NodeRef
	parent art.NodeRef
}

// Engine is the DCART-C software engine.
type Engine struct {
	name string
	cfg  Config

	tree    *art.Tree
	ms      *metrics.Set
	red     *metrics.RedundancyTracker
	lineUse *mem.LineUseTracker

	shortcuts map[string]shortcutEntry
	byAddr    map[uint64][]string // target addr -> keys, for invalidation

	// prefixSkip is the number of leading bytes shared by every loaded
	// key; the combining prefix starts after them (a host-configured
	// register in the hardware analogue).
	prefixSkip int

	measuring bool
	// suppressAccess is set while triggering the 2nd..nth operation of a
	// coalesced group: the target node is already at hand, so those
	// operations cause no additional fetches or key matches.
	suppressAccess bool
	// jumpAccess is set during shortcut-based GetAt/PutAt: the fetches
	// still happen (and are charged) but no partial-key matching runs —
	// the shortcut replaces the radix descent (Fig 8's metric).
	jumpAccess bool
}

// New returns a DCART-C engine.
func New(cfg Config) *Engine {
	cfg = cfg.Defaults()
	e := &Engine{
		name:      "DCART-C",
		cfg:       cfg,
		tree:      art.New(art.WithRegistry()),
		ms:        metrics.NewSet(),
		shortcuts: make(map[string]shortcutEntry),
		byAddr:    make(map[uint64][]string),
	}
	e.newTrackers()
	e.tree.SetAccessHook(e.onAccess)
	e.tree.SetReplaceHook(e.onReplace)
	e.tree.SetPrefixHook(e.onPrefixChange)
	return e
}

func (e *Engine) newTrackers() {
	e.red = metrics.NewRedundancyTracker(e.cfg.NumBuckets)
	e.lineUse = mem.NewLineUseTracker(e.cfg.CacheBytes, e.cfg.LineSize)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Tree exposes the index for verification.
func (e *Engine) Tree() *art.Tree { return e.tree }

// Metrics returns the live counter set.
func (e *Engine) Metrics() *metrics.Set { return e.ms }

// ShortcutCount returns the live Shortcut_Table population.
func (e *Engine) ShortcutCount() int { return len(e.shortcuts) }

func (e *Engine) onAccess(addr uint64, size int, kind art.NodeKind) {
	if !e.measuring || e.suppressAccess {
		return
	}
	if !e.jumpAccess {
		e.ms.Inc(metrics.CtrKeyMatches)
	}
	e.ms.Inc(metrics.CtrNodeAccesses)
	if e.red.Touch(addr) {
		e.ms.Inc(metrics.CtrRedundantNodes)
	}
	// Same CPU line-touch model as the baselines: header/probe bytes plus
	// the child-slot line for big nodes.
	useful := 18
	if kind == art.Leaf {
		useful = size - 16
		if useful < 9 {
			useful = 9
		}
	} else if kind == art.Node16 {
		useful = 34
	}
	e.lineUse.Access(addr, useful)
	if size > e.cfg.LineSize {
		e.lineUse.Access(addr+uint64(size)/2, 8)
	}
}

// onReplace keeps the Shortcut_Table coherent across node replacement.
// A grow/shrink (newAddr != 0) rewrites affected entries to the new
// address — the paper's "the corresponding entry in Shortcut_Table needs
// to be updated when this operation causes a change in the type of
// Node_X" — since the node's consumed depth is unchanged. A free
// (newAddr == 0) drops the entries.
func (e *Engine) onReplace(oldAddr, newAddr uint64) {
	if newAddr == 0 {
		e.invalidate(oldAddr)
		return
	}
	keys, ok := e.byAddr[oldAddr]
	if !ok {
		return
	}
	delete(e.byAddr, oldAddr)
	for _, k := range keys {
		sc, ok := e.shortcuts[k]
		if !ok || sc.target.Addr != oldAddr {
			continue
		}
		sc.target.Addr = newAddr
		e.shortcuts[k] = sc
		e.byAddr[newAddr] = append(e.byAddr[newAddr], k)
		if e.measuring {
			e.ms.Inc(metrics.CtrShortcutMaintain)
		}
	}
}

// onPrefixChange drops entries whose recorded depth went stale.
func (e *Engine) onPrefixChange(addr uint64) {
	e.invalidate(addr)
}

func (e *Engine) invalidate(addr uint64) {
	keys, ok := e.byAddr[addr]
	if !ok {
		return
	}
	delete(e.byAddr, addr)
	for _, k := range keys {
		if sc, ok := e.shortcuts[k]; ok && sc.target.Addr == addr {
			delete(e.shortcuts, k)
			if e.measuring {
				e.ms.Inc(metrics.CtrShortcutMaintain)
			}
		}
	}
}

func (e *Engine) storeShortcut(key string, sc shortcutEntry) {
	if old, ok := e.shortcuts[key]; ok && old.target.Addr == sc.target.Addr {
		e.shortcuts[key] = sc
		e.ms.Inc(metrics.CtrShortcutMaintain)
		return
	}
	e.shortcuts[key] = sc
	e.byAddr[sc.target.Addr] = append(e.byAddr[sc.target.Addr], key)
	e.ms.Inc(metrics.CtrShortcutMaintain)
}

// Load implements engine.Engine. Loading also derives the combining
// prefix position: leading bytes common to the whole key set carry no
// information, so the PCU prefix starts after them.
func (e *Engine) Load(keys [][]byte, values []uint64) {
	e.measuring = false
	e.prefixSkip = commonPrefixLenAll(keys)
	e.tree.Load(keys, values)
}

// Reset implements engine.Engine. The Shortcut_Table persists (it is part
// of the index state, not a measurement).
func (e *Engine) Reset() {
	e.ms.Reset()
	e.newTrackers()
}

// bucketOf maps a key to its bucket table: the PrefixBits-bit key prefix
// (taken after the key set's common leading bytes, which carry no
// information — e.g. the zero high bytes of dense integer keys), assigned
// to bucket labels round-robin so populous adjacent prefixes (ASCII
// letters, IPv4 hot ranges) spread across the tables.
func (e *Engine) bucketOf(key []byte) int {
	i := e.prefixSkip
	var b0, b1 byte
	if i < len(key) {
		b0 = key[i]
	}
	if i+1 < len(key) {
		b1 = key[i+1]
	}
	v := uint32(b0)<<8 | uint32(b1)
	prefix := v >> uint(16-e.cfg.PrefixBits)
	return int(prefix) % e.cfg.NumBuckets
}

// commonPrefixLenAll returns the length of the byte prefix shared by every
// key (capped so at least one varying byte remains).
func commonPrefixLenAll(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	cp := len(keys[0])
	for _, k := range keys[1:] {
		n := cp
		if len(k) < n {
			n = len(k)
		}
		i := 0
		for i < n && k[i] == keys[0][i] {
			i++
		}
		cp = i
		if cp == 0 {
			return 0
		}
	}
	if cp > 0 && cp >= len(keys[0]) {
		cp = len(keys[0]) - 1
	}
	return cp
}

// Run implements engine.Engine.
func (e *Engine) Run(ops []workload.Op) *engine.Result {
	e.measuring = true
	defer func() { e.measuring = false }()

	res := &engine.Result{Name: e.name, Ops: len(ops), Metrics: e.ms}
	for start := 0; start < len(ops); start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > len(ops) {
			end = len(ops)
		}
		e.runBatch(ops[start:end], start, res)
	}
	res.RedundantRatio = e.red.Ratio()
	res.LineUtilization = e.lineUse.Utilization()
	res.CacheHitRatio = e.lineUse.Stats().HitRatio()
	res.OffchipBytes = e.lineUse.FetchedBytes()
	return res
}

// group is a set of same-key operations coalesced within one bucket.
type group struct {
	key []byte
	ops []int // batch-relative op indices, in stream order
}

// runBatch performs Combine, then Traverse+Trigger per bucket.
func (e *Engine) runBatch(batch []workload.Op, base int, res *engine.Result) {
	// --- Combine: bucketize by prefix (the PCU's job). -------------------
	buckets := make([][]int, e.cfg.NumBuckets)
	for i := range batch {
		b := e.bucketOf(batch[i].Key)
		buckets[b] = append(buckets[b], i)
		e.ms.Inc(metrics.CtrCombineSteps)
	}

	// conflictTargets maps each write-group's target node to the set of
	// buckets (logically parallel workers) that locked it this batch.
	// Groups within one bucket execute serially on one worker and never
	// contend with each other — contention is a cross-worker event.
	conflictTargets := make(map[uint64]map[int]bool)

	// --- Traverse + Trigger: one logical worker per bucket. --------------
	for bi, bucket := range buckets {
		for _, g := range e.groupByKey(batch, bucket) {
			e.execGroup(batch, g, base, bi, conflictTargets, res)
		}
	}

	for _, owners := range conflictTargets {
		if n := len(owners); n > 1 {
			e.ms.Add(metrics.CtrLockContention, int64(n-1))
		}
	}
}

// groupByKey coalesces a bucket's operations by key, preserving
// first-appearance order across groups and stream order within a group.
func (e *Engine) groupByKey(batch []workload.Op, bucket []int) []group {
	if e.cfg.DisableCombining {
		out := make([]group, 0, len(bucket))
		for _, i := range bucket {
			out = append(out, group{key: batch[i].Key, ops: []int{i}})
		}
		return out
	}
	idx := make(map[string]int, len(bucket))
	var out []group
	for _, i := range bucket {
		ks := string(batch[i].Key)
		if gi, ok := idx[ks]; ok {
			out[gi].ops = append(out[gi].ops, i)
			continue
		}
		idx[ks] = len(out)
		out = append(out, group{key: batch[i].Key, ops: []int{i}})
	}
	return out
}

// execGroup locates the group's target node (shortcut or traversal) and
// triggers all of its operations together.
func (e *Engine) execGroup(batch []workload.Op, g group, base, bucket int,
	conflictTargets map[uint64]map[int]bool, res *engine.Result) {

	ks := string(g.key)
	hasWrite := false
	for _, oi := range g.ops {
		if batch[oi].Kind != workload.Read {
			hasWrite = true
			break
		}
	}

	// --- locate the target ----------------------------------------------
	var ref shortcutEntry
	haveRef := false
	fromShortcut := false
	if !e.cfg.DisableShortcuts {
		if sc, ok := e.shortcuts[ks]; ok {
			ref = sc
			haveRef = true
			fromShortcut = true
			e.ms.Inc(metrics.CtrShortcutHit)
		} else {
			e.ms.Inc(metrics.CtrShortcutMiss)
		}
	}
	if !haveRef {
		e.red.NextOp()
		if target, parent, ok := e.tree.Locate(g.key); ok {
			ref = shortcutEntry{target: target, parent: parent}
			haveRef = true
		}
	}

	// --- trigger ----------------------------------------------------------
	if hasWrite {
		// One lock acquisition serves the whole group (§II-C Obs. 1).
		e.ms.Inc(metrics.CtrLockAcquire)
		if haveRef {
			owners := conflictTargets[ref.target.Addr]
			if owners == nil {
				owners = make(map[int]bool, 1)
				conflictTargets[ref.target.Addr] = owners
			}
			owners[bucket] = true
		}
	}

	applied := false
	if haveRef {
		applied = e.applyViaRef(batch, g, base, &ref, fromShortcut, res)
	}
	if !applied {
		// Fallback: direct per-op execution (tree empty, bare-leaf root,
		// prefix-split insert, or a stale shortcut that failed
		// re-validation mid-group).
		if fromShortcut {
			delete(e.shortcuts, ks)
			e.ms.Inc(metrics.CtrShortcutMaintain)
		}
		e.applyDirect(batch, g, base, res)
		// Re-locate to (re)generate the shortcut for future groups.
		if !e.cfg.DisableShortcuts {
			if target, parent, ok := e.tree.Locate(g.key); ok {
				e.storeShortcut(ks, shortcutEntry{target: target, parent: parent})
			}
		}
		return
	}
	if !e.cfg.DisableShortcuts {
		e.storeShortcut(ks, ref)
	}

	// Coalesced ops beyond the first are the model's savings.
	if n := len(g.ops) - 1; n > 0 {
		e.ms.Add(metrics.CtrCoalesced, int64(n))
	}
}

// applyViaRef executes the group's ops against the located node. Returns
// false when the reference went stale and nothing beyond already-applied
// reads happened (writes re-validate before mutating, so a false return
// can safely fall back to direct execution).
func (e *Engine) applyViaRef(batch []workload.Op, g group, base int,
	ref *shortcutEntry, fromShortcut bool, res *engine.Result) bool {

	e.jumpAccess = fromShortcut
	defer func() { e.jumpAccess = false }()
	for gi, oi := range g.ops {
		op := &batch[oi]
		e.red.NextOp()
		// The first operation of the group fetches the target node (and
		// leaf); the coalesced rest execute on the already-fetched node —
		// the Trigger_Operation stage performs them together, so they add
		// no node fetches or key matches.
		if gi > 0 {
			e.suppressAccess = true
		}
		switch op.Kind {
		case workload.Read:
			e.ms.Inc(metrics.CtrOpsRead)
			v, found, valid := e.tree.GetAt(ref.target, op.Key)
			if !valid {
				e.suppressAccess = false
				return false
			}
			if e.cfg.CollectReads {
				res.Reads = append(res.Reads,
					engine.ReadResult{Index: base + oi, Value: v, OK: found})
			}
		case workload.Write:
			e.ms.Inc(metrics.CtrOpsWrite)
			pr := e.tree.PutAt(ref.target, ref.parent, op.Key, op.Value)
			if !pr.Valid {
				e.suppressAccess = false
				return false
			}
			if pr.TargetChanged {
				// A structural change mid-group does cause new fetches;
				// stop suppressing for the remainder.
				e.suppressAccess = false
				ref.target = pr.NewTarget
				e.ms.Inc(metrics.CtrShortcutMaintain)
			}
		case workload.Delete:
			// Deletes restructure arbitrarily; always direct.
			e.suppressAccess = false
			e.ms.Inc(metrics.CtrOpsWrite)
			e.tree.Delete(op.Key)
		}
	}
	e.suppressAccess = false
	return true
}

// applyDirect executes the group's ops with plain traversals.
func (e *Engine) applyDirect(batch []workload.Op, g group, base int, res *engine.Result) {
	for _, oi := range g.ops {
		op := &batch[oi]
		e.red.NextOp()
		switch op.Kind {
		case workload.Read:
			e.ms.Inc(metrics.CtrOpsRead)
			v, ok := e.tree.Get(op.Key)
			if e.cfg.CollectReads {
				res.Reads = append(res.Reads,
					engine.ReadResult{Index: base + oi, Value: v, OK: ok})
			}
		case workload.Write:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.tree.Put(op.Key, op.Value)
		case workload.Delete:
			e.ms.Inc(metrics.CtrOpsWrite)
			e.tree.Delete(op.Key)
		}
	}
}
