package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestTreeFacade(t *testing.T) {
	tr := NewTree()
	tr.Put([]byte("a"), 1)
	tr.Put([]byte("b"), 2)
	if v, ok := tr.Get([]byte("a")); !ok || v != 1 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestConcurrentTreeFacade(t *testing.T) {
	ms := metrics.NewSet()
	tr := NewConcurrentTree(ms)
	tr.Put([]byte("x"), 9)
	if v, ok := tr.Get([]byte("x")); !ok || v != 9 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if ms.Get(metrics.CtrOpsWrite) != 1 {
		t.Fatal("metrics not wired")
	}
	if NewConcurrentTree(nil) == nil {
		t.Fatal("nil metrics should still construct")
	}
}

// TestAllEnginesThroughFacade drives every evaluated system through the
// facade on one workload and checks each produced consistent results and
// a positive modeled time.
func TestAllEnginesThroughFacade(t *testing.T) {
	w, err := GenerateWorkload(WorkloadSpec{
		Name: workload.IPGEO, NumKeys: 2000, NumOps: 10000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Engine{
		"ART":     NewART(EngineConfig{}),
		"Heart":   NewHeart(EngineConfig{}),
		"SMART":   NewSMART(EngineConfig{}),
		"CuART":   NewCuART(CuARTConfig{}),
		"DCART-C": NewDCARTC(CTTConfig{}),
		"DCART":   NewDCART(DCARTConfig{}),
	}
	for name, e := range engines {
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		if res.Ops != len(w.Ops) {
			t.Fatalf("%s: ops = %d", name, res.Ops)
		}
		rep := Model(res)
		if rep.Seconds <= 0 || rep.Joules <= 0 {
			t.Fatalf("%s: modeled %+v", name, rep)
		}
	}
}

func TestGenerateWorkloadErrors(t *testing.T) {
	if _, err := GenerateWorkload(WorkloadSpec{Name: "BOGUS"}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestOpKindsExported(t *testing.T) {
	if Read == Write || Write == Delete {
		t.Fatal("op kind constants collide")
	}
}

// TestParallelCTTFacade exercises the natively-parallel engine through the
// facade: stream execution, the blocking Batcher API, and Close.
func TestParallelCTTFacade(t *testing.T) {
	e := NewParallelCTT(PCTTConfig{Workers: 2})
	defer e.Close()
	w, err := GenerateWorkload(WorkloadSpec{
		Name: workload.IPGEO, NumKeys: 1000, NumOps: 5000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)
	if res.Ops != len(w.Ops) {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.WallNanos <= 0 {
		t.Fatal("parallel engine must report measured wall time")
	}
	k := []byte("facade\x00")
	if e.Put(k, 42) {
		t.Fatal("fresh put reported replaced")
	}
	if v, ok := e.Get(k); !ok || v != 42 {
		t.Fatalf("batcher get = (%d,%v)", v, ok)
	}
	if !e.Delete(k) {
		t.Fatal("delete missed")
	}
}
