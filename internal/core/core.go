// Package core is the public facade of the DCART reproduction: it
// re-exports the index structures, the six evaluated engines, the
// workload generators, and the platform models under one import, so a
// downstream user (and the examples under examples/) can drive the
// library without knowing its internal package layout.
//
// Three levels of API:
//
//   - Index level: NewTree returns an adaptive radix tree usable as a
//     plain ordered key-value index; NewConcurrentTree returns the
//     thread-safe variant.
//   - Engine level: NewDCART, NewDCARTC, NewART, NewHeart, NewSMART, and
//     NewCuART return the evaluated systems behind the common Engine
//     interface (Load + Run over an operation stream). NewParallelCTT
//     returns the natively-parallel CTT engine, which executes with real
//     goroutines (measured wall-clock) rather than under the cost models.
//   - Experiment level: the internal/bench package regenerates every
//     table and figure of the paper; cmd/dcart-bench is its CLI.
package core

import (
	"repro/internal/accel"
	"repro/internal/art"
	"repro/internal/baseline"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/olc"
	"repro/internal/pctt"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Index types.
type (
	// Tree is a single-threaded adaptive radix tree (Leis et al.,
	// ICDE'13) over binary-comparable byte-string keys.
	Tree = art.Tree
	// ConcurrentTree is the thread-safe ART with node-level lock
	// coupling (the substrate of the paper's CPU baselines).
	ConcurrentTree = olc.Tree
	// NodeKind identifies the N4/N16/N48/N256/leaf layouts.
	NodeKind = art.NodeKind
)

// NewTree returns an empty adaptive radix tree.
func NewTree() *Tree { return art.New() }

// NewConcurrentTree returns an empty thread-safe adaptive radix tree.
// Pass nil to let the tree keep private metrics.
func NewConcurrentTree(ms *metrics.Set) *ConcurrentTree { return olc.New(ms) }

// Engine-level types.
type (
	// Engine is the interface all six evaluated systems implement.
	Engine = engine.Engine
	// EngineConfig is the shared modeled-execution configuration.
	EngineConfig = engine.Config
	// Result is an engine's measurement record.
	Result = engine.Result
	// Op is one operation of a workload stream.
	Op = workload.Op
	// Workload is a generated key set plus operation stream.
	Workload = workload.Workload
	// WorkloadSpec parameterizes workload generation.
	WorkloadSpec = workload.Spec
	// DCARTConfig is the accelerator's Table I configuration.
	DCARTConfig = accel.Config
	// CTTConfig parameterizes the software CTT engine.
	CTTConfig = ctt.Config
	// CuARTConfig parameterizes the GPU baseline model.
	CuARTConfig = cuart.Config
	// PCTTConfig parameterizes the parallel (natively-executing) CTT
	// engine.
	PCTTConfig = pctt.Config
	// Report is a modeled time/energy outcome.
	Report = platform.Report
)

// Operation kinds.
const (
	Read   = workload.Read
	Write  = workload.Write
	Delete = workload.Delete
)

// NewDCART returns the DCART accelerator simulator (the paper's
// contribution) with Table I defaults for any zero field.
func NewDCART(cfg DCARTConfig) Engine { return accel.New(cfg) }

// NewDCARTC returns the software CTT engine (DCART-C).
func NewDCARTC(cfg CTTConfig) Engine { return ctt.New(cfg) }

// NewART returns the lock-based concurrent ART baseline [9].
func NewART(cfg EngineConfig) Engine { return baseline.NewART(cfg) }

// NewHeart returns the CAS-based Heart baseline [17].
func NewHeart(cfg EngineConfig) Engine { return baseline.NewHeart(cfg) }

// NewSMART returns the SMART baseline [11].
func NewSMART(cfg EngineConfig) Engine { return baseline.NewSMART(cfg) }

// NewCuART returns the GPU (SIMT batch) baseline [6].
func NewCuART(cfg CuARTConfig) Engine { return cuart.New(cfg) }

// NewParallelCTT returns the parallel CTT engine: the paper's
// Combine-Traverse-Trigger pipeline running on real worker goroutines
// over the thread-safe tree. The concrete type is returned (not the
// Engine interface) so callers can reach the blocking Batcher API
// (Get/Put/Delete), the underlying Tree, and Close.
func NewParallelCTT(cfg PCTTConfig) *pctt.Engine { return pctt.New(cfg) }

// GenerateWorkload builds one of the six paper workloads (IPGEO, DICT,
// EA, DE, RS, RD).
func GenerateWorkload(spec WorkloadSpec) (*Workload, error) {
	return workload.Generate(spec)
}

// Model converts an engine result into modeled time and energy on the
// paper's testbed for that engine (Xeon / A100 / U280).
func Model(res *Result) Report { return platform.ModelFor(res) }
