package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Fig2a prints the execution-time breakdown (traversal / synchronization /
// others) of the three CPU baselines over the six workloads. Paper claim:
// >95.8% of SMART's time is traversal + synchronization.
func Fig2a(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\ttraversal\tsync\tothers\ttotal")
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		for _, e := range newCPUBaselines(o) {
			res := runOne(e, w)
			r := platform.ModelFor(res)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
				wname, res.Name,
				pct(r.Breakdown.Share(platform.PhaseTraversal)),
				pct(r.Breakdown.Share(platform.PhaseSync)),
				pct(r.Breakdown.Share(platform.PhaseOther)+r.Breakdown.Share(platform.PhaseCombine)),
				engTime(r.Seconds))
		}
	}
	return tw.Flush()
}

// Fig2b prints the fraction of traversed nodes that are redundant within
// the concurrency window. Paper claim: 77.8-86.1% across baselines.
func Fig2b(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\tredundant-nodes")
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		for _, e := range newCPUBaselines(o) {
			res := runOne(e, w)
			fmt.Fprintf(tw, "%s\t%s\t%s\n", wname, res.Name, pct(res.RedundantRatio))
		}
	}
	return tw.Flush()
}

// Fig2c prints the cache-line utilization of fetched index data. Paper
// claim: 20.2% useful bytes per 64-byte line on average.
func Fig2c(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\tline-utilization")
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		for _, e := range newCPUBaselines(o) {
			res := runOne(e, w)
			fmt.Fprintf(tw, "%s\t%s\t%s\n", wname, res.Name, pct(res.LineUtilization))
		}
	}
	return tw.Flush()
}

// Fig2d prints the synchronization share of execution time as the number
// of concurrently in-flight operations grows (IPGEO). Paper claim: the
// share rises from 16.2% to 62.1% for Heart/SMART and from 24.1% to
// 71.3% for ART as concurrency increases.
func Fig2d(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "concurrent-ops\tsolution\tsync-share\ttotal")
	for _, conc := range []int{48, 96, 384, 1536, 6144} {
		oo := o
		oo.Threads = conc
		for _, e := range newCPUBaselines(oo) {
			res := runOne(e, w)
			r := modelWithThreads(res, conc)
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n",
				conc, res.Name, pct(r.Breakdown.Share(platform.PhaseSync)), engTime(r.Seconds))
		}
	}
	return tw.Flush()
}

// modelWithThreads applies the CPU model at an explicit thread count (the
// Fig 2(d)/12(a) concurrency sweeps go beyond the physical 96 cores:
// in-flight operations queue on SMT/async runtimes, so parallel work is
// still bounded by the socket pair while contention scales with the
// window).
func modelWithThreads(res *engine.Result, conc int) platform.Report {
	m := platform.Xeon8468()
	if conc < m.Threads {
		m.Threads = conc
	}
	return m.Model(res)
}

// Fig2e prints execution time versus write ratio (IPGEO). Paper claim:
// performance deteriorates rapidly as the write ratio increases.
func Fig2e(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "write-ratio\tsolution\ttotal\tsync-share")
	for _, wr := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		w, err := workload.Generate(o.spec(workload.IPGEO, 1-wr))
		if err != nil {
			return err
		}
		for _, e := range newCPUBaselines(o) {
			res := runOne(e, w)
			r := platform.ModelFor(res)
			fmt.Fprintf(tw, "%.0f%%\t%s\t%s\t%s\n",
				100*wr, res.Name, engTime(r.Seconds), pct(r.Breakdown.Share(platform.PhaseSync)))
		}
	}
	return tw.Flush()
}
