package bench

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/workload"
)

// BTreeCompare validates the paper's §V claim that ART's write
// amplification is smaller than a B+ tree's because ART "does not hold
// the entire keys in its internal nodes": both indexes ingest the same
// insert stream; we report modeled bytes written per insert (every node
// modified by an operation contributes its full modeled size), node
// accesses per lookup, and total footprint.
func BTreeCompare(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tindex\tbytes-written/insert\tamplification\taccesses/lookup\theight\tfootprint")
	for _, wname := range []string{workload.EA, workload.RS} {
		w, err := workload.Generate(o.spec(wname, 0))
		if err != nil {
			return err
		}

		// --- B+ tree ------------------------------------------------------
		bt := btree.New()
		for i, k := range w.Keys {
			bt.Put(k, uint64(i))
		}
		bt.ResetCounters()
		inserts := 0
		for _, op := range w.Ops {
			if op.Kind == workload.Write {
				bt.Put(op.Key, op.Value)
				inserts++
			}
		}
		btWritePerOp := float64(bt.BytesWritten()) / float64(inserts)
		bt.ResetCounters()
		lookups := 0
		for _, op := range w.Ops {
			bt.Get(op.Key)
			lookups++
		}
		btAccessPerOp := float64(bt.NodeAccesses()) / float64(lookups)

		// --- ART ----------------------------------------------------------
		// Write bytes for ART: every node the write path modifies. Leaf
		// creation/update writes the leaf; grow/shrink rewrites the
		// replacement node (observed via the replace hook and resolved
		// through the address registry); linking writes one 16B slot.
		at := art.New(art.WithRegistry())
		at.Load(w.Keys, nil)
		var artWriteBytes int64
		at.SetReplaceHook(func(oldAddr, newAddr uint64) {
			if newAddr != 0 {
				if info, ok := at.NodeAt(newAddr); ok {
					artWriteBytes += int64(info.Size)
				}
			}
		})
		for _, op := range w.Ops {
			if op.Kind == workload.Write {
				replaced := at.Put(op.Key, op.Value)
				if replaced {
					artWriteBytes += 8 // value slot update
				} else {
					// New leaf + parent slot write.
					artWriteBytes += int64(art.ModeledSize(art.Leaf, len(op.Key))) + 16
				}
			}
		}
		artWritePerOp := float64(artWriteBytes) / float64(inserts)

		var artAccesses int64
		at.SetAccessHook(func(addr uint64, size int, kind art.NodeKind) { artAccesses++ })
		for _, op := range w.Ops {
			at.Get(op.Key)
		}
		artAccessPerOp := float64(artAccesses) / float64(lookups)
		artStats := at.Stats()

		fmt.Fprintf(tw, "%s\tB+tree\t%.0f B\t%.1fx\t%.2f\t%d\t%d KB\n",
			wname, btWritePerOp, btWritePerOp/artWritePerOp,
			btAccessPerOp, bt.Height(), bt.ModeledBytes()>>10)
		fmt.Fprintf(tw, "%s\tART\t%.0f B\t1.0x\t%.2f\t%d\t%d KB\n",
			wname, artWritePerOp, artAccessPerOp, artStats.Height,
			artStats.ModeledBytes>>10)
	}
	return tw.Flush()
}
