// Package bench contains one runner per table and figure of the DCART
// paper's evaluation (§IV). Each runner generates the workloads, drives
// the engines, applies the platform models, and prints the same rows or
// series the paper reports, as aligned text tables.
//
// Workload sizes default to sandbox scale (the paper used 50M keys);
// every runner accepts Options to scale up. EXPERIMENTS.md records the
// paper-claimed versus measured values for every experiment.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Options parameterizes an experiment run.
type Options struct {
	NumKeys int     // unique keys per workload (default 100k)
	NumOps  int     // operations per run (default 5x keys)
	Seed    int64   // workload seed
	ZipfS   float64 // temporal skew (default 1.25, the benchmark regime)
	Threads int     // modeled CPU concurrency (default 96)
	Out     io.Writer
	// JSONPath, when non-empty, makes experiments that support it (native)
	// also write a machine-readable report to this file.
	JSONPath string
	// Diag, when non-nil, is the live observability registry experiments
	// that drive real engines (native) attach them to while they run, so a
	// scraper watching the diagnostics endpoint sees ring depths, bucket
	// states, and latency histograms evolve mid-benchmark.
	Diag *obs.Registry
	// Tracer, when non-nil, samples op lifecycles through the parallel
	// engine into the diagnostics span ring (native experiment).
	Tracer *obs.Tracer
	// Journal, when non-nil, captures every engine op slower than its
	// threshold with a stage breakdown (native experiment).
	Journal *obs.Journal
	// Hotset sizes the parallel engine's per-worker hot-node residency set
	// in the native experiment: 0 keeps pctt's default (64 anchors per
	// worker), negative disables the hotset (ablation).
	Hotset int
	// Shards pins the native experiment's sharded-store sweep to exactly
	// this shard count (0 sweeps the default {1, 2, 4}).
	Shards int
	// Conns is the client connection count for the server experiment
	// (default 8).
	Conns int
	// PipelineDepth is the per-connection in-flight window the server
	// experiment's pipelined mode runs at (default 64). Lockstep mode
	// always runs at depth 1.
	PipelineDepth int
	// FlushEvery is the server's response-coalescing interval in the
	// pipelined mode (default 32 responses per flush).
	FlushEvery int
}

func (o Options) defaults() Options {
	if o.NumKeys <= 0 {
		o.NumKeys = 100_000
	}
	if o.NumOps <= 0 {
		o.NumOps = 5 * o.NumKeys
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.25
	}
	if o.Threads <= 0 {
		o.Threads = 96
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 64
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 32
	}
	return o
}

// cpuCacheBytes scales the modeled LLC so the cache:tree ratio matches the
// paper's testbed (105 MB LLC vs multi-GB trees, ~1:40): roughly one byte
// of modeled cache per key.
func (o Options) cpuCacheBytes() int {
	c := o.NumKeys
	if c < 64<<10 {
		c = 64 << 10
	}
	return c
}

func (o Options) spec(name string, readRatio float64) workload.Spec {
	return workload.Spec{
		Name: name, NumKeys: o.NumKeys, NumOps: o.NumOps,
		ReadRatio: readRatio, InsertFraction: 0.1, ZipfS: o.ZipfS, Seed: o.Seed,
	}
}

// EngineNames lists the six evaluated systems in figure order.
var EngineNames = []string{"ART", "Heart", "SMART", "CuART", "DCART-C", "DCART"}

// newEngines builds all six engines with the experiment's scaled configs.
func newEngines(o Options) []engine.Engine {
	cfg := engine.Config{Threads: o.Threads, CacheBytes: o.cpuCacheBytes()}
	return []engine.Engine{
		baseline.NewART(cfg),
		baseline.NewHeart(cfg),
		baseline.NewSMART(cfg),
		cuart.New(cuart.Config{Config: engine.Config{CacheBytes: 4 * o.cpuCacheBytes()}}),
		ctt.New(ctt.Config{Config: cfg}),
		accel.New(accel.Config{}),
	}
}

// newCPUBaselines builds the three CPU baselines only (Fig 2 experiments).
func newCPUBaselines(o Options) []engine.Engine {
	cfg := engine.Config{Threads: o.Threads, CacheBytes: o.cpuCacheBytes()}
	return []engine.Engine{baseline.NewART(cfg), baseline.NewHeart(cfg), baseline.NewSMART(cfg)}
}

// runOne loads and runs a single engine over a workload.
func runOne(e engine.Engine, w *workload.Workload) *engine.Result {
	e.Load(w.Keys, nil)
	return e.Run(w.Ops)
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(o Options) error
}

// registry holds all experiments, in paper order.
var registry = []Runner{
	{"fig2a", "Execution-time breakdown of CPU baselines (traversal/sync/others)", Fig2a},
	{"fig2b", "Ratio of redundant traversed nodes", Fig2b},
	{"fig2c", "Cache-line utilization of fetched index data", Fig2c},
	{"fig2d", "Synchronization share vs number of concurrent operations (IPGEO)", Fig2d},
	{"fig2e", "Execution time vs write ratio (IPGEO)", Fig2e},
	{"fig3", "Operation distribution over key prefixes; access skew", Fig3},
	{"table1", "DCART configuration (Table I)", Table1},
	{"fig7", "Lock contentions of all solutions", Fig7},
	{"fig8", "Partial key matches of all solutions", Fig8},
	{"fig9", "Execution time and speedups of all solutions", Fig9},
	{"fig10", "Throughput vs P99 latency curves (real-world workloads)", Fig10},
	{"fig11", "Energy consumption and savings", Fig11},
	{"fig12a", "Sensitivity: performance vs number of operations (IPGEO)", Fig12a},
	{"fig12b", "Sensitivity: performance vs read/write mix A-E (IPGEO)", Fig12b},
	{"ablate", "DCART design ablations (shortcuts, combining, value-aware, overlap)", Ablate},
	{"sweep-sous", "Extension: DCART scaling with SOU count", SweepSOUs},
	{"sweep-batch", "Extension: DCART sensitivity to PCU batch size", SweepBatch},
	{"sweep-prefix", "Extension: DCART sensitivity to combining-prefix width", SweepPrefix},
	{"sweep-treebuf", "Extension: Tree_buffer size x replacement policy", SweepTreeBuf},
	{"extra-btree", "Extension: ART vs B+tree write amplification (paper SV claim)", BTreeCompare},
	{"native", "Native (measured, not modeled): parallel CTT vs direct tree on this machine", Native},
	{"server", "Networked server benchmark: pipelined vs lockstep wire over loopback TCP", ServerBench},
}

// List returns the experiment IDs in order.
func List() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) error {
	for _, r := range registry {
		if r.ID == id {
			fmt.Fprintf(o.defaults().Out, "== %s: %s ==\n", r.ID, r.Title)
			return r.Run(o)
		}
	}
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment in paper order.
func RunAll(o Options) error {
	for _, r := range registry {
		fmt.Fprintf(o.defaults().Out, "\n== %s: %s ==\n", r.ID, r.Title)
		if err := r.Run(o); err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
	}
	return nil
}

// table returns a tabwriter over the options' output.
func table(o Options) *tabwriter.Writer {
	return tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func engTime(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3gs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.3gus", s*1e6)
	}
}
