package bench

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Ablate quantifies DCART's individual design choices (DESIGN.md §7) by
// disabling one at a time on the IPGEO workload and reporting modeled
// cycles plus the mechanism each feature targets:
//
//   - shortcuts off   -> more partial-key matches (§III-C)
//   - combining off   -> more lock acquisitions, no coalescing (§III-B)
//   - LRU Tree_buffer -> hot nodes thrash (§III-E)
//   - overlap off     -> PCU time no longer hidden (§III-D, Fig 6)
func Ablate(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		cfg  accel.Config
	}{
		{"DCART (full)", accel.Config{}},
		{"no shortcuts", accel.Config{DisableShortcuts: true}},
		{"no combining", accel.Config{DisableCombining: true}},
		{"LRU tree buffer", accel.Config{UseLRUTreeBuffer: true}},
		{"no PCU/SOU overlap", accel.Config{DisableOverlap: true}},
	}
	var baseCycles int64
	tw := table(o)
	fmt.Fprintln(tw, "configuration\tcycles\tvs full\tkey-matches\tlocks\ttree-buf hit")
	for i, c := range configs {
		e := accel.New(c.cfg)
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		cyc := e.Cycles()
		if i == 0 {
			baseCycles = cyc
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2fx\t%d\t%d\t%s\n",
			c.name, cyc, float64(cyc)/float64(baseCycles),
			res.Metrics.Get(metrics.CtrKeyMatches),
			res.Metrics.Get(metrics.CtrLockAcquire),
			pct(res.CacheHitRatio))
	}
	return tw.Flush()
}
