package bench

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Table1 prints the DCART configuration (paper Table I).
func Table1(o Options) error {
	o = o.defaults()
	c := accel.Config{}.Defaults()
	tw := table(o)
	fmt.Fprintf(tw, "Units\t1x PCU, 1x Dispatcher, %dx SOUs\n", c.NumSOUs)
	fmt.Fprintf(tw, "Scan_buffer\t%d KB\n", c.ScanBufBytes>>10)
	fmt.Fprintf(tw, "Bucket_buffer\t%d MB\n", c.BucketBufBytes>>20)
	fmt.Fprintf(tw, "Shortcut_buffer\t%d KB\n", c.ShortcutBufBytes>>10)
	fmt.Fprintf(tw, "Tree_buffer\t%d MB\n", c.TreeBufBytes>>20)
	fmt.Fprintf(tw, "Clock\t%.0f MHz\n", c.ClockHz/1e6)
	fmt.Fprintf(tw, "Off-chip\t%s (%d cycles, %.0f B/cycle)\n",
		c.HBM.Name, c.HBM.LatencyCycles, c.HBM.BytesPerCycle)
	fmt.Fprintf(tw, "Bucket_Tables\t%d (8-bit prefix labels)\n", c.NumBuckets)
	fmt.Fprintf(tw, "U280 estimate\t%s\n", c.Resources())
	fmt.Fprintf(tw, "SOU headroom\t%d SOUs fit the U280 with these buffers\n",
		accel.MaxSOUsOnU280(c))
	return tw.Flush()
}

// counterFigure runs all six engines over all six workloads and prints one
// counter, plus DCART's ratio against each baseline (the paper's headline
// form for Figs 7 and 8).
func counterFigure(o Options, counter string) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintf(tw, "workload\t%s\t%s\t%s\t%s\t%s\t%s\tDCART vs others\n",
		EngineNames[0], EngineNames[1], EngineNames[2], EngineNames[3], EngineNames[4], EngineNames[5])
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		vals := make([]int64, len(EngineNames))
		for i, e := range newEngines(o) {
			res := runOne(e, w)
			vals[i] = res.Metrics.Get(counter)
		}
		// The paper's ratio compares the data-centric designs (DCART-C and
		// DCART) against the four operation-centric baselines.
		dcart := float64(vals[len(vals)-1])
		lo, hi := 1e18, 0.0
		for _, v := range vals[:4] {
			if v == 0 {
				continue
			}
			r := dcart / float64(v)
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if lo > hi {
			lo, hi = 0, 0
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%-%.1f%%\n",
			wname, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], 100*lo, 100*hi)
	}
	return tw.Flush()
}

// Fig7 prints the number of lock contentions per solution. Paper claim:
// DCART-C and DCART induce only 3.2-19.7% of the baselines' contentions.
func Fig7(o Options) error {
	return counterFigure(o, metrics.CtrLockContention)
}

// Fig8 prints the number of partial key matches per solution. Paper
// claim: DCART performs 3.2-5.7% of ART's, 6.5-14.3% of SMART's, and
// 8.8-15.9% of CuART's matches.
func Fig8(o Options) error {
	return counterFigure(o, metrics.CtrKeyMatches)
}

// Fig9 prints the modeled execution time of every solution and DCART's
// speedup over each. Paper claim: 123.8-151.7x vs ART, 35.9-44.2x vs
// SMART, 21.1-31.2x vs CuART; DCART-C only slightly outperforms the
// baselines.
func Fig9(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\ttime\tthroughput\tDCART speedup")
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		secs := make([]float64, len(EngineNames))
		for i, e := range newEngines(o) {
			res := runOne(e, w)
			r := platform.ModelFor(res)
			secs[i] = r.Seconds
		}
		dcart := secs[len(secs)-1]
		for i, name := range EngineNames {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.3g ops/s\t%.1fx\n",
				wname, name, engTime(secs[i]), float64(o.NumOps)/secs[i], secs[i]/dcart)
		}
	}
	return tw.Flush()
}
