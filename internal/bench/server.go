package bench

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/kvserver"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pctt"
	"repro/internal/store"
	"repro/internal/workload"
)

// ServerBench measures the wire: it boots an in-process kvserver on a
// loopback TCP listener and drives the Zipf IPGEO point-op stream through
// real client connections, comparing the lockstep discipline (one command
// in flight per connection, one flush per response — the classic
// request/response loop) against the pipelined path (depth-D in-flight
// window, responses coalesced into one flush per K). Both modes run over
// all three store topologies, so the table separates what the wire
// contributes from what the engine contributes.
//
// This is the experiment the async store surface exists for: with a
// lockstep wire, the combine engine only ever sees one request per
// connection and batches across connections at best; the pipelined wire
// keeps each connection's window full, which is the software analogue of
// the paper's host interface streaming requests into the PCU's queue
// rather than round-tripping them one at a time.
//
// Keys go over the text protocol hex-encoded (IPGEO keys are raw bytes);
// hex preserves byte order, so the stream's prefix locality — what the
// combine buckets key on — survives the encoding.
func ServerBench(o Options) error {
	o = o.defaults()
	w := workload.MustGenerate(o.spec(workload.IPGEO, 0.5))
	scripts, loadKeys := renderScripts(w, o.Conns)

	type config struct {
		system  string
		shards  int
		workers int
		build   func() store.Store
	}
	configs := []config{
		{"direct-olc", 1, 1, func() store.Store { return store.NewDirect() }},
		{"pctt", 1, 2, func() store.Store {
			return store.NewBatched(pctt.Config{Workers: 2})
		}},
		{"pctt-sharded", 2, 2, func() store.Store {
			return store.NewSharded(2, func(int) store.Store {
				return store.NewBatched(pctt.Config{Workers: 2})
			})
		}},
	}
	type mode struct {
		name       string
		depth      int
		flushEvery int
	}
	modes := []mode{
		{"lockstep", 1, 1},
		{"pipelined", o.PipelineDepth, o.FlushEvery},
	}

	var rows, warmups []serverRow
	for _, cfg := range configs {
		for _, m := range modes {
			row, warm, err := runServerTrial(o, cfg.build(), scripts, loadKeys, m.depth, m.flushEvery)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", cfg.system, m.name, err)
			}
			row.System, row.Mode = cfg.system, m.name
			row.Shards, row.Workers = cfg.shards, cfg.workers
			warm.System, warm.Mode = cfg.system, m.name
			warm.Shards, warm.Workers = cfg.shards, cfg.workers
			rows = append(rows, row)
			warmups = append(warmups, warm)
		}
	}

	tw := table(o)
	fmt.Fprintln(tw, "system\tmode\tconns\tdepth\twall\tops/sec\tP50\tP99\tbytes/op\tflushes/op\tdepth achieved")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%.3g\t%s\t%s\t%.1f\t%.4f\t%.1f\n",
			r.System, r.Mode, r.Conns, r.PipelineDepth,
			engTime(float64(r.WallNanos)/1e9), r.OpsPerSec,
			engTime(r.P50Nanos/1e9), engTime(r.P99Nanos/1e9),
			r.BytesPerOp, r.FlushesPerOp, r.DepthAchieved)
	}
	tw.Flush()

	for i := 0; i+1 < len(rows); i += 2 {
		lock, pipe := rows[i], rows[i+1]
		fmt.Fprintf(o.Out, "%s pipelined vs lockstep: %.2fx ops/sec, %.2fx fewer flushes\n",
			lock.System, pipe.OpsPerSec/lock.OpsPerSec,
			lock.FlushesPerOp/pipe.FlushesPerOp)
	}

	if o.JSONPath != "" {
		rep := serverReport{
			Experiment:    "server",
			Keys:          o.NumKeys,
			Ops:           o.NumOps,
			ReadRatio:     0.5,
			ZipfS:         o.ZipfS,
			Seed:          o.Seed,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Conns:         o.Conns,
			PipelineDepth: o.PipelineDepth,
			FlushEvery:    o.FlushEvery,
			// Steady-state rows first (identical shape to older reports),
			// then the timed warmup passes, phase-tagged.
			Rows: append(rows, warmups...),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	return nil
}

// serverReport is the machine-readable result written to JSONPath.
type serverReport struct {
	Experiment    string      `json:"experiment"`
	Keys          int         `json:"keys"`
	Ops           int         `json:"ops"`
	ReadRatio     float64     `json:"read_ratio"`
	ZipfS         float64     `json:"zipf_s"`
	Seed          int64       `json:"seed"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Conns         int         `json:"conns"`
	PipelineDepth int         `json:"pipeline_depth"`
	FlushEvery    int         `json:"flush_every"`
	Rows          []serverRow `json:"rows"`
}

// serverRow is one config x mode measurement. Latencies are end-to-end
// client-observed (command written until its response line read), sampled
// every 16th op per connection.
type serverRow struct {
	System string `json:"system"`
	Mode   string `json:"mode"`
	// Phase tags the timed warmup pass ("warmup": the tree absorbing the
	// stream's inserts over fresh connections) vs the steady-state
	// best-of-trials (empty — steady rows serialize exactly as before).
	// benchdiff keys identity on phase, so steady compares with steady.
	Phase         string  `json:"phase,omitempty"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	Conns         int     `json:"conns"`
	PipelineDepth int     `json:"pipeline_depth"`
	FlushEvery    int     `json:"flush_every"`
	WallNanos     int64   `json:"wall_nanos"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50Nanos      float64 `json:"p50_nanos"`
	P99Nanos      float64 `json:"p99_nanos"`
	// BytesPerOp counts both directions of the wire, client-observed.
	BytesPerOp float64 `json:"bytes_per_op"`
	// FlushesPerOp is the server-side flush rate over the timed pass:
	// ~1.0 in lockstep, ~1/K (plus idle flushes) pipelined.
	FlushesPerOp float64 `json:"flushes_per_op"`
	// DepthAchieved is the server's mean response-window occupancy over
	// the timed pass — how much pipeline the connection actually sustained,
	// as opposed to the configured ceiling.
	DepthAchieved float64 `json:"depth_achieved"`
	// Embedded runtime attribution (GC cycles/pause time, scheduler
	// latency, live heap) bracketing the same pass the latency columns
	// describe — see runtimeCols.
	runtimeCols
}

// connScript is one connection's pre-rendered command stream.
type connScript struct {
	lines [][]byte // one command per entry, newline included
	bytes int      // total request bytes
}

// renderScripts hex-encodes the workload and partitions the op stream
// round-robin across conns. It also returns the hex keys to preload so
// the run phase measures steady state, not first-insert descents.
func renderScripts(w *workload.Workload, conns int) ([]connScript, [][]byte) {
	scripts := make([]connScript, conns)
	for i, op := range w.Ops {
		hexKey := hex.EncodeToString(op.Key)
		var line []byte
		switch op.Kind {
		case workload.Write:
			line = []byte("PUT " + hexKey + " " + strconv.FormatUint(op.Value, 10) + "\n")
		default:
			line = []byte("GET " + hexKey + "\n")
		}
		sc := &scripts[i%conns]
		sc.lines = append(sc.lines, line)
		sc.bytes += len(line)
	}
	loadKeys := make([][]byte, len(w.Keys))
	for i, k := range w.Keys {
		loadKeys[i] = []byte(hex.EncodeToString(k))
	}
	return scripts, loadKeys
}

// latSample is the per-connection latency sampling interval.
const latSample = 16

// runServerTrial boots a server over st on a loopback listener, preloads
// the key set, and runs the scripts through it: one timed warmup pass
// (returned as its own phase-tagged row), then best-of-2 timed passes over
// fresh connections each time.
func runServerTrial(o Options, st store.Store, scripts []connScript,
	loadKeys [][]byte, depth, flushEvery int) (serverRow, serverRow, error) {
	for i, k := range loadKeys {
		// Preload through the store directly, with the server's key
		// terminator, so the wire sees a warm tree.
		st.Put(append(k, 0), uint64(i))
	}
	srv := kvserver.NewStore(st)
	srv.SetPipeline(depth, flushEvery)
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serverRow{}, serverRow{}, err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.Serve(conn)
		}
	}()
	addr := ln.Addr().String()

	var best, warmup serverRow
	totalOps := 0
	for _, sc := range scripts {
		totalOps += len(sc.lines)
	}
	for trial := 0; trial < 3; trial++ {
		before := srv.PipelineStats()
		rtPrev := obs.ReadRuntime()
		wall, hist, wireBytes, err := runServerPass(addr, scripts, depth)
		if err != nil {
			return serverRow{}, serverRow{}, err
		}
		rtNow := obs.ReadRuntime()
		after := srv.PipelineStats()
		row := serverRow{
			Conns:         len(scripts),
			PipelineDepth: depth,
			FlushEvery:    flushEvery,
			WallNanos:     wall.Nanoseconds(),
			OpsPerSec:     float64(totalOps) / wall.Seconds(),
			P50Nanos:      hist.Quantile(0.50) * 1e9,
			P99Nanos:      hist.Quantile(0.99) * 1e9,
			BytesPerOp:    float64(wireBytes) / float64(totalOps),
			runtimeCols:   runtimeColsOf(rtNow.DeltaSince(rtPrev)),
		}
		if dr := after.Responses - before.Responses; dr > 0 {
			row.FlushesPerOp = float64(after.Flushes-before.Flushes) / float64(dr)
			row.DepthAchieved = float64(after.DepthSum-before.DepthSum) / float64(dr)
		}
		if trial == 0 {
			// Warmup: the tree absorbed the stream's inserts. Timed and
			// reported as its own phase-tagged row rather than discarded.
			row.Phase = "warmup"
			warmup = row
			continue
		}
		if best.OpsPerSec == 0 || row.OpsPerSec > best.OpsPerSec {
			best = row
		}
	}
	return best, warmup, nil
}

// runServerPass dials one connection per script and runs them all
// concurrently, returning the wall time over the whole pass, the merged
// latency samples, and total wire bytes (both directions).
func runServerPass(addr string, scripts []connScript, depth int) (time.Duration, *metrics.Histogram, int64, error) {
	conns := make([]net.Conn, len(scripts))
	for i := range conns {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return 0, nil, 0, err
		}
		defer c.Close()
		conns[i] = c
	}

	hists := make([]*metrics.Histogram, len(scripts))
	respBytes := make([]int64, len(scripts))
	errs := make([]error, len(scripts))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range scripts {
		hists[i] = metrics.NewHistogram()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if depth > 1 {
				respBytes[i], errs[i] = runPipelinedClient(conns[i], scripts[i].lines, hists[i], depth)
			} else {
				respBytes[i], errs[i] = runLockstepClient(conns[i], scripts[i].lines, hists[i])
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)

	merged := hists[0]
	var wire int64
	for i := range scripts {
		if errs[i] != nil {
			return 0, nil, 0, errs[i]
		}
		if i > 0 {
			merged.Merge(hists[i])
		}
		wire += respBytes[i] + int64(scripts[i].bytes)
	}
	return wall, merged, wire, nil
}

// runLockstepClient is the classic request/response loop: write, flush,
// block on the reply — at most one command in flight.
func runLockstepClient(conn net.Conn, lines [][]byte, hist *metrics.Histogram) (int64, error) {
	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	var respBytes int64
	for i, line := range lines {
		sample := i%latSample == 0
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		if _, err := bw.Write(line); err != nil {
			return respBytes, err
		}
		if err := bw.Flush(); err != nil {
			return respBytes, err
		}
		resp, err := br.ReadSlice('\n')
		if err != nil {
			return respBytes, fmt.Errorf("op %d: %w", i, err)
		}
		respBytes += int64(len(resp))
		if sample {
			hist.Observe(time.Since(t0).Seconds())
		}
	}
	return respBytes, clientQuit(bw, br, &respBytes)
}

// runPipelinedClient keeps exactly depth commands in flight: a sender
// goroutine writes ahead of the responses, gated by a window semaphore
// the receiving (calling) goroutine releases as responses arrive — a
// depth-D pipeline, not an unbounded blast, so the sampled latencies mean
// "time an op spends in a full pipeline" rather than "time behind the
// client's own entire backlog". The sender flushes whenever the window
// blocks it (its writes-so-far are what will refill the window). Latency
// sampling passes send stamps through a channel — the channel is the
// happens-before edge between sender and receiver clocks.
func runPipelinedClient(conn net.Conn, lines [][]byte, hist *metrics.Histogram, depth int) (int64, error) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)
	stamps := make(chan time.Time, len(lines)/latSample+1)
	window := make(chan struct{}, depth)

	sendErr := make(chan error, 1)
	go func() {
		for i, line := range lines {
			select {
			case window <- struct{}{}:
			default:
				// Window full: everything buffered so far must go out before
				// responses can free it up.
				if err := bw.Flush(); err != nil {
					sendErr <- err
					return
				}
				window <- struct{}{}
			}
			if i%latSample == 0 {
				stamps <- time.Now()
			}
			if _, err := bw.Write(line); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- bw.Flush()
	}()

	var respBytes int64
	for i := range lines {
		resp, err := br.ReadSlice('\n')
		if err != nil {
			<-sendErr
			return respBytes, fmt.Errorf("op %d: %w", i, err)
		}
		respBytes += int64(len(resp))
		if i%latSample == 0 {
			// The stamp for op i was sent before the command was written,
			// so it is always available by the time the response arrives.
			hist.Observe(time.Since(<-stamps).Seconds())
		}
		<-window
	}
	if err := <-sendErr; err != nil {
		return respBytes, err
	}
	return respBytes, clientQuit(bw, br, &respBytes)
}

// clientQuit runs the QUIT handshake so the server side of the connection
// winds down cleanly before the pass tears the sockets.
func clientQuit(bw *bufio.Writer, br *bufio.Reader, respBytes *int64) error {
	if _, err := bw.WriteString("QUIT\n"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	resp, err := br.ReadSlice('\n')
	if err != nil {
		return err
	}
	*respBytes += int64(len(resp))
	return nil
}
