package bench

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig10 prints throughput / P99-latency curves for every solution over the
// three real-world workloads. Each engine's modeled per-batch service time
// feeds an open-loop batch queue (internal/sim); offered load sweeps from
// 20% to 120% of saturation. Paper claim: DCART achieves both lower P99
// latency and higher saturated throughput than every baseline.
func Fig10(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\tload\toffered ops/s\tachieved ops/s\tmean\tP99")
	for _, wname := range workload.RealWorld {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		for i, e := range newEngines(o) {
			res := runOne(e, w)
			rep := platform.ModelFor(res)
			perOp := rep.Seconds / float64(res.Ops)

			// Batch granularity: CPU rounds, GPU kernels, DCART batches.
			batch := o.Threads
			switch EngineNames[i] {
			case "CuART":
				batch = 8192
			case "DCART-C", "DCART":
				batch = 4096
			}
			srv := sim.BatchServer{
				MaxBatch: batch,
				ServiceSeconds: func(n int) float64 {
					return perOp * float64(n)
				},
			}
			for _, frac := range []float64{0.2, 0.6, 0.9, 1.1} {
				cap := sim.SaturationThroughput(srv)
				lp := sim.RunOpenLoop(srv, cap*frac, 30_000, o.Seed+int64(100*frac))
				fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.3g\t%.3g\t%s\t%s\n",
					wname, EngineNames[i], 100*frac,
					lp.OfferedOpsPerSec, lp.AchievedOpsPerSec,
					engTime(lp.MeanLatencySeconds), engTime(lp.P99LatencySeconds))
			}
		}
	}
	return tw.Flush()
}

// Fig11 prints the modeled energy of every solution and DCART's savings.
// Paper claim: DCART saves 315.1-493.5x vs ART, 92.7-148.9x vs SMART,
// 71.1-126.2x vs CuART, and 48.1-97.6x vs DCART-C.
func Fig11(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\tsolution\tenergy\tavg power\tDCART saving")
	for _, wname := range workload.All {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		joules := make([]float64, len(EngineNames))
		watts := make([]float64, len(EngineNames))
		for i, e := range newEngines(o) {
			res := runOne(e, w)
			r := platform.ModelFor(res)
			joules[i], watts[i] = r.Joules, r.Watts
		}
		dcart := joules[len(joules)-1]
		for i, name := range EngineNames {
			fmt.Fprintf(tw, "%s\t%s\t%.4g J\t%.0f W\t%.1fx\n",
				wname, name, joules[i], watts[i], joules[i]/dcart)
		}
	}
	return tw.Flush()
}

// Fig12a prints modeled execution time as the number of concurrently
// in-flight operations grows (IPGEO, all solutions). The concurrency knob
// is each system's natural window: the CPU round / CAS window for the
// baselines, the resident-lane count for the GPU, and the combining batch
// for DCART-C and DCART. Paper claim: DCART's advantage grows with the
// number of concurrent operations (more coalescing, while the baselines
// contend more).
func Fig12a(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "concurrent-ops\tsolution\ttime\tDCART speedup")
	for _, conc := range []int{96, 384, 1536, 6144} {
		cfg := engine.Config{Threads: conc, CacheBytes: o.cpuCacheBytes()}
		engines := []engine.Engine{
			baseline.NewART(cfg), baseline.NewHeart(cfg), baseline.NewSMART(cfg),
			cuart.New(cuart.Config{Config: engine.Config{
				Threads: conc, CacheBytes: 4 * o.cpuCacheBytes()}}),
			ctt.New(ctt.Config{Config: cfg, BatchSize: conc}),
			accel.New(accel.Config{BatchSize: conc}),
		}
		secs := make([]float64, len(EngineNames))
		for i, e := range engines {
			res := runOne(e, w)
			if EngineNames[i] == "CuART" || EngineNames[i] == "DCART" {
				secs[i] = platform.ModelFor(res).Seconds
			} else {
				secs[i] = modelWithThreads(res, conc).Seconds
			}
		}
		dcart := secs[len(secs)-1]
		for i, name := range EngineNames {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.1fx\n", conc, name, engTime(secs[i]), secs[i]/dcart)
		}
	}
	return tw.Flush()
}

// Fig12b prints modeled execution time across the A-E read/write mixes
// (IPGEO, all solutions). Paper claim: DCART's improvement grows as the
// write ratio rises (more lock contention to remove).
func Fig12b(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "mix\tsolution\ttime\tDCART speedup")
	for _, mix := range workload.Mixes {
		w, err := workload.Generate(o.spec(workload.IPGEO, mix.ReadRatio))
		if err != nil {
			return err
		}
		secs := make([]float64, len(EngineNames))
		for i, e := range newEngines(o) {
			res := runOne(e, w)
			secs[i] = platform.ModelFor(res).Seconds
		}
		dcart := secs[len(secs)-1]
		for i, name := range EngineNames {
			fmt.Fprintf(tw, "%s (%.0f%%r)\t%s\t%s\t%.1fx\n",
				mix.Name, 100*mix.ReadRatio, name, engTime(secs[i]), secs[i]/dcart)
		}
	}
	return tw.Flush()
}
