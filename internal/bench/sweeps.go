package bench

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/workload"
)

// SweepSOUs varies the number of Shortcut-based Operating Units (the
// paper fixes 16; this extension quantifies the scaling headroom and the
// load-imbalance ceiling imposed by per-bucket dispatch).
func SweepSOUs(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "SOUs\tcycles\tcycles/op\tthroughput\tspeedup vs 1")
	var base int64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		e := accel.New(accel.Config{NumSOUs: n, NumBuckets: n})
		e.Load(w.Keys, nil)
		e.Run(w.Ops)
		cyc := e.Cycles()
		if base == 0 {
			base = cyc
		}
		sec := e.Seconds()
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.3g ops/s\t%.2fx\n",
			n, cyc, float64(cyc)/float64(o.NumOps), float64(o.NumOps)/sec,
			float64(base)/float64(cyc))
	}
	return tw.Flush()
}

// SweepBatch varies the PCU batch size: small batches waste the Fig 6
// overlap and pipeline fill; huge batches delay operations (latency) and
// stop fitting the Bucket_buffer.
func SweepBatch(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "batch\tcycles\tcycles/op\tshortcut-hit\tcoalesced")
	for _, n := range []int{256, 1024, 4096, 16384} {
		e := accel.New(accel.Config{BatchSize: n})
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		hits := res.Metrics.Get(metrics.CtrShortcutHit)
		miss := res.Metrics.Get(metrics.CtrShortcutMiss)
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%s\t%d\n",
			n, e.Cycles(), float64(e.Cycles())/float64(o.NumOps),
			pct(float64(hits)/float64(hits+miss)),
			res.Metrics.Get(metrics.CtrCoalesced))
	}
	return tw.Flush()
}

// SweepPrefix varies the combining-prefix width. Narrow prefixes starve
// the bucket tables of discrimination (everything collides); wide ones
// fragment groups so less coalescing happens per bucket.
func SweepPrefix(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "prefix-bits\tcycles\tcycles/op\tlock-acquire\tcontention")
	for _, bits := range []int{4, 6, 8, 10, 12} {
		e := accel.New(accel.Config{PrefixBits: bits})
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%d\t%d\n",
			bits, e.Cycles(), float64(e.Cycles())/float64(o.NumOps),
			res.Metrics.Get(metrics.CtrLockAcquire),
			res.Metrics.Get(metrics.CtrLockContention))
	}
	return tw.Flush()
}

// SweepTreeBuf varies the Tree_buffer capacity, comparing value-aware
// and LRU management at each size (the §III-E design choice).
func SweepTreeBuf(o Options) error {
	o = o.defaults()
	w, err := workload.Generate(o.spec(workload.IPGEO, 0.5))
	if err != nil {
		return err
	}
	tw := table(o)
	fmt.Fprintln(tw, "tree-buffer\tpolicy\thit-ratio\tcycles/op\ttime")
	for _, kb := range []int{64, 256, 1024, 4096} {
		for _, lru := range []bool{false, true} {
			e := accel.New(accel.Config{TreeBufBytes: kb << 10, UseLRUTreeBuffer: lru})
			e.Load(w.Keys, nil)
			res := e.Run(w.Ops)
			policy := "value-aware"
			if lru {
				policy = "LRU"
			}
			rep := platform.U280().Model(res)
			fmt.Fprintf(tw, "%dKB\t%s\t%s\t%.2f\t%s\n",
				kb, policy, pct(res.CacheHitRatio),
				float64(e.Cycles())/float64(o.NumOps), engTime(rep.Seconds))
		}
	}
	return tw.Flush()
}
