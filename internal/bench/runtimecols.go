package bench

import "repro/internal/obs"

// runtimeCols are the Go-runtime attribution columns stamped on every
// measured BENCH row (warmup rows included): how much GC and scheduler
// interference the pass absorbed. They let scripts/benchdiff.go attribute
// a p99 regression to the runtime (more pause time, worse scheduling
// latency) versus the pipeline itself. Zero-valued fields serialize too,
// so consumers can diff rows without per-system schemas.
type runtimeCols struct {
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseTotalNanos float64 `json:"gc_pause_total_nanos"`
	GCPauseMaxNanos   float64 `json:"gc_pause_max_nanos"`
	SchedLatP99Nanos  float64 `json:"sched_lat_p99_nanos"`
	HeapLiveBytes     uint64  `json:"heap_live_bytes"`
}

func runtimeColsOf(d obs.RuntimeDelta) runtimeCols {
	return runtimeCols{
		GCCycles:          d.GCCycles,
		GCPauseTotalNanos: d.GCPauseTotalNanos,
		GCPauseMaxNanos:   d.GCPauseMaxNanos,
		SchedLatP99Nanos:  d.SchedLatP99Nanos,
		HeapLiveBytes:     d.HeapLiveBytes,
	}
}
