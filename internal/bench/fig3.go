package bench

import (
	"fmt"
	"sort"

	"repro/internal/art"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig3 characterizes the operation distribution of the real-world
// workloads: operations per 8-bit key prefix (the paper's histogram, here
// as the top prefixes plus summary statistics) and the access-skew claim
// that a few percent of the nodes serve almost all tree traversals
// (paper: >=96.65% of traversals touch 5% of nodes).
func Fig3(o Options) error {
	o = o.defaults()
	tw := table(o)
	fmt.Fprintln(tw, "workload\thot prefixes (ops%)\thot-prefix/avg\ttop-5%-node traversal share")
	for _, wname := range workload.RealWorld {
		w, err := workload.Generate(o.spec(wname, 0.5))
		if err != nil {
			return err
		}
		hist := workload.PrefixHistogram(w.Ops)
		type pc struct {
			p byte
			c int64
		}
		var total int64
		var nonzero int
		var list []pc
		for p, c := range hist {
			total += c
			if c > 0 {
				nonzero++
				list = append(list, pc{byte(p), c})
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
		top := ""
		for i := 0; i < 3 && i < len(list); i++ {
			top += fmt.Sprintf("0x%02X:%.1f%% ", list[i].p, 100*float64(list[i].c)/float64(total))
		}
		avg := float64(total) / float64(nonzero)
		ratio := float64(list[0].c) / avg

		// Node-level access concentration: replay the stream on a plain
		// ART with a per-node access counter.
		tree := art.New()
		counts := map[uint64]int64{}
		tree.Load(w.Keys, nil)
		tree.SetAccessHook(func(addr uint64, size int, kind art.NodeKind) {
			counts[addr]++
		})
		for _, op := range w.Ops {
			switch op.Kind {
			case workload.Read:
				tree.Get(op.Key)
			case workload.Write:
				tree.Put(op.Key, op.Value)
			case workload.Delete:
				tree.Delete(op.Key)
			}
		}
		perNode := make([]int64, 0, len(counts))
		for _, c := range counts {
			perNode = append(perNode, c)
		}
		share := metrics.TopShare(perNode, 0.05)
		fmt.Fprintf(tw, "%s\t%s\t%.1fx\t%s\n", wname, top, ratio, pct(share))
	}
	return tw.Flush()
}
