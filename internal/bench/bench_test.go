package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns options small enough for every runner to finish quickly.
func tiny() (Options, *bytes.Buffer) {
	var buf bytes.Buffer
	return Options{NumKeys: 2000, NumOps: 8000, Seed: 7, Out: &buf}, &buf
}

func TestEveryRunnerProducesOutput(t *testing.T) {
	for _, r := range List() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			o, buf := tiny()
			if err := Run(r.ID, o); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("runner %s produced almost no output:\n%s", r.ID, out)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	o, _ := tiny()
	if err := Run("fig99", o); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestListStable(t *testing.T) {
	a, b := List(), List()
	if len(a) != len(b) || len(a) < 14 {
		t.Fatalf("List() unstable or incomplete: %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("List() order unstable")
		}
	}
}

func TestFig9ContainsAllEngines(t *testing.T) {
	o, buf := tiny()
	if err := Run("fig9", o); err != nil {
		t.Fatal(err)
	}
	for _, name := range EngineNames {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("fig9 output missing engine %s", name)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	o, buf := tiny()
	if err := Run("table1", o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"16x SOUs", "512 KB", "2 MB", "128 KB", "4 MB", "230 MHz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}
