package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/olc"
	"repro/internal/pctt"
	"repro/internal/store"
	"repro/internal/workload"
)

// Native is the one experiment that measures real wall-clock time instead
// of applying the platform cost models: it runs a mixed 50% read / 50%
// write IPGEO workload through (a) the concurrent tree directly, one
// operation at a time from a single goroutine, and (b) the parallel
// Combine-Traverse-Trigger engine (internal/pctt) at several worker
// counts. The CTT engine's advantage on this machine comes from the
// paper's software-visible mechanisms — per-key write combining, served
// reads, and Shortcut_Table jumps — not from modeled hardware.
//
// Each configuration gets one untimed warmup pass over the stream (the
// tree absorbs the stream's inserts and the CTT engine's shortcut tables
// warm — both sides then measure steady state, matching testing.B
// methodology), then runs best-of-3 timed passes. Latency is sampled
// every 16th operation on both sides; P-CTT latency is additionally
// broken down into queue wait (true submit until the operation's trigger
// batch began) and execute time (batch begin until completion), the
// deadline-driven pipeline's two phases. With Options.JSONPath set, a
// machine-readable report is also written.
func Native(o Options) error {
	o = o.defaults()
	w := workload.MustGenerate(o.spec(workload.IPGEO, 0.5))

	var rows, warmups []nativeRow
	collect := func(steady, warmup nativeRow) {
		rows = append(rows, steady)
		warmups = append(warmups, warmup)
	}
	collect(runNativeDirect(o, w))
	for _, workers := range nativeWorkerCounts() {
		collect(runNativePCTT(o, w, workers))
	}
	for _, shards := range nativeShardCounts(o) {
		collect(runNativeSharded(o, w, shards))
	}

	tw := table(o)
	fmt.Fprintln(tw, "system\tshards\tworkers\twall\tops/sec\tP50\tP99\tqwait P99\texec P99\tgc pause\tcoalesced\tsteals\tshared\thot hit%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.3g\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%.0f\n",
			r.System, r.Shards, r.Workers, engTime(float64(r.WallNanos)/1e9), r.OpsPerSec,
			engTime(r.P50Nanos/1e9), engTime(r.P99Nanos/1e9),
			engTime(r.QueueWaitP99Nanos/1e9), engTime(r.ExecP99Nanos/1e9),
			engTime(r.GCPauseTotalNanos/1e9),
			r.CoalescedOps, r.BucketSteals, r.SharedDescents, 100*r.HotsetHitRate)
	}
	tw.Flush()

	base := rows[0].OpsPerSec
	for _, r := range rows[1:] {
		if r.Shards > 1 {
			fmt.Fprintf(o.Out, "%s@%dx%dw vs direct: %.2fx\n",
				r.System, r.Shards, r.Workers, r.OpsPerSec/base)
		} else {
			fmt.Fprintf(o.Out, "%s@%d vs direct: %.2fx\n", r.System, r.Workers, r.OpsPerSec/base)
		}
	}

	if o.JSONPath != "" {
		rep := nativeReport{
			Experiment: "native",
			Keys:       o.NumKeys,
			Ops:        o.NumOps,
			ReadRatio:  0.5,
			ZipfS:      o.ZipfS,
			Seed:       o.Seed,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			// Steady-state rows first (identical shape to older reports),
			// then the timed warmup passes, phase-tagged.
			Rows: append(rows, warmups...),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	return nil
}

// nativeWorkerCounts picks the P-CTT worker counts to measure: 1, 2, and 4
// always (the acceptance comparisons track these), plus GOMAXPROCS when it
// adds a distinct larger point.
func nativeWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// nativeShardCounts picks the store shard counts for the sharded P-CTT
// rows — the multi-SOU scale-out sweep. Options.Shards pins the sweep to
// one point; the default {1, 2, 4} includes 1 so the store-routing
// overhead over the plain engine rows is itself measured.
func nativeShardCounts(o Options) []int {
	if o.Shards > 0 {
		return []int{o.Shards}
	}
	return []int{1, 2, 4}
}

// nativeReport is the machine-readable result written to JSONPath.
type nativeReport struct {
	Experiment string      `json:"experiment"`
	Keys       int         `json:"keys"`
	Ops        int         `json:"ops"`
	ReadRatio  float64     `json:"read_ratio"`
	ZipfS      float64     `json:"zipf_s"`
	Seed       int64       `json:"seed"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Rows       []nativeRow `json:"rows"`
}

type nativeRow struct {
	System string `json:"system"`
	// Phase distinguishes the timed warmup pass ("warmup": the tree absorbs
	// the stream's inserts, shortcut tables and hotsets populate) from the
	// steady-state best-of-trials measurement (empty, so steady rows
	// serialize exactly as before this field existed). scripts/benchdiff.go
	// keys row identity on phase too, so diffs compare steady state against
	// steady state.
	Phase string `json:"phase,omitempty"`
	// Shards is the store shard count the row ran behind: 1 for the
	// direct tree and the plain engine rows (one index, no router),
	// 2+ for the sharded scale-out rows. Workers is per shard.
	Shards    int     `json:"shards"`
	Workers   int     `json:"workers"`
	WallNanos int64   `json:"wall_nanos"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Nanos  float64 `json:"p50_nanos"`
	P99Nanos  float64 `json:"p99_nanos"`
	// Queue-wait / execute breakdown of the same sampled latencies: queue
	// wait is true submit until the operation's trigger batch began
	// executing, execute is batch begin until the operation completed.
	// Comparable to internal/sim's open-loop queue-delay split. Every field
	// below is emitted on every row — zero-valued on direct-olc rows, which
	// has no pipeline — so consumers can diff rows without per-system
	// schemas.
	QueueWaitP50Nanos float64 `json:"queue_wait_p50_nanos"`
	QueueWaitP99Nanos float64 `json:"queue_wait_p99_nanos"`
	ExecP50Nanos      float64 `json:"exec_p50_nanos"`
	ExecP99Nanos      float64 `json:"exec_p99_nanos"`
	CoalescedOps      int64   `json:"coalesced_ops"`
	ShortcutHits      int64   `json:"shortcut_hits"`
	BucketSteals      int64   `json:"bucket_steals"`
	BucketHandoffs    int64   `json:"bucket_handoffs"`
	WindowDeferrals   int64   `json:"window_deferrals"`
	// Batch-shared traversal and hot-node residency (the traverse phase's
	// descent-sharing machinery): one shared descent serves a whole sorted
	// bucket-batch; HotsetHitRate is hits over hotset consultations
	// (hit+miss), the fraction of shared descents that started below the
	// root at a resident anchor.
	SharedDescents int64   `json:"shared_descents"`
	HotsetHits     int64   `json:"hotset_hits"`
	HotsetMisses   int64   `json:"hotset_misses"`
	HotsetHitRate  float64 `json:"hotset_hit_rate"`
	// BypassOps counts operations the single-worker fast path executed
	// directly (Workers==1 with an idle pipeline skips the queue hop).
	BypassOps int64 `json:"bypass_ops"`
	// Embedded runtime attribution: GC cycles/pause time and scheduler
	// latency the pass absorbed, bracketed per measured pass (the best-of
	// trials keeps the winning trial's delta, so the runtime columns
	// describe the same pass the latency columns do).
	runtimeCols
}

const nativeTrials = 3

// runNativeDirect executes the stream one operation at a time against the
// concurrent tree — the single-goroutine baseline discipline. The warmup
// pass (the tree absorbing the stream's inserts) is timed and returned as
// its own phase-tagged row alongside the steady-state best-of-trials.
func runNativeDirect(o Options, w *workload.Workload) (steady, warmup nativeRow) {
	tree := olc.New(nil)
	for i, k := range w.Keys {
		tree.Put(k, uint64(i))
	}
	pass := func(hist *metrics.Histogram) int64 {
		start := time.Now()
		for i, op := range w.Ops {
			sample := hist != nil && i&15 == 0
			var t0 time.Time
			if sample {
				t0 = time.Now()
			}
			switch op.Kind {
			case workload.Read:
				tree.Get(op.Key)
			case workload.Write:
				tree.Put(op.Key, op.Value)
			case workload.Delete:
				tree.Delete(op.Key)
			}
			if sample {
				hist.Observe(time.Since(t0).Seconds())
			}
		}
		return time.Since(start).Nanoseconds()
	}
	rtPrev := obs.ReadRuntime()
	warmWall := pass(nil) // warmup: absorb the stream's inserts
	rtNow := obs.ReadRuntime()
	warmup = nativeRow{
		System: "direct-olc", Phase: "warmup", Shards: 1, Workers: 1,
		WallNanos:   warmWall,
		OpsPerSec:   float64(len(w.Ops)) / (float64(warmWall) / 1e9),
		runtimeCols: runtimeColsOf(rtNow.DeltaSince(rtPrev)),
	}
	var best nativeRow
	for trial := 0; trial < nativeTrials; trial++ {
		hist := metrics.NewHistogram()
		rtPrev = obs.ReadRuntime()
		wall := pass(hist)
		rtNow = obs.ReadRuntime()
		if trial == 0 || wall < best.WallNanos {
			best = nativeRow{
				System:      "direct-olc",
				Shards:      1,
				Workers:     1,
				WallNanos:   wall,
				OpsPerSec:   float64(len(w.Ops)) / (float64(wall) / 1e9),
				P50Nanos:    hist.Quantile(0.50) * 1e9,
				P99Nanos:    hist.Quantile(0.99) * 1e9,
				runtimeCols: runtimeColsOf(rtNow.DeltaSince(rtPrev)),
			}
		}
	}
	return best, warmup
}

// runNativePCTT executes the same stream through the parallel CTT engine.
// With Options.Diag set, the engine's live gauges and histograms are
// attached to the diagnostics registry for the duration of the row (each
// row's engine replaces the previous one's registrations), and
// Options.Tracer samples lifecycle spans through the pipeline.
func runNativePCTT(o Options, w *workload.Workload, workers int) (steady, warmup nativeRow) {
	e := pctt.New(pctt.Config{
		Workers: workers, RecordLatency: true, Tracer: o.Tracer,
		Journal: o.Journal, HotsetCap: o.Hotset,
	})
	defer e.Close()
	if o.Diag != nil {
		e.RegisterObs(o.Diag)
	}
	e.Load(w.Keys, nil)
	// Warmup: absorb inserts, populate the shortcut tables — timed and
	// reported as its own phase so warmup-vs-steady regressions are visible.
	rtPrev := obs.ReadRuntime()
	wres := e.Run(w.Ops)
	rtNow := obs.ReadRuntime()
	warmup = nativeRow{
		System: "P-CTT", Phase: "warmup", Shards: 1, Workers: workers,
		WallNanos:   wres.WallNanos,
		OpsPerSec:   float64(len(w.Ops)) / (float64(wres.WallNanos) / 1e9),
		runtimeCols: runtimeColsOf(rtNow.DeltaSince(rtPrev)),
	}
	var best nativeRow
	for trial := 0; trial < nativeTrials; trial++ {
		e.Reset() // counters and histograms: each trial measured alone
		rtPrev = obs.ReadRuntime()
		res := e.Run(w.Ops)
		rtNow = obs.ReadRuntime()
		ms := e.Metrics()
		row := nativeRow{
			System:          "P-CTT",
			Shards:          1,
			Workers:         workers,
			WallNanos:       res.WallNanos,
			OpsPerSec:       float64(len(w.Ops)) / (float64(res.WallNanos) / 1e9),
			CoalescedOps:    ms.Get(metrics.CtrCoalesced),
			ShortcutHits:    ms.Get(metrics.CtrShortcutHit),
			BucketSteals:    ms.Get(metrics.CtrBucketSteals),
			BucketHandoffs:  ms.Get(metrics.CtrBucketHandoffs),
			WindowDeferrals: ms.Get(metrics.CtrWindowDeferrals),
			SharedDescents:  ms.Get(metrics.CtrSharedDescents),
			HotsetHits:      ms.Get(metrics.CtrHotsetHit),
			HotsetMisses:    ms.Get(metrics.CtrHotsetMiss),
			BypassOps:       ms.Get(metrics.CtrBypassOps),
			runtimeCols:     runtimeColsOf(rtNow.DeltaSince(rtPrev)),
		}
		if n := row.HotsetHits + row.HotsetMisses; n > 0 {
			row.HotsetHitRate = float64(row.HotsetHits) / float64(n)
		}
		total := e.LatencyHistogram()
		queue := e.QueueWaitHistogram()
		exec := e.ExecHistogram()
		row.P50Nanos = total.Quantile(0.50) * 1e9
		row.P99Nanos = total.Quantile(0.99) * 1e9
		row.QueueWaitP50Nanos = queue.Quantile(0.50) * 1e9
		row.QueueWaitP99Nanos = queue.Quantile(0.99) * 1e9
		row.ExecP50Nanos = exec.Quantile(0.50) * 1e9
		row.ExecP99Nanos = exec.Quantile(0.99) * 1e9
		if trial == 0 || row.WallNanos < best.WallNanos {
			best = row
		}
	}
	return best, warmup
}

// nativeShardWorkers is the per-shard engine worker count on the sharded
// rows: small and fixed, so the sweep isolates the scale-out axis (more
// independent stores) from the scale-up axis the worker sweep covers.
const nativeShardWorkers = 2

// runNativeSharded executes the stream through a sharded store with one
// P-CTT engine per shard — the software analogue of the paper's 16
// replicated SOUs behind a prefix dispatcher (Fig 6). The stream is
// pre-split by the store's shard router (the same top-bytes dispatch a
// live sharded server performs per operation, hoisted out of the measured
// loop) and all shards run their partitions concurrently; wall time is
// the slowest shard's. With Options.Diag set, every shard engine is
// attached under its own per-shard registry group, shard-labeled.
func runNativeSharded(o Options, w *workload.Workload, shards int) (steady, warmup nativeRow) {
	engines := make([]*pctt.Engine, shards)
	for i := range engines {
		engines[i] = pctt.New(pctt.Config{
			Workers: nativeShardWorkers, RecordLatency: true, Tracer: o.Tracer,
			Journal: o.Journal, HotsetCap: o.Hotset,
		})
	}
	st := store.NewSharded(shards, func(i int) store.Store {
		return store.WrapEngine(engines[i])
	})
	defer st.Close() // closes every shard engine
	if o.Diag != nil {
		st.RegisterObs(o.Diag)
	}

	keysBy := make([][][]byte, shards)
	valsBy := make([][]uint64, shards)
	for i, k := range w.Keys {
		s := store.ShardOf(k, shards)
		keysBy[s] = append(keysBy[s], k)
		valsBy[s] = append(valsBy[s], uint64(i))
	}
	opsBy := make([][]workload.Op, shards)
	for _, op := range w.Ops {
		s := store.ShardOf(op.Key, shards)
		opsBy[s] = append(opsBy[s], op)
	}

	each := func(fn func(i int)) {
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fn(i)
			}(i)
		}
		wg.Wait()
	}
	each(func(i int) { engines[i].Load(keysBy[i], valsBy[i]) })
	// Warmup (timed): inserts absorbed, shortcuts warm across all shards.
	rtPrev := obs.ReadRuntime()
	warmStart := time.Now()
	each(func(i int) { engines[i].Run(opsBy[i]) })
	warmWall := time.Since(warmStart).Nanoseconds()
	rtNow := obs.ReadRuntime()
	warmup = nativeRow{
		System: "P-CTT-sharded", Phase: "warmup",
		Shards: shards, Workers: nativeShardWorkers,
		WallNanos:   warmWall,
		OpsPerSec:   float64(len(w.Ops)) / (float64(warmWall) / 1e9),
		runtimeCols: runtimeColsOf(rtNow.DeltaSince(rtPrev)),
	}

	var best nativeRow
	for trial := 0; trial < nativeTrials; trial++ {
		for _, e := range engines {
			e.Reset()
		}
		rtPrev = obs.ReadRuntime()
		start := time.Now()
		each(func(i int) { engines[i].Run(opsBy[i]) })
		wall := time.Since(start).Nanoseconds()
		rtNow = obs.ReadRuntime()

		row := nativeRow{
			System:      "P-CTT-sharded",
			Shards:      shards,
			Workers:     nativeShardWorkers,
			WallNanos:   wall,
			OpsPerSec:   float64(len(w.Ops)) / (float64(wall) / 1e9),
			runtimeCols: runtimeColsOf(rtNow.DeltaSince(rtPrev)),
		}
		total := metrics.NewHistogram()
		queue := metrics.NewHistogram()
		exec := metrics.NewHistogram()
		for _, e := range engines {
			ms := e.Metrics()
			row.CoalescedOps += ms.Get(metrics.CtrCoalesced)
			row.ShortcutHits += ms.Get(metrics.CtrShortcutHit)
			row.BucketSteals += ms.Get(metrics.CtrBucketSteals)
			row.BucketHandoffs += ms.Get(metrics.CtrBucketHandoffs)
			row.WindowDeferrals += ms.Get(metrics.CtrWindowDeferrals)
			row.SharedDescents += ms.Get(metrics.CtrSharedDescents)
			row.HotsetHits += ms.Get(metrics.CtrHotsetHit)
			row.HotsetMisses += ms.Get(metrics.CtrHotsetMiss)
			row.BypassOps += ms.Get(metrics.CtrBypassOps)
			total.Merge(e.LatencyHistogram())
			queue.Merge(e.QueueWaitHistogram())
			exec.Merge(e.ExecHistogram())
		}
		if n := row.HotsetHits + row.HotsetMisses; n > 0 {
			row.HotsetHitRate = float64(row.HotsetHits) / float64(n)
		}
		row.P50Nanos = total.Quantile(0.50) * 1e9
		row.P99Nanos = total.Quantile(0.99) * 1e9
		row.QueueWaitP50Nanos = queue.Quantile(0.50) * 1e9
		row.QueueWaitP99Nanos = queue.Quantile(0.99) * 1e9
		row.ExecP50Nanos = exec.Quantile(0.50) * 1e9
		row.ExecP99Nanos = exec.Quantile(0.99) * 1e9
		if trial == 0 || row.WallNanos < best.WallNanos {
			best = row
		}
	}
	return best, warmup
}
