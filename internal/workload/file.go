package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Workload file format: a binary container for a generated workload so
// traces can be recorded once and replayed across engines, machines, or
// future versions (the deterministic generators make this mostly a
// convenience — the format exists for externally captured traces).
//
//	magic   [8]byte "DCARTWL1"
//	nameLen uvarint, name
//	numKeys uvarint
//	keys    numKeys x { keyLen uvarint, key }
//	numOps  uvarint
//	ops     numOps x { kind byte, keyLen uvarint, key, value uint64 }
//	crc32   uint32 (IEEE, over everything before it)
var fileMagic = [8]byte{'D', 'C', 'A', 'R', 'T', 'W', 'L', '1'}

const maxSaneKeyLen = 1 << 20

// WriteTo serializes the workload, returning bytes written.
func (w *Workload) WriteTo(out io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(out, crc))
	cw := &countWriter{w: bw}

	write := func(p []byte) error {
		_, err := cw.Write(p)
		return err
	}
	var varint [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(varint[:], v)
		return write(varint[:n])
	}
	var u64 [8]byte

	if err := write(fileMagic[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(w.Name))); err != nil {
		return cw.n, err
	}
	if err := write([]byte(w.Name)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(w.Keys))); err != nil {
		return cw.n, err
	}
	for _, k := range w.Keys {
		if err := writeUvarint(uint64(len(k))); err != nil {
			return cw.n, err
		}
		if err := write(k); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(uint64(len(w.Ops))); err != nil {
		return cw.n, err
	}
	for _, op := range w.Ops {
		if err := write([]byte{byte(op.Kind)}); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(op.Key))); err != nil {
			return cw.n, err
		}
		if err := write(op.Key); err != nil {
			return cw.n, err
		}
		binary.BigEndian.PutUint64(u64[:], op.Value)
		if err := write(u64[:]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := out.Write(foot[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadFrom deserializes a workload written by WriteTo, validating the
// checksum.
func ReadFrom(r io.Reader) (*Workload, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	payload := &hashReader{r: br, h: crc}

	var magic [8]byte
	if _, err := io.ReadFull(payload, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: header: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("workload: bad magic %q", magic[:])
	}
	readUvarint := func() (uint64, error) { return readUvarintFrom(payload) }

	nameLen, err := readUvarint()
	if err != nil || nameLen > 256 {
		return nil, fmt.Errorf("workload: name length: %v", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(payload, name); err != nil {
		return nil, fmt.Errorf("workload: name: %w", err)
	}

	numKeys, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("workload: key count: %w", err)
	}
	w := &Workload{Name: string(name)}
	for i := uint64(0); i < numKeys; i++ {
		k, err := readKey(payload)
		if err != nil {
			return nil, fmt.Errorf("workload: key %d: %w", i, err)
		}
		w.Keys = append(w.Keys, k)
	}

	numOps, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("workload: op count: %w", err)
	}
	var u64 [8]byte
	for i := uint64(0); i < numOps; i++ {
		var kind [1]byte
		if _, err := io.ReadFull(payload, kind[:]); err != nil {
			return nil, fmt.Errorf("workload: op %d kind: %w", i, err)
		}
		if kind[0] > byte(Scan) {
			return nil, fmt.Errorf("workload: op %d has unknown kind %d", i, kind[0])
		}
		k, err := readKey(payload)
		if err != nil {
			return nil, fmt.Errorf("workload: op %d key: %w", i, err)
		}
		if _, err := io.ReadFull(payload, u64[:]); err != nil {
			return nil, fmt.Errorf("workload: op %d value: %w", i, err)
		}
		w.Ops = append(w.Ops, Op{
			Kind: Kind(kind[0]), Key: k, Value: binary.BigEndian.Uint64(u64[:]),
		})
	}

	want := crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("workload: footer: %w", err)
	}
	if got := binary.BigEndian.Uint32(foot[:]); got != want {
		return nil, fmt.Errorf("workload: checksum mismatch")
	}
	return w, nil
}

type hashReader struct {
	r io.Reader
	h interface{ Write(p []byte) (int, error) }
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.h.Write(p[:n])
	}
	return n, err
}

func readUvarintFrom(r io.Reader) (uint64, error) {
	var single [1]byte
	var x uint64
	var shift uint
	for {
		if _, err := io.ReadFull(r, single[:]); err != nil {
			return 0, err
		}
		b := single[0]
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("uvarint overflow")
		}
	}
}

func readKey(r io.Reader) ([]byte, error) {
	klen, err := readUvarintFrom(r)
	if err != nil {
		return nil, err
	}
	if klen > maxSaneKeyLen {
		return nil, fmt.Errorf("key length %d implausible", klen)
	}
	k := make([]byte, klen)
	if _, err := io.ReadFull(r, k); err != nil {
		return nil, err
	}
	return k, nil
}
