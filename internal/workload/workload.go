// Package workload generates the key sets and operation streams used by the
// DCART paper's evaluation (§IV-A): three real-world-shaped workloads
// (IPGEO, DICT, EA) and three synthetic integer workloads (DE, RS, RD),
// plus the YCSB-style read/write mixes A-E of Fig 12(b).
//
// The paper's datasets are proprietary or impractically large, so the
// generators here are deterministic synthetic equivalents that reproduce
// the two statistical properties the paper's mechanisms exploit: a skewed
// distribution of operations over 8-bit key prefixes (spatial similarity,
// Fig 3) and Zipfian key popularity over time (temporal similarity).
//
// All keys are binary-comparable byte strings. String-shaped keys carry a
// trailing 0x00 terminator so that no key is a proper prefix of another,
// which the ART substrate requires.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// Kind identifies an operation type.
type Kind uint8

// Operation kinds. The paper evaluates read/write mixes; Delete and Scan
// are supported by the index implementations and exercised by tests.
const (
	Read Kind = iota
	Write
	Delete
	Scan
)

// String returns the conventional lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Delete:
		return "delete"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one key-value operation in a stream.
type Op struct {
	Kind  Kind
	Key   []byte
	Value uint64 // payload for Write; scan length for Scan
}

// Workload is a generated benchmark input: an initial key set to bulk-load
// and an operation stream to run against it.
type Workload struct {
	Name string
	Keys [][]byte // unique keys, load phase
	Ops  []Op     // run phase
}

// Names of the six paper workloads.
const (
	IPGEO = "IPGEO" // IP address records (GeoLite2-shaped)
	DICT  = "DICT"  // English dictionary words
	EA    = "EA"    // e-mail addresses
	DE    = "DE"    // dense 8-byte integer keys
	RS    = "RS"    // random sparse 8-byte integer keys
	RD    = "RD"    // random dense 8-byte integer keys
)

// All lists the six paper workloads in the order figures present them.
var All = []string{IPGEO, DICT, EA, DE, RS, RD}

// RealWorld lists the three real-world-shaped workloads (Figs 3, 10).
var RealWorld = []string{IPGEO, DICT, EA}

// Mix is a read/write ratio, as in Fig 12(b).
type Mix struct {
	Name      string
	ReadRatio float64
}

// The five operation mixes of Fig 12(b). Mix C (50/50) is the paper's
// default for all other experiments.
var (
	MixA = Mix{"A", 1.00}
	MixB = Mix{"B", 0.75}
	MixC = Mix{"C", 0.50}
	MixD = Mix{"D", 0.25}
	MixE = Mix{"E", 0.00}
)

// Mixes lists A through E in order.
var Mixes = []Mix{MixA, MixB, MixC, MixD, MixE}

// Spec parameterizes workload generation.
type Spec struct {
	Name      string  // one of the workload name constants
	NumKeys   int     // unique keys in the load phase
	NumOps    int     // operations in the run phase
	ReadRatio float64 // fraction of Ops that are reads (rest are writes)
	// InsertFraction is the fraction of writes that insert previously
	// unseen keys rather than updating loaded ones. Default 0.2.
	InsertFraction float64
	// ZipfS and ZipfV parameterize the Zipf laws used for operation
	// sampling: rank probability proportional to (v+k)^-s, applied first
	// across prefixes (with v=3) and then across keys within the chosen
	// prefix (with v=ZipfV). The defaults (s=1.1, v=16) put the hottest
	// prefix near 13%% of operations and the hottest key around 0.3%% —
	// the Fig 3 regime.
	ZipfS float64
	ZipfV float64
	Seed  int64
}

func (s *Spec) setDefaults() {
	if s.NumKeys <= 0 {
		s.NumKeys = 100_000
	}
	if s.NumOps <= 0 {
		s.NumOps = 2 * s.NumKeys
	}
	if s.ReadRatio < 0 || s.ReadRatio > 1 {
		s.ReadRatio = 0.5
	}
	if s.InsertFraction <= 0 || s.InsertFraction >= 1 {
		s.InsertFraction = 0.2
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.1
	}
	if s.ZipfV < 1 {
		s.ZipfV = 16
	}
}

// Generate builds the workload described by spec. Generation is fully
// deterministic for a given spec (including Seed).
func Generate(spec Spec) (*Workload, error) {
	spec.setDefaults()
	rng := rand.New(rand.NewSource(mixSeed(spec.Seed, spec.Name)))

	var keys [][]byte
	switch spec.Name {
	case IPGEO:
		keys = genIPGeo(rng, spec.NumKeys)
	case DICT:
		keys = genDict(rng, spec.NumKeys)
	case EA:
		keys = genEmail(rng, spec.NumKeys)
	case DE:
		keys = genDense(spec.NumKeys)
	case RS:
		keys = genRandomSparse(rng, spec.NumKeys)
	case RD:
		keys = genRandomDense(rng, spec.NumKeys)
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", spec.Name)
	}

	ops := buildOps(rng, spec, keys)
	return &Workload{Name: spec.Name, Keys: keys, Ops: ops}, nil
}

// MustGenerate is Generate but panics on error; for tests and benchmarks
// where the spec is a compile-time constant.
func MustGenerate(spec Spec) *Workload {
	w, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return w
}

func mixSeed(seed int64, name string) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b
	for _, c := range name {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return int64(h & 0x7fffffffffffffff)
}

// buildOps draws spec.NumOps operations with two-stage Zipf sampling:
// first a prefix (8-bit key-space region) from a Zipf law over prefixes
// ranked by how many keys they hold, then a key within that prefix from a
// second Zipf law. This reproduces Fig 3's correlated spatial-temporal
// skew — operations cluster on the prefixes where the key set clusters —
// while keeping the hottest prefix near ~13% of operations and the
// hottest key a fraction of a percent.
func buildOps(rng *rand.Rand, spec Spec, keys [][]byte) []Op {
	groups := prefixGroups(rng, keys)
	prefZipf := rand.NewZipf(rng, spec.ZipfS, 3, uint64(len(groups)-1))
	keyZipfs := make([]*rand.Zipf, len(groups))
	for i, g := range groups {
		keyZipfs[i] = rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(len(g)-1))
	}
	pick := func() []byte {
		gi := int(prefZipf.Uint64())
		g := groups[gi]
		return keys[g[keyZipfs[gi].Uint64()]]
	}

	ops := make([]Op, 0, spec.NumOps)
	inserted := 0
	for i := 0; i < spec.NumOps; i++ {
		if rng.Float64() < spec.ReadRatio {
			ops = append(ops, Op{Kind: Read, Key: pick()})
			continue
		}
		if rng.Float64() < spec.InsertFraction {
			// Insert a fresh key derived from a hot existing key so the
			// insert lands in an already-hot subtree, as new records in
			// the real datasets do (a new IP in a popular /8, a new user
			// at a popular mail domain).
			k := deriveKey(pick(), inserted)
			inserted++
			ops = append(ops, Op{Kind: Write, Key: k, Value: rng.Uint64()})
			continue
		}
		ops = append(ops, Op{Kind: Write, Key: pick(), Value: rng.Uint64()})
	}
	return ops
}

// prefixGroups partitions key indices by first byte, orders the groups by
// descending population (ties by byte value), and shuffles within each
// group so that within-prefix popularity is independent of generation
// order.
func prefixGroups(rng *rand.Rand, keys [][]byte) [][]int {
	byPrefix := make(map[byte][]int)
	for i, k := range keys {
		b := byte(0)
		if len(k) > 0 {
			b = k[0]
		}
		byPrefix[b] = append(byPrefix[b], i)
	}
	prefixes := make([]int, 0, len(byPrefix))
	for b := range byPrefix {
		prefixes = append(prefixes, int(b))
	}
	sort.Slice(prefixes, func(i, j int) bool {
		ci, cj := len(byPrefix[byte(prefixes[i])]), len(byPrefix[byte(prefixes[j])])
		if ci != cj {
			return ci > cj
		}
		return prefixes[i] < prefixes[j]
	})
	groups := make([][]int, 0, len(prefixes))
	for _, p := range prefixes {
		g := byPrefix[byte(p)]
		rng.Shuffle(len(g), func(i, j int) { g[i], g[j] = g[j], g[i] })
		groups = append(groups, g)
	}
	return groups
}

// deriveKey returns a key sharing base's prefix, so the write lands in the
// same (hot) subtree as base — the way new records in the real datasets do
// (a new IP in a popular /8, a new user at a popular mail domain).
//
// Terminated string keys grow a "+NNNN" suffix before the terminator.
// Fixed-width integer keys keep their width: the low-order bytes are
// replaced with a hash of (base, seq). A rare collision with an existing
// key simply turns the insert into an update, which is harmless.
func deriveKey(base []byte, seq int) []byte {
	if len(base) > 0 && base[len(base)-1] == 0 {
		k := make([]byte, len(base)+5)
		pos := len(base) - 1
		copy(k, base[:pos])
		k[pos] = 0x2b // '+'
		binary.BigEndian.PutUint32(k[pos+1:pos+5], uint32(seq)+1)
		return k
	}
	k := make([]byte, len(base))
	copy(k, base)
	h := uint64(seq)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	keep := 1 // preserve at least the first byte (the hot prefix)
	if len(k) >= 8 {
		keep = 4
	}
	for i := keep; i < len(k); i++ {
		k[i] = byte(h >> (8 * uint(i%8)))
		h = h*0x100000001b3 + 0x9e37
	}
	return k
}

// EncodeUint64 returns the 8-byte big-endian (binary-comparable) encoding.
func EncodeUint64(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

// DecodeUint64 is the inverse of EncodeUint64.
func DecodeUint64(k []byte) uint64 {
	return binary.BigEndian.Uint64(k)
}

// PrefixHistogram counts operations by the first key byte (Fig 3).
func PrefixHistogram(ops []Op) [256]int64 {
	var h [256]int64
	for _, op := range ops {
		if len(op.Key) > 0 {
			h[op.Key[0]]++
		}
	}
	return h
}

// KeyAccessCounts returns per-key operation counts for the stream, keyed by
// string(key). Used for skew statistics (Fig 3 caption).
func KeyAccessCounts(ops []Op) map[string]int64 {
	m := make(map[string]int64)
	for _, op := range ops {
		m[string(op.Key)]++
	}
	return m
}

// ---- key-set generators ------------------------------------------------

// genIPGeo synthesizes IPv4-record keys shaped like the GeoLite2-Country
// database: 4-byte addresses whose /8 prefix follows a heavily skewed
// distribution (a handful of /8s own most addresses; the paper's Fig 3
// shows the 0x67 prefix dominating). Keys are the 4 address bytes — fixed
// width, so no terminator is needed.
func genIPGeo(rng *rand.Rand, n int) [][]byte {
	// Zipf ranks over the 256 /8 prefixes, permuted so hot prefixes land
	// at realistic positions; rank 0 is pinned to 0x67 to match Fig 3.
	prefixOf := prefixRanking(rng, 0x67)
	zipf := rand.NewZipf(rng, 1.3, 4, 255)
	return dedupeKeys(n, func() []byte {
		p := prefixOf[zipf.Uint64()]
		k := make([]byte, 4)
		k[0] = p
		k[1] = byte(rng.Intn(256))
		k[2] = byte(rng.Intn(256))
		k[3] = byte(rng.Intn(256))
		return k
	})
}

// prefixRanking returns a permutation of 0..255 with `hot` first.
func prefixRanking(rng *rand.Rand, hot byte) []byte {
	perm := rng.Perm(256)
	out := make([]byte, 256)
	for i, p := range perm {
		out[i] = byte(p)
	}
	for i, p := range out {
		if p == hot {
			out[0], out[i] = out[i], out[0]
			break
		}
	}
	return out
}

// English first-letter and following-letter frequencies (coarse), used to
// synthesize dictionary-like words with realistic prefix clustering.
var firstLetterFreq = [26]int{
	// a  b  c  d  e  f  g  h  i  j k  l  m  n  o  p q  r  s  t  u v  w x y z
	11, 5, 9, 6, 4, 4, 3, 3, 4, 1, 1, 3, 6, 2, 3, 8, 1, 6, 12, 9, 3, 2, 3, 1, 1, 1,
}

var letterFreq = [26]int{
	8, 2, 3, 4, 12, 2, 2, 6, 7, 1, 1, 4, 2, 7, 8, 2, 1, 6, 6, 9, 3, 1, 2, 1, 2, 1,
}

func pickWeighted(rng *rand.Rand, w [26]int) byte {
	total := 0
	for _, x := range w {
		total += x
	}
	r := rng.Intn(total)
	for i, x := range w {
		r -= x
		if r < 0 {
			return byte('a' + i)
		}
	}
	return 'z'
}

// genDict synthesizes lowercase pseudo-English words (3-14 letters) with
// English letter frequencies, 0x00-terminated.
func genDict(rng *rand.Rand, n int) [][]byte {
	return dedupeKeys(n, func() []byte {
		l := 3 + rng.Intn(12)
		w := make([]byte, l+1)
		w[0] = pickWeighted(rng, firstLetterFreq)
		for i := 1; i < l; i++ {
			w[i] = pickWeighted(rng, letterFreq)
		}
		w[l] = 0
		return w
	})
}

// mailDomains follow a Zipf-like popularity in real e-mail corpora.
var mailDomains = []string{
	"gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com",
	"icloud.com", "mail.ru", "qq.com", "163.com", "protonmail.com",
	"gmx.de", "web.de", "orange.fr", "comcast.net", "verizon.net",
	"live.com", "msn.com", "me.com", "yandex.ru", "zoho.com",
}

// genEmail synthesizes e-mail address keys "local@domain\x00" where the
// local part is a pseudo-word plus digits and domains follow a Zipf
// popularity. Because keys start with the local part, prefix skew follows
// English first-letter frequencies, matching the EA panel of Fig 3.
func genEmail(rng *rand.Rand, n int) [][]byte {
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(mailDomains)-1))
	return dedupeKeys(n, func() []byte {
		l := 4 + rng.Intn(8)
		name := make([]byte, 0, l+14)
		name = append(name, pickWeighted(rng, firstLetterFreq))
		for i := 1; i < l; i++ {
			name = append(name, pickWeighted(rng, letterFreq))
		}
		if rng.Intn(2) == 0 {
			name = append(name, byte('0'+rng.Intn(10)), byte('0'+rng.Intn(10)))
		}
		name = append(name, '@')
		name = append(name, mailDomains[zipf.Uint64()]...)
		name = append(name, 0)
		return name
	})
}

// genDense yields the dense integers 0..n-1 (paper workload DE).
func genDense(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = EncodeUint64(uint64(i))
	}
	return keys
}

// genRandomSparse yields n distinct uniform 64-bit integers (RS).
func genRandomSparse(rng *rand.Rand, n int) [][]byte {
	return dedupeKeys(n, func() []byte { return EncodeUint64(rng.Uint64()) })
}

// genRandomDense yields a random permutation of 0..4n, i.e. keys drawn
// densely but in random order with gaps (RD).
func genRandomDense(rng *rand.Rand, n int) [][]byte {
	return dedupeKeys(n, func() []byte {
		return EncodeUint64(uint64(rng.Intn(4 * n)))
	})
}

// dedupeKeys draws from gen until n distinct keys are collected.
func dedupeKeys(n int, gen func() []byte) [][]byte {
	seen := make(map[string]struct{}, n)
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		k := gen()
		s := string(k)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// SortKeys sorts a key slice lexicographically in place (load order does
// not matter for correctness; sorted bulk loads are a common fast path).
func SortKeys(keys [][]byte) {
	sort.Slice(keys, func(i, j int) bool { return compare(keys[i], keys[j]) < 0 })
}

func compare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
