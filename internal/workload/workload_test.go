package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestGenerateAllWorkloads(t *testing.T) {
	for _, name := range All {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := Generate(Spec{Name: name, NumKeys: 2000, NumOps: 5000, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(w.Keys) != 2000 {
				t.Fatalf("keys = %d", len(w.Keys))
			}
			if len(w.Ops) != 5000 {
				t.Fatalf("ops = %d", len(w.Ops))
			}
			seen := map[string]bool{}
			for _, k := range w.Keys {
				if len(k) == 0 {
					t.Fatal("empty key")
				}
				if seen[string(k)] {
					t.Fatalf("duplicate key %x", k)
				}
				seen[string(k)] = true
			}
		})
	}
}

func TestGenerateUnknownWorkload(t *testing.T) {
	if _, err := Generate(Spec{Name: "NOPE"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range All {
		a := MustGenerate(Spec{Name: name, NumKeys: 500, NumOps: 1000, Seed: 42})
		b := MustGenerate(Spec{Name: name, NumKeys: 500, NumOps: 1000, Seed: 42})
		for i := range a.Keys {
			if !bytes.Equal(a.Keys[i], b.Keys[i]) {
				t.Fatalf("%s: key %d differs across runs", name, i)
			}
		}
		for i := range a.Ops {
			if a.Ops[i].Kind != b.Ops[i].Kind || !bytes.Equal(a.Ops[i].Key, b.Ops[i].Key) {
				t.Fatalf("%s: op %d differs across runs", name, i)
			}
		}
		c := MustGenerate(Spec{Name: name, NumKeys: 500, NumOps: 1000, Seed: 43})
		same := true
		for i := range a.Ops {
			if !bytes.Equal(a.Ops[i].Key, c.Ops[i].Key) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestReadRatio(t *testing.T) {
	for _, mix := range Mixes {
		w := MustGenerate(Spec{Name: RS, NumKeys: 1000, NumOps: 20000,
			ReadRatio: mix.ReadRatio, Seed: 5})
		reads := 0
		for _, op := range w.Ops {
			if op.Kind == Read {
				reads++
			}
		}
		got := float64(reads) / float64(len(w.Ops))
		if got < mix.ReadRatio-0.02 || got > mix.ReadRatio+0.02 {
			t.Fatalf("mix %s: read ratio %.3f, want %.2f", mix.Name, got, mix.ReadRatio)
		}
	}
}

func TestKeyPrefixInvariant(t *testing.T) {
	// No key may be a proper prefix of another within a workload, which is
	// guaranteed by 0x00 terminators (strings) or fixed width (integers).
	for _, name := range All {
		w := MustGenerate(Spec{Name: name, NumKeys: 300, NumOps: 3000, Seed: 9})
		all := make([][]byte, 0, len(w.Keys))
		all = append(all, w.Keys...)
		for _, op := range w.Ops {
			all = append(all, op.Key)
		}
		SortKeys(all)
		for i := 1; i < len(all); i++ {
			a, b := all[i-1], all[i]
			if len(a) < len(b) && bytes.Equal(a, b[:len(a)]) {
				t.Fatalf("%s: key %x is a proper prefix of %x", name, a, b)
			}
		}
	}
}

func TestIPGeoPrefixSkew(t *testing.T) {
	w := MustGenerate(Spec{Name: IPGEO, NumKeys: 5000, NumOps: 50000, Seed: 2})
	h := PrefixHistogram(w.Ops)
	// 0x67 must be the hottest prefix, as in the paper's Fig 3, and it
	// must be an order of magnitude above the average active prefix.
	maxP, maxC := 0, int64(0)
	var total int64
	active := 0
	for p, c := range h {
		total += c
		if c > 0 {
			active++
		}
		if c > maxC {
			maxP, maxC = p, c
		}
	}
	if maxP != 0x67 {
		t.Fatalf("hottest prefix = %#x, want 0x67", maxP)
	}
	avg := float64(total) / float64(active)
	if float64(maxC) < 10*avg {
		t.Fatalf("insufficient skew: hottest prefix %.0f ops vs avg %.0f", float64(maxC), avg)
	}
}

func TestOperationSkew(t *testing.T) {
	// The Fig 3 caption: a small fraction of keys receives most accesses.
	// At key level the default skew concentrates >1/3 of operations on 5%
	// of the keys; node-level concentration (what the paper's "96.65% of
	// traversals on 5% of nodes" measures) is higher still because upper
	// tree levels are shared — the fig3 experiment reports it.
	w := MustGenerate(Spec{Name: IPGEO, NumKeys: 5000, NumOps: 100000, Seed: 3})
	perKey := KeyAccessCounts(w.Ops)
	counts := make([]int64, 0, len(perKey))
	for _, c := range perKey {
		counts = append(counts, c)
	}
	share := metrics.TopShare(counts, 0.05)
	if share < 0.3 {
		t.Fatalf("top-5%% key share = %.2f, want > 0.3", share)
	}
	// The benchmark regime (ZipfS 1.25) must be hotter.
	wh := MustGenerate(Spec{Name: IPGEO, NumKeys: 5000, NumOps: 100000, ZipfS: 1.25, Seed: 3})
	perKeyH := KeyAccessCounts(wh.Ops)
	countsH := make([]int64, 0, len(perKeyH))
	for _, c := range perKeyH {
		countsH = append(countsH, c)
	}
	if hot := metrics.TopShare(countsH, 0.05); hot <= share {
		t.Fatalf("ZipfS=1.25 share %.2f not above default %.2f", hot, share)
	}
}

func TestDictKeysShape(t *testing.T) {
	w := MustGenerate(Spec{Name: DICT, NumKeys: 1000, NumOps: 100, Seed: 4})
	for _, k := range w.Keys {
		if k[len(k)-1] != 0 {
			t.Fatalf("dict key missing terminator: %q", k)
		}
		for _, c := range k[:len(k)-1] {
			if c < 'a' || c > 'z' {
				t.Fatalf("dict key has non-letter byte: %q", k)
			}
		}
	}
}

func TestEmailKeysShape(t *testing.T) {
	w := MustGenerate(Spec{Name: EA, NumKeys: 1000, NumOps: 100, Seed: 4})
	for _, k := range w.Keys {
		if k[len(k)-1] != 0 {
			t.Fatalf("email key missing terminator: %q", k)
		}
		if !bytes.Contains(k, []byte("@")) {
			t.Fatalf("email key lacks @: %q", k)
		}
	}
}

func TestDenseKeys(t *testing.T) {
	w := MustGenerate(Spec{Name: DE, NumKeys: 100, NumOps: 10, Seed: 1})
	for i, k := range w.Keys {
		if DecodeUint64(k) != uint64(i) {
			t.Fatalf("dense key %d = %d", i, DecodeUint64(k))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(v uint64) bool { return DecodeUint64(EncodeUint64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := EncodeUint64(a), EncodeUint64(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveKeySameWidthAndPrefix(t *testing.T) {
	base := EncodeUint64(0x1122334455667788)
	k := deriveKey(base, 17)
	if len(k) != len(base) {
		t.Fatalf("derived integer key changed width: %d", len(k))
	}
	if !bytes.Equal(k[:4], base[:4]) {
		t.Fatalf("derived key lost hot prefix: %x vs %x", k[:4], base[:4])
	}
	term := append([]byte("word"), 0)
	kt := deriveKey(term, 3)
	if kt[len(kt)-1] == 0 && !bytes.HasPrefix(kt, []byte("word")) {
		t.Fatalf("derived string key lost prefix: %q", kt)
	}
	if bytes.Equal(kt, term) {
		t.Fatal("derived key identical to base")
	}
}

func TestInsertsTargetHotSubtrees(t *testing.T) {
	w := MustGenerate(Spec{Name: IPGEO, NumKeys: 2000, NumOps: 20000,
		ReadRatio: 0, InsertFraction: 0.5, Seed: 6})
	loaded := map[string]bool{}
	for _, k := range w.Keys {
		loaded[string(k)] = true
	}
	fresh := 0
	for _, op := range w.Ops {
		if op.Kind == Write && !loaded[string(op.Key)] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no insert operations generated")
	}
}

func TestMixConstants(t *testing.T) {
	if MixA.ReadRatio != 1 || MixE.ReadRatio != 0 || MixC.ReadRatio != 0.5 {
		t.Fatal("mix constants diverge from Fig 12(b)")
	}
	if len(Mixes) != 5 {
		t.Fatal("want 5 mixes A-E")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" ||
		Delete.String() != "delete" || Scan.String() != "scan" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "a", -1},
		{"abc", "abd", -1}, {"abd", "abc", 1}, {"abc", "abc", 0},
		{"ab", "abc", -1},
	}
	for _, c := range cases {
		if got := compare([]byte(c.a), []byte(c.b)); got != c.want {
			t.Fatalf("compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
