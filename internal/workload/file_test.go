package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	w := MustGenerate(Spec{Name: EA, NumKeys: 1000, NumOps: 5000, Seed: 9})
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || len(back.Keys) != len(w.Keys) || len(back.Ops) != len(w.Ops) {
		t.Fatalf("shape mismatch: %s %d %d", back.Name, len(back.Keys), len(back.Ops))
	}
	for i := range w.Keys {
		if !bytes.Equal(back.Keys[i], w.Keys[i]) {
			t.Fatalf("key %d differs", i)
		}
	}
	for i := range w.Ops {
		if back.Ops[i].Kind != w.Ops[i].Kind ||
			!bytes.Equal(back.Ops[i].Key, w.Ops[i].Key) ||
			back.Ops[i].Value != w.Ops[i].Value {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestFileCorruptionDetected(t *testing.T) {
	w := MustGenerate(Spec{Name: RS, NumKeys: 100, NumOps: 300, Seed: 9})
	var buf bytes.Buffer
	w.WriteTo(&buf)
	data := buf.Bytes()
	for _, pos := range []int{0, 12, len(data) / 2, len(data) - 3} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x55
		if _, err := ReadFrom(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at %d undetected", pos)
		}
	}
	if _, err := ReadFrom(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestQuickFileRoundTrip(t *testing.T) {
	f := func(seed int64, nk, no uint8) bool {
		w := MustGenerate(Spec{
			Name: DICT, NumKeys: int(nk)%200 + 10, NumOps: int(no)%500 + 10, Seed: seed,
		})
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if len(back.Keys) != len(w.Keys) || len(back.Ops) != len(w.Ops) {
			return false
		}
		for i := range w.Ops {
			if !bytes.Equal(back.Ops[i].Key, w.Ops[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
