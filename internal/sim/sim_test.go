package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(0)
	if !sort.IntsAreSorted(order) || len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	var s Sim
	hits := 0
	s.At(1, func() {
		s.After(1, func() {
			hits++
			s.After(1, func() { hits++ })
		})
	})
	s.Run(0)
	if hits != 2 || s.Now() != 3 {
		t.Fatalf("hits=%d now=%v", hits, s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	var s Sim
	fired := 0
	s.At(1, func() { fired++ })
	s.At(5, func() { fired++ })
	s.Run(2)
	if fired != 1 || s.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d", fired, s.Pending())
	}
	s.Run(0)
	if fired != 2 {
		t.Fatalf("fired=%d after resume", fired)
	}
}

func TestSimPastEventRunsNow(t *testing.T) {
	var s Sim
	ran := false
	s.At(5, func() {
		s.At(1, func() { ran = true }) // in the past: runs at now
	})
	s.Run(0)
	if !ran || s.Now() != 5 {
		t.Fatalf("ran=%v now=%v", ran, s.Now())
	}
}

func TestOpenLoopLowLoad(t *testing.T) {
	srv := BatchServer{
		MaxBatch:       64,
		ServiceSeconds: func(n int) float64 { return 1e-6 * float64(n) }, // 1us/op
	}
	// At 1% of capacity, latency should be close to the service time of a
	// small batch and throughput should equal the offered rate.
	lp := RunOpenLoop(srv, 10_000, 20_000, 1)
	if lp.MeanLatencySeconds > 20e-6 {
		t.Fatalf("low-load mean latency = %v", lp.MeanLatencySeconds)
	}
	if lp.AchievedOpsPerSec < 0.9*lp.OfferedOpsPerSec {
		t.Fatalf("low-load throughput %v below offered %v", lp.AchievedOpsPerSec, lp.OfferedOpsPerSec)
	}
}

func TestOpenLoopSaturation(t *testing.T) {
	srv := BatchServer{
		MaxBatch:       64,
		ServiceSeconds: func(n int) float64 { return 1e-6 * float64(n) },
	}
	capacity := SaturationThroughput(srv) // 1M ops/s
	if math.Abs(capacity-1e6) > 1 {
		t.Fatalf("capacity = %v", capacity)
	}
	over := RunOpenLoop(srv, 2*capacity, 50_000, 1)
	// Achieved throughput is pinned at capacity; latency blows up.
	if over.AchievedOpsPerSec > 1.1*capacity {
		t.Fatalf("achieved %v exceeds capacity %v", over.AchievedOpsPerSec, capacity)
	}
	low := RunOpenLoop(srv, 0.2*capacity, 50_000, 1)
	if over.P99LatencySeconds < 10*low.P99LatencySeconds {
		t.Fatalf("saturated P99 (%v) should dwarf low-load P99 (%v)",
			over.P99LatencySeconds, low.P99LatencySeconds)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	srv := BatchServer{
		MaxBatch:       32,
		ServiceSeconds: func(n int) float64 { return 0.5e-6 + 1e-6*float64(n) },
	}
	pts := Curve(srv, 0.1, 1.2, 6, 20_000, 7)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// P99 must rise (weakly) as offered load approaches saturation.
	if pts[len(pts)-1].P99LatencySeconds <= pts[0].P99LatencySeconds {
		t.Fatalf("P99 did not grow with load: %v .. %v",
			pts[0].P99LatencySeconds, pts[len(pts)-1].P99LatencySeconds)
	}
	for _, p := range pts {
		if p.MeanLatencySeconds > p.P99LatencySeconds {
			t.Fatalf("mean %v above P99 %v", p.MeanLatencySeconds, p.P99LatencySeconds)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	srv := BatchServer{MaxBatch: 16, ServiceSeconds: func(n int) float64 { return 1e-6 * float64(n) }}
	a := RunOpenLoop(srv, 500_000, 10_000, 42)
	b := RunOpenLoop(srv, 500_000, 10_000, 42)
	if a != b {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
}

// Property: conservation — every op completes exactly once at any load.
func TestQuickCompletion(t *testing.T) {
	f := func(seedRaw int64, loadRaw uint8) bool {
		load := 0.1 + float64(loadRaw%30)/10 // 0.1x..3x capacity
		srv := BatchServer{MaxBatch: 8, ServiceSeconds: func(n int) float64 { return 1e-6 * float64(n) }}
		capacity := SaturationThroughput(srv)
		lp := RunOpenLoop(srv, capacity*load, 2000, seedRaw)
		// Latency histogram counted all 2000 ops iff achieved*lastCompletion
		// equals 2000; cheap proxy: throughput and latency are positive
		// and P99 >= mean.
		return lp.AchievedOpsPerSec > 0 &&
			lp.P99LatencySeconds >= lp.MeanLatencySeconds*0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the queue-wait/service split decomposes total latency — the
// means add exactly (every op's total is wait + service), wait is bounded
// by total, and under saturation queue wait dominates while service stays
// bounded by one full batch. This is the same decomposition the measured
// pipeline reports (pctt's QueueWaitHistogram/ExecHistogram), keeping the
// simulated and native breakdowns comparable.
func TestOpenLoopWaitServiceSplit(t *testing.T) {
	srv := BatchServer{MaxBatch: 16, ServiceSeconds: func(n int) float64 { return 1e-6 * float64(n) }}
	capacity := SaturationThroughput(srv)
	for _, frac := range []float64{0.3, 0.9, 1.5} {
		lp := RunOpenLoop(srv, capacity*frac, 5000, 42)
		sum := lp.MeanQueueWaitSeconds + lp.MeanServiceSeconds
		if diff := math.Abs(sum - lp.MeanLatencySeconds); diff > 1e-12+1e-9*lp.MeanLatencySeconds {
			t.Fatalf("frac %.1f: mean wait %g + mean service %g != mean total %g",
				frac, lp.MeanQueueWaitSeconds, lp.MeanServiceSeconds, lp.MeanLatencySeconds)
		}
		if lp.QueueWaitP99Seconds > lp.P99LatencySeconds {
			t.Fatalf("frac %.1f: wait p99 %g exceeds total p99 %g",
				frac, lp.QueueWaitP99Seconds, lp.P99LatencySeconds)
		}
		// 5% slack: histogram quantiles interpolate within buckets.
		if maxSvc := srv.ServiceSeconds(srv.MaxBatch); lp.ServiceP99Seconds > maxSvc*1.05 {
			t.Fatalf("frac %.1f: service p99 %g exceeds a full batch %g", frac, lp.ServiceP99Seconds, maxSvc)
		}
	}
	over := RunOpenLoop(srv, capacity*1.5, 5000, 42)
	if over.QueueWaitP99Seconds < over.ServiceP99Seconds {
		t.Fatalf("oversaturated: queue wait p99 %g should dominate service p99 %g",
			over.QueueWaitP99Seconds, over.ServiceP99Seconds)
	}
}
