package sim

import (
	"math"
	"math/rand"

	"repro/internal/metrics"
)

// BatchServer describes a system that serves operations in batches, the
// execution style of every engine in this repository (rounds of threads on
// the CPU, kernel launches on the GPU, PCU batches on DCART).
type BatchServer struct {
	// MaxBatch is the largest batch the server accepts at once.
	MaxBatch int
	// ServiceSeconds returns the time to serve a batch of n operations.
	ServiceSeconds func(n int) float64
}

// LoadPoint is one point of a throughput/latency curve. Total latency is
// broken down the same way internal/pctt's measured pipeline reports it:
// queue wait (arrival until the operation's batch begins service) plus
// service (batch begin until batch completion) — so a simulated curve and
// a BENCH_native.json row are directly comparable, column for column.
type LoadPoint struct {
	OfferedOpsPerSec   float64
	AchievedOpsPerSec  float64
	MeanLatencySeconds float64
	P99LatencySeconds  float64
	// Queue-wait / service split of the same per-op latencies
	// (wait + service == total for every operation).
	QueueWaitP99Seconds  float64
	ServiceP99Seconds    float64
	MeanQueueWaitSeconds float64
	MeanServiceSeconds   float64
}

// RunOpenLoop drives the server with Poisson arrivals at rate
// opsPerSecond for numOps operations and measures per-op latency
// (queueing + service; an operation completes when its batch completes).
// Deterministic for a given seed.
func RunOpenLoop(server BatchServer, opsPerSecond float64, numOps int, seed int64) LoadPoint {
	if server.MaxBatch <= 0 {
		server.MaxBatch = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var s Sim
	hist := metrics.NewHistogram()
	waitHist := metrics.NewHistogram()
	svcHist := metrics.NewHistogram()

	queue := make([]float64, 0, server.MaxBatch) // arrival times
	busy := false
	completed := 0
	var lastCompletion float64

	var startService func()
	startService = func() {
		if busy || len(queue) == 0 {
			return
		}
		n := len(queue)
		if n > server.MaxBatch {
			n = server.MaxBatch
		}
		batch := make([]float64, n)
		copy(batch, queue[:n])
		queue = append(queue[:0], queue[n:]...)
		busy = true
		began := s.Now() // batch service begins: queue wait ends here
		s.After(server.ServiceSeconds(n), func() {
			done := s.Now()
			for _, arr := range batch {
				hist.Observe(done - arr)
				waitHist.Observe(began - arr)
				svcHist.Observe(done - began)
			}
			completed += n
			lastCompletion = done
			busy = false
			startService()
		})
	}

	// Arrival process.
	t := 0.0
	for i := 0; i < numOps; i++ {
		t += rng.ExpFloat64() / opsPerSecond
		arr := t
		s.At(arr, func() {
			queue = append(queue, arr)
			startService()
		})
	}
	s.Run(0)

	lp := LoadPoint{OfferedOpsPerSec: opsPerSecond}
	if lastCompletion > 0 {
		lp.AchievedOpsPerSec = float64(completed) / lastCompletion
	}
	lp.MeanLatencySeconds = hist.Mean()
	lp.P99LatencySeconds = hist.Quantile(0.99)
	lp.MeanQueueWaitSeconds = waitHist.Mean()
	lp.MeanServiceSeconds = svcHist.Mean()
	lp.QueueWaitP99Seconds = waitHist.Quantile(0.99)
	lp.ServiceP99Seconds = svcHist.Quantile(0.99)
	return lp
}

// Curve sweeps offered load from lowFrac to highFrac of the server's
// nominal capacity in the given number of points, returning one LoadPoint
// per offered rate. Capacity is estimated from a full batch's service
// time.
func Curve(server BatchServer, lowFrac, highFrac float64, points, opsPerPoint int, seed int64) []LoadPoint {
	if points < 2 {
		points = 2
	}
	full := server.ServiceSeconds(server.MaxBatch)
	capacity := float64(server.MaxBatch) / full
	out := make([]LoadPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := lowFrac + (highFrac-lowFrac)*float64(i)/float64(points-1)
		rate := capacity * frac
		if rate <= 0 {
			continue
		}
		out = append(out, RunOpenLoop(server, rate, opsPerPoint, seed+int64(i)))
	}
	return out
}

// SaturationThroughput returns the server's maximum sustainable rate.
func SaturationThroughput(server BatchServer) float64 {
	full := server.ServiceSeconds(server.MaxBatch)
	if full <= 0 {
		return math.Inf(1)
	}
	return float64(server.MaxBatch) / full
}
