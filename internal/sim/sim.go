// Package sim provides a small discrete-event simulation core and, on top
// of it, the open-loop batch-service queueing model that produces the
// paper's throughput / P99-latency curves (Fig 10).
package sim

import "container/heap"

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	events eventHeap
	now    float64
	seq    int64 // tie-break so same-time events run in schedule order
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (>= Now; earlier times run "now").
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// Run processes events until the queue empties or time exceeds until
// (until <= 0 means no limit). It returns the final simulation time.
func (s *Sim) Run(until float64) float64 {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if until > 0 && e.time > until {
			// Put it back for a later Run call and stop.
			heap.Push(&s.events, e)
			s.now = until
			return s.now
		}
		s.now = e.time
		e.fn()
	}
	return s.now
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }
