// Command dcart-sim drives the DCART accelerator simulator on a single
// workload and reports its cycle count, modeled time/energy, buffer hit
// ratios, and counter set — the quickest way to inspect the accelerator's
// behaviour under different configurations.
//
// Usage:
//
//	dcart-sim [-workload IPGEO] [-keys 100000] [-ops 500000]
//	          [-sous 16] [-batch 4096] [-treebuf 4194304]
//	          [-no-shortcuts] [-no-combining] [-lru] [-no-overlap]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "IPGEO", "workload: IPGEO DICT EA DE RS RD")
	keys := flag.Int("keys", 100_000, "unique keys")
	ops := flag.Int("ops", 500_000, "operations")
	seed := flag.Int64("seed", 1, "workload seed")
	readRatio := flag.Float64("reads", 0.5, "read ratio")
	sous := flag.Int("sous", 0, "number of SOUs (default 16)")
	batch := flag.Int("batch", 0, "PCU batch size (default 4096)")
	treebuf := flag.Int("treebuf", 0, "Tree_buffer bytes (default 4MB)")
	noShortcuts := flag.Bool("no-shortcuts", false, "disable the Shortcut_Table")
	noCombining := flag.Bool("no-combining", false, "disable operation combining")
	lru := flag.Bool("lru", false, "use LRU instead of value-aware Tree_buffer")
	noOverlap := flag.Bool("no-overlap", false, "disable PCU/SOU overlap")
	resources := flag.Bool("resources", false, "print the U280 resource estimate and exit")
	trace := flag.String("trace", "", "load the workload from a trace file (see workload-gen -o)")
	flag.Parse()

	if *resources {
		cfg := accel.Config{NumSOUs: *sous, BatchSize: *batch, TreeBufBytes: *treebuf}.Defaults()
		fmt.Printf("configuration: %d SOUs, buffers %d/%d/%d/%d KB\n",
			cfg.NumSOUs, cfg.ScanBufBytes>>10, cfg.BucketBufBytes>>10,
			cfg.ShortcutBufBytes>>10, cfg.TreeBufBytes>>10)
		fmt.Println("estimate:     ", cfg.Resources())
		fmt.Println("fits U280:    ", cfg.Resources().FitsU280())
		fmt.Println("SOU headroom: ", accel.MaxSOUsOnU280(cfg))
		return
	}

	var w *core.Workload
	var err error
	if *trace != "" {
		f, ferr := os.Open(*trace)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "dcart-sim:", ferr)
			os.Exit(1)
		}
		w, err = workload.ReadFrom(f)
		f.Close()
		if err == nil {
			*wname, *keys, *ops = w.Name, len(w.Keys), len(w.Ops)
		}
	} else {
		w, err = core.GenerateWorkload(core.WorkloadSpec{
			Name: *wname, NumKeys: *keys, NumOps: *ops, ReadRatio: *readRatio, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcart-sim:", err)
		os.Exit(1)
	}

	e := accel.New(accel.Config{
		NumSOUs: *sous, BatchSize: *batch, TreeBufBytes: *treebuf,
		DisableShortcuts: *noShortcuts, DisableCombining: *noCombining,
		UseLRUTreeBuffer: *lru, DisableOverlap: *noOverlap,
	})
	e.Load(w.Keys, nil)
	res := e.Run(w.Ops)
	rep := platform.ModelFor(res)

	fmt.Printf("workload        %s (%d keys, %d ops, %.0f%% reads)\n",
		*wname, *keys, *ops, 100**readRatio)
	fmt.Printf("cycles          %d (%.2f cycles/op)\n", e.Cycles(),
		float64(e.Cycles())/float64(*ops))
	fmt.Printf("modeled time    %.6gs  (%.3g ops/s @ %.0f MHz)\n",
		rep.Seconds, rep.Throughput(res.Ops), e.Config().ClockHz/1e6)
	fmt.Printf("modeled energy  %.4g J @ %.0f W\n", rep.Joules, rep.Watts)
	fmt.Printf("off-chip bytes  %d\n", res.OffchipBytes)
	names := [4]string{"Scan_buffer", "Bucket_buffer", "Shortcut_buffer", "Tree_buffer"}
	for i, st := range e.BufferStats() {
		fmt.Printf("%-15s hits=%d misses=%d evictions=%d bypasses=%d hit-ratio=%.3f\n",
			names[i], st.Hits, st.Misses, st.Evictions, st.Bypasses, st.HitRatio())
	}
	fmt.Printf("counters        %s\n", res.Metrics)
}
