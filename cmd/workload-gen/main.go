// Command workload-gen generates one of the paper's six workloads and
// prints its statistics (and optionally the keys/operations themselves),
// useful for inspecting the generators' prefix and popularity skew.
//
// Usage:
//
//	workload-gen [-workload IPGEO] [-keys 100000] [-ops 500000] [-dump]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "IPGEO", "workload: IPGEO DICT EA DE RS RD")
	keys := flag.Int("keys", 100_000, "unique keys")
	ops := flag.Int("ops", 500_000, "operations")
	seed := flag.Int64("seed", 1, "seed")
	readRatio := flag.Float64("reads", 0.5, "read ratio")
	dump := flag.Bool("dump", false, "dump the operation stream to stdout")
	out := flag.String("o", "", "save the workload to a binary trace file")
	flag.Parse()

	w, err := core.GenerateWorkload(core.WorkloadSpec{
		Name: *wname, NumKeys: *keys, NumOps: *ops, ReadRatio: *readRatio, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workload-gen:", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workload-gen:", err)
			os.Exit(1)
		}
		n, err := w.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "workload-gen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes, %d keys, %d ops)\n", *out, n, len(w.Keys), len(w.Ops))
		return
	}

	if *dump {
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		for _, op := range w.Ops {
			fmt.Fprintf(out, "%s %x %d\n", op.Kind, op.Key, op.Value)
		}
		return
	}

	hist := workload.PrefixHistogram(w.Ops)
	type pc struct {
		p byte
		c int64
	}
	var list []pc
	var total int64
	for p, c := range hist {
		if c > 0 {
			list = append(list, pc{byte(p), c})
			total += c
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })

	fmt.Printf("workload %s: %d keys, %d ops\n", w.Name, len(w.Keys), len(w.Ops))
	fmt.Printf("active prefixes: %d\n", len(list))
	for i := 0; i < 8 && i < len(list); i++ {
		fmt.Printf("  prefix 0x%02X: %d ops (%.1f%%)\n",
			list[i].p, list[i].c, 100*float64(list[i].c)/float64(total))
	}
	perKey := workload.KeyAccessCounts(w.Ops)
	counts := make([]int64, 0, len(perKey))
	for _, c := range perKey {
		counts = append(counts, c)
	}
	fmt.Printf("unique keys touched: %d\n", len(perKey))
	fmt.Printf("top-5%% key share of ops: %.1f%%\n", 100*metrics.TopShare(counts, 0.05))
	reads := 0
	for _, op := range w.Ops {
		if op.Kind == workload.Read {
			reads++
		}
	}
	fmt.Printf("read ratio: %.3f\n", float64(reads)/float64(len(w.Ops)))
}
