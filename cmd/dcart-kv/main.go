// Command dcart-kv is a small TCP key-value server backed by the
// thread-safe adaptive radix tree — the kind of component the paper's
// introduction places ART inside ("large-scale database systems and
// key-value stores"). One goroutine per connection exercises the
// lock-coupling concurrency substrate under real network load.
//
// Protocol (text, one command per line):
//
//	PUT <key> <uint64>     -> OK | OK replaced
//	GET <key>              -> VALUE <uint64> | NOT_FOUND
//	DEL <key>              -> OK | NOT_FOUND
//	SCAN <prefix> <limit>  -> KEY <key> <value> lines, then END
//	LEN                    -> LEN <n>
//	STATS                  -> one line of metrics counters
//	QUIT                   -> closes the connection
//
// Keys are printable tokens (no spaces); the server appends the 0x00
// terminator internally so prefix relationships are safe.
//
// Usage:
//
//	dcart-kv [-addr :7070] [-snapshot file] [-batch-workers n]
//	         [-batch-max-delay 100us] [-batch-min-batch 64]
//	         [-batch-queue-depth 4096] [-batch-max-inflight 16384]
//	         [-batch-no-steal]
//
// With -snapshot, the store loads the file at startup (if present) and
// writes it back on SIGINT/SIGTERM. With -batch-workers > 0, point
// operations flow through the parallel Combine-Traverse-Trigger engine
// (internal/pctt), which coalesces concurrent requests per key prefix
// before touching the tree; the remaining -batch-* flags tune its
// latency/throughput trade-off (combine-window deadline, backlog bounds,
// work stealing — see internal/pctt.Config).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/kvserver"
	"repro/internal/pctt"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load/save")
	batchWorkers := flag.Int("batch-workers", 0,
		"route point ops through the parallel CTT engine with n workers (0 = direct)")
	batchMaxDelay := flag.Duration("batch-max-delay", 0,
		"combine-window deadline: a request waits at most this long for peers to coalesce with (0 = engine default 100µs, negative disables deferral)")
	batchMinBatch := flag.Int("batch-min-batch", 0,
		"combine-window fill target: buckets at or above this execute immediately (0 = engine default 64)")
	batchQueueDepth := flag.Int("batch-queue-depth", 0,
		"per-bucket backlog bound in operations (0 = engine default 4096)")
	batchMaxInflight := flag.Int("batch-max-inflight", 0,
		"total submitted-but-incomplete operation bound — the queue-wait knob (0 = engine default 4x batch size)")
	batchNoSteal := flag.Bool("batch-no-steal", false,
		"disable whole-bucket work stealing and handoff (pin buckets to their home worker)")
	flag.Parse()

	var srv *kvserver.Server
	if *batchWorkers > 0 {
		srv = kvserver.NewBatchedConfig(pctt.Config{
			Workers:     *batchWorkers,
			MaxDelay:    *batchMaxDelay,
			MinBatch:    *batchMinBatch,
			QueueDepth:  *batchQueueDepth,
			MaxInflight: *batchMaxInflight,
			NoSteal:     *batchNoSteal,
		})
	} else {
		srv = kvserver.New()
	}
	if *snapshot != "" {
		if err := srv.LoadSnapshot(*snapshot); err != nil && !os.IsNotExist(err) {
			log.Fatalf("dcart-kv: load snapshot: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dcart-kv: listen: %v", err)
	}
	log.Printf("dcart-kv: serving on %s (%d keys loaded)", ln.Addr(), srv.Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Close() // drain the batching pipeline before snapshotting
		if *snapshot != "" {
			if err := srv.SaveSnapshot(*snapshot); err != nil {
				log.Printf("dcart-kv: save snapshot: %v", err)
			} else {
				log.Printf("dcart-kv: snapshot saved to %s", *snapshot)
			}
		}
		ln.Close()
		os.Exit(0)
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcart-kv:", err)
			return
		}
		go srv.Serve(conn)
	}
}
