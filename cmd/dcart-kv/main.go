// Command dcart-kv is a small TCP key-value server backed by the
// thread-safe adaptive radix tree — the kind of component the paper's
// introduction places ART inside ("large-scale database systems and
// key-value stores"). One goroutine per connection exercises the
// lock-coupling concurrency substrate under real network load.
//
// Protocol (text, one command per line):
//
//	PUT <key> <uint64>     -> OK | OK replaced
//	GET <key>              -> VALUE <uint64> | NOT_FOUND
//	DEL <key>              -> OK | NOT_FOUND
//	SCAN <prefix> <limit>  -> KEY <key> <value> lines, then END
//	                          (END TRUNCATED when the server's 10k response
//	                          cap clipped a larger result)
//	LEN                    -> LEN <n>
//	STATS                  -> one line: the observability snapshot
//	QUIT                   -> closes the connection
//
// Keys are printable tokens (no spaces); the server appends the 0x00
// terminator internally so prefix relationships are safe.
//
// Usage:
//
//	dcart-kv [-addr :7070] [-snapshot file] [-shards n] [-batch-workers n]
//	         [-batch-max-delay 100us] [-batch-min-batch 64]
//	         [-batch-queue-depth 4096] [-batch-max-inflight 16384]
//	         [-batch-no-steal]
//	         [-pipeline-depth 64] [-flush-every 32]
//	         [-diag-addr 127.0.0.1:7071] [-trace-sample 1024]
//	         [-obs-window 1s] [-slow-op 10ms] [-slow-op-log]
//	         [-flightrec-dir dir] [-drain-timeout 10s]
//
// With -snapshot, the store loads the file at startup (if present) and
// writes it back on shutdown. With -batch-workers > 0, point operations
// flow through the parallel Combine-Traverse-Trigger engine
// (internal/pctt), which coalesces concurrent requests per key prefix
// before touching the tree; the remaining -batch-* flags tune its
// latency/throughput trade-off (combine-window deadline, backlog bounds,
// work stealing — see internal/pctt.Config).
//
// With -shards > 1, the key space is partitioned across that many
// independent sub-stores by the top key bytes (internal/store.Sharded,
// the scale-out shape of the paper's Fig 6): point operations route to
// the owning shard, SCAN/RANGE scatter to every shard and merge back in
// global key order, snapshots become one file per shard, and /metrics
// serves every series per shard under a shard="i" label. -shards composes
// with -batch-workers (each shard gets its own engine).
//
// Each connection runs the pipelined wire by default: commands are read
// and submitted continuously with up to -pipeline-depth responses in
// flight, responses complete in protocol order, and flushes coalesce to
// one per -flush-every responses (plus one whenever the connection goes
// idle, so nothing waits). SCAN/RANGE/LEN/STATS drain the window before
// executing, preserving read-your-writes. -pipeline-depth 1 restores the
// lockstep request/response loop.
//
// With -diag-addr, a diagnostics HTTP server exposes /metrics (Prometheus
// text format), /statsz (the STATS snapshot as JSON), /debug/traces (the
// sampled op-lifecycle span ring; ?id=<key hash> composes the wire and
// engine spans of one traced op into a stage waterfall),
// /debug/timeseries (rolling per--obs-window counter rates and latency
// quantiles as JSON, or a TOP-style text view with ?view=top),
// /debug/events (the slow-op journal as JSON lines once -slow-op is set),
// /debug/pprof/*, and /healthz; latency recording and 1/-trace-sample
// lifecycle tracing are enabled on the batched engine automatically, and
// every connection stamps wire-stage spans (parse, submit, window,
// execute, flush) for traced or journaled operations. When the rolling
// collector is on, /healthz upgrades from a static "ok" to a JSON health
// verdict (ok|degraded|critical, HTTP 503 when critical) computed by
// declarative rules over the collector windows: stalled P-CTT workers
// (frozen heartbeat with work in flight), sustained inflight saturation,
// and slow-op journal rate. With -flightrec-dir, any rule firing — or
// SIGQUIT, or GET /debug/flightrec?trigger=1 — dumps an atomic
// post-mortem bundle (recent windows, journal, spans, goroutine profile,
// runtime snapshot, config) into that directory, rate-limited with
// bounded retention.
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener closes (no new
// connections), in-flight connections drain for up to -drain-timeout
// (then force-close), the batching pipeline drains, the snapshot is
// written, and a final observability snapshot is logged.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load/save")
	storeFlags := store.RegisterFlags(flag.CommandLine)
	pipeDepth := flag.Int("pipeline-depth", kvserver.DefaultPipelineDepth,
		"per-connection in-flight response window (1 = lockstep request/response)")
	flushEvery := flag.Int("flush-every", kvserver.DefaultFlushEvery,
		"responses coalesced per network flush on the pipelined path")
	diagFlags := obs.RegisterFlags(flag.CommandLine)
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight connections before force-closing them")
	flag.Parse()

	var (
		tracer  *obs.Tracer
		journal *obs.Journal
	)
	cfg := storeFlags.Config()
	if diagFlags.Enabled() {
		tracer = diagFlags.Tracer()
		journal = diagFlags.Journal()
		if cfg.Engine.Workers > 0 {
			cfg.Engine.RecordLatency = true
			cfg.Engine.Tracer = tracer
			cfg.Engine.Journal = journal
		}
	}
	srv := kvserver.NewStore(store.Open(cfg))
	srv.SetPipeline(*pipeDepth, *flushEvery)
	srv.SetTracer(tracer)
	srv.SetJournal(journal)
	if *snapshot != "" {
		if err := srv.LoadSnapshot(*snapshot); err != nil && !os.IsNotExist(err) {
			log.Fatalf("dcart-kv: load snapshot: %v", err)
		}
	}

	var (
		diag      *obs.Server
		collector *obs.Collector
		health    *obs.Health
		flight    *obs.FlightRecorder
	)
	if diagFlags.Enabled() {
		obs.RegisterRuntime(srv.Registry())
		if journal != nil {
			obs.RegisterJournal(srv.Registry(), journal)
		}
		collector = diagFlags.Collector(srv.Registry())
		if collector != nil {
			health = obs.NewHealth(collector, obs.DefaultHealthRules()...)
		}
		if dir := diagFlags.FlightDir(); dir != "" {
			flight = obs.NewFlightRecorder(dir, obs.Diagnostics{
				Registry:  srv.Registry(),
				Tracer:    tracer,
				Collector: collector,
				Journal:   journal,
				Health:    health,
			}, health)
			cfgMap := make(map[string]string)
			flag.Visit(func(f *flag.Flag) { cfgMap[f.Name] = f.Value.String() })
			flight.SetConfig(cfgMap)
			if health != nil {
				flight.TriggerOnFire(health, log.Printf)
			}
			// SIGQUIT dumps a post-mortem bundle without killing the
			// process (the Go runtime's stack-dump-and-exit behaviour
			// only applies while SIGQUIT is unhandled).
			quit := make(chan os.Signal, 1)
			signal.Notify(quit, syscall.SIGQUIT)
			go func() {
				for range quit {
					if dir, err := flight.Trigger("sigquit"); err != nil {
						log.Printf("dcart-kv: flight recorder: %v", err)
					} else {
						log.Printf("dcart-kv: flight recorder bundle at %s", dir)
					}
				}
			}()
		}
		var err error
		diag, err = obs.ServeAll(diagFlags.Addr(), obs.Diagnostics{
			Registry:  srv.Registry(),
			Tracer:    tracer,
			Collector: collector,
			Journal:   journal,
			Health:    health,
			Flight:    flight,
		})
		if err != nil {
			log.Fatalf("dcart-kv: diagnostics listen: %v", err)
		}
		log.Printf("dcart-kv: diagnostics on http://%s/metrics", diag.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dcart-kv: listen: %v", err)
	}
	log.Printf("dcart-kv: serving on %s (%d keys loaded)", ln.Addr(), srv.Len())

	// Graceful shutdown: the signal handler only closes the listener; the
	// main goroutine then runs the drain sequence, so there is exactly one
	// exit path.
	var (
		conns    sync.Map // net.Conn -> struct{}, the in-flight connections
		connWG   sync.WaitGroup
		draining = make(chan struct{})
	)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("dcart-kv: %s: shutting down (draining connections)", s)
		close(draining)
		ln.Close() // unblocks Accept
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-draining:
			default:
				log.Printf("dcart-kv: accept: %v", err)
			}
			break
		}
		connWG.Add(1)
		conns.Store(conn, struct{}{})
		go func(c net.Conn) {
			defer connWG.Done()
			defer conns.Delete(c)
			srv.Serve(c)
		}(conn)
	}

	// Drain in-flight connections, force-closing stragglers at the
	// deadline (Serve exits on the read error a Close triggers).
	done := make(chan struct{})
	go func() { connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(*drainTimeout):
		log.Printf("dcart-kv: drain timeout after %s, closing remaining connections", *drainTimeout)
		conns.Range(func(k, _ any) bool {
			k.(net.Conn).Close()
			return true
		})
		<-done
	}

	// Drain the batching pipeline before snapshotting or reporting.
	if err := srv.Close(); err != nil {
		log.Printf("dcart-kv: engine close: %v", err)
	}
	if *snapshot != "" {
		if err := srv.SaveSnapshot(*snapshot); err != nil {
			log.Printf("dcart-kv: save snapshot: %v", err)
		} else {
			log.Printf("dcart-kv: snapshot saved to %s", *snapshot)
		}
	}
	if collector != nil {
		collector.Stop()
	}
	if diag != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		diag.Shutdown(ctx) //nolint:errcheck // best-effort on the way out
		cancel()
	}
	log.Printf("dcart-kv: final stats: %s", srv.StatsSnapshot())
}
