// Command dcart-bench regenerates the DCART paper's tables and figures.
//
// Usage:
//
//	dcart-bench -list
//	dcart-bench -exp fig9 [-keys 100000] [-ops 500000] [-seed 1] [-zipf 1.25]
//	dcart-bench -exp all
//
// Each experiment prints the rows or series of the corresponding paper
// table/figure; EXPERIMENTS.md records paper-claimed vs measured values.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig2a..fig12b, table1, ablate, or 'all')")
	list := flag.Bool("list", false, "list experiments and exit")
	keys := flag.Int("keys", 0, "unique keys per workload (default 100000)")
	ops := flag.Int("ops", 0, "operations per run (default 5x keys)")
	seed := flag.Int64("seed", 1, "workload seed")
	zipf := flag.Float64("zipf", 0, "Zipf skew s (default 1.25)")
	threads := flag.Int("threads", 0, "modeled CPU threads (default 96)")
	hotset := flag.Int("hotset", 0,
		"per-worker hot-node residency anchors in the native experiment's parallel engine (0 = engine default 64, negative disables)")
	shards := store.RegisterShardsFlag(flag.CommandLine)
	conns := flag.Int("conns", 0,
		"client connections in the server experiment (default 8)")
	pipeDepth := flag.Int("pipeline-depth", 0,
		"per-connection in-flight window in the server experiment's pipelined mode (default 64)")
	flushEvery := flag.Int("flush-every", 0,
		"server responses coalesced per flush in the server experiment's pipelined mode (default 32)")
	jsonOut := flag.Bool("json", false,
		"also write a machine-readable report (BENCH_<exp>.json, e.g. BENCH_native.json)")
	gogc := flag.Int("gogc", 400,
		"GC percent for measurement runs (0 keeps the runtime default); the "+
			"engines' steady-state live heap is small, so the default GC goal "+
			"triggers a collection every few milliseconds and its pauses "+
			"dominate tail latency at GOMAXPROCS=1")
	diagFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}

	if *list {
		for _, r := range bench.List() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: dcart-bench -exp <id> | -list")
		os.Exit(2)
	}
	o := bench.Options{
		NumKeys: *keys, NumOps: *ops, Seed: *seed, ZipfS: *zipf,
		Threads: *threads, Out: os.Stdout, Hotset: *hotset, Shards: *shards,
		Conns: *conns, PipelineDepth: *pipeDepth, FlushEvery: *flushEvery,
	}
	if *jsonOut && *exp != "all" {
		o.JSONPath = "BENCH_" + *exp + ".json"
	}
	if diagFlags.Enabled() {
		o.Diag = obs.NewRegistry()
		o.Tracer = diagFlags.Tracer()
		o.Journal = diagFlags.Journal()
		// Process-level series, registered up front so /metrics serves
		// meaningful content even before the first engine attaches (the
		// native experiment's direct-olc row runs engine-less).
		o.Diag.RegisterGauge("process", "dcart_bench_up", "",
			"1 while dcart-bench is serving diagnostics",
			func() float64 { return 1 })
		o.Diag.RegisterGauge("process", "dcart_bench_goroutines", "",
			"live goroutines in the benchmark process",
			func() float64 { return float64(runtime.NumGoroutine()) })
		obs.RegisterRuntime(o.Diag)
		if o.Journal != nil {
			obs.RegisterJournal(o.Diag, o.Journal)
		}
		collector := diagFlags.Collector(o.Diag)
		var health *obs.Health
		if collector != nil {
			health = obs.NewHealth(collector, obs.DefaultHealthRules()...)
		}
		var flight *obs.FlightRecorder
		if dir := diagFlags.FlightDir(); dir != "" {
			flight = obs.NewFlightRecorder(dir, obs.Diagnostics{
				Registry:  o.Diag,
				Tracer:    o.Tracer,
				Collector: collector,
				Journal:   o.Journal,
				Health:    health,
			}, health)
			cfgMap := make(map[string]string)
			flag.Visit(func(f *flag.Flag) { cfgMap[f.Name] = f.Value.String() })
			flight.SetConfig(cfgMap)
			if health != nil {
				flight.TriggerOnFire(health, log.Printf)
			}
		}
		diag, err := obs.ServeAll(diagFlags.Addr(), obs.Diagnostics{
			Registry:  o.Diag,
			Tracer:    o.Tracer,
			Collector: collector,
			Journal:   o.Journal,
			Health:    health,
			Flight:    flight,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcart-bench: diagnostics listen:", err)
			os.Exit(1)
		}
		log.Printf("dcart-bench: diagnostics on http://%s/metrics", diag.Addr())
		defer func() {
			if collector != nil {
				collector.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			diag.Shutdown(ctx) //nolint:errcheck // best-effort on the way out
			cancel()
		}()
	}
	var err error
	if *exp == "all" {
		err = bench.RunAll(o)
	} else {
		err = bench.Run(*exp, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcart-bench:", err)
		os.Exit(1)
	}
}
