// Command dcart-bench regenerates the DCART paper's tables and figures.
//
// Usage:
//
//	dcart-bench -list
//	dcart-bench -exp fig9 [-keys 100000] [-ops 500000] [-seed 1] [-zipf 1.25]
//	dcart-bench -exp all
//
// Each experiment prints the rows or series of the corresponding paper
// table/figure; EXPERIMENTS.md records paper-claimed vs measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig2a..fig12b, table1, ablate, or 'all')")
	list := flag.Bool("list", false, "list experiments and exit")
	keys := flag.Int("keys", 0, "unique keys per workload (default 100000)")
	ops := flag.Int("ops", 0, "operations per run (default 5x keys)")
	seed := flag.Int64("seed", 1, "workload seed")
	zipf := flag.Float64("zipf", 0, "Zipf skew s (default 1.25)")
	threads := flag.Int("threads", 0, "modeled CPU threads (default 96)")
	jsonOut := flag.Bool("json", false,
		"also write a machine-readable report (BENCH_native.json for -exp native)")
	gogc := flag.Int("gogc", 400,
		"GC percent for measurement runs (0 keeps the runtime default); the "+
			"engines' steady-state live heap is small, so the default GC goal "+
			"triggers a collection every few milliseconds and its pauses "+
			"dominate tail latency at GOMAXPROCS=1")
	flag.Parse()

	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}

	if *list {
		for _, r := range bench.List() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: dcart-bench -exp <id> | -list")
		os.Exit(2)
	}
	o := bench.Options{
		NumKeys: *keys, NumOps: *ops, Seed: *seed, ZipfS: *zipf,
		Threads: *threads, Out: os.Stdout,
	}
	if *jsonOut {
		o.JSONPath = "BENCH_native.json"
	}
	var err error
	if *exp == "all" {
		err = bench.RunAll(o)
	} else {
		err = bench.Run(*exp, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcart-bench:", err)
		os.Exit(1)
	}
}
