// kvstore: a concurrent in-memory key-value store built on the
// thread-safe adaptive radix tree (the substrate of the paper's CPU
// baselines), exercised by a multi-goroutine workload.
//
// This is the scenario the paper's introduction motivates: many clients
// concurrently reading and writing a shared tree index. The example runs
// real goroutines against the lock-coupling tree, then prints the
// synchronization events the instrumentation recorded — the quantities
// DCART is designed to eliminate.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

const (
	numKeys    = 50_000
	numClients = 8
	opsPerConn = 40_000
)

func main() {
	ms := metrics.NewSet()
	store := core.NewConcurrentTree(ms)

	// Bulk-load the store.
	w, err := core.GenerateWorkload(core.WorkloadSpec{
		Name: workload.EA, NumKeys: numKeys, NumOps: numClients * opsPerConn,
		ReadRatio: 0.5, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	for i, k := range w.Keys {
		store.Put(k, uint64(i))
	}
	fmt.Printf("loaded %d e-mail keys\n", store.Len())

	// Serve the operation stream from concurrent "client" goroutines,
	// each taking a disjoint slice of the stream.
	start := time.Now()
	var wg sync.WaitGroup
	var reads, hits, writes int64
	var mu sync.Mutex
	per := len(w.Ops) / numClients
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(ops []core.Op) {
			defer wg.Done()
			var r, h, wr int64
			for _, op := range ops {
				switch op.Kind {
				case core.Read:
					r++
					if _, ok := store.Get(op.Key); ok {
						h++
					}
				case core.Write:
					wr++
					store.Put(op.Key, op.Value)
				case core.Delete:
					store.Delete(op.Key)
				}
			}
			mu.Lock()
			reads += r
			hits += h
			writes += wr
			mu.Unlock()
		}(w.Ops[c*per : (c+1)*per])
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := reads + writes
	fmt.Printf("served %d ops from %d clients in %v (%.2fM ops/s)\n",
		total, numClients, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("reads: %d (%.1f%% hit), writes: %d\n",
		reads, 100*float64(hits)/float64(reads), writes)
	fmt.Printf("final store size: %d keys\n", store.Len())

	// The cost of concurrency on a lock-based tree — what DCART removes.
	fmt.Println("\nsynchronization profile (the overhead DCART targets):")
	fmt.Printf("  lock acquisitions:  %d\n", ms.Get(metrics.CtrLockAcquire))
	fmt.Printf("  contended acquires: %d\n", ms.Get(metrics.CtrLockContention))
	fmt.Printf("  restarts:           %d\n", ms.Get(metrics.CtrRestarts))
	fmt.Printf("  node accesses:      %d (%.1f per op)\n",
		ms.Get(metrics.CtrNodeAccesses),
		float64(ms.Get(metrics.CtrNodeAccesses))/float64(total))
}
