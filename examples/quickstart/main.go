// Quickstart: the adaptive radix tree as an ordered key-value index.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	tree := core.NewTree()

	// Point operations. Keys are binary-comparable byte strings; values
	// are uint64 (a payload pointer or inline value).
	tree.Put([]byte("apple"), 1)
	tree.Put([]byte("apricot"), 2)
	tree.Put([]byte("banana"), 3)
	tree.Put([]byte("blueberry"), 4)
	tree.Put([]byte("cherry"), 5)

	if v, ok := tree.Get([]byte("banana")); ok {
		fmt.Println("banana ->", v)
	}

	// Overwrites report replacement.
	replaced := tree.Put([]byte("cherry"), 50)
	fmt.Println("cherry replaced:", replaced)

	// Ordered iteration, a radix tree's native strength.
	fmt.Println("all fruit in order:")
	tree.Walk(func(key []byte, value uint64) bool {
		fmt.Printf("  %s = %d\n", key, value)
		return true
	})

	// Prefix scans descend directly to the matching subtree.
	fmt.Println("a-fruit:")
	tree.ScanPrefix([]byte("a"), func(key []byte, value uint64) bool {
		fmt.Printf("  %s = %d\n", key, value)
		return true
	})

	// Range scans with inclusive bounds.
	fmt.Println("banana..cherry:")
	tree.AscendRange([]byte("banana"), []byte("cherry"), func(key []byte, value uint64) bool {
		fmt.Printf("  %s = %d\n", key, value)
		return true
	})

	// Deletion shrinks nodes and restores path compression.
	tree.Delete([]byte("apricot"))
	fmt.Println("after delete, len =", tree.Len())

	// Structural statistics: node-kind census, height, modeled footprint.
	st := tree.Stats()
	fmt.Printf("stats: %d keys, height %d, N4=%d N16=%d N48=%d N256=%d, %d modeled bytes\n",
		st.Keys, st.Height, st.N4, st.N16, st.N48, st.N256, st.ModeledBytes)
}
