// accelerator: run the DCART accelerator simulator head-to-head against
// the best CPU baseline (SMART) on the same workload, and show where the
// win comes from — coalesced traversals, shortcut reuse, and on-chip
// residency of hot nodes.
//
// Run with:
//
//	go run ./examples/accelerator
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	w, err := core.GenerateWorkload(core.WorkloadSpec{
		Name: workload.IPGEO, NumKeys: 100_000, NumOps: 500_000,
		ReadRatio: 0.5, ZipfS: 1.25, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s, %d keys, %d ops (50/50 read-write)\n\n",
		w.Name, len(w.Keys), len(w.Ops))

	smart := core.NewSMART(core.EngineConfig{Threads: 96, CacheBytes: 128 << 10})
	dcart := core.NewDCART(core.DCARTConfig{}) // Table I defaults

	type row struct {
		name string
		res  *core.Result
		rep  core.Report
	}
	var rows []row
	for _, e := range []core.Engine{smart, dcart} {
		e.Load(w.Keys, nil)
		res := e.Run(w.Ops)
		rows = append(rows, row{res.Name, res, core.Model(res)})
	}

	fmt.Printf("%-8s %14s %16s %14s %12s\n", "engine", "modeled time", "throughput", "energy", "platform")
	for _, r := range rows {
		fmt.Printf("%-8s %13.4gms %12.3g ops/s %12.4g J %14s\n",
			r.name, r.rep.Seconds*1e3, r.rep.Throughput(r.res.Ops), r.rep.Joules, r.rep.Name)
	}
	s, d := rows[0], rows[1]
	fmt.Printf("\nDCART speedup: %.1fx   energy saving: %.1fx\n",
		s.rep.Seconds/d.rep.Seconds, s.rep.Joules/d.rep.Joules)

	fmt.Println("\nwhere the win comes from:")
	get := func(r row, c string) int64 { return r.res.Metrics.Get(c) }
	fmt.Printf("  partial key matches:  SMART %9d   DCART %9d (%.1f%%)\n",
		get(s, metrics.CtrKeyMatches), get(d, metrics.CtrKeyMatches),
		100*float64(get(d, metrics.CtrKeyMatches))/float64(get(s, metrics.CtrKeyMatches)))
	fmt.Printf("  lock contentions:     SMART %9d   DCART %9d\n",
		get(s, metrics.CtrLockContention), get(d, metrics.CtrLockContention))
	fmt.Printf("  coalesced operations: SMART %9d   DCART %9d\n",
		get(s, metrics.CtrCoalesced), get(d, metrics.CtrCoalesced))
	fmt.Printf("  shortcut hits:                          DCART %9d (%.1f%% of groups)\n",
		get(d, metrics.CtrShortcutHit),
		100*float64(get(d, metrics.CtrShortcutHit))/
			float64(get(d, metrics.CtrShortcutHit)+get(d, metrics.CtrShortcutMiss)))
	fmt.Printf("  on-chip hit ratio:    SMART %9.1f%%   DCART %9.1f%%\n",
		100*s.res.CacheHitRatio, 100*d.res.CacheHitRatio)
	fmt.Printf("  node fetches:         SMART %9d   DCART %9d (coalescing + shortcuts)\n",
		get(s, metrics.CtrNodeAccesses), get(d, metrics.CtrNodeAccesses))
}
