// ipindex: an IP-geolocation range index over the ART — the paper's IPGEO
// scenario. IPv4 range starts are stored as binary-comparable 4-byte keys
// mapping to country codes; a lookup finds the covering range with one
// ordered predecessor search, and prefix scans answer "every range in this
// /8" analytics queries.
//
// Run with:
//
//	go run ./examples/ipindex
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// countries is a toy country table; values index into it.
var countries = []string{"US", "CN", "DE", "FR", "JP", "BR", "IN", "GB", "KR", "NL"}

func ipKey(a, b, c, d byte) []byte { return []byte{a, b, c, d} }

func ipString(k []byte) string {
	return fmt.Sprintf("%d.%d.%d.%d", k[0], k[1], k[2], k[3])
}

func main() {
	idx := core.NewTree()
	rng := rand.New(rand.NewSource(7))

	// Load 100k synthetic range starts, clustered in a few hot /8s like
	// the real GeoLite2 table.
	hot := []byte{0x67, 0x68, 0x2a, 0xb0}
	for i := 0; i < 100_000; i++ {
		var first byte
		if rng.Intn(2) == 0 {
			first = hot[rng.Intn(len(hot))]
		} else {
			first = byte(rng.Intn(224)) // below multicast space
		}
		key := ipKey(first, byte(rng.Intn(256)), byte(rng.Intn(256)), 0)
		idx.Put(key, uint64(rng.Intn(len(countries))))
	}
	fmt.Printf("loaded %d IP ranges\n", idx.Len())

	// Point lookups: the covering range of an address is the greatest
	// range start <= address — a bounded descending... here via an
	// ascending scan from 0 up to the address, keeping the last hit
	// (bounded by the address itself as the inclusive upper bound).
	lookup := func(addr []byte) (string, []byte, bool) {
		var lastKey []byte
		var lastVal uint64
		found := false
		// Scan only the address's /8 first (ranges rarely span /8s here);
		// fall back to a full bounded scan if the /8 has no predecessor.
		idx.AscendRange(ipKey(addr[0], 0, 0, 0), addr, func(k []byte, v uint64) bool {
			lastKey, lastVal, found = append(lastKey[:0], k...), v, true
			return true
		})
		if !found {
			idx.AscendRange(nil, addr, func(k []byte, v uint64) bool {
				lastKey, lastVal, found = append(lastKey[:0], k...), v, true
				return true
			})
		}
		if !found {
			return "", nil, false
		}
		return countries[lastVal], lastKey, true
	}

	for _, probe := range [][]byte{
		ipKey(0x67, 12, 34, 56),
		ipKey(0x2a, 200, 1, 9),
		ipKey(0x05, 5, 5, 5),
	} {
		if cc, rangeStart, ok := lookup(probe); ok {
			fmt.Printf("%-15s -> %s (range %s)\n", ipString(probe), cc, ipString(rangeStart))
		} else {
			fmt.Printf("%-15s -> no covering range\n", ipString(probe))
		}
	}

	// Analytics: count ranges per country inside the hot /8 0x67 with a
	// prefix scan (descends straight to the subtree).
	var perCountry [16]int
	n := 0
	idx.ScanPrefix([]byte{0x67}, func(k []byte, v uint64) bool {
		perCountry[v]++
		n++
		return true
	})
	fmt.Printf("\n/8 block 103.0.0.0/8 holds %d ranges:\n", n)
	for i, c := range perCountry[:len(countries)] {
		if c > 0 {
			fmt.Printf("  %s: %d\n", countries[i], c)
		}
	}

	// Ordered neighborhood: the five ranges after a given start.
	fmt.Println("\nfive ranges from 103.50.0.0 onward:")
	count := 0
	idx.AscendRange(ipKey(0x67, 50, 0, 0), nil, func(k []byte, v uint64) bool {
		fmt.Printf("  %s -> %s\n", ipString(k), countries[v])
		count++
		return count < 5
	})

	// Sanity: the index respects binary order for IPv4 keys.
	var prev []byte
	ok := true
	idx.Walk(func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			ok = false
			return false
		}
		prev = append(prev[:0], k...)
		return true
	})
	fmt.Println("\nindex order consistent:", ok)
	_ = binary.BigEndian
}
