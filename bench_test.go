// Package repro's root benchmarks regenerate every table and figure of
// the DCART paper (one Benchmark per experiment, driving the harness in
// internal/bench) and additionally provide native Go microbenchmarks of
// the index substrate and the six engines.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks execute the full experiment at a reduced
// scale per iteration; use cmd/dcart-bench for full-scale runs and
// readable tables.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/accel"
	"repro/internal/art"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctt"
	"repro/internal/cuart"
	"repro/internal/engine"
	"repro/internal/olc"
	"repro/internal/pctt"
	"repro/internal/workload"
)

// benchOpts is the reduced scale each figure benchmark runs per iteration.
func benchOpts() bench.Options {
	return bench.Options{NumKeys: 5_000, NumOps: 25_000, Seed: 1, Out: io.Discard}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (the harness prints the same rows
// the paper reports; here output goes to io.Discard and we measure cost).
func BenchmarkFig2aBreakdown(b *testing.B)       { benchFigure(b, "fig2a") }
func BenchmarkFig2bRedundancy(b *testing.B)      { benchFigure(b, "fig2b") }
func BenchmarkFig2cLineUtilization(b *testing.B) { benchFigure(b, "fig2c") }
func BenchmarkFig2dSyncVsOps(b *testing.B)       { benchFigure(b, "fig2d") }
func BenchmarkFig2eWriteRatio(b *testing.B)      { benchFigure(b, "fig2e") }
func BenchmarkFig3Distribution(b *testing.B)     { benchFigure(b, "fig3") }
func BenchmarkTable1Config(b *testing.B)         { benchFigure(b, "table1") }
func BenchmarkFig7LockContentions(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8KeyMatches(b *testing.B)       { benchFigure(b, "fig8") }
func BenchmarkFig9ExecutionTime(b *testing.B)    { benchFigure(b, "fig9") }
func BenchmarkFig10LatencyCurves(b *testing.B)   { benchFigure(b, "fig10") }
func BenchmarkFig11Energy(b *testing.B)          { benchFigure(b, "fig11") }
func BenchmarkFig12aOpsSweep(b *testing.B)       { benchFigure(b, "fig12a") }
func BenchmarkFig12bMixSweep(b *testing.B)       { benchFigure(b, "fig12b") }
func BenchmarkAblations(b *testing.B)            { benchFigure(b, "ablate") }

// ---- native index microbenchmarks ----------------------------------------

func loadWorkload(b *testing.B, name string, keys, ops int) *workload.Workload {
	b.Helper()
	return workload.MustGenerate(workload.Spec{
		Name: name, NumKeys: keys, NumOps: ops, ReadRatio: 0.5, Seed: 1,
	})
}

func BenchmarkARTGet(b *testing.B) {
	w := loadWorkload(b, workload.RS, 100_000, 1)
	tr := art.New()
	tr.Load(w.Keys, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(w.Keys[i%len(w.Keys)])
	}
}

func BenchmarkARTPut(b *testing.B) {
	w := loadWorkload(b, workload.RS, 100_000, 1)
	tr := art.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(w.Keys[i%len(w.Keys)], uint64(i))
	}
}

func BenchmarkARTDelete(b *testing.B) {
	w := loadWorkload(b, workload.RS, 100_000, 1)
	tr := art.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := w.Keys[i%len(w.Keys)]
		if i%2 == 0 {
			tr.Put(k, uint64(i))
		} else {
			tr.Delete(k)
		}
	}
}

func BenchmarkARTWalk(b *testing.B) {
	w := loadWorkload(b, workload.DICT, 50_000, 1)
	tr := art.New()
	tr.Load(w.Keys, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Walk(func(k []byte, v uint64) bool { n++; return true })
		if n != tr.Len() {
			b.Fatal("walk miscount")
		}
	}
}

func BenchmarkARTScanPrefix(b *testing.B) {
	w := loadWorkload(b, workload.EA, 50_000, 1)
	tr := art.New()
	tr.Load(w.Keys, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ScanPrefix([]byte{byte('a' + i%26)}, func(k []byte, v uint64) bool { return true })
	}
}

func BenchmarkConcurrentTreeGet(b *testing.B) {
	w := loadWorkload(b, workload.RS, 100_000, 1)
	tr := olc.New(nil)
	for i, k := range w.Keys {
		tr.Put(k, uint64(i))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr.Get(w.Keys[i%len(w.Keys)])
			i++
		}
	})
}

func BenchmarkConcurrentTreePut(b *testing.B) {
	w := loadWorkload(b, workload.RS, 100_000, 1)
	tr := olc.New(nil)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr.Put(w.Keys[i%len(w.Keys)], uint64(i))
			i++
		}
	})
}

// ---- engine throughput benchmarks -----------------------------------------

// benchEngine measures functional engine throughput (simulation speed, not
// modeled target time): ns/op is the sandbox cost of simulating one
// operation.
func benchEngine(b *testing.B, mk func() engine.Engine) {
	w := loadWorkload(b, workload.IPGEO, 20_000, 100_000)
	e := mk()
	e.Load(w.Keys, nil)
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := b.N - done
		if n > len(w.Ops) {
			n = len(w.Ops)
		}
		e.Run(w.Ops[:n])
		done += n
	}
}

func BenchmarkEngineART(b *testing.B) {
	benchEngine(b, func() engine.Engine { return baseline.NewART(engine.Config{}) })
}

func BenchmarkEngineHeart(b *testing.B) {
	benchEngine(b, func() engine.Engine { return baseline.NewHeart(engine.Config{}) })
}

func BenchmarkEngineSMART(b *testing.B) {
	benchEngine(b, func() engine.Engine { return baseline.NewSMART(engine.Config{}) })
}

func BenchmarkEngineCuART(b *testing.B) {
	benchEngine(b, func() engine.Engine { return cuart.New(cuart.Config{}) })
}

func BenchmarkEngineDCARTC(b *testing.B) {
	benchEngine(b, func() engine.Engine { return ctt.New(ctt.Config{}) })
}

func BenchmarkEngineDCART(b *testing.B) {
	benchEngine(b, func() engine.Engine { return accel.New(accel.Config{}) })
}

// BenchmarkWorkloadGeneration measures generator cost per operation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.MustGenerate(workload.Spec{
			Name: workload.IPGEO, NumKeys: 5000, NumOps: 20000, Seed: int64(i),
		})
	}
}

// Example-level sanity: the facade compiles against its documented use.
func ExampleNewTree() {
	tr := core.NewTree()
	tr.Put([]byte("k"), 7)
	v, ok := tr.Get([]byte("k"))
	fmt.Println(v, ok)
	// Output: 7 true
}

// ---- native parallel CTT benchmarks ---------------------------------------

// mixedWorkload is the native comparison stream: mixed 50% read / 50%
// write IPGEO, the regime of the paper's Fig 9.
func mixedWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	return workload.MustGenerate(workload.Spec{
		Name: workload.IPGEO, NumKeys: 20_000, NumOps: 100_000,
		ReadRatio: 0.5, InsertFraction: 0.1, ZipfS: 1.25, Seed: 1,
	})
}

// BenchmarkDirectOLCMixed is the single-goroutine baseline: one tree
// operation per stream element, no batching.
func BenchmarkDirectOLCMixed(b *testing.B) {
	w := mixedWorkload(b)
	tr := olc.New(nil)
	for i, k := range w.Keys {
		tr.Put(k, uint64(i))
	}
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := b.N - done
		if n > len(w.Ops) {
			n = len(w.Ops)
		}
		for _, op := range w.Ops[:n] {
			switch op.Kind {
			case workload.Read:
				tr.Get(op.Key)
			case workload.Write:
				tr.Put(op.Key, op.Value)
			case workload.Delete:
				tr.Delete(op.Key)
			}
		}
		done += n
	}
}

// BenchmarkPCTTMixed runs the same stream through the parallel CTT engine
// at 1, 2, and 4 workers.
func BenchmarkPCTTMixed(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := mixedWorkload(b)
			e := pctt.New(pctt.Config{Workers: workers})
			defer e.Close()
			e.Load(w.Keys, nil)
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := b.N - done
				if n > len(w.Ops) {
					n = len(w.Ops)
				}
				e.Run(w.Ops[:n])
				done += n
			}
		})
	}
}
