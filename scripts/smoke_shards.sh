#!/bin/bash
# Sharded-server smoke test: boot dcart-kv with a 4-way sharded store
# (one batching engine per shard), run a protocol round-trip over TCP,
# scrape /metrics for the per-shard series, then shut down gracefully and
# verify the per-shard snapshot files. Checks the scale-out wiring end to
# end — routing, ordered scatter-gather merge, shard-labeled
# observability, per-shard persistence — not performance.
#
# bash (not sh): the client side uses /dev/tcp.
set -eu

PORT="${SMOKE_SHARDS_PORT:-7151}"
DIAG_PORT="${SMOKE_SHARDS_DIAG_PORT:-7152}"
DIR="$(mktemp -d)"
SNAP="$DIR/store.snap"
KV_PID=
cleanup() {
	if [ -n "$KV_PID" ] && kill -0 "$KV_PID" 2>/dev/null; then
		kill "$KV_PID" 2>/dev/null || true
		wait "$KV_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

# Run the built binary directly (not `go run`): the graceful-shutdown
# check needs SIGTERM to reach the server process itself.
go build -o "$DIR/dcart-kv" ./cmd/dcart-kv
"$DIR/dcart-kv" -addr "127.0.0.1:$PORT" -shards 4 -batch-workers 2 \
	-diag-addr "127.0.0.1:$DIAG_PORT" -snapshot "$SNAP" >"$DIR/kv.log" 2>&1 &
KV_PID=$!

# Wait for the listener.
up=0
for _ in $(seq 1 100); do
	if ! kill -0 "$KV_PID" 2>/dev/null; then
		echo "smoke-shards: server exited early" >&2
		cat "$DIR/kv.log" >&2
		exit 1
	fi
	if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
		exec 3>&- 3<&-
		up=1
		break
	fi
	sleep 0.2
done
if [ "$up" -ne 1 ]; then
	echo "smoke-shards: server never came up on :$PORT" >&2
	cat "$DIR/kv.log" >&2
	exit 1
fi

# Protocol round-trip: keys with distinct leading bytes land on distinct
# shards; the SCAN must merge them back in global key order.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'PUT alpha 1\nPUT beta 2\nPUT m-key 3\nPUT zeta 4\nGET m-key\nLEN\nSCAN m 100\nRANGE alpha zeta 100\nQUIT\n' >&3
RESP="$(cat <&3)"
exec 3>&- 3<&-

echo "$RESP" | grep -q '^VALUE 3$' || {
	echo "smoke-shards: GET across shards failed:" >&2
	echo "$RESP" >&2
	exit 1
}
echo "$RESP" | grep -q '^LEN 4$' || {
	echo "smoke-shards: LEN aggregation failed:" >&2
	echo "$RESP" >&2
	exit 1
}
# The RANGE result must list all four keys in ascending order.
ORDERED="$(echo "$RESP" | sed -n 's/^KEY \([^ ]*\) .*/\1/p' | tail -4 | tr '\n' ' ')"
[ "$ORDERED" = "alpha beta m-key zeta " ] || {
	echo "smoke-shards: merged RANGE order wrong: $ORDERED" >&2
	echo "$RESP" >&2
	exit 1
}

# /metrics must serve the per-shard groups: the shard-count gauge and
# shard-labeled engine series for every shard.
SCRAPE="$(curl -sf "http://127.0.0.1:$DIAG_PORT/metrics")"
echo "$SCRAPE" | grep -q '^dcart_store_shards 4$' || {
	echo "smoke-shards: dcart_store_shards gauge missing" >&2
	echo "$SCRAPE" >&2
	exit 1
}
for i in 0 1 2 3; do
	echo "$SCRAPE" | grep -q "dcart_pctt_workers{shard=\"$i\"}" || {
		echo "smoke-shards: shard $i engine series missing from /metrics" >&2
		echo "$SCRAPE" >&2
		exit 1
	}
	echo "$SCRAPE" | grep -q "dcart_store_shard_keys{shard=\"$i\"}" || {
		echo "smoke-shards: shard $i key gauge missing from /metrics" >&2
		echo "$SCRAPE" >&2
		exit 1
	}
done

# Graceful shutdown writes one snapshot file per shard.
kill -TERM "$KV_PID"
wait "$KV_PID" 2>/dev/null || true
KV_PID=
for i in 0 1 2 3; do
	[ -f "$SNAP.shard$i-of-4" ] || {
		echo "smoke-shards: missing snapshot shard file $SNAP.shard$i-of-4" >&2
		ls -l "$DIR" >&2
		cat "$DIR/kv.log" >&2
		exit 1
	}
done

echo "smoke-shards: sharded round-trip, per-shard /metrics, and snapshots OK"
