#!/bin/bash
# Pipelined-wire smoke test: boot dcart-kv with a depth-64 pipelined
# connection path, blind-write a deep burst of commands in one shot (a
# raw pipelined client — no waiting between commands), and verify every
# response comes back exactly in command order, the barrier commands see
# all earlier writes, and the /metrics pipeline series are live. Checks
# the async wire end to end — submission, in-order completion, coalesced
# flushes, barrier drains — not performance.
#
# bash (not sh): the client side uses /dev/tcp.
set -eu

PORT="${SMOKE_PIPELINE_PORT:-7161}"
DIAG_PORT="${SMOKE_PIPELINE_DIAG_PORT:-7162}"
DIR="$(mktemp -d)"
KV_PID=
cleanup() {
	if [ -n "$KV_PID" ] && kill -0 "$KV_PID" 2>/dev/null; then
		kill "$KV_PID" 2>/dev/null || true
		wait "$KV_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/dcart-kv" ./cmd/dcart-kv
"$DIR/dcart-kv" -addr "127.0.0.1:$PORT" -batch-workers 2 \
	-pipeline-depth 64 -flush-every 32 \
	-diag-addr "127.0.0.1:$DIAG_PORT" >"$DIR/kv.log" 2>&1 &
KV_PID=$!

# Wait for the listener.
up=0
for _ in $(seq 1 100); do
	if ! kill -0 "$KV_PID" 2>/dev/null; then
		echo "smoke-pipeline: server exited early" >&2
		cat "$DIR/kv.log" >&2
		exit 1
	fi
	if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
		exec 3>&- 3<&-
		up=1
		break
	fi
	sleep 0.2
done
if [ "$up" -ne 1 ]; then
	echo "smoke-pipeline: server never came up on :$PORT" >&2
	cat "$DIR/kv.log" >&2
	exit 1
fi

# Build a deterministic burst: 100 PUTs, a GET per key, one parse error
# mid-stream, then the barrier commands — and the exact response sequence
# the ordering contract promises for it.
REQ="$DIR/req.txt"
WANT="$DIR/want.txt"
: >"$REQ"
: >"$WANT"
for i in $(seq -w 0 99); do
	echo "PUT pk$i $((10#$i))" >>"$REQ"
	echo "OK" >>"$WANT"
done
echo "BOGUS mid pipeline" >>"$REQ"
echo "ERR unknown command BOGUS" >>"$WANT"
for i in $(seq -w 0 99); do
	echo "GET pk$i" >>"$REQ"
	echo "VALUE $((10#$i))" >>"$WANT"
done
echo "LEN" >>"$REQ"
echo "LEN 100" >>"$WANT"
echo "SCAN pk0 100" >>"$REQ"
for i in $(seq -w 0 9); do
	echo "KEY pk0$i $((10#$i))" >>"$WANT"
done
echo "END" >>"$WANT"
echo "QUIT" >>"$REQ"
echo "BYE" >>"$WANT"

# Blind-write the whole burst at once (depth far beyond one response per
# round trip), then read everything back.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
cat "$REQ" >&3
GOT="$DIR/got.txt"
cat <&3 >"$GOT"
exec 3>&- 3<&-

if ! diff -u "$WANT" "$GOT"; then
	echo "smoke-pipeline: pipelined responses out of order or wrong" >&2
	cat "$DIR/kv.log" >&2
	exit 1
fi

# /metrics must serve the pipeline series, with the in-flight gauge back
# to zero after the drain and a positive achieved depth.
SCRAPE="$(curl -sf "http://127.0.0.1:$DIAG_PORT/metrics")"
echo "$SCRAPE" | grep -q '^dcart_server_inflight 0$' || {
	echo "smoke-pipeline: dcart_server_inflight gauge missing or nonzero after drain" >&2
	echo "$SCRAPE" | grep dcart_server >&2 || true
	exit 1
}
echo "$SCRAPE" | grep -q '^dcart_server_flushes [1-9]' || {
	echo "smoke-pipeline: dcart_server_flushes counter missing or zero" >&2
	echo "$SCRAPE" | grep dcart_server >&2 || true
	exit 1
}
DEPTH="$(echo "$SCRAPE" | sed -n 's/^dcart_server_pipeline_depth //p')"
case "$DEPTH" in
[1-9]*) ;;
*)
	echo "smoke-pipeline: dcart_server_pipeline_depth = '$DEPTH', want >= 1" >&2
	echo "$SCRAPE" | grep dcart_server >&2 || true
	exit 1
	;;
esac

kill -TERM "$KV_PID"
wait "$KV_PID" 2>/dev/null || true
KV_PID=
echo "smoke-pipeline: ordered pipelined burst, barrier reads, and /metrics OK"
