// Command benchdiff compares two machine-readable benchmark reports
// (BENCH_*.json, as written by dcart-bench -json) row by row and prints
// the throughput and tail-latency movement between them:
//
//	go run ./scripts/benchdiff.go BENCH_native.json /tmp/BENCH_native.json
//	make benchdiff A=BENCH_server.json B=/tmp/BENCH_server.json
//
// Rows are matched on their identity fields (system, mode, shards,
// workers, conns, pipeline_depth, flush_every — whichever the report
// carries); rows present on only one side are reported as "removed"
// (only in the old report) or "added" (only in the new one), not diffed.
// The reader is schema-loose on purpose: rows decode into maps, so it
// works across report kinds (native, server) and tolerates unknown
// fields coming and going between PRs. When both sides carry the
// runtime-attribution columns (gc_pause_total_nanos, PR 10), a GC-pause
// delta column helps attribute a p99 movement to the runtime vs the
// pipeline.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// row is one benchmark measurement, decoded loosely.
type row map[string]any

// report is the common shell of every BENCH_*.json.
type report struct {
	Experiment string `json:"experiment"`
	Rows       []row  `json:"rows"`
}

// identityFields, in display order, are the fields that name a row; the
// remaining numeric fields are measurements.
var identityFields = []string{
	"system", "mode", "shards", "workers", "conns", "pipeline_depth", "flush_every",
	"phase",
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff <old.json> <new.json>")
		os.Exit(2)
	}
	oldRep, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newRep, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	if oldRep.Experiment != newRep.Experiment {
		fmt.Printf("note: comparing different experiments (%q vs %q)\n",
			oldRep.Experiment, newRep.Experiment)
	}

	oldRows := index(oldRep.Rows)
	newRows := index(newRep.Rows)

	keys := make([]string, 0, len(oldRows))
	for k := range oldRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "row\tops/sec\tdelta\tp99\tdelta\tgc pause\n")
	var removed []string
	for _, k := range keys {
		o := oldRows[k]
		n, ok := newRows[k]
		if !ok {
			removed = append(removed, k)
			continue
		}
		delete(newRows, k)
		fmt.Fprintf(tw, "%s\t%.3g -> %.3g\t%s\t%.3gus -> %.3gus\t%s\t%s\n",
			k,
			num(o, "ops_per_sec"), num(n, "ops_per_sec"),
			pct(num(o, "ops_per_sec"), num(n, "ops_per_sec")),
			num(o, "p99_nanos")/1e3, num(n, "p99_nanos")/1e3,
			pct(num(o, "p99_nanos"), num(n, "p99_nanos")),
			gcCol(o, n))
	}
	// One-sided rows: removed = only in the old report, added = only in
	// the new one. Both sorted, so the diff output is deterministic.
	for _, k := range removed {
		fmt.Fprintf(tw, "%s\tremoved\t\t\t\t\n", k)
	}
	added := make([]string, 0, len(newRows))
	for k := range newRows {
		added = append(added, k)
	}
	sort.Strings(added)
	for _, k := range added {
		fmt.Fprintf(tw, "%s\tadded\t\t\t\t\n", k)
	}
	tw.Flush()
}

// gcCol renders the GC-pause-time movement when both rows carry the
// runtime-attribution columns; blank otherwise (older reports).
func gcCol(o, n row) string {
	ov, oOK := o["gc_pause_total_nanos"].(float64)
	nv, nOK := n["gc_pause_total_nanos"].(float64)
	if !oOK || !nOK {
		return ""
	}
	return fmt.Sprintf("%.3gms -> %.3gms", ov/1e6, nv/1e6)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return &rep, nil
}

// index keys each row by its identity fields.
func index(rows []row) map[string]row {
	out := make(map[string]row, len(rows))
	for _, r := range rows {
		var parts []string
		for _, f := range identityFields {
			if v, ok := r[f]; ok {
				parts = append(parts, fmt.Sprintf("%v", v))
			}
		}
		out[strings.Join(parts, "/")] = r
	}
	return out
}

// num pulls a numeric field, zero when absent.
func num(r row, field string) float64 {
	v, _ := r[field].(float64)
	return v
}

// pct renders the relative change new-vs-old, guarding empty baselines.
func pct(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
