#!/bin/sh
# Diagnostics-endpoint smoke test: run the native benchmark with
# -diag-addr, scrape /metrics while the P-CTT rows are executing, and
# verify the engine's live series, the health probe, the trace ring, the
# windowed timeseries, and the slow-op journal are all served. Checks
# liveness of the observability wiring, not performance numbers.
set -eu

PORT="${SMOKE_DIAG_PORT:-7141}"
ADDR="127.0.0.1:$PORT"
OUT="$(mktemp)"
BENCH_PID=
trap 'if [ -n "$BENCH_PID" ]; then kill "$BENCH_PID" 2>/dev/null || true; fi; rm -f "$OUT"' EXIT

go run ./cmd/dcart-bench -exp native -keys 50000 -ops 1500000 \
	-diag-addr "$ADDR" -trace-sample 64 -obs-window 500ms -slow-op 1ns \
	>"$OUT" 2>&1 &
BENCH_PID=$!

# Poll until the P-CTT engine's series appear: the direct-olc row runs
# engine-less first, so the first scrapes see only process-level gauges.
found=0
i=0
while [ "$i" -lt 120 ]; do
	if ! kill -0 "$BENCH_PID" 2>/dev/null; then
		echo "smoke-diag: benchmark exited before a P-CTT scrape succeeded" >&2
		cat "$OUT" >&2
		exit 1
	fi
	if curl -sf "http://$ADDR/metrics" 2>/dev/null | grep -q '^dcart_pctt_ring_depth'; then
		found=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ "$found" -ne 1 ]; then
	echo "smoke-diag: P-CTT series never appeared on /metrics" >&2
	exit 1
fi

SCRAPE="$(curl -sf "http://$ADDR/metrics")"
for series in \
	dcart_pctt_ring_depth \
	dcart_pctt_bucket_state \
	dcart_pctt_queue_wait_seconds_bucket \
	dcart_pctt_exec_seconds_bucket \
	dcart_ops_write_total; do
	if ! printf '%s\n' "$SCRAPE" | grep -q "$series"; then
		echo "smoke-diag: /metrics missing $series" >&2
		printf '%s\n' "$SCRAPE" >&2
		exit 1
	fi
done

# The health engine rides on the collector, so /healthz is the JSON
# verdict here, not the legacy "ok" text. The 1ns slow-op threshold
# journals every op and may legitimately fire the journal-rate rule, so
# assert the verdict shape rather than demanding "ok".
curl -sf "http://$ADDR/healthz" | grep -q '"status"'
curl -sf "http://$ADDR/debug/traces" | grep -q '"enabled": true'

# Rolling windows: the collector ticks at 500ms, so by now the report
# must be enabled and hold at least one sampled window.
TS="$(curl -sf "http://$ADDR/debug/timeseries")"
printf '%s\n' "$TS" | grep -q '"enabled": true' || {
	echo "smoke-diag: /debug/timeseries not enabled" >&2
	printf '%s\n' "$TS" >&2
	exit 1
}
printf '%s\n' "$TS" | grep -q '"start_unix_nano"' || {
	echo "smoke-diag: /debug/timeseries holds no windows" >&2
	printf '%s\n' "$TS" >&2
	exit 1
}
curl -sf "http://$ADDR/debug/timeseries?view=top" | grep -q '^dcart timeseries'

# Slow-op journal: the 1ns threshold journals effectively every engine
# op, so the NDJSON meta line must be enabled and events recorded.
EV="$(curl -sf "http://$ADDR/debug/events" | head -1)"
printf '%s\n' "$EV" | grep -q '"enabled":true' || {
	echo "smoke-diag: /debug/events not enabled: $EV" >&2
	exit 1
}
printf '%s\n' "$EV" | grep -q '"recorded":[1-9]' || {
	echo "smoke-diag: /debug/events recorded no slow ops: $EV" >&2
	exit 1
}

echo "smoke-diag: live /metrics, /debug/timeseries, /debug/events scrapes OK"
wait "$BENCH_PID"
