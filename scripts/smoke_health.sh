#!/bin/bash
# Health-engine and flight-recorder smoke test: boot dcart-kv with the
# batching engine, the rolling collector (which brings up the health
# engine), and a flight-recorder directory; run a protocol round-trip;
# verify /healthz serves the JSON verdict; trigger a flight-recorder dump
# over HTTP and validate the bundle is complete (manifest last, windows,
# goroutine profile). Checks the anomaly-response wiring end to end, not
# performance.
#
# bash (not sh): the client side uses /dev/tcp.
set -eu

PORT="${SMOKE_HEALTH_PORT:-7161}"
DIAG_PORT="${SMOKE_HEALTH_DIAG_PORT:-7162}"
DIR="$(mktemp -d)"
FLIGHT="$DIR/flightrec"
KV_PID=
cleanup() {
	if [ -n "$KV_PID" ] && kill -0 "$KV_PID" 2>/dev/null; then
		kill "$KV_PID" 2>/dev/null || true
		wait "$KV_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/dcart-kv" ./cmd/dcart-kv
"$DIR/dcart-kv" -addr "127.0.0.1:$PORT" -batch-workers 2 \
	-diag-addr "127.0.0.1:$DIAG_PORT" -obs-window 250ms \
	-flightrec-dir "$FLIGHT" >"$DIR/kv.log" 2>&1 &
KV_PID=$!

# Wait for the listener.
up=0
for _ in $(seq 1 100); do
	if ! kill -0 "$KV_PID" 2>/dev/null; then
		echo "smoke-health: server exited early" >&2
		cat "$DIR/kv.log" >&2
		exit 1
	fi
	if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
		exec 3>&- 3<&-
		up=1
		break
	fi
	sleep 0.2
done
if [ "$up" -ne 1 ]; then
	echo "smoke-health: server never came up on :$PORT" >&2
	cat "$DIR/kv.log" >&2
	exit 1
fi

# Light traffic so the engine's heartbeat/inflight series are live.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'PUT alpha 1\nPUT beta 2\nGET alpha\nQUIT\n' >&3
cat <&3 >/dev/null
exec 3>&- 3<&-

# /healthz must serve the health engine's JSON verdict (the collector is
# on, so this is no longer the static "ok" liveness text) and settle on
# "ok": an idle healthy server has no business firing rules.
HEALTH=""
ok=0
for _ in $(seq 1 40); do
	HEALTH="$(curl -sf "http://127.0.0.1:$DIAG_PORT/healthz" || true)"
	# A non-zero evaluation stamp proves the collector ticked and the
	# rules actually ran — "ok" before the first tick is vacuous (and a
	# bundle dumped then would hold no windows).
	if echo "$HEALTH" | grep -q '"status": "ok"' &&
		echo "$HEALTH" | grep -q '"evaluated_unix_nano": [1-9]'; then
		ok=1
		break
	fi
	sleep 0.25
done
if [ "$ok" -ne 1 ]; then
	echo "smoke-health: /healthz never reported ok:" >&2
	echo "$HEALTH" >&2
	cat "$DIR/kv.log" >&2
	exit 1
fi
echo "$HEALTH" | grep -q '"firing": \[\]' || {
	echo "smoke-health: ok verdict carries firing rules:" >&2
	echo "$HEALTH" >&2
	exit 1
}

# Flight-recorder status must be enabled and empty before any dump.
curl -sf "http://127.0.0.1:$DIAG_PORT/debug/flightrec" |
	grep -q '"enabled": true' || {
	echo "smoke-health: /debug/flightrec not enabled" >&2
	exit 1
}

# Manual trigger dumps a bundle and answers with its path.
TRIG="$(curl -sf "http://127.0.0.1:$DIAG_PORT/debug/flightrec?trigger=1")"
BUNDLE="$(echo "$TRIG" | sed -n 's/.*"bundle": *"\([^"]*\)".*/\1/p')"
if [ -z "$BUNDLE" ] || [ ! -d "$BUNDLE" ]; then
	echo "smoke-health: trigger returned no bundle dir: $TRIG" >&2
	ls -l "$FLIGHT" >&2 || true
	exit 1
fi

# The bundle must be complete: the manifest is written last, so its
# presence means every file it lists landed.
[ -f "$BUNDLE/manifest.json" ] || {
	echo "smoke-health: bundle has no manifest.json" >&2
	ls -l "$BUNDLE" >&2
	exit 1
}
for f in windows.json goroutines.txt runtime.json config.json health.json; do
	[ -f "$BUNDLE/$f" ] || {
		echo "smoke-health: bundle missing $f" >&2
		ls -l "$BUNDLE" >&2
		exit 1
	}
done
grep -q 'goroutine ' "$BUNDLE/goroutines.txt" || {
	echo "smoke-health: goroutines.txt is not a stack profile" >&2
	exit 1
}
grep -q 'dcart_pctt_worker_heartbeat' "$BUNDLE/windows.json" || {
	echo "smoke-health: bundle windows carry no engine heartbeat series" >&2
	exit 1
}
# The config capture must record the flags this run was booted with.
grep -q 'flightrec-dir' "$BUNDLE/config.json" || {
	echo "smoke-health: config.json missing the boot flags" >&2
	cat "$BUNDLE/config.json" >&2
	exit 1
}

# An immediate second trigger is inside the rate-limit window: 429.
CODE="$(curl -s -o /dev/null -w '%{http_code}' \
	"http://127.0.0.1:$DIAG_PORT/debug/flightrec?trigger=1")"
[ "$CODE" = "429" ] || {
	echo "smoke-health: rate-limited re-trigger answered $CODE, want 429" >&2
	exit 1
}

kill -TERM "$KV_PID"
wait "$KV_PID" 2>/dev/null || true
KV_PID=

echo "smoke-health: JSON health verdict, flight-recorder bundle, and rate limit OK"
